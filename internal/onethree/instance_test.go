package onethree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := InstanceSatisfiable()
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := &Instance{NumVars: 3, Clauses: []Clause{{0, 0, 1}}}
	if err := bad.Validate(); err == nil {
		t.Errorf("repeated literal accepted")
	}
	oob := &Instance{NumVars: 2, Clauses: []Clause{{0, 1, 2}}}
	if err := oob.Validate(); err == nil {
		t.Errorf("out-of-range literal accepted")
	}
}

func TestKnownInstances(t *testing.T) {
	if !InstanceSatisfiable().Satisfiable() {
		t.Errorf("InstanceSatisfiable should be satisfiable")
	}
	if InstanceUnsatisfiable().Satisfiable() {
		t.Errorf("InstanceUnsatisfiable should be unsatisfiable")
	}
}

func TestSatisfiesSemantics(t *testing.T) {
	ins := InstanceSatisfiable() // clauses (0,1,2), (2,3,4)
	cases := []struct {
		a    Assignment
		want bool
	}{
		{Assignment{false, false, true, false, false}, true},   // x2 only
		{Assignment{true, false, false, false, true}, true},    // x0, x4
		{Assignment{true, true, false, false, true}, false},    // clause 0 has 2
		{Assignment{false, false, false, false, false}, false}, // none
		{Assignment{true, false, true, false, false}, false},   // clause 0 has 2
	}
	for _, tc := range cases {
		if got := ins.Satisfies(tc.a); got != tc.want {
			t.Errorf("Satisfies(%v) = %v, want %v", tc.a, got, tc.want)
		}
	}
}

func TestSelectorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := Random(rng, 4+rng.Intn(3), 1+rng.Intn(4))
		a := ins.SolveBrute()
		if a == nil {
			return true
		}
		sel := ins.SelectorFromAssignment(a)
		if sel == nil {
			return false
		}
		back := ins.AssignmentFromSelector(sel)
		return ins.Satisfies(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSelectorFromNonSolution(t *testing.T) {
	ins := InstanceSatisfiable()
	if sel := ins.SelectorFromAssignment(Assignment{true, true, true, true, true}); sel != nil {
		t.Errorf("selector from non-solution should be nil")
	}
}

func TestRandomInstancesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ins := Random(rng, 6, 10)
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ins.Clauses) != 10 || ins.NumVars != 6 {
		t.Errorf("shape wrong")
	}
	if ins.String() == "" {
		t.Errorf("empty String")
	}
}
