package onethree

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/cq"
	"repro/internal/tree"
)

// Theorem 5.2: conjunctive queries over τ6 = (Labels, Child, Following)
// are NP-complete with respect to query complexity.
//
// The paper proves this with the clause gadget of Fig. 5: a fixed data
// tree made of two copies of a gadget under a common root, queries that
// admit exactly one "selection" per clause, and Following^NAND(k,l) atoms
// (Table II) wiring selections consistently across clauses. Figure 5
// itself is not machine-recoverable from the text, so this package
// implements an equivalent original construction with the same
// architecture and signature, self-validating by computing all
// Following-distance thresholds from the concrete tree:
//
//   - The fixed tree has a LEFT and a RIGHT copy under a common root.
//     Each copy contains three nested "room" nodes (labels RL / RR); the
//     room chosen by a clause's room variable encodes the selected
//     literal position σ ∈ {1,2,3} — exactly one by construction.
//   - Every room has one marker child per marker label M1..M3 (side-
//     suffixed L/R). Marker placement is engineered so that, for marker
//     label Mr, the marker of room r has strictly minimal Following-fuel
//     (max F-chain length to the other copy) among the three rooms.
//   - A pair constraint "¬(σ_i = r ∧ σ_j = s)" becomes one atom
//     Following^D(u, u') between the Mr-marker of clause i's left room
//     and the Ms-marker of clause j's right room, with D one more than
//     the maximal F-chain between the two minimal-fuel markers — the
//     Table II NAND mechanism with machine-computed distances.
//
// BuildTheorem52 verifies the margin conditions on the generated tree and
// fails loudly if the geometry is wrong; tests check the reduction
// end-to-end against brute-force 1-in-3 3SAT.

// Gadget52 carries the fixed tree and the computed NAND distance tables.
type Gadget52 struct {
	Tree *tree.Tree
	// D[r][s] (1-based, [4][4]) is the Following-chain length that
	// forbids exactly (σ_left = r ∧ σ_right = s).
	D [4][4]int

	leftRooms  [4]tree.NodeID // leftRooms[rank]
	rightRooms [4]tree.NodeID
	// marker[side][rank][label] — side 0 = left, 1 = right.
	markers [2][4][4]tree.NodeID
}

const rowSize = 2 // fuel row width; any value >= 1 keeps margins positive

// BuildTheorem52 constructs the fixed data tree and computes the NAND
// distances. It returns an error if the fuel-margin invariants fail
// (which would make some threshold forbid more than one room pair).
func BuildTheorem52() (*Gadget52, error) {
	g := &Gadget52{}
	b := tree.NewBuilder(64)
	root := b.AddNode(tree.NilNode, "RT")

	addRow := func(parent tree.NodeID, n int) {
		for i := 0; i < n; i++ {
			b.AddNode(parent)
		}
	}

	// Left copy: afterFuel profiles (min at rank r for marker label MrL).
	cl := b.AddNode(root, "CL")
	rL1 := b.AddNode(cl, "RL")
	m12 := b.AddNode(rL1, "M2L")
	m13 := b.AddNode(rL1, "M3L")
	rL2 := b.AddNode(rL1, "RL")
	m23 := b.AddNode(rL2, "M3L")
	rL3 := b.AddNode(rL2, "RL")
	m31 := b.AddNode(rL3, "M1L")
	m32 := b.AddNode(rL3, "M2L")
	addRow(rL3, rowSize)
	m33 := b.AddNode(rL3, "M3L")
	addRow(rL2, rowSize)
	m22 := b.AddNode(rL2, "M2L")
	m21 := b.AddNode(rL2, "M1L")
	addRow(rL1, rowSize)
	m11 := b.AddNode(rL1, "M1L")

	// Middle fuel between copies.
	addRow(root, rowSize)

	// Right copy: mirror image (beforeFuel profiles).
	cr := b.AddNode(root, "CR")
	rR1 := b.AddNode(cr, "RR")
	n11 := b.AddNode(rR1, "M1R")
	addRow(rR1, rowSize)
	rR2 := b.AddNode(rR1, "RR")
	n21 := b.AddNode(rR2, "M1R")
	n22 := b.AddNode(rR2, "M2R")
	addRow(rR2, rowSize)
	rR3 := b.AddNode(rR2, "RR")
	n33 := b.AddNode(rR3, "M3R")
	addRow(rR3, rowSize)
	n32 := b.AddNode(rR3, "M2R")
	n31 := b.AddNode(rR3, "M1R")
	n23 := b.AddNode(rR2, "M3R")
	n13 := b.AddNode(rR1, "M3R")
	n12 := b.AddNode(rR1, "M2R")

	g.Tree = b.Build()
	g.leftRooms = [4]tree.NodeID{tree.NilNode, rL1, rL2, rL3}
	g.rightRooms = [4]tree.NodeID{tree.NilNode, rR1, rR2, rR3}
	g.markers[0] = [4][4]tree.NodeID{
		{},
		{tree.NilNode, m11, m12, m13},
		{tree.NilNode, m21, m22, m23},
		{tree.NilNode, m31, m32, m33},
	}
	g.markers[1] = [4][4]tree.NodeID{
		{},
		{tree.NilNode, n11, n12, n13},
		{tree.NilNode, n21, n22, n23},
		{tree.NilNode, n31, n32, n33},
	}

	// Compute maximal Following-chain lengths between every left marker
	// and every right marker, then derive and validate thresholds.
	for r := 1; r <= 3; r++ {
		for s := 1; s <= 3; s++ {
			base := MaxFollowingChain(g.Tree, g.markers[0][r][r], g.markers[1][s][s])
			if base < 0 {
				return nil, fmt.Errorf("onethree: no Following chain from marker (%d,%d) to (%d,%d)", r, r, s, s)
			}
			g.D[r][s] = base + 1
			for rho := 1; rho <= 3; rho++ {
				for tau := 1; tau <= 3; tau++ {
					if rho == r && tau == s {
						continue
					}
					got := MaxFollowingChain(g.Tree, g.markers[0][rho][r], g.markers[1][tau][s])
					if got < g.D[r][s] {
						return nil, fmt.Errorf("onethree: margin violation: D[%d][%d]=%d would also forbid rooms (%d,%d) with max chain %d",
							r, s, g.D[r][s], rho, tau, got)
					}
				}
			}
		}
	}
	return g, nil
}

// MustBuildTheorem52 panics on geometry errors (they are construction
// bugs, not runtime conditions).
func MustBuildTheorem52() *Gadget52 {
	g, err := BuildTheorem52()
	if err != nil {
		panic(err)
	}
	return g
}

// MaxFollowingChain returns the maximum d such that there is a chain
// x = z0 F z1 F ... F zd = y of Following-steps in t, or -1 if not even
// Following(x, y) holds. Since Following is transitive, Following^d(x, y)
// is satisfiable exactly for 1 <= d <= MaxFollowingChain(t, x, y).
func MaxFollowingChain(t *tree.Tree, x, y tree.NodeID) int {
	n := int32(t.Len())
	const unreachable = -1 << 30
	// dp[p] = max F-chain steps from x to the node with pre rank p;
	// O(n²) over pre order: dp[z] = 1 + max dp[w] over preEnd(w) < pre(z).
	dp := make([]int, n)
	for i := range dp {
		dp[i] = unreachable
	}
	dp[t.Pre(x)] = 0
	for p := int32(0); p < n; p++ {
		if p == t.Pre(x) {
			continue
		}
		bestIn := unreachable
		for q := int32(0); q < n; q++ {
			w := t.ByPre(q)
			if t.PreEnd(w) < p && dp[q] > bestIn {
				bestIn = dp[q]
			}
		}
		if bestIn >= 0 {
			dp[p] = bestIn + 1
		}
	}
	if dp[t.Pre(y)] < 0 {
		return -1
	}
	return dp[t.Pre(y)]
}

// Theorem52Query encodes ins as a Boolean CQ over (Child, Following)
// against g.Tree: room variables per clause and per copy, equality wiring
// between the copies, and consistency NANDs for shared literals.
func (g *Gadget52) Theorem52Query(ins *Instance) *cq.Query {
	if err := ins.Validate(); err != nil {
		panic(err)
	}
	q := cq.New()
	left := make([]cq.Var, len(ins.Clauses))
	right := make([]cq.Var, len(ins.Clauses))
	for i := range ins.Clauses {
		left[i] = q.AddVar(fmt.Sprintf("p%d", i))
		right[i] = q.AddVar(fmt.Sprintf("q%d", i))
		q.AddLabel("RL", left[i])
		q.AddLabel("RR", right[i])
	}
	forbid := func(i, j, r, s int) {
		u := q.FreshVar(fmt.Sprintf("u%d_%d_%d%d", i, j, r, s))
		w := q.FreshVar(fmt.Sprintf("w%d_%d_%d%d", i, j, r, s))
		q.AddLabel(fmt.Sprintf("M%dL", r), u)
		q.AddLabel(fmt.Sprintf("M%dR", s), w)
		q.AddAtom(axis.Child, left[i], u)
		q.AddAtom(axis.Child, right[j], w)
		q.AddChain(axis.Following, u, w, g.D[r][s])
	}
	// Copy equality: σ_i(left) == σ_i(right).
	for i := range ins.Clauses {
		for r := 1; r <= 3; r++ {
			for s := 1; s <= 3; s++ {
				if r != s {
					forbid(i, i, r, s)
				}
			}
		}
	}
	// Shared-literal consistency: σ_i = k implies σ_j = l whenever the
	// k-th literal of C_i equals the l-th literal of C_j.
	for i, ci := range ins.Clauses {
		for j, cj := range ins.Clauses {
			if i == j {
				continue
			}
			for k := 1; k <= 3; k++ {
				for l := 1; l <= 3; l++ {
					if ci[k-1] != cj[l-1] {
						continue
					}
					for s := 1; s <= 3; s++ {
						if s != l {
							forbid(i, j, k, s)
						}
					}
				}
			}
		}
	}
	return q
}

// Theorem52Selector extracts the selector from a model: given the room
// nodes matched by the left room variables, return σ. Used by tests.
func (g *Gadget52) RoomRank(side int, v tree.NodeID) (int, bool) {
	rooms := g.leftRooms
	if side == 1 {
		rooms = g.rightRooms
	}
	for rank := 1; rank <= 3; rank++ {
		if rooms[rank] == v {
			return rank, true
		}
	}
	return 0, false
}

// NANDTable returns the computed distance table in the shape of the
// paper's Table II (rows = left selection k, columns = right selection l).
func (g *Gadget52) NANDTable() [3][3]int {
	var out [3][3]int
	for r := 1; r <= 3; r++ {
		for s := 1; s <= 3; s++ {
			out[r-1][s-1] = g.D[r][s]
		}
	}
	return out
}

// PaperNANDTable is Table II of the paper, for reference and structural
// comparison (our distances differ because our gadget tree differs, but
// both tables decompose as base + rowOffset(k) + colOffset(l)).
var PaperNANDTable = [3][3]int{
	{10, 13, 18},
	{5, 8, 13},
	{2, 5, 10},
}
