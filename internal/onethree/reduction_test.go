package onethree

import (
	"math/rand"
	"testing"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/tree"
)

func TestTheorem51TreeShape(t *testing.T) {
	tr := Theorem51Tree()
	if tr.Len() != 33 {
		t.Fatalf("tree has %d nodes, want 33", tr.Len())
	}
	// X on the spine, Y at depths 3, 4, 5 (one per branch).
	if len(tr.NodesWithLabel("X")) != 3 {
		t.Errorf("want 3 X nodes")
	}
	ys := tr.NodesWithLabel("Y")
	if len(ys) != 3 {
		t.Fatalf("want 3 Y nodes")
	}
	depths := map[int32]bool{}
	for _, y := range ys {
		depths[tr.Depth(y)] = true
	}
	for _, d := range []int32{3, 4, 5} {
		if !depths[d] {
			t.Errorf("no Y node at depth %d", d)
		}
	}
	// w[m,5+m] carries all three labels.
	all3 := 0
	tr.Walk(func(v tree.NodeID) bool {
		if len(tr.Labels(v)) == 3 {
			all3++
		}
		return true
	})
	if all3 != 3 {
		t.Errorf("want 3 triple-labeled nodes, got %d", all3)
	}
}

// completeChains extends a by-name valuation to chain helper variables by
// walking Child atoms backward from assigned targets.
func completeChains(t *tree.Tree, q *cq.Query, byName map[string]tree.NodeID) (consistency.Valuation, bool) {
	theta := make(consistency.Valuation, q.NumVars())
	assigned := make([]bool, q.NumVars())
	for i := range theta {
		theta[i] = tree.NilNode
	}
	for name, node := range byName {
		v, ok := q.VarByName(name)
		if !ok {
			return nil, false
		}
		theta[v] = node
		assigned[v] = true
	}
	for changed := true; changed; {
		changed = false
		for _, at := range q.Atoms {
			if at.Axis != axis.Child {
				continue
			}
			if assigned[at.Y] && !assigned[at.X] {
				p := t.Parent(theta[at.Y])
				if p == tree.NilNode {
					return nil, false
				}
				theta[at.X] = p
				assigned[at.X] = true
				changed = true
			}
		}
	}
	for i := range theta {
		if !assigned[i] {
			return nil, false
		}
	}
	return theta, true
}

func TestTheorem51ForwardDirection(t *testing.T) {
	// Every 1-in-3 solution must induce a satisfaction of the query
	// (the proof's "⇒" construction, checked literally).
	tr := Theorem51Tree()
	rng := rand.New(rand.NewSource(21))
	checked := 0
	for trial := 0; trial < 40 && checked < 12; trial++ {
		ins := Random(rng, 4+rng.Intn(3), 1+rng.Intn(3))
		a := ins.SolveBrute()
		if a == nil {
			continue
		}
		checked++
		sel := ins.SelectorFromAssignment(a)
		for _, star := range []bool{false, true} {
			q := Theorem51Query(ins, star)
			byName, ok := Theorem51Valuation(tr, q, ins, sel)
			if !ok {
				t.Fatalf("valuation construction failed for %s", ins)
			}
			theta, ok := completeChains(tr, q, byName)
			if !ok {
				t.Fatalf("chain completion failed for %s", ins)
			}
			if !consistency.Consistent(tr, q, theta) {
				t.Fatalf("constructed valuation not a satisfaction (star=%v)\ninstance %s\nquery %s",
					star, ins, q)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("too few satisfiable instances checked: %d", checked)
	}
}

func TestTheorem51Equivalence(t *testing.T) {
	// End-to-end: the query is satisfiable iff the instance is.
	tr := Theorem51Tree()
	engine := core.NewBacktrackEngine()
	rng := rand.New(rand.NewSource(33))
	instances := []*Instance{
		InstanceSatisfiable(),
		InstanceUnsatisfiable(),
		{NumVars: 3, Clauses: []Clause{{0, 1, 2}}},
		{NumVars: 4, Clauses: []Clause{{0, 1, 2}, {1, 2, 3}}},
		{NumVars: 4, Clauses: []Clause{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}}},
	}
	for trial := 0; trial < 6; trial++ {
		instances = append(instances, Random(rng, 4, 2+rng.Intn(2)))
	}
	for _, ins := range instances {
		want := ins.Satisfiable()
		for _, star := range []bool{false, true} {
			q := Theorem51Query(ins, star)
			got := engine.EvalBoolean(tr, q)
			if got != want {
				t.Fatalf("Theorem 5.1 (star=%v): query satisfiable = %v, instance satisfiable = %v\ninstance %s",
					star, got, want, ins)
			}
		}
	}
}

func TestTheorem51QueryComplexityTreeFixed(t *testing.T) {
	// The data tree must not depend on the instance (query complexity).
	a := Theorem51Tree()
	b := Theorem51Tree()
	if !a.Equal(b) {
		t.Errorf("Theorem 5.1 tree not deterministic")
	}
	q1 := Theorem51Query(InstanceSatisfiable(), false)
	q2 := Theorem51Query(InstanceUnsatisfiable(), false)
	if q1.Size() == q2.Size() {
		// Sizes usually differ; what matters is queries grow, tree fixed.
		t.Logf("query sizes equal by coincidence: %d", q1.Size())
	}
}

func TestTheorem52GadgetMargins(t *testing.T) {
	if _, err := BuildTheorem52(); err != nil {
		t.Fatalf("gadget margin validation failed: %v", err)
	}
}

func TestTheorem52NANDStructure(t *testing.T) {
	// Both our computed table and the paper's Table II decompose as
	// base + rowOffset(k) + colOffset(l): check rows and columns differ
	// by constants.
	check := func(name string, tab [3][3]int) {
		t.Helper()
		for r := 1; r < 3; r++ {
			d0 := tab[r][0] - tab[r-1][0]
			for c := 1; c < 3; c++ {
				if tab[r][c]-tab[r-1][c] != d0 {
					t.Errorf("%s: row difference not constant", name)
				}
			}
		}
		for c := 1; c < 3; c++ {
			d0 := tab[0][c] - tab[0][c-1]
			for r := 1; r < 3; r++ {
				if tab[r][c]-tab[r][c-1] != d0 {
					t.Errorf("%s: column difference not constant", name)
				}
			}
		}
	}
	check("Table II (paper)", PaperNANDTable)
	g := MustBuildTheorem52()
	check("computed NAND table", g.NANDTable())
}

func TestTheorem52Equivalence(t *testing.T) {
	// End-to-end: satisfiable iff the 1-in-3 instance is. Uses small
	// instances; the gadget query has 2 + (aux) variables per constraint
	// so the backtracking engine handles it.
	g := MustBuildTheorem52()
	engine := core.NewBacktrackEngine()
	rng := rand.New(rand.NewSource(44))
	instances := []*Instance{
		{NumVars: 3, Clauses: []Clause{{0, 1, 2}}},
		InstanceSatisfiable(),
		{NumVars: 4, Clauses: []Clause{{0, 1, 2}, {1, 2, 3}}},
		{NumVars: 4, Clauses: []Clause{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}},
	}
	for trial := 0; trial < 5; trial++ {
		instances = append(instances, Random(rng, 4, 2))
	}
	for _, ins := range instances {
		want := ins.Satisfiable()
		q := g.Theorem52Query(ins)
		got := engine.EvalBoolean(g.Tree, q)
		if got != want {
			t.Fatalf("Theorem 5.2: query satisfiable = %v, instance satisfiable = %v\ninstance %s",
				got, want, ins)
		}
	}
}

func TestTheorem52SignatureIsChildFollowing(t *testing.T) {
	g := MustBuildTheorem52()
	q := g.Theorem52Query(InstanceSatisfiable())
	sig := q.Signature()
	if len(sig) != 2 || sig[0] != axis.Child || sig[1] != axis.Following {
		t.Fatalf("signature = %v, want {Child, Following}", sig)
	}
	if core.Classify(sig).Complexity != core.NPComplete {
		t.Errorf("τ6 should classify NP-complete")
	}
}

func TestTheorem52ComputedTableLocked(t *testing.T) {
	// Lock the machine-computed distances for the committed geometry
	// (rowSize = 2): base 4 with row offsets {0,4,7} and column offsets
	// {0,4,7}. A change here means the gadget tree changed.
	g := MustBuildTheorem52()
	want := [3][3]int{{4, 8, 11}, {8, 12, 15}, {11, 15, 18}}
	if g.NANDTable() != want {
		t.Errorf("computed NAND table %v, want %v", g.NANDTable(), want)
	}
}

func TestTheorem52Deterministic(t *testing.T) {
	a := MustBuildTheorem52()
	b := MustBuildTheorem52()
	if !a.Tree.Equal(b.Tree) {
		t.Errorf("gadget tree not deterministic")
	}
	if a.D != b.D {
		t.Errorf("NAND tables differ across builds")
	}
}

func TestTheorem52RoomRank(t *testing.T) {
	g := MustBuildTheorem52()
	for side := 0; side <= 1; side++ {
		seen := 0
		for v := tree.NodeID(0); int(v) < g.Tree.Len(); v++ {
			if rank, ok := g.RoomRank(side, v); ok {
				if rank < 1 || rank > 3 {
					t.Errorf("rank %d out of range", rank)
				}
				seen++
			}
		}
		if seen != 3 {
			t.Errorf("side %d: %d rooms, want 3", side, seen)
		}
	}
}

func TestMaxFollowingChain(t *testing.T) {
	// Flat tree: root with 5 leaves — chain between first and last leaf
	// passes through the 3 middle leaves: max chain = 4 steps.
	tr := tree.MustParseTerm("R(a,b,c,d,e)")
	kids := tr.Children(tr.Root())
	if got := MaxFollowingChain(tr, kids[0], kids[4]); got != 4 {
		t.Errorf("flat chain = %d, want 4", got)
	}
	if got := MaxFollowingChain(tr, kids[4], kids[0]); got != -1 {
		t.Errorf("backward chain = %d, want -1", got)
	}
	if got := MaxFollowingChain(tr, kids[0], kids[1]); got != 1 {
		t.Errorf("adjacent chain = %d, want 1", got)
	}
	// Nested: subtree contents are not usable after their root.
	tr2 := tree.MustParseTerm("R(a(x,y),b)")
	a := tr2.Children(tr2.Root())[0]
	bnode := tr2.Children(tr2.Root())[1]
	if got := MaxFollowingChain(tr2, a, bnode); got != 1 {
		t.Errorf("nested chain = %d, want 1", got)
	}
	x := tr2.Children(a)[0]
	if got := MaxFollowingChain(tr2, x, bnode); got != 2 {
		t.Errorf("from x = %d, want 2 (x->y->b)", got)
	}
}

func TestEmulationTransforms(t *testing.T) {
	// Following' (Thm 5.5 / Cor 5.4): rewriting Following atoms through
	// NextSibling+ preserves semantics on every tree (Eq. (1)).
	rng := rand.New(rand.NewSource(7))
	engine := core.NewBacktrackEngine()
	for trial := 0; trial < 30; trial++ {
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(10), MaxChildren: 3,
			Alphabet: []string{"A", "B"},
		})
		q := cq.MustParse("Q() <- A(x), Following(x, y), B(y)")
		want := engine.EvalBoolean(tr, q)
		got := engine.EvalBoolean(tr, RewriteFollowingAtoms(q, axis.NextSiblingPlus, false))
		if got != want {
			t.Fatalf("NS+ emulation differs on %s", tr)
		}
	}
}

func TestHSeparatorEmulation(t *testing.T) {
	// On an H-separated tree, the NextSibling*-with-H pattern equals
	// Following between original (non-H) nodes.
	rng := rand.New(rand.NewSource(9))
	engine := core.NewBacktrackEngine()
	for trial := 0; trial < 20; trial++ {
		orig := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(8), MaxChildren: 3,
			Alphabet: []string{"A", "B"},
		})
		sep := InsertHSeparators(orig)
		q := cq.MustParse("Q() <- A(x), Following(x, y), B(y)")
		want := engine.EvalBoolean(sep, q)
		got := engine.EvalBoolean(sep, RewriteFollowingAtoms(q, axis.NextSiblingStar, true))
		if got != want {
			t.Fatalf("H emulation differs on %s", sep)
		}
	}
}

func TestSubdivideEdges(t *testing.T) {
	orig := tree.MustParseTerm("A(B(C),D)")
	sub := SubdivideEdges(orig)
	if sub.Len() != orig.Len()*2-1 {
		t.Fatalf("subdivided size %d, want %d", sub.Len(), orig.Len()*2-1)
	}
	// Depth of B doubles: 1 -> 2.
	bNode := sub.NodesWithLabel("B")[0]
	if sub.Depth(bNode) != 2 {
		t.Errorf("depth of B = %d, want 2", sub.Depth(bNode))
	}
	cNode := sub.NodesWithLabel("C")[0]
	if sub.Depth(cNode) != 4 {
		t.Errorf("depth of C = %d, want 4", sub.Depth(cNode))
	}
}

func TestPushDownMultiLabels(t *testing.T) {
	tr := Theorem51Tree()
	single := PushDownMultiLabels(tr)
	single.Walk(func(v tree.NodeID) bool {
		if len(single.Labels(v)) > 1 {
			t.Fatalf("node %d still multi-labeled: %v", v, single.Labels(v))
		}
		return true
	})
	if single.Len() <= tr.Len() {
		t.Errorf("push-down should add nodes")
	}
}

func TestInsertHSeparators(t *testing.T) {
	tr := tree.MustParseTerm("A(B,C,D)")
	sep := InsertHSeparators(tr)
	// Two H nodes inserted between the three siblings.
	if got := len(sep.NodesWithLabel("H")); got != 2 {
		t.Errorf("H nodes = %d, want 2", got)
	}
	if sep.Len() != 6 {
		t.Errorf("Len = %d, want 6", sep.Len())
	}
}
