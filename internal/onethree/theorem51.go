package onethree

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/cq"
	"repro/internal/tree"
)

// Theorem 5.1: conjunctive queries over τ4 = (Labels, Child, Child+) and
// τ5 = (Labels, Child, Child*) are NP-complete with respect to query
// complexity. The reduction from 1-in-3 3SAT (positive literals) maps
// every instance to a Boolean conjunctive query against the FIXED data
// tree of Fig. 4:
//
//	v1(X) ─ v2(X) ─ v3(X) ─┬─ branch 1: w[1,1] … w[1,10]
//	                       ├─ branch 2: w[2,1] … w[2,10]
//	                       └─ branch 3: w[3,1] … w[3,10]
//
// where branch m is a chain hanging under v3 (so w[m,j] has depth 2+j),
// w[m,m] carries label Y, w[m,j] for j in 4..10 carries both labels Lk'
// with k' ≠ m, and w[m,5+m] additionally carries Lm.
//
// The query has, per clause i, variables x_i, y_i with
// X(x_i), Y(y_i), Child³(x_i, y_i); and for every pair of clauses i ≠ j
// whose k-th literal of C_i equals the l-th literal of C_j, a variable
// z_{k,l,i,j} with Lk(z), Child◦(y_i, z), Child^{8+k−l}(x_j, z), where ◦
// is + on τ4 and * on τ5.

// Theorem51Tree builds the fixed data tree of Fig. 4. It is independent
// of the instance (query complexity: only the query grows).
func Theorem51Tree() *tree.Tree {
	b := tree.NewBuilder(3 + 3*10)
	v1 := b.AddNode(tree.NilNode, "X")
	v2 := b.AddNode(v1, "X")
	v3 := b.AddNode(v2, "X")
	for m := 1; m <= 3; m++ {
		parent := v3
		for j := 1; j <= 10; j++ {
			labels := w51Labels(m, j)
			parent = b.AddNode(parent, labels...)
		}
	}
	return b.Build()
}

// w51Labels returns the label set of node w[m,j].
func w51Labels(m, j int) []string {
	var labels []string
	if j == m {
		labels = append(labels, "Y")
	}
	if j >= 4 && j <= 10 {
		for k := 1; k <= 3; k++ {
			if k != m || j == 5+m {
				labels = append(labels, fmt.Sprintf("L%d", k))
			}
		}
	}
	return labels
}

// Theorem51Query builds the Boolean conjunctive query encoding ins over
// the Fig. 4 tree. If star is true the Child* axis is used for the
// y-to-z atoms (τ5); otherwise Child+ (τ4).
func Theorem51Query(ins *Instance, star bool) *cq.Query {
	if err := ins.Validate(); err != nil {
		panic(err)
	}
	closure := axis.ChildPlus
	if star {
		closure = axis.ChildStar
	}
	q := cq.New()
	xs := make([]cq.Var, len(ins.Clauses))
	ys := make([]cq.Var, len(ins.Clauses))
	for i := range ins.Clauses {
		xs[i] = q.AddVar(fmt.Sprintf("x%d", i))
		ys[i] = q.AddVar(fmt.Sprintf("y%d", i))
		q.AddLabel("X", xs[i])
		q.AddLabel("Y", ys[i])
		q.AddChain(axis.Child, xs[i], ys[i], 3)
	}
	for i, ci := range ins.Clauses {
		for j, cj := range ins.Clauses {
			if i == j {
				continue
			}
			for k := 1; k <= 3; k++ {
				for l := 1; l <= 3; l++ {
					if ci[k-1] != cj[l-1] {
						continue
					}
					z := q.AddVar(fmt.Sprintf("z_%d_%d_%d_%d", k, l, i, j))
					q.AddLabel(fmt.Sprintf("L%d", k), z)
					q.AddAtom(closure, ys[i], z)
					q.AddChain(axis.Child, xs[j], z, 8+k-l)
				}
			}
		}
	}
	return q
}

// Theorem51Valuation converts a 1-in-3 selector (σ(i) = 1-based position
// of the true literal of clause i) into the satisfaction θ constructed in
// the proof's "⇒" direction, mapping query variable names to nodes:
//
//	θ(x_i) = v_{σ(i)},  θ(y_i) = w[σ(i), σ(i)],
//	θ(z_{k,l,i,j}) = w[σ(i), 5+k−l+σ(j)].
//
// Used by tests to validate the reduction constructively. Chain-shortcut
// helper variables are resolved by walking the Child chains.
func Theorem51Valuation(t *tree.Tree, q *cq.Query, ins *Instance, sel []int) (map[string]tree.NodeID, bool) {
	if len(sel) != len(ins.Clauses) {
		return nil, false
	}
	v := make([]tree.NodeID, 4)   // v[1..3]
	w := make([][]tree.NodeID, 4) // w[m][1..10]
	v[1] = t.Root()
	v[2] = t.Children(v[1])[0]
	v[3] = t.Children(v[2])[0]
	for m := 1; m <= 3; m++ {
		w[m] = make([]tree.NodeID, 11)
		cur := t.Children(v[3])[m-1]
		for j := 1; j <= 10; j++ {
			w[m][j] = cur
			if j < 10 {
				cur = t.Children(cur)[0]
			}
		}
	}
	theta := map[string]tree.NodeID{}
	for i := range ins.Clauses {
		s := sel[i]
		theta[fmt.Sprintf("x%d", i)] = v[s]
		theta[fmt.Sprintf("y%d", i)] = w[s][s]
	}
	for i, ci := range ins.Clauses {
		for j, cj := range ins.Clauses {
			if i == j {
				continue
			}
			for k := 1; k <= 3; k++ {
				for l := 1; l <= 3; l++ {
					if ci[k-1] != cj[l-1] {
						continue
					}
					idx := 5 + k - l + sel[j]
					if idx < 1 || idx > 10 {
						return nil, false
					}
					theta[fmt.Sprintf("z_%d_%d_%d_%d", k, l, i, j)] = w[sel[i]][idx]
				}
			}
		}
	}
	return theta, true
}
