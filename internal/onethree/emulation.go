package onethree

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/cq"
	"repro/internal/tree"
)

// This file implements the transformation machinery the paper uses to
// carry the Theorem 5.2 hardness construction to the remaining
// signatures (Theorems 5.3–5.8):
//
//   - Eq. (1) / Cor. 5.4: Following(x,y) ≡
//     ∃z1 z2: Child*(z1,x) ∧ NextSibling+(z1,z2) ∧ Child*(z2,y);
//   - Thm. 5.5: Following′(x,y) := ∃z1 z2: Child*(z1,x) ∧
//     NextSibling(z1,z2) ∧ Child*(z2,y) — a subrelation of Following that
//     coincides with it on trees where every node is an only child or has
//     its relevant siblings adjacent;
//   - Thm. 5.6: Following with NextSibling* forced to advance via
//     H-labeled separator nodes interleaved between adjacent siblings
//     (Fig. 6): Following″(x,y) := ∃z1 z2 z3: Child*(z1,x) ∧
//     NextSibling*(z1,z2) ∧ H(z2) ∧ NextSibling*(z2,z3) ∧ Child*(z3,y);
//   - Thm. 5.7: edge subdivision of the data tree (every edge 〈u,w〉
//     replaced by 〈u,v〉,〈v,w〉 with fresh v) so that Child+ can stand in
//     for Child in gadget chains;
//   - the multi-label elimination noted after Thm. 5.1: push extra labels
//     down to fresh children so hardness holds for single-labeled trees.

// RewriteFollowingAtoms replaces every Following(x, y) atom of q by the
// three-atom pattern pat (one of the emulations above), returning a new
// query over the corresponding signature. The pattern is selected by the
// sibling axis to use; withH interleaves the H-separator hop of Thm 5.6.
func RewriteFollowingAtoms(q *cq.Query, sibling axis.Axis, withH bool) *cq.Query {
	out := q.Clone()
	atoms := out.Atoms
	out.Atoms = nil
	for _, at := range atoms {
		if at.Axis != axis.Following {
			out.Atoms = append(out.Atoms, at)
			continue
		}
		z1 := out.FreshVar("fz1")
		out.AddAtom(axis.ChildStar, z1, at.X)
		if withH {
			z2 := out.FreshVar("fz2")
			z3 := out.FreshVar("fz3")
			out.AddAtom(sibling, z1, z2)
			out.AddLabel("H", z2)
			out.AddAtom(sibling, z2, z3)
			out.AddAtom(axis.ChildStar, z3, at.Y)
		} else {
			z2 := out.FreshVar("fz2")
			out.AddAtom(sibling, z1, z2)
			out.AddAtom(axis.ChildStar, z2, at.Y)
		}
	}
	return out
}

// InsertHSeparators returns a copy of t with an H-labeled leaf inserted
// between every pair of adjacent siblings (the Fig. 6 tree
// transformation for Theorem 5.6). Existing nodes keep their labels.
func InsertHSeparators(t *tree.Tree) *tree.Tree {
	b := tree.NewBuilder(2 * t.Len())
	var rec func(v tree.NodeID, parent tree.NodeID)
	rec = func(v tree.NodeID, parent tree.NodeID) {
		id := b.AddNode(parent, t.Labels(v)...)
		kids := t.Children(v)
		for i, c := range kids {
			if i > 0 {
				b.AddNode(id, "H")
			}
			rec(c, id)
		}
	}
	if t.Len() > 0 {
		rec(t.Root(), tree.NilNode)
	}
	return b.Build()
}

// SubdivideEdges returns a copy of t in which every parent-child edge is
// subdivided by a fresh unlabeled node (the Theorem 5.7 transformation):
// a node at depth d in t sits at depth 2d in the result.
func SubdivideEdges(t *tree.Tree) *tree.Tree {
	b := tree.NewBuilder(2 * t.Len())
	var rec func(v tree.NodeID, parent tree.NodeID)
	rec = func(v tree.NodeID, parent tree.NodeID) {
		attach := parent
		if parent != tree.NilNode {
			attach = b.AddNode(parent) // subdivision node
		}
		id := b.AddNode(attach, t.Labels(v)...)
		for _, c := range t.Children(v) {
			rec(c, id)
		}
	}
	if t.Len() > 0 {
		rec(t.Root(), tree.NilNode)
	}
	return b.Build()
}

// PushDownMultiLabels eliminates multi-labeled nodes (remark after the
// proof of Theorem 5.1): each extra label beyond the first moves to a
// fresh child carrying that label prefixed with "@". Queries over the
// original tree are adapted with AdaptQueryToPushedLabels. The resulting
// tree has at most one label per node.
func PushDownMultiLabels(t *tree.Tree) *tree.Tree {
	b := tree.NewBuilder(2 * t.Len())
	var rec func(v tree.NodeID, parent tree.NodeID)
	rec = func(v tree.NodeID, parent tree.NodeID) {
		labels := t.Labels(v)
		var first []string
		if len(labels) > 0 {
			first = labels[:1]
		}
		id := b.AddNode(parent, first...)
		if len(labels) > 1 {
			for _, extra := range labels[1:] {
				b.AddNode(id, "@"+extra)
			}
		}
		for _, c := range t.Children(v) {
			rec(c, id)
		}
	}
	if t.Len() > 0 {
		rec(t.Root(), tree.NilNode)
	}
	return b.Build()
}

// AdaptQueryToPushedLabels rewrites a query to run against
// PushDownMultiLabels(t) given the original t: for each unary atom L(x)
// where L occurs anywhere in t as a non-first label, the atom is replaced
// by Child(x, x') ∧ @L(x') (the label may now live on a child); atoms
// whose label only ever occurs first are left alone. This preserves
// satisfiability for the Theorem 5.1 construction, where the first label
// is position-determined.
func AdaptQueryToPushedLabels(t *tree.Tree, q *cq.Query) *cq.Query {
	// Which labels occur as non-first labels somewhere?
	pushed := map[string]bool{}
	demoted := map[string]bool{} // labels that sometimes stay first
	for v := tree.NodeID(0); int(v) < t.Len(); v++ {
		for i, l := range t.Labels(v) {
			if i == 0 {
				demoted[l] = true
			} else {
				pushed[l] = true
			}
		}
	}
	out := q.Clone()
	labels := out.Labels
	out.Labels = nil
	for _, la := range labels {
		if pushed[la.Label] && !demoted[la.Label] {
			// Always a pushed label: match via fresh child.
			h := out.FreshVar("lab")
			out.AddAtom(axis.Child, la.X, h)
			out.AddLabel("@"+la.Label, h)
			continue
		}
		if pushed[la.Label] && demoted[la.Label] {
			// Mixed occurrence: not adaptable without disjunction; keep
			// the direct atom — callers must avoid this case (the
			// Theorem 5.1 tree is engineered so each label class is
			// uniform). Panic to surface misuse.
			panic(fmt.Sprintf("onethree: label %q occurs both first and pushed; query not adaptable", la.Label))
		}
		out.Labels = append(out.Labels, la)
	}
	return out
}
