// Package onethree implements the NP-hardness laboratory of §5 of
// "Conjunctive Queries over Trees": the 1-in-3 3SAT problem (the source of
// every reduction in the paper) and the reductions of Theorems 5.1–5.8,
// which encode a 1-in-3 3SAT instance as a Boolean conjunctive query over
// a fixed data tree for each intractable two-axis signature.
//
// All instances use positive literals only; 1-in-3 3SAT remains
// NP-complete under that restriction [Schaefer 1978].
package onethree

import (
	"fmt"
	"math/rand"
	"strings"
)

// Clause is an ordered triple of positive literals (variable indexes).
// The paper's reductions depend on clause positions 1..3, so order matters.
type Clause [3]int

// Instance is a 1-in-3 3SAT instance over positive literals: is there a
// truth assignment such that each clause has exactly one true literal?
type Instance struct {
	NumVars int
	Clauses []Clause
}

// Validate checks structural sanity: three distinct in-range literals per
// clause (the proofs of §5 assume no clause repeats a literal).
func (ins *Instance) Validate() error {
	for ci, c := range ins.Clauses {
		for k := 0; k < 3; k++ {
			if c[k] < 0 || c[k] >= ins.NumVars {
				return fmt.Errorf("onethree: clause %d literal %d out of range", ci, k)
			}
			for l := k + 1; l < 3; l++ {
				if c[k] == c[l] {
					return fmt.Errorf("onethree: clause %d repeats literal %d", ci, c[k])
				}
			}
		}
	}
	return nil
}

// String renders e.g. "(x0|x1|x2)&(x1|x3|x4)".
func (ins *Instance) String() string {
	parts := make([]string, len(ins.Clauses))
	for i, c := range ins.Clauses {
		parts[i] = fmt.Sprintf("(x%d|x%d|x%d)", c[0], c[1], c[2])
	}
	return strings.Join(parts, "&")
}

// Assignment maps variable index to truth value.
type Assignment []bool

// Satisfies reports whether exactly one literal of every clause is true.
func (ins *Instance) Satisfies(a Assignment) bool {
	if len(a) < ins.NumVars {
		return false
	}
	for _, c := range ins.Clauses {
		count := 0
		for _, v := range c {
			if a[v] {
				count++
			}
		}
		if count != 1 {
			return false
		}
	}
	return true
}

// SolveBrute finds a satisfying assignment by exhaustive search (ground
// truth for the reduction tests), or nil. Exponential in NumVars.
func (ins *Instance) SolveBrute() Assignment {
	if ins.NumVars > 25 {
		panic("onethree: SolveBrute beyond 25 variables")
	}
	for mask := 0; mask < 1<<ins.NumVars; mask++ {
		a := make(Assignment, ins.NumVars)
		for i := 0; i < ins.NumVars; i++ {
			a[i] = mask&(1<<i) != 0
		}
		if ins.Satisfies(a) {
			return a
		}
	}
	return nil
}

// Satisfiable reports brute-force satisfiability.
func (ins *Instance) Satisfiable() bool { return ins.SolveBrute() != nil }

// SelectorFromAssignment converts a satisfying assignment into the
// solution mapping σ used in the proofs: σ(i) = position (1-based) of the
// unique true literal of clause i. Returns nil if a is not a solution.
func (ins *Instance) SelectorFromAssignment(a Assignment) []int {
	if !ins.Satisfies(a) {
		return nil
	}
	sel := make([]int, len(ins.Clauses))
	for i, c := range ins.Clauses {
		for k, v := range c {
			if a[v] {
				sel[i] = k + 1
			}
		}
	}
	return sel
}

// AssignmentFromSelector converts a selector σ into the induced truth
// assignment (true iff selected in some clause); the result satisfies the
// instance iff σ is a consistent selection.
func (ins *Instance) AssignmentFromSelector(sel []int) Assignment {
	a := make(Assignment, ins.NumVars)
	for i, c := range ins.Clauses {
		a[c[sel[i]-1]] = true
	}
	return a
}

// Random generates a random instance with the given clause count over
// numVars variables (numVars >= 3).
func Random(rng *rand.Rand, numVars, numClauses int) *Instance {
	if numVars < 3 {
		panic("onethree: Random needs numVars >= 3")
	}
	ins := &Instance{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		perm := rng.Perm(numVars)
		ins.Clauses = append(ins.Clauses, Clause{perm[0], perm[1], perm[2]})
	}
	return ins
}

// Fixed well-known instances for tests and demos.

// InstanceSatisfiable returns a small satisfiable instance:
// clauses (0,1,2) and (2,3,4); x2=true satisfies both exactly once.
func InstanceSatisfiable() *Instance {
	return &Instance{NumVars: 5, Clauses: []Clause{{0, 1, 2}, {2, 3, 4}}}
}

// InstanceUnsatisfiable returns a small unsatisfiable instance: all four
// clauses over {0,1,2,3} — any assignment gives some clause 0 or 2 true
// literals.
func InstanceUnsatisfiable() *Instance {
	return &Instance{NumVars: 4, Clauses: []Clause{
		{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3},
	}}
}
