package cq

import (
	"testing"

	"repro/internal/axis"
)

func TestClassifyAcyclic(t *testing.T) {
	cases := []struct {
		src  string
		want Class
	}{
		{"Q() <- Child(x, y), Child(y, z)", Acyclic},
		{"Q() <- A(x)", Acyclic},
		{"Q() <- true", Acyclic},
		{"Q() <- Child(x, y), Child(x, z)", Acyclic}, // branching ok
		{"Q() <- Child(x, z), Child(y, z)", Acyclic}, // v-structure: still a forest
		{"Q() <- Child(x, y)", Acyclic},
		{"Q() <- Child+(x, y), Child+(y, x)", Cyclic},                                 // directed 2-cycle
		{"Q() <- Child*(x, x)", Cyclic},                                               // self loop
		{"Q() <- Child(x, y), Child(y, z), Child+(x, z)", DirectedAcyclic},            // triangle
		{"Q() <- S(x), Child+(x, y), Child+(x, z), Following(y, z)", DirectedAcyclic}, // Fig. 1
	}
	for _, tc := range cases {
		q := MustParse(tc.src)
		if got := Classify(q); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestTwoAtomsIntoSameVarIsTree(t *testing.T) {
	// x -> z <- y is a tree in the undirected shadow (3 vars, 2 edges, no
	// cycle) — double-check the classification above.
	q := MustParse("Q() <- Child(x, z), Child(y, z)")
	g := NewGraph(q)
	if !g.IsForest() {
		t.Errorf("v-structure should be a forest")
	}
	if Classify(q) != Acyclic {
		t.Errorf("v-structure should classify acyclic")
	}
}

func TestParallelAtomsFormUndirectedCycle(t *testing.T) {
	q := MustParse("Q() <- Child+(x, y), Child*(x, y)")
	g := NewGraph(q)
	if g.IsForest() {
		t.Errorf("parallel edges should form an undirected cycle")
	}
	atoms := g.UndirectedCycleAtoms()
	if len(atoms) != 2 {
		t.Errorf("parallel-edge cycle should have 2 atoms, got %v", atoms)
	}
	if Classify(q) != DirectedAcyclic {
		t.Errorf("Classify = %v", Classify(q))
	}
}

func TestDirectedCycleExtraction(t *testing.T) {
	q := MustParse("Q() <- Child*(x, y), NextSibling*(y, z), Child*(z, x)")
	g := NewGraph(q)
	cyc := g.DirectedCycle()
	if len(cyc) != 3 {
		t.Fatalf("cycle length %d, want 3", len(cyc))
	}
	// Verify it is a real cycle: consecutive vars connected by atoms.
	for i := range cyc {
		from, to := cyc[i], cyc[(i+1)%len(cyc)]
		found := false
		for _, e := range g.Out(from) {
			if e.To == to {
				found = true
			}
		}
		if !found {
			t.Errorf("no edge %v -> %v in extracted cycle", from, to)
		}
	}
}

func TestSelfLoopDirectedCycle(t *testing.T) {
	q := MustParse("Q() <- Child+(x, x)")
	g := NewGraph(q)
	cyc := g.DirectedCycle()
	if len(cyc) != 1 {
		t.Errorf("self-loop cycle length %d, want 1", len(cyc))
	}
}

func TestTopoOrder(t *testing.T) {
	q := MustParse("Q() <- Child(x, y), Child(y, z), Child(x, w)")
	g := NewGraph(q)
	order := g.TopoOrder()
	if order == nil {
		t.Fatal("TopoOrder returned nil for DAG")
	}
	pos := map[Var]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, at := range q.Atoms {
		if pos[at.X] >= pos[at.Y] {
			t.Errorf("topo order violates atom %v", at)
		}
	}
	cyclic := MustParse("Q() <- Child(x, y), Child(y, x)")
	if NewGraph(cyclic).TopoOrder() != nil {
		t.Errorf("TopoOrder should be nil for cyclic graph")
	}
}

func TestVariablePaths(t *testing.T) {
	// x -> u -> y and x -> u -> v -> z (the example below Lemma 6.4's
	// figure reference in §7: Π_Q = {xuy, xuvz}).
	q := New()
	x := q.AddVar("x")
	u := q.AddVar("u")
	y := q.AddVar("y")
	v := q.AddVar("v")
	z := q.AddVar("z")
	q.AddAtom(axis.Child, x, u)
	q.AddAtom(axis.Child, u, y)
	q.AddAtom(axis.Child, u, v)
	q.AddAtom(axis.Child, v, z)
	g := NewGraph(q)
	paths := g.VariablePaths()
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	asString := func(p []Var) string {
		s := ""
		for _, vv := range p {
			s += q.VarName(vv)
		}
		return s
	}
	got := map[string]bool{}
	for _, p := range paths {
		got[asString(p)] = true
	}
	if !got["xuy"] || !got["xuvz"] {
		t.Errorf("paths = %v", got)
	}
}

func TestVariablePathsPanicsOnCycle(t *testing.T) {
	q := MustParse("Q() <- Child(x, y), Child(y, x)")
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewGraph(q).VariablePaths()
}

func TestDegrees(t *testing.T) {
	q := MustParse("Q() <- Child(x, y), Child(x, z), Child(w, x)")
	g := NewGraph(q)
	x, _ := q.VarByName("x")
	if g.OutDegree(x) != 2 || g.InDegree(x) != 1 {
		t.Errorf("degrees of x: out %d in %d", g.OutDegree(x), g.InDegree(x))
	}
}
