package cq

import (
	"repro/internal/axis"
)

// Graph is the query graph of a conjunctive query (§2): a directed
// multigraph whose vertices are the query's variables, with a labeled
// directed edge x --R--> y for every binary atom R(x, y). Node labels are
// the unary atoms.
type Graph struct {
	q   *Query
	out [][]Edge // out[x] = edges leaving x
	in  [][]Edge // in[y]  = edges entering y
}

// Edge is one binary atom viewed as a graph edge. AtomIndex points back
// into q.Atoms.
type Edge struct {
	Axis      axis.Axis
	From, To  Var
	AtomIndex int
}

// NewGraph builds the query graph of q.
func NewGraph(q *Query) *Graph {
	g := &Graph{
		q:   q,
		out: make([][]Edge, q.NumVars()),
		in:  make([][]Edge, q.NumVars()),
	}
	for i, at := range q.Atoms {
		e := Edge{Axis: at.Axis, From: at.X, To: at.Y, AtomIndex: i}
		g.out[at.X] = append(g.out[at.X], e)
		g.in[at.Y] = append(g.in[at.Y], e)
	}
	return g
}

// Out returns the edges leaving x.
func (g *Graph) Out(x Var) []Edge { return g.out[x] }

// In returns the edges entering y.
func (g *Graph) In(y Var) []Edge { return g.in[y] }

// OutDegree and InDegree return edge counts.
func (g *Graph) OutDegree(x Var) int { return len(g.out[x]) }

// InDegree returns the number of edges entering y.
func (g *Graph) InDegree(y Var) int { return len(g.in[y]) }

// DirectedCycle returns the variables of some directed cycle in the query
// graph, in cycle order, or nil if the graph is a DAG. Self-loops R(x, x)
// count as cycles of length 1.
func (g *Graph) DirectedCycle() []Var {
	n := g.q.NumVars()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, n)
	parentEdge := make([]Var, n)
	for i := range parentEdge {
		parentEdge[i] = NilVar
	}
	var cycle []Var
	var dfs func(x Var) bool
	dfs = func(x Var) bool {
		color[x] = gray
		for _, e := range g.out[x] {
			switch color[e.To] {
			case white:
				parentEdge[e.To] = x
				if dfs(e.To) {
					return true
				}
			case gray:
				// Found a cycle: walk back from x to e.To.
				cycle = []Var{e.To}
				for v := x; v != e.To; v = parentEdge[v] {
					cycle = append(cycle, v)
				}
				// Reverse into cycle order e.To -> ... -> x.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			case black:
				// done
			}
		}
		color[x] = black
		return false
	}
	for x := Var(0); int(x) < n; x++ {
		if color[x] == white && dfs(x) {
			return cycle
		}
	}
	return nil
}

// HasDirectedCycle reports whether the query graph contains a directed
// cycle.
func (g *Graph) HasDirectedCycle() bool { return g.DirectedCycle() != nil }

// UndirectedCycleAtoms returns the atom indexes of some cycle in the
// undirected shadow of the query graph (footnote 8), or nil if the shadow
// is a forest. Parallel edges between the same pair of variables and
// self-loops count as undirected cycles.
func (g *Graph) UndirectedCycleAtoms() []int {
	n := g.q.NumVars()
	visited := make([]bool, n)
	// parent info for walking back
	parentVar := make([]Var, n)
	parentAtom := make([]int, n)
	for i := range parentVar {
		parentVar[i] = NilVar
		parentAtom[i] = -1
	}
	type step struct {
		v        Var
		fromAtom int // atom index used to enter v, -1 for roots
	}
	for root := Var(0); int(root) < n; root++ {
		if visited[root] {
			continue
		}
		stack := []step{{root, -1}}
		visited[root] = true
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			neighbors := make([]Edge, 0, len(g.out[s.v])+len(g.in[s.v]))
			neighbors = append(neighbors, g.out[s.v]...)
			neighbors = append(neighbors, g.in[s.v]...)
			for _, e := range neighbors {
				w := e.To
				if w == s.v {
					w = e.From
				}
				if e.AtomIndex == s.fromAtom {
					continue // don't reuse the tree edge we came in on
				}
				if e.From == e.To {
					return []int{e.AtomIndex} // self-loop
				}
				if !visited[w] {
					visited[w] = true
					parentVar[w] = s.v
					parentAtom[w] = e.AtomIndex
					stack = append(stack, step{w, e.AtomIndex})
					continue
				}
				// w already visited: undirected cycle. Reconstruct by
				// walking both endpoints up to the root, collecting atoms.
				atoms := []int{e.AtomIndex}
				onPath := map[Var]int{} // var -> position in path from s.v
				path := []Var{}
				for v := s.v; v != NilVar; v = parentVar[v] {
					onPath[v] = len(path)
					path = append(path, v)
				}
				for v := w; ; v = parentVar[v] {
					if _, ok := onPath[v]; ok {
						// v is the meeting point; add atoms from s.v up to v.
						for u := s.v; u != v; u = parentVar[u] {
							atoms = append(atoms, parentAtom[u])
						}
						return atoms
					}
					atoms = append(atoms, parentAtom[v])
				}
			}
		}
	}
	return nil
}

// IsForest reports whether the undirected shadow of the query graph is a
// forest — the standard acyclicity notion for conjunctive queries with at
// most binary relations (§6).
func (g *Graph) IsForest() bool { return g.UndirectedCycleAtoms() == nil }

// Class is the cyclicity classification of a query.
type Class int

// Classification values, from most to least restrictive.
const (
	// Acyclic: the undirected shadow is a forest (an ABCQ body, §7).
	Acyclic Class = iota
	// DirectedAcyclic: directed cycles absent but undirected cycles
	// present (a DABCQ body that is not an ABCQ, §7).
	DirectedAcyclic
	// Cyclic: the query graph has a directed cycle.
	Cyclic
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Acyclic:
		return "acyclic"
	case DirectedAcyclic:
		return "directed-acyclic"
	case Cyclic:
		return "cyclic"
	default:
		return "invalid"
	}
}

// Classify returns the cyclicity class of q.
func Classify(q *Query) Class {
	g := NewGraph(q)
	if g.HasDirectedCycle() {
		return Cyclic
	}
	if !g.IsForest() {
		return DirectedAcyclic
	}
	return Acyclic
}

// TopoOrder returns the variables in a topological order of the query
// graph (sources first), or nil if the graph has a directed cycle.
func (g *Graph) TopoOrder() []Var {
	n := g.q.NumVars()
	indeg := make([]int, n)
	for x := 0; x < n; x++ {
		for _, e := range g.out[x] {
			indeg[e.To]++
		}
	}
	queue := make([]Var, 0, n)
	for x := Var(0); int(x) < n; x++ {
		if indeg[x] == 0 {
			queue = append(queue, x)
		}
	}
	order := make([]Var, 0, n)
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		order = append(order, x)
		for _, e := range g.out[x] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != n {
		return nil
	}
	return order
}

// VariablePaths returns Π_Q (§7): the set of variable paths in the query
// graph from in-degree-zero variables to out-degree-zero variables. It
// requires the graph to be a DAG and panics otherwise (callers classify
// first). Paths are returned as variable sequences.
func (g *Graph) VariablePaths() [][]Var {
	if g.HasDirectedCycle() {
		panic("cq: VariablePaths on a cyclic query graph")
	}
	n := g.q.NumVars()
	used := g.q.UsedVars()
	var out [][]Var
	var walk func(path []Var, v Var)
	walk = func(path []Var, v Var) {
		path = append(path, v)
		if len(g.out[v]) == 0 {
			cp := make([]Var, len(path))
			copy(cp, path)
			out = append(out, cp)
			return
		}
		for _, e := range g.out[v] {
			walk(path, e.To)
		}
	}
	for v := Var(0); int(v) < n; v++ {
		if used[v] && len(g.in[v]) == 0 {
			walk(nil, v)
		}
	}
	return out
}
