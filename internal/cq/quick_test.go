package cq

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/axis"
)

// randomQuery builds a random query for property tests.
func randomQuick(rng *rand.Rand) *Query {
	q := New()
	nv := 1 + rng.Intn(5)
	vars := make([]Var, nv)
	for i := range vars {
		vars[i] = q.AddVar(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < rng.Intn(6); i++ {
		q.AddAtom(axis.PaperAxes[rng.Intn(len(axis.PaperAxes))],
			vars[rng.Intn(nv)], vars[rng.Intn(nv)])
	}
	for i := 0; i < rng.Intn(3); i++ {
		q.AddLabel(string(rune('A'+rng.Intn(3))), vars[rng.Intn(nv)])
	}
	if rng.Intn(2) == 0 {
		q.SetHead(vars[rng.Intn(nv)])
	}
	return q
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuick(rng)
		back, err := Parse(q.String())
		if err != nil {
			return false
		}
		return back.String() == q.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuick(rng)
		n1 := q.Normalize()
		n2 := n1.Normalize()
		return n1.CanonicalKey() == n2.CanonicalKey()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickClassifyInvariantUnderNormalize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuick(rng)
		return Classify(q) == Classify(q.Normalize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuick(rng)
		before := q.String()
		c := q.Clone()
		c.AddVar("zz_extra")
		if c.NumVars() > 0 {
			c.AddLabel("ZZ", Var(0))
		}
		return q.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSignatureSubsetOfPaperAxes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuick(rng)
		for _, a := range q.Signature() {
			found := false
			for _, p := range axis.PaperAxes {
				if a == p {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
