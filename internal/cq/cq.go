// Package cq implements conjunctive queries over trees (§2 of "Conjunctive
// Queries over Trees"): datalog-style queries built from unary label atoms
// Label_a(x) and binary axis atoms R(x, y), with a tuple of free (head)
// variables. The 0-ary queries are Boolean, the unary ones monadic.
//
// The package provides the query graph (a directed multigraph with node
// and edge labels, Fig. 1), directed- and undirected-cycle analysis used
// by the rewriting system of §6, a parser for the paper's rule notation,
// and homomorphism-based containment checking for small queries (used by
// the test suite to verify rewrites).
package cq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/axis"
)

// Var is a query variable, identified by a dense non-negative index within
// its Query.
type Var int32

// NilVar is the sentinel "no variable".
const NilVar Var = -1

// LabelAtom is a unary atom Label(x): variable x must be mapped to a node
// carrying the label.
type LabelAtom struct {
	Label string
	X     Var
}

// AxisAtom is a binary atom R(x, y) over an axis relation R.
type AxisAtom struct {
	Axis axis.Axis
	X, Y Var
}

// Query is a conjunctive query. The zero value is an empty Boolean query
// (trivially true on any non-empty tree once it has no atoms and no head).
//
// Queries are mutable during construction (AddVar/AddLabel/AddAtom) and
// treated as immutable afterwards by the evaluation engines.
type Query struct {
	names  []string // variable names, index = Var
	byName map[string]Var

	Head   []Var // free variables; empty = Boolean query
	Labels []LabelAtom
	Atoms  []AxisAtom
}

// New returns an empty query ready for construction.
func New() *Query {
	return &Query{byName: map[string]Var{}}
}

// NumVars returns the number of variables.
func (q *Query) NumVars() int { return len(q.names) }

// VarName returns the name of x.
func (q *Query) VarName(x Var) string { return q.names[x] }

// VarByName returns the variable with the given name.
func (q *Query) VarByName(name string) (Var, bool) {
	v, ok := q.byName[name]
	return v, ok
}

// AddVar returns the variable named name, creating it if necessary.
func (q *Query) AddVar(name string) Var {
	if q.byName == nil {
		q.byName = map[string]Var{}
	}
	if v, ok := q.byName[name]; ok {
		return v
	}
	v := Var(len(q.names))
	q.names = append(q.names, name)
	q.byName[name] = v
	return v
}

// FreshVar creates a new variable with a generated, non-colliding name
// based on hint.
func (q *Query) FreshVar(hint string) Var {
	if hint == "" {
		hint = "v"
	}
	name := hint
	for i := 1; ; i++ {
		if _, ok := q.byName[name]; !ok {
			return q.AddVar(name)
		}
		name = fmt.Sprintf("%s_%d", hint, i)
	}
}

// AddLabel appends the unary atom Label(x).
func (q *Query) AddLabel(label string, x Var) {
	q.Labels = append(q.Labels, LabelAtom{Label: label, X: x})
}

// AddAtom appends the binary atom a(x, y).
func (q *Query) AddAtom(a axis.Axis, x, y Var) {
	q.Atoms = append(q.Atoms, AxisAtom{Axis: a, X: x, Y: y})
}

// AddChain appends a chain of k a-atoms leading from x to y through k-1
// fresh variables — the shortcut notation χ^k(x, y) of §5. AddChain panics
// if k < 1.
func (q *Query) AddChain(a axis.Axis, x, y Var, k int) {
	if k < 1 {
		panic(fmt.Sprintf("cq: AddChain with k = %d", k))
	}
	cur := x
	for i := 1; i < k; i++ {
		next := q.FreshVar(fmt.Sprintf("%s_c", q.names[x]))
		q.AddAtom(a, cur, next)
		cur = next
	}
	q.AddAtom(a, cur, y)
}

// SetHead declares the free variables of the query, in order.
func (q *Query) SetHead(vars ...Var) { q.Head = append(q.Head[:0], vars...) }

// IsBoolean reports whether the query has no free variables.
func (q *Query) IsBoolean() bool { return len(q.Head) == 0 }

// Size returns |Q|, the number of atoms in the body (the measure used for
// query sizes in §7).
func (q *Query) Size() int { return len(q.Labels) + len(q.Atoms) }

// Signature returns the sorted set of axes used by the query.
func (q *Query) Signature() []axis.Axis {
	seen := map[axis.Axis]bool{}
	for _, at := range q.Atoms {
		seen[at.Axis] = true
	}
	out := make([]axis.Axis, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LabelsOf returns the labels required on x, sorted.
func (q *Query) LabelsOf(x Var) []string {
	var out []string
	for _, la := range q.Labels {
		if la.X == x {
			out = append(out, la.Label)
		}
	}
	sort.Strings(out)
	return out
}

// UsedVars returns, for each variable, whether it occurs in any atom or in
// the head.
func (q *Query) UsedVars() []bool {
	used := make([]bool, len(q.names))
	for _, v := range q.Head {
		used[v] = true
	}
	for _, la := range q.Labels {
		used[la.X] = true
	}
	for _, at := range q.Atoms {
		used[at.X], used[at.Y] = true, true
	}
	return used
}

// Clone returns a deep copy of q sharing no mutable state.
func (q *Query) Clone() *Query {
	c := &Query{
		names:  append([]string(nil), q.names...),
		byName: make(map[string]Var, len(q.byName)),
		Head:   append([]Var(nil), q.Head...),
		Labels: append([]LabelAtom(nil), q.Labels...),
		Atoms:  append([]AxisAtom(nil), q.Atoms...),
	}
	for k, v := range q.byName {
		c.byName[k] = v
	}
	return c
}

// SubstituteVar replaces every occurrence of from (in head and body) by to.
// The variable from remains allocated but unused.
func (q *Query) SubstituteVar(from, to Var) {
	if from == to {
		return
	}
	for i, v := range q.Head {
		if v == from {
			q.Head[i] = to
		}
	}
	for i := range q.Labels {
		if q.Labels[i].X == from {
			q.Labels[i].X = to
		}
	}
	for i := range q.Atoms {
		if q.Atoms[i].X == from {
			q.Atoms[i].X = to
		}
		if q.Atoms[i].Y == from {
			q.Atoms[i].Y = to
		}
	}
}

// RemoveAtom deletes the binary atom at index i (order not preserved).
func (q *Query) RemoveAtom(i int) {
	q.Atoms[i] = q.Atoms[len(q.Atoms)-1]
	q.Atoms = q.Atoms[:len(q.Atoms)-1]
}

// Dedup removes duplicate label and axis atoms.
func (q *Query) Dedup() {
	seenL := map[LabelAtom]bool{}
	outL := q.Labels[:0]
	for _, la := range q.Labels {
		if !seenL[la] {
			seenL[la] = true
			outL = append(outL, la)
		}
	}
	q.Labels = outL
	seenA := map[AxisAtom]bool{}
	outA := q.Atoms[:0]
	for _, at := range q.Atoms {
		if !seenA[at] {
			seenA[at] = true
			outA = append(outA, at)
		}
	}
	q.Atoms = outA
}

// String renders the query in the paper's rule notation, e.g.
//
//	Q(z) <- A(x), Child(x,y), B(y), Following(x,z), C(z).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("Q(")
	for i, v := range q.Head {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(q.names[v])
	}
	sb.WriteString(") <- ")
	first := true
	write := func(s string) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(s)
	}
	for _, la := range q.Labels {
		write(fmt.Sprintf("%s(%s)", la.Label, q.names[la.X]))
	}
	for _, at := range q.Atoms {
		write(fmt.Sprintf("%s(%s, %s)", at.Axis, q.names[at.X], q.names[at.Y]))
	}
	if first {
		sb.WriteString("true")
	}
	sb.WriteString(".")
	return sb.String()
}

// CanonicalKey returns a string that identifies the query up to reordering
// of atoms (but not up to variable renaming); used for deduplicating the
// conjunctive queries of an APQ during rewriting.
func (q *Query) CanonicalKey() string {
	ls := make([]string, 0, len(q.Labels))
	for _, la := range q.Labels {
		ls = append(ls, fmt.Sprintf("%s/%d", la.Label, la.X))
	}
	sort.Strings(ls)
	as := make([]string, 0, len(q.Atoms))
	for _, at := range q.Atoms {
		as = append(as, fmt.Sprintf("%d/%d/%d", at.Axis, at.X, at.Y))
	}
	sort.Strings(as)
	hs := make([]string, 0, len(q.Head))
	for _, v := range q.Head {
		hs = append(hs, fmt.Sprintf("%d", v))
	}
	return strings.Join(hs, ",") + "|" + strings.Join(ls, ";") + "|" + strings.Join(as, ";")
}

// Fingerprint returns a key identifying the query up to atom order and
// variable names: two queries with equal fingerprints have the same
// variables (by index), head, labels and atoms, and therefore evaluate
// identically on every tree. Unlike CanonicalKey the encoding is
// injective even for label strings containing the delimiters (labels are
// length-prefixed — programmatic construction allows arbitrary labels,
// e.g. treebank tags like "ADVP|PRT"), and it pins the variable count,
// since unused variables affect satisfiability on empty trees. Used as
// the plan-cache key by the evaluation engines.
func (q *Query) Fingerprint() string {
	ls := make([]string, 0, len(q.Labels))
	for _, la := range q.Labels {
		ls = append(ls, fmt.Sprintf("%d:%d:%s", la.X, len(la.Label), la.Label))
	}
	sort.Strings(ls)
	as := make([]string, 0, len(q.Atoms))
	for _, at := range q.Atoms {
		as = append(as, fmt.Sprintf("%d:%d:%d", at.Axis, at.X, at.Y))
	}
	sort.Strings(as)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d#", len(q.names))
	for _, v := range q.Head {
		fmt.Fprintf(&sb, "%d,", v)
	}
	sb.WriteByte('|')
	for _, s := range ls {
		sb.WriteString(s)
		sb.WriteByte(';')
	}
	sb.WriteByte('|')
	for _, s := range as {
		sb.WriteString(s)
		sb.WriteByte(';')
	}
	return sb.String()
}

// Normalize rebuilds the query with only used variables, renamed to
// x0, x1, ... in first-occurrence order, producing a canonical variable
// numbering. Returns the new query (the receiver is unchanged).
func (q *Query) Normalize() *Query {
	n := New()
	remap := make(map[Var]Var, len(q.names))
	get := func(v Var) Var {
		if nv, ok := remap[v]; ok {
			return nv
		}
		nv := n.AddVar(fmt.Sprintf("x%d", len(remap)))
		remap[v] = nv
		return nv
	}
	for _, v := range q.Head {
		n.Head = append(n.Head, get(v))
	}
	for _, la := range q.Labels {
		n.AddLabel(la.Label, get(la.X))
	}
	for _, at := range q.Atoms {
		n.AddAtom(at.Axis, get(at.X), get(at.Y))
	}
	return n
}
