package cq

import (
	"strings"
	"testing"

	"repro/internal/axis"
)

func TestParseIntroQuery(t *testing.T) {
	// The introduction's query: //A[B]/following::C.
	q, err := Parse("Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z).")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVars() != 3 {
		t.Fatalf("NumVars = %d, want 3", q.NumVars())
	}
	if len(q.Head) != 1 || q.VarName(q.Head[0]) != "z" {
		t.Fatalf("head wrong: %v", q.Head)
	}
	if len(q.Labels) != 3 || len(q.Atoms) != 2 {
		t.Fatalf("atoms wrong: %d labels, %d binary", len(q.Labels), len(q.Atoms))
	}
	sig := q.Signature()
	if len(sig) != 2 || sig[0] != axis.Child || sig[1] != axis.Following {
		t.Fatalf("Signature = %v", sig)
	}
	if q.Size() != 5 {
		t.Errorf("Size = %d, want 5", q.Size())
	}
}

func TestParseFigure1Query(t *testing.T) {
	// Fig. 1: Q(z) ← S(x), Descendant(x,y), NP(y), Descendant(x,z),
	// PP(z), Following(y,z).
	q := MustParse("Q(z) <- S(x), Descendant(x, y), NP(y), Descendant(x, z), PP(z), Following(y, z)")
	if q.Size() != 6 {
		t.Errorf("Size = %d, want 6", q.Size())
	}
	if Classify(q) != DirectedAcyclic {
		t.Errorf("Fig. 1 query should be directed-acyclic (undirected cycle through x,y,z), got %v", Classify(q))
	}
}

func TestParseBooleanQuery(t *testing.T) {
	q := MustParse("Q() <- A(x), Child(x, y)")
	if !q.IsBoolean() {
		t.Errorf("should be Boolean")
	}
}

func TestParseTrueBody(t *testing.T) {
	q := MustParse("Q() <- true.")
	if q.Size() != 0 {
		t.Errorf("Size = %d", q.Size())
	}
}

func TestParseChainShortcut(t *testing.T) {
	q := MustParse("Q() <- Child^3(x, y)")
	if len(q.Atoms) != 3 {
		t.Fatalf("chain should expand to 3 atoms, got %d", len(q.Atoms))
	}
	if q.NumVars() != 4 {
		t.Errorf("chain should add 2 fresh vars: NumVars = %d, want 4", q.NumVars())
	}
	// Chain endpoints connected: x ->..-> y via fresh vars.
	g := NewGraph(q)
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	cur := x
	for i := 0; i < 3; i++ {
		out := g.Out(cur)
		if len(out) != 1 {
			t.Fatalf("chain var has %d out edges", len(out))
		}
		cur = out[0].To
	}
	if cur != y {
		t.Errorf("chain does not end at y")
	}
}

func TestParseXPathAliases(t *testing.T) {
	q := MustParse("Q() <- descendant(x, y), following-sibling(y, z)")
	sig := q.Signature()
	if len(sig) != 2 || sig[0] != axis.ChildPlus || sig[1] != axis.NextSiblingPlus {
		t.Errorf("Signature = %v", sig)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Q <- A(x)",
		"Q() <- Sideways(x, y)", // unknown axis in binary position
		"Q() <- A(x,",
		"Q() <- A()",
		"Q() <- Child^0(x, y)",
		"Q() <- A^2(x)",
		"Q(x) <- A(x) trailing",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z).",
		"Q() <- true.",
		"Q(x, y) <- Child+(x, y).",
	}
	for _, src := range srcs {
		q := MustParse(src)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("round trip: %q != %q", q.String(), q2.String())
		}
	}
}

func TestCloneAndSubstitute(t *testing.T) {
	q := MustParse("Q(x) <- A(x), Child(x, y), B(y)")
	c := q.Clone()
	x, _ := c.VarByName("x")
	y, _ := c.VarByName("y")
	c.SubstituteVar(y, x)
	if q.String() == c.String() {
		t.Errorf("substitute should change the clone only")
	}
	for _, at := range c.Atoms {
		if at.Y != x {
			t.Errorf("substitution missed atom %v", at)
		}
	}
	for _, la := range c.Labels {
		if la.X != x {
			t.Errorf("substitution missed label %v", la)
		}
	}
}

func TestDedup(t *testing.T) {
	q := New()
	x := q.AddVar("x")
	y := q.AddVar("y")
	q.AddLabel("A", x)
	q.AddLabel("A", x)
	q.AddAtom(axis.Child, x, y)
	q.AddAtom(axis.Child, x, y)
	q.Dedup()
	if len(q.Labels) != 1 || len(q.Atoms) != 1 {
		t.Errorf("Dedup left %d labels, %d atoms", len(q.Labels), len(q.Atoms))
	}
}

func TestFreshVar(t *testing.T) {
	q := New()
	q.AddVar("x")
	v := q.FreshVar("x")
	if q.VarName(v) == "x" {
		t.Errorf("FreshVar returned colliding name")
	}
	if q.NumVars() != 2 {
		t.Errorf("NumVars = %d", q.NumVars())
	}
}

func TestNormalize(t *testing.T) {
	q := MustParse("Q(z) <- A(z), Child(w, z)")
	// add an unused variable
	q.AddVar("unused")
	n := q.Normalize()
	if n.NumVars() != 2 {
		t.Errorf("Normalize kept %d vars, want 2", n.NumVars())
	}
	if !strings.Contains(n.String(), "x0") {
		t.Errorf("Normalize should rename: %s", n)
	}
}

func TestCanonicalKeyIgnoresAtomOrder(t *testing.T) {
	a := MustParse("Q() <- A(x), B(y), Child(x, y)")
	b := MustParse("Q() <- B(y), Child(x, y), A(x)")
	// Note: variable numbering differs between a and b (x first vs y
	// first), so normalize both.
	an := a.Normalize().CanonicalKey()
	bn := b.Normalize().CanonicalKey()
	_ = an
	_ = bn
	// Same-ordered queries must agree:
	c := MustParse("Q() <- A(x), Child(x, y), B(y)")
	if a.CanonicalKey() != c.CanonicalKey() {
		t.Errorf("CanonicalKey should ignore atom order:\n%s\n%s", a.CanonicalKey(), c.CanonicalKey())
	}
}

func TestLabelsOf(t *testing.T) {
	q := MustParse("Q() <- B(x), A(x), C(y)")
	x, _ := q.VarByName("x")
	got := q.LabelsOf(x)
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("LabelsOf = %v", got)
	}
}
