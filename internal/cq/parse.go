package cq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/axis"
)

// Parse reads the paper's datalog-style rule notation:
//
//	Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z).
//
// Grammar:
//
//	query  := head ("<-" | ":-" | "←") body "."?
//	head   := ident "(" [vars] ")"
//	body   := "true" | atom ("," atom)*
//	atom   := name "(" var ")"              unary label atom
//	        | name ["^" int] "(" var "," var ")"   binary axis atom
//	vars   := var ("," var)*
//
// Conventions follow the paper (§2): variable names start with a lower-case
// letter; label and relation names start with an upper-case letter. A name
// in binary position must parse as an axis (package axis names, including
// "Child+", "NextSibling*", and the XPath aliases); "Child^3(x,y)" is the
// chain shortcut χ³ of §5 and expands to a chain through fresh variables.
func Parse(src string) (*Query, error) {
	p := &parser{src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("cq: %w", err)
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) error(format string, args ...any) error {
	return fmt.Errorf("offset %d: %s (near %q)", p.pos, fmt.Sprintf(format, args...), p.near())
}

func (p *parser) near() string {
	end := p.pos + 12
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[p.pos:end]
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) eof() bool { p.skipSpace(); return p.pos >= len(p.src) }

func (p *parser) tryConsume(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) consume(tok string) error {
	if !p.tryConsume(tok) {
		return p.error("expected %q", tok)
	}
	return nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '\'' || c == '+' || c == '*' || c == '-' || c == '@' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.error("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := New()
	// Head.
	if _, err := p.ident(); err != nil { // head predicate name, ignored
		return nil, err
	}
	if err := p.consume("("); err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.tryConsume(")") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			q.Head = append(q.Head, q.AddVar(name))
			p.skipSpace()
			if p.tryConsume(")") {
				break
			}
			if err := p.consume(","); err != nil {
				return nil, err
			}
		}
	}
	if !p.tryConsume("<-") && !p.tryConsume(":-") && !p.tryConsume("←") {
		return nil, p.error(`expected "<-" or ":-"`)
	}
	// Body.
	p.skipSpace()
	if p.tryConsume("true") {
		p.tryConsume(".")
		if !p.eof() {
			return nil, p.error("trailing input")
		}
		return q, nil
	}
	for {
		if err := p.parseAtom(q); err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.tryConsume(",") {
			continue
		}
		p.tryConsume(".")
		if !p.eof() {
			return nil, p.error("trailing input")
		}
		return q, nil
	}
}

func (p *parser) parseAtom(q *Query) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	power := 1
	if p.tryConsume("^") {
		numStart := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == numStart {
			return p.error("expected integer after ^")
		}
		power, err = strconv.Atoi(p.src[numStart:p.pos])
		if err != nil || power < 1 {
			return p.error("bad chain power %q", p.src[numStart:p.pos])
		}
	}
	if err := p.consume("("); err != nil {
		return err
	}
	first, err := p.ident()
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.tryConsume(")") {
		// Unary atom.
		if power != 1 {
			return p.error("chain power on unary atom %s", name)
		}
		q.AddLabel(name, q.AddVar(first))
		return nil
	}
	if err := p.consume(","); err != nil {
		return err
	}
	second, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.consume(")"); err != nil {
		return err
	}
	ax, err := axis.Parse(name)
	if err != nil {
		return p.error("binary atom %s is not a known axis", name)
	}
	x, y := q.AddVar(first), q.AddVar(second)
	if power == 1 {
		q.AddAtom(ax, x, y)
	} else {
		q.AddChain(ax, x, y, power)
	}
	return nil
}
