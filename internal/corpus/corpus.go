// Package corpus manages a fleet of indexed documents and fans prepared
// queries across it.
//
// The paper's cost split (query-only vs per-tree work) gives one (query,
// tree) pair its shape: Prepare once, Index once, execute many times. A
// production engine serves the next level up — many prepared queries
// against many indexed documents — and that is what this package adds:
//
//   - Corpus: a concurrency-safe collection of named, immutable
//     *core.Documents with add/remove/swap, approximate per-document
//     memory accounting (Document.SizeBytes) and an optional LRU-style
//     byte budget with an eviction hook.
//   - Run: a bounded worker pool fanning an evaluation function across a
//     snapshot of (document, query) jobs, streaming per-document results
//     as they complete, with context cancellation and early-exit support.
//
// The public surface lives in the root package (cqtrees.Corpus); this
// package holds the mechanics so internal tooling (cmd/cqserve) and the
// public API share one implementation.
package corpus

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// ErrExists is returned by Add when the name is already taken (use Swap
// to replace a document under a live name).
var ErrExists = errors.New("document name already in corpus")

// ErrEmptyName is returned by Add and Swap for the empty document name.
var ErrEmptyName = errors.New("empty document name")

// entry is one named document plus its accounting state. An entry whose
// doc is nil is a stub: the document lives in a snapshot file at path and
// hydrates on first use (Get or a batch snapshot). Stubs charge zero
// bytes — only resident documents count against the budget — and
// eviction turns a path-backed resident entry back into a stub rather
// than forgetting the name.
type entry struct {
	doc   *core.Document
	bytes int64
	used  int64  // logical LRU clock value of the last touch
	path  string // backing snapshot file; "" = memory-only
	nodes int    // tree size, known even while dehydrated
	ver   uint64 // content version; see Version
}

// Corpus is a concurrency-safe collection of named, immutable documents.
// All methods are safe for concurrent use; documents themselves are
// immutable, so a snapshot taken for batch evaluation stays valid even if
// the corpus mutates (or evicts) concurrently — removal only drops the
// corpus's reference.
//
// Each document is charged its Document.SizeBytes figure at insertion
// (or hydration), after Materialize has built every lazy structure — so
// the charge is exact and stable for the document's whole residency.
// When a byte budget is set, insertions and hydrations that push the
// total over the budget evict least-recently-used documents — Get and
// batch snapshots count as uses — until the total fits again; the most
// recent insertion itself is never evicted by its own insertion (a
// corpus serving zero documents serves nobody). Snapshot-backed victims
// are dehydrated back to stubs instead of removed. The eviction hook, if
// any, runs outside the corpus lock.
type Corpus struct {
	mu      sync.Mutex
	entries map[string]*entry
	total   int64
	clock   int64

	// verClock is the monotonic source of document versions: every
	// content-changing event (Add, Swap, Remove, stub registration)
	// advances it, so versions are strictly increasing across a name's
	// whole lifecycle — including Remove followed by re-Add. Hydration
	// and dehydration do NOT advance it: they change residency, not
	// content, so results computed against the version stay valid.
	verClock uint64

	// hydrations counts stub hydrations (lazy snapshot loads) for
	// observability; read via Hydrations without the lock.
	hydrations atomic.Int64

	maxBytes     int64
	onEvict      func(name string, doc *core.Document)
	onInvalidate func(name string)
}

// New returns an empty corpus with no byte budget.
func New() *Corpus {
	return &Corpus{entries: make(map[string]*entry)}
}

// SetBudget installs a byte budget and an optional eviction hook. A
// budget <= 0 disables eviction. The budget is enforced on subsequent
// insertions (and immediately, against the current contents).
func (c *Corpus) SetBudget(maxBytes int64, onEvict func(name string, doc *core.Document)) {
	c.mu.Lock()
	c.maxBytes = maxBytes
	c.onEvict = onEvict
	victims := c.evictLocked("")
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, victims, nil)
}

// SetInvalidationHook installs the invalidation hook: it fires — outside
// the corpus lock — with the document's name for every event after which
// externally cached state about that name should be dropped: Swap
// replacement, Remove, budget eviction, and dehydration. It fires at
// most once per event per name and carries no document (the subscriber
// keys on the name). The result cache subscribes here.
func (c *Corpus) SetInvalidationHook(fn func(name string)) {
	c.mu.Lock()
	c.onInvalidate = fn
	c.mu.Unlock()
}

// victim is an evicted (name, document) pair, reported to the hook.
type victim struct {
	name string
	doc  *core.Document
}

// evictLocked drops least-recently-used resident entries until the total
// fits the budget, sparing the named entry (the one whose insertion or
// hydration triggered the pass). A snapshot-backed victim is dehydrated —
// its document reference and byte charge drop but the name stays and
// re-hydrates on next use — while a memory-only victim is removed
// outright. Stubs hold no bytes and are never victims. Caller holds
// c.mu; the returned victims are reported to the hook after unlocking.
func (c *Corpus) evictLocked(spare string) []victim {
	if c.maxBytes <= 0 {
		return nil
	}
	var victims []victim
	for c.total > c.maxBytes {
		oldest := ""
		var oldestUsed int64
		for name, e := range c.entries {
			if name == spare || e.doc == nil {
				continue
			}
			if oldest == "" || e.used < oldestUsed {
				oldest, oldestUsed = name, e.used
			}
		}
		if oldest == "" {
			break // only the spared entry (and stubs) remain
		}
		e := c.entries[oldest]
		victims = append(victims, victim{oldest, e.doc})
		c.total -= e.bytes
		if e.path != "" {
			e.doc, e.bytes = nil, 0 // dehydrate, keep the name
		} else {
			delete(c.entries, oldest)
		}
	}
	return victims
}

// notify reports evictions and invalidations to the hooks, outside the
// lock. The hooks are snapshotted under the lock by the caller — reading
// c.onEvict / c.onInvalidate here would race with a concurrent setter.
// Every victim is both an eviction (when a document was resident) and an
// invalidation; invalidated carries names whose cached state went stale
// without an eviction (Swap replacements, Remove of a stub).
func notify(evictHook func(string, *core.Document), invHook func(string), victims []victim, invalidated []string) {
	for _, v := range victims {
		if evictHook != nil && v.doc != nil {
			evictHook(v.name, v.doc)
		}
		if invHook != nil {
			invHook(v.name)
		}
	}
	if invHook != nil {
		for _, name := range invalidated {
			invHook(name)
		}
	}
}

// Add inserts doc under name. It fails with ErrExists if the name is
// taken and ErrEmptyName for the empty name; use Swap for replace-or-
// insert semantics.
func (c *Corpus) Add(name string, doc *core.Document) error {
	if name == "" {
		return ErrEmptyName
	}
	// Materialize every lazy structure before charging, so the accounted
	// size cannot drift as queries touch new labels (the byte budget would
	// otherwise silently overshoot for long-lived documents).
	doc.Materialize()
	c.mu.Lock()
	if _, ok := c.entries[name]; ok {
		c.mu.Unlock()
		return ErrExists
	}
	c.insertLocked(name, doc)
	victims := c.evictLocked(name)
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, victims, nil)
	return nil
}

// Swap inserts doc under name, replacing (and returning) the previous
// document under that name, or nil if the name was free. A replacement
// advances the name's version and fires the invalidation hook — cached
// results for the old content must not survive — but not the eviction
// hook (the caller receives the displaced document directly).
func (c *Corpus) Swap(name string, doc *core.Document) (*core.Document, error) {
	if name == "" {
		return nil, ErrEmptyName
	}
	doc.Materialize() // final-size charge; see Add
	c.mu.Lock()
	var prev *core.Document
	var invalidated []string
	if e, ok := c.entries[name]; ok {
		prev = e.doc
		c.total -= e.bytes
		invalidated = []string{name}
	}
	c.insertLocked(name, doc)
	victims := c.evictLocked(name)
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, victims, invalidated)
	return prev, nil
}

// insertLocked stores doc under name and charges its footprint. Caller
// holds c.mu and has already materialized doc, so the charge is final.
// The fresh entry gets the next content version: Add and Swap both
// change what the name serves.
func (c *Corpus) insertLocked(name string, doc *core.Document) {
	c.clock++
	c.verClock++
	b := doc.SizeBytes()
	c.entries[name] = &entry{doc: doc, bytes: b, used: c.clock, nodes: doc.Len(), ver: c.verClock}
	c.total += b
}

// Remove deletes the named document, returning it (nil if absent).
// Removal fires the same notification path as budget eviction — the
// eviction hook (when a document was resident) and the invalidation
// hook — so a subscriber sees every departure, explicit or not. It also
// advances the version clock, keeping versions strictly increasing
// across Remove followed by re-Add under the same name.
func (c *Corpus) Remove(name string) *core.Document {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	delete(c.entries, name)
	c.total -= e.bytes
	c.verClock++
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, []victim{{name, e.doc}}, nil)
	return e.doc
}

// Version returns the named document's content version without touching
// the LRU clock. Versions are strictly increasing across every content
// change of a name (Add, Swap, Remove + re-Add) and stable across
// dehydrate/hydrate cycles — residency changes do not change content, so
// results cached under a version stay valid for as long as the version
// is current.
func (c *Corpus) Version(name string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return 0, false
	}
	return e.ver, true
}

// Hydrations returns the cumulative count of stub hydrations (lazy
// snapshot loads) since construction — an observability counter.
func (c *Corpus) Hydrations() int64 { return c.hydrations.Load() }

// Get returns the named document and touches its LRU clock. A stub
// hydrates first: its snapshot file is loaded (outside the lock) and
// charged to the budget, which may in turn evict or dehydrate colder
// entries. Get reports false for unknown names and for stubs whose
// snapshot file can no longer be read or decoded.
func (c *Corpus) Get(name string) (*core.Document, bool) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	if e.doc != nil {
		c.clock++
		e.used = c.clock
		d := e.doc
		c.mu.Unlock()
		return d, true
	}
	path := e.path
	c.mu.Unlock()
	return c.hydrate(name, path)
}

// hydrate loads the stub's snapshot file and installs the document,
// re-checking the entry under the lock (it may have been removed,
// re-pointed, or hydrated by a racer meanwhile — the first to publish
// wins and the loser's load is dropped). The expensive part — read,
// decode, materialize — runs outside the lock.
func (c *Corpus) hydrate(name, path string) (*core.Document, bool) {
	data, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, false
	}
	doc, err := core.LoadDocument(data)
	if err != nil {
		return nil, false
	}
	doc.Materialize()
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return nil, false // removed while loading
	}
	c.clock++
	e.used = c.clock
	if e.doc != nil { // a racer hydrated (or Swap replaced) first
		d := e.doc
		c.mu.Unlock()
		return d, true
	}
	if e.path != path {
		c.mu.Unlock()
		return nil, false // re-pointed while loading; let the caller retry
	}
	e.doc = doc
	e.bytes = doc.SizeBytes()
	c.total += e.bytes
	// Residency changed, content did not: e.ver stays — results cached
	// against this version remain servable across the dehydrate/hydrate
	// cycle.
	c.hydrations.Add(1)
	victims := c.evictLocked(name)
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, victims, nil)
	return doc, true
}

// Peek returns the named document and its accounted size WITHOUT
// touching the LRU clock — for read paths that must not interfere with
// eviction ordering (listings, monitoring, metadata endpoints). A stub
// reports a nil document (Peek never hydrates); use Stat for listings
// that must work uniformly across resident and dehydrated entries.
func (c *Corpus) Peek(name string) (*core.Document, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, 0, false
	}
	return e.doc, e.bytes, true
}

// Stat describes one corpus entry without hydrating it.
type Stat struct {
	// Nodes is the document's tree size (known even while dehydrated).
	Nodes int
	// Bytes is the accounted resident footprint; 0 for a stub.
	Bytes int64
	// Hydrated reports whether the document is resident in memory.
	Hydrated bool
	// Version is the entry's content version; see Corpus.Version.
	Version uint64
}

// Stat returns the named entry's metadata without touching the LRU clock
// and without hydrating stubs — the listing path for servers fronting a
// snapshot directory.
func (c *Corpus) Stat(name string) (Stat, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return Stat{}, false
	}
	return Stat{Nodes: e.nodes, Bytes: e.bytes, Hydrated: e.doc != nil, Version: e.ver}, true
}

// Len returns the number of documents.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the total accounted footprint of the corpus in bytes.
func (c *Corpus) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Names returns the document names in sorted order.
func (c *Corpus) Names() []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.entries))
	for name := range c.entries {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// Doc is a snapshot view of one named document.
type Doc struct {
	Name  string
	Doc   *core.Document
	Bytes int64
}

// Snapshot resolves a batch's document set, touching each selected
// document's LRU clock and hydrating stubs on the way (so a batch over a
// freshly opened directory pulls documents in as it reaches them, under
// the byte budget). A non-nil names selects exactly those documents in
// the given order (missing names — including stubs whose snapshot file
// fails to load — are returned separately, in input order); a nil names
// selects every document in sorted-name order, restricted by filter when
// non-nil. The returned documents stay valid — they are immutable — even
// if the corpus mutates (or dehydrates them) afterwards.
func (c *Corpus) Snapshot(names []string, filter func(string) bool) (docs []Doc, missing []string) {
	if names == nil {
		names = c.Names()
	}
	for _, name := range names {
		if filter != nil && !filter(name) {
			continue
		}
		doc, ok := c.Get(name)
		if !ok {
			missing = append(missing, name)
			continue
		}
		docs = append(docs, Doc{Name: name, Doc: doc, Bytes: doc.SizeBytes()})
	}
	return docs, missing
}
