// Package corpus manages a fleet of indexed documents and fans prepared
// queries across it.
//
// The paper's cost split (query-only vs per-tree work) gives one (query,
// tree) pair its shape: Prepare once, Index once, execute many times. A
// production engine serves the next level up — many prepared queries
// against many indexed documents — and that is what this package adds:
//
//   - Corpus: a concurrency-safe collection of named, immutable
//     *core.Documents with add/remove/swap, approximate per-document
//     memory accounting (Document.SizeBytes) and an optional LRU-style
//     byte budget with an eviction hook.
//   - Run: a bounded worker pool fanning an evaluation function across a
//     snapshot of (document, query) jobs, streaming per-document results
//     as they complete, with context cancellation and early-exit support.
//
// The public surface lives in the root package (cqtrees.Corpus); this
// package holds the mechanics so internal tooling (cmd/cqserve) and the
// public API share one implementation.
package corpus

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/core"
)

// ErrExists is returned by Add when the name is already taken (use Swap
// to replace a document under a live name).
var ErrExists = errors.New("document name already in corpus")

// ErrEmptyName is returned by Add and Swap for the empty document name.
var ErrEmptyName = errors.New("empty document name")

// entry is one named document plus its accounting state.
type entry struct {
	doc   *core.Document
	bytes int64
	used  int64 // logical LRU clock value of the last touch
}

// Corpus is a concurrency-safe collection of named, immutable documents.
// All methods are safe for concurrent use; documents themselves are
// immutable, so a snapshot taken for batch evaluation stays valid even if
// the corpus mutates (or evicts) concurrently — removal only drops the
// corpus's reference.
//
// Memory accounting is approximate: each document is charged its
// Document.SizeBytes figure at insertion time (label bitsets built lazily
// afterwards are not re-charged). When a byte budget is set, insertions
// that push the total over the budget evict least-recently-used documents
// — Get and batch snapshots count as uses — until the total fits again;
// the most recent insertion itself is never evicted by its own insertion
// (a corpus serving zero documents serves nobody). The eviction hook, if
// any, runs outside the corpus lock.
type Corpus struct {
	mu      sync.Mutex
	entries map[string]*entry
	total   int64
	clock   int64

	maxBytes int64
	onEvict  func(name string, doc *core.Document)
}

// New returns an empty corpus with no byte budget.
func New() *Corpus {
	return &Corpus{entries: make(map[string]*entry)}
}

// SetBudget installs a byte budget and an optional eviction hook. A
// budget <= 0 disables eviction. The budget is enforced on subsequent
// insertions (and immediately, against the current contents).
func (c *Corpus) SetBudget(maxBytes int64, onEvict func(name string, doc *core.Document)) {
	c.mu.Lock()
	c.maxBytes = maxBytes
	c.onEvict = onEvict
	victims := c.evictLocked("")
	hook := c.onEvict
	c.mu.Unlock()
	notify(hook, victims)
}

// victim is an evicted (name, document) pair, reported to the hook.
type victim struct {
	name string
	doc  *core.Document
}

// evictLocked drops least-recently-used entries until the total fits the
// budget, sparing the named entry (the one whose insertion triggered the
// pass). Caller holds c.mu; the returned victims are reported to the hook
// after unlocking.
func (c *Corpus) evictLocked(spare string) []victim {
	if c.maxBytes <= 0 {
		return nil
	}
	var victims []victim
	for c.total > c.maxBytes {
		oldest := ""
		var oldestUsed int64
		for name, e := range c.entries {
			if name == spare {
				continue
			}
			if oldest == "" || e.used < oldestUsed {
				oldest, oldestUsed = name, e.used
			}
		}
		if oldest == "" {
			break // only the spared entry remains
		}
		e := c.entries[oldest]
		delete(c.entries, oldest)
		c.total -= e.bytes
		victims = append(victims, victim{oldest, e.doc})
	}
	return victims
}

// notify reports evictions to the hook, outside the lock. The hook is
// snapshotted under the lock by the caller — reading c.onEvict here would
// race with a concurrent SetBudget.
func notify(hook func(string, *core.Document), victims []victim) {
	if hook == nil {
		return
	}
	for _, v := range victims {
		hook(v.name, v.doc)
	}
}

// Add inserts doc under name. It fails with ErrExists if the name is
// taken and ErrEmptyName for the empty name; use Swap for replace-or-
// insert semantics.
func (c *Corpus) Add(name string, doc *core.Document) error {
	if name == "" {
		return ErrEmptyName
	}
	c.mu.Lock()
	if _, ok := c.entries[name]; ok {
		c.mu.Unlock()
		return ErrExists
	}
	c.insertLocked(name, doc)
	victims := c.evictLocked(name)
	hook := c.onEvict
	c.mu.Unlock()
	notify(hook, victims)
	return nil
}

// Swap inserts doc under name, replacing (and returning) the previous
// document under that name, or nil if the name was free.
func (c *Corpus) Swap(name string, doc *core.Document) (*core.Document, error) {
	if name == "" {
		return nil, ErrEmptyName
	}
	c.mu.Lock()
	var prev *core.Document
	if e, ok := c.entries[name]; ok {
		prev = e.doc
		c.total -= e.bytes
	}
	c.insertLocked(name, doc)
	victims := c.evictLocked(name)
	hook := c.onEvict
	c.mu.Unlock()
	notify(hook, victims)
	return prev, nil
}

// insertLocked stores doc under name and charges its footprint. Caller
// holds c.mu.
func (c *Corpus) insertLocked(name string, doc *core.Document) {
	c.clock++
	b := doc.SizeBytes()
	c.entries[name] = &entry{doc: doc, bytes: b, used: c.clock}
	c.total += b
}

// Remove deletes the named document, returning it (nil if absent). The
// eviction hook is not called for explicit removals.
func (c *Corpus) Remove(name string) *core.Document {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil
	}
	delete(c.entries, name)
	c.total -= e.bytes
	return e.doc
}

// Get returns the named document and touches its LRU clock.
func (c *Corpus) Get(name string) (*core.Document, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, false
	}
	c.clock++
	e.used = c.clock
	return e.doc, true
}

// Peek returns the named document and its accounted size WITHOUT
// touching the LRU clock — for read paths that must not interfere with
// eviction ordering (listings, monitoring, metadata endpoints).
func (c *Corpus) Peek(name string) (*core.Document, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, 0, false
	}
	return e.doc, e.bytes, true
}

// Len returns the number of documents.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the total accounted footprint of the corpus in bytes.
func (c *Corpus) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Names returns the document names in sorted order.
func (c *Corpus) Names() []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.entries))
	for name := range c.entries {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// Doc is a snapshot view of one named document.
type Doc struct {
	Name  string
	Doc   *core.Document
	Bytes int64
}

// Snapshot resolves a batch's document set under the lock, touching each
// selected document's LRU clock. A non-nil names selects exactly those
// documents in the given order (missing names are returned separately, in
// input order); a nil names selects every document in sorted-name order,
// restricted by filter when non-nil. The returned documents stay valid —
// they are immutable — even if the corpus mutates afterwards.
func (c *Corpus) Snapshot(names []string, filter func(string) bool) (docs []Doc, missing []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if names == nil {
		names = make([]string, 0, len(c.entries))
		for name := range c.entries {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		if filter != nil && !filter(name) {
			continue
		}
		e, ok := c.entries[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		c.clock++
		e.used = c.clock
		docs = append(docs, Doc{Name: name, Doc: e.doc, Bytes: e.bytes})
	}
	return docs, missing
}
