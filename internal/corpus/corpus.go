// Package corpus manages a fleet of indexed documents and fans prepared
// queries across it.
//
// The paper's cost split (query-only vs per-tree work) gives one (query,
// tree) pair its shape: Prepare once, Index once, execute many times. A
// production engine serves the next level up — many prepared queries
// against many indexed documents — and that is what this package adds:
//
//   - Corpus: a concurrency-safe collection of named, immutable
//     *core.Documents with add/remove/swap, approximate per-document
//     memory accounting (Document.SizeBytes) and an optional LRU-style
//     byte budget with an eviction hook.
//   - Run: a bounded worker pool fanning an evaluation function across a
//     snapshot of (document, query) jobs, streaming per-document results
//     as they complete, with context cancellation and early-exit support.
//
// The public surface lives in the root package (cqtrees.Corpus); this
// package holds the mechanics so internal tooling (cmd/cqserve) and the
// public API share one implementation.
package corpus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/snapshot"
)

// ErrExists is returned by Add when the name is already taken (use Swap
// to replace a document under a live name).
var ErrExists = errors.New("document name already in corpus")

// ErrEmptyName is returned by Add and Swap for the empty document name.
var ErrEmptyName = errors.New("empty document name")

// ErrUnknown is returned by GetErr for names not in the corpus.
var ErrUnknown = errors.New("corpus: unknown document")

// ErrQuarantined marks hydration failures whose snapshot file failed
// format validation (bad magic, checksum, corrupt sections): the file
// has been renamed aside (see QuarantineExt) and the document will not
// be retried. Match with errors.Is; the concrete error is a
// *HydrationError.
var ErrQuarantined = errors.New("corpus: document quarantined")

// ErrUnavailable marks transient hydration failures (I/O errors): the
// stub stays registered and will be retried after a backoff. Match with
// errors.Is; the concrete error is a *HydrationError carrying the
// suggested RetryAfter.
var ErrUnavailable = errors.New("corpus: document unavailable")

// HydrationError is the structured failure GetErr returns when a stub's
// snapshot cannot be loaded. It wraps ErrQuarantined or ErrUnavailable
// (and the underlying cause), so callers can branch with errors.Is and
// still read the details.
type HydrationError struct {
	// Name is the document name.
	Name string
	// Err is the underlying read/decode failure.
	Err error
	// Quarantined reports a permanent failure: the file was renamed to
	// its quarantine name and the stub will not be retried.
	Quarantined bool
	// RetryAfter is the backoff remaining until the next hydration
	// attempt (transient failures only).
	RetryAfter time.Duration
}

func (e *HydrationError) Error() string {
	if e.Quarantined {
		return fmt.Sprintf("corpus: document %q quarantined: %v", e.Name, e.Err)
	}
	return fmt.Sprintf("corpus: document %q unavailable (retry in %v): %v", e.Name, e.RetryAfter.Round(time.Millisecond), e.Err)
}

func (e *HydrationError) Unwrap() []error {
	if e.Quarantined {
		return []error{ErrQuarantined, e.Err}
	}
	return []error{ErrUnavailable, e.Err}
}

// Default hydration retry policy; see SetRetryPolicy.
const (
	defaultRetryBase = 250 * time.Millisecond
	defaultRetryMax  = 30 * time.Second
)

// entry is one named document plus its accounting state. An entry whose
// doc is nil is a stub: the document lives in a snapshot file at path and
// hydrates on first use (Get or a batch snapshot). Stubs charge zero
// bytes — only resident documents count against the budget — and
// eviction turns a path-backed resident entry back into a stub rather
// than forgetting the name.
type entry struct {
	doc   *core.Document
	bytes int64
	used  int64  // logical LRU clock value of the last touch
	path  string // backing snapshot file; "" = memory-only
	nodes int    // tree size, known even while dehydrated
	ver   uint64 // content version; see Version

	// Hydration fault state. A stub whose load failed is tracked here so
	// the bad file is not re-read on every request: transient failures
	// back off exponentially (fails, nextTry), permanent ones set
	// quarantined and stop retrying for good. All reset on Swap (a fresh
	// entry) and on a later successful hydration.
	fails       int       // consecutive hydration failures
	nextTry     time.Time // no hydration attempt before this instant
	lastErr     error     // most recent hydration failure
	quarantined bool      // snapshot file renamed aside; never retried
}

// Corpus is a concurrency-safe collection of named, immutable documents.
// All methods are safe for concurrent use; documents themselves are
// immutable, so a snapshot taken for batch evaluation stays valid even if
// the corpus mutates (or evicts) concurrently — removal only drops the
// corpus's reference.
//
// Each document is charged its Document.SizeBytes figure at insertion
// (or hydration), after Materialize has built every lazy structure — so
// the charge is exact and stable for the document's whole residency.
// When a byte budget is set, insertions and hydrations that push the
// total over the budget evict least-recently-used documents — Get and
// batch snapshots count as uses — until the total fits again; the most
// recent insertion itself is never evicted by its own insertion (a
// corpus serving zero documents serves nobody). Snapshot-backed victims
// are dehydrated back to stubs instead of removed. The eviction hook, if
// any, runs outside the corpus lock.
type Corpus struct {
	mu      sync.Mutex
	entries map[string]*entry
	total   int64
	clock   int64

	// verClock is the monotonic source of document versions: every
	// content-changing event (Add, Swap, Remove, stub registration)
	// advances it, so versions are strictly increasing across a name's
	// whole lifecycle — including Remove followed by re-Add. Hydration
	// and dehydration do NOT advance it: they change residency, not
	// content, so results computed against the version stay valid.
	verClock uint64

	// hydrations counts stub hydrations (lazy snapshot loads) for
	// observability; read via Hydrations without the lock.
	hydrations atomic.Int64

	// Persistence fault counters; read via PersistenceStats.
	hydrationErrs atomic.Int64 // failed hydration attempts
	quarantines   atomic.Int64 // files renamed to quarantine names
	persistErrs   atomic.Int64 // failed snapshot writes

	// fs is the filesystem seam for all persistence I/O (nil = real
	// filesystem); see SetFS. noSync skips the crash-durability fsyncs;
	// see SetNoSync.
	fs     fault.FS
	noSync bool

	// Hydration retry policy; see SetRetryPolicy. Zero values mean the
	// defaults.
	retryBase time.Duration
	retryMax  time.Duration

	maxBytes     int64
	onEvict      func(name string, doc *core.Document)
	onInvalidate func(name string)
}

// New returns an empty corpus with no byte budget.
func New() *Corpus {
	return &Corpus{entries: make(map[string]*entry)}
}

// SetBudget installs a byte budget and an optional eviction hook. A
// budget <= 0 disables eviction. The budget is enforced on subsequent
// insertions (and immediately, against the current contents).
func (c *Corpus) SetBudget(maxBytes int64, onEvict func(name string, doc *core.Document)) {
	c.mu.Lock()
	c.maxBytes = maxBytes
	c.onEvict = onEvict
	victims := c.evictLocked("")
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, victims, nil)
}

// SetInvalidationHook installs the invalidation hook: it fires — outside
// the corpus lock — with the document's name for every event after which
// externally cached state about that name should be dropped: Swap
// replacement, Remove, budget eviction, and dehydration. It fires at
// most once per event per name and carries no document (the subscriber
// keys on the name). The result cache subscribes here.
func (c *Corpus) SetInvalidationHook(fn func(name string)) {
	c.mu.Lock()
	c.onInvalidate = fn
	c.mu.Unlock()
}

// victim is an evicted (name, document) pair, reported to the hook.
type victim struct {
	name string
	doc  *core.Document
}

// evictLocked drops least-recently-used resident entries until the total
// fits the budget, sparing the named entry (the one whose insertion or
// hydration triggered the pass). A snapshot-backed victim is dehydrated —
// its document reference and byte charge drop but the name stays and
// re-hydrates on next use — while a memory-only victim is removed
// outright. Stubs hold no bytes and are never victims. Caller holds
// c.mu; the returned victims are reported to the hook after unlocking.
func (c *Corpus) evictLocked(spare string) []victim {
	if c.maxBytes <= 0 {
		return nil
	}
	var victims []victim
	for c.total > c.maxBytes {
		oldest := ""
		var oldestUsed int64
		for name, e := range c.entries {
			if name == spare || e.doc == nil {
				continue
			}
			if oldest == "" || e.used < oldestUsed {
				oldest, oldestUsed = name, e.used
			}
		}
		if oldest == "" {
			break // only the spared entry (and stubs) remain
		}
		e := c.entries[oldest]
		victims = append(victims, victim{oldest, e.doc})
		c.total -= e.bytes
		if e.path != "" {
			e.doc, e.bytes = nil, 0 // dehydrate, keep the name
		} else {
			delete(c.entries, oldest)
		}
	}
	return victims
}

// notify reports evictions and invalidations to the hooks, outside the
// lock. The hooks are snapshotted under the lock by the caller — reading
// c.onEvict / c.onInvalidate here would race with a concurrent setter.
// Every victim is both an eviction (when a document was resident) and an
// invalidation; invalidated carries names whose cached state went stale
// without an eviction (Swap replacements, Remove of a stub).
func notify(evictHook func(string, *core.Document), invHook func(string), victims []victim, invalidated []string) {
	for _, v := range victims {
		if evictHook != nil && v.doc != nil {
			evictHook(v.name, v.doc)
		}
		if invHook != nil {
			invHook(v.name)
		}
	}
	if invHook != nil {
		for _, name := range invalidated {
			invHook(name)
		}
	}
}

// Add inserts doc under name. It fails with ErrExists if the name is
// taken and ErrEmptyName for the empty name; use Swap for replace-or-
// insert semantics.
func (c *Corpus) Add(name string, doc *core.Document) error {
	if name == "" {
		return ErrEmptyName
	}
	// Materialize every lazy structure before charging, so the accounted
	// size cannot drift as queries touch new labels (the byte budget would
	// otherwise silently overshoot for long-lived documents).
	doc.Materialize()
	c.mu.Lock()
	if _, ok := c.entries[name]; ok {
		c.mu.Unlock()
		return ErrExists
	}
	c.insertLocked(name, doc)
	victims := c.evictLocked(name)
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, victims, nil)
	return nil
}

// Swap inserts doc under name, replacing (and returning) the previous
// document under that name, or nil if the name was free. A replacement
// advances the name's version and fires the invalidation hook — cached
// results for the old content must not survive — but not the eviction
// hook (the caller receives the displaced document directly).
func (c *Corpus) Swap(name string, doc *core.Document) (*core.Document, error) {
	if name == "" {
		return nil, ErrEmptyName
	}
	doc.Materialize() // final-size charge; see Add
	c.mu.Lock()
	var prev *core.Document
	var invalidated []string
	if e, ok := c.entries[name]; ok {
		prev = e.doc
		c.total -= e.bytes
		invalidated = []string{name}
	}
	c.insertLocked(name, doc)
	victims := c.evictLocked(name)
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, victims, invalidated)
	return prev, nil
}

// insertLocked stores doc under name and charges its footprint. Caller
// holds c.mu and has already materialized doc, so the charge is final.
// The fresh entry gets the next content version: Add and Swap both
// change what the name serves.
func (c *Corpus) insertLocked(name string, doc *core.Document) {
	c.clock++
	c.verClock++
	b := doc.SizeBytes()
	c.entries[name] = &entry{doc: doc, bytes: b, used: c.clock, nodes: doc.Len(), ver: c.verClock}
	c.total += b
}

// Remove deletes the named document, returning it (nil if absent).
// Removal fires the same notification path as budget eviction — the
// eviction hook (when a document was resident) and the invalidation
// hook — so a subscriber sees every departure, explicit or not. It also
// advances the version clock, keeping versions strictly increasing
// across Remove followed by re-Add under the same name.
func (c *Corpus) Remove(name string) *core.Document {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	delete(c.entries, name)
	c.total -= e.bytes
	c.verClock++
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, []victim{{name, e.doc}}, nil)
	return e.doc
}

// Version returns the named document's content version without touching
// the LRU clock. Versions are strictly increasing across every content
// change of a name (Add, Swap, Remove + re-Add) and stable across
// dehydrate/hydrate cycles — residency changes do not change content, so
// results cached under a version stay valid for as long as the version
// is current.
func (c *Corpus) Version(name string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return 0, false
	}
	return e.ver, true
}

// Hydrations returns the cumulative count of stub hydrations (lazy
// snapshot loads) since construction — an observability counter.
func (c *Corpus) Hydrations() int64 { return c.hydrations.Load() }

// SetRetryPolicy configures the exponential backoff applied to stubs
// whose hydration failed transiently: the first retry is allowed after
// base, each further failure doubles the wait, capped at max.
// Non-positive arguments keep the corresponding default (250ms / 30s).
func (c *Corpus) SetRetryPolicy(base, max time.Duration) {
	c.mu.Lock()
	c.retryBase, c.retryMax = base, max
	c.mu.Unlock()
}

// backoffLocked returns the wait before retry number fails. Caller holds
// c.mu.
func (c *Corpus) backoffLocked(fails int) time.Duration {
	base, max := c.retryBase, c.retryMax
	if base <= 0 {
		base = defaultRetryBase
	}
	if max <= 0 {
		max = defaultRetryMax
	}
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	return min(d, max)
}

// Get returns the named document and touches its LRU clock, hydrating a
// stub first. It reports false for unknown names and for stubs whose
// snapshot cannot be loaded; GetErr is the same lookup with the failure
// reason.
func (c *Corpus) Get(name string) (*core.Document, bool) {
	doc, err := c.GetErr(name)
	return doc, err == nil
}

// GetErr returns the named document and touches its LRU clock. A stub
// hydrates first: its snapshot file is loaded (outside the lock) and
// charged to the budget, which may in turn evict or dehydrate colder
// entries. Failures are typed: ErrUnknown for names not in the corpus,
// and a *HydrationError — wrapping ErrQuarantined or ErrUnavailable —
// for stubs whose snapshot cannot be loaded. A stub in backoff or
// quarantine fails fast from its tracked state without touching the
// file.
func (c *Corpus) GetErr(name string) (*core.Document, error) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return nil, ErrUnknown
	}
	if e.doc != nil {
		c.clock++
		e.used = c.clock
		d := e.doc
		c.mu.Unlock()
		return d, nil
	}
	if e.quarantined {
		herr := &HydrationError{Name: name, Err: e.lastErr, Quarantined: true}
		c.mu.Unlock()
		return nil, herr
	}
	if wait := time.Until(e.nextTry); wait > 0 {
		herr := &HydrationError{Name: name, Err: e.lastErr, RetryAfter: wait}
		c.mu.Unlock()
		return nil, herr
	}
	path := e.path
	c.mu.Unlock()
	return c.hydrate(name, path)
}

// hydrate loads the stub's snapshot file and installs the document,
// re-checking the entry under the lock (it may have been removed,
// re-pointed, or hydrated by a racer meanwhile — the first to publish
// wins and the loser's load is dropped). The expensive part — read,
// decode, materialize — runs outside the lock. Failures are recorded on
// the entry (backoff or quarantine) via hydrateFailed.
func (c *Corpus) hydrate(name, path string) (*core.Document, error) {
	data, err := snapshot.ReadFileFS(c.fsys(), path)
	if err != nil {
		return nil, c.hydrateFailed(name, path, err)
	}
	doc, err := core.LoadDocument(data)
	if err != nil {
		return nil, c.hydrateFailed(name, path, err)
	}
	doc.Materialize()
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return nil, ErrUnknown // removed while loading
	}
	c.clock++
	e.used = c.clock
	if e.doc != nil { // a racer hydrated (or Swap replaced) first
		d := e.doc
		c.mu.Unlock()
		return d, nil
	}
	if e.path != path {
		// Re-pointed while loading; the caller can retry immediately.
		c.mu.Unlock()
		return nil, &HydrationError{Name: name, Err: errors.New("corpus: snapshot re-pointed during load")}
	}
	e.doc = doc
	e.bytes = doc.SizeBytes()
	e.fails, e.nextTry, e.lastErr = 0, time.Time{}, nil
	c.total += e.bytes
	// Residency changed, content did not: e.ver stays — results cached
	// against this version remain servable across the dehydrate/hydrate
	// cycle.
	c.hydrations.Add(1)
	victims := c.evictLocked(name)
	evictHook, invHook := c.onEvict, c.onInvalidate
	c.mu.Unlock()
	notify(evictHook, invHook, victims, nil)
	return doc, nil
}

// hydrateFailed records a hydration failure on the stub and returns the
// typed error. Format violations (see permanentSnapshotErr) quarantine
// the file — an atomic rename to its quarantine name, made durable with
// a directory sync, counted once, and reported through the invalidation
// hook — while transient I/O failures schedule a bounded-backoff retry.
// Either way the entry keeps failing fast from its tracked state until
// the backoff expires, so a bad file is never re-read per request.
func (c *Corpus) hydrateFailed(name, path string, err error) error {
	c.hydrationErrs.Add(1)
	permanent := permanentSnapshotErr(err)
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok || e.doc != nil || e.path != path {
		// The world moved on while we were reading (removed, re-pointed,
		// or hydrated by a racer): report the failure without poisoning
		// the entry's fresh state.
		c.mu.Unlock()
		return &HydrationError{Name: name, Err: err}
	}
	if e.quarantined {
		// A racing hydration already quarantined this file.
		herr := &HydrationError{Name: name, Err: e.lastErr, Quarantined: true}
		c.mu.Unlock()
		return herr
	}
	if permanent {
		e.quarantined = true
		e.lastErr = err
		invHook := c.onInvalidate
		fsys := c.fs
		c.mu.Unlock()
		if fsys == nil {
			fsys = fault.OS{}
		}
		c.quarantineFile(fsys, path)
		if invHook != nil {
			invHook(name)
		}
		return &HydrationError{Name: name, Err: err, Quarantined: true}
	}
	e.fails++
	wait := c.backoffLocked(e.fails)
	e.nextTry = time.Now().Add(wait)
	e.lastErr = err
	c.mu.Unlock()
	return &HydrationError{Name: name, Err: err, RetryAfter: wait}
}

// Peek returns the named document and its accounted size WITHOUT
// touching the LRU clock — for read paths that must not interfere with
// eviction ordering (listings, monitoring, metadata endpoints). A stub
// reports a nil document (Peek never hydrates); use Stat for listings
// that must work uniformly across resident and dehydrated entries.
func (c *Corpus) Peek(name string) (*core.Document, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, 0, false
	}
	return e.doc, e.bytes, true
}

// Stat describes one corpus entry without hydrating it.
type Stat struct {
	// Nodes is the document's tree size (known even while dehydrated).
	Nodes int
	// Bytes is the accounted resident footprint; 0 for a stub.
	Bytes int64
	// Hydrated reports whether the document is resident in memory.
	Hydrated bool
	// Version is the entry's content version; see Corpus.Version.
	Version uint64
	// Quarantined reports that the entry's snapshot file failed format
	// validation and was renamed aside; the document cannot hydrate.
	Quarantined bool
	// Failing reports that the entry's last hydration attempt failed
	// transiently and a backoff retry is pending.
	Failing bool
	// LastError is the most recent hydration failure ("" when healthy).
	LastError string
}

// Stat returns the named entry's metadata without touching the LRU clock
// and without hydrating stubs — the listing path for servers fronting a
// snapshot directory.
func (c *Corpus) Stat(name string) (Stat, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return Stat{}, false
	}
	st := Stat{
		Nodes: e.nodes, Bytes: e.bytes, Hydrated: e.doc != nil, Version: e.ver,
		Quarantined: e.quarantined, Failing: e.fails > 0 && !e.quarantined,
	}
	if e.lastErr != nil {
		st.LastError = e.lastErr.Error()
	}
	return st, true
}

// PersistenceStats is a point-in-time summary of the persistence tier's
// health: current entry states plus cumulative fault counters.
type PersistenceStats struct {
	// Stubs is the number of dehydrated entries (healthy, failing, or
	// quarantined — everything not resident).
	Stubs int
	// Failed is the number of stubs in transient-failure backoff.
	Failed int
	// Quarantined is the number of entries whose snapshot file was
	// quarantined.
	Quarantined int
	// HydrationErrors counts failed hydration attempts since start.
	HydrationErrors int64
	// Quarantines counts files renamed to quarantine names since start
	// (both at load time and at hydration time).
	Quarantines int64
	// PersistErrors counts failed snapshot writes since start.
	PersistErrors int64
}

// PersistenceStats reports the persistence tier's health counters.
func (c *Corpus) PersistenceStats() PersistenceStats {
	c.mu.Lock()
	st := PersistenceStats{}
	for _, e := range c.entries {
		if e.doc != nil {
			continue
		}
		st.Stubs++
		switch {
		case e.quarantined:
			st.Quarantined++
		case e.fails > 0:
			st.Failed++
		}
	}
	c.mu.Unlock()
	st.HydrationErrors = c.hydrationErrs.Load()
	st.Quarantines = c.quarantines.Load()
	st.PersistErrors = c.persistErrs.Load()
	return st
}

// Len returns the number of documents.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the total accounted footprint of the corpus in bytes.
func (c *Corpus) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Names returns the document names in sorted order.
func (c *Corpus) Names() []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.entries))
	for name := range c.entries {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// Doc is a snapshot view of one named document.
type Doc struct {
	Name  string
	Doc   *core.Document
	Bytes int64
}

// Miss is one name a batch snapshot could not resolve, with the typed
// reason: ErrUnknown for names not in the corpus, or a *HydrationError
// (wrapping ErrQuarantined / ErrUnavailable) for stubs that failed to
// load.
type Miss struct {
	Name string
	Err  error
}

// Snapshot resolves a batch's document set, touching each selected
// document's LRU clock and hydrating stubs on the way (so a batch over a
// freshly opened directory pulls documents in as it reaches them, under
// the byte budget). A non-nil names selects exactly those documents in
// the given order (unresolvable names — unknown, quarantined, or failing
// to hydrate — are returned as Misses, in input order); a nil names
// selects every document in sorted-name order, restricted by filter when
// non-nil. The returned documents stay valid — they are immutable — even
// if the corpus mutates (or dehydrates them) afterwards.
func (c *Corpus) Snapshot(names []string, filter func(string) bool) (docs []Doc, missing []Miss) {
	if names == nil {
		names = c.Names()
	}
	for _, name := range names {
		if filter != nil && !filter(name) {
			continue
		}
		doc, err := c.GetErr(name)
		if err != nil {
			missing = append(missing, Miss{Name: name, Err: err})
			continue
		}
		docs = append(docs, Doc{Name: name, Doc: doc, Bytes: doc.SizeBytes()})
	}
	return docs, missing
}
