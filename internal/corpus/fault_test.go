package corpus

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/snapshot"
)

// persistThree persists three small documents through fsys into dir,
// returning the per-name node counts. The corpus content depends only on
// round, so every crash-enumeration iteration replays the identical
// operation sequence.
func persistThree(t *testing.T, fsys fault.FS, dir string, round int) (map[string]int, error) {
	t.Helper()
	srcs := map[string]string{
		"a": "A(B)",      // 2 nodes
		"b": "A(B,C)",    // 3 nodes
		"c": "A(B,C(D))", // 4 nodes
	}
	if round == 2 {
		srcs = map[string]string{
			"a": "A(B(C,D))",      // 4 nodes
			"b": "A(B,C,D,E)",     // 5 nodes
			"c": "A(B(C),D(E),F)", // 6 nodes
		}
	}
	c := New()
	c.SetFS(fsys)
	nodes := make(map[string]int)
	for name, src := range srcs {
		d := doc(src)
		if err := c.Add(name, d); err != nil {
			t.Fatal(err)
		}
		nodes[name] = d.Len()
	}
	_, err := c.PersistDir(dir)
	return nodes, err
}

// TestCrashRecoveryExhaustive simulates a power loss at EVERY operation
// of a three-document persist — under each torn-write mode and both
// rename-durability outcomes — then recovers with a fresh corpus over
// the real filesystem and asserts the invariant the fsync protocol buys:
// each document comes back as exactly the complete old version or the
// complete new version, never torn, never an error.
func TestCrashRecoveryExhaustive(t *testing.T) {
	// Learn the op count of the workload once.
	probeDir := t.TempDir()
	v1, err := persistThree(t, fault.NewInjector(), probeDir, 1)
	if err != nil {
		t.Fatalf("probe v1 persist: %v", err)
	}
	probe := fault.NewInjector()
	v2, err := persistThree(t, probe, probeDir, 2)
	if err != nil {
		t.Fatalf("probe v2 persist: %v", err)
	}
	total := probe.Ops()
	if total < 15 { // 3 docs × (create, write, sync, close, chmod, rename, syncdir) minus shared ops
		t.Fatalf("suspiciously few ops to enumerate: %d", total)
	}

	for _, torn := range []fault.TornMode{fault.TornTruncate, fault.TornZero, fault.TornFlip} {
		for _, dropRenames := range []bool{false, true} {
			for k := 1; k <= total; k++ {
				dir := t.TempDir()
				// Write the old version durably, then crash at op k of the
				// new version's persist.
				if _, err := persistThree(t, fault.OS{}, dir, 1); err != nil {
					t.Fatal(err)
				}
				in := fault.NewInjector()
				in.Torn = torn
				in.DropUnsyncedRenames = dropRenames
				in.CrashAfterOps(k)
				persistThree(t, in, dir, 2) // error expected: the process died
				if !in.Crashed() {
					t.Fatalf("torn=%v drop=%v k=%d: workload finished without crashing", torn, dropRenames, k)
				}

				// Recover: a fresh process scans the directory.
				rec := New()
				rep, err := rec.LoadDirReport(dir)
				if err != nil {
					t.Fatalf("torn=%v drop=%v k=%d: recovery LoadDir: %v", torn, dropRenames, k, err)
				}
				if rep.Quarantined != 0 {
					t.Fatalf("torn=%v drop=%v k=%d: %d files quarantined after clean crash (fsync protocol violated)",
						torn, dropRenames, k, rep.Quarantined)
				}
				for _, name := range []string{"a", "b", "c"} {
					d, gerr := rec.GetErr(name)
					if gerr != nil {
						t.Fatalf("torn=%v drop=%v k=%d: %s failed to hydrate: %v", torn, dropRenames, k, name, gerr)
					}
					if n := d.Len(); n != v1[name] && n != v2[name] {
						t.Fatalf("torn=%v drop=%v k=%d: %s recovered %d nodes, want old %d or new %d",
							torn, dropRenames, k, name, n, v1[name], v2[name])
					}
				}
			}
		}
	}
}

// TestCrashLeavesOnlyTmpOrphans checks the naming half of the durability
// contract: after a mid-persist crash, anything torn on disk lives under
// a ".tmp-*" name — final snapshot names are always complete files.
func TestCrashLeavesOnlyTmpOrphans(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector()
	in.Torn = fault.TornFlip
	// Crash between the temp-file write and its sync: ops are
	// create(1), write(2), sync(3) for the first document.
	in.CrashAfterOps(3)
	persistThree(t, in, dir, 1)

	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !strings.HasPrefix(de.Name(), ".tmp-") {
			t.Fatalf("unexpected non-temp survivor %q after pre-rename crash", de.Name())
		}
	}
}

// corruptBody flips one byte in the middle of the file's body so the
// header still parses (PeekMeta passes) but the checksum fails at
// hydration — on-disk bit rot.
func corruptBody(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestHydrationQuarantinesBitRot(t *testing.T) {
	dir := t.TempDir()
	if _, err := persistThree(t, fault.OS{}, dir, 1); err != nil {
		t.Fatal(err)
	}
	corruptBody(t, filepath.Join(dir, FileName("b")))

	var invalidated []string
	c := New()
	c.SetInvalidationHook(func(name string) { invalidated = append(invalidated, name) })
	in := fault.NewInjector() // counts reads so we can prove fail-fast
	c.SetFS(in)
	if n, err := c.LoadDir(dir); err != nil || n != 3 {
		t.Fatalf("LoadDir = %d, %v (bit rot is invisible to the header peek)", n, err)
	}

	_, err := c.GetErr("b")
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("GetErr(b) = %v, want ErrQuarantined", err)
	}
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("GetErr(b) = %v, want underlying checksum error", err)
	}
	var herr *HydrationError
	if !errors.As(err, &herr) || !herr.Quarantined || herr.Name != "b" {
		t.Fatalf("GetErr(b) = %#v, want quarantined HydrationError for b", err)
	}

	// Quarantined exactly once: the file is renamed aside, the counter is
	// 1, and the hook fired for the name.
	qpath := filepath.Join(dir, FileName("b")+QuarantineExt)
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName("b"))); !os.IsNotExist(err) {
		t.Fatalf("original snapshot still present after quarantine")
	}
	st := c.PersistenceStats()
	if st.Quarantines != 1 || st.Quarantined != 1 || st.HydrationErrors != 1 {
		t.Fatalf("stats = %+v, want exactly one quarantine", st)
	}
	if len(invalidated) != 1 || invalidated[0] != "b" {
		t.Fatalf("invalidated = %v, want [b]", invalidated)
	}

	// Fail-fast: further requests never touch the filesystem again.
	opens := in.Count(fault.OpOpen)
	for i := 0; i < 5; i++ {
		if _, err := c.GetErr("b"); !errors.Is(err, ErrQuarantined) {
			t.Fatalf("repeat GetErr(b) = %v", err)
		}
	}
	if got := in.Count(fault.OpOpen); got != opens {
		t.Fatalf("quarantined stub re-read the file: opens %d -> %d", opens, got)
	}
	if st := c.PersistenceStats(); st.Quarantines != 1 {
		t.Fatalf("quarantine counter moved on repeat requests: %+v", st)
	}

	// Healthy neighbors are unaffected.
	for _, name := range []string{"a", "c"} {
		if _, err := c.GetErr(name); err != nil {
			t.Fatalf("GetErr(%s) = %v after b's quarantine", name, err)
		}
	}

	// Stat surfaces the quarantine without hydrating.
	if s, ok := c.Stat("b"); !ok || !s.Quarantined || s.LastError == "" {
		t.Fatalf("Stat(b) = %+v, %v", s, ok)
	}

	// A re-persist under the same name heals: Swap installs fresh content
	// and PersistDoc writes a clean file.
	if _, err := c.Swap("b", doc("A(B,C)")); err != nil {
		t.Fatal(err)
	}
	if err := c.PersistDoc(dir, "b"); err != nil {
		t.Fatalf("re-persist after quarantine: %v", err)
	}
	if _, err := c.GetErr("b"); err != nil {
		t.Fatalf("GetErr(b) after heal = %v", err)
	}
}

// TestLoadDirQuarantinesBadHeader covers load-time quarantine: a file
// whose header fails validation is renamed aside during the scan, and a
// later scan counts the quarantined file without re-quarantining.
func TestLoadDirQuarantinesBadHeader(t *testing.T) {
	dir := t.TempDir()
	if _, err := persistThree(t, fault.OS{}, dir, 1); err != nil {
		t.Fatal(err)
	}
	// Destroy c's magic.
	path := filepath.Join(dir, FileName("c"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "JUNK")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c := New()
	rep, err := c.LoadDirReport(dir)
	if err == nil || !errors.Is(err, snapshot.ErrBadMagic) {
		t.Fatalf("LoadDirReport err = %v, want bad-magic report", err)
	}
	if rep.Registered != 2 || rep.Quarantined != 1 {
		t.Fatalf("report = %+v, want 2 registered / 1 quarantined", rep)
	}
	if _, err := os.Stat(path + QuarantineExt); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if st := c.PersistenceStats(); st.Quarantines != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Second scan: the quarantined file is skipped-and-counted, nothing
	// new happens.
	c2 := New()
	rep2, err := c2.LoadDirReport(dir)
	if err != nil {
		t.Fatalf("second scan err = %v", err)
	}
	if rep2.Registered != 2 || rep2.Quarantined != 1 {
		t.Fatalf("second report = %+v", rep2)
	}
	if st := c2.PersistenceStats(); st.Quarantines != 0 {
		t.Fatalf("second scan re-quarantined: %+v", st)
	}
}

func TestHydrationTransientBackoff(t *testing.T) {
	dir := t.TempDir()
	if _, err := persistThree(t, fault.OS{}, dir, 1); err != nil {
		t.Fatal(err)
	}
	c := New()
	c.SetRetryPolicy(time.Hour, time.Hour) // no retry within this test
	in := fault.NewInjector()
	c.SetFS(in)
	if _, err := c.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	// First hydration of "a" hits a transient I/O error.
	boom := errors.New("disk hiccup")
	in.FailAt(fault.OpOpen, in.Count(fault.OpOpen)+1, boom)
	_, err := c.GetErr("a")
	if !errors.Is(err, ErrUnavailable) || !errors.Is(err, boom) {
		t.Fatalf("GetErr(a) = %v, want ErrUnavailable wrapping the cause", err)
	}
	var herr *HydrationError
	if !errors.As(err, &herr) || herr.RetryAfter <= 0 || herr.Quarantined {
		t.Fatalf("GetErr(a) = %#v, want transient HydrationError with RetryAfter", err)
	}

	// In backoff: requests fail fast without re-reading the file, and the
	// file is NOT quarantined — the bytes were never judged.
	opens := in.Count(fault.OpOpen)
	for i := 0; i < 5; i++ {
		if _, err := c.GetErr("a"); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("backoff GetErr(a) = %v", err)
		}
	}
	if got := in.Count(fault.OpOpen); got != opens {
		t.Fatalf("backing-off stub re-read the file: opens %d -> %d", opens, got)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName("a"))); err != nil {
		t.Fatalf("transient failure moved the file: %v", err)
	}
	st := c.PersistenceStats()
	if st.HydrationErrors != 1 || st.Quarantines != 0 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s, ok := c.Stat("a"); !ok || !s.Failing || s.Quarantined {
		t.Fatalf("Stat(a) = %+v, %v", s, ok)
	}

	// Once the backoff expires the next attempt succeeds and the failure
	// state resets.
	c.SetRetryPolicy(time.Nanosecond, time.Nanosecond)
	time.Sleep(time.Millisecond)
	// The hour-long nextTry was stamped under the old policy; re-stamp by
	// driving one more failure cycle is unnecessary — instead verify the
	// policy floor via a fresh corpus.
	c2 := New()
	c2.SetRetryPolicy(time.Nanosecond, time.Nanosecond)
	in2 := fault.NewInjector()
	c2.SetFS(in2)
	if _, err := c2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	in2.FailAt(fault.OpOpen, in2.Count(fault.OpOpen)+1, boom)
	if _, err := c2.GetErr("a"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("first GetErr = %v", err)
	}
	time.Sleep(time.Millisecond) // past the nanosecond backoff
	d, err := c2.GetErr("a")
	if err != nil || d == nil {
		t.Fatalf("post-backoff GetErr = %v", err)
	}
	if s, ok := c2.Stat("a"); !ok || s.Failing || s.LastError != "" {
		t.Fatalf("failure state not reset: %+v", s)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	c := New()
	c.SetRetryPolicy(100*time.Millisecond, 400*time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tc := range []struct {
		fails int
		want  time.Duration
	}{{1, 100 * time.Millisecond}, {2, 200 * time.Millisecond}, {3, 400 * time.Millisecond}, {10, 400 * time.Millisecond}} {
		if got := c.backoffLocked(tc.fails); got != tc.want {
			t.Fatalf("backoff(%d) = %v, want %v", tc.fails, got, tc.want)
		}
	}
}

func TestLoadDirSweepsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	if _, err := persistThree(t, fault.OS{}, dir, 1); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".tmp-stale123")
	fresh := filepath.Join(dir, ".tmp-fresh456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("torn"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpSweepAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	c := New()
	rep, err := c.LoadDirReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Registered != 3 || rep.SweptTmp != 1 {
		t.Fatalf("report = %+v, want 3 registered / 1 swept", rep)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file was swept: %v", err)
	}
}

// TestPersistErrorPaths covers the write-side failures: no such
// document, dehydrated-elsewhere, and an unwritable directory (injected,
// since the tests may run as root where permission bits do not bite).
func TestPersistErrorPaths(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	c := New()
	if err := c.Add("x", doc("A(B)")); err != nil {
		t.Fatal(err)
	}

	if err := c.PersistDoc(dirA, "nope"); err == nil {
		t.Fatal("PersistDoc of unknown name succeeded")
	}

	// Dehydrate x into dirA, then ask for it in dirB: the bytes are not
	// in memory and not at the target path.
	if err := c.PersistDoc(dirA, "x"); err != nil {
		t.Fatal(err)
	}
	c.SetBudget(1, nil) // force dehydration
	c.SetBudget(0, nil)
	if d, _, _ := c.Peek("x"); d != nil {
		t.Fatal("x still resident; dehydration failed")
	}
	if err := c.PersistDoc(dirB, "x"); err == nil || !strings.Contains(err.Error(), "dehydrated elsewhere") {
		t.Fatalf("PersistDoc to other dir = %v, want dehydrated-elsewhere", err)
	}
	// Same dir is the documented no-op.
	if err := c.PersistDoc(dirA, "x"); err != nil {
		t.Fatalf("PersistDoc same dir = %v, want nil", err)
	}

	// Unwritable directory: CreateTemp fails, the persist-error counter
	// moves, and no partial file appears.
	c2 := New()
	if err := c2.Add("y", doc("A(B)")); err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector()
	in.FailAt(fault.OpCreateTemp, 1, fs.ErrPermission)
	c2.SetFS(in)
	if err := c2.PersistDoc(dirB, "y"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("PersistDoc = %v, want permission error", err)
	}
	if st := c2.PersistenceStats(); st.PersistErrors != 1 {
		t.Fatalf("stats = %+v, want 1 persist error", st)
	}
	if des, _ := os.ReadDir(dirB); len(des) != 0 {
		t.Fatalf("failed persist left files: %v", des)
	}

	// A mid-write failure cleans up its temp file.
	in2 := fault.NewInjector()
	in2.FailAt(fault.OpWrite, 1, errors.New("enospc"))
	c2.SetFS(in2)
	if err := c2.PersistDoc(dirB, "y"); err == nil {
		t.Fatal("PersistDoc with failing write succeeded")
	}
	if des, _ := os.ReadDir(dirB); len(des) != 0 {
		t.Fatalf("failed persist left temp files: %v", des)
	}
	if st := c2.PersistenceStats(); st.PersistErrors != 2 {
		t.Fatalf("stats = %+v, want 2 persist errors", st)
	}
}

func TestUnpersistErrorPathsAndQuarantineTwin(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.Add("x", doc("A(B)")); err != nil {
		t.Fatal(err)
	}

	// Missing file: idempotent, no error, entry untouched.
	if err := c.Unpersist(dir, "x"); err != nil {
		t.Fatalf("Unpersist of never-persisted doc = %v", err)
	}
	if _, ok := c.Get("x"); !ok {
		t.Fatal("Unpersist dropped a memory-only document")
	}

	// Unpersist of a quarantined stub removes both the entry and the
	// quarantine file.
	if err := c.PersistDoc(dir, "x"); err != nil {
		t.Fatal(err)
	}
	corruptBody(t, filepath.Join(dir, FileName("x")))
	c2 := New()
	if _, err := c2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.GetErr("x"); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("GetErr = %v, want quarantine", err)
	}
	if err := c2.Unpersist(dir, "x"); err != nil {
		t.Fatalf("Unpersist of quarantined stub = %v", err)
	}
	if _, ok := c2.Get("x"); ok {
		t.Fatal("quarantined stub still in corpus after Unpersist")
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 0 {
		t.Fatalf("quarantine twin survived Unpersist: %v", des)
	}

	// Remove failure (other than not-exist) surfaces.
	c3 := New()
	if err := c3.Add("z", doc("A(B)")); err != nil {
		t.Fatal(err)
	}
	if err := c3.PersistDoc(dir, "z"); err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector()
	in.FailAt(fault.OpRemove, 2, fs.ErrPermission) // 1st Remove is the .corrupt twin probe
	c3.SetFS(in)
	if err := c3.Unpersist(dir, "z"); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("Unpersist with failing remove = %v", err)
	}
}

func TestHydrationErrorString(t *testing.T) {
	q := &HydrationError{Name: "d", Err: errors.New("bit rot"), Quarantined: true}
	if got := q.Error(); !strings.Contains(got, `"d"`) || !strings.Contains(got, "quarantined") || !strings.Contains(got, "bit rot") {
		t.Errorf("quarantined Error() = %q", got)
	}
	tr := &HydrationError{Name: "d", Err: errors.New("io"), RetryAfter: 1500 * time.Millisecond}
	if got := tr.Error(); !strings.Contains(got, "unavailable") || !strings.Contains(got, "1.5s") {
		t.Errorf("transient Error() = %q", got)
	}
}

// TestSetNoSyncSkipsFsync persists with syncs disabled and checks both
// that no sync ops reach the filesystem and that the output still loads.
func TestSetNoSyncSkipsFsync(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector()
	c := New()
	c.SetFS(in)
	c.SetNoSync(true)
	if err := c.Add("a", doc("A(B,C)")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PersistDir(dir); err != nil {
		t.Fatal(err)
	}
	if n := in.Count(fault.OpSync) + in.Count(fault.OpSyncDir); n != 0 {
		t.Fatalf("sync ops with SetNoSync(true): %d, want 0", n)
	}
	c2 := New()
	if _, err := c2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if d, err := c2.GetErr("a"); err != nil || d.Len() != 3 {
		t.Fatalf("reload after no-sync persist: %v, %v", d, err)
	}
}
