package corpus

import (
	"context"
	"iter"
	"runtime"
	"sync"
)

// Job is one (document, query) evaluation of a batch: the document
// snapshot plus the index of the prepared query in the batch's query set.
type Job struct {
	Doc   Doc
	Query int
}

// Jobs expands a document snapshot into the document-major job list for a
// batch over queries prepared queries: all queries of doc 0, then all of
// doc 1, and so on. Workers pick jobs off this list in order, so
// neighboring workers tend to share a document's index working set.
func Jobs(docs []Doc, queries int) []Job {
	jobs := make([]Job, 0, len(docs)*queries)
	for _, d := range docs {
		for q := 0; q < queries; q++ {
			jobs = append(jobs, Job{Doc: d, Query: q})
		}
	}
	return jobs
}

// Result carries one per-(document, query) outcome of a batch.
type Result[T any] struct {
	// Doc is the document's corpus name.
	Doc string
	// Query indexes the batch's prepared-query set.
	Query int
	// Value is the evaluation result when Err is nil.
	Value T
	// Err is the per-job error: a cancellation error, or whatever eval
	// reported (e.g. core.ErrNotMonadic on a node-mode batch).
	Err error
}

// Run fans eval across jobs with a bounded worker pool and streams
// results in completion order (document-major submission order when
// workers <= 1). The returned iterator is single-use.
//
// workers <= 1 evaluates inline on the consumer's goroutine; otherwise
// min(workers, len(jobs)) goroutines evaluate concurrently. Scratch reuse
// is the callee's concern: core.Prepared pools evaluation scratch
// internally, so a worker that evaluates many documents against the same
// prepared query keeps hitting warm buffers.
//
// Cancellation: eval receives a context derived from ctx that is also
// cancelled when the consumer breaks out of the iteration, so in-flight
// evaluations stop at their next cancellation check and the pool always
// joins before the iterator returns. Jobs already dispatched report the
// cancellation error their evaluation returned; jobs not yet dispatched
// when ctx dies are never started and produce no result.
func Run[T any](ctx context.Context, workers int, jobs []Job, eval func(ctx context.Context, j Job) (T, error)) iter.Seq[Result[T]] {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		return func(yield func(Result[T]) bool) {
			for _, j := range jobs {
				if ctx.Err() != nil {
					return
				}
				v, err := eval(ctx, j)
				if !yield(Result[T]{Doc: j.Doc.Name, Query: j.Query, Value: v, Err: err}) {
					return
				}
			}
		}
	}
	return func(yield func(Result[T]) bool) {
		if ctx.Err() != nil {
			return
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		jobCh := make(chan Job)
		resCh := make(chan Result[T])
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobCh {
					// Deadline promptness: a job picked up after the batch
					// died reports the cancellation without paying for an
					// evaluation whose result would be discarded — the
					// worker is free to drain and join immediately, which
					// is what releases server-side capacity under load.
					if err := ctx.Err(); err != nil {
						resCh <- Result[T]{Doc: j.Doc.Name, Query: j.Query, Err: err}
						continue
					}
					v, err := eval(ctx, j)
					// The send never blocks indefinitely: the consumer
					// either reads resCh or, after an early exit, drains it
					// until the pool joins — so every finished evaluation's
					// result is delivered even when cancellation races it.
					resCh <- Result[T]{Doc: j.Doc.Name, Query: j.Query, Value: v, Err: err}
				}
			}()
		}
		go func() {
			defer close(jobCh)
			for _, j := range jobs {
				// Checked before the select: when both channels are ready
				// the select would pick randomly, dispatching work under a
				// context that is already dead.
				if ctx.Err() != nil {
					return
				}
				select {
				case jobCh <- j:
				case <-ctx.Done():
					return
				}
			}
		}()
		go func() {
			wg.Wait()
			close(resCh)
		}()

		for r := range resCh {
			if !yield(r) {
				cancel()
				// Drain so the workers' sends never block; they exit on
				// ctx.Done or jobCh close, and the closer then closes resCh.
				for range resCh {
				}
				return
			}
		}
	}
}
