package corpus

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/tree"
)

func doc(src string) *core.Document {
	return core.NewDocument(tree.MustParseTerm(src))
}

func TestAddSwapRemoveGet(t *testing.T) {
	c := New()
	d1, d2 := doc("A(B,C)"), doc("A(B(C),C)")

	if err := c.Add("", d1); !errors.Is(err, ErrEmptyName) {
		t.Fatalf("Add empty name: err = %v, want ErrEmptyName", err)
	}
	if err := c.Add("one", d1); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := c.Add("one", d2); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Add: err = %v, want ErrExists", err)
	}
	if got, ok := c.Get("one"); !ok || got != d1 {
		t.Fatalf("Get = %v, %v; want d1, true", got, ok)
	}
	if prev, err := c.Swap("one", d2); err != nil || prev != d1 {
		t.Fatalf("Swap = %v, %v; want d1, nil", prev, err)
	}
	if prev, err := c.Swap("two", d1); err != nil || prev != nil {
		t.Fatalf("Swap fresh name = %v, %v; want nil, nil", prev, err)
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"one", "two"}) {
		t.Fatalf("Names = %v", got)
	}
	if want := d1.SizeBytes() + d2.SizeBytes(); c.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", c.Bytes(), want)
	}
	if got := c.Remove("one"); got != d2 {
		t.Fatalf("Remove = %v, want d2", got)
	}
	if got := c.Remove("one"); got != nil {
		t.Fatalf("second Remove = %v, want nil", got)
	}
	if c.Len() != 1 || c.Bytes() != d1.SizeBytes() {
		t.Fatalf("after Remove: Len = %d, Bytes = %d", c.Len(), c.Bytes())
	}
}

// TestEvictionLRU: a byte budget evicts least-recently-used documents,
// Get counts as a use, the triggering insertion is spared, and the hook
// sees every victim.
func TestEvictionLRU(t *testing.T) {
	c := New()
	var evicted []string
	one := doc("A(B,C)")
	one.Materialize() // Add charges the materialized size; budget from the same figure
	budget := 3*one.SizeBytes() + one.SizeBytes()/2
	c.SetBudget(budget, func(name string, d *core.Document) {
		if d == nil {
			t.Errorf("eviction hook for %q: nil document", name)
		}
		evicted = append(evicted, name)
	})

	for _, name := range []string{"a", "b", "c"} {
		if err := c.Add(name, doc("A(B,C)")); err != nil {
			t.Fatalf("Add %s: %v", name, err)
		}
	}
	if len(evicted) != 0 {
		t.Fatalf("evicted %v before exceeding budget", evicted)
	}
	// Touch "a" so "b" is now the least recently used. Peek is not a
	// touch: peeking "b" afterwards must not save it from eviction.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("Get a failed")
	}
	if _, bytes, ok := c.Peek("b"); !ok || bytes <= 0 {
		t.Fatalf("Peek b = %d, %v", bytes, ok)
	}
	if err := c.Add("d", doc("A(B,C)")); err != nil {
		t.Fatalf("Add d: %v", err)
	}
	if !reflect.DeepEqual(evicted, []string{"b"}) {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"a", "c", "d"}) {
		t.Fatalf("Names = %v", got)
	}

	// A single oversized insertion evicts everything else but is spared
	// itself.
	evicted = nil
	big := core.NewDocument(tree.MustParseTerm("A(" + deepTerm(200) + ")"))
	if big.SizeBytes() <= budget {
		t.Fatalf("test setup: big doc (%d bytes) fits the budget (%d)", big.SizeBytes(), budget)
	}
	if err := c.Add("big", big); err != nil {
		t.Fatalf("Add big: %v", err)
	}
	sort.Strings(evicted)
	if !reflect.DeepEqual(evicted, []string{"a", "c", "d"}) {
		t.Fatalf("evicted = %v, want [a c d]", evicted)
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"big"}) {
		t.Fatalf("Names = %v, want [big]", got)
	}
}

// deepTerm builds a right-deep term with n nodes.
func deepTerm(n int) string {
	s := "B"
	for i := 1; i < n; i++ {
		s = "B(" + s + ")"
	}
	return s
}

func TestSnapshot(t *testing.T) {
	c := New()
	for _, name := range []string{"x", "y", "z"} {
		if err := c.Add(name, doc("A(B)")); err != nil {
			t.Fatal(err)
		}
	}
	docs, missing := c.Snapshot(nil, nil)
	if names := docNames(docs); !reflect.DeepEqual(names, []string{"x", "y", "z"}) || missing != nil {
		t.Fatalf("full snapshot = %v, missing %v", names, missing)
	}
	docs, missing = c.Snapshot([]string{"z", "nope", "x"}, nil)
	if names := docNames(docs); !reflect.DeepEqual(names, []string{"z", "x"}) {
		t.Fatalf("named snapshot = %v", names)
	}
	if len(missing) != 1 || missing[0].Name != "nope" || !errors.Is(missing[0].Err, ErrUnknown) {
		t.Fatalf("missing = %v", missing)
	}
	docs, _ = c.Snapshot(nil, func(name string) bool { return name != "y" })
	if names := docNames(docs); !reflect.DeepEqual(names, []string{"x", "z"}) {
		t.Fatalf("filtered snapshot = %v", names)
	}
}

func docNames(docs []Doc) []string {
	names := make([]string, len(docs))
	for i, d := range docs {
		names[i] = d.Name
	}
	return names
}

// TestRunParity: the parallel pool produces exactly the sequential result
// set (as a set — completion order differs), for every worker count.
func TestRunParity(t *testing.T) {
	var docs []Doc
	for i := 0; i < 7; i++ {
		docs = append(docs, Doc{Name: fmt.Sprintf("d%d", i)})
	}
	jobs := Jobs(docs, 3)
	eval := func(_ context.Context, j Job) (string, error) {
		return fmt.Sprintf("%s/%d", j.Doc.Name, j.Query), nil
	}
	var want []string
	for r := range Run(nil, 1, jobs, eval) {
		if r.Err != nil {
			t.Fatalf("sequential: %v", r.Err)
		}
		want = append(want, r.Value)
	}
	if len(want) != len(jobs) {
		t.Fatalf("sequential yielded %d of %d", len(want), len(jobs))
	}
	for _, workers := range []int{2, 4, 32} {
		var got []string
		for r := range Run(context.Background(), workers, jobs, eval) {
			if r.Err != nil {
				t.Fatalf("workers=%d: %v", workers, r.Err)
			}
			got = append(got, r.Value)
		}
		sortedWant := append([]string(nil), want...)
		sort.Strings(sortedWant)
		sort.Strings(got)
		if !reflect.DeepEqual(got, sortedWant) {
			t.Fatalf("workers=%d: %v != %v", workers, got, sortedWant)
		}
	}
}

// TestRunEarlyExit: breaking out of the iterator cancels the derived
// context, the pool joins, and not every job runs.
func TestRunEarlyExit(t *testing.T) {
	docs := make([]Doc, 64)
	for i := range docs {
		docs[i] = Doc{Name: fmt.Sprintf("d%03d", i)}
	}
	jobs := Jobs(docs, 1)
	var mu sync.Mutex
	ran := 0
	eval := func(ctx context.Context, j Job) (int, error) {
		mu.Lock()
		ran++
		mu.Unlock()
		return 0, ctx.Err()
	}
	seen := 0
	for range Run(context.Background(), 4, jobs, eval) {
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("consumed %d, want 3", seen)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= len(jobs) {
		t.Fatalf("early exit still ran all %d jobs", ran)
	}
}

// TestRunCancellation: a pre-cancelled context yields nothing
// sequentially, and a mid-flight cancel stops dispatch while in-flight
// evaluations report the context error.
func TestRunCancellation(t *testing.T) {
	jobs := Jobs([]Doc{{Name: "a"}, {Name: "b"}, {Name: "c"}}, 1)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for range Run(cancelled, 1, jobs, func(context.Context, Job) (int, error) { return 0, nil }) {
		t.Fatal("pre-cancelled sequential Run yielded a result")
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	results := 0
	for r := range Run(ctx, 2, jobs, func(ctx context.Context, j Job) (int, error) {
		cancelMid()
		return 0, ctx.Err()
	}) {
		results++
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result err = %v, want context.Canceled", r.Err)
		}
	}
	if results == 0 {
		t.Fatal("no in-flight results observed")
	}
}

// TestRunCancelSkipsEval: once the batch context dies, workers stop
// invoking eval — a job that reaches a worker after cancellation reports
// the cancellation error without paying for an evaluation. This is what
// frees pool capacity promptly under deadline pressure: without the
// worker-side check, a job delivered in the race window between the
// dispatcher's last liveness check and the cancel would still evaluate.
func TestRunCancelSkipsEval(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		docs := make([]Doc, 8)
		for i := range docs {
			docs[i] = Doc{Name: fmt.Sprintf("d%d", i)}
		}
		jobs := Jobs(docs, 1)
		ctx, cancel := context.WithCancel(context.Background())

		const workers = 2
		var calls atomic.Int32
		entered := make(chan struct{}, workers)
		gate := make(chan struct{})
		eval := func(ctx context.Context, j Job) (int, error) {
			calls.Add(1)
			entered <- struct{}{}
			<-gate
			return 0, ctx.Err()
		}

		results := make(chan Result[int], len(jobs))
		go func() {
			defer close(results)
			for r := range Run(ctx, workers, jobs, eval) {
				results <- r
			}
		}()

		// Both workers are mid-eval; the dispatcher is blocked offering the
		// next job. Cancel, then let the evals finish: every later worker
		// iteration observes the dead context before touching eval.
		<-entered
		<-entered
		cancel()
		close(gate)

		n := 0
		for r := range results {
			n++
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("iter %d: result err = %v, want context.Canceled", iter, r.Err)
			}
		}
		if got := calls.Load(); got != workers {
			t.Fatalf("iter %d: eval ran %d times, want exactly %d (no eval after cancel)", iter, got, workers)
		}
		if n < workers || n > len(jobs) {
			t.Fatalf("iter %d: %d results for %d jobs", iter, n, len(jobs))
		}
	}
}

// TestVersionMonotonic: versions strictly increase across every content
// change of a name — Add, Swap, Remove followed by re-Add — and Version
// agrees with Stat.
func TestVersionMonotonic(t *testing.T) {
	c := New()
	if _, ok := c.Version("x"); ok {
		t.Fatal("Version of absent name reported ok")
	}
	if err := c.Add("x", doc("A(B)")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	v1, ok := c.Version("x")
	if !ok || v1 == 0 {
		t.Fatalf("Version after Add = %d, %v", v1, ok)
	}
	if st, ok := c.Stat("x"); !ok || st.Version != v1 {
		t.Fatalf("Stat.Version = %d, want %d", st.Version, v1)
	}
	if _, err := c.Swap("x", doc("A(B,C)")); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	v2, _ := c.Version("x")
	if v2 <= v1 {
		t.Fatalf("Swap version %d not after Add version %d", v2, v1)
	}
	c.Remove("x")
	if _, ok := c.Version("x"); ok {
		t.Fatal("Version survived Remove")
	}
	if err := c.Add("x", doc("A(C)")); err != nil {
		t.Fatalf("re-Add: %v", err)
	}
	v3, _ := c.Version("x")
	if v3 <= v2 {
		t.Fatalf("re-Add version %d not after Swap version %d", v3, v2)
	}
	// Distinct names never share a version: a cache key that (wrongly)
	// dropped the name would still not collide.
	if err := c.Add("y", doc("A(B)")); err != nil {
		t.Fatalf("Add y: %v", err)
	}
	vy, _ := c.Version("y")
	if vy <= v3 {
		t.Fatalf("y version %d not after x version %d", vy, v3)
	}
}

// TestVersionStableAcrossHydration: dehydrating a snapshot-backed entry
// and hydrating it back changes residency only — the version (and so any
// cached results keyed to it) survives the round trip unchanged.
func TestVersionStableAcrossHydration(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.Add("x", doc("A(B(C),D)")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := c.PersistDoc(dir, "x"); err != nil {
		t.Fatalf("PersistDoc: %v", err)
	}
	v0, _ := c.Version("x")

	c.SetBudget(1, nil) // force dehydration of the (persisted) entry
	st, ok := c.Stat("x")
	if !ok || st.Hydrated {
		t.Fatalf("after budget squeeze: Stat = %+v, %v (want dehydrated)", st, ok)
	}
	if st.Version != v0 {
		t.Fatalf("dehydration changed version: %d -> %d", v0, st.Version)
	}

	c.SetBudget(0, nil) // lift the budget; hydration must not re-dehydrate
	if _, ok := c.Get("x"); !ok {
		t.Fatal("Get failed to hydrate")
	}
	if st, _ := c.Stat("x"); !st.Hydrated {
		t.Fatal("entry not hydrated after Get")
	}
	if v, _ := c.Version("x"); v != v0 {
		t.Fatalf("hydration changed version: %d -> %d", v0, v)
	}
	if n := c.Hydrations(); n != 1 {
		t.Fatalf("Hydrations = %d, want 1", n)
	}

	// A fresh corpus opening the same directory assigns NEW versions:
	// stub registration is a content-establishing event for that corpus.
	c2 := New()
	if n, err := c2.LoadDir(dir); err != nil || n != 1 {
		t.Fatalf("LoadDir = %d, %v", n, err)
	}
	if v, ok := c2.Version("x"); !ok || v == 0 {
		t.Fatalf("stub version = %d, %v", v, ok)
	}
}

// TestInvalidationHook: the hook fires once per name on Swap replacement,
// Remove, budget eviction, and dehydration — and does NOT fire on fresh
// Add, fresh-name Swap, or hydration.
func TestInvalidationHook(t *testing.T) {
	dir := t.TempDir()
	c := New()
	var fired []string
	c.SetInvalidationHook(func(name string) { fired = append(fired, name) })
	var evicted []string
	take := func() []string { out := fired; fired = nil; return out }

	if err := c.Add("a", doc("A(B)")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if got := take(); len(got) != 0 {
		t.Fatalf("fresh Add fired %v", got)
	}
	if _, err := c.Swap("b", doc("A(B)")); err != nil {
		t.Fatalf("Swap fresh: %v", err)
	}
	if got := take(); len(got) != 0 {
		t.Fatalf("fresh-name Swap fired %v", got)
	}
	if _, err := c.Swap("a", doc("A(B,C)")); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if got := take(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Swap replacement fired %v, want [a]", got)
	}

	// Remove fires both hooks — the same path as budget eviction.
	c.SetBudget(0, func(name string, d *core.Document) {
		if d == nil {
			t.Errorf("eviction hook for %q: nil document", name)
		}
		evicted = append(evicted, name)
	})
	c.Remove("a")
	if got := take(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Remove fired %v, want [a]", got)
	}
	if !reflect.DeepEqual(evicted, []string{"a"}) {
		t.Fatalf("Remove eviction hook saw %v, want [a]", evicted)
	}
	evicted = nil

	// Dehydration (snapshot-backed budget victim) fires both hooks too:
	// the cached results stay correct in principle, but the cache entry's
	// backing document left memory, so subscribers are told.
	if err := c.PersistDoc(dir, "b"); err != nil {
		t.Fatalf("PersistDoc: %v", err)
	}
	c.SetBudget(1, func(name string, d *core.Document) { evicted = append(evicted, name) })
	if got := take(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("dehydration fired %v, want [b]", got)
	}
	if !reflect.DeepEqual(evicted, []string{"b"}) {
		t.Fatalf("dehydration eviction hook saw %v, want [b]", evicted)
	}

	// Hydration is silent: residency returns, content never changed.
	c.SetBudget(0, nil)
	if _, ok := c.Get("b"); !ok {
		t.Fatal("Get failed to hydrate")
	}
	if got := take(); len(got) != 0 {
		t.Fatalf("hydration fired %v", got)
	}

	// Removing a stub fires invalidation but not eviction (no resident
	// document to hand the eviction hook).
	c2 := New()
	if n, err := c2.LoadDir(dir); err != nil || n != 1 {
		t.Fatalf("LoadDir = %d, %v", n, err)
	}
	var stubFired []string
	c2.SetInvalidationHook(func(name string) { stubFired = append(stubFired, name) })
	c2.SetBudget(0, func(name string, d *core.Document) {
		t.Errorf("eviction hook fired for stub %q", name)
	})
	if d := c2.Remove("b"); d != nil {
		t.Fatalf("Remove stub returned a document")
	}
	if !reflect.DeepEqual(stubFired, []string{"b"}) {
		t.Fatalf("stub Remove fired %v, want [b]", stubFired)
	}
}
