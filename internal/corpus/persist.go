package corpus

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/snapshot"
)

// Snapshot directory layout: one file per document, named
// FileName(name), in a flat directory. Documents load lazily — LoadDir
// registers stubs from the file headers only, and each document's full
// snapshot is read on first use — so opening a million-document corpus
// costs a directory listing plus one small header read per file, not a
// million decodes.

// SnapshotExt is the filename extension of document snapshot files.
const SnapshotExt = ".cqs"

// FileName returns the snapshot filename for a document name: the name
// percent-escaped (so any name is a safe single path component) plus
// SnapshotExt.
func FileName(name string) string {
	return url.PathEscape(name) + SnapshotExt
}

// nameOfFile inverts FileName; ok is false for files that are not
// document snapshots.
func nameOfFile(file string) (string, bool) {
	base, found := strings.CutSuffix(file, SnapshotExt)
	if !found || base == "" {
		return "", false
	}
	name, err := url.PathUnescape(base)
	if err != nil || name == "" {
		return "", false
	}
	return name, true
}

// LoadDir registers every snapshot file in dir as a dehydrated stub:
// only each file's meta header is read (for the node count), and the
// document itself hydrates on first Get or batch use, under the byte
// budget. Names already present in the corpus are skipped — memory wins
// over disk. Files that are not snapshots (wrong extension) are ignored;
// files with a snapshot extension but an unreadable header are reported
// in the joined error while the rest still register. Returns the number
// of stubs registered.
func (c *Corpus) LoadDir(dir string) (int, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var errs []error
	added := 0
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name, ok := nameOfFile(de.Name())
		if !ok {
			continue
		}
		path := filepath.Join(dir, de.Name())
		nodes, err := snapshot.PeekMeta(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", de.Name(), err))
			continue
		}
		c.mu.Lock()
		if _, taken := c.entries[name]; !taken {
			c.clock++
			c.verClock++
			c.entries[name] = &entry{used: c.clock, path: path, nodes: nodes, ver: c.verClock}
			added++
		}
		c.mu.Unlock()
	}
	return added, errors.Join(errs...)
}

// PersistDoc writes the named document's snapshot to dir and marks the
// entry as backed by that file, making it dehydratable: once persisted,
// budget pressure turns it back into a stub instead of dropping it. A
// stub that is already backed by a file in dir is a no-op. It does not
// touch the LRU clock.
func (c *Corpus) PersistDoc(dir, name string) error {
	path := filepath.Join(dir, FileName(name))
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("corpus: no document %q", name)
	}
	if e.doc == nil {
		samePath := e.path == path
		c.mu.Unlock()
		if samePath {
			return nil // dehydrated and already on disk at the target path
		}
		return fmt.Errorf("corpus: document %q is dehydrated elsewhere", name)
	}
	doc := e.doc
	c.mu.Unlock()

	// Encode and write outside the lock; documents are immutable, so the
	// bytes are right even if the corpus mutates meanwhile.
	if err := writeFileAtomic(path, doc.Snapshot()); err != nil {
		return err
	}
	c.mu.Lock()
	if e2, ok := c.entries[name]; ok && e2.doc == doc {
		e2.path = path
	}
	c.mu.Unlock()
	return nil
}

// PersistDir persists every document in the corpus to dir (see
// PersistDoc), creating it if needed. Returns the number of documents
// written; stubs already backed by files in dir count as persisted
// without a write. Failures are joined; the rest still persist.
func (c *Corpus) PersistDir(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var errs []error
	written := 0
	for _, name := range c.Names() {
		if err := c.PersistDoc(dir, name); err != nil {
			errs = append(errs, err)
			continue
		}
		written++
	}
	return written, errors.Join(errs...)
}

// Unpersist deletes the named document's snapshot file from dir and
// detaches the entry from it (a resident document stays resident but
// becomes memory-only; a stub backed by that file is removed from the
// corpus entirely, since its bytes are gone). Missing files are fine —
// removal is idempotent.
func (c *Corpus) Unpersist(dir, name string) error {
	path := filepath.Join(dir, FileName(name))
	c.mu.Lock()
	if e, ok := c.entries[name]; ok && e.path == path {
		e.path = ""
		if e.doc == nil {
			delete(c.entries, name)
		}
	}
	c.mu.Unlock()
	err := os.Remove(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, so a crash mid-write never leaves a torn snapshot where LoadDir
// would find it.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		// CreateTemp's 0600 is for secrets; snapshots match the usual
		// file mode (and SaveDocumentFile).
		werr = os.Chmod(tmp, 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return nil
}
