package corpus

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/snapshot"
)

// Snapshot directory layout: one file per document, named
// FileName(name), in a flat directory. Documents load lazily — LoadDir
// registers stubs from the file headers only, and each document's full
// snapshot is read on first use — so opening a million-document corpus
// costs a directory listing plus one small header read per file, not a
// million decodes.
//
// Durability contract: writeFileAtomic fsyncs the temp file before the
// rename and the parent directory after it, so after PersistDoc returns,
// a crash at any point leaves either the complete old snapshot or the
// complete new one at the final name — never a torn file. Torn data can
// only ever exist under a ".tmp-*" name, which LoadDir sweeps. A file at
// a final name that still fails validation (bit rot, external damage) is
// quarantined: renamed to "<file>.corrupt", counted, and skipped.

// SnapshotExt is the filename extension of document snapshot files.
const SnapshotExt = ".cqs"

// QuarantineExt is the suffix appended to a snapshot file's name when it
// is quarantined: "<name>.cqs" becomes "<name>.cqs.corrupt". Quarantined
// files are never loaded or retried; they are kept (not deleted) so the
// corrupt bytes remain available for forensics.
const QuarantineExt = ".corrupt"

// tmpPrefix names in-flight atomic-write temp files. A crash can orphan
// one; LoadDir deletes orphans older than tmpSweepAge.
const tmpPrefix = ".tmp-"

// tmpSweepAge is how old an orphaned temp file must be before LoadDir
// deletes it — generous enough that a concurrent writer's in-flight temp
// file is never swept. Package variable so tests can age files with
// os.Chtimes instead of sleeping.
var tmpSweepAge = time.Hour

// FileName returns the snapshot filename for a document name: the name
// percent-escaped (so any name is a safe single path component) plus
// SnapshotExt.
func FileName(name string) string {
	return url.PathEscape(name) + SnapshotExt
}

// nameOfFile inverts FileName; ok is false for files that are not
// document snapshots.
func nameOfFile(file string) (string, bool) {
	base, found := strings.CutSuffix(file, SnapshotExt)
	if !found || base == "" {
		return "", false
	}
	name, err := url.PathUnescape(base)
	if err != nil || name == "" {
		return "", false
	}
	return name, true
}

// SetFS replaces the filesystem the persistence paths go through. The
// default is the real filesystem (fault.OS); tests install a
// fault.Injector to exercise crash and error paths deterministically.
// Must be called before the corpus touches disk.
func (c *Corpus) SetFS(fsys fault.FS) {
	c.mu.Lock()
	c.fs = fsys
	c.mu.Unlock()
}

// SetNoSync disables the fsync calls in the persist path (temp-file sync
// and parent-directory sync). Writes remain atomic with respect to
// concurrent readers — the rename still happens last — but lose crash
// durability: after a power loss a freshly persisted snapshot may be
// torn or missing. For tests and bulk imports that will re-persist on
// failure; production keeps syncs on.
func (c *Corpus) SetNoSync(noSync bool) {
	c.mu.Lock()
	c.noSync = noSync
	c.mu.Unlock()
}

// fsys returns the corpus's filesystem seam (the real one by default).
func (c *Corpus) fsys() fault.FS {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fs == nil {
		return fault.OS{}
	}
	return c.fs
}

// LoadReport is the outcome of a LoadDir pass.
type LoadReport struct {
	// Registered is the number of stubs registered.
	Registered int
	// Quarantined counts snapshot files skipped because they are (or were
	// just) quarantined: pre-existing "*.cqs.corrupt" files plus files
	// whose header failed validation during this pass.
	Quarantined int
	// SweptTmp is the number of stale orphaned ".tmp-*" files deleted.
	SweptTmp int
}

// LoadDir registers every snapshot file in dir as a dehydrated stub; see
// LoadDirReport for the full accounting. Returns the number of stubs
// registered.
func (c *Corpus) LoadDir(dir string) (int, error) {
	rep, err := c.LoadDirReport(dir)
	return rep.Registered, err
}

// LoadDirReport registers every snapshot file in dir as a dehydrated
// stub: only each file's meta header is read (for the node count), and
// the document itself hydrates on first Get or batch use, under the byte
// budget. Names already present in the corpus are skipped — memory wins
// over disk.
//
// Fault handling: files that are not snapshots (wrong extension) are
// ignored; quarantined files ("*.cqs.corrupt") are skipped and counted;
// files with a snapshot extension whose header fails format validation
// are quarantined on the spot (renamed, counted, reported in the joined
// error); header reads that fail with transient I/O errors are reported
// but the file is left in place for the next pass. Orphaned ".tmp-*"
// files from a crashed atomic write are deleted once older than
// tmpSweepAge. The rest of the directory still registers.
func (c *Corpus) LoadDirReport(dir string) (LoadReport, error) {
	fsys := c.fsys()
	var rep LoadReport
	des, err := fsys.ReadDir(dir)
	if err != nil {
		return rep, err
	}
	var errs []error
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		file := de.Name()
		if strings.HasSuffix(file, QuarantineExt) {
			rep.Quarantined++
			continue
		}
		if strings.HasPrefix(file, tmpPrefix) {
			if swept := sweepTmp(fsys, filepath.Join(dir, file)); swept {
				rep.SweptTmp++
			}
			continue
		}
		name, ok := nameOfFile(file)
		if !ok {
			continue
		}
		path := filepath.Join(dir, file)
		nodes, err := snapshot.PeekMetaFS(fsys, path)
		if err != nil {
			if permanentSnapshotErr(err) {
				if c.quarantineFile(fsys, path) {
					rep.Quarantined++
				}
				errs = append(errs, fmt.Errorf("%s: quarantined: %w", file, err))
			} else {
				errs = append(errs, fmt.Errorf("%s: %w", file, err))
			}
			continue
		}
		c.mu.Lock()
		if _, taken := c.entries[name]; !taken {
			c.clock++
			c.verClock++
			c.entries[name] = &entry{used: c.clock, path: path, nodes: nodes, ver: c.verClock}
			rep.Registered++
		}
		c.mu.Unlock()
	}
	return rep, errors.Join(errs...)
}

// sweepTmp deletes one orphaned temp file if it is older than
// tmpSweepAge; reports whether it was deleted.
func sweepTmp(fsys fault.FS, path string) bool {
	st, err := os.Stat(path)
	if err != nil || time.Since(st.ModTime()) < tmpSweepAge {
		return false
	}
	return fsys.Remove(path) == nil
}

// permanentSnapshotErr reports whether a read/decode failure is a format
// violation — the file's bytes are wrong and rereading cannot help — as
// opposed to a transient I/O error worth retrying.
func permanentSnapshotErr(err error) bool {
	return errors.Is(err, snapshot.ErrBadMagic) ||
		errors.Is(err, snapshot.ErrVersion) ||
		errors.Is(err, snapshot.ErrChecksum) ||
		errors.Is(err, snapshot.ErrCorrupt) ||
		errors.Is(err, snapshot.ErrTruncated)
}

// quarantineFile renames path out of the load path by appending
// QuarantineExt and counts the quarantine. Reports whether the rename
// succeeded (a false return means the file vanished or the rename
// failed; either way it will not be loaded this pass).
func (c *Corpus) quarantineFile(fsys fault.FS, path string) bool {
	if err := fsys.Rename(path, path+QuarantineExt); err != nil {
		return false
	}
	c.mu.Lock()
	noSync := c.noSync
	c.mu.Unlock()
	if !noSync {
		_ = fsys.SyncDir(filepath.Dir(path))
	}
	c.quarantines.Add(1)
	return true
}

// PersistDoc writes the named document's snapshot to dir and marks the
// entry as backed by that file, making it dehydratable: once persisted,
// budget pressure turns it back into a stub instead of dropping it. A
// stub that is already backed by a file in dir is a no-op. It does not
// touch the LRU clock.
func (c *Corpus) PersistDoc(dir, name string) error {
	path := filepath.Join(dir, FileName(name))
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("corpus: no document %q", name)
	}
	if e.doc == nil {
		samePath := e.path == path
		c.mu.Unlock()
		if samePath {
			return nil // dehydrated and already on disk at the target path
		}
		return fmt.Errorf("corpus: document %q is dehydrated elsewhere", name)
	}
	doc := e.doc
	c.mu.Unlock()

	// Encode and write outside the lock; documents are immutable, so the
	// bytes are right even if the corpus mutates meanwhile.
	if err := c.writeFileAtomic(path, doc.Snapshot()); err != nil {
		c.persistErrs.Add(1)
		return fmt.Errorf("corpus: persist %q: %w", name, err)
	}
	c.mu.Lock()
	if e2, ok := c.entries[name]; ok && e2.doc == doc {
		e2.path = path
	}
	c.mu.Unlock()
	return nil
}

// PersistDir persists every document in the corpus to dir (see
// PersistDoc), creating it if needed. Returns the number of documents
// written; stubs already backed by files in dir count as persisted
// without a write. Failures are joined; the rest still persist.
func (c *Corpus) PersistDir(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var errs []error
	written := 0
	for _, name := range c.Names() {
		if err := c.PersistDoc(dir, name); err != nil {
			errs = append(errs, err)
			continue
		}
		written++
	}
	return written, errors.Join(errs...)
}

// Unpersist deletes the named document's snapshot file from dir and
// detaches the entry from it (a resident document stays resident but
// becomes memory-only; a stub backed by that file — including a
// quarantined one — is removed from the corpus entirely, since its bytes
// are gone). The file's quarantined twin, if any, is deleted too.
// Missing files are fine — removal is idempotent.
func (c *Corpus) Unpersist(dir, name string) error {
	fsys := c.fsys()
	path := filepath.Join(dir, FileName(name))
	c.mu.Lock()
	if e, ok := c.entries[name]; ok && e.path == path {
		e.path = ""
		if e.doc == nil {
			delete(c.entries, name)
		}
	}
	c.mu.Unlock()
	if err := fsys.Remove(path + QuarantineExt); err != nil && !os.IsNotExist(err) {
		return err
	}
	err := fsys.Remove(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename. The sequence is the full crash-safe one: write the temp file,
// fsync it, rename over the target, fsync the parent directory. A crash
// at any step leaves either the old file or the new file at path — the
// fsync-before-rename rules out the rename landing with unflushed data
// behind it, and the directory fsync makes the rename itself durable.
// With SetNoSync both fsyncs are skipped (atomic, not crash-durable).
func (c *Corpus) writeFileAtomic(path string, data []byte) error {
	fsys := c.fsys()
	c.mu.Lock()
	noSync := c.noSync
	c.mu.Unlock()
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil && !noSync {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		// CreateTemp's 0600 is for secrets; snapshots match the usual
		// file mode (and SaveDocumentFile).
		werr = fsys.Chmod(tmp, 0o644)
	}
	if werr == nil {
		werr = fsys.Rename(tmp, path)
	}
	if werr != nil {
		fsys.Remove(tmp)
		return werr
	}
	if !noSync {
		if err := fsys.SyncDir(dir); err != nil {
			return err
		}
	}
	return nil
}
