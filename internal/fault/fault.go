// Package fault is the failpoint layer under the persistence tier: a
// small filesystem interface (FS/File) that the snapshot reader and the
// corpus persist path are threaded through, plus an Injector that wraps
// the real filesystem with deterministic failures — error out the Nth
// write/sync/rename, cut a write short, or simulate a whole-process
// power loss whose surviving on-disk state is adversarially torn.
//
// The crash model is the standard POSIX one the durability code is
// written against:
//
//   - Data written to a file is durable only once the file has been
//     fsynced; at a crash, everything written after the last Sync may
//     come back truncated, zeroed, or bit-flipped (TornMode).
//   - A rename is durable only once the parent directory has been
//     fsynced; at a crash, renames after the last SyncDir may be rolled
//     back wholesale — the old name reappears with its old content.
//
// An Injector enforces exactly that model: Crash (or CrashAfterOps)
// freezes the filesystem — every later operation fails with ErrCrashed —
// and rewrites the on-disk state to the worst legal post-crash image, so
// a recovery test that passes against the Injector passes against real
// power loss. The zero-dependency OS implementation is the production
// path; code never pays for the seam beyond one interface call.
package fault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Typed injected failures; match with errors.Is.
var (
	// ErrInjected is the default error returned by a FailAt failpoint.
	ErrInjected = errors.New("fault: injected error")
	// ErrCrashed is returned by every operation after a simulated crash:
	// the process this FS belonged to is "dead", and a recovery test must
	// reopen the directory through a fresh (real) FS.
	ErrCrashed = errors.New("fault: filesystem crashed")
)

// Op identifies one intercepted filesystem operation kind.
type Op uint8

const (
	OpOpen Op = iota
	OpRead
	OpCreateTemp
	OpWrite
	OpSync
	OpClose
	OpChmod
	OpRename
	OpRemove
	OpReadDir
	OpSyncDir
	opCount
)

var opNames = [...]string{
	OpOpen: "open", OpRead: "read", OpCreateTemp: "create-temp", OpWrite: "write",
	OpSync: "sync", OpClose: "close", OpChmod: "chmod", OpRename: "rename",
	OpRemove: "remove", OpReadDir: "readdir", OpSyncDir: "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// File is the open-file surface the persistence tier needs: sequential
// read/write, Sync (fsync), Stat for the size, and the name for
// temp-file bookkeeping.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Stat() (os.FileInfo, error)
	Sync() error
}

// FS is the filesystem seam. OS is the production implementation; an
// Injector wraps any FS with failpoints and crash simulation.
type FS interface {
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chmod(name string, mode os.FileMode) error
	ReadDir(dir string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, making renames and removals of
	// its entries durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
type OS struct{}

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Chmod(name string, mode os.FileMode) error { return os.Chmod(name, mode) }

func (OS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// SyncDir opens the directory and fsyncs it. On platforms where fsync on
// a directory is unsupported the error is swallowed — the rename is then
// as durable as the platform can make it, which is the pre-existing
// contract of os.Rename there.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, errInvalidSync) || os.IsPermission(err)) {
		return nil
	}
	return err
}

// errInvalidSync matches the EINVAL/ENOTSUP class some filesystems
// return for fsync on a directory handle.
var errInvalidSync = fs.ErrInvalid

// ---- injector -------------------------------------------------------------

// TornMode selects how the unsynced suffix of a file is mangled at a
// simulated crash — the three real-world flavors of a torn write.
type TornMode uint8

const (
	// TornTruncate cuts the file at its last-synced length (data simply
	// never reached the disk).
	TornTruncate TornMode = iota
	// TornZero keeps the file length but zeroes the unsynced suffix
	// (blocks allocated, data not written).
	TornZero
	// TornFlip keeps the unsynced bytes but flips one bit in them (a
	// partially written sector / bit rot on the unflushed tail) — the
	// case only a checksum can catch.
	TornFlip
)

// failpoint is one scheduled failure: the nth occurrence of op returns
// err instead of (fully) executing.
type failpoint struct {
	op  Op
	nth int
	err error
}

// renameRec remembers one not-yet-dir-synced rename so a crash can roll
// it back: the old path, the new path, and the new path's previous
// content (nil if it did not exist).
type renameRec struct {
	dir, from, to string
	prev          []byte
	prevExisted   bool
}

// Injector wraps an FS with deterministic failpoints and crash
// simulation. All methods are safe for concurrent use. The zero value is
// not ready; use NewInjector.
type Injector struct {
	under FS

	// Torn selects how unsynced file data is mangled at a crash.
	Torn TornMode
	// DropUnsyncedRenames makes a crash roll back renames performed since
	// the last SyncDir of their directory — the adversarial reading of
	// rename durability. When false, renames survive the crash (the other
	// legal outcome); exercise both.
	DropUnsyncedRenames bool

	mu       sync.Mutex
	counts   [opCount]int
	totalOps int
	fails    []failpoint
	crashAt  int // simulate a crash at the nth overall op; 0 = never
	crashed  bool

	// unsynced tracks, per path, the length up to which the file's data
	// has been fsynced; absent = file not written through this FS.
	synced  map[string]int64
	renames []renameRec
}

// NewInjector returns an Injector over the real filesystem.
func NewInjector() *Injector {
	return &Injector{under: OS{}, synced: make(map[string]int64)}
}

// FailAt schedules the nth occurrence (1-based) of op to fail with err
// (ErrInjected if err is nil). The failed operation is not performed —
// except OpWrite, which performs a short write of half the data first,
// modeling a write cut partway through.
func (in *Injector) FailAt(op Op, nth int, err error) {
	if err == nil {
		err = ErrInjected
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fails = append(in.fails, failpoint{op, nth, err})
}

// CrashAfterOps schedules a simulated power loss at the nth intercepted
// operation (1-based, counted across all kinds): that operation and every
// later one fail with ErrCrashed, and the on-disk state is rewritten to
// the adversarial post-crash image (torn unsynced files; rolled-back
// renames when DropUnsyncedRenames is set).
func (in *Injector) CrashAfterOps(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = n
}

// Crash simulates the power loss immediately.
func (in *Injector) Crash() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashLocked()
}

// Crashed reports whether the simulated crash has happened.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Ops returns the total number of intercepted operations so far — run a
// workload once against a clean Injector to learn its op count, then
// enumerate CrashAfterOps(1..Ops()) for exhaustive crash-point coverage.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.totalOps
}

// Count returns how many operations of one kind have been intercepted.
func (in *Injector) Count(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// step accounts one operation and decides its fate: proceed (nil), fail
// with an injected error, or crash. Caller does not hold the lock.
func (in *Injector) step(op Op) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	in.totalOps++
	in.counts[op]++
	if in.crashAt > 0 && in.totalOps >= in.crashAt {
		in.crashLocked()
		return ErrCrashed
	}
	for i, fp := range in.fails {
		if fp.op == op && fp.nth == in.counts[op] {
			in.fails = append(in.fails[:i], in.fails[i+1:]...)
			return fp.err
		}
	}
	return nil
}

// crashLocked applies the post-crash disk image and freezes the FS.
// Renames are rolled back FIRST (restoring each file to the path its
// unsynced data is tracked under), then unsynced suffixes are torn.
func (in *Injector) crashLocked() {
	if in.crashed {
		return
	}
	in.crashed = true
	if in.DropUnsyncedRenames {
		// Undo in reverse order so chained renames unwind correctly.
		for i := len(in.renames) - 1; i >= 0; i-- {
			r := in.renames[i]
			_ = os.Rename(r.to, r.from)
			if r.prevExisted {
				_ = os.WriteFile(r.to, r.prev, 0o644)
			}
			if s, ok := in.synced[r.to]; ok {
				delete(in.synced, r.to)
				in.synced[r.from] = s
			}
		}
	}
	in.renames = nil
	for path, synced := range in.synced {
		tearFile(path, synced, in.Torn)
	}
	in.synced = make(map[string]int64)
}

// tearFile mangles path's bytes beyond the synced watermark per mode.
func tearFile(path string, synced int64, mode TornMode) {
	st, err := os.Stat(path)
	if err != nil || st.Size() <= synced {
		return // nothing unsynced survives to tear
	}
	switch mode {
	case TornTruncate:
		_ = os.Truncate(path, synced)
	case TornZero:
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return
		}
		zeros := make([]byte, st.Size()-synced)
		_, _ = f.WriteAt(zeros, synced)
		_ = f.Close()
	case TornFlip:
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return
		}
		var b [1]byte
		if _, err := f.ReadAt(b[:], synced); err == nil {
			b[0] ^= 0x40
			_, _ = f.WriteAt(b[:], synced)
		}
		_ = f.Close()
	}
}

// ---- FS implementation ----------------------------------------------------

func (in *Injector) Open(name string) (File, error) {
	if err := in.step(OpOpen); err != nil {
		return nil, err
	}
	f, err := in.under.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.step(OpCreateTemp); err != nil {
		return nil, err
	}
	f, err := in.under.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	in.synced[f.Name()] = 0 // a brand-new file has nothing durable
	in.mu.Unlock()
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.step(OpRename); err != nil {
		return err
	}
	in.mu.Lock()
	rec := renameRec{dir: filepath.Dir(newpath), from: oldpath, to: newpath}
	if prev, err := os.ReadFile(newpath); err == nil {
		rec.prev, rec.prevExisted = prev, true
	}
	in.mu.Unlock()
	if err := in.under.Rename(oldpath, newpath); err != nil {
		return err
	}
	in.mu.Lock()
	in.renames = append(in.renames, rec)
	if s, ok := in.synced[oldpath]; ok {
		delete(in.synced, oldpath)
		in.synced[newpath] = s
	}
	in.mu.Unlock()
	return nil
}

func (in *Injector) Remove(name string) error {
	if err := in.step(OpRemove); err != nil {
		return err
	}
	return in.under.Remove(name)
}

func (in *Injector) Chmod(name string, mode os.FileMode) error {
	if err := in.step(OpChmod); err != nil {
		return err
	}
	return in.under.Chmod(name, mode)
}

func (in *Injector) ReadDir(dir string) ([]fs.DirEntry, error) {
	if err := in.step(OpReadDir); err != nil {
		return nil, err
	}
	return in.under.ReadDir(dir)
}

func (in *Injector) SyncDir(dir string) error {
	if err := in.step(OpSyncDir); err != nil {
		return err
	}
	if err := in.under.SyncDir(dir); err != nil {
		return err
	}
	in.mu.Lock()
	kept := in.renames[:0]
	for _, r := range in.renames {
		if r.dir != dir {
			kept = append(kept, r)
		}
	}
	in.renames = kept
	in.mu.Unlock()
	return nil
}

// injFile wraps a File with the injector's accounting.
type injFile struct {
	in *Injector
	f  File
}

func (w *injFile) Name() string               { return w.f.Name() }
func (w *injFile) Stat() (os.FileInfo, error) { return w.f.Stat() }

func (w *injFile) Read(p []byte) (int, error) {
	if err := w.in.step(OpRead); err != nil {
		return 0, err
	}
	return w.f.Read(p)
}

func (w *injFile) Write(p []byte) (int, error) {
	if err := w.in.step(OpWrite); err != nil {
		// A failing write is cut short, not atomic: half the payload lands
		// in the file before the error surfaces (it is unsynced, so a
		// subsequent crash tears it further).
		n, _ := w.f.Write(p[:len(p)/2])
		return n, err
	}
	return w.f.Write(p)
}

func (w *injFile) Sync() error {
	if err := w.in.step(OpSync); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if st, err := w.f.Stat(); err == nil {
		w.in.mu.Lock()
		w.in.synced[w.f.Name()] = st.Size()
		w.in.mu.Unlock()
	}
	return nil
}

func (w *injFile) Close() error {
	if err := w.in.step(OpClose); err != nil {
		// Power loss at close time still closes the real descriptor —
		// leaking it would fail later test cleanup, not model anything.
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}
