package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// write pushes data through the injected file API the way the persist
// path does: create temp, write, optionally sync, close.
func write(t *testing.T, fs FS, dir string, data []byte, sync bool) string {
	t.Helper()
	f, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return f.Name()
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	name := write(t, fs, dir, []byte("hello"), true)
	if err := fs.Rename(name, filepath.Join(dir, "final")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	f, err := fs.Open(filepath.Join(dir, "final"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	f.Close()
	if string(buf[:n]) != "hello" {
		t.Fatalf("read back %q", buf[:n])
	}
	des, err := fs.ReadDir(dir)
	if err != nil || len(des) != 1 {
		t.Fatalf("ReadDir = %v, %v", des, err)
	}
}

func TestInjectorFailAt(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector()
	boom := errors.New("boom")
	in.FailAt(OpWrite, 2, boom)

	// First write passes untouched.
	f, err := in.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	// Second write fails AND lands half its payload — a genuine short
	// write, not an atomic no-op.
	if _, err := f.Write([]byte("bbbb")); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	f.Close()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "aaaabb" {
		t.Fatalf("file content %q, want aaaabb (short second write)", data)
	}
	if in.Count(OpWrite) != 2 {
		t.Fatalf("write count %d", in.Count(OpWrite))
	}
}

func TestCrashTearsUnsyncedFile(t *testing.T) {
	for _, tc := range []struct {
		mode TornMode
		name string
	}{{TornTruncate, "truncate"}, {TornZero, "zero"}, {TornFlip, "flip"}} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			in := NewInjector()
			in.Torn = tc.mode

			f, err := in.CreateTemp(dir, ".tmp-*")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("durable!")); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("volatile")); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			in.Crash()

			data, err := os.ReadFile(f.Name())
			if err != nil {
				t.Fatal(err)
			}
			switch tc.mode {
			case TornTruncate:
				if string(data) != "durable!" {
					t.Fatalf("post-crash %q, want synced prefix only", data)
				}
			case TornZero:
				if len(data) != 16 || string(data[:8]) != "durable!" || string(data[8:]) == "volatile" {
					t.Fatalf("post-crash %q, want zeroed suffix", data)
				}
			case TornFlip:
				if len(data) != 16 || string(data[:8]) != "durable!" || string(data[8:]) == "volatile" {
					t.Fatalf("post-crash %q, want flipped suffix", data)
				}
			}
			// The dead filesystem refuses everything.
			if _, err := in.Open(f.Name()); !errors.Is(err, ErrCrashed) {
				t.Fatalf("post-crash Open err = %v", err)
			}
			if err := in.Remove(f.Name()); !errors.Is(err, ErrCrashed) {
				t.Fatalf("post-crash Remove err = %v", err)
			}
		})
	}
}

func TestCrashRollsBackUnsyncedRename(t *testing.T) {
	dir := t.TempDir()
	final := filepath.Join(dir, "doc.cqs")
	if err := os.WriteFile(final, []byte("old version"), 0o644); err != nil {
		t.Fatal(err)
	}

	in := NewInjector()
	in.DropUnsyncedRenames = true
	tmp := write(t, in, dir, []byte("new version"), true)
	if err := in.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	// No SyncDir: the rename is not durable. Crash rolls it back.
	in.Crash()

	data, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old version" {
		t.Fatalf("final = %q, want the old version restored", data)
	}
	back, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatalf("temp file should reappear: %v", err)
	}
	if string(back) != "new version" {
		t.Fatalf("tmp = %q, want the synced new bytes", back)
	}
}

func TestSyncDirMakesRenameDurable(t *testing.T) {
	dir := t.TempDir()
	final := filepath.Join(dir, "doc.cqs")
	if err := os.WriteFile(final, []byte("old version"), 0o644); err != nil {
		t.Fatal(err)
	}

	in := NewInjector()
	in.DropUnsyncedRenames = true
	tmp := write(t, in, dir, []byte("new version"), true)
	if err := in.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	if err := in.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	in.Crash()

	data, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "new version" {
		t.Fatalf("final = %q, want the new version (rename was dir-synced)", data)
	}
}

func TestCrashAfterOpsCountsDeterministically(t *testing.T) {
	// Learn the op count of a workload, then crash at the last op and
	// check the count is where the crash fired.
	dir := t.TempDir()
	probe := NewInjector()
	write(t, probe, dir, []byte("x"), true)
	n := probe.Ops()
	if n != 4 { // create, write, sync, close
		t.Fatalf("probe ops = %d, want 4", n)
	}

	in := NewInjector()
	in.CrashAfterOps(n)
	f, err := in.CreateTemp(dir, ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("close err = %v, want crash at op %d", err, n)
	}
	if !in.Crashed() {
		t.Fatal("injector should report crashed")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpOpen: "open", OpRead: "read", OpCreateTemp: "create-temp",
		OpWrite: "write", OpSync: "sync", OpClose: "close", OpChmod: "chmod",
		OpRename: "rename", OpRemove: "remove", OpReadDir: "readdir",
		OpSyncDir: "syncdir",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestOSRemoveChmod(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	path := filepath.Join(dir, "victim")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(path, 0o600); err != nil {
		t.Fatalf("Chmod: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Mode().Perm() != 0o600 {
		t.Fatalf("mode = %v, %v", st.Mode(), err)
	}
	if err := fs.Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file survived Remove: %v", err)
	}
}

// TestInjectorPassthrough drives every FS method through a healthy
// injector: with no failpoints armed the wrapped calls must behave exactly
// like the OS ones, and reads/stats must flow through the wrapper file.
func TestInjectorPassthrough(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector()
	path := filepath.Join(dir, "doc")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != path {
		t.Errorf("Name = %q", f.Name())
	}
	st, err := f.Stat()
	if err != nil || st.Size() != int64(len("payload")) {
		t.Fatalf("Stat = %v, %v", st, err)
	}
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	f.Close()
	if string(buf[:n]) != "payload" {
		t.Fatalf("Read = %q", buf[:n])
	}

	if err := in.Chmod(path, 0o600); err != nil {
		t.Fatalf("Chmod: %v", err)
	}
	des, err := in.ReadDir(dir)
	if err != nil || len(des) != 1 {
		t.Fatalf("ReadDir = %v, %v", des, err)
	}
	if err := in.Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if in.Count(OpRead) != 1 || in.Count(OpChmod) != 1 || in.Count(OpReadDir) != 1 || in.Count(OpRemove) != 1 {
		t.Fatalf("op counts: read=%d chmod=%d readdir=%d remove=%d",
			in.Count(OpRead), in.Count(OpChmod), in.Count(OpReadDir), in.Count(OpRemove))
	}
}

// TestInjectorFailpoints arms one failpoint per metadata op and checks the
// injected error surfaces without touching the real filesystem state.
func TestInjectorFailpoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")

	in := NewInjector()
	in.FailAt(OpOpen, 1, boom)
	if _, err := in.Open(path); !errors.Is(err, boom) {
		t.Errorf("Open err = %v", err)
	}
	if _, err := in.Open(filepath.Join(dir, "absent")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Open absent err = %v", err)
	}

	in = NewInjector()
	in.FailAt(OpRead, 1, boom)
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(make([]byte, 4)); !errors.Is(err, boom) {
		t.Errorf("Read err = %v", err)
	}
	f.Close()

	in = NewInjector()
	in.FailAt(OpChmod, 1, boom)
	if err := in.Chmod(path, 0o600); !errors.Is(err, boom) {
		t.Errorf("Chmod err = %v", err)
	}
	in = NewInjector()
	in.FailAt(OpReadDir, 1, boom)
	if _, err := in.ReadDir(dir); !errors.Is(err, boom) {
		t.Errorf("ReadDir err = %v", err)
	}
	in = NewInjector()
	in.FailAt(OpRemove, 1, boom)
	if err := in.Remove(path); !errors.Is(err, boom) {
		t.Errorf("Remove err = %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("failed Remove must not delete: %v", err)
	}
}
