// Package serve is the hardened HTTP serving layer of the corpus engine:
// the handlers behind cmd/cqserve, wrapped in the robustness machinery a
// production deployment needs to survive overload.
//
// The paper's tractability results bound the cost of one evaluation; this
// package bounds what the server as a whole accepts, so one hostile batch
// (a million-answer enumeration, an oversized document, a panic-inducing
// edge case) cannot take the engine down for everyone else:
//
//   - Admission control (Gate): at most MaxInFlight concurrent /eval
//     calls, a bounded FIFO wait queue with per-request deadline
//     propagation, 429 + Retry-After when the queue is full or the wait
//     deadline expires, 503 + Retry-After while shutting down.
//   - Graceful degradation: per-request answer-count caps downgrade huge
//     tuples results to a truncated prefix with "truncated": true instead
//     of buffering without bound; Accept: application/x-ndjson streams
//     results line-by-line so memory stays flat however large the answer
//     relation; http.MaxBytesReader bounds every request body (413).
//   - Lifecycle robustness: panic-recovery middleware converts evaluator
//     panics into per-request 500s, and BeginShutdown flips the gate so
//     http.Server.Shutdown can drain in-flight evaluations while new work
//     is turned away with 503.
//
// All state is in memory (optionally snapshot-backed via Config.DataDir);
// handlers are safe for concurrent use.
package serve

import (
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	cqtrees "repro"
	"repro/internal/cache"
)

// Config configures New. Zero values are permissive: no corpus budget, a
// 16 MiB body limit, no eval timeout, unlimited in-flight evaluations, no
// wait queue, no answer cap, memory-only corpus.
type Config struct {
	// MaxCorpusBytes is the corpus byte budget; beyond it documents are
	// LRU-evicted (or dehydrated, when DataDir backs them). <= 0 disables.
	MaxCorpusBytes int64
	// MaxBody bounds every request body; oversized bodies are 413.
	// <= 0 defaults to 16 MiB.
	MaxBody int64
	// EvalTimeout is the hard cap on one /eval batch; zero means no cap.
	// A request's timeout_ms may tighten the bound but never extend it.
	EvalTimeout time.Duration
	// DataDir, when non-empty, is the snapshot directory: PUTs persist,
	// DELETEs unpersist, and startup recovers the corpus from it without
	// re-parsing any XML (documents hydrate lazily from their snapshots).
	DataDir string
	// NoFsync disables the fsync calls in the persist path. Writes stay
	// atomic for concurrent readers but lose crash durability — after a
	// power loss a freshly persisted snapshot may be torn or missing. For
	// benchmarks and bulk imports only; production keeps syncs on.
	NoFsync bool

	// MaxInFlight bounds concurrent /eval evaluations; <= 0 is unlimited.
	MaxInFlight int
	// MaxQueue bounds how many /eval requests may wait for a slot once
	// MaxInFlight is saturated; <= 0 rejects immediately at saturation.
	MaxQueue int
	// QueueWait caps how long one request may wait queued, on top of its
	// own deadline; <= 0 means the request's deadline alone bounds it.
	QueueWait time.Duration
	// MaxAnswers caps per-document tuples results: enumeration stops at
	// the cap and the row is marked "truncated": true. A request's
	// max_answers may tighten the cap, never extend it. <= 0 is unlimited.
	MaxAnswers int

	// CacheBytes is the result cache's total byte budget: materialized
	// /eval results are cached per (query, document, document version)
	// and served without re-evaluating — or re-entering admission — until
	// the document changes. <= 0 disables the cache.
	CacheBytes int64
	// CacheMaxEntry caps one cached result's size; results over it are
	// never cached (a million-answer relation should stream, not evict
	// the whole working set). <= 0 defaults to CacheBytes per shard.
	CacheMaxEntry int64
}

// Server is the HTTP face of the corpus engine: a Corpus of named indexed
// documents plus a registry of named prepared queries, exposed as a small
// JSON API (net/http only), behind the admission gate.
type Server struct {
	corpus *cqtrees.Corpus

	mu      sync.Mutex
	queries map[string]*storedQuery

	maxBody     int64
	evalTimeout time.Duration
	dataDir     string
	maxAnswers  int
	gate        *Gate
	cache       *cache.Cache // nil when disabled: always-miss, no-op puts
	metrics     *serveMetrics
	loadReport  cqtrees.CorpusLoadReport // startup LoadDir accounting

	// hook, when non-nil, runs at the start of every admitted /eval
	// evaluation — a test seam for saturating the gate deterministically
	// and for injecting evaluator panics.
	hook func(*http.Request)
}

// storedQuery is a registered prepared query plus its source text.
type storedQuery struct {
	src string
	pq  *cqtrees.PreparedQuery
}

// New builds a Server from cfg, recovering the corpus from cfg.DataDir
// when set.
func New(cfg Config) (*Server, error) {
	var opts []cqtrees.CorpusOption
	if cfg.MaxCorpusBytes > 0 {
		opts = append(opts, cqtrees.WithMaxBytes(cfg.MaxCorpusBytes))
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 16 << 20
	}
	if cfg.NoFsync {
		opts = append(opts, cqtrees.WithNoFsync())
	}
	// The cache exists before the corpus so the corpus's invalidation
	// hook can close over it: every Swap, Remove, eviction, and
	// dehydration drops that document's cached results eagerly (the
	// version in the key already makes them unservable; the hook just
	// reclaims the bytes).
	resultCache := cache.New(cfg.CacheBytes, cfg.CacheMaxEntry)
	if resultCache != nil {
		opts = append(opts, cqtrees.WithInvalidationHook(func(name string) {
			resultCache.InvalidateDoc(name)
		}))
	}
	s := &Server{
		corpus:      cqtrees.NewCorpus(opts...),
		queries:     make(map[string]*storedQuery),
		maxBody:     cfg.MaxBody,
		evalTimeout: cfg.EvalTimeout,
		dataDir:     cfg.DataDir,
		maxAnswers:  cfg.MaxAnswers,
		gate:        NewGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		cache:       resultCache,
	}
	s.metrics = newServeMetrics(s)
	if s.dataDir != "" {
		if err := os.MkdirAll(s.dataDir, 0o755); err != nil {
			return nil, err
		}
		// Restart recovery: every snapshot in the directory registers as a
		// dehydrated entry (header read only) and hydrates on first use —
		// no XML parse, no index build, cold start at read speed.
		//
		// Per-file faults do not abort startup: corrupt files were already
		// quarantined (renamed aside, counted — visible on /healthz and
		// /metrics) and transiently unreadable ones stay for the next pass,
		// while every healthy snapshot serves. Only a scan that produced
		// nothing at all — the directory itself unreadable — is fatal.
		rep, err := s.corpus.LoadDirReport(s.dataDir)
		s.loadReport = rep
		if err != nil && rep == (cqtrees.CorpusLoadReport{}) {
			return nil, fmt.Errorf("load %s: %w", s.dataDir, err)
		}
	}
	return s, nil
}

// Handler builds the route table wrapped in the middleware stack: panic
// recovery outermost (a panic anywhere below becomes one request's 500),
// then the body limit (every handler sees a bounded body).
// Method+path patterns need Go 1.22+.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.metrics.registry)
	mux.HandleFunc("GET /docs", s.handleListDocs)
	mux.HandleFunc("GET /docs/{name}", s.handleGetDoc)
	mux.HandleFunc("PUT /docs/{name}", s.handlePutDoc)
	mux.HandleFunc("DELETE /docs/{name}", s.handleDeleteDoc)
	mux.HandleFunc("GET /queries", s.handleListQueries)
	mux.HandleFunc("GET /queries/{name}", s.handleGetQuery)
	mux.HandleFunc("PUT /queries/{name}", s.handlePutQuery)
	mux.HandleFunc("DELETE /queries/{name}", s.handleDeleteQuery)
	mux.HandleFunc("POST /eval", s.handleEval)
	return s.metrics.withMetrics(withRecover(withBodyLimit(s.maxBody, mux)))
}

// BeginShutdown flips the server into draining mode: queued /eval
// requests and all future ones are answered 503 + Retry-After, while
// evaluations already holding a slot run to completion. Call it before
// http.Server.Shutdown so the listener drain only has to wait for work
// that was already admitted. Idempotent.
func (s *Server) BeginShutdown() { s.gate.Shutdown() }

// Draining reports whether BeginShutdown has been called.
func (s *Server) Draining() bool { return s.gate.Closed() }

// InFlight returns the number of /eval evaluations currently holding an
// admission slot.
func (s *Server) InFlight() int { return s.gate.InFlight() }

// Queued returns the number of /eval requests waiting for a slot.
func (s *Server) Queued() int { return s.gate.Queued() }

// Corpus exposes the underlying corpus — for harnesses (cmd/cqload) and
// tests that need direct inspection; HTTP clients use the API.
func (s *Server) Corpus() *cqtrees.Corpus { return s.corpus }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	nq := len(s.queries)
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if s.gate.Closed() {
		// Draining replicas fail readiness so load balancers stop routing
		// new traffic while in-flight work completes.
		status, code = "draining", http.StatusServiceUnavailable
	}
	cs := s.cache.Stats() // all-zero for the disabled (nil) cache
	ps := s.corpus.Persistence()
	writeJSON(w, code, map[string]any{
		"status":    status,
		"docs":      s.corpus.Len(),
		"queries":   nq,
		"bytes":     s.corpus.Bytes(),
		"in_flight": s.gate.InFlight(),
		"queued":    s.gate.Queued(),
		"cache": map[string]any{
			"enabled": s.cache != nil,
			"hits":    cs.Hits,
			"misses":  cs.Misses,
			"entries": cs.Entries,
			"bytes":   cs.Bytes,
		},
		// The persistence block is the health view of the fault-tolerant
		// snapshot layer: stubs awaiting hydration, entries in retry
		// backoff, quarantined documents, and the lifetime fault counters.
		// load_quarantined / swept_tmp are the startup scan's accounting.
		"persistence": map[string]any{
			"stubs":            ps.Stubs,
			"failed":           ps.Failed,
			"quarantined":      ps.Quarantined,
			"hydration_errors": ps.HydrationErrors,
			"quarantines":      ps.Quarantines,
			"persist_errors":   ps.PersistErrors,
			"load_quarantined": s.loadReport.Quarantined,
			"swept_tmp":        s.loadReport.SweptTmp,
		},
	})
}
