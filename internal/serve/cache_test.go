package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrapeMetric GETs /metrics and sums the named family's series values
// (all label combinations). Histograms: pass the _count or _sum series
// name explicitly.
func scrapeMetric(t *testing.T, h http.Handler, name string) float64 {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rr.Code)
	}
	sum := 0.0
	found := false
	for _, line := range strings.Split(rr.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		base, _, _ := strings.Cut(series, "{")
		if base != name {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		sum += f
		found = true
	}
	if !found {
		t.Fatalf("metric %s absent from scrape", name)
	}
	return sum
}

// cachedServer builds a server with the result cache on and seeds it with
// one document and one registered query.
func cachedServer(t *testing.T, cfg Config) (*Server, http.Handler) {
	t.Helper()
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 1 << 20
	}
	s := mustServer(t, cfg)
	h := s.Handler()
	wantStatus(t, do(t, h, "PUT", "/docs/a", `{"term": "A(B,C(B),B)"}`, nil), http.StatusCreated)
	wantStatus(t, do(t, h, "PUT", "/queries/q", `{"query": "Q(x) <- B(x)"}`, nil), http.StatusCreated)
	return s, h
}

// TestEvalCacheWarmHit: a repeated (query, doc, mode) evaluation is
// served from the cache — the engine evaluation counter must not move,
// the hit counter must — and the response is byte-identical.
func TestEvalCacheWarmHit(t *testing.T) {
	_, h := cachedServer(t, Config{})

	body := `{"query": "q", "mode": "nodes", "docs": ["a"]}`
	first := do(t, h, "POST", "/eval", body, nil)
	wantStatus(t, first, http.StatusOK)
	evals := scrapeMetric(t, h, "cqtrees_evals_total")
	if evals == 0 {
		t.Fatal("cold eval did not count an engine evaluation")
	}

	second := do(t, h, "POST", "/eval", body, nil)
	wantStatus(t, second, http.StatusOK)
	if first.Body.String() != second.Body.String() {
		t.Fatalf("warm response diverged:\ncold: %s\nwarm: %s", first.Body.String(), second.Body.String())
	}
	if after := scrapeMetric(t, h, "cqtrees_evals_total"); after != evals {
		t.Fatalf("warm eval ran the engine: evals_total %v -> %v", evals, after)
	}
	if hits := scrapeMetric(t, h, "cqtrees_cache_hits_total"); hits == 0 {
		t.Fatal("warm eval did not count a cache hit")
	}

	// All three modes cache independently.
	for _, mode := range []string{"bool", "tuples"} {
		b := fmt.Sprintf(`{"query": "q", "mode": %q, "docs": ["a"]}`, mode)
		wantStatus(t, do(t, h, "POST", "/eval", b, nil), http.StatusOK)
		evals := scrapeMetric(t, h, "cqtrees_evals_total")
		wantStatus(t, do(t, h, "POST", "/eval", b, nil), http.StatusOK)
		if after := scrapeMetric(t, h, "cqtrees_evals_total"); after != evals {
			t.Fatalf("mode %s: warm eval ran the engine", mode)
		}
	}

	// The health endpoint mirrors the cache counters.
	var health struct {
		Cache struct {
			Enabled bool  `json:"enabled"`
			Hits    int64 `json:"hits"`
			Entries int64 `json:"entries"`
		} `json:"cache"`
	}
	wantStatus(t, do(t, h, "GET", "/healthz", "", &health), http.StatusOK)
	if !health.Cache.Enabled || health.Cache.Hits == 0 || health.Cache.Entries == 0 {
		t.Fatalf("healthz cache block: %+v", health.Cache)
	}
}

// TestEvalCacheSkipsAdmission: a fully warm request is answered while the
// admission gate is saturated — cache hits never compete for evaluation
// slots.
func TestEvalCacheSkipsAdmission(t *testing.T) {
	s, h := cachedServer(t, Config{MaxInFlight: 1, MaxQueue: 0})

	warm := `{"query": "q", "mode": "nodes", "docs": ["a"]}`
	wantStatus(t, do(t, h, "POST", "/eval", warm, nil), http.StatusOK)

	// Saturate the single slot with a cold evaluation parked in the hook.
	block := make(chan struct{})
	entered := make(chan struct{})
	s.hook = func(*http.Request) {
		close(entered)
		<-block
	}
	coldDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		coldDone <- do(t, h, "POST", "/eval",
			`{"source": "Q(x) <- A(x)", "mode": "nodes", "docs": ["a"]}`, nil)
	}()
	<-entered
	defer func() {
		close(block)
		wantStatus(t, <-coldDone, http.StatusOK)
	}()

	// Gate is full and the queue rejects; the warm request still serves.
	wantStatus(t, do(t, h, "POST", "/eval", warm, nil), http.StatusOK)

	// Sanity: a cold request at the same instant is shed with 429.
	cold := do(t, h, "POST", "/eval",
		`{"source": "Q(x) <- C(x)", "mode": "nodes", "docs": ["a"]}`, nil)
	wantStatus(t, cold, http.StatusTooManyRequests)
	if shed := scrapeMetric(t, h, "cqtrees_admission_rejected_total"); shed == 0 {
		t.Fatal("rejection not counted")
	}
}

// TestEvalCacheSwapParity: after a document is swapped (and removed and
// re-added), a cached server returns exactly what an uncached server
// returns — stale entries are both unservable (version key) and dropped
// (invalidation hook).
func TestEvalCacheSwapParity(t *testing.T) {
	cached := mustServer(t, Config{CacheBytes: 1 << 20}).Handler()
	plain := mustServer(t, Config{}).Handler()

	step := func(method, path, body string) {
		t.Helper()
		a := do(t, cached, method, path, body, nil)
		b := do(t, plain, method, path, body, nil)
		if a.Code != b.Code {
			t.Fatalf("%s %s: cached %d vs plain %d", method, path, a.Code, b.Code)
		}
	}
	eval := func(body string) {
		t.Helper()
		a := do(t, cached, "POST", "/eval", body, nil)
		b := do(t, plain, "POST", "/eval", body, nil)
		if a.Code != b.Code || a.Body.String() != b.Body.String() {
			t.Fatalf("eval %s diverged:\ncached: %d %s\nplain:  %d %s",
				body, a.Code, a.Body.String(), b.Code, b.Body.String())
		}
	}

	step("PUT", "/docs/a", `{"term": "A(B,C(B))"}`)
	step("PUT", "/docs/b", `{"term": "A(C)"}`)
	step("PUT", "/queries/q", `{"query": "Q(x) <- B(x)"}`)
	for _, mode := range []string{"bool", "nodes", "tuples"} {
		body := fmt.Sprintf(`{"query": "q", "mode": %q}`, mode)
		eval(body)
		eval(body) // warm pass on the cached server
	}

	// Swap a: the old results (B at two nodes) must vanish everywhere.
	step("PUT", "/docs/a", `{"term": "A(C,C)"}`)
	for _, mode := range []string{"bool", "nodes", "tuples"} {
		eval(fmt.Sprintf(`{"query": "q", "mode": %q}`, mode))
	}

	// Swap b only: a's (re-cached) entries survive, b's don't.
	step("PUT", "/docs/b", `{"term": "A(B,B)"}`)
	eval(`{"query": "q", "mode": "tuples"}`)

	// Remove + re-add under the same name.
	step("DELETE", "/docs/a", "")
	eval(`{"query": "q", "mode": "tuples"}`)
	step("PUT", "/docs/a", `{"term": "A(B)"}`)
	eval(`{"query": "q", "mode": "tuples"}`)
	eval(`{"query": "q", "mode": "nodes"}`)
}

// TestEvalCacheTruncatedNeverCached: a tuples result cut at the answer
// cap is served truncated but never stored — a capped prefix would poison
// future requests with larger caps.
func TestEvalCacheTruncatedNeverCached(t *testing.T) {
	// Per-entry cap so small any multi-tuple relation overflows it.
	s, h := cachedServer(t, Config{CacheBytes: 1 << 20, CacheMaxEntry: 80})

	var resp struct {
		Results []struct {
			Tuples    [][]int64 `json:"tuples"`
			Truncated bool      `json:"truncated"`
		} `json:"results"`
	}
	body := `{"query": "q", "mode": "tuples", "docs": ["a"], "max_answers": 1}`
	rr := do(t, h, "POST", "/eval", body, &resp)
	wantStatus(t, rr, http.StatusOK)
	if len(resp.Results) != 1 || !resp.Results[0].Truncated || len(resp.Results[0].Tuples) != 1 {
		t.Fatalf("capped row: %+v", resp.Results)
	}
	if st := s.cache.Stats(); st.Entries != 0 || st.TooLarge == 0 {
		t.Fatalf("truncated result cached: %+v", st)
	}

	// The uncapped relation also exceeds the per-entry cap: complete,
	// untruncated, still never cached.
	evals := scrapeMetric(t, h, "cqtrees_evals_total")
	full := `{"query": "q", "mode": "tuples", "docs": ["a"]}`
	wantStatus(t, do(t, h, "POST", "/eval", full, nil), http.StatusOK)
	wantStatus(t, do(t, h, "POST", "/eval", full, nil), http.StatusOK)
	if after := scrapeMetric(t, h, "cqtrees_evals_total"); after != evals+2 {
		t.Fatalf("oversized result served from cache: evals_total %v -> %v", evals, after)
	}
	if st := s.cache.Stats(); st.Entries != 0 {
		t.Fatalf("oversized result resident: %+v", st)
	}
}

// TestEvalCachedCapRender: one cached complete relation serves every
// answer cap — larger, smaller, and none — with correct truncation
// marks.
func TestEvalCachedCapRender(t *testing.T) {
	_, h := cachedServer(t, Config{})

	type row struct {
		Tuples    [][]int64 `json:"tuples"`
		Truncated bool      `json:"truncated"`
	}
	var resp struct {
		Results []row `json:"results"`
	}
	evalCap := func(capN int) row {
		t.Helper()
		body := `{"query": "q", "mode": "tuples", "docs": ["a"]}`
		if capN > 0 {
			body = fmt.Sprintf(`{"query": "q", "mode": "tuples", "docs": ["a"], "max_answers": %d}`, capN)
		}
		resp.Results = nil
		wantStatus(t, do(t, h, "POST", "/eval", body, &resp), http.StatusOK)
		if len(resp.Results) != 1 {
			t.Fatalf("rows: %+v", resp.Results)
		}
		return resp.Results[0]
	}

	// Warm with the uncapped request (doc "a" has three B nodes).
	fullRow := evalCap(0)
	if fullRow.Truncated || len(fullRow.Tuples) != 3 {
		t.Fatalf("full row: %+v", fullRow)
	}
	evals := scrapeMetric(t, h, "cqtrees_evals_total")

	capped := evalCap(1)
	if !capped.Truncated || len(capped.Tuples) != 1 {
		t.Fatalf("cap 1 from cache: %+v", capped)
	}
	exact := evalCap(3)
	if exact.Truncated || len(exact.Tuples) != 3 {
		t.Fatalf("cap 3 (exact) from cache: %+v", exact)
	}
	loose := evalCap(10)
	if loose.Truncated || len(loose.Tuples) != 3 {
		t.Fatalf("cap 10 from cache: %+v", loose)
	}
	if after := scrapeMetric(t, h, "cqtrees_evals_total"); after != evals {
		t.Fatalf("re-capped requests ran the engine: %v -> %v", evals, after)
	}
}

// TestMetricsExposition: the endpoint speaks the Prometheus text format
// and carries the core families.
func TestMetricsExposition(t *testing.T) {
	_, h := cachedServer(t, Config{})
	wantStatus(t, do(t, h, "POST", "/eval", `{"query": "q", "mode": "bool"}`, nil), http.StatusOK)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"cqtrees_build_info{go_version=",
		"cqtrees_eval_seconds_bucket{",
		"cqtrees_eval_seconds_count{",
		"cqtrees_evals_total{strategy=",
		"cqtrees_admission_in_flight 0",
		"cqtrees_admission_queue_depth 0",
		"cqtrees_cache_hits_total",
		"cqtrees_cache_bytes",
		"cqtrees_corpus_docs 1",
		"cqtrees_corpus_hydrations_total 0",
		`cqtrees_http_requests_total{route="/eval",method="POST",code="200"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", body)
	}
	if c := scrapeMetric(t, h, "cqtrees_eval_seconds_count"); c == 0 {
		t.Fatal("eval latency histogram empty after an eval")
	}
}

// TestEvalCacheConcurrentSingleflight: concurrent identical cold requests
// collapse onto few engine evaluations and all answer identically.
func TestEvalCacheConcurrentSingleflight(t *testing.T) {
	s, h := cachedServer(t, Config{})

	const n = 8
	body := `{"query": "q", "mode": "tuples", "docs": ["a"]}`
	results := make(chan *httptest.ResponseRecorder, n)
	for i := 0; i < n; i++ {
		go func() { results <- do(t, h, "POST", "/eval", body, nil) }()
	}
	var want string
	for i := 0; i < n; i++ {
		rr := <-results
		wantStatus(t, rr, http.StatusOK)
		if want == "" {
			want = rr.Body.String()
		} else if rr.Body.String() != want {
			t.Fatalf("concurrent responses diverged")
		}
	}
	// Everyone after the leader hit the cache or joined its flight: the
	// relation was computed at most n-1 times fewer than requested (and
	// typically exactly once; the bound tolerates scheduling).
	st := s.cache.Stats()
	if st.Hits+st.Collapsed == 0 {
		t.Fatalf("no sharing among %d identical requests: %+v", n, st)
	}

	// Deterministic epilogue: one more request is a pure hit.
	evals := scrapeMetric(t, h, "cqtrees_evals_total")
	wantStatus(t, do(t, h, "POST", "/eval", body, nil), http.StatusOK)
	if after := scrapeMetric(t, h, "cqtrees_evals_total"); after != evals {
		t.Fatal("post-storm request ran the engine")
	}
}

// TestEvalCacheTimeout: the cached path preserves the 504 contract for
// deadline-cut batches.
func TestEvalCacheTimeout(t *testing.T) {
	s, h := cachedServer(t, Config{})
	s.hook = func(*http.Request) { time.Sleep(30 * time.Millisecond) }
	rr := do(t, h, "POST", "/eval", `{"query": "q", "mode": "tuples", "timeout_ms": 5}`, nil)
	wantStatus(t, rr, http.StatusGatewayTimeout)
	if !strings.Contains(rr.Body.String(), `"timed_out":true`) {
		t.Fatalf("504 body: %s", rr.Body.String())
	}
}
