package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// chainTerm builds the nested term A(B(B(...))) with depth B nodes — the
// same shape cqload seeds, giving ~depth²/2 answers for the chain query.
func chainTerm(depth int) string {
	var b strings.Builder
	b.WriteString("A(")
	for i := 0; i < depth; i++ {
		b.WriteString("B")
		if i < depth-1 {
			b.WriteString("(")
		}
	}
	b.WriteString(strings.Repeat(")", depth))
	return b.String()
}

const chainQuery = "Q(x, y) <- B(x), Child+(x, y), B(y)"

// pageReq is the paginated /eval request shape.
func pageReq(doc string, limit int, cursor string) string {
	req := fmt.Sprintf(`{"source": %q, "mode": "tuples", "docs": [%q], "order": ["asc", "asc"], "limit": %d`, chainQuery, doc, limit)
	if cursor != "" {
		req += fmt.Sprintf(`, "cursor": %q`, cursor)
	}
	return req + "}"
}

// TestEvalPaginated: a cursor walk over /eval reassembles exactly the
// one-shot ordered result, each page full except possibly the last, and
// the final page carries no next_cursor.
func TestEvalPaginated(t *testing.T) {
	h := testServer(t)
	wantStatus(t, do(t, h, "PUT", "/docs/chain", fmt.Sprintf(`{"term": %q}`, chainTerm(30)), nil), http.StatusCreated)

	var oneShot evalResponse
	rr := do(t, h, "POST", "/eval", pageReq("chain", 1<<20, ""), &oneShot)
	wantStatus(t, rr, http.StatusOK)
	if oneShot.NextCursor != "" {
		t.Fatalf("jumbo page still truncated (total %d)", len(oneShot.Results[0].Tuples))
	}
	want := oneShot.Results[0].Tuples
	if len(want) != 30*29/2 {
		t.Fatalf("chain(30) answer count = %d, want %d", len(want), 30*29/2)
	}

	var got [][]int32
	cursor := ""
	pages := 0
	for {
		var resp evalResponse
		rr := do(t, h, "POST", "/eval", pageReq("chain", 100, cursor), &resp)
		wantStatus(t, rr, http.StatusOK)
		if len(resp.Results) != 1 || resp.Results[0].Error != "" {
			t.Fatalf("page %d: bad results %+v", pages, resp.Results)
		}
		for _, tup := range resp.Results[0].Tuples {
			got = append(got, []int32{int32(tup[0]), int32(tup[1])})
		}
		pages++
		if resp.NextCursor == "" {
			if resp.Results[0].Truncated || resp.Truncated != 0 {
				t.Fatalf("final page marked truncated")
			}
			break
		}
		if len(resp.Results[0].Tuples) != 100 || !resp.Results[0].Truncated {
			t.Fatalf("page %d: %d tuples, truncated=%v", pages, len(resp.Results[0].Tuples), resp.Results[0].Truncated)
		}
		cursor = resp.NextCursor
	}
	if wantPages := (len(want) + 99) / 100; pages != wantPages {
		t.Fatalf("walked %d pages, want %d", pages, wantPages)
	}
	flat := make([][]int32, len(want))
	for i, tup := range want {
		flat[i] = []int32{int32(tup[0]), int32(tup[1])}
	}
	if !reflect.DeepEqual(got, flat) {
		t.Fatalf("paged union != one-shot (%d vs %d tuples)", len(got), len(flat))
	}
}

// TestEvalPaginatedValidation: the 400 tier — wrong mode, wrong doc
// count, NDJSON, bad direction, malformed cursor — plus 409 for foreign
// cursors and 410 for stale ones.
func TestEvalPaginatedValidation(t *testing.T) {
	h := testServer(t)
	wantStatus(t, do(t, h, "PUT", "/docs/chain", fmt.Sprintf(`{"term": %q}`, chainTerm(20)), nil), http.StatusCreated)
	wantStatus(t, do(t, h, "PUT", "/docs/other", `{"term": "A(B(B))"}`, nil), http.StatusCreated)

	body := func(extra string) string {
		return fmt.Sprintf(`{"source": %q, "docs": ["chain"], %s}`, chainQuery, extra)
	}
	// Wrong mode.
	wantStatus(t, do(t, h, "POST", "/eval",
		body(`"mode": "bool", "limit": 5`), nil), http.StatusBadRequest)
	// Zero or many docs.
	wantStatus(t, do(t, h, "POST", "/eval",
		fmt.Sprintf(`{"source": %q, "mode": "tuples", "limit": 5}`, chainQuery), nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/eval",
		fmt.Sprintf(`{"source": %q, "mode": "tuples", "docs": ["chain", "other"], "limit": 5}`, chainQuery), nil), http.StatusBadRequest)
	// NDJSON + pagination.
	req := httptest.NewRequest("POST", "/eval", strings.NewReader(body(`"mode": "tuples", "limit": 5`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	wantStatus(t, rr, http.StatusBadRequest)
	// Unknown direction.
	wantStatus(t, do(t, h, "POST", "/eval",
		body(`"mode": "tuples", "order": ["upward"]`), nil), http.StatusBadRequest)
	// Order longer than the query's arity.
	wantStatus(t, do(t, h, "POST", "/eval",
		body(`"mode": "tuples", "order": ["asc", "asc", "asc"]`), nil), http.StatusBadRequest)
	// Malformed cursor.
	wantStatus(t, do(t, h, "POST", "/eval",
		body(`"mode": "tuples", "cursor": "!!!not-a-cursor"`), nil), http.StatusBadRequest)

	// Mint a real cursor for the mismatch/stale tiers.
	var first evalResponse
	wantStatus(t, do(t, h, "POST", "/eval", pageReq("chain", 3, ""), &first), http.StatusOK)
	if first.NextCursor == "" {
		t.Fatal("first page not truncated")
	}
	// 409: same cursor, different query.
	wantStatus(t, do(t, h, "POST", "/eval",
		fmt.Sprintf(`{"source": "Q(x, y) <- A(x), Child+(x, y), B(y)", "mode": "tuples", "docs": ["chain"], "cursor": %q}`, first.NextCursor),
		nil), http.StatusConflict)
	// 409: same cursor, different order.
	wantStatus(t, do(t, h, "POST", "/eval",
		fmt.Sprintf(`{"source": %q, "mode": "tuples", "docs": ["chain"], "order": ["desc", "asc"], "cursor": %q}`, chainQuery, first.NextCursor),
		nil), http.StatusConflict)
	// 410: document replaced under the cursor.
	wantStatus(t, do(t, h, "PUT", "/docs/chain", fmt.Sprintf(`{"term": %q}`, chainTerm(21)), nil), http.StatusOK)
	wantStatus(t, do(t, h, "POST", "/eval", pageReq("chain", 3, first.NextCursor), nil), http.StatusGone)
	// Unknown doc: an error row, not a cursor-tier failure.
	var resp evalResponse
	rr = do(t, h, "POST", "/eval",
		fmt.Sprintf(`{"source": %q, "mode": "tuples", "docs": ["ghost"], "limit": 5}`, chainQuery), &resp)
	wantStatus(t, rr, http.StatusOK)
	if resp.Errors != 1 || len(resp.Results) != 1 || resp.Results[0].Error == "" {
		t.Fatalf("unknown doc: %+v", resp)
	}
}

// TestEvalPaginatedServerCap: the server's -max-answers caps the page
// size — a client asking for more gets the capped page with a cursor.
func TestEvalPaginatedServerCap(t *testing.T) {
	h := mustServer(t, Config{MaxAnswers: 7}).Handler()
	wantStatus(t, do(t, h, "PUT", "/docs/chain", fmt.Sprintf(`{"term": %q}`, chainTerm(20)), nil), http.StatusCreated)
	var resp evalResponse
	wantStatus(t, do(t, h, "POST", "/eval", pageReq("chain", 1000, ""), &resp), http.StatusOK)
	if len(resp.Results[0].Tuples) != 7 || resp.NextCursor == "" {
		t.Fatalf("cap: %d tuples, next %q", len(resp.Results[0].Tuples), resp.NextCursor)
	}
	// And the cursor resumes exactly after the capped page.
	var next evalResponse
	wantStatus(t, do(t, h, "POST", "/eval", pageReq("chain", 1000, resp.NextCursor), &next), http.StatusOK)
	if len(next.Results[0].Tuples) != 7 {
		t.Fatalf("resumed page: %d tuples, want 7", len(next.Results[0].Tuples))
	}
	if reflect.DeepEqual(next.Results[0].Tuples[0], resp.Results[0].Tuples[6]) {
		t.Fatal("resumed page repeats the boundary tuple")
	}
}
