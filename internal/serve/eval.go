package serve

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"strings"
	"time"

	cqtrees "repro"
)

// ---- batch evaluation -----------------------------------------------------

// evalRequest runs one prepared query — a registered one by name (query)
// or an ad-hoc source (source) — across the corpus (docs restricts the
// fleet; empty means every document), in one of three modes:
//
//	"bool"   per-document Boolean satisfaction
//	"nodes"  per-document sorted answer node set (monadic queries only)
//	"tuples" per-document sorted distinct answer relation
//
// workers bounds the fan-out pool (0 = GOMAXPROCS); timeout_ms caps the
// whole batch, admission wait included; max_answers caps each document's
// tuples result (tightening the server's -max-answers, never extending
// it) — a capped row carries "truncated": true.
type evalRequest struct {
	Query      string   `json:"query,omitempty"`
	Source     string   `json:"source,omitempty"`
	Docs       []string `json:"docs,omitempty"`
	Mode       string   `json:"mode"`
	Workers    int      `json:"workers,omitempty"`
	TimeoutMS  int      `json:"timeout_ms,omitempty"`
	MaxAnswers int      `json:"max_answers,omitempty"`
	// Pagination (any of these present selects the paginated path, which
	// requires mode "tuples", exactly one named doc, and a JSON — not
	// NDJSON — response): order is the per-head-position direction list
	// ("asc"/"desc", shorter lists pad ascending), limit the page size
	// (capped by the server's -max-answers), cursor an opaque resume token
	// from a previous response's next_cursor. See docs/pagination.md.
	Order  []string `json:"order,omitempty"`
	Limit  int      `json:"limit,omitempty"`
	Cursor string   `json:"cursor,omitempty"`
}

// evalResult is one per-document result row. The mode's field (Sat,
// Nodes or Tuples) is set unless Error is non-empty; empty node and
// tuple sets are omitted from the JSON (a row with neither field nor
// error is a successful empty result). Truncated marks a tuples row cut
// at the answer cap — the tuples present are a genuine prefix-by-count of
// the answer relation, not the whole of it.
type evalResult struct {
	Doc       string             `json:"doc"`
	Sat       *bool              `json:"sat,omitempty"`
	Nodes     []cqtrees.NodeID   `json:"nodes,omitempty"`
	Tuples    [][]cqtrees.NodeID `json:"tuples,omitempty"`
	Truncated bool               `json:"truncated,omitempty"`
	Error     string             `json:"error,omitempty"`
	// Reason classifies persistence-layer failures: "quarantined" (the
	// document's snapshot file failed validation and was set aside — do
	// not retry) or "unavailable" (a transient snapshot I/O failure —
	// retry after a backoff). Empty for all other errors.
	Reason string `json:"reason,omitempty"`
}

type evalResponse struct {
	Mode    string       `json:"mode"`
	Plan    string       `json:"plan"`
	Docs    int          `json:"docs"`
	Errors  int          `json:"errors"`
	Results []evalResult `json:"results"`
	// Truncated counts the rows cut at the answer cap.
	Truncated int `json:"truncated,omitempty"`
	// TimedOut marks a batch cut short by its deadline (status 504; the
	// rows completed before the deadline are included).
	TimedOut bool `json:"timed_out,omitempty"`
	// NextCursor is the paginated path's resume token: present exactly
	// when the page was cut short of the full result set — pass it back
	// as cursor (with the same order) to fetch the next page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// validModes is the /eval mode tier.
func validMode(mode string) bool {
	return mode == "bool" || mode == "nodes" || mode == "tuples"
}

// answerCap folds the server's -max-answers and the request's
// max_answers: the request may tighten the operator's cap, never extend
// it. <= 0 means unlimited.
func (s *Server) answerCap(req int) int {
	cap := s.maxAnswers
	if req > 0 && (cap <= 0 || req < cap) {
		cap = req
	}
	return cap
}

// admissionReject maps gate errors onto the overload tiers, counting the
// rejection by reason. Both tiers carry Retry-After: 429s tell the client
// to back off briefly and retry the same server (the queue drains as
// in-flight evals finish); 503s tell it this replica is going away —
// retry another one after a beat.
func (s *Server) admissionReject(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShutdown):
		s.metrics.rejected.With("shutdown").Inc()
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case errors.Is(err, ErrQueueFull):
		s.metrics.rejected.With("queue_full").Inc()
	default:
		s.metrics.rejected.With("queue_wait").Inc()
	}
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests, "%v", err)
}

// wantsNDJSON reports whether the client negotiated the streaming
// response format.
func wantsNDJSON(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		if containsToken(accept, "application/x-ndjson") {
			return true
		}
	}
	return false
}

// containsToken reports whether the comma-separated header value names
// the media type (parameters after ';' ignored).
func containsToken(header, mediaType string) bool {
	for _, part := range strings.Split(header, ",") {
		part, _, _ = strings.Cut(part, ";")
		if strings.TrimSpace(part) == mediaType {
			return true
		}
	}
	return false
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req evalRequest
	if !s.decodeBody(w, r, &req) {
		return
	}

	// Resolve the query: registered name xor inline source.
	var pq *cqtrees.PreparedQuery
	switch {
	case req.Query != "" && req.Source != "":
		httpError(w, http.StatusBadRequest, "give query or source, not both")
		return
	case req.Query != "":
		s.mu.Lock()
		sq, ok := s.queries[req.Query]
		s.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, "unknown query %q", req.Query)
			return
		}
		pq = sq.pq
	case req.Source != "":
		var err error
		if pq, err = cqtrees.Compile(req.Source); err != nil {
			httpError(w, http.StatusBadRequest, "compile: %v", err)
			return
		}
	default:
		httpError(w, http.StatusBadRequest, "query or source is required")
		return
	}

	mode := req.Mode
	if mode == "" {
		mode = "tuples"
	}
	if !validMode(mode) {
		httpError(w, http.StatusBadRequest, "unknown mode %q (bool, nodes, tuples)", req.Mode)
		return
	}
	if mode == "nodes" && len(pq.Query().Head) != 1 {
		// The arity violation is a property of the request, not of any
		// document: report it once, as 422, instead of per-document rows.
		httpError(w, http.StatusUnprocessableEntity,
			"mode nodes needs a monadic query; %q has arity %d", pq.Query().String(), len(pq.Query().Head))
		return
	}

	// Pagination is a distinct shape, not a batch option: one document,
	// tuples mode, buffered JSON. Reject the incompatible combinations up
	// front — silently ignoring an order or a cursor would return pages
	// the client cannot resume.
	paginated := req.Order != nil || req.Cursor != "" || req.Limit > 0
	if paginated {
		switch {
		case mode != "tuples":
			httpError(w, http.StatusBadRequest, "order/limit/cursor require mode tuples, not %q", mode)
			return
		case len(req.Docs) != 1:
			httpError(w, http.StatusBadRequest, "order/limit/cursor require exactly one doc, got %d", len(req.Docs))
			return
		case wantsNDJSON(r):
			httpError(w, http.StatusBadRequest, "pagination is incompatible with NDJSON streaming")
			return
		}
	}

	// The operator's -eval-timeout is a hard cap: a client timeout_ms may
	// only tighten it, never extend it past the server bound. The deadline
	// starts BEFORE admission, so time spent queued counts against the
	// request's budget — a request that waits its whole deadline in the
	// queue is rejected 429 without ever evaluating.
	ctx := r.Context()
	timeout := s.evalTimeout
	if reqTimeout := time.Duration(req.TimeoutMS) * time.Millisecond; req.TimeoutMS > 0 &&
		(timeout <= 0 || reqTimeout < timeout) {
		timeout = reqTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Paginated requests bypass the result cache by design: a page is a
	// cursor-dependent slice, so caching it would key on the cursor token
	// and never be re-hit — while the underlying O(depth + page) resume
	// already makes recomputation cheap. They do pass the admission gate.
	if paginated {
		release, err := s.gate.Acquire(ctx)
		if err != nil {
			s.admissionReject(w, err)
			return
		}
		defer release()
		if s.hook != nil {
			s.hook(r)
		}
		s.evalPaginated(ctx, w, req, pq, start)
		return
	}

	// The cached path manages admission itself: lookups happen before the
	// gate, and only cache misses acquire a slot. Streaming responses
	// bypass the cache — they exist for results too large to materialize,
	// which are exactly the ones the cache's per-entry cap refuses.
	if s.cache != nil && !wantsNDJSON(r) {
		s.evalCached(ctx, w, r, req, pq, mode, start)
		return
	}

	// Admission: evaluation is the expensive tier, so only it passes the
	// gate (metadata endpoints stay responsive under saturation). The
	// release is deferred, so even a panicking evaluation — converted to a
	// 500 by the recovery middleware — frees its slot.
	release, err := s.gate.Acquire(ctx)
	if err != nil {
		s.admissionReject(w, err)
		return
	}
	defer release()
	if s.hook != nil {
		s.hook(r)
	}

	if wantsNDJSON(r) {
		s.evalNDJSON(ctx, w, req, pq, mode, start)
		return
	}
	s.evalBuffered(ctx, w, req, pq, mode, start)
}

// evalPaginated answers one page of one document's ordered answer
// relation (see the pagination contract on evalRequest). Cursor failures
// map onto the REST tiers — 400 for tokens that do not decode (and order
// specs that do not fit the query), 409 for cursors minted by a different
// query or order, 410 for cursors whose document has changed content —
// so clients can distinguish "fix the request" from "restart the walk".
func (s *Server) evalPaginated(ctx context.Context, w http.ResponseWriter, req evalRequest, pq *cqtrees.PreparedQuery, start time.Time) {
	doc := req.Docs[0]
	opts := []cqtrees.EvalOption{cqtrees.WithContext(ctx)}
	if req.Order != nil {
		dirs := make([]cqtrees.Dir, len(req.Order))
		for i, o := range req.Order {
			d, err := cqtrees.ParseDir(o)
			if err != nil {
				httpError(w, http.StatusBadRequest, "order[%d]: %v", i, err)
				return
			}
			dirs[i] = d
		}
		opts = append(opts, cqtrees.WithOrder(dirs...))
	}
	// The server's -max-answers caps the page size exactly as it caps
	// buffered tuples rows; a client limit may only tighten it.
	if page := s.answerCap(req.Limit); page > 0 {
		opts = append(opts, cqtrees.WithLimit(page))
	}
	if req.Cursor != "" {
		opts = append(opts, cqtrees.WithCursor(req.Cursor))
	}

	resp := evalResponse{Mode: "tuples", Plan: pq.Plan().String(), Docs: 1}
	page, err := s.corpus.Page(pq, doc, opts...)
	switch {
	case err == nil:
	case errors.Is(err, cqtrees.ErrCursorMalformed), errors.Is(err, cqtrees.ErrOrderArity):
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, cqtrees.ErrCursorMismatch):
		httpError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, cqtrees.ErrCursorStale):
		httpError(w, http.StatusGone, "%v", err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		resp.TimedOut = true
		resp.Results = []evalResult{{Doc: doc, Error: err.Error()}}
		resp.Errors = 1
		s.metrics.observeEval(start, pq, "timeout")
		writeJSON(w, http.StatusGatewayTimeout, resp)
		return
	default:
		// Document-tier failure: an error row plus the same persistence
		// escalation the batch path applies — with one document, an
		// all-rows failure is just this row's failure.
		var tally hydraTally
		reason, retryAfter := reasonOf(err)
		tally.count(reason, retryAfter)
		resp.Results = []evalResult{{Doc: doc, Error: err.Error(), Reason: reason}}
		resp.Errors = 1
		status := tally.status(w, 1, 1)
		s.metrics.observeEval(start, pq, "failed")
		writeJSON(w, status, resp)
		return
	}
	s.metrics.evalsTotal.With(strategySlug(pq.Plan())).Inc()
	resp.Results = []evalResult{{Doc: doc, Tuples: page.Tuples, Truncated: page.Next != ""}}
	if page.Next != "" {
		resp.Truncated = 1
		resp.NextCursor = page.Next
	}
	s.metrics.observeEval(start, pq, "ok")
	writeJSON(w, http.StatusOK, resp)
}

// evalBuffered is the classic JSON response path: the whole batch fans
// out across the worker pool and the response materializes in memory —
// bounded by the answer cap when one is configured.
func (s *Server) evalBuffered(ctx context.Context, w http.ResponseWriter, req evalRequest, pq *cqtrees.PreparedQuery, mode string, start time.Time) {
	// The document list is frozen up front (an unrestricted request takes
	// the current fleet): batch completeness is then decidable — a timed
	// out batch may never dispatch some documents, and those produce no
	// result rows at all.
	explicit := len(req.Docs) > 0
	docs := req.Docs
	if !explicit {
		docs = s.corpus.Names()
	}
	expected := len(docs)
	opts := []cqtrees.BatchOption{
		cqtrees.WithBatchContext(ctx),
		cqtrees.WithBatchWorkers(req.Workers),
		cqtrees.WithDocs(docs...),
	}
	cap := s.answerCap(req.MaxAnswers)
	if mode == "tuples" && cap > 0 {
		opts = append(opts, cqtrees.WithBatchMaxTuples(cap))
	}

	resp := evalResponse{Mode: mode, Plan: pq.Plan().String(), Results: make([]evalResult, 0, len(docs))}
	cancelledRows := 0
	var tally hydraTally
	add := func(doc string, err error, fill func(*evalResult)) {
		// An implicit fleet selection can race a concurrent Remove or
		// LRU eviction between Names() and the batch snapshot; the
		// client never asked for that document by name, so its
		// disappearance is not an error row.
		if err != nil && !explicit && errors.Is(err, cqtrees.ErrUnknownDocument) {
			expected--
			return
		}
		// Count rows that reached the engine under their strategy; an
		// unknown document (explicitly named, hence an error row) did not.
		if err == nil || !errors.Is(err, cqtrees.ErrUnknownDocument) {
			s.metrics.evalsTotal.With(strategySlug(pq.Plan())).Inc()
		}
		row := evalResult{Doc: doc}
		if err != nil {
			row.Error = err.Error()
			resp.Errors++
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				cancelledRows++
			}
			reason, retryAfter := reasonOf(err)
			row.Reason = reason
			tally.count(reason, retryAfter)
		} else {
			fill(&row)
		}
		resp.Results = append(resp.Results, row)
	}
	// Empty node/tuple sets need no normalization: omitempty drops the
	// field for nil and empty alike, so a successful empty result is a
	// row with neither payload nor error.
	switch mode {
	case "bool":
		for r := range s.corpus.Bool(pq, opts...) {
			sat := r.Sat
			add(r.Doc, r.Err, func(row *evalResult) { row.Sat = &sat })
		}
	case "nodes":
		for r := range s.corpus.Nodes(pq, opts...) {
			nodes := r.Nodes
			add(r.Doc, r.Err, func(row *evalResult) { row.Nodes = nodes })
		}
	case "tuples":
		for r := range s.corpus.Tuples(pq, opts...) {
			tuples, truncated := r.Tuples, r.Truncated
			add(r.Doc, r.Err, func(row *evalResult) {
				row.Tuples = tuples
				row.Truncated = truncated
				if truncated {
					resp.Truncated++
				}
			})
		}
	}
	resp.Docs = len(resp.Results)
	sort.Slice(resp.Results, func(i, j int) bool { return resp.Results[i].Doc < resp.Results[j].Doc })

	// 504 only when the deadline actually cut work short: some row carried
	// a cancellation error, or some frozen-list document never produced a
	// row. A batch that completed just before the deadline fired is a 200.
	if errors.Is(ctx.Err(), context.DeadlineExceeded) &&
		(cancelledRows > 0 || resp.Docs < expected) {
		resp.TimedOut = true
		s.metrics.observeEval(start, pq, "timeout")
		writeJSON(w, http.StatusGatewayTimeout, resp)
		return
	}
	// Persistence escalation: when every row failed and the persistence
	// layer was involved, the batch as a whole is undeliverable — 503 +
	// Retry-After (transient, retry here later) or 404 (everything asked
	// for is quarantined; retrying cannot help).
	if status := tally.status(w, resp.Docs, resp.Errors); status != http.StatusOK {
		s.metrics.observeEval(start, pq, "failed")
		writeJSON(w, status, resp)
		return
	}
	s.metrics.observeEval(start, pq, "ok")
	writeJSON(w, http.StatusOK, resp)
}
