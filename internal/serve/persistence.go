package serve

import (
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	cqtrees "repro"
	"repro/internal/corpus"
)

// Persistence-failure surfacing for /eval. Hydration failures are not
// ordinary per-row errors: they mean the serving tier itself cannot
// produce the document right now, and the client needs to know whether
// retrying can help. Each affected row carries a "reason" —
// "quarantined" (the snapshot file failed validation and was set aside;
// retrying cannot help) or "unavailable" (transient I/O; retry after the
// backoff) — and a batch in which EVERY row failed with at least one
// persistence failure escalates to a structured status: 503 +
// Retry-After when any failure is transient, 404 when everything the
// client asked for is quarantined.

// reasonQuarantined / reasonUnavailable are the evalResult.Reason values.
const (
	reasonQuarantined = "quarantined"
	reasonUnavailable = "unavailable"
)

// hydraTally accumulates persistence failures across one /eval batch.
type hydraTally struct {
	quarantined int
	unavailable int
	maxRetry    time.Duration
}

// reasonOf classifies one row error: "quarantined", "unavailable", or ""
// for errors that did not come from the persistence layer. The
// transient case also reports the hydration backoff remaining.
func reasonOf(err error) (reason string, retryAfter time.Duration) {
	switch {
	case errors.Is(err, cqtrees.ErrDocumentQuarantined):
		return reasonQuarantined, 0
	case errors.Is(err, cqtrees.ErrDocumentUnavailable):
		var herr *corpus.HydrationError
		if errors.As(err, &herr) {
			retryAfter = herr.RetryAfter
		}
		return reasonUnavailable, retryAfter
	}
	return "", 0
}

// count folds one classified failure into the tally.
func (h *hydraTally) count(reason string, retryAfter time.Duration) {
	switch reason {
	case reasonQuarantined:
		h.quarantined++
	case reasonUnavailable:
		h.unavailable++
		if retryAfter > h.maxRetry {
			h.maxRetry = retryAfter
		}
	}
}

// status maps the finished batch onto its response status. docs and
// errCount are the response's row and error-row totals: only a batch in
// which every row failed AND the persistence layer was involved
// escalates; any successful row keeps the 200-with-reasons contract.
func (h *hydraTally) status(w http.ResponseWriter, docs, errCount int) int {
	if docs == 0 || errCount < docs || h.quarantined+h.unavailable == 0 {
		return http.StatusOK
	}
	if h.unavailable > 0 {
		secs := int(math.Ceil(h.maxRetry.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		return http.StatusServiceUnavailable
	}
	return http.StatusNotFound
}
