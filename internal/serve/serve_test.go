package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/consistency"
)

// testServer returns a handler over a fresh in-memory engine.
func testServer(t *testing.T) http.Handler {
	t.Helper()
	return mustServer(t, Config{}).Handler()
}

// mustServer builds a server, failing the test on config errors.
func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// do runs one request and decodes the JSON response into out (skipped
// when out is nil or the body is empty).
func do(t *testing.T, h http.Handler, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if out != nil && rr.Body.Len() > 0 {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rr.Body.String(), err)
		}
	}
	return rr
}

func wantStatus(t *testing.T, rr *httptest.ResponseRecorder, want int) {
	t.Helper()
	if rr.Code != want {
		t.Fatalf("status = %d, want %d; body: %s", rr.Code, want, rr.Body.String())
	}
}

// TestDocumentLifecycle: PUT (term and XML, create and replace), GET,
// list, DELETE, and the error tiers around them.
func TestDocumentLifecycle(t *testing.T) {
	h := testServer(t)

	var info struct {
		Name  string `json:"name"`
		Nodes int    `json:"nodes"`
		Bytes int64  `json:"bytes"`
	}
	rr := do(t, h, "PUT", "/docs/alpha", `{"term": "A(B,C(B))"}`, &info)
	wantStatus(t, rr, http.StatusCreated)
	if info.Name != "alpha" || info.Nodes != 4 || info.Bytes <= 0 {
		t.Fatalf("create: %+v", info)
	}

	// PUT is replace-or-create: same name again is 200.
	rr = do(t, h, "PUT", "/docs/alpha", `{"term": "A(B)"}`, &info)
	wantStatus(t, rr, http.StatusOK)
	if info.Nodes != 2 {
		t.Fatalf("replace: %+v", info)
	}

	rr = do(t, h, "PUT", "/docs/xml", `{"xml": "<a><b/><c><b/></c></a>"}`, &info)
	wantStatus(t, rr, http.StatusCreated)
	if info.Nodes != 4 {
		t.Fatalf("xml: %+v", info)
	}

	// Error tier: malformed body, parse failure, both / neither format.
	wantStatus(t, do(t, h, "PUT", "/docs/bad", `{not json`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "PUT", "/docs/bad", `{"term": "A(unclosed"}`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "PUT", "/docs/bad", `{"term": "A", "xml": "<a/>"}`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "PUT", "/docs/bad", `{}`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "PUT", "/docs/bad", `{"nope": 1}`, nil), http.StatusBadRequest)

	var list struct {
		Docs  []json.RawMessage `json:"docs"`
		Bytes int64             `json:"bytes"`
	}
	rr = do(t, h, "GET", "/docs", "", &list)
	wantStatus(t, rr, http.StatusOK)
	if len(list.Docs) != 2 || list.Bytes <= 0 {
		t.Fatalf("list: %d docs, %d bytes", len(list.Docs), list.Bytes)
	}

	wantStatus(t, do(t, h, "GET", "/docs/alpha", "", nil), http.StatusOK)
	wantStatus(t, do(t, h, "GET", "/docs/ghost", "", nil), http.StatusNotFound)
	wantStatus(t, do(t, h, "DELETE", "/docs/alpha", "", nil), http.StatusNoContent)
	wantStatus(t, do(t, h, "DELETE", "/docs/alpha", "", nil), http.StatusNotFound)
}

// TestQueryLifecycle: registration compiles once and reports the plan;
// bad sources are 400; unknown names 404.
func TestQueryLifecycle(t *testing.T) {
	h := testServer(t)

	var info struct {
		Name  string `json:"name"`
		Arity int    `json:"arity"`
		Plan  string `json:"plan"`
	}
	rr := do(t, h, "PUT", "/queries/descB", `{"query": "Q(y) <- A(x), Child+(x, y), B(y)"}`, &info)
	wantStatus(t, rr, http.StatusCreated)
	if info.Arity != 1 || info.Plan == "" {
		t.Fatalf("register: %+v", info)
	}
	// Replacement is 200.
	wantStatus(t, do(t, h, "PUT", "/queries/descB", `{"query": "Q() <- A(x)"}`, nil), http.StatusOK)

	wantStatus(t, do(t, h, "PUT", "/queries/bad", `{"query": "not a query"}`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "PUT", "/queries/bad", `{}`, nil), http.StatusBadRequest)

	var list struct {
		Queries []json.RawMessage `json:"queries"`
	}
	rr = do(t, h, "GET", "/queries", "", &list)
	wantStatus(t, rr, http.StatusOK)
	if len(list.Queries) != 1 {
		t.Fatalf("list: %d queries", len(list.Queries))
	}
	wantStatus(t, do(t, h, "GET", "/queries/descB", "", nil), http.StatusOK)
	wantStatus(t, do(t, h, "GET", "/queries/ghost", "", nil), http.StatusNotFound)
	wantStatus(t, do(t, h, "DELETE", "/queries/descB", "", nil), http.StatusNoContent)
	wantStatus(t, do(t, h, "DELETE", "/queries/descB", "", nil), http.StatusNotFound)
}

// evalResp mirrors evalResponse for decoding.
type evalResp struct {
	Mode    string `json:"mode"`
	Plan    string `json:"plan"`
	Docs    int    `json:"docs"`
	Errors  int    `json:"errors"`
	Results []struct {
		Doc       string    `json:"doc"`
		Sat       *bool     `json:"sat"`
		Nodes     []int32   `json:"nodes"`
		Tuples    [][]int32 `json:"tuples"`
		Truncated bool      `json:"truncated"`
		Error     string    `json:"error"`
	} `json:"results"`
	Truncated int  `json:"truncated"`
	TimedOut  bool `json:"timed_out"`
}

// loadFleet registers three documents and one monadic query.
func loadFleet(t *testing.T, h http.Handler) {
	t.Helper()
	for name, term := range map[string]string{
		"two":  "A(B,C(B))", // two B-descendants of A
		"one":  "A(C(B))",   // one
		"zero": "A(C,C)",    // none
	} {
		wantStatus(t, do(t, h, "PUT", "/docs/"+name, fmt.Sprintf(`{"term": %q}`, term), nil), http.StatusCreated)
	}
	wantStatus(t, do(t, h, "PUT", "/queries/descB",
		`{"query": "Q(y) <- A(x), Child+(x, y), B(y)"}`, nil), http.StatusCreated)
}

// TestEvalModes: bool, nodes and tuples round-trips over a registered
// query and an ad-hoc source, with per-document results sorted by name.
func TestEvalModes(t *testing.T) {
	h := testServer(t)
	loadFleet(t, h)

	var resp evalResp
	rr := do(t, h, "POST", "/eval", `{"query": "descB", "mode": "nodes"}`, &resp)
	wantStatus(t, rr, http.StatusOK)
	if resp.Docs != 3 || resp.Errors != 0 || resp.Plan == "" {
		t.Fatalf("nodes: %+v", resp)
	}
	counts := map[string]int{}
	for _, r := range resp.Results {
		counts[r.Doc] = len(r.Nodes)
	}
	if counts["two"] != 2 || counts["one"] != 1 || counts["zero"] != 0 {
		t.Fatalf("nodes counts = %v", counts)
	}
	// Results arrive sorted by document name.
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i-1].Doc > resp.Results[i].Doc {
			t.Fatalf("results unsorted: %+v", resp.Results)
		}
	}

	resp = evalResp{}
	rr = do(t, h, "POST", "/eval", `{"query": "descB", "mode": "bool", "workers": 4}`, &resp)
	wantStatus(t, rr, http.StatusOK)
	for _, r := range resp.Results {
		want := r.Doc != "zero"
		if r.Sat == nil || *r.Sat != want {
			t.Fatalf("bool %s: %+v", r.Doc, r)
		}
	}

	// Ad-hoc source, tuples mode (the default), restricted doc list.
	resp = evalResp{}
	rr = do(t, h, "POST", "/eval",
		`{"source": "Q(x, y) <- A(x), Child+(x, y), B(y)", "docs": ["two"]}`, &resp)
	wantStatus(t, rr, http.StatusOK)
	if resp.Mode != "tuples" || resp.Docs != 1 || len(resp.Results[0].Tuples) != 2 {
		t.Fatalf("tuples: %+v", resp)
	}
	for _, tup := range resp.Results[0].Tuples {
		if len(tup) != 2 {
			t.Fatalf("tuple arity: %+v", resp.Results[0].Tuples)
		}
	}
}

// TestEvalErrorTiers: 400 for malformed requests and sources, 404 for
// unknown query names, 422 for mode nodes on non-monadic queries, and
// per-document error rows for unknown docs in the batch list.
func TestEvalErrorTiers(t *testing.T) {
	h := testServer(t)
	loadFleet(t, h)

	wantStatus(t, do(t, h, "POST", "/eval", `{not json`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/eval", `{"mode": "bool"}`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/eval",
		`{"query": "descB", "source": "Q() <- A(x)"}`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/eval",
		`{"source": "syntax error"}`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/eval",
		`{"query": "descB", "mode": "teleport"}`, nil), http.StatusBadRequest)
	wantStatus(t, do(t, h, "POST", "/eval", `{"query": "ghost"}`, nil), http.StatusNotFound)
	wantStatus(t, do(t, h, "POST", "/eval",
		`{"source": "Q(x, y) <- A(x), Child+(x, y), B(y)", "mode": "nodes"}`, nil),
		http.StatusUnprocessableEntity)

	// Unknown documents inside the batch are per-row errors, not request
	// failures: the known documents still evaluate.
	var resp evalResp
	rr := do(t, h, "POST", "/eval",
		`{"query": "descB", "mode": "bool", "docs": ["two", "ghost"]}`, &resp)
	wantStatus(t, rr, http.StatusOK)
	if resp.Docs != 2 || resp.Errors != 1 {
		t.Fatalf("mixed batch: %+v", resp)
	}
	for _, r := range resp.Results {
		if r.Doc == "ghost" && r.Error == "" {
			t.Fatalf("ghost row has no error: %+v", r)
		}
		if r.Doc == "two" && (r.Error != "" || r.Sat == nil || !*r.Sat) {
			t.Fatalf("two row: %+v", r)
		}
	}
}

// TestEvalTimeout: a batch cut short by timeout_ms comes back as 504 with
// timed_out set and per-document cancellation errors on the rows that
// were in flight.
func TestEvalTimeout(t *testing.T) {
	h := testServer(t)
	// A deep tree plus an expensive backtracking query; timeout_ms: 1
	// expires long before the fleet completes.
	deep := "B"
	for i := 0; i < 400; i++ {
		deep = "B(" + deep + ")"
	}
	for i := 0; i < 4; i++ {
		wantStatus(t, do(t, h, "PUT", fmt.Sprintf("/docs/d%d", i),
			fmt.Sprintf(`{"term": "A(%s)"}`, deep), nil), http.StatusCreated)
	}
	var resp evalResp
	rr := do(t, h, "POST", "/eval",
		`{"source": "Q(x, y) <- B(x), Child+(x, y), B(y)", "timeout_ms": 1, "workers": 1}`, &resp)
	wantStatus(t, rr, http.StatusGatewayTimeout)
	if !resp.TimedOut {
		t.Fatalf("timed_out not set: %+v", resp)
	}
}

// TestEvalTimeoutCap: the operator's -eval-timeout is a hard cap — a
// client timeout_ms cannot extend it.
func TestEvalTimeoutCap(t *testing.T) {
	s := mustServer(t, Config{EvalTimeout: time.Millisecond})
	h := s.Handler()
	deep := "B"
	for i := 0; i < 400; i++ {
		deep = "B(" + deep + ")"
	}
	for i := 0; i < 4; i++ {
		wantStatus(t, do(t, h, "PUT", fmt.Sprintf("/docs/d%d", i),
			fmt.Sprintf(`{"term": "A(%s)"}`, deep), nil), http.StatusCreated)
	}
	var resp evalResp
	rr := do(t, h, "POST", "/eval",
		`{"source": "Q(x, y) <- B(x), Child+(x, y), B(y)", "timeout_ms": 600000, "workers": 1}`, &resp)
	wantStatus(t, rr, http.StatusGatewayTimeout)
	if !resp.TimedOut {
		t.Fatalf("server cap did not bound the batch: %+v", resp)
	}
}

// TestBodyTooLarge: oversized bodies are 413 (shrink the payload), a
// distinct tier from 400 (fix the payload) — term and XML documents
// alike, cut off at the limit by the middleware instead of being read
// fully into memory, with the structured {"error": ...} body.
func TestBodyTooLarge(t *testing.T) {
	s := mustServer(t, Config{MaxBody: 64})
	h := s.Handler()
	big := strings.Repeat("B,", 200)
	wantStatus(t, do(t, h, "PUT", "/docs/big", `{"term": "A(`+big+`B)"}`, nil),
		http.StatusRequestEntityTooLarge)

	var apiErr struct {
		Error string `json:"error"`
	}
	bigXML := `{"xml": "<a>` + strings.Repeat("<b/>", 200) + `</a>"}`
	rr := do(t, h, "PUT", "/docs/bigxml", bigXML, &apiErr)
	wantStatus(t, rr, http.StatusRequestEntityTooLarge)
	if !strings.Contains(apiErr.Error, "exceeds 64 bytes") {
		t.Fatalf("413 body not structured: %q", rr.Body.String())
	}

	// /eval bodies are bounded by the same middleware.
	wantStatus(t, do(t, h, "POST", "/eval",
		`{"source": "Q() <- A(x)", "docs": [`+strings.Repeat(`"d",`, 100)+`"d"]}`, nil),
		http.StatusRequestEntityTooLarge)
}

// TestHealth reports corpus, registry and admission counts.
func TestHealth(t *testing.T) {
	s := mustServer(t, Config{})
	h := s.Handler()
	loadFleet(t, h)
	var health struct {
		Status   string `json:"status"`
		Docs     int    `json:"docs"`
		Queries  int    `json:"queries"`
		Bytes    int64  `json:"bytes"`
		InFlight int    `json:"in_flight"`
		Queued   int    `json:"queued"`
	}
	rr := do(t, h, "GET", "/healthz", "", &health)
	wantStatus(t, rr, http.StatusOK)
	if health.Status != "ok" || health.Docs != 3 || health.Queries != 1 || health.Bytes <= 0 {
		t.Fatalf("health: %+v", health)
	}
	if health.InFlight != 0 || health.Queued != 0 {
		t.Fatalf("idle admission stats: %+v", health)
	}

	// Draining replicas fail readiness.
	s.BeginShutdown()
	rr = do(t, h, "GET", "/healthz", "", &health)
	wantStatus(t, rr, http.StatusServiceUnavailable)
	if health.Status != "draining" {
		t.Fatalf("draining health: %+v", health)
	}
}

// TestCorpusBudgetEndToEnd: a server with a corpus byte budget evicts
// LRU documents as new ones load, visible through the docs listing.
func TestCorpusBudgetEndToEnd(t *testing.T) {
	probe := mustServer(t, Config{})
	ph := probe.Handler()
	wantStatus(t, do(t, ph, "PUT", "/docs/probe", `{"term": "A(B,C(B))"}`, nil), http.StatusCreated)
	unit := probe.corpus.Bytes()

	s := mustServer(t, Config{MaxCorpusBytes: 2*unit + unit/2})
	h := s.Handler()
	for _, name := range []string{"a", "b", "c"} {
		wantStatus(t, do(t, h, "PUT", "/docs/"+name, `{"term": "A(B,C(B))"}`, nil), http.StatusCreated)
	}
	if got := s.corpus.Len(); got != 2 {
		t.Fatalf("after budgeted loads: %d docs, want 2 (LRU evicted)", got)
	}
	wantStatus(t, do(t, h, "GET", "/docs/a", "", nil), http.StatusNotFound)
}

// TestDataDirRestart: with DataDir, PUT documents survive a server
// restart — the new server recovers the corpus from the snapshot
// directory and serves identical query results without re-parsing any XML
// or rebuilding any index (IndexBuildCount delta is zero across recovery
// and evaluation; documents hydrate from their snapshots).
func TestDataDirRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := mustServer(t, Config{DataDir: dir})
	h1 := s1.Handler()
	wantStatus(t, do(t, h1, "PUT", "/docs/xml", `{"xml": "<a><b/><c><b/></c></a>"}`, nil), http.StatusCreated)
	wantStatus(t, do(t, h1, "PUT", "/docs/term", `{"term": "A(B,C(B,A(B)))"}`, nil), http.StatusCreated)
	wantStatus(t, do(t, h1, "PUT", "/queries/q", `{"query": "Q(y) <- Child+(x, y), b(y)"}`, nil), http.StatusCreated)

	var before struct {
		Results []evalResult `json:"results"`
	}
	wantStatus(t, do(t, h1, "POST", "/eval", `{"source": "Q(y) <- Child+(x, y)", "mode": "nodes"}`, &before), http.StatusOK)
	if len(before.Results) != 2 {
		t.Fatalf("before restart: %d rows", len(before.Results))
	}

	// "Restart": a fresh server over the same directory. Queries are not
	// persisted (they compile in microseconds); documents must be.
	builds := consistency.IndexBuildCount()
	s2 := mustServer(t, Config{DataDir: dir})
	h2 := s2.Handler()

	// Recovery registers dehydrated entries: listed, node counts known,
	// zero resident bytes, nothing parsed yet.
	var list struct {
		Docs []docInfo `json:"docs"`
	}
	wantStatus(t, do(t, h2, "GET", "/docs", "", &list), http.StatusOK)
	if len(list.Docs) != 2 {
		t.Fatalf("after restart: %d docs listed", len(list.Docs))
	}
	for _, d := range list.Docs {
		if d.Hydrated || d.Bytes != 0 || d.Nodes <= 0 {
			t.Fatalf("after restart: %+v, want dehydrated with known nodes", d)
		}
	}

	var after struct {
		Results []evalResult `json:"results"`
	}
	wantStatus(t, do(t, h2, "POST", "/eval", `{"source": "Q(y) <- Child+(x, y)", "mode": "nodes"}`, &after), http.StatusOK)
	if !reflect.DeepEqual(after.Results, before.Results) {
		t.Fatalf("results differ across restart:\nbefore %+v\nafter  %+v", before.Results, after.Results)
	}
	if d := consistency.IndexBuildCount() - builds; d != 0 {
		t.Fatalf("restart recovery performed %d index builds, want 0 (snapshot loads only)", d)
	}

	// DELETE removes the snapshot too: a third server no longer sees it.
	wantStatus(t, do(t, h2, "DELETE", "/docs/xml", "", nil), http.StatusNoContent)
	s3 := mustServer(t, Config{DataDir: dir})
	wantStatus(t, do(t, s3.Handler(), "GET", "/docs/xml", "", nil), http.StatusNotFound)
	wantStatus(t, do(t, s3.Handler(), "GET", "/docs/term", "", nil), http.StatusOK)
}
