package serve

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	cqtrees "repro"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/metrics"
)

// serveMetrics is the server's instrument set, all registered on one
// Registry exposed at GET /metrics. Gauges that mirror state owned
// elsewhere (gate depth, corpus size, cache occupancy) are *Func metrics
// read at scrape time, so there is no double bookkeeping to drift; only
// genuinely event-shaped series (request counts, latencies, per-document
// evaluations, admission rejections) are updated on the request path.
type serveMetrics struct {
	registry *metrics.Registry

	// httpRequests counts every HTTP request by route, method, and
	// status code. The route label is the coarse route family (see
	// routeLabel), not the raw path — bounded cardinality by design.
	httpRequests *metrics.CounterVec

	// evalSeconds is the /eval latency histogram by plan strategy and
	// outcome ("ok", "timeout", or "cached" when every document was
	// served from the result cache without touching the engine).
	// Admission wait is included — it is part of the latency a client
	// observes.
	evalSeconds *metrics.HistogramVec

	// evalsTotal counts per-document engine evaluations by strategy.
	// Cache hits do NOT move it — that is the observable contract the
	// warm-path tests assert.
	evalsTotal *metrics.CounterVec

	// rejected counts /eval admission rejections by reason
	// ("queue_full", "queue_wait", "shutdown").
	rejected *metrics.CounterVec
}

func newServeMetrics(s *Server) *serveMetrics {
	r := metrics.NewRegistry()
	m := &serveMetrics{
		registry: r,
		httpRequests: r.NewCounterVec("cqtrees_http_requests_total",
			"HTTP requests served, by route family, method, and status code.",
			"route", "method", "code"),
		evalSeconds: r.NewHistogramVec("cqtrees_eval_seconds",
			"End-to-end /eval latency in seconds (admission wait included), by plan strategy and outcome.",
			metrics.DefBuckets, "strategy", "outcome"),
		evalsTotal: r.NewCounterVec("cqtrees_evals_total",
			"Per-document engine evaluations, by plan strategy. Cache hits do not count.",
			"strategy"),
		rejected: r.NewCounterVec("cqtrees_admission_rejected_total",
			"Eval requests rejected by admission control, by reason.",
			"reason"),
	}
	r.NewGaugeVec("cqtrees_build_info",
		"Build information; the value is always 1.",
		"go_version").With(runtime.Version()).Set(1)

	// Admission gate depth, read live at scrape time.
	r.NewGaugeFunc("cqtrees_admission_in_flight",
		"Eval requests currently holding an admission slot.",
		func() float64 { return float64(s.gate.InFlight()) })
	r.NewGaugeFunc("cqtrees_admission_queue_depth",
		"Eval requests waiting for an admission slot.",
		func() float64 { return float64(s.gate.Queued()) })

	// Corpus occupancy and hydration churn.
	r.NewGaugeFunc("cqtrees_corpus_docs",
		"Documents in the corpus (resident and dehydrated).",
		func() float64 { return float64(s.corpus.Len()) })
	r.NewGaugeFunc("cqtrees_corpus_bytes",
		"Accounted resident byte footprint of the corpus.",
		func() float64 { return float64(s.corpus.Bytes()) })
	r.NewCounterFunc("cqtrees_corpus_hydrations_total",
		"Documents hydrated back from snapshot stubs on demand.",
		func() float64 { return float64(s.corpus.Hydrations()) })

	// Persistence fault counters and fault-state gauges; all read from one
	// PersistenceStats snapshot per series, live at scrape time.
	persistStat := func(pick func(cqtrees.CorpusPersistence) int64) func() float64 {
		return func() float64 { return float64(pick(s.corpus.Persistence())) }
	}
	r.NewCounterFunc("cqtrees_corpus_hydration_errors_total",
		"Snapshot hydration attempts that failed (transient and permanent).",
		persistStat(func(p cqtrees.CorpusPersistence) int64 { return p.HydrationErrors }))
	r.NewCounterFunc("cqtrees_corpus_quarantines_total",
		"Snapshot files quarantined after failing format validation.",
		persistStat(func(p cqtrees.CorpusPersistence) int64 { return p.Quarantines }))
	r.NewCounterFunc("cqtrees_corpus_persist_errors_total",
		"PersistDoc calls that failed before the snapshot became durable.",
		persistStat(func(p cqtrees.CorpusPersistence) int64 { return p.PersistErrors }))
	r.NewGaugeFunc("cqtrees_corpus_stubs",
		"Dehydrated documents currently backed only by their snapshot file.",
		persistStat(func(p cqtrees.CorpusPersistence) int64 { return int64(p.Stubs) }))
	r.NewGaugeFunc("cqtrees_corpus_failed_docs",
		"Dehydrated documents whose last hydration failed and are in retry backoff.",
		persistStat(func(p cqtrees.CorpusPersistence) int64 { return int64(p.Failed) }))
	r.NewGaugeFunc("cqtrees_corpus_quarantined_docs",
		"Documents whose snapshot file is quarantined and cannot be served.",
		persistStat(func(p cqtrees.CorpusPersistence) int64 { return int64(p.Quarantined) }))

	// Result cache counters; all read from one Stats snapshot per series.
	// On the nil (disabled) cache every series reads zero.
	cacheStat := func(pick func(cache.Stats) int64) func() float64 {
		return func() float64 { return float64(pick(s.cache.Stats())) }
	}
	r.NewCounterFunc("cqtrees_cache_hits_total",
		"Result cache hits.",
		cacheStat(func(st cache.Stats) int64 { return st.Hits }))
	r.NewCounterFunc("cqtrees_cache_misses_total",
		"Result cache misses.",
		cacheStat(func(st cache.Stats) int64 { return st.Misses }))
	r.NewCounterFunc("cqtrees_cache_evictions_total",
		"Result cache entries evicted by the byte budget.",
		cacheStat(func(st cache.Stats) int64 { return st.Evictions }))
	r.NewCounterFunc("cqtrees_cache_invalidations_total",
		"Result cache entries dropped by document invalidation.",
		cacheStat(func(st cache.Stats) int64 { return st.Invalidations }))
	r.NewCounterFunc("cqtrees_cache_collapsed_total",
		"Concurrent cache misses collapsed onto another caller's computation.",
		cacheStat(func(st cache.Stats) int64 { return st.Collapsed }))
	r.NewCounterFunc("cqtrees_cache_too_large_total",
		"Results rejected by the per-entry cache byte cap.",
		cacheStat(func(st cache.Stats) int64 { return st.TooLarge }))
	r.NewGaugeFunc("cqtrees_cache_entries",
		"Result cache entries resident.",
		cacheStat(func(st cache.Stats) int64 { return st.Entries }))
	r.NewGaugeFunc("cqtrees_cache_bytes",
		"Result cache resident bytes.",
		cacheStat(func(st cache.Stats) int64 { return st.Bytes }))
	return m
}

// observeEval records one /eval request's latency under its strategy and
// outcome.
func (m *serveMetrics) observeEval(start time.Time, pq *cqtrees.PreparedQuery, outcome string) {
	m.evalSeconds.With(strategySlug(pq.Plan()), outcome).Observe(time.Since(start).Seconds())
}

// strategySlug is the metric-label form of a plan's strategy — short and
// stable, unlike Strategy.String()'s human-facing text.
func strategySlug(p cqtrees.Plan) string {
	switch p.Strategy {
	case core.StrategyAcyclic:
		return "acyclic"
	case core.StrategyXProperty:
		return "xproperty"
	default:
		return "backtrack"
	}
}

// routeLabel folds a request path onto its route family so the request
// counter's label set stays bounded no matter what paths clients probe.
func routeLabel(path string) string {
	switch {
	case path == "/healthz":
		return "/healthz"
	case path == "/metrics":
		return "/metrics"
	case path == "/eval":
		return "/eval"
	case path == "/docs" || strings.HasPrefix(path, "/docs/"):
		return "/docs"
	case path == "/queries" || strings.HasPrefix(path, "/queries/"):
		return "/queries"
	default:
		return "other"
	}
}

// codeRecorder captures the response status code for the request counter,
// forwarding Flush so the NDJSON streaming path keeps working through it.
type codeRecorder struct {
	http.ResponseWriter
	code int
}

func (w *codeRecorder) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeRecorder) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *codeRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withMetrics counts every request into the httpRequests counter. It sits
// outside the recovery middleware so panics converted to 500s are counted
// with the code the client actually received.
func (m *serveMetrics) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &codeRecorder{ResponseWriter: w}
		defer func() {
			code := rec.code
			if code == 0 {
				code = http.StatusOK
			}
			m.httpRequests.With(routeLabel(r.URL.Path), r.Method, strconv.Itoa(code)).Inc()
		}()
		next.ServeHTTP(rec, r)
	})
}
