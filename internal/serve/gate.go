package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission errors. Handlers map them onto the overload status tiers:
// ErrQueueFull and ErrQueueWait are 429 (back off and retry the same
// server), ErrShutdown is 503 (retry another replica).
var (
	// ErrQueueFull is returned by Acquire when the wait queue is at
	// capacity: the server is saturated beyond its configured backlog.
	ErrQueueFull = errors.New("admission queue full")
	// ErrQueueWait is returned by Acquire when the caller's context (or
	// the gate's wait cap) expired while queued: the request would have
	// spent its whole deadline waiting, so it never started evaluating.
	ErrQueueWait = errors.New("admission wait deadline exceeded")
	// ErrShutdown is returned by Acquire once Shutdown has been called;
	// queued waiters are woken with it too.
	ErrShutdown = errors.New("server shutting down")
)

// Gate is the admission controller for expensive requests: at most
// maxInFlight callers hold a slot at once, at most maxQueue more wait in
// FIFO order, and everyone past that is rejected immediately. Waiting is
// deadline-aware — a queued caller gives up when its context dies or the
// gate's wait cap elapses — so a request never spends more than its own
// budget in the queue.
//
// Admission order is strictly FIFO: a releasing slot is handed to the
// oldest waiter before any newcomer can take it, so saturation cannot
// starve queued requests.
//
// The zero-ish configuration is permissive: maxInFlight <= 0 admits
// everyone immediately (the gate still counts in-flight holders for
// observability and still rejects after Shutdown), and maxQueue <= 0
// disables waiting entirely (saturation rejects immediately).
type Gate struct {
	maxInFlight int
	maxQueue    int
	maxWait     time.Duration

	mu       sync.Mutex
	inFlight int
	queue    []*waiter
	closed   bool
}

// waiter is one queued Acquire call. granted flips under the gate lock
// when a released slot is handed over, which disambiguates the race
// between a grant and the waiter's own deadline: exactly one side owns
// the slot.
type waiter struct {
	ch      chan error // buffered(1): grant (nil) or ErrShutdown
	granted bool
}

// NewGate builds a gate admitting maxInFlight concurrent holders with a
// FIFO wait queue of maxQueue; maxWait > 0 additionally caps how long any
// caller may wait queued, independent of its context's deadline.
func NewGate(maxInFlight, maxQueue int, maxWait time.Duration) *Gate {
	return &Gate{maxInFlight: maxInFlight, maxQueue: maxQueue, maxWait: maxWait}
}

// Acquire obtains an evaluation slot, waiting in FIFO order when the gate
// is saturated. On success it returns the release function, which must be
// called exactly once (defer it). On failure it returns ErrQueueFull,
// ErrQueueWait, or ErrShutdown; a context error while queued reports as
// ErrQueueWait (the caller can consult ctx.Err() to tell a client
// disconnect from a deadline).
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrShutdown
	}
	// Immediate grant only when no one is queued: FIFO means newcomers
	// never overtake waiters, even in the instant between a slot handoff
	// and the granted waiter waking up.
	if g.maxInFlight <= 0 || (g.inFlight < g.maxInFlight && len(g.queue) == 0) {
		g.inFlight++
		g.mu.Unlock()
		return g.release, nil
	}
	if g.maxQueue <= 0 || len(g.queue) >= g.maxQueue {
		g.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{ch: make(chan error, 1)}
	g.queue = append(g.queue, w)
	g.mu.Unlock()

	waitCtx := ctx
	if g.maxWait > 0 {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithTimeout(ctx, g.maxWait)
		defer cancel()
	}
	select {
	case err := <-w.ch:
		if err != nil {
			return nil, err
		}
		return g.release, nil
	case <-waitCtx.Done():
		g.mu.Lock()
		if w.granted {
			// A release handed us the slot in the same instant the
			// deadline fired. The deadline wins — the request has no time
			// budget left to evaluate — so pass the slot straight on.
			g.mu.Unlock()
			g.release()
			return nil, ErrQueueWait
		}
		// Still queued (or woken by Shutdown, whose error sits unread in
		// the buffered channel): withdraw.
		for i, q := range g.queue {
			if q == w {
				g.queue = append(g.queue[:i], g.queue[i+1:]...)
				break
			}
		}
		closed := g.closed
		g.mu.Unlock()
		if closed {
			return nil, ErrShutdown
		}
		return nil, ErrQueueWait
	}
}

// release frees a slot: the oldest waiter inherits it, or the in-flight
// count drops.
func (g *Gate) release() {
	g.mu.Lock()
	if len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		w.granted = true
		g.mu.Unlock()
		w.ch <- nil // buffered; never blocks
		return
	}
	g.inFlight--
	g.mu.Unlock()
}

// Shutdown flips the gate into draining mode: every queued waiter wakes
// with ErrShutdown and every future Acquire fails with it immediately.
// Slots already held are unaffected — their requests run to completion
// and their releases simply decrement the count. Shutdown is idempotent.
func (g *Gate) Shutdown() {
	g.mu.Lock()
	g.closed = true
	q := g.queue
	g.queue = nil
	g.mu.Unlock()
	for _, w := range q {
		w.ch <- ErrShutdown // buffered; never blocks
	}
}

// Closed reports whether Shutdown has been called.
func (g *Gate) Closed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// InFlight returns the number of currently held slots.
func (g *Gate) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inFlight
}

// Queued returns the number of callers waiting for a slot.
func (g *Gate) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queue)
}
