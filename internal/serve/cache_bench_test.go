package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkEvalCache measures what the result cache buys one repeated
// /eval request: the <config>/cold leg runs a cache-disabled server (every
// request pays full engine evaluation), the <config>/warm leg the same
// request against a pre-warmed cache. scripts/bench.sh pairs the cold/warm
// suffixes into a speedup row (like probe/kernel and parse/snapshot), and
// scripts/perfgate.sh gates the geomean. Both servers' responses are
// compared for byte equality before any timing — a parity failure is a
// correctness bug, not a slow run.
func BenchmarkEvalCache(b *testing.B) {
	const docs, depth = 4, 200
	for _, mode := range []string{"nodes", "tuples"} {
		b.Run("mode="+mode, func(b *testing.B) {
			cold := newBenchServer(b, Config{}, docs, depth)
			warm := newBenchServer(b, Config{CacheBytes: 64 << 20}, docs, depth)
			body := fmt.Sprintf(`{"query": "q", "mode": %q}`, mode)

			// Parity self-check; the first warm request also fills the cache.
			want := benchEval(b, cold, body)
			if got := benchEval(b, warm, body); got != want {
				b.Fatalf("cold/warm parity broken:\ncold: %s\nwarm: %s", want, got)
			}
			if got := benchEval(b, warm, body); got != want {
				b.Fatalf("warm hit diverged from cold result")
			}

			b.Run("cold", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchEval(b, cold, body)
				}
			})
			b.Run("warm", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchEval(b, warm, body)
				}
			})
		})
	}
}

// newBenchServer seeds a server with right-deep B-chain documents and one
// registered monadic query matching every chain node.
func newBenchServer(b *testing.B, cfg Config, docs, depth int) http.Handler {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	h := s.Handler()
	term := "A(" + strings.Repeat("B(", depth) + "B" + strings.Repeat(")", depth) + ")"
	for i := 0; i < docs; i++ {
		rr := httptest.NewRecorder()
		req := httptest.NewRequest("PUT", fmt.Sprintf("/docs/d%03d", i),
			strings.NewReader(fmt.Sprintf(`{"term": %q}`, term)))
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusCreated {
			b.Fatalf("PUT doc: %d %s", rr.Code, rr.Body.String())
		}
	}
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("PUT", "/queries/q",
		strings.NewReader(`{"query": "Q(x) <- B(x)"}`))
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusCreated {
		b.Fatalf("PUT query: %d %s", rr.Code, rr.Body.String())
	}
	return h
}

// benchEval posts one /eval and returns the response body.
func benchEval(b *testing.B, h http.Handler, body string) string {
	b.Helper()
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/eval", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		b.Fatalf("POST /eval: %d %s", rr.Code, rr.Body.String())
	}
	return rr.Body.String()
}
