package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// The serve-layer view of persistence faults: corrupt snapshots become
// 404s with "reason": "quarantined", transient read failures become 503
// + Retry-After with "reason": "unavailable", and both states surface on
// /healthz, /metrics, and /docs. The faults are staged on the real
// filesystem — corrupting or deleting snapshot files between a persist
// and a cold restart — exactly the damage a production operator sees.

// persistedServer stands up a server on dir, PUTs the named docs through
// the API (persisting each), and returns the handler.
func persistedServer(t *testing.T, cfg Config, docs map[string]string) http.Handler {
	t.Helper()
	h := mustServer(t, cfg).Handler()
	for name, term := range docs {
		rr := do(t, h, "PUT", "/docs/"+name, `{"term": "`+term+`"}`, nil)
		wantStatus(t, rr, http.StatusCreated)
	}
	return h
}

// registerQuery registers a trivially satisfiable query under qname.
func registerQuery(t *testing.T, h http.Handler, qname string) {
	t.Helper()
	rr := do(t, h, "PUT", "/queries/"+qname, `{"query": "Q(x) <- A(x)"}`, nil)
	if rr.Code != http.StatusCreated && rr.Code != http.StatusOK {
		t.Fatalf("register query: %d: %s", rr.Code, rr.Body.String())
	}
}

// corruptSnapshotBody flips one byte near the end of the named document's
// snapshot — past the 48-byte header, so the LoadDir header peek still
// passes and the corruption is only caught by the full-read checksum.
func corruptSnapshotBody(t *testing.T, dir, name string) {
	t.Helper()
	path := filepath.Join(dir, corpus.FileName(name))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if len(data) < 56 {
		t.Fatalf("snapshot %s too small to corrupt past its header: %d bytes", path, len(data))
	}
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("rewrite %s: %v", path, err)
	}
}

// TestEvalQuarantinedSnapshot: a snapshot corrupted at rest is
// quarantined on first use; the /eval row carries the reason, an
// all-quarantined batch is 404, healthy documents are untouched, and
// /healthz, /metrics, and /docs all report the state.
func TestEvalQuarantinedSnapshot(t *testing.T) {
	dir := t.TempDir()
	persistedServer(t, Config{DataDir: dir}, map[string]string{
		"good": "A(B,C)", "bad": "A(B,C(D))",
	})
	corruptSnapshotBody(t, dir, "bad")

	// Cold restart: both documents register as stubs from their (healthy)
	// headers; the corruption only surfaces when "bad" hydrates.
	h := mustServer(t, Config{DataDir: dir}).Handler()
	registerQuery(t, h, "q")

	// Mixed batch: the healthy document answers, the corrupt one is an
	// error row with the quarantined reason — and the batch stays 200.
	var resp evalResponse
	rr := do(t, h, "POST", "/eval", `{"query": "q", "mode": "bool", "docs": ["good", "bad"]}`, &resp)
	wantStatus(t, rr, http.StatusOK)
	if resp.Docs != 2 || resp.Errors != 1 {
		t.Fatalf("mixed batch: %+v", resp)
	}
	for _, row := range resp.Results {
		switch row.Doc {
		case "good":
			if row.Error != "" || row.Sat == nil || !*row.Sat {
				t.Fatalf("healthy row damaged by neighbor's quarantine: %+v", row)
			}
		case "bad":
			if row.Reason != "quarantined" || row.Error == "" {
				t.Fatalf("quarantined row: %+v", row)
			}
		}
	}

	// An all-quarantined batch escalates to 404: nothing the client named
	// can ever be served by retrying.
	resp = evalResponse{}
	rr = do(t, h, "POST", "/eval", `{"query": "q", "mode": "bool", "docs": ["bad"]}`, &resp)
	wantStatus(t, rr, http.StatusNotFound)
	if resp.Results[0].Reason != "quarantined" {
		t.Fatalf("all-quarantined batch row: %+v", resp.Results[0])
	}

	// The file was set aside exactly once, under its quarantine name.
	qpath := filepath.Join(dir, corpus.FileName("bad")+corpus.QuarantineExt)
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, corpus.FileName("bad"))); !os.IsNotExist(err) {
		t.Fatalf("original corrupt file still present: %v", err)
	}

	// /metrics: the quarantine counter reads exactly 1 and the quarantined
	// gauge shows the one unservable document.
	metricsRR := do(t, h, "GET", "/metrics", "", nil)
	wantStatus(t, metricsRR, http.StatusOK)
	body := metricsRR.Body.String()
	for _, want := range []string{
		"cqtrees_corpus_quarantines_total 1",
		"cqtrees_corpus_quarantined_docs 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /healthz: the persistence block carries the same accounting.
	var health struct {
		Persistence struct {
			Quarantined     int   `json:"quarantined"`
			Quarantines     int64 `json:"quarantines"`
			HydrationErrors int64 `json:"hydration_errors"`
		} `json:"persistence"`
	}
	wantStatus(t, do(t, h, "GET", "/healthz", "", &health), http.StatusOK)
	if health.Persistence.Quarantined != 1 || health.Persistence.Quarantines != 1 ||
		health.Persistence.HydrationErrors != 1 {
		t.Fatalf("healthz persistence: %+v", health.Persistence)
	}

	// /docs/{name}: the per-document view names the fault.
	var info docInfo
	wantStatus(t, do(t, h, "GET", "/docs/bad", "", &info), http.StatusOK)
	if !info.Quarantined || info.LastError == "" {
		t.Fatalf("doc info: %+v", info)
	}

	// Re-PUT heals: a fresh document replaces the quarantined entry and
	// persists cleanly over the quarantine. (201, not 200: the quarantined
	// stub never had a resident document for Swap to return as "replaced".)
	wantStatus(t, do(t, h, "PUT", "/docs/bad", `{"term": "A(B)"}`, nil), http.StatusCreated)
	resp = evalResponse{}
	rr = do(t, h, "POST", "/eval", `{"query": "q", "mode": "bool", "docs": ["bad"]}`, &resp)
	wantStatus(t, rr, http.StatusOK)
	if resp.Errors != 0 {
		t.Fatalf("healed doc still failing: %+v", resp)
	}
}

// TestEvalTransientUnavailable: a snapshot that cannot be read for
// transient reasons (here: file deleted out from under a stub) makes an
// all-failed batch 503 + Retry-After with "reason": "unavailable", does
// NOT quarantine anything, and fails fast from tracked backoff state.
// Runs through the cached eval path — CacheBytes on — so the cache front
// door propagates hydration classification too.
func TestEvalTransientUnavailable(t *testing.T) {
	dir := t.TempDir()
	persistedServer(t, Config{DataDir: dir}, map[string]string{"doc": "A(B,C)"})

	h := mustServer(t, Config{DataDir: dir, CacheBytes: 1 << 20}).Handler()
	registerQuery(t, h, "q")
	if err := os.Remove(filepath.Join(dir, corpus.FileName("doc"))); err != nil {
		t.Fatal(err)
	}

	var resp evalResponse
	rr := do(t, h, "POST", "/eval", `{"query": "q", "mode": "bool", "docs": ["doc"]}`, &resp)
	wantStatus(t, rr, http.StatusServiceUnavailable)
	if resp.Results[0].Reason != "unavailable" || resp.Results[0].Error == "" {
		t.Fatalf("transient row: %+v", resp.Results[0])
	}
	if ra, err := strconv.Atoi(rr.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q", rr.Header().Get("Retry-After"))
	}

	// Transient failures never quarantine; the entry sits in retry backoff.
	var health struct {
		Persistence struct {
			Failed      int   `json:"failed"`
			Quarantines int64 `json:"quarantines"`
		} `json:"persistence"`
	}
	wantStatus(t, do(t, h, "GET", "/healthz", "", &health), http.StatusOK)
	if health.Persistence.Failed != 1 || health.Persistence.Quarantines != 0 {
		t.Fatalf("healthz persistence: %+v", health.Persistence)
	}
	var info docInfo
	wantStatus(t, do(t, h, "GET", "/docs/doc", "", &info), http.StatusOK)
	if !info.Failing || info.Quarantined {
		t.Fatalf("doc info: %+v", info)
	}

	// Fail-fast: the second request answers from tracked state (still 503)
	// without the corpus re-reading the missing file per request.
	before := mustServerCorpusHydrationErrors(t, h)
	rr = do(t, h, "POST", "/eval", `{"query": "q", "mode": "bool", "docs": ["doc"]}`, nil)
	wantStatus(t, rr, http.StatusServiceUnavailable)
	if after := mustServerCorpusHydrationErrors(t, h); after != before {
		t.Fatalf("backoff not honored: hydration errors %s -> %s", before, after)
	}
}

// mustServerCorpusHydrationErrors scrapes the hydration error counter off
// /metrics — the same signal an operator's dashboard reads.
func mustServerCorpusHydrationErrors(t *testing.T, h http.Handler) string {
	t.Helper()
	rr := do(t, h, "GET", "/metrics", "", nil)
	wantStatus(t, rr, http.StatusOK)
	for _, line := range strings.Split(rr.Body.String(), "\n") {
		if strings.HasPrefix(line, "cqtrees_corpus_hydration_errors_total ") {
			return line
		}
	}
	t.Fatalf("cqtrees_corpus_hydration_errors_total not exposed")
	return ""
}

// TestEvalNDJSONHydrationReason: the streaming path emits hydration
// failures as error rows with the same reason classification — even for
// an implicit (whole-fleet) request, where unknown-name skips would
// otherwise hide them.
func TestEvalNDJSONHydrationReason(t *testing.T) {
	dir := t.TempDir()
	persistedServer(t, Config{DataDir: dir}, map[string]string{
		"good": "A(B)", "bad": "A(B,C)",
	})
	corruptSnapshotBody(t, dir, "bad")
	h := mustServer(t, Config{DataDir: dir}).Handler()
	registerQuery(t, h, "q")

	req := httptest.NewRequest("POST", "/eval", strings.NewReader(`{"query": "q", "mode": "bool"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	wantStatus(t, rr, http.StatusOK)

	sawBad := false
	for _, line := range strings.Split(strings.TrimSpace(rr.Body.String()), "\n") {
		if strings.Contains(line, `"doc":"bad"`) {
			sawBad = true
			if !strings.Contains(line, `"reason":"quarantined"`) {
				t.Fatalf("bad row without reason: %s", line)
			}
		}
	}
	if !sawBad {
		t.Fatalf("implicit-fleet stream hid the hydration failure:\n%s", rr.Body.String())
	}
}

// TestStartupQuarantinesBadHeader: a snapshot whose header is garbage is
// quarantined during the startup scan — New still succeeds, the healthy
// fleet serves, and the load report surfaces on /healthz.
func TestStartupQuarantinesBadHeader(t *testing.T) {
	dir := t.TempDir()
	persistedServer(t, Config{DataDir: dir}, map[string]string{"good": "A(B)"})
	junk := filepath.Join(dir, corpus.FileName("junk"))
	if err := os.WriteFile(junk, []byte("JUNKJUNKJUNKJUNK"), 0o644); err != nil {
		t.Fatal(err)
	}

	h := mustServer(t, Config{DataDir: dir}).Handler()
	var health struct {
		Docs        int `json:"docs"`
		Persistence struct {
			LoadQuarantined int `json:"load_quarantined"`
		} `json:"persistence"`
	}
	wantStatus(t, do(t, h, "GET", "/healthz", "", &health), http.StatusOK)
	if health.Docs != 1 || health.Persistence.LoadQuarantined != 1 {
		t.Fatalf("healthz after bad-header startup: %+v", health)
	}
	if _, err := os.Stat(junk + corpus.QuarantineExt); err != nil {
		t.Fatalf("junk file not quarantined: %v", err)
	}
}
