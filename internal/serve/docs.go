package serve

import (
	"net/http"
	"strings"

	cqtrees "repro"
)

// ---- documents ------------------------------------------------------------

// docInfo describes one corpus document. Bytes is the accounted resident
// footprint (0 while the document is dehydrated to its snapshot file);
// Hydrated reports residency.
type docInfo struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Bytes    int64  `json:"bytes"`
	Hydrated bool   `json:"hydrated"`
	// Persistence fault state, omitted while healthy: Quarantined means
	// the snapshot file failed validation and was set aside (the document
	// cannot be served until re-persisted); Failing means the last
	// hydration attempt failed transiently and the entry is in retry
	// backoff. LastError carries the failure text for either.
	Quarantined bool   `json:"quarantined,omitempty"`
	Failing     bool   `json:"failing,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// docRow builds a listing row from Stat's accounted figures, so the rows
// of one /docs payload always sum to its top-level (and /healthz's)
// bytes, and dehydrated documents list without being pulled back into
// memory.
func docRow(name string, st cqtrees.CorpusStat) docInfo {
	return docInfo{
		Name: name, Nodes: st.Nodes, Bytes: st.Bytes, Hydrated: st.Hydrated,
		Quarantined: st.Quarantined, Failing: st.Failing, LastError: st.LastError,
	}
}

// The metadata endpoints use Stat, not Get: a monitoring poll of /docs
// must not promote every document in the LRU eviction order (only
// evaluation counts as use) and must not hydrate dehydrated documents.
func (s *Server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	infos := make([]docInfo, 0)
	for _, name := range s.corpus.Names() {
		if st, ok := s.corpus.Stat(name); ok {
			infos = append(infos, docRow(name, st))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"docs": infos, "bytes": s.corpus.Bytes()})
}

func (s *Server) handleGetDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.corpus.Stat(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown document %q", name)
		return
	}
	writeJSON(w, http.StatusOK, docRow(name, st))
}

// putDocRequest loads one document: exactly one of Term (the term syntax,
// e.g. "A(B,C(B))") or XML (an XML document; element names become labels).
type putDocRequest struct {
	Term string `json:"term,omitempty"`
	XML  string `json:"xml,omitempty"`
}

func (s *Server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req putDocRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	var (
		t   *cqtrees.Tree
		err error
	)
	switch {
	case req.Term != "" && req.XML != "":
		httpError(w, http.StatusBadRequest, "give term or xml, not both")
		return
	case req.Term != "":
		t, err = cqtrees.ParseTree(req.Term)
	case req.XML != "":
		t, err = cqtrees.ParseXML(strings.NewReader(req.XML))
	default:
		httpError(w, http.StatusBadRequest, "term or xml is required")
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	doc := cqtrees.Index(t)
	prev, err := s.corpus.Swap(name, doc)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.dataDir != "" {
		// Persist before answering: a 2xx PUT must survive a restart. A
		// failed write leaves the document resident but unpersisted — the
		// client sees the 500 and can retry the PUT.
		if err := s.corpus.PersistDoc(s.dataDir, name); err != nil {
			httpError(w, http.StatusInternalServerError, "persist: %v", err)
			return
		}
	}
	status := http.StatusCreated
	if prev != nil {
		status = http.StatusOK
	}
	// Stat surfaces the accounted insertion charge, keeping this response
	// consistent with the listing and with what eviction budgets.
	st, _ := s.corpus.Stat(name)
	writeJSON(w, status, docRow(name, st))
}

func (s *Server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Stat-then-act: Remove alone cannot tell a dehydrated document (nil
	// doc, name known) from an unknown name.
	if _, ok := s.corpus.Stat(name); !ok {
		httpError(w, http.StatusNotFound, "unknown document %q", name)
		return
	}
	s.corpus.Remove(name)
	if s.dataDir != "" {
		if err := s.corpus.Unpersist(s.dataDir, name); err != nil {
			httpError(w, http.StatusInternalServerError, "unpersist: %v", err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}
