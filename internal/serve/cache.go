package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	cqtrees "repro"
	"repro/internal/cache"
)

// The cached /eval path. When the server runs with a result cache
// (-cache-bytes > 0), buffered evaluations go through here instead of the
// corpus batch iterators:
//
//   - Lookups happen BEFORE admission: a request whose every document hits
//     the cache is answered without ever taking (or waiting for) a gate
//     slot — the whole point of caching is that repeated work must not
//     compete with real work for evaluation capacity.
//   - Misses are evaluated per document through cache.Do, so concurrent
//     requests for the same (query, document, version) collapse onto one
//     engine evaluation, and the result is stored for the next request.
//   - Keys carry the document's corpus version (see Corpus.Version): a
//     swapped or re-added document gets a new version, so a stale entry
//     can never match a post-swap lookup. The corpus invalidation hook
//     additionally drops the dead entries eagerly.
//
// The NDJSON streaming path never touches the cache: streaming exists for
// relations too large to materialize, which are exactly the results the
// per-entry byte cap refuses to cache.

// cachedRelation is the cached value for mode "tuples": the sorted answer
// relation, with complete=false when enumeration stopped early because
// the relation outgrew the per-entry cache budget (such values are never
// stored — see computeDoc — but are still served to the waiting callers).
type cachedRelation struct {
	tuples   [][]cqtrees.NodeID
	complete bool
}

// evalCached is the buffered /eval path with the result cache in front of
// the admission gate. The response contract is identical to evalBuffered:
// same rows, same sorting, same 504 semantics — only the work is
// memoized.
func (s *Server) evalCached(ctx context.Context, w http.ResponseWriter, r *http.Request,
	req evalRequest, pq *cqtrees.PreparedQuery, mode string, start time.Time) {
	fp := pq.Query().Fingerprint()
	explicit := len(req.Docs) > 0
	docs := req.Docs
	if !explicit {
		docs = s.corpus.Names()
	}
	expected := len(docs)
	capN := s.answerCap(req.MaxAnswers)

	resp := evalResponse{Mode: mode, Plan: pq.Plan().String(), Results: make([]evalResult, 0, len(docs))}
	cancelledRows := 0
	var tally hydraTally
	add := func(doc string, err error, v any) {
		// Same contract as evalBuffered: an implicitly selected document
		// that vanished between Names() and evaluation is not an error row.
		if err != nil && !explicit && errors.Is(err, cqtrees.ErrUnknownDocument) {
			expected--
			return
		}
		row := evalResult{Doc: doc}
		if err != nil {
			row.Error = err.Error()
			resp.Errors++
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				cancelledRows++
			}
			reason, retryAfter := reasonOf(err)
			row.Reason = reason
			tally.count(reason, retryAfter)
		} else {
			renderCached(&row, mode, v, capN)
			if row.Truncated {
				resp.Truncated++
			}
		}
		resp.Results = append(resp.Results, row)
	}

	// Pass 1 — pure lookups, no admission. Version is read before the
	// lookup; a Swap racing past between the two just yields a miss.
	type miss struct {
		name string
		ver  uint64
	}
	var misses []miss
	for _, name := range docs {
		ver, ok := s.corpus.Version(name)
		if !ok {
			add(name, missingDocErr(name), nil)
			continue
		}
		if v, ok := s.cache.Get(cache.Key{Query: fp, Doc: name, Version: ver, Mode: mode}); ok {
			add(name, nil, v)
			continue
		}
		misses = append(misses, miss{name, ver})
	}

	// Pass 2 — only misses pay for admission and evaluation.
	if len(misses) > 0 {
		release, err := s.gate.Acquire(ctx)
		if err != nil {
			s.admissionReject(w, err)
			return
		}
		defer release()
		if s.hook != nil {
			s.hook(r)
		}

		workers := req.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(misses) {
			workers = len(misses)
		}
		type outcome struct {
			v   any
			err error
		}
		outs := make([]outcome, len(misses))
		var wg sync.WaitGroup
		next := make(chan int)
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					m := misses[i]
					k := cache.Key{Query: fp, Doc: m.name, Version: m.ver, Mode: mode}
					v, err := s.cache.Do(ctx, k, func() (any, int64, error) {
						return s.computeDoc(ctx, pq, mode, m.name, capN)
					})
					outs[i] = outcome{v, err}
				}
			}()
		}
		for i := range misses {
			next <- i
		}
		close(next)
		wg.Wait()
		for i, m := range misses {
			add(m.name, outs[i].err, outs[i].v)
		}
	}

	resp.Docs = len(resp.Results)
	sort.Slice(resp.Results, func(i, j int) bool { return resp.Results[i].Doc < resp.Results[j].Doc })

	if errors.Is(ctx.Err(), context.DeadlineExceeded) &&
		(cancelledRows > 0 || resp.Docs < expected) {
		resp.TimedOut = true
		s.metrics.observeEval(start, pq, "timeout")
		writeJSON(w, http.StatusGatewayTimeout, resp)
		return
	}
	// Same persistence escalation as evalBuffered: an all-failed batch
	// with the persistence layer involved becomes 503 (transient) or 404
	// (all quarantined).
	if status := tally.status(w, resp.Docs, resp.Errors); status != http.StatusOK {
		s.metrics.observeEval(start, pq, "failed")
		writeJSON(w, status, resp)
		return
	}
	out := "ok"
	if len(misses) == 0 {
		out = "cached" // never acquired a slot, never ran the engine
	}
	s.metrics.observeEval(start, pq, out)
	writeJSON(w, http.StatusOK, resp)
}

// missingDocErr mirrors the batch iterators' per-row error for a document
// the corpus does not hold.
func missingDocErr(name string) error {
	return fmt.Errorf("corpus: %q: %w", name, cqtrees.ErrUnknownDocument)
}

// computeDoc evaluates pq on one document — the compute function behind
// cache.Do. It returns (value, size, error) where size is the value's
// approximate resident footprint; Put rejects sizes over the per-entry
// cap, so a deliberately inflated size is how a value opts out of
// caching.
//
// For mode "tuples" the cached value must be the COMPLETE relation —
// cached entries serve every future answer cap, so a capped prefix would
// poison larger requests. Enumeration therefore continues past the
// requesting cap while the accumulated bytes still fit the cache's
// per-entry budget; once the relation has outgrown cacheability AND the
// response prefix (cap plus the one-past-cap truncation witness) is in
// hand, it stops: the remaining work could benefit no one.
func (s *Server) computeDoc(ctx context.Context, pq *cqtrees.PreparedQuery, mode, name string, capN int) (any, int64, error) {
	doc, err := s.corpus.GetErr(name)
	if err != nil {
		// Hydration failures keep their classification (quarantined vs
		// transient) so the row and status mapping can distinguish them
		// from a plain unknown document.
		return nil, 0, err
	}
	s.metrics.evalsTotal.With(strategySlug(pq.Plan())).Inc()
	switch mode {
	case "bool":
		v, err := pq.BoolErr(doc, cqtrees.WithContext(ctx))
		return v, 16, err
	case "nodes":
		v, err := pq.NodesErr(doc, cqtrees.WithContext(ctx))
		return v, 48 + 4*int64(len(v)), err
	default: // tuples
		budget := s.cache.MaxEntry()
		var out [][]cqtrees.NodeID
		bytes := int64(64)
		stopped := false
		for t := range pq.Tuples(doc, cqtrees.WithContext(ctx)) {
			cp := make([]cqtrees.NodeID, len(t))
			copy(cp, t)
			out = append(out, cp)
			bytes += 32 + 4*int64(len(t))
			if bytes > budget && capN > 0 && len(out) > capN {
				stopped = true
				break
			}
		}
		// The tuple iterator goes silent on cancellation; surface it as the
		// row error unless we stopped on purpose first.
		if err := ctx.Err(); err != nil && !stopped {
			return nil, 0, err
		}
		sortTupleRows(out)
		size := bytes
		if stopped {
			size = budget + 1 // incomplete relations must never cache
		}
		return cachedRelation{tuples: out, complete: !stopped}, size, nil
	}
}

// renderCached projects a cached (or freshly computed) value onto one
// response row under the request's answer cap. Cached tuple relations are
// complete, so re-capping at render time serves any cap from one entry;
// an incomplete relation (never cached, but shared with singleflight
// followers) is truncated by construction.
func renderCached(row *evalResult, mode string, v any, capN int) {
	switch mode {
	case "bool":
		sat := v.(bool)
		row.Sat = &sat
	case "nodes":
		row.Nodes = v.([]cqtrees.NodeID)
	default: // tuples
		rel := v.(cachedRelation)
		tuples := rel.tuples
		truncated := !rel.complete
		if capN > 0 && len(tuples) > capN {
			tuples = tuples[:capN]
			truncated = true
		}
		// The slice aliases the cached value; rows are only ever encoded,
		// never mutated (the cache package's immutability contract).
		row.Tuples = tuples
		row.Truncated = truncated
	}
}

// sortTupleRows orders a tuple relation lexicographically by NodeID —
// the same order the batch iterators return.
func sortTupleRows(ts [][]cqtrees.NodeID) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
