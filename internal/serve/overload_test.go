package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// post issues one real POST /eval over the network with optional headers.
func post(t *testing.T, client *http.Client, url, body string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/eval", strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST /eval: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// TestServerOverload saturates the admission gate with slow evaluations
// and checks the full overload contract: excess load is shed as 429 with
// Retry-After (never 5xx), queued requests complete in admission order,
// draining answers 503, and no goroutines leak after shutdown.
func TestServerOverload(t *testing.T) {
	s := mustServer(t, Config{MaxInFlight: 2, MaxQueue: 2, QueueWait: 30 * time.Second})
	h := s.Handler()
	loadFleet(t, h)

	// The hook runs at the start of every admitted evaluation: record the
	// admission order and block until the test releases a step token, so
	// the test controls exactly how long each eval "computes".
	var mu sync.Mutex
	var admitted []string
	step := make(chan struct{})
	s.hook = func(r *http.Request) {
		mu.Lock()
		admitted = append(admitted, r.Header.Get("X-Req"))
		mu.Unlock()
		<-step
	}

	before := runtime.NumGoroutine()
	ts := httptest.NewServer(h)
	client := ts.Client()
	body := `{"query": "descB", "mode": "bool"}`

	type outcome struct {
		id     string
		status int
		retry  string
	}
	results := make(chan outcome, 16)
	launch := func(id string) {
		go func() {
			resp, _ := post(t, client, ts.URL, body, map[string]string{"X-Req": id})
			results <- outcome{id: id, status: resp.StatusCode, retry: resp.Header.Get("Retry-After")}
		}()
	}

	// Two requests take the in-flight slots and block inside the hook.
	launch("A")
	launch("B")
	waitFor(t, "slots to fill", func() bool { return s.InFlight() == 2 })

	// Two more queue, in a known order (each observably queued before the
	// next launches).
	launch("C")
	waitFor(t, "C to queue", func() bool { return s.Queued() == 1 })
	launch("D")
	waitFor(t, "D to queue", func() bool { return s.Queued() == 2 })

	// 4x max-in-flight: everything beyond slots+queue sheds as 429 with
	// Retry-After — no 5xx, no unbounded waiting.
	for i := 0; i < 4; i++ {
		launch(fmt.Sprintf("shed%d", i))
	}
	sheds := 0
	for sheds < 4 {
		o := <-results
		if !strings.HasPrefix(o.id, "shed") {
			t.Fatalf("admitted request %q finished while its eval was blocked", o.id)
		}
		if o.status != http.StatusTooManyRequests {
			t.Fatalf("shed request %q: status %d, want 429", o.id, o.status)
		}
		if o.retry == "" {
			t.Fatalf("shed request %q: no Retry-After", o.id)
		}
		sheds++
	}

	// Release the four admitted evals one at a time. FIFO handoff means C
	// is admitted before D, whatever order A and B finish in.
	for i := 0; i < 4; i++ {
		step <- struct{}{}
	}
	got := map[string]outcome{}
	for i := 0; i < 4; i++ {
		o := <-results
		got[o.id] = o
	}
	for _, id := range []string{"A", "B", "C", "D"} {
		if got[id].status != http.StatusOK {
			t.Fatalf("admitted request %q: status %d, want 200", id, got[id].status)
		}
	}
	mu.Lock()
	order := append([]string(nil), admitted...)
	mu.Unlock()
	if len(order) != 4 {
		t.Fatalf("admitted %v, want 4 requests", order)
	}
	iC, iD := -1, -1
	for i, id := range order {
		if id == "C" {
			iC = i
		}
		if id == "D" {
			iD = i
		}
	}
	if iC < 2 || iD < 2 || iC > iD {
		t.Fatalf("queued requests admitted out of FIFO order: %v", order)
	}

	// Draining: new evaluations answer 503 + Retry-After; metadata
	// endpoints keep working (they are not gated).
	s.BeginShutdown()
	resp, _ := post(t, client, ts.URL, body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining eval: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	listReq, _ := http.NewRequest("GET", ts.URL+"/docs", nil)
	listResp, err := client.Do(listReq)
	if err != nil {
		t.Fatalf("GET /docs while draining: %v", err)
	}
	listResp.Body.Close()
	if listResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /docs while draining: %d, want 200 (metadata is not gated)", listResp.StatusCode)
	}

	// Shutdown leaves no goroutines behind: the idle pool drains back to
	// the pre-server count (with slack for runtime/test goroutines).
	ts.Close()
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}

// TestQueueWaitDeadline: a request whose deadline expires while queued is
// shed as 429 — it never evaluates, because it has no budget left.
func TestQueueWaitDeadline(t *testing.T) {
	s := mustServer(t, Config{MaxInFlight: 1, MaxQueue: 4, QueueWait: 30 * time.Second})
	h := s.Handler()
	loadFleet(t, h)

	block := make(chan struct{})
	s.hook = func(*http.Request) { <-block }
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()

	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, client, ts.URL, `{"query": "descB", "mode": "bool"}`, nil)
	}()
	waitFor(t, "slot to fill", func() bool { return s.InFlight() == 1 })

	resp, _ := post(t, client, ts.URL, `{"query": "descB", "mode": "bool", "timeout_ms": 30}`, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued-past-deadline request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queued-past-deadline request: no Retry-After")
	}
	close(block)
	<-done
}

// TestPanicRecovery: a panicking evaluation becomes a structured 500, its
// admission slot is released, and sibling requests are untouched.
func TestPanicRecovery(t *testing.T) {
	s := mustServer(t, Config{MaxInFlight: 1})
	h := s.Handler()
	loadFleet(t, h)

	s.hook = func(r *http.Request) {
		if r.Header.Get("X-Boom") != "" {
			panic("evaluator exploded")
		}
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()
	body := `{"query": "descB", "mode": "bool"}`

	resp, raw := post(t, client, ts.URL, body, map[string]string{"X-Boom": "1"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking eval: %d, want 500", resp.StatusCode)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("500 body not structured: %q", raw)
	}

	// The slot was released (MaxInFlight is 1: a leak would wedge this)
	// and siblings are unaffected.
	resp, _ = post(t, client, ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: %d, want 200", resp.StatusCode)
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in-flight after panic: %d, want 0 (slot leaked)", got)
	}
}

// ndLine is a decoded NDJSON row line.
type ndLine struct {
	Doc       string  `json:"doc"`
	Sat       *bool   `json:"sat"`
	Nodes     []int32 `json:"nodes"`
	Tuple     []int32 `json:"tuple"`
	Done      bool    `json:"done"`
	Count     *int    `json:"count"`
	Truncated bool    `json:"truncated"`
	Error     string  `json:"error"`
}

// ndSum is the decoded final summary line.
type ndSum struct {
	Summary   bool   `json:"summary"`
	Mode      string `json:"mode"`
	Docs      int    `json:"docs"`
	Errors    int    `json:"errors"`
	Truncated int    `json:"truncated"`
	TimedOut  bool   `json:"timed_out"`
}

// ndjsonEval runs POST /eval with the NDJSON accept header and decodes
// every line: the row lines, then exactly one trailing summary.
func ndjsonEval(t *testing.T, h http.Handler, body string) (int, string, []ndLine, ndSum) {
	t.Helper()
	req := httptest.NewRequest("POST", "/eval", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)

	var lines []ndLine
	var sum ndSum
	sawSummary := false
	sc := bufio.NewScanner(rr.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		if sawSummary {
			t.Fatalf("line after summary: %q", sc.Text())
		}
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe.Summary {
			if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
				t.Fatalf("bad summary line %q: %v", sc.Text(), err)
			}
			sawSummary = true
			continue
		}
		var l ndLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if !sawSummary {
		t.Fatalf("stream has no summary terminator; %d lines", len(lines))
	}
	return rr.Code, rr.Header().Get("Content-Type"), lines, sum
}

// TestEvalNDJSON: the streaming path emits per-tuple lines, per-document
// terminators with counts, and a final summary — and honors the answer
// cap with explicit truncation markers.
func TestEvalNDJSON(t *testing.T) {
	h := testServer(t)
	loadFleet(t, h)

	code, ctype, lines, sum := ndjsonEval(t, h, `{"query": "descB"}`)
	if code != http.StatusOK || ctype != "application/x-ndjson" {
		t.Fatalf("status %d, content-type %q", code, ctype)
	}
	if sum.Mode != "tuples" || sum.Docs != 3 || sum.Errors != 0 || sum.Truncated != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	tuples, dones := map[string]int{}, map[string]int{}
	for _, l := range lines {
		switch {
		case l.Tuple != nil:
			tuples[l.Doc]++
		case l.Done:
			if l.Count == nil {
				t.Fatalf("done line without count: %+v", l)
			}
			dones[l.Doc] = *l.Count
			if l.Truncated {
				t.Fatalf("uncapped stream marked truncated: %+v", l)
			}
		default:
			t.Fatalf("unexpected line: %+v", l)
		}
	}
	want := map[string]int{"two": 2, "one": 1, "zero": 0}
	for doc, n := range want {
		if tuples[doc] != n || dones[doc] != n {
			t.Fatalf("doc %s: %d tuple lines, done count %d, want %d", doc, tuples[doc], dones[doc], n)
		}
	}

	// Bool mode streams one sat line per document.
	_, _, lines, _ = ndjsonEval(t, h, `{"query": "descB", "mode": "bool"}`)
	sats := map[string]bool{}
	for _, l := range lines {
		if l.Sat == nil {
			t.Fatalf("bool line without sat: %+v", l)
		}
		sats[l.Doc] = *l.Sat
	}
	if !sats["two"] || !sats["one"] || sats["zero"] {
		t.Fatalf("bool stream: %v", sats)
	}

	// Explicitly named missing documents are per-doc error rows.
	_, _, lines, _ = ndjsonEval(t, h, `{"query": "descB", "docs": ["two", "ghost"]}`)
	foundErr := false
	for _, l := range lines {
		if l.Doc == "ghost" && l.Error != "" {
			foundErr = true
		}
	}
	if !foundErr {
		t.Fatalf("missing doc not reported in stream: %+v", lines)
	}
}

// TestEvalNDJSONTruncation: max_answers caps each document's tuple
// stream; the done line and the summary both say so, and a document with
// exactly cap answers is NOT marked truncated.
func TestEvalNDJSONTruncation(t *testing.T) {
	h := testServer(t)
	loadFleet(t, h)

	_, _, lines, sum := ndjsonEval(t, h, `{"query": "descB", "max_answers": 1}`)
	if sum.Truncated != 1 {
		t.Fatalf("summary truncated = %d, want 1 (only doc two is cut)", sum.Truncated)
	}
	for _, l := range lines {
		switch {
		case l.Done && l.Doc == "two":
			if *l.Count != 1 || !l.Truncated {
				t.Fatalf("capped doc two: %+v", l)
			}
		case l.Done && l.Doc == "one":
			// Exactly at the cap: complete, not truncated.
			if *l.Count != 1 || l.Truncated {
				t.Fatalf("exact-cap doc one: %+v", l)
			}
		}
	}

	// The buffered path enforces the same cap with the same semantics.
	var resp evalResp
	rr := do(t, h, "POST", "/eval", `{"query": "descB", "max_answers": 1}`, &resp)
	wantStatus(t, rr, http.StatusOK)
	if resp.Truncated != 1 {
		t.Fatalf("buffered truncated count = %d, want 1", resp.Truncated)
	}
	for _, r := range resp.Results {
		switch r.Doc {
		case "two":
			if len(r.Tuples) != 1 || !r.Truncated {
				t.Fatalf("capped row two: %+v", r)
			}
		case "one":
			if len(r.Tuples) != 1 || r.Truncated {
				t.Fatalf("exact-cap row one: %+v", r)
			}
		case "zero":
			if len(r.Tuples) != 0 || r.Truncated {
				t.Fatalf("empty row zero: %+v", r)
			}
		}
	}
}

// TestMaxAnswersServerCap: the operator's -max-answers is a ceiling the
// request may tighten but never extend.
func TestMaxAnswersServerCap(t *testing.T) {
	s := mustServer(t, Config{MaxAnswers: 1})
	h := s.Handler()
	loadFleet(t, h)

	var resp evalResp
	wantStatus(t, do(t, h, "POST", "/eval", `{"query": "descB", "max_answers": 100}`, &resp), http.StatusOK)
	for _, r := range resp.Results {
		if r.Doc == "two" && (len(r.Tuples) != 1 || !r.Truncated) {
			t.Fatalf("client extended the server cap: %+v", r)
		}
	}
}
