package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// ---- JSON plumbing --------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// apiError is the uniform error body: {"error": "..."}.
type apiError struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes the request body as strict JSON into v. The body is
// already bounded by the withBodyLimit middleware; oversized bodies
// surface here as *http.MaxBytesError and map to a structured 413
// (shrink the payload), malformed ones to 400 (fix the payload).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}
