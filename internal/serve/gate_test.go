package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGateImmediateAdmission(t *testing.T) {
	g := NewGate(2, 4, 0)
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	r1()
	r2()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

// TestGateUnlimited: maxInFlight <= 0 admits everyone but still counts
// holders and still closes on Shutdown.
func TestGateUnlimited(t *testing.T) {
	g := NewGate(0, 0, 0)
	var rels []func()
	for i := 0; i < 100; i++ {
		r, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rels = append(rels, r)
	}
	if got := g.InFlight(); got != 100 {
		t.Fatalf("InFlight = %d, want 100", got)
	}
	for _, r := range rels {
		r()
	}
	g.Shutdown()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShutdown) {
		t.Fatalf("acquire after shutdown: %v, want ErrShutdown", err)
	}
}

// TestGateQueueFull: beyond maxInFlight + maxQueue, Acquire rejects
// immediately; and with maxQueue 0 there is no waiting at all.
func TestGateQueueFull(t *testing.T) {
	g := NewGate(1, 1, 0)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	queued := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		queued <- err
	}()
	waitFor(t, "waiter to enqueue", func() bool { return g.Queued() == 1 })

	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity acquire: %v, want ErrQueueFull", err)
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}

	g0 := NewGate(1, 0, 0)
	r0, _ := g0.Acquire(context.Background())
	defer r0()
	if _, err := g0.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("no-queue gate at saturation: %v, want ErrQueueFull", err)
	}
}

// TestGateFIFO: released slots go to waiters in arrival order, and a
// newcomer arriving while anyone is queued cannot overtake.
func TestGateFIFO(t *testing.T) {
	g := NewGate(1, 8, 0)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		// Sequence arrivals: each waiter is observably queued before the
		// next launches, so arrival order is deterministic.
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r, err := g.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			r()
		}(i)
		waitFor(t, "waiter to enqueue", func() bool { return g.Queued() == i+1 })
	}

	release()
	wg.Wait()
	for i, id := range order {
		if id != i {
			t.Fatalf("admission order = %v, want FIFO", order)
		}
	}
}

// TestGateWaitDeadline: a queued caller gives up when its context dies
// (ErrQueueWait) and a maxWait cap bounds the wait independently.
func TestGateWaitDeadline(t *testing.T) {
	g := NewGate(1, 8, 0)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, ErrQueueWait) {
		t.Fatalf("deadline acquire: %v, want ErrQueueWait", err)
	}
	if got := g.Queued(); got != 0 {
		t.Fatalf("withdrawn waiter still queued: %d", got)
	}

	gw := NewGate(1, 8, 20*time.Millisecond)
	r2, err := gw.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer r2()
	start := time.Now()
	if _, err := gw.Acquire(context.Background()); !errors.Is(err, ErrQueueWait) {
		t.Fatalf("maxWait acquire: %v, want ErrQueueWait", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("maxWait did not bound the wait: %v", elapsed)
	}
}

// TestGateShutdownWakesQueue: Shutdown wakes every queued waiter with
// ErrShutdown; slots already held release normally.
func TestGateShutdownWakesQueue(t *testing.T) {
	g := NewGate(1, 8, 0)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := g.Acquire(context.Background())
			errs <- err
		}()
		waitFor(t, "waiter to enqueue", func() bool { return g.Queued() == i+1 })
	}

	g.Shutdown()
	g.Shutdown() // idempotent
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, ErrShutdown) {
			t.Fatalf("queued waiter woke with %v, want ErrShutdown", err)
		}
	}
	if !g.Closed() {
		t.Fatal("Closed() = false after Shutdown")
	}
	release() // held slot releases without panic into the empty queue
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after final release = %d, want 0", got)
	}
}
