package serve

import (
	"net/http"
	"sort"

	cqtrees "repro"
)

// ---- queries --------------------------------------------------------------

// queryInfo describes one registered query.
type queryInfo struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Arity  int    `json:"arity"`
	Plan   string `json:"plan"`
}

func info(name string, sq *storedQuery) queryInfo {
	return queryInfo{
		Name:   name,
		Source: sq.src,
		Arity:  len(sq.pq.Query().Head),
		Plan:   sq.pq.Plan().String(),
	}
}

func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]queryInfo, 0, len(s.queries))
	for name, sq := range s.queries {
		infos = append(infos, info(name, sq))
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"queries": infos})
}

func (s *Server) handleGetQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	sq, ok := s.queries[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	writeJSON(w, http.StatusOK, info(name, sq))
}

type putQueryRequest struct {
	Query string `json:"query"`
}

func (s *Server) handlePutQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req putQueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "query is required")
		return
	}
	pq, err := cqtrees.Compile(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, "compile: %v", err)
		return
	}
	sq := &storedQuery{src: req.Query, pq: pq}
	s.mu.Lock()
	_, replaced := s.queries[name]
	s.queries[name] = sq
	s.mu.Unlock()
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, info(name, sq))
}

func (s *Server) handleDeleteQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.queries[name]
	delete(s.queries, name)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
