package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	cqtrees "repro"
)

// The NDJSON streaming path: POST /eval with Accept: application/x-ndjson
// answers 200 immediately and emits one JSON object per line as results
// are produced, so the server's memory footprint stays flat however large
// the answer relation is — nothing is ever materialized beyond one tuple.
//
// Line protocol (every line carries "doc" except the final summary):
//
//	{"doc": "a", "sat": true}                      one per doc, mode bool
//	{"doc": "a", "nodes": [1, 2]}                  one per doc, mode nodes
//	{"doc": "a", "tuple": [1, 2]}                  one per answer tuple, mode tuples
//	{"doc": "a", "done": true, "count": 2}         per-doc terminator, mode tuples
//	                                               (+ "truncated": true at the cap)
//	{"doc": "a", "error": "..."}                   per-doc failure
//	{"summary": true, "mode": ..., "docs": N, ...} final line, always last
//
// A missing summary line means the stream was cut (panic, connection
// loss): consumers must treat such a response as incomplete. Because the
// status is committed before evaluation, deadline expiry cannot become a
// 504 here — the summary carries "timed_out": true instead.
//
// Documents evaluate sequentially in list order (workers is ignored):
// interleaving tuple streams from a fan-out pool would force per-document
// buffering, which is exactly what this path exists to avoid.

// ndRow is one streamed NDJSON line.
type ndRow struct {
	Doc       string           `json:"doc"`
	Sat       *bool            `json:"sat,omitempty"`
	Nodes     []cqtrees.NodeID `json:"nodes,omitempty"`
	Tuple     []cqtrees.NodeID `json:"tuple,omitempty"`
	Done      bool             `json:"done,omitempty"`
	Count     *int             `json:"count,omitempty"`
	Truncated bool             `json:"truncated,omitempty"`
	Error     string           `json:"error,omitempty"`
	// Reason mirrors evalResult.Reason: "quarantined" or "unavailable"
	// when the error came from the persistence layer, empty otherwise.
	Reason string `json:"reason,omitempty"`
}

// ndSummary is the final stream line.
type ndSummary struct {
	Summary   bool   `json:"summary"`
	Mode      string `json:"mode"`
	Plan      string `json:"plan"`
	Docs      int    `json:"docs"`
	Errors    int    `json:"errors"`
	Truncated int    `json:"truncated,omitempty"`
	TimedOut  bool   `json:"timed_out,omitempty"`
}

// flushEvery bounds how many tuple lines may sit in the buffer before a
// forced flush: progress stays visible to the client and the buffered
// bytes stay bounded even inside one enormous document.
const flushEvery = 4096

func (s *Server) evalNDJSON(ctx context.Context, w http.ResponseWriter, req evalRequest, pq *cqtrees.PreparedQuery, mode string, start time.Time) {
	explicit := len(req.Docs) > 0
	docs := req.Docs
	if !explicit {
		docs = s.corpus.Names()
	}
	capN := s.answerCap(req.MaxAnswers)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 32<<10)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		_ = bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit := func(v any) { _ = enc.Encode(v) }

	sum := ndSummary{Summary: true, Mode: mode, Plan: pq.Plan().String()}
	for _, name := range docs {
		if ctx.Err() != nil {
			break // summary reports timed_out below
		}
		doc, err := s.corpus.GetErr(name)
		if err == nil {
			s.metrics.evalsTotal.With(strategySlug(pq.Plan())).Inc()
		} else {
			// Same contract as the buffered path: an explicitly named
			// missing document is an error row; an implicitly selected one
			// that vanished mid-batch is silently skipped. Hydration
			// failures produce rows either way — the document exists, the
			// persistence layer just cannot deliver it — with the same
			// reason classification as the buffered path. The status is
			// already committed 200, so the reason is the whole signal here.
			reason, _ := reasonOf(err)
			if explicit || reason != "" {
				emit(ndRow{Doc: name, Error: err.Error(), Reason: reason})
				sum.Docs++
				sum.Errors++
			}
			continue
		}
		switch mode {
		case "bool":
			sat, err := pq.BoolErr(doc, cqtrees.WithContext(ctx))
			if err != nil {
				emit(ndRow{Doc: name, Error: err.Error()})
				sum.Errors++
			} else {
				emit(ndRow{Doc: name, Sat: &sat})
			}
			sum.Docs++
		case "nodes":
			nodes, err := pq.NodesErr(doc, cqtrees.WithContext(ctx))
			if err != nil {
				emit(ndRow{Doc: name, Error: err.Error()})
				sum.Errors++
			} else {
				emit(ndRow{Doc: name, Nodes: nodes})
			}
			sum.Docs++
		case "tuples":
			n, truncated := 0, false
			for tuple := range pq.Tuples(doc, cqtrees.WithContext(ctx)) {
				// One-past-cap detection: a document with exactly capN
				// answers is complete, not truncated.
				if capN > 0 && n >= capN {
					truncated = true
					break
				}
				emit(ndRow{Doc: name, Tuple: tuple})
				n++
				if n%flushEvery == 0 {
					flush()
				}
			}
			// The iterator goes silent on cancellation; distinguish a
			// finished stream from a cut one afterwards.
			if err := ctx.Err(); err != nil && !truncated {
				emit(ndRow{Doc: name, Error: err.Error()})
				sum.Errors++
				sum.Docs++
			} else {
				count := n
				emit(ndRow{Doc: name, Done: true, Count: &count, Truncated: truncated})
				sum.Docs++
				if truncated {
					sum.Truncated++
				}
			}
		}
		flush()
	}
	sum.TimedOut = errors.Is(ctx.Err(), context.DeadlineExceeded)
	outcome := "ok"
	if sum.TimedOut {
		outcome = "timeout"
	}
	s.metrics.observeEval(start, pq, outcome)
	emit(sum)
	flush()
}
