package serve

import (
	"log"
	"net/http"
	"runtime/debug"
)

// statusWriter tracks whether the handler has started writing the
// response, so the panic recoverer knows whether a clean 500 is still
// possible. It forwards Flush so streaming handlers keep working through
// the middleware stack.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRecover converts a handler panic into a structured 500 for that one
// request instead of killing the whole server's process: sibling requests
// keep their workers, the connection is answered (when the response has
// not already started streaming), and the stack is logged for diagnosis.
// http.ErrAbortHandler passes through — it is net/http's own
// drop-this-connection sentinel, not an evaluator bug.
func withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			log.Printf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			if !sw.wrote {
				httpError(sw, http.StatusInternalServerError, "internal error: %v", p)
			}
			// Mid-stream panics cannot be turned into a status line any
			// more; net/http closes the connection, which truncates the
			// stream — an NDJSON consumer notices the missing summary line.
		}()
		next.ServeHTTP(sw, r)
	})
}

// withBodyLimit installs http.MaxBytesReader on every request body before
// any handler touches it, so an oversized upload — a multi-gigabyte XML
// document, say — is cut off at the limit instead of being read fully
// into memory before any check. Handlers that decode bodies translate the
// resulting *http.MaxBytesError into a structured 413 (see decodeBody).
func withBodyLimit(limit int64, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil && r.Body != http.NoBody {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		next.ServeHTTP(w, r)
	})
}
