package tree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseXML reads an XML document and returns its element tree. Element
// names become node labels (one label per element). Attributes become
// child nodes labeled "@name" with a further child labeled with the
// attribute value, mirroring how the paper treats typed child axes such as
// attribute as "redundant with the child axis and unary relations" (§1.1).
// Text content is ignored: the paper's trees are navigation-only.
func ParseXML(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder(64)
	var stack []NodeID
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tree: xml: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			parent := NilNode
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			} else if b.Len() > 0 {
				return nil, fmt.Errorf("tree: xml: multiple document roots")
			}
			id := b.AddNode(parent, el.Name.Local)
			for _, attr := range el.Attr {
				an := b.AddNode(id, "@"+attr.Name.Local)
				b.AddNode(an, attr.Value)
			}
			stack = append(stack, id)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("tree: xml: unbalanced end element %s", el.Name.Local)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("tree: xml: %d unclosed elements", len(stack))
	}
	if b.Len() == 0 {
		return nil, fmt.Errorf("tree: xml: no elements")
	}
	return b.Build(), nil
}

// ParseXMLString is ParseXML on a string.
func ParseXMLString(s string) (*Tree, error) { return ParseXML(strings.NewReader(s)) }

// WriteXML renders t as an XML document. For multi-labeled nodes the
// pre-order-first label becomes the element name and remaining labels are
// emitted in a "labels" attribute; unlabeled nodes become <node/>.
func WriteXML(w io.Writer, t *Tree) error {
	if t.Len() == 0 {
		return fmt.Errorf("tree: xml: cannot serialize empty tree")
	}
	return writeXMLNode(w, t, t.Root(), 0)
}

func writeXMLNode(w io.Writer, t *Tree, v NodeID, depth int) error {
	indent := strings.Repeat("  ", depth)
	name := "node"
	extra := ""
	ls := t.Labels(v)
	if len(ls) > 0 {
		name = xmlName(ls[0])
		if len(ls) > 1 {
			rest := make([]string, len(ls)-1)
			copy(rest, ls[1:])
			sort.Strings(rest)
			extra = fmt.Sprintf(" labels=%q", strings.Join(rest, " "))
		}
	}
	kids := t.Children(v)
	if len(kids) == 0 {
		_, err := fmt.Fprintf(w, "%s<%s%s/>\n", indent, name, extra)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s%s>\n", indent, name, extra); err != nil {
		return err
	}
	for _, c := range kids {
		if err := writeXMLNode(w, t, c, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, name)
	return err
}

// xmlName sanitizes a label into a valid XML element name.
func xmlName(s string) string {
	var sb strings.Builder
	for i, r := range s {
		ok := r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "node"
	}
	return sb.String()
}
