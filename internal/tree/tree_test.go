package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTree(t *testing.T, src string) *Tree {
	t.Helper()
	tr, err := ParseTerm(src)
	if err != nil {
		t.Fatalf("ParseTerm(%q): %v", src, err)
	}
	return tr
}

func TestSingleNode(t *testing.T) {
	tr := mustTree(t, "A")
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if tr.Root() != 0 {
		t.Fatalf("Root = %d", tr.Root())
	}
	if tr.Parent(0) != NilNode {
		t.Errorf("Parent(root) = %d, want NilNode", tr.Parent(0))
	}
	if !tr.HasLabel(0, "A") || tr.HasLabel(0, "B") {
		t.Errorf("labels wrong: %v", tr.Labels(0))
	}
	if tr.Height() != 0 {
		t.Errorf("Height = %d, want 0", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBasicShape(t *testing.T) {
	// A(B(D,E),C)
	tr := mustTree(t, "A(B(D,E),C)")
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
	root := tr.Root()
	kids := tr.Children(root)
	if len(kids) != 2 {
		t.Fatalf("root children = %d, want 2", len(kids))
	}
	b, c := kids[0], kids[1]
	if !tr.HasLabel(b, "B") || !tr.HasLabel(c, "C") {
		t.Fatalf("child labels wrong")
	}
	if tr.NextSibling(b) != c {
		t.Errorf("NextSibling(B) != C")
	}
	if tr.PrevSibling(c) != b {
		t.Errorf("PrevSibling(C) != B")
	}
	if tr.NextSibling(c) != NilNode {
		t.Errorf("NextSibling(C) != nil")
	}
	if tr.PrevSibling(b) != NilNode {
		t.Errorf("PrevSibling(B) != nil")
	}
	d := tr.Children(b)[0]
	if tr.Depth(d) != 2 {
		t.Errorf("Depth(D) = %d, want 2", tr.Depth(d))
	}
	if tr.SubtreeSize(b) != 3 {
		t.Errorf("SubtreeSize(B) = %d, want 3", tr.SubtreeSize(b))
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestOrders(t *testing.T) {
	// Pre-order of A(B(D,E),C): A B D E C
	// Post-order:               D E B C A
	// BFLR:                     A B C D E
	tr := mustTree(t, "A(B(D,E),C)")
	wantPre := []string{"A", "B", "D", "E", "C"}
	wantPost := []string{"D", "E", "B", "C", "A"}
	wantBFLR := []string{"A", "B", "C", "D", "E"}
	for r := int32(0); r < 5; r++ {
		if got := tr.Labels(tr.ByPre(r))[0]; got != wantPre[r] {
			t.Errorf("pre rank %d = %s, want %s", r, got, wantPre[r])
		}
		if got := tr.Labels(tr.ByPost(r))[0]; got != wantPost[r] {
			t.Errorf("post rank %d = %s, want %s", r, got, wantPost[r])
		}
		if got := tr.Labels(tr.ByBFLR(r))[0]; got != wantBFLR[r] {
			t.Errorf("bflr rank %d = %s, want %s", r, got, wantBFLR[r])
		}
	}
}

func TestAncestry(t *testing.T) {
	tr := mustTree(t, "A(B(D,E(F)),C)")
	byLabel := func(a string) NodeID { return tr.NodesWithLabel(a)[0] }
	a, b, d, e, f, c := byLabel("A"), byLabel("B"), byLabel("D"), byLabel("E"), byLabel("F"), byLabel("C")
	cases := []struct {
		u, v       NodeID
		anc, ancOS bool
	}{
		{a, a, false, true},
		{a, f, true, true},
		{b, f, true, true},
		{e, f, true, true},
		{d, f, false, false},
		{f, a, false, false},
		{c, f, false, false},
		{a, c, true, true},
	}
	for _, tc := range cases {
		if got := tr.IsAncestor(tc.u, tc.v); got != tc.anc {
			t.Errorf("IsAncestor(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.anc)
		}
		if got := tr.IsAncestorOrSelf(tc.u, tc.v); got != tc.ancOS {
			t.Errorf("IsAncestorOrSelf(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.ancOS)
		}
	}
	if got := tr.AncestorAtDepth(f, 0); got != a {
		t.Errorf("AncestorAtDepth(F,0) = %d, want %d", got, a)
	}
	if got := tr.AncestorAtDepth(f, 1); got != b {
		t.Errorf("AncestorAtDepth(F,1) = %d, want %d", got, b)
	}
	if got := tr.AncestorAtDepth(f, 2); got != e {
		t.Errorf("AncestorAtDepth(F,2) = %d, want %d", got, e)
	}
	if got := tr.AncestorAtDepth(f, 9); got != NilNode {
		t.Errorf("AncestorAtDepth(F,9) = %d, want NilNode", got)
	}
}

func TestMultiLabels(t *testing.T) {
	tr := mustTree(t, "X|Y|X(Z)")
	if got := tr.Labels(tr.Root()); len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Fatalf("Labels = %v, want [X Y]", got)
	}
	if len(tr.NodesWithLabel("X")) != 1 || len(tr.NodesWithLabel("Y")) != 1 {
		t.Errorf("label index wrong")
	}
	if len(tr.NodesWithLabel("missing")) != 0 {
		t.Errorf("missing label should have no nodes")
	}
	alpha := tr.Alphabet()
	if len(alpha) != 3 {
		t.Errorf("Alphabet = %v", alpha)
	}
}

func TestUnlabeledNodes(t *testing.T) {
	tr := mustTree(t, "_(A,_)")
	if len(tr.Labels(tr.Root())) != 0 {
		t.Errorf("root should be unlabeled: %v", tr.Labels(tr.Root()))
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "(", "A(", "A(B", "A(B,", "A)B", "A(B))", "A B", "A(,B)", "|A",
	}
	for _, src := range bad {
		if _, err := ParseTerm(src); err == nil {
			t.Errorf("ParseTerm(%q) should fail", src)
		}
	}
}

func TestParseWhitespace(t *testing.T) {
	a := mustTree(t, " A ( B , C ( D ) ) ")
	b := mustTree(t, "A(B,C(D))")
	if !a.Equal(b) {
		t.Errorf("whitespace-insensitive parse failed")
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"A",
		"A(B,C)",
		"A(B(D,E),C)",
		"X|Y(Z,_(W))",
		"_",
		"A(A(A(A)))",
	}
	for _, src := range srcs {
		tr := mustTree(t, src)
		back, err := ParseTerm(tr.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, tr.String(), err)
		}
		if !tr.Equal(back) {
			t.Errorf("round-trip mismatch for %q: %q", src, tr.String())
		}
	}
}

func TestEqual(t *testing.T) {
	a := mustTree(t, "A(B,C)")
	b := mustTree(t, "A(B,C)")
	c := mustTree(t, "A(C,B)")
	d := mustTree(t, "A(B(C))")
	if !a.Equal(b) {
		t.Errorf("equal trees not Equal")
	}
	if a.Equal(c) {
		t.Errorf("trees with different child order Equal")
	}
	if a.Equal(d) {
		t.Errorf("trees with different shapes Equal")
	}
}

func TestWalk(t *testing.T) {
	tr := mustTree(t, "A(B(D,E),C)")
	var seen []string
	tr.Walk(func(v NodeID) bool {
		seen = append(seen, tr.Labels(v)[0])
		return true
	})
	want := "ABDEC"
	got := ""
	for _, s := range seen {
		got += s
	}
	if got != want {
		t.Errorf("Walk order %q, want %q", got, want)
	}
	// Pruned walk: skip B's subtree.
	seen = nil
	tr.Walk(func(v NodeID) bool {
		seen = append(seen, tr.Labels(v)[0])
		return tr.Labels(v)[0] != "B"
	})
	got = ""
	for _, s := range seen {
		got += s
	}
	if got != "ABC" {
		t.Errorf("pruned Walk order %q, want ABC", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("two roots", func() {
		b := NewBuilder(2)
		b.AddNode(NilNode, "A")
		b.AddNode(NilNode, "B")
	})
	assertPanics("bad parent", func() {
		b := NewBuilder(2)
		b.AddNode(NilNode, "A")
		b.AddNode(7, "B")
	})
	assertPanics("build twice", func() {
		b := NewBuilder(1)
		b.AddNode(NilNode, "A")
		b.Build()
		b.Build()
	})
	assertPanics("add after build", func() {
		b := NewBuilder(1)
		b.AddNode(NilNode, "A")
		b.Build()
		b.AddNode(0, "B")
	})
}

func TestPathConstructors(t *testing.T) {
	p := PathOfLabels("A", "", "B")
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.Height() != 2 {
		t.Errorf("Height = %d, want 2", p.Height())
	}
	mid := p.Children(p.Root())[0]
	if len(p.Labels(mid)) != 0 {
		t.Errorf("middle node should be unlabeled")
	}
	bottom := p.Children(mid)[0]
	if !p.HasLabel(bottom, "B") {
		t.Errorf("bottom should be B")
	}
}

func TestCombine(t *testing.T) {
	t1 := mustTree(t, "A(B)")
	t2 := mustTree(t, "C")
	c := Combine([]string{"R"}, t1, t2)
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	if !c.HasLabel(c.Root(), "R") {
		t.Errorf("root label wrong")
	}
	kids := c.Children(c.Root())
	if len(kids) != 2 || !c.HasLabel(kids[0], "A") || !c.HasLabel(kids[1], "C") {
		t.Errorf("combined children wrong")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestClone(t *testing.T) {
	tr := mustTree(t, "A(B(C),D)")
	cp := Clone(tr)
	if !tr.Equal(cp) {
		t.Errorf("clone not equal")
	}
	if err := cp.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRandomTreesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(200)
		tr := Random(rng, DefaultRandomConfig(n))
		if tr.Len() != n {
			t.Fatalf("Random tree has %d nodes, want %d", tr.Len(), n)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
}

func TestRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := []string{"A", "B"}
	for _, shape := range []RandomShape{ShapeBushy, ShapeBinary, ShapeDeep, ShapeWide} {
		tr := RandomWithShape(rng, 100, shape, alpha)
		if tr.Len() != 100 {
			t.Fatalf("shape %d: %d nodes", shape, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("shape %d: %v", shape, err)
		}
	}
	deep := RandomWithShape(rng, 100, ShapeDeep, alpha)
	wide := RandomWithShape(rng, 100, ShapeWide, alpha)
	if deep.Height() <= wide.Height() {
		t.Errorf("deep height %d should exceed wide height %d", deep.Height(), wide.Height())
	}
}

func TestQuickRandomTreeInvariants(t *testing.T) {
	// Property: for random trees, orders are consistent with the
	// defining traversals and preEnd bounds subtree pre ranks.
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%150 + 1
		rng := rand.New(rand.NewSource(seed))
		tr := Random(rng, DefaultRandomConfig(n))
		if tr.Validate() != nil {
			return false
		}
		for v := NodeID(0); int(v) < tr.Len(); v++ {
			// Parent precedes child in pre and BFLR; child precedes
			// parent in post.
			if p := tr.Parent(v); p != NilNode {
				if tr.Pre(p) >= tr.Pre(v) || tr.BFLR(p) >= tr.BFLR(v) || tr.Post(p) <= tr.Post(v) {
					return false
				}
			}
			if tr.PreEnd(v) < tr.Pre(v) {
				return false
			}
			if int(tr.PreEnd(v)) >= tr.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 1
		rng := rand.New(rand.NewSource(seed))
		tr := Random(rng, DefaultRandomConfig(n))
		return RoundTrip(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStructureSize(t *testing.T) {
	tr := mustTree(t, "A(B,C)")
	// 3 nodes + 3 labels + 2 child pairs + 1 next-sibling pair = 9
	if got := tr.StructureSize(); got != 9 {
		t.Errorf("StructureSize = %d, want 9", got)
	}
}

func TestSubtreeIntervalCharacterizesDescendants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Random(rng, DefaultRandomConfig(80))
	// Reference: walk up via Parent.
	isAnc := func(u, v NodeID) bool {
		for p := tr.Parent(v); p != NilNode; p = tr.Parent(p) {
			if p == u {
				return true
			}
		}
		return false
	}
	for u := NodeID(0); int(u) < tr.Len(); u++ {
		for v := NodeID(0); int(v) < tr.Len(); v++ {
			if got, want := tr.IsAncestor(u, v), isAnc(u, v); got != want {
				t.Fatalf("IsAncestor(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestNodesIterator(t *testing.T) {
	tr := mustTree(t, "A(B(D,E),C)")
	var got []NodeID
	for v := range tr.Nodes() {
		got = append(got, v)
	}
	if len(got) != tr.Len() {
		t.Fatalf("Nodes yielded %d nodes, want %d", len(got), tr.Len())
	}
	for r, v := range got {
		if tr.Pre(v) != int32(r) {
			t.Fatalf("Nodes position %d holds node %d with pre rank %d", r, v, tr.Pre(v))
		}
	}
	// Early exit stops the whole iteration (no subtree skipping).
	count := 0
	for range tr.Nodes() {
		count++
		if count == 2 {
			break
		}
	}
	if count != 2 {
		t.Errorf("early-exit consumed %d nodes, want 2", count)
	}
}
