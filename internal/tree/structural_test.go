package tree

import (
	"math/rand"
	"testing"
)

func TestWithStructuralLabels(t *testing.T) {
	tr := WithStructuralLabels(MustParseTerm("A(B(D,E),C)"))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if !tr.HasLabel(root, LabelRoot) {
		t.Errorf("root missing @root")
	}
	if tr.HasLabel(root, LabelLeaf) || tr.HasLabel(root, LabelFirstChild) {
		t.Errorf("root has wrong structural labels: %v", tr.Labels(root))
	}
	b := tr.NodesWithLabel("B")[0]
	if !tr.HasLabel(b, LabelFirstChild) || tr.HasLabel(b, LabelLastChild) {
		t.Errorf("B labels: %v", tr.Labels(b))
	}
	c := tr.NodesWithLabel("C")[0]
	if !tr.HasLabel(c, LabelLastChild) || !tr.HasLabel(c, LabelLeaf) {
		t.Errorf("C labels: %v", tr.Labels(c))
	}
	d := tr.NodesWithLabel("D")[0]
	if !tr.HasLabel(d, LabelLeaf) || !tr.HasLabel(d, LabelFirstChild) {
		t.Errorf("D labels: %v", tr.Labels(d))
	}
}

func TestWithStructuralLabelsOnlyChild(t *testing.T) {
	tr := WithStructuralLabels(MustParseTerm("A(B)"))
	b := tr.NodesWithLabel("B")[0]
	// An only child is both first and last.
	if !tr.HasLabel(b, LabelFirstChild) || !tr.HasLabel(b, LabelLastChild) {
		t.Errorf("only child labels: %v", tr.Labels(b))
	}
}

func TestWithStructuralLabelsCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		orig := Random(rng, DefaultRandomConfig(1+rng.Intn(60)))
		tr := WithStructuralLabels(orig)
		if tr.Len() != orig.Len() {
			t.Fatalf("structural labeling changed the shape")
		}
		if got := len(tr.NodesWithLabel(LabelRoot)); got != 1 {
			t.Errorf("@root count = %d", got)
		}
		// #first == #last == number of internal nodes.
		internal := 0
		for v := NodeID(0); int(v) < tr.Len(); v++ {
			if tr.NumChildren(v) > 0 {
				internal++
			}
		}
		if got := len(tr.NodesWithLabel(LabelFirstChild)); got != internal {
			t.Errorf("@first count = %d, want %d", got, internal)
		}
		if got := len(tr.NodesWithLabel(LabelLastChild)); got != internal {
			t.Errorf("@last count = %d, want %d", got, internal)
		}
		leaves := tr.Len() - internal
		if got := len(tr.NodesWithLabel(LabelLeaf)); got != leaves {
			t.Errorf("@leaf count = %d, want %d", got, leaves)
		}
	}
}

func TestWithStructuralLabelsEmpty(t *testing.T) {
	if got := WithStructuralLabels(NewBuilder(0).Build()); got.Len() != 0 {
		t.Errorf("empty tree should stay empty")
	}
}
