package tree

import (
	"fmt"
	"sort"
)

// Builder incrementally constructs a Tree. Nodes are added top-down: the
// first AddNode call with parent NilNode creates the root; subsequent calls
// attach children in left-to-right order. Call Build once at the end.
//
// The zero Builder is ready to use.
type Builder struct {
	parent []NodeID
	kids   [][]NodeID
	labels [][]string
	built  bool
}

// NewBuilder returns a Builder with capacity hints for n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{
		parent: make([]NodeID, 0, n),
		kids:   make([][]NodeID, 0, n),
		labels: make([][]string, 0, n),
	}
}

// AddNode appends a node with the given labels as the new rightmost child
// of parent (or as root if parent is NilNode and no root exists yet) and
// returns its NodeID.
//
// AddNode panics if parent is out of range, if a second root is added, or
// if the builder was already consumed by Build.
func (b *Builder) AddNode(parent NodeID, labels ...string) NodeID {
	if b.built {
		panic("tree: Builder used after Build")
	}
	id := NodeID(len(b.parent))
	if parent == NilNode {
		if id != 0 {
			panic("tree: Builder already has a root")
		}
	} else {
		if parent < 0 || int(parent) >= len(b.parent) {
			panic(fmt.Sprintf("tree: AddNode parent %d out of range", parent))
		}
	}
	ls := normalizeLabels(labels)
	b.parent = append(b.parent, parent)
	b.kids = append(b.kids, nil)
	b.labels = append(b.labels, ls)
	if parent != NilNode {
		b.kids[parent] = append(b.kids[parent], id)
	}
	return id
}

// AddLabel adds a label to an existing node (deduplicated).
func (b *Builder) AddLabel(v NodeID, label string) {
	if b.built {
		panic("tree: Builder used after Build")
	}
	b.labels[v] = normalizeLabels(append(b.labels[v], label))
}

// Len returns the number of nodes added so far.
func (b *Builder) Len() int { return len(b.parent) }

// Build finalizes and returns the Tree. The Builder must not be reused.
func (b *Builder) Build() *Tree {
	if b.built {
		panic("tree: Build called twice")
	}
	b.built = true
	t := &Tree{parent: b.parent, kids: b.kids, labels: b.labels}
	for i := range t.kids {
		if t.kids[i] == nil {
			t.kids[i] = []NodeID{}
		}
	}
	t.finish()
	return t
}

func normalizeLabels(labels []string) []string {
	if len(labels) == 0 {
		return []string{}
	}
	ls := make([]string, 0, len(labels))
	ls = append(ls, labels...)
	sort.Strings(ls)
	out := ls[:0]
	for i, a := range ls {
		if i == 0 || ls[i-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// Path returns a "path structure" (§7 of the paper): a tree whose Child
// graph is a single downward path. labelSets[i] is the label set of the
// node at depth i (may be empty). The root is the node at depth 0.
func Path(labelSets ...[]string) *Tree {
	b := NewBuilder(len(labelSets))
	cur := NilNode
	for _, ls := range labelSets {
		cur = b.AddNode(cur, ls...)
	}
	return b.Build()
}

// PathOfLabels returns a path structure where node i carries the single
// label labels[i]; an empty string yields an unlabeled node.
func PathOfLabels(labels ...string) *Tree {
	sets := make([][]string, len(labels))
	for i, a := range labels {
		if a == "" {
			sets[i] = nil
		} else {
			sets[i] = []string{a}
		}
	}
	return Path(sets...)
}

// Combine builds a new tree with a fresh root (carrying rootLabels) whose
// subtrees are copies of the given trees, in order. This implements the
// "two copies of T under a common root" constructions of §5.
func Combine(rootLabels []string, subtrees ...*Tree) *Tree {
	n := 1
	for _, s := range subtrees {
		n += s.Len()
	}
	b := NewBuilder(n)
	root := b.AddNode(NilNode, rootLabels...)
	for _, s := range subtrees {
		copySubtree(b, s, s.Root(), root)
	}
	return b.Build()
}

// copySubtree copies the subtree of src rooted at v under parent in b.
func copySubtree(b *Builder, src *Tree, v NodeID, parent NodeID) NodeID {
	id := b.AddNode(parent, src.Labels(v)...)
	for _, c := range src.Children(v) {
		copySubtree(b, src, c, id)
	}
	return id
}

// Clone returns a deep copy of t (useful when callers want to own slices).
func Clone(t *Tree) *Tree {
	if t.Len() == 0 {
		return NewBuilder(0).Build()
	}
	b := NewBuilder(t.Len())
	copySubtree(b, t, t.Root(), NilNode)
	return b.Build()
}
