package tree

import (
	"fmt"
	"unsafe"

	"repro/internal/snapshot"
)

// This file is the Tree half of the document snapshot format: every
// precomputed order of the tree is written as a flat little-endian
// section, so loading a document skips both the parse and finish().
// The container (magic, version, checksum, zero-copy views) lives in
// internal/snapshot; the index half in internal/consistency.

// nodeIDs reinterprets a []int32 as []NodeID (identical layout); used to
// adopt zero-copy views from the snapshot reader without a copy.
func nodeIDs(v []int32) []NodeID {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*NodeID)(unsafe.Pointer(unsafe.SliceData(v))), len(v))
}

// int32s is the inverse reinterpretation, for encoding.
func int32s(v []NodeID) []int32 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(v))), len(v))
}

// SnapshotMeta returns the document meta header for t.
func (t *Tree) SnapshotMeta() snapshot.Meta {
	return snapshot.Meta{Nodes: t.size, Labels: len(t.labelIdx), Structure: t.structure}
}

// AppendSections writes t's sections into w. The encoding is fully
// deterministic (label names in alphabet order), which the golden-fixture
// compatibility test relies on: same tree, same bytes.
func (t *Tree) AppendSections(w *snapshot.Writer) {
	n := t.size
	w.Int32s(snapshot.TagTreeParent, int32s(t.parent))

	// Child lists, flattened parent-major: kids[v] = flat[off[v]:off[v+1]].
	kidsOff := make([]int32, n+1)
	var flat []NodeID
	if n > 0 {
		flat = make([]NodeID, 0, n-1)
	}
	for v := 0; v < n; v++ {
		kidsOff[v] = int32(len(flat))
		flat = append(flat, t.kids[v]...)
	}
	kidsOff[n] = int32(len(flat))
	w.Int32s(snapshot.TagTreeKidsOff, kidsOff)
	w.Int32s(snapshot.TagTreeKidsFlat, int32s(flat))

	w.Int32s(snapshot.TagTreeSibIndex, t.sibIndex)
	w.Int32s(snapshot.TagTreePre, t.pre)
	w.Int32s(snapshot.TagTreePost, t.post)
	w.Int32s(snapshot.TagTreeBFLR, t.bflr)
	w.Int32s(snapshot.TagTreeDepth, t.depth)
	w.Int32s(snapshot.TagTreePreEnd, t.preEnd)
	w.Int32s(snapshot.TagTreeByPre, int32s(t.byPre))
	w.Int32s(snapshot.TagTreeByPost, int32s(t.byPost))
	w.Int32s(snapshot.TagTreeByBFLR, int32s(t.byBFLR))

	// Label table: distinct names in alphabet (sorted) order, then each
	// node's labels as ids into that table. Node label sets are sorted, so
	// the id lists are sorted too and HasLabel's binary search survives.
	names := t.Alphabet()
	id := make(map[string]int32, len(names))
	nameOff := make([]int32, len(names)+1)
	var nameBytes []byte
	for i, a := range names {
		id[a] = int32(i)
		nameOff[i] = int32(len(nameBytes))
		nameBytes = append(nameBytes, a...)
	}
	nameOff[len(names)] = int32(len(nameBytes))
	labelOff := make([]int32, n+1)
	var labelIDs []int32
	for v := 0; v < n; v++ {
		labelOff[v] = int32(len(labelIDs))
		for _, a := range t.labels[v] {
			labelIDs = append(labelIDs, id[a])
		}
	}
	labelOff[n] = int32(len(labelIDs))
	w.Bytes(snapshot.TagTreeNames, nameBytes)
	w.Int32s(snapshot.TagTreeNameOff, nameOff)
	w.Int32s(snapshot.TagTreeLabelOff, labelOff)
	w.Int32s(snapshot.TagTreeLabelIDs, labelIDs)
}

// sectionInt32s reads tag and enforces its expected element count.
func sectionInt32s(r *snapshot.Reader, tag uint32, want int) ([]int32, error) {
	v, err := r.Int32s(tag)
	if err != nil {
		return nil, err
	}
	if len(v) != want {
		return nil, fmt.Errorf("%w: section %#x has %d elements, want %d", snapshot.ErrCorrupt, tag, len(v), want)
	}
	return v, nil
}

// checkRange verifies every element of v lies in [lo, hi].
func checkRange(tag uint32, v []int32, lo, hi int32) error {
	for _, x := range v {
		if x < lo || x > hi {
			return fmt.Errorf("%w: section %#x value %d outside [%d, %d]", snapshot.ErrCorrupt, tag, x, lo, hi)
		}
	}
	return nil
}

// checkOffsets verifies v is a monotone offset table from 0 to end.
func checkOffsets(tag uint32, v []int32, end int32) error {
	if len(v) == 0 || v[0] != 0 || v[len(v)-1] != end {
		return fmt.Errorf("%w: section %#x offsets do not span [0, %d]", snapshot.ErrCorrupt, tag, end)
	}
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			return fmt.Errorf("%w: section %#x offsets decrease at %d", snapshot.ErrCorrupt, tag, i)
		}
	}
	return nil
}

// FromSnapshot reconstructs a Tree from r without re-running finish():
// every order array is adopted from the snapshot (zero-copy when the
// reader allows), and only the per-node slice headers, the label strings,
// and the label index are rebuilt. Validation is bounds-level — offsets
// monotone, ids in range — so a corrupt-but-checksummed file yields an
// error, never a panic; semantic integrity (the orders being genuine
// permutations of a real tree) is the producer's contract.
func FromSnapshot(r *snapshot.Reader) (*Tree, error) {
	meta, err := r.Meta()
	if err != nil {
		return nil, err
	}
	n := meta.Nodes
	t := &Tree{size: n, structure: meta.Structure}

	load := func(dst *[]int32, tag uint32, lo, hi int32) {
		if err != nil {
			return
		}
		var v []int32
		if v, err = sectionInt32s(r, tag, n); err != nil {
			return
		}
		if err = checkRange(tag, v, lo, hi); err != nil {
			return
		}
		*dst = v
	}
	var parent, byPre, byPost, byBFLR []int32
	load(&parent, snapshot.TagTreeParent, -1, int32(n)-1)
	load(&t.sibIndex, snapshot.TagTreeSibIndex, 0, int32(n)-1)
	load(&t.pre, snapshot.TagTreePre, 0, int32(n)-1)
	load(&t.post, snapshot.TagTreePost, 0, int32(n)-1)
	load(&t.bflr, snapshot.TagTreeBFLR, 0, int32(n)-1)
	load(&t.depth, snapshot.TagTreeDepth, 0, int32(n)-1)
	load(&t.preEnd, snapshot.TagTreePreEnd, 0, int32(n)-1)
	load(&byPre, snapshot.TagTreeByPre, 0, int32(n)-1)
	load(&byPost, snapshot.TagTreeByPost, 0, int32(n)-1)
	load(&byBFLR, snapshot.TagTreeByBFLR, 0, int32(n)-1)
	if err != nil {
		return nil, err
	}
	if n > 0 && parent[0] != -1 {
		return nil, fmt.Errorf("%w: node 0 is not the root", snapshot.ErrCorrupt)
	}
	// byPre drives the label-index rebuild below; a duplicate entry would
	// overflow the per-label buckets, so it must be a real permutation.
	seen := make([]bool, n)
	for _, v := range byPre {
		if seen[v] {
			return nil, fmt.Errorf("%w: byPre is not a permutation", snapshot.ErrCorrupt)
		}
		seen[v] = true
	}
	t.parent = nodeIDs(parent)
	t.byPre = nodeIDs(byPre)
	t.byPost = nodeIDs(byPost)
	t.byBFLR = nodeIDs(byBFLR)

	// Child lists: adopt the flat array, rebuild the n slice headers.
	kidsOff, err := sectionInt32s(r, snapshot.TagTreeKidsOff, n+1)
	if err != nil {
		return nil, err
	}
	kidsFlat, err := r.Int32s(snapshot.TagTreeKidsFlat)
	if err != nil {
		return nil, err
	}
	wantEdges := 0
	if n > 0 {
		wantEdges = n - 1
	}
	if len(kidsFlat) != wantEdges {
		return nil, fmt.Errorf("%w: %d child entries for %d nodes", snapshot.ErrCorrupt, len(kidsFlat), n)
	}
	if err := checkOffsets(snapshot.TagTreeKidsOff, kidsOff, int32(wantEdges)); err != nil {
		return nil, err
	}
	if err := checkRange(snapshot.TagTreeKidsFlat, kidsFlat, 0, int32(n)-1); err != nil {
		return nil, err
	}
	flat := nodeIDs(kidsFlat)
	t.kids = make([][]NodeID, n)
	for v := 0; v < n; v++ {
		t.kids[v] = flat[kidsOff[v]:kidsOff[v+1]:kidsOff[v+1]]
	}

	// Label table: L strings (allocated once each), one flat []string of
	// label occurrences shared by all per-node slices, and the label index
	// rebuilt in pre-order so its per-label lists come out sorted by pre.
	nameBytes, err := r.Bytes(snapshot.TagTreeNames)
	if err != nil {
		return nil, err
	}
	// The L+1 length check runs before any L-sized allocation, so a huge
	// meta label count cannot force an over-allocation: the offsets section
	// really present in the input bounds it.
	nameOff, err := sectionInt32s(r, snapshot.TagTreeNameOff, meta.Labels+1)
	if err != nil {
		return nil, err
	}
	if err := checkOffsets(snapshot.TagTreeNameOff, nameOff, int32(len(nameBytes))); err != nil {
		return nil, err
	}
	names := make([]string, meta.Labels)
	for i := range names {
		names[i] = string(nameBytes[nameOff[i]:nameOff[i+1]])
	}
	labelOff, err := sectionInt32s(r, snapshot.TagTreeLabelOff, n+1)
	if err != nil {
		return nil, err
	}
	labelIDs, err := r.Int32s(snapshot.TagTreeLabelIDs)
	if err != nil {
		return nil, err
	}
	if err := checkOffsets(snapshot.TagTreeLabelOff, labelOff, int32(len(labelIDs))); err != nil {
		return nil, err
	}
	if err := checkRange(snapshot.TagTreeLabelIDs, labelIDs, 0, int32(meta.Labels)-1); err != nil {
		return nil, err
	}
	occurrences := make([]string, len(labelIDs))
	for i, id := range labelIDs {
		occurrences[i] = names[id]
	}
	t.labels = make([][]string, n)
	for v := 0; v < n; v++ {
		t.labels[v] = occurrences[labelOff[v]:labelOff[v+1]:labelOff[v+1]]
	}
	// Per-label node lists: count, then fill subslices of one flat array.
	counts := make([]int32, meta.Labels)
	for _, id := range labelIDs {
		counts[id]++
	}
	idxFlat := make([]NodeID, len(labelIDs))
	starts := make([]int32, meta.Labels)
	var acc int32
	for i, c := range counts {
		starts[i] = acc
		acc += c
	}
	fill := append([]int32(nil), starts...)
	for r := 0; r < n; r++ {
		v := t.byPre[r]
		for _, id := range labelIDs[labelOff[v]:labelOff[v+1]] {
			idxFlat[fill[id]] = v
			fill[id]++
		}
	}
	t.labelIdx = make(map[string][]NodeID, meta.Labels)
	for i, name := range names {
		t.labelIdx[name] = idxFlat[starts[i] : starts[i]+counts[i] : starts[i]+counts[i]]
	}
	return t, nil
}
