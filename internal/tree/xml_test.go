package tree

import (
	"strings"
	"testing"
)

func TestParseXMLBasic(t *testing.T) {
	tr, err := ParseXMLString(`<a><b/><c><d/></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParseTerm("a(b,c(d))")
	if !tr.Equal(want) {
		t.Errorf("got %s, want %s", tr, want)
	}
}

func TestParseXMLAttributes(t *testing.T) {
	tr, err := ParseXMLString(`<a id="7"><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	// Attribute becomes @id child with value child.
	root := tr.Root()
	kids := tr.Children(root)
	if len(kids) != 2 {
		t.Fatalf("root has %d children, want 2 (@id and b)", len(kids))
	}
	if !tr.HasLabel(kids[0], "@id") {
		t.Errorf("first child should be @id, got %v", tr.Labels(kids[0]))
	}
	val := tr.Children(kids[0])
	if len(val) != 1 || !tr.HasLabel(val[0], "7") {
		t.Errorf("attribute value node wrong")
	}
}

func TestParseXMLIgnoresText(t *testing.T) {
	tr, err := ParseXMLString(`<a>hello<b/>world</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestParseXMLErrors(t *testing.T) {
	bad := []string{
		``,
		`<a><b></a></b>`,
		`<a/><b/>`,
		`plain text`,
	}
	for _, src := range bad {
		if _, err := ParseXMLString(src); err == nil {
			t.Errorf("ParseXMLString(%q) should fail", src)
		}
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	orig := MustParseTerm("a(b(d),c)")
	var sb strings.Builder
	if err := WriteXML(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseXMLString(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if !orig.Equal(back) {
		t.Errorf("XML round-trip mismatch:\n%s", sb.String())
	}
}

func TestWriteXMLEmpty(t *testing.T) {
	empty := NewBuilder(0).Build()
	var sb strings.Builder
	if err := WriteXML(&sb, empty); err == nil {
		t.Errorf("WriteXML(empty) should fail")
	}
}

func TestXMLNameSanitization(t *testing.T) {
	tr := MustParseTerm("NP-2(X')")
	var sb strings.Builder
	if err := WriteXML(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseXMLString(sb.String()); err != nil {
		t.Errorf("sanitized XML should reparse: %v\n%s", err, sb.String())
	}
}
