package tree

import (
	"fmt"
	"math/rand"
)

// RandomConfig controls random tree generation. The zero value is not
// useful; use DefaultRandomConfig as a starting point.
type RandomConfig struct {
	// Nodes is the exact number of nodes to generate (>= 1).
	Nodes int
	// MaxChildren bounds the fan-out of each node (>= 1).
	MaxChildren int
	// Alphabet is the label inventory. Empty means unlabeled nodes.
	Alphabet []string
	// MultiLabelProb is the probability that a node receives a second
	// label (the paper's tractability results support multi-labels, §2).
	MultiLabelProb float64
	// UnlabeledProb is the probability that a node has no label at all.
	UnlabeledProb float64
}

// DefaultRandomConfig returns a workload-realistic configuration: XML-ish
// fan-out with a small alphabet.
func DefaultRandomConfig(n int) RandomConfig {
	return RandomConfig{
		Nodes:          n,
		MaxChildren:    4,
		Alphabet:       []string{"A", "B", "C", "D", "E"},
		MultiLabelProb: 0.05,
		UnlabeledProb:  0.05,
	}
}

// Random generates a pseudo-random tree with exactly cfg.Nodes nodes using
// rng. Shapes follow a uniform random-attachment process bounded by
// MaxChildren, giving broad, shallow, XML-like trees.
func Random(rng *rand.Rand, cfg RandomConfig) *Tree {
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("tree: Random: Nodes = %d, need >= 1", cfg.Nodes))
	}
	if cfg.MaxChildren < 1 {
		cfg.MaxChildren = 1
	}
	b := NewBuilder(cfg.Nodes)
	b.AddNode(NilNode, randLabels(rng, cfg)...)
	// Nodes eligible to receive more children.
	open := []NodeID{0}
	childCount := make([]int, 1, cfg.Nodes)
	for b.Len() < cfg.Nodes {
		i := rng.Intn(len(open))
		p := open[i]
		id := b.AddNode(p, randLabels(rng, cfg)...)
		childCount = append(childCount, 0)
		childCount[p]++
		if childCount[p] >= cfg.MaxChildren {
			open[i] = open[len(open)-1]
			open = open[:len(open)-1]
		}
		open = append(open, id)
	}
	return b.Build()
}

func randLabels(rng *rand.Rand, cfg RandomConfig) []string {
	if len(cfg.Alphabet) == 0 || rng.Float64() < cfg.UnlabeledProb {
		return nil
	}
	labels := []string{cfg.Alphabet[rng.Intn(len(cfg.Alphabet))]}
	if rng.Float64() < cfg.MultiLabelProb {
		labels = append(labels, cfg.Alphabet[rng.Intn(len(cfg.Alphabet))])
	}
	return labels
}

// RandomShape describes preset shapes for scaling benchmarks.
type RandomShape int

// Preset shapes exercised by the benchmark harness: the tractable engine's
// complexity depends on ‖A‖ only, but the optimized arc-consistency
// support structures have shape-dependent constants worth measuring.
const (
	ShapeBushy  RandomShape = iota // MaxChildren 8, shallow
	ShapeBinary                    // MaxChildren 2
	ShapeDeep                      // MaxChildren 1..2, path-like
	ShapeWide                      // root with many children, depth ~2
)

// RandomWithShape generates an n-node tree of the given preset shape.
func RandomWithShape(rng *rand.Rand, n int, shape RandomShape, alphabet []string) *Tree {
	switch shape {
	case ShapeBushy:
		cfg := DefaultRandomConfig(n)
		cfg.MaxChildren = 8
		cfg.Alphabet = alphabet
		return Random(rng, cfg)
	case ShapeBinary:
		cfg := DefaultRandomConfig(n)
		cfg.MaxChildren = 2
		cfg.Alphabet = alphabet
		return Random(rng, cfg)
	case ShapeDeep:
		b := NewBuilder(n)
		cur := b.AddNode(NilNode, pick(rng, alphabet))
		for b.Len() < n {
			// Occasionally add a leaf sibling to keep it tree-like.
			if rng.Float64() < 0.2 && b.Len()+1 < n {
				b.AddNode(cur, pick(rng, alphabet))
			}
			cur = b.AddNode(cur, pick(rng, alphabet))
		}
		return b.Build()
	case ShapeWide:
		b := NewBuilder(n)
		root := b.AddNode(NilNode, pick(rng, alphabet))
		spine := []NodeID{root}
		for b.Len() < n {
			p := spine[rng.Intn(len(spine))]
			id := b.AddNode(p, pick(rng, alphabet))
			if len(spine) < 4 {
				spine = append(spine, id)
			}
		}
		return b.Build()
	default:
		panic(fmt.Sprintf("tree: unknown RandomShape %d", shape))
	}
}

func pick(rng *rand.Rand, alphabet []string) string {
	if len(alphabet) == 0 {
		return "A"
	}
	return alphabet[rng.Intn(len(alphabet))]
}
