package tree

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseTerm parses the compact term syntax for trees:
//
//	tree   := node
//	node   := labels [ '(' node (',' node)* ')' ]
//	labels := '_' | label ('|' label)*
//	label  := [A-Za-z0-9_'*+-]+  (not starting with '_' alone)
//
// Examples:
//
//	A(B,C(D))          root A with children B and C; C has child D
//	X|Y(Z)             a root carrying both labels X and Y
//	_(A,_)             an unlabeled root with children A and an unlabeled leaf
//
// Whitespace between tokens is ignored. ParseTerm is the inverse of
// (*Tree).String.
func ParseTerm(s string) (*Tree, error) {
	p := &termParser{src: s}
	p.skipSpace()
	if p.eof() {
		return nil, fmt.Errorf("tree: empty input")
	}
	b := NewBuilder(16)
	if err := p.parseNode(b, NilNode); err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, fmt.Errorf("tree: trailing input at offset %d: %q", p.pos, p.rest())
	}
	return b.Build(), nil
}

// MustParseTerm is ParseTerm that panics on error; for tests and examples.
func MustParseTerm(s string) *Tree {
	t, err := ParseTerm(s)
	if err != nil {
		panic(err)
	}
	return t
}

type termParser struct {
	src string
	pos int
}

func (p *termParser) eof() bool     { return p.pos >= len(p.src) }
func (p *termParser) rest() string  { return p.src[p.pos:] }
func (p *termParser) peek() byte    { return p.src[p.pos] }
func (p *termParser) advance() byte { c := p.src[p.pos]; p.pos++; return c }

func (p *termParser) skipSpace() {
	for !p.eof() && unicode.IsSpace(rune(p.peek())) {
		p.pos++
	}
}

func isLabelByte(c byte) bool {
	return c == '_' || c == '\'' || c == '*' || c == '+' || c == '-' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *termParser) parseLabelSet() ([]string, error) {
	var labels []string
	for {
		start := p.pos
		for !p.eof() && isLabelByte(p.peek()) {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("tree: expected label at offset %d: %q", p.pos, p.rest())
		}
		lab := p.src[start:p.pos]
		if lab != "_" {
			labels = append(labels, lab)
		}
		p.skipSpace()
		if !p.eof() && p.peek() == '|' {
			p.advance()
			p.skipSpace()
			continue
		}
		return labels, nil
	}
}

func (p *termParser) parseNode(b *Builder, parent NodeID) error {
	p.skipSpace()
	labels, err := p.parseLabelSet()
	if err != nil {
		return err
	}
	id := b.AddNode(parent, labels...)
	p.skipSpace()
	if p.eof() || p.peek() != '(' {
		return nil
	}
	p.advance() // '('
	for {
		if err := p.parseNode(b, id); err != nil {
			return err
		}
		p.skipSpace()
		if p.eof() {
			return fmt.Errorf("tree: unexpected end of input, expected ',' or ')'")
		}
		switch p.advance() {
		case ',':
			continue
		case ')':
			return nil
		default:
			return fmt.Errorf("tree: expected ',' or ')' at offset %d: %q", p.pos-1, p.src[p.pos-1:])
		}
	}
}

// RoundTrip reports whether parsing t.String() yields a tree equal to t.
// Used by property-based tests.
func RoundTrip(t *Tree) bool {
	if t.Len() == 0 {
		return true
	}
	u, err := ParseTerm(t.String())
	if err != nil {
		return false
	}
	return t.Equal(u)
}

// quoteIfNeeded is a helper for diagnostics.
func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\n(),|") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
