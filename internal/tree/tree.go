// Package tree implements the unranked labeled tree substrate of
// "Conjunctive Queries over Trees" (Gottlob, Koch, Schulz; JACM 53(2), 2006).
//
// A tree is a relational structure over a finite set of nodes with unary
// label relations Label_a and binary axis relations (Child, Child+, Child*,
// NextSibling, NextSibling+, NextSibling*, Following; see package axis).
// Nodes may carry multiple labels (§2 of the paper).
//
// The representation is index-based: nodes are dense NodeIDs, and the
// three total orders of §2 (pre-order, post-order, breadth-first
// left-to-right) as well as subtree intervals are precomputed so that every
// axis test costs O(1) (see package axis).
package tree

import (
	"fmt"
	"iter"
	"sort"
	"strings"
)

// NodeID identifies a node of a Tree. IDs are dense indexes in [0, Len()).
// The root of a non-empty tree always has NodeID 0. NilNode is used as the
// "no node" sentinel (e.g. parent of the root).
type NodeID int32

// NilNode is the sentinel "no node" value.
const NilNode NodeID = -1

// Tree is an immutable unranked tree with multi-labeled nodes.
//
// Construct trees with a Builder, one of the parsers (ParseTerm, ParseXML),
// or a generator (see random.go). After construction a Tree must not be
// mutated; all query-evaluation code in this module relies on the
// precomputed orders staying consistent.
type Tree struct {
	parent   []NodeID   // parent[v] or NilNode for the root
	kids     [][]NodeID // children in left-to-right order
	sibIndex []int32    // position of v among its siblings (root: 0)

	labels    [][]string          // sorted label set per node
	labelIdx  map[string][]NodeID // label -> nodes carrying it, sorted by pre
	pre       []int32             // pre-order rank (document order), 0-based
	post      []int32             // post-order rank, 0-based
	bflr      []int32             // breadth-first left-to-right rank, 0-based
	depth     []int32             // root depth 0
	preEnd    []int32             // max pre-order rank within v's subtree
	byPre     []NodeID            // byPre[r] = node with pre rank r
	byPost    []NodeID            // byPost[r] = node with post rank r
	byBFLR    []NodeID            // byBFLR[r] = node with bflr rank r
	size      int
	structure int // cached encoding size ‖A‖ proxy; see StructureSize
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return t.size }

// Root returns the root node, or NilNode if the tree is empty.
func (t *Tree) Root() NodeID {
	if t.size == 0 {
		return NilNode
	}
	return 0
}

// Parent returns the parent of v, or NilNode for the root.
func (t *Tree) Parent(v NodeID) NodeID { return t.parent[v] }

// Children returns the children of v in left-to-right order.
// The returned slice is owned by the tree and must not be modified.
func (t *Tree) Children(v NodeID) []NodeID { return t.kids[v] }

// NumChildren returns the number of children of v.
func (t *Tree) NumChildren(v NodeID) int { return len(t.kids[v]) }

// SiblingIndex returns v's position among its siblings (leftmost = 0).
// The root has sibling index 0.
func (t *Tree) SiblingIndex(v NodeID) int32 { return t.sibIndex[v] }

// NextSibling returns the right neighboring sibling of v, or NilNode.
func (t *Tree) NextSibling(v NodeID) NodeID {
	p := t.parent[v]
	if p == NilNode {
		return NilNode
	}
	i := int(t.sibIndex[v]) + 1
	if i >= len(t.kids[p]) {
		return NilNode
	}
	return t.kids[p][i]
}

// PrevSibling returns the left neighboring sibling of v, or NilNode.
func (t *Tree) PrevSibling(v NodeID) NodeID {
	p := t.parent[v]
	if p == NilNode {
		return NilNode
	}
	i := int(t.sibIndex[v]) - 1
	if i < 0 {
		return NilNode
	}
	return t.kids[p][i]
}

// Labels returns the sorted label set of v (possibly empty).
// The returned slice is owned by the tree and must not be modified.
func (t *Tree) Labels(v NodeID) []string { return t.labels[v] }

// HasLabel reports whether v carries label a.
func (t *Tree) HasLabel(v NodeID, a string) bool {
	ls := t.labels[v]
	i := sort.SearchStrings(ls, a)
	return i < len(ls) && ls[i] == a
}

// NodesWithLabel returns all nodes carrying label a, sorted by pre-order.
// The returned slice is owned by the tree and must not be modified.
func (t *Tree) NodesWithLabel(a string) []NodeID { return t.labelIdx[a] }

// Alphabet returns the sorted set of labels occurring in the tree.
func (t *Tree) Alphabet() []string {
	out := make([]string, 0, len(t.labelIdx))
	for a := range t.labelIdx {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Pre returns the pre-order (document order) rank of v, 0-based.
func (t *Tree) Pre(v NodeID) int32 { return t.pre[v] }

// Post returns the post-order rank of v, 0-based.
func (t *Tree) Post(v NodeID) int32 { return t.post[v] }

// BFLR returns the breadth-first left-to-right rank of v, 0-based.
func (t *Tree) BFLR(v NodeID) int32 { return t.bflr[v] }

// Depth returns the depth of v (root depth 0).
func (t *Tree) Depth(v NodeID) int32 { return t.depth[v] }

// PreEnd returns the maximum pre-order rank inside v's subtree, so that
// w is a descendant-or-self of v iff Pre(v) <= Pre(w) <= PreEnd(v).
func (t *Tree) PreEnd(v NodeID) int32 { return t.preEnd[v] }

// ByPre returns the node with pre-order rank r.
func (t *Tree) ByPre(r int32) NodeID { return t.byPre[r] }

// ByPost returns the node with post-order rank r.
func (t *Tree) ByPost(r int32) NodeID { return t.byPost[r] }

// ByBFLR returns the node with breadth-first rank r.
func (t *Tree) ByBFLR(r int32) NodeID { return t.byBFLR[r] }

// SubtreeSize returns the number of nodes in v's subtree (including v).
func (t *Tree) SubtreeSize(v NodeID) int {
	return int(t.preEnd[v]-t.pre[v]) + 1
}

// IsAncestorOrSelf reports Child*(u, v): u lies on the path from the root
// to v (inclusive).
func (t *Tree) IsAncestorOrSelf(u, v NodeID) bool {
	return t.pre[u] <= t.pre[v] && t.pre[v] <= t.preEnd[u]
}

// IsAncestor reports Child+(u, v): u is a proper ancestor of v.
func (t *Tree) IsAncestor(u, v NodeID) bool {
	return t.pre[u] < t.pre[v] && t.pre[v] <= t.preEnd[u]
}

// Height returns the height of the tree (a single node has height 0);
// -1 for the empty tree.
func (t *Tree) Height() int {
	h := int32(-1)
	for _, d := range t.depth {
		if d > h {
			h = d
		}
	}
	return int(h)
}

// StructureSize returns ‖A‖, a proxy for the encoding size of the
// relational structure: nodes + label-atom occurrences + the sizes of the
// materialized Child and NextSibling relations (both O(n)). The transitive
// axes are not counted since they are derived in O(1) from the numbering.
func (t *Tree) StructureSize() int { return t.structure }

// SizeBytes returns the approximate heap footprint of the tree in bytes:
// the backing arrays of the precomputed orders, the child lists, and the
// label storage (including the label index). It is an accounting figure —
// map-slot and allocator overheads are estimated, not measured — intended
// for corpus-level memory budgeting, and is stable after construction.
func (t *Tree) SizeBytes() int64 {
	n := int64(t.size)
	// Ten int32/NodeID arrays of length n: parent, sibIndex, pre, post,
	// bflr, depth, preEnd, byPre, byPost, byBFLR.
	b := 10 * 4 * n
	// Child lists: one slice header per node plus one NodeID per edge.
	b += 24 * n
	if n > 0 {
		b += 4 * (n - 1)
	}
	// Labels: a slice header per node, a string header plus the bytes per
	// label occurrence, and one label-index entry per occurrence.
	b += 24 * n
	for _, ls := range t.labels {
		for _, l := range ls {
			b += 16 + int64(len(l)) + 4
		}
	}
	// Label-index keys: key bytes plus an approximate map-slot overhead.
	for l := range t.labelIdx {
		b += int64(len(l)) + 48
	}
	return b
}

// Nodes returns an iterator over all nodes in document (pre) order:
//
//	for v := range t.Nodes() { ... }
//
// Unlike Walk, breaking does not skip subtrees — it stops the iteration.
func (t *Tree) Nodes() iter.Seq[NodeID] {
	return func(yield func(NodeID) bool) {
		for _, v := range t.byPre {
			if !yield(v) {
				return
			}
		}
	}
}

// Walk visits every node in pre-order, calling fn; if fn returns false the
// subtree below the node is skipped.
func (t *Tree) Walk(fn func(v NodeID) bool) {
	if t.size == 0 {
		return
	}
	type frame struct {
		v NodeID
	}
	stack := []frame{{0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(f.v) {
			continue
		}
		ks := t.kids[f.v]
		for i := len(ks) - 1; i >= 0; i-- {
			stack = append(stack, frame{ks[i]})
		}
	}
}

// AncestorAtDepth returns the ancestor of v at depth d, or NilNode if
// d exceeds Depth(v).
func (t *Tree) AncestorAtDepth(v NodeID, d int32) NodeID {
	if d > t.depth[v] || d < 0 {
		return NilNode
	}
	for t.depth[v] > d {
		v = t.parent[v]
	}
	return v
}

// Validate checks internal invariants: orders are permutations, subtree
// intervals nest, sibling indexes match child lists, label index agrees
// with node label sets. It is used by property-based tests.
func (t *Tree) Validate() error {
	n := t.size
	if len(t.parent) != n || len(t.kids) != n || len(t.pre) != n || len(t.post) != n || len(t.bflr) != n {
		return fmt.Errorf("tree: inconsistent slice lengths for %d nodes", n)
	}
	seenPre := make([]bool, n)
	for v := 0; v < n; v++ {
		r := t.pre[v]
		if r < 0 || int(r) >= n || seenPre[r] {
			return fmt.Errorf("tree: pre rank %d of node %d invalid or duplicated", r, v)
		}
		seenPre[r] = true
		if t.byPre[r] != NodeID(v) {
			return fmt.Errorf("tree: byPre[%d] = %d, want %d", r, t.byPre[r], v)
		}
	}
	for v := 0; v < n; v++ {
		id := NodeID(v)
		for i, c := range t.kids[v] {
			if t.parent[c] != id {
				return fmt.Errorf("tree: child %d of %d has parent %d", c, v, t.parent[c])
			}
			if int(t.sibIndex[c]) != i {
				return fmt.Errorf("tree: child %d of %d has sibIndex %d, want %d", c, v, t.sibIndex[c], i)
			}
			if t.depth[c] != t.depth[v]+1 {
				return fmt.Errorf("tree: depth of %d is %d, parent depth %d", c, t.depth[c], t.depth[v])
			}
			if !(t.pre[c] > t.pre[v] && t.preEnd[c] <= t.preEnd[v]) {
				return fmt.Errorf("tree: subtree interval of child %d not nested in %d", c, v)
			}
		}
		if t.parent[v] == NilNode && v != 0 {
			return fmt.Errorf("tree: non-root node %d has no parent", v)
		}
	}
	for a, nodes := range t.labelIdx {
		for _, v := range nodes {
			if !t.HasLabel(v, a) {
				return fmt.Errorf("tree: label index lists %q on node %d which lacks it", a, v)
			}
		}
		for i := 1; i < len(nodes); i++ {
			if t.pre[nodes[i-1]] >= t.pre[nodes[i]] {
				return fmt.Errorf("tree: label index for %q not sorted by pre", a)
			}
		}
	}
	var count int
	for v := 0; v < n; v++ {
		count += len(t.labels[v])
	}
	var idxCount int
	for _, nodes := range t.labelIdx {
		idxCount += len(nodes)
	}
	if count != idxCount {
		return fmt.Errorf("tree: label index holds %d entries, nodes carry %d labels", idxCount, count)
	}
	return nil
}

// String renders the tree in the term syntax accepted by ParseTerm.
func (t *Tree) String() string {
	if t.size == 0 {
		return ""
	}
	var sb strings.Builder
	t.writeTerm(&sb, 0)
	return sb.String()
}

func (t *Tree) writeTerm(sb *strings.Builder, v NodeID) {
	ls := t.labels[v]
	if len(ls) == 0 {
		sb.WriteString("_")
	} else {
		sb.WriteString(strings.Join(ls, "|"))
	}
	if len(t.kids[v]) > 0 {
		sb.WriteByte('(')
		for i, c := range t.kids[v] {
			if i > 0 {
				sb.WriteByte(',')
			}
			t.writeTerm(sb, c)
		}
		sb.WriteByte(')')
	}
}

// Equal reports structural equality: same shape and same label sets at
// corresponding positions.
func (t *Tree) Equal(u *Tree) bool {
	if t.size != u.size {
		return false
	}
	for v := 0; v < t.size; v++ {
		// Compare in pre-order alignment: node with pre rank r in each.
		a, b := t.byPre[v], u.byPre[v]
		if len(t.kids[a]) != len(u.kids[b]) {
			return false
		}
		la, lb := t.labels[a], u.labels[b]
		if len(la) != len(lb) {
			return false
		}
		for i := range la {
			if la[i] != lb[i] {
				return false
			}
		}
	}
	return true
}

// finish computes all derived data after the shape and labels are fixed.
// parent/kids/labels must be fully populated with node 0 the root.
func (t *Tree) finish() {
	n := len(t.parent)
	t.size = n
	t.pre = make([]int32, n)
	t.post = make([]int32, n)
	t.bflr = make([]int32, n)
	t.depth = make([]int32, n)
	t.preEnd = make([]int32, n)
	t.sibIndex = make([]int32, n)
	t.byPre = make([]NodeID, n)
	t.byPost = make([]NodeID, n)
	t.byBFLR = make([]NodeID, n)
	if n == 0 {
		t.labelIdx = map[string][]NodeID{}
		return
	}
	for v := 0; v < n; v++ {
		for i, c := range t.kids[v] {
			t.sibIndex[c] = int32(i)
		}
	}
	// Iterative pre/post computation.
	var preCtr, postCtr int32
	type frame struct {
		v    NodeID
		next int // next child index to visit
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{0, 0})
	t.pre[0] = 0
	t.byPre[0] = 0
	preCtr = 1
	t.depth[0] = 0
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(t.kids[f.v]) {
			c := t.kids[f.v][f.next]
			f.next++
			t.pre[c] = preCtr
			t.byPre[preCtr] = c
			preCtr++
			t.depth[c] = t.depth[f.v] + 1
			stack = append(stack, frame{c, 0})
			continue
		}
		t.post[f.v] = postCtr
		t.byPost[postCtr] = f.v
		postCtr++
		stack = stack[:len(stack)-1]
	}
	// preEnd via reverse pre-order: preEnd[v] = max(pre of subtree).
	for r := int32(n) - 1; r >= 0; r-- {
		v := t.byPre[r]
		end := t.pre[v]
		for _, c := range t.kids[v] {
			if t.preEnd[c] > end {
				end = t.preEnd[c]
			}
		}
		t.preEnd[v] = end
	}
	// BFLR order.
	queue := make([]NodeID, 0, n)
	queue = append(queue, 0)
	var r int32
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		t.bflr[v] = r
		t.byBFLR[r] = v
		r++
		queue = append(queue, t.kids[v]...)
	}
	// Label index.
	t.labelIdx = map[string][]NodeID{}
	for rr := int32(0); rr < int32(n); rr++ {
		v := t.byPre[rr]
		for _, a := range t.labels[v] {
			t.labelIdx[a] = append(t.labelIdx[a], v)
		}
	}
	// Structure size: nodes + labels + |Child| + |NextSibling|.
	labelAtoms := 0
	for v := 0; v < n; v++ {
		labelAtoms += len(t.labels[v])
	}
	nsPairs := 0
	for v := 0; v < n; v++ {
		if len(t.kids[v]) > 0 {
			nsPairs += len(t.kids[v]) - 1
		}
	}
	t.structure = n + labelAtoms + (n - 1) + nsPairs
}
