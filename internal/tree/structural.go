package tree

// Structural pseudo-labels. Gottlob and Koch [2004] extend the signature
// with relations such as FirstChild (see the remark after Prop. 6.14);
// in this library's framework such unary structural predicates are
// exposed as derived labels so that every engine supports them without
// special cases: WithStructuralLabels returns a copy of the tree where
// each node additionally carries the applicable labels below.
const (
	// LabelRoot marks the root node.
	LabelRoot = "@root"
	// LabelLeaf marks nodes without children.
	LabelLeaf = "@leaf"
	// LabelFirstChild marks nodes that are the first child of their
	// parent (the FirstChild relation of Gottlob and Koch [2004]).
	LabelFirstChild = "@first"
	// LabelLastChild marks nodes that are the last child of their parent.
	LabelLastChild = "@last"
)

// WithStructuralLabels returns a copy of t in which every node also
// carries the structural labels that apply to it (@root, @leaf, @first,
// @last). Queries may then use them as ordinary unary atoms, e.g.
//
//	Q(x) <- A(x), @leaf(x)
//
// The original tree is not modified.
func WithStructuralLabels(t *Tree) *Tree {
	if t.Len() == 0 {
		return NewBuilder(0).Build()
	}
	b := NewBuilder(t.Len())
	var rec func(v NodeID, parent NodeID)
	rec = func(v NodeID, parent NodeID) {
		labels := append([]string{}, t.Labels(v)...)
		if t.Parent(v) == NilNode {
			labels = append(labels, LabelRoot)
		}
		if t.NumChildren(v) == 0 {
			labels = append(labels, LabelLeaf)
		}
		if t.Parent(v) != NilNode {
			if t.SiblingIndex(v) == 0 {
				labels = append(labels, LabelFirstChild)
			}
			if int(t.SiblingIndex(v)) == t.NumChildren(t.Parent(v))-1 {
				labels = append(labels, LabelLastChild)
			}
		}
		id := b.AddNode(parent, labels...)
		for _, c := range t.Children(v) {
			rec(c, id)
		}
	}
	rec(t.Root(), NilNode)
	return b.Build()
}
