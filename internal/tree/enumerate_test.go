package tree

import "testing"

func TestCountShapes(t *testing.T) {
	// Catalan numbers C(n-1): 1, 1, 2, 5, 14, 42.
	want := map[int]int{1: 1, 2: 1, 3: 2, 4: 5, 5: 14, 6: 42}
	for n, w := range want {
		if got := CountShapes(n); got != w {
			t.Errorf("CountShapes(%d) = %d, want %d", n, got, w)
		}
	}
	if CountShapes(0) != 0 {
		t.Errorf("CountShapes(0) != 0")
	}
}

func TestEnumerateCounts(t *testing.T) {
	alpha := []string{"A", "B"}
	for n := 1; n <= 4; n++ {
		count := 0
		Enumerate(n, alpha, func(tr *Tree) bool {
			if tr.Len() != n {
				t.Fatalf("enumerated tree has %d nodes, want %d", tr.Len(), n)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			count++
			return true
		})
		want := CountShapes(n)
		for i := 0; i < n; i++ {
			want *= len(alpha)
		}
		if count != want {
			t.Errorf("Enumerate(%d) yielded %d trees, want %d", n, count, want)
		}
	}
}

func TestEnumerateDistinct(t *testing.T) {
	seen := map[string]bool{}
	Enumerate(4, []string{"A", "B"}, func(tr *Tree) bool {
		s := tr.String()
		if seen[s] {
			t.Fatalf("duplicate tree %s", s)
		}
		seen[s] = true
		return true
	})
}

func TestEnumerateEarlyStop(t *testing.T) {
	count := 0
	Enumerate(4, []string{"A", "B"}, func(*Tree) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after %d trees, want 3", count)
	}
}

func TestEnumerateAll(t *testing.T) {
	count := 0
	EnumerateAll(3, []string{"A"}, func(tr *Tree) bool {
		count++
		return true
	})
	// n=1: 1 shape; n=2: 1; n=3: 2 -> with 1 label = 4 trees.
	if count != 4 {
		t.Errorf("EnumerateAll(3,{A}) = %d trees, want 4", count)
	}
}
