package tree

// Enumerate generates every ordered unranked tree with exactly n nodes,
// each node carrying exactly one label from alphabet, and calls fn on each.
// If fn returns false, enumeration stops. The number of trees is
// Catalan(n-1) · |alphabet|^n, so keep n small (n ≤ 5 with a binary
// alphabet is ~1000 trees). Used for exhaustive semantic-equivalence
// checking of query rewrites.
func Enumerate(n int, alphabet []string, fn func(*Tree) bool) {
	if n <= 0 || len(alphabet) == 0 {
		return
	}
	shapes := enumerateShapes(n)
	labels := make([]string, n)
	for _, shape := range shapes {
		if !enumerateLabelings(shape, alphabet, labels, 0, fn) {
			return
		}
	}
}

// EnumerateAll generates every tree with 1..maxNodes nodes over alphabet.
func EnumerateAll(maxNodes int, alphabet []string, fn func(*Tree) bool) {
	for n := 1; n <= maxNodes; n++ {
		stop := false
		Enumerate(n, alphabet, func(t *Tree) bool {
			if !fn(t) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// shape encodes a tree shape as the parent array in pre-order numbering
// (parent[0] = -1).
type shape []int

// enumerateShapes returns every ordered rooted tree shape with n nodes.
// Shapes are built by choosing, for each pre-order node i >= 1, a parent
// among the "right spine" of the partially built tree — this enumerates
// exactly the ordered forests (a standard bijection with balanced
// parentheses, Catalan(n-1) shapes).
func enumerateShapes(n int) []shape {
	var out []shape
	parent := make([]int, n)
	parent[0] = -1
	// spine holds the chain root=..=last-added node's ancestors through
	// rightmost children; a new node may attach to any of them.
	var rec func(i int, spine []int)
	rec = func(i int, spine []int) {
		if i == n {
			cp := make(shape, n)
			copy(cp, parent)
			out = append(out, cp)
			return
		}
		for s := 0; s < len(spine); s++ {
			parent[i] = spine[s]
			// New spine: ancestors up to spine[s], then node i.
			newSpine := append(append([]int{}, spine[:s+1]...), i)
			rec(i+1, newSpine)
		}
	}
	rec(1, []int{0})
	if n == 1 {
		out = []shape{{-1}}
	}
	return out
}

func enumerateLabelings(sh shape, alphabet []string, labels []string, i int, fn func(*Tree) bool) bool {
	if i == len(sh) {
		b := NewBuilder(len(sh))
		ids := make([]NodeID, len(sh))
		for j, p := range sh {
			if p == -1 {
				ids[j] = b.AddNode(NilNode, labels[j])
			} else {
				ids[j] = b.AddNode(ids[p], labels[j])
			}
		}
		return fn(b.Build())
	}
	for _, a := range alphabet {
		labels[i] = a
		if !enumerateLabelings(sh, alphabet, labels, i+1, fn) {
			return false
		}
	}
	return true
}

// CountShapes returns the number of ordered rooted tree shapes with n
// nodes (the Catalan number C(n-1)); used by tests.
func CountShapes(n int) int {
	if n <= 0 {
		return 0
	}
	// C(0)=1, C(k) = sum C(i)C(k-1-i)
	c := make([]int, n)
	c[0] = 1
	for k := 1; k < n; k++ {
		for i := 0; i < k; i++ {
			c[k] += c[i] * c[k-1-i]
		}
	}
	return c[n-1]
}
