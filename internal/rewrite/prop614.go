package rewrite

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/cq"
)

// LinearRewrite implements Proposition 6.14: every CQ[Child, NextSibling]
// rewrites into an equivalent acyclic conjunctive query (a single CQ, not
// a union) in linear time. The signature's axes are functional (each node
// has at most one parent, one previous sibling, one next sibling), so
// every join lifter for the signature has a single conjunct and the
// Lemma 6.5 algorithm never branches.
//
// Returns nil if the query is unsatisfiable on every tree (a directed
// cycle over the irreflexive axes).
func LinearRewrite(q *cq.Query) (*cq.Query, error) {
	for _, a := range q.Signature() {
		if a != axis.Child && a != axis.NextSibling {
			return nil, fmt.Errorf("rewrite: LinearRewrite requires signature ⊆ {Child, NextSibling}, got %v", a)
		}
	}
	apq, err := RewriteToAPQ(q, Options{})
	if err != nil {
		return nil, err
	}
	switch len(apq.Disjuncts) {
	case 0:
		return nil, nil // unsatisfiable
	case 1:
		return apq.Disjuncts[0], nil
	default:
		return nil, fmt.Errorf("rewrite: LinearRewrite branched into %d disjuncts; lifter table violates functionality", len(apq.Disjuncts))
	}
}

// IntroQuery returns the running example of the introduction and of
// Fig. 8: the conjunctive-query form of //A[B]/following::C,
//
//	Q(z) ← A(x), Child(x, y), B(y), Following(x, z), C(z).
func IntroQuery() *cq.Query {
	return cq.MustParse("Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z)")
}

// Figure1Query returns the treebank query of Fig. 1:
//
//	Q(z) ← S(x), Child+(x, y), NP(y), Child+(x, z), PP(z), Following(y, z).
func Figure1Query() *cq.Query {
	return cq.MustParse("Q(z) <- S(x), Child+(x, y), NP(y), Child+(x, z), PP(z), Following(y, z)")
}
