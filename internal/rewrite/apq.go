// Package rewrite implements the expressiveness results of §6 of
// "Conjunctive Queries over Trees": join lifters (Definition 6.2), the
// directed-cycle elimination of Lemma 6.4, the CQ → acyclic positive
// query (APQ) rewriting algorithm of Lemma 6.5 with the lifter tables of
// Theorems 6.6 and 6.9, the Following/Child* elimination of Theorem 6.10,
// and the linear-time acyclic rewriting of Proposition 6.14 for
// CQ[Child, NextSibling].
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/tree"
)

// APQ is an acyclic positive query: a finite union of conjunctive queries
// whose query graphs' shadows are forests (§6). The union is empty for
// unsatisfiable queries.
type APQ struct {
	Disjuncts []*cq.Query
}

// Size returns the total number of atoms across disjuncts — the size
// measure of §7.
func (a *APQ) Size() int {
	total := 0
	for _, q := range a.Disjuncts {
		total += q.Size()
	}
	return total
}

// String renders the union.
func (a *APQ) String() string {
	if len(a.Disjuncts) == 0 {
		return "∅ (unsatisfiable)"
	}
	parts := make([]string, len(a.Disjuncts))
	for i, q := range a.Disjuncts {
		parts[i] = q.String()
	}
	return strings.Join(parts, "\n∪ ")
}

// IsAcyclic reports whether every disjunct is acyclic.
func (a *APQ) IsAcyclic() bool {
	for _, q := range a.Disjuncts {
		if cq.Classify(q) != cq.Acyclic {
			return false
		}
	}
	return true
}

// EvalBoolean evaluates the APQ as a Boolean query (true iff some
// disjunct is satisfiable) using the acyclic engine.
func (a *APQ) EvalBoolean(t *tree.Tree) bool {
	engine := core.NewAcyclicEngine()
	for _, q := range a.Disjuncts {
		if engine.EvalBoolean(t, q) {
			return true
		}
	}
	return false
}

// EvalAll evaluates the APQ's answer set: the union of the disjuncts'
// answers (all disjuncts must have the same head arity).
func (a *APQ) EvalAll(t *tree.Tree) [][]tree.NodeID {
	engine := core.NewAcyclicEngine()
	seen := map[string]bool{}
	var out [][]tree.NodeID
	for _, q := range a.Disjuncts {
		for _, tup := range engine.EvalAll(t, q) {
			key := fmt.Sprint(tup)
			if !seen[key] {
				seen[key] = true
				out = append(out, tup)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// EquivalentOn reports whether the APQ and the original query q agree on
// tree t (same Boolean value, or same answer set if q has a head) — the
// empirical equivalence check used throughout the test suite.
func (a *APQ) EquivalentOn(t *tree.Tree, q *cq.Query) bool {
	if len(q.Head) == 0 {
		be := core.NewBacktrackEngine()
		return a.EvalBoolean(t) == be.EvalBoolean(t, q)
	}
	be := core.NewBacktrackEngine()
	want := be.EvalAll(t, q)
	got := a.EvalAll(t)
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				return false
			}
		}
	}
	return true
}
