package rewrite

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/cq"
)

// Options configures the CQ→APQ rewriting algorithm.
type Options struct {
	// Lifters is the join-lifter table; defaults to Theorem66Lifters.
	Lifters map[[2]axis.Axis]Lifter
	// MaxQueries bounds the total number of conjunctive queries processed
	// (the paper's bound is k^{|V|·|E|}; the default is 1<<20).
	MaxQueries int
}

func (o *Options) defaults() {
	if o.Lifters == nil {
		o.Lifters = Theorem66Lifters()
	}
	if o.MaxQueries == 0 {
		o.MaxQueries = 1 << 20
	}
}

// RewriteToAPQ implements the algorithm of Lemma 6.5: starting from
// {q}, repeatedly (1) drop or collapse directed cycles (Lemma 6.4),
// (2) pick a bottommost variable z on an undirected cycle and replace a
// pair of atoms R(x,z), S(y,z) using the join lifter ψ_{R,S}, branching
// into one query per conjunct, until every remaining query graph is a
// forest. The result is an APQ equivalent to q.
//
// The default lifter table covers signatures without Following (Theorem
// 6.6); use TranslateCQ for arbitrary signatures (Theorem 6.10).
func RewriteToAPQ(q *cq.Query, opts Options) (*APQ, error) {
	opts.defaults()
	for _, a := range q.Signature() {
		found := false
		for key := range opts.Lifters {
			if key[0] == a || key[1] == a {
				found = true
				break
			}
		}
		if !found && len(q.Atoms) > 0 {
			return nil, fmt.Errorf("rewrite: no lifters available for axis %v; preprocess with TranslateCQ", a)
		}
	}

	work := []*cq.Query{q.Clone()}
	var result []*cq.Query
	seenResult := map[string]bool{}
	processed := 0
	for len(work) > 0 {
		processed++
		if processed > opts.MaxQueries {
			return nil, fmt.Errorf("rewrite: exceeded MaxQueries = %d", opts.MaxQueries)
		}
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		cur.Dedup()

		// Steps (2)-(3): directed cycles.
		sat, changed := eliminateDirectedCycles(cur)
		if !sat {
			continue // unsatisfiable disjunct dropped
		}
		if changed {
			work = append(work, cur)
			continue
		}

		g := cq.NewGraph(cur)
		cycleAtoms := g.UndirectedCycleAtoms()
		if cycleAtoms == nil {
			n := cur.Normalize()
			key := n.CanonicalKey()
			if !seenResult[key] {
				seenResult[key] = true
				result = append(result, n)
			}
			continue
		}

		// Step (4): choose z = topologically last variable on the cycle;
		// both incident cycle atoms enter z.
		inAtoms, err := bottomPair(cur, g, cycleAtoms)
		if err != nil {
			return nil, err
		}
		r := cur.Atoms[inAtoms[0]]
		s := cur.Atoms[inAtoms[1]]
		lifter, ok := opts.Lifters[[2]axis.Axis{r.Axis, s.Axis}]
		if !ok {
			return nil, fmt.Errorf("rewrite: no lifter for pair (%v, %v)", r.Axis, s.Axis)
		}
		for _, branch := range applyLifter(cur, inAtoms[0], inAtoms[1], lifter) {
			work = append(work, branch)
		}
	}
	return &APQ{Disjuncts: result}, nil
}

// eliminateDirectedCycles applies Lemma 6.4 once: if the query graph has
// a directed cycle through an irreflexive axis the query is unsatisfiable
// (returns sat = false); a cycle of reflexive axes collapses its
// variables. Returns changed = true if a collapse happened.
func eliminateDirectedCycles(q *cq.Query) (sat, changed bool) {
	g := cq.NewGraph(q)
	cycle := g.DirectedCycle()
	if cycle == nil {
		return true, false
	}
	// Which atoms lie on the cycle? Walk consecutive pairs.
	onCycle := map[int]bool{}
	for i := range cycle {
		from, to := cycle[i], cycle[(i+1)%len(cycle)]
		for _, e := range g.Out(from) {
			if e.To == to {
				if e.Axis != axis.ChildStar && e.Axis != axis.NextSiblingStar && e.Axis != axis.Self {
					return false, false
				}
				onCycle[e.AtomIndex] = true
				break
			}
		}
	}
	// Collapse all cycle variables into cycle[0].
	keep := cycle[0]
	for _, v := range cycle[1:] {
		q.SubstituteVar(v, keep)
	}
	// Remove the now-reflexive closure self-loops R*(v, v).
	var kept []cq.AxisAtom
	for _, at := range q.Atoms {
		if at.X == at.Y && (at.Axis == axis.ChildStar || at.Axis == axis.NextSiblingStar || at.Axis == axis.Self) {
			continue
		}
		kept = append(kept, at)
	}
	q.Atoms = kept
	return true, true
}

// bottomPair picks the variable z on the given undirected cycle that has
// no directed path to another cycle variable (the topologically last one)
// and returns two cycle atoms entering z.
func bottomPair(q *cq.Query, g *cq.Graph, cycleAtoms []int) ([2]int, error) {
	topo := g.TopoOrder()
	if topo == nil {
		return [2]int{}, fmt.Errorf("rewrite: directed cycle remained before lifting")
	}
	pos := make([]int, q.NumVars())
	for i, v := range topo {
		pos[v] = i
	}
	cycleVars := map[cq.Var]bool{}
	for _, ai := range cycleAtoms {
		cycleVars[q.Atoms[ai].X] = true
		cycleVars[q.Atoms[ai].Y] = true
	}
	z := cq.NilVar
	for v := range cycleVars {
		if z == cq.NilVar || pos[v] > pos[z] {
			z = v
		}
	}
	var entering []int
	for _, ai := range cycleAtoms {
		if q.Atoms[ai].Y == z {
			entering = append(entering, ai)
		}
	}
	if len(entering) < 2 {
		// Self-loop on the cycle (R(z,z)): treat both cycle incidences.
		for _, ai := range cycleAtoms {
			if q.Atoms[ai].X == z && q.Atoms[ai].Y == z {
				entering = append(entering, ai)
			}
		}
	}
	if len(entering) < 2 {
		return [2]int{}, fmt.Errorf("rewrite: bottom cycle variable has %d entering cycle atoms", len(entering))
	}
	return [2]int{entering[0], entering[1]}, nil
}

// applyLifter replaces atoms ai (R(x,z)) and bi (S(y,z)) of q with each
// conjunct of the lifter, returning one branch query per conjunct.
func applyLifter(q *cq.Query, ai, bi int, l Lifter) []*cq.Query {
	x, z := q.Atoms[ai].X, q.Atoms[ai].Y
	y := q.Atoms[bi].X
	var out []*cq.Query
	for _, conj := range l.Conjuncts {
		branch := q.Clone()
		// Remove both atoms (higher index first).
		hi, lo := ai, bi
		if hi < lo {
			hi, lo = lo, hi
		}
		branch.Atoms = append(branch.Atoms[:hi], branch.Atoms[hi+1:]...)
		branch.Atoms = append(branch.Atoms[:lo], branch.Atoms[lo+1:]...)
		var fresh cq.Var = cq.NilVar
		resolve := func(a Arg) cq.Var {
			switch a {
			case ArgX:
				return x
			case ArgY:
				return y
			case ArgZ:
				return z
			case ArgFresh:
				if fresh == cq.NilVar {
					fresh = branch.FreshVar("w")
				}
				return fresh
			default:
				panic("rewrite: bad Arg")
			}
		}
		for _, p := range conj {
			if p.IsEquality {
				a, b := resolve(p.A), resolve(p.B)
				// Substitute the second by the first (the paper replaces
				// each occurrence of w by v for an equality v = w).
				branch.SubstituteVar(b, a)
			} else {
				branch.AddAtom(p.Axis, resolve(p.A), resolve(p.B))
			}
		}
		branch.Dedup()
		out = append(out, branch)
	}
	return out
}

// TranslateCQ implements Theorem 6.10: any CQ over Ax is rewritten into
// an equivalent APQ over the signature extended with Child+ and
// NextSibling+. The pipeline:
//
//  1. replace every Following atom by Eq. (1): Child*(z1,x) ∧
//     NextSibling+(z1,z2) ∧ Child*(z2,y) with fresh z1, z2;
//  2. expand every Child* atom into the union Child+(x,y) ∨ x=y (2^n
//     branches for n Child* atoms);
//  3. run the Lemma 6.5 algorithm with the Theorem 6.6 lifters on each
//     branch and take the union.
func TranslateCQ(q *cq.Query, opts Options) (*APQ, error) {
	opts.defaults()
	step1 := RewriteFollowingEq1(q)
	branches := ExpandChildStar(step1)
	var all []*cq.Query
	seen := map[string]bool{}
	for _, b := range branches {
		apq, err := RewriteToAPQ(b, opts)
		if err != nil {
			return nil, err
		}
		for _, d := range apq.Disjuncts {
			key := d.CanonicalKey()
			if !seen[key] {
				seen[key] = true
				all = append(all, d)
			}
		}
	}
	return &APQ{Disjuncts: all}, nil
}

// RewriteFollowingEq1 replaces every Following atom by the Eq. (1)
// pattern over Child* and NextSibling+.
func RewriteFollowingEq1(q *cq.Query) *cq.Query {
	out := q.Clone()
	atoms := out.Atoms
	out.Atoms = nil
	for _, at := range atoms {
		if at.Axis != axis.Following {
			out.Atoms = append(out.Atoms, at)
			continue
		}
		z1 := out.FreshVar("eq1a")
		z2 := out.FreshVar("eq1b")
		out.AddAtom(axis.ChildStar, z1, at.X)
		out.AddAtom(axis.NextSiblingPlus, z1, z2)
		out.AddAtom(axis.ChildStar, z2, at.Y)
	}
	return out
}

// ExpandChildStar replaces each Child*(x,y) atom by either Child+(x,y) or
// the substitution y := x, yielding up to 2^n branch queries (the binary
// expansion in the proof of Theorem 6.10).
func ExpandChildStar(q *cq.Query) []*cq.Query {
	// Find the first Child* atom; recurse on both branches.
	for i, at := range q.Atoms {
		if at.Axis != axis.ChildStar {
			continue
		}
		plus := q.Clone()
		plus.Atoms[i].Axis = axis.ChildPlus
		merged := q.Clone()
		merged.Atoms = append(merged.Atoms[:i], merged.Atoms[i+1:]...)
		merged.SubstituteVar(at.Y, at.X)
		return append(ExpandChildStar(plus), ExpandChildStar(merged)...)
	}
	return []*cq.Query{q}
}
