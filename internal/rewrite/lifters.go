package rewrite

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/tree"
)

// Arg identifies a position in a join-lifter formula ψ(x, y, z); Fresh is
// an extension (not used by the paper's Definition 6.2 forms) allowing
// corrected lifters with one auxiliary variable.
type Arg int

// Lifter formula arguments.
const (
	ArgX Arg = iota
	ArgY
	ArgZ
	ArgFresh
)

func (a Arg) String() string {
	switch a {
	case ArgX:
		return "x"
	case ArgY:
		return "y"
	case ArgZ:
		return "z"
	case ArgFresh:
		return "w"
	default:
		return fmt.Sprintf("Arg(%d)", int(a))
	}
}

// Part is one literal of a lifter conjunct: either a binary axis atom
// P(A, B) or an equality A = B (Axis is ignored for equalities).
type Part struct {
	IsEquality bool
	Axis       axis.Axis
	A, B       Arg
}

// Conjunct is a conjunction of parts; a lifter formula is a disjunction
// of conjuncts (DNF, Definition 6.2).
type Conjunct []Part

// Lifter is a join lifter candidate ψ_{R,S} for φ_{R,S}(x,y,z) =
// R(x,z) ∧ S(y,z).
type Lifter struct {
	R, S      axis.Axis
	Conjuncts []Conjunct
	// Source documents provenance: "Thm 6.6", "Thm 6.9", "corrected".
	Source string
}

func atom(a axis.Axis, x, y Arg) Part { return Part{Axis: a, A: x, B: y} }
func eq(x, y Arg) Part                { return Part{IsEquality: true, A: x, B: y} }

// String renders ψ in the paper's notation.
func (l Lifter) String() string {
	s := fmt.Sprintf("ψ_{%v,%v}(x,y,z) = ", l.R, l.S)
	for i, c := range l.Conjuncts {
		if i > 0 {
			s += " ∨ "
		}
		s += "("
		for j, p := range c {
			if j > 0 {
				s += " ∧ "
			}
			if p.IsEquality {
				s += fmt.Sprintf("%v = %v", p.A, p.B)
			} else {
				s += fmt.Sprintf("%v(%v, %v)", p.Axis, p.A, p.B)
			}
		}
		s += ")"
	}
	return s
}

// Holds evaluates φ_{R,S} on concrete nodes.
func phiHolds(t *tree.Tree, r, s axis.Axis, x, y, z tree.NodeID) bool {
	return axis.Holds(t, r, x, z) && axis.Holds(t, s, y, z)
}

// Holds evaluates ψ on concrete nodes; conjuncts with a Fresh argument
// existentially quantify it over all nodes.
func (l Lifter) Holds(t *tree.Tree, x, y, z tree.NodeID) bool {
	assign := func(a Arg, w tree.NodeID) tree.NodeID {
		switch a {
		case ArgX:
			return x
		case ArgY:
			return y
		case ArgZ:
			return z
		case ArgFresh:
			return w
		default:
			panic("rewrite: bad Arg")
		}
	}
	evalConj := func(c Conjunct, w tree.NodeID) bool {
		for _, p := range c {
			a, b := assign(p.A, w), assign(p.B, w)
			if p.IsEquality {
				if a != b {
					return false
				}
			} else if !axis.Holds(t, p.Axis, a, b) {
				return false
			}
		}
		return true
	}
	for _, c := range l.Conjuncts {
		needsFresh := false
		for _, p := range c {
			if p.A == ArgFresh || p.B == ArgFresh {
				needsFresh = true
			}
		}
		if !needsFresh {
			if evalConj(c, tree.NilNode) {
				return true
			}
			continue
		}
		for w := tree.NodeID(0); int(w) < t.Len(); w++ {
			if evalConj(c, w) {
				return true
			}
		}
	}
	return false
}

// Verify exhaustively checks Definition 6.2(2): ψ ≡ φ on every tree with
// up to maxNodes nodes over a small alphabet, returning a counterexample
// description or "" if none found.
func (l Lifter) Verify(maxNodes int) string {
	var failure string
	tree.EnumerateAll(maxNodes, []string{"A"}, func(t *tree.Tree) bool {
		n := tree.NodeID(t.Len())
		for x := tree.NodeID(0); x < n; x++ {
			for y := tree.NodeID(0); y < n; y++ {
				for z := tree.NodeID(0); z < n; z++ {
					phi := phiHolds(t, l.R, l.S, x, y, z)
					psi := l.Holds(t, x, y, z)
					if phi != psi {
						failure = fmt.Sprintf("%v: on %s with x=%d y=%d z=%d: φ=%v ψ=%v",
							l, t, x, y, z, phi, psi)
						return false
					}
				}
			}
		}
		return true
	})
	return failure
}

// Theorem66Lifters returns the verified lifter table of Theorem 6.6 for
// all pairs over {Child, Child*, Child+, NextSibling, NextSibling*,
// NextSibling+}. Each entry is exactly the paper's formula.
func Theorem66Lifters() map[[2]axis.Axis]Lifter {
	out := map[[2]axis.Axis]Lifter{}
	add := func(r, s axis.Axis, cs ...Conjunct) {
		out[[2]axis.Axis{r, s}] = Lifter{R: r, S: s, Conjuncts: cs, Source: "Thm 6.6"}
	}
	chFam := func(base, plus, star axis.Axis) {
		// R = S = base: R(x,z) ∧ x=y.
		add(base, base, Conjunct{atom(base, ArgX, ArgZ), eq(ArgX, ArgY)})
		// R = S = star: (R(x,z) ∧ R(y,x)) ∨ (R(x,y) ∧ R(y,z)).
		add(star, star,
			Conjunct{atom(star, ArgX, ArgZ), atom(star, ArgY, ArgX)},
			Conjunct{atom(star, ArgX, ArgY), atom(star, ArgY, ArgZ)})
		// R = S = plus: two orders plus equality.
		add(plus, plus,
			Conjunct{atom(plus, ArgX, ArgZ), atom(plus, ArgY, ArgX)},
			Conjunct{atom(plus, ArgX, ArgY), atom(plus, ArgY, ArgZ)},
			Conjunct{atom(plus, ArgX, ArgZ), eq(ArgX, ArgY)})
		// R = base, S = star: (R(x,z) ∧ y=z) ∨ (R(x,z) ∧ S(y,x)).
		add(base, star,
			Conjunct{atom(base, ArgX, ArgZ), eq(ArgY, ArgZ)},
			Conjunct{atom(base, ArgX, ArgZ), atom(star, ArgY, ArgX)})
		// R = base, S = plus: (R(x,z) ∧ x=y) ∨ (R(x,z) ∧ S(y,x)).
		add(base, plus,
			Conjunct{atom(base, ArgX, ArgZ), eq(ArgX, ArgY)},
			Conjunct{atom(base, ArgX, ArgZ), atom(plus, ArgY, ArgX)})
		// R = plus, S = star: three disjuncts.
		add(plus, star,
			Conjunct{atom(plus, ArgX, ArgZ), eq(ArgY, ArgZ)},
			Conjunct{atom(plus, ArgX, ArgZ), atom(star, ArgY, ArgX)},
			Conjunct{atom(plus, ArgY, ArgZ), atom(star, ArgX, ArgY)})
	}
	chFam(axis.Child, axis.ChildPlus, axis.ChildStar)
	chFam(axis.NextSibling, axis.NextSiblingPlus, axis.NextSiblingStar)

	// R in the NextSibling family, S in {Child, Child+}: R(x,z) ∧ S(y,x).
	for _, r := range []axis.Axis{axis.NextSibling, axis.NextSiblingStar, axis.NextSiblingPlus} {
		for _, s := range []axis.Axis{axis.Child, axis.ChildPlus} {
			add(r, s, Conjunct{atom(r, ArgX, ArgZ), atom(s, ArgY, ArgX)})
		}
		// S = Child*: (R(x,z) ∧ y=z) ∨ (R(x,z) ∧ Child+(y,x)).
		add(r, axis.ChildStar,
			Conjunct{atom(r, ArgX, ArgZ), eq(ArgY, ArgZ)},
			Conjunct{atom(r, ArgX, ArgZ), atom(axis.ChildPlus, ArgY, ArgX)})
	}

	// Remaining pairs by the symmetric rule ψ_{R,S}(x,y,z) = ψ_{S,R}(y,x,z).
	family := []axis.Axis{
		axis.Child, axis.ChildPlus, axis.ChildStar,
		axis.NextSibling, axis.NextSiblingPlus, axis.NextSiblingStar,
	}
	for _, r := range family {
		for _, s := range family {
			if _, ok := out[[2]axis.Axis{r, s}]; ok {
				continue
			}
			base, ok := out[[2]axis.Axis{s, r}]
			if !ok {
				panic(fmt.Sprintf("rewrite: missing lifter for (%v,%v) and (%v,%v)", r, s, s, r))
			}
			out[[2]axis.Axis{r, s}] = Lifter{R: r, S: s, Conjuncts: swapXY(base.Conjuncts), Source: base.Source + " (swapped)"}
		}
	}
	return out
}

func swapXY(cs []Conjunct) []Conjunct {
	swap := func(a Arg) Arg {
		switch a {
		case ArgX:
			return ArgY
		case ArgY:
			return ArgX
		default:
			return a
		}
	}
	out := make([]Conjunct, len(cs))
	for i, c := range cs {
		nc := make(Conjunct, len(c))
		for j, p := range c {
			nc[j] = Part{IsEquality: p.IsEquality, Axis: p.Axis, A: swap(p.A), B: swap(p.B)}
		}
		out[i] = nc
	}
	return out
}

// Theorem69Lifters returns the lifter formulas of Theorem 6.9 (S =
// Following) exactly as printed in the paper. NOTE (documented erratum,
// see EXPERIMENTS.md): under the standard Following semantics of Eq. (1),
// machine verification finds counterexamples for these entries (they miss
// the case where y lies inside the subtree of x or of an intermediate
// sibling, and ψ_{Child,Following}'s first disjunct is unsound). They are
// provided for reference and for the erratum-documenting tests; the sound
// rewriting pipeline for queries with Following is TranslateCQ (Theorem
// 6.10), which eliminates Following before lifting.
func Theorem69Lifters() map[[2]axis.Axis]Lifter {
	out := map[[2]axis.Axis]Lifter{}
	add := func(r axis.Axis, cs ...Conjunct) {
		out[[2]axis.Axis{r, axis.Following}] = Lifter{R: r, S: axis.Following, Conjuncts: cs, Source: "Thm 6.9 (as printed)"}
	}
	F := axis.Following
	add(axis.NextSibling,
		Conjunct{atom(axis.NextSibling, ArgX, ArgZ), eq(ArgX, ArgY)},
		Conjunct{atom(axis.NextSibling, ArgX, ArgZ), atom(F, ArgY, ArgX)})
	add(axis.NextSiblingPlus,
		Conjunct{atom(axis.NextSiblingPlus, ArgX, ArgZ), eq(ArgX, ArgY)},
		Conjunct{atom(axis.NextSiblingPlus, ArgX, ArgZ), atom(F, ArgY, ArgX)},
		Conjunct{atom(axis.NextSiblingPlus, ArgX, ArgY), atom(axis.NextSiblingPlus, ArgY, ArgZ)})
	add(axis.NextSiblingStar,
		Conjunct{atom(axis.NextSiblingStar, ArgX, ArgZ), atom(F, ArgY, ArgX)},
		Conjunct{atom(axis.NextSiblingStar, ArgX, ArgY), atom(axis.NextSiblingPlus, ArgY, ArgZ)})
	add(axis.Child,
		Conjunct{atom(axis.Child, ArgX, ArgZ), eq(ArgX, ArgY)},
		Conjunct{atom(axis.Child, ArgX, ArgZ), atom(F, ArgY, ArgX)},
		Conjunct{atom(axis.Child, ArgX, ArgY), atom(axis.NextSiblingPlus, ArgY, ArgZ)})
	add(F,
		Conjunct{atom(F, ArgX, ArgZ), eq(ArgX, ArgY)},
		Conjunct{atom(F, ArgX, ArgZ), atom(F, ArgY, ArgX)},
		Conjunct{atom(F, ArgX, ArgY), atom(F, ArgY, ArgZ)})
	return out
}
