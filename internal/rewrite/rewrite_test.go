package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/axis"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/tree"
)

func TestTheorem66LiftersVerify(t *testing.T) {
	// Machine-check Definition 6.2 equivalence for every Theorem 6.6
	// lifter on all trees with up to 5 nodes.
	if testing.Short() {
		t.Skip("exhaustive lifter verification")
	}
	for pair, l := range Theorem66Lifters() {
		if msg := l.Verify(5); msg != "" {
			t.Errorf("lifter (%v, %v) fails: %s", pair[0], pair[1], msg)
		}
	}
}

func TestTheorem66LiftersComplete(t *testing.T) {
	lifters := Theorem66Lifters()
	family := []axis.Axis{
		axis.Child, axis.ChildPlus, axis.ChildStar,
		axis.NextSibling, axis.NextSiblingPlus, axis.NextSiblingStar,
	}
	for _, r := range family {
		for _, s := range family {
			if _, ok := lifters[[2]axis.Axis{r, s}]; !ok {
				t.Errorf("missing lifter (%v, %v)", r, s)
			}
		}
	}
	if len(lifters) != 36 {
		t.Errorf("lifter table has %d entries, want 36", len(lifters))
	}
}

func TestTheorem69LiftersErratum(t *testing.T) {
	// Documented finding: the Theorem 6.9 lifter formulas, as printed,
	// are NOT equivalences under the Eq. (1) Following semantics — they
	// miss the case where y lies inside the subtree of x (or of an
	// intermediate sibling). This test pins the counterexamples down so
	// the erratum note in EXPERIMENTS.md stays accurate. If this test
	// ever fails, the table became correct and the note must be removed.
	broken := 0
	for pair, l := range Theorem69Lifters() {
		if msg := l.Verify(4); msg != "" {
			broken++
			t.Logf("counterexample for (%v, %v): %s", pair[0], pair[1], msg)
		}
	}
	if broken == 0 {
		t.Errorf("expected the printed Theorem 6.9 lifters to fail machine verification; update the erratum note")
	}
}

// equivalentOnSmallTrees exhaustively compares q and its APQ on all trees
// up to maxNodes over alphabet.
func equivalentOnSmallTrees(t *testing.T, q *cq.Query, a *APQ, maxNodes int, alphabet []string) {
	t.Helper()
	be := core.NewBacktrackEngine()
	tree.EnumerateAll(maxNodes, alphabet, func(tr *tree.Tree) bool {
		want := be.EvalBoolean(tr, q)
		got := a.EvalBoolean(tr)
		if want != got {
			t.Fatalf("APQ differs on %s: CQ %v, APQ %v\nCQ: %s\nAPQ: %s", tr, want, got, q, a)
		}
		return true
	})
}

func TestRewriteAlreadyAcyclic(t *testing.T) {
	q := cq.MustParse("Q() <- A(x), Child(x, y), B(y)")
	apq, err := RewriteToAPQ(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(apq.Disjuncts) != 1 {
		t.Fatalf("want 1 disjunct, got %d", len(apq.Disjuncts))
	}
	equivalentOnSmallTrees(t, q, apq, 4, []string{"A", "B"})
}

func TestRewriteExample67(t *testing.T) {
	// Example 6.7: Q0(x,y) ← Child*(x,y) ∧ NextSibling*(x,y) is
	// equivalent to {Q(x,x) ← Node(x)}.
	q := cq.MustParse("Q(x, y) <- Child*(x, y), NextSibling*(x, y)")
	apq, err := RewriteToAPQ(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !apq.IsAcyclic() {
		t.Fatalf("APQ not acyclic: %s", apq)
	}
	// Semantics: answers are exactly the pairs (v, v).
	tr := tree.MustParseTerm("A(B(C),D)")
	got := apq.EvalAll(tr)
	if len(got) != tr.Len() {
		t.Fatalf("want %d diagonal answers, got %d: %v", tr.Len(), len(got), got)
	}
	for _, tup := range got {
		if tup[0] != tup[1] {
			t.Errorf("non-diagonal answer %v", tup)
		}
	}
}

func TestRewriteDirectedCycleUnsat(t *testing.T) {
	q := cq.MustParse("Q() <- Child+(x, y), Child+(y, x)")
	apq, err := RewriteToAPQ(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(apq.Disjuncts) != 0 {
		t.Fatalf("cyclic-unsat query should give empty APQ, got %s", apq)
	}
}

func TestRewriteReflexiveCycleCollapse(t *testing.T) {
	q := cq.MustParse("Q() <- Child*(x, y), NextSibling*(y, x), A(x), B(y)")
	apq, err := RewriteToAPQ(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cycle collapses to a single variable with labels A and B.
	equivalentOnSmallTrees(t, q, apq, 4, []string{"A", "B"})
}

func TestRewriteRandomCyclicQueries(t *testing.T) {
	// Random cyclic queries over the Theorem 6.6 family: rewritten APQ
	// must be acyclic and equivalent on random trees.
	family := []axis.Axis{
		axis.Child, axis.ChildPlus, axis.ChildStar,
		axis.NextSibling, axis.NextSiblingPlus, axis.NextSiblingStar,
	}
	rng := rand.New(rand.NewSource(61))
	be := core.NewBacktrackEngine()
	for trial := 0; trial < 25; trial++ {
		q := cq.New()
		nv := 3 + rng.Intn(2)
		vars := make([]cq.Var, nv)
		for i := range vars {
			vars[i] = q.AddVar(string(rune('a' + i)))
		}
		na := 3 + rng.Intn(3)
		for i := 0; i < na; i++ {
			x := vars[rng.Intn(nv)]
			y := vars[rng.Intn(nv)]
			q.AddAtom(family[rng.Intn(len(family))], x, y)
		}
		if rng.Intn(2) == 0 {
			q.AddLabel("A", vars[rng.Intn(nv)])
		}
		apq, err := RewriteToAPQ(q, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v\nquery %s", trial, err, q)
		}
		if !apq.IsAcyclic() {
			t.Fatalf("trial %d: result not acyclic\n%s", trial, apq)
		}
		for sub := 0; sub < 12; sub++ {
			tr := tree.Random(rng, tree.RandomConfig{
				Nodes: 1 + rng.Intn(9), MaxChildren: 3,
				Alphabet: []string{"A", "B"},
			})
			want := be.EvalBoolean(tr, q)
			got := apq.EvalBoolean(tr)
			if want != got {
				t.Fatalf("trial %d: differs on %s: CQ %v APQ %v\nCQ: %s\nAPQ: %s",
					trial, tr, want, got, q, apq)
			}
		}
	}
}

func TestTranslateCQWithFollowing(t *testing.T) {
	// Theorem 6.10 pipeline on the intro query (Fig. 8's subject).
	q := IntroQuery()
	apq, err := TranslateCQ(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !apq.IsAcyclic() {
		t.Fatalf("not acyclic:\n%s", apq)
	}
	rng := rand.New(rand.NewSource(15))
	be := core.NewBacktrackEngine()
	for trial := 0; trial < 30; trial++ {
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(12), MaxChildren: 3,
			Alphabet: []string{"A", "B", "C"},
		})
		want := be.EvalAll(tr, q)
		got := apq.EvalAll(tr)
		if len(want) != len(got) {
			t.Fatalf("answer count differs on %s: %v vs %v", tr, want, got)
		}
		for i := range want {
			if want[i][0] != got[i][0] {
				t.Fatalf("answers differ on %s", tr)
			}
		}
	}
}

func TestTranslateCQFigure1(t *testing.T) {
	// The (cyclic) Fig. 1 treebank query translates to an equivalent APQ.
	q := Figure1Query()
	apq, err := TranslateCQ(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !apq.IsAcyclic() {
		t.Fatal("not acyclic")
	}
	rng := rand.New(rand.NewSource(27))
	be := core.NewBacktrackEngine()
	for trial := 0; trial < 15; trial++ {
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(12), MaxChildren: 3,
			Alphabet: []string{"S", "NP", "PP"},
		})
		want := be.EvalAll(tr, q)
		got := apq.EvalAll(tr)
		if len(want) != len(got) {
			t.Fatalf("answer count differs on %s", tr)
		}
	}
}

func TestExpandChildStar(t *testing.T) {
	q := cq.MustParse("Q() <- Child*(x, y), Child*(y, z)")
	branches := ExpandChildStar(q)
	if len(branches) != 4 {
		t.Fatalf("want 4 branches, got %d", len(branches))
	}
	for _, b := range branches {
		for _, at := range b.Atoms {
			if at.Axis == axis.ChildStar {
				t.Errorf("branch still has Child*: %s", b)
			}
		}
	}
}

func TestRewriteFollowingEq1(t *testing.T) {
	q := cq.MustParse("Q() <- Following(x, y)")
	r := RewriteFollowingEq1(q)
	if len(r.Atoms) != 3 {
		t.Fatalf("want 3 atoms, got %d", len(r.Atoms))
	}
	sig := r.Signature()
	if len(sig) != 2 || sig[0] != axis.ChildStar || sig[1] != axis.NextSiblingPlus {
		t.Errorf("signature = %v", sig)
	}
	// Semantics preserved (Eq. (1)).
	be := core.NewBacktrackEngine()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		tr := tree.Random(rng, tree.DefaultRandomConfig(1+rng.Intn(10)))
		if be.EvalBoolean(tr, q) != be.EvalBoolean(tr, r) {
			t.Fatalf("Eq.(1) rewrite differs on %s", tr)
		}
	}
}

func TestLinearRewrite(t *testing.T) {
	// A cyclic CQ[Child, NextSibling]: converging Child and NextSibling.
	q := cq.MustParse("Q() <- A(x), Child(x, z), NextSibling(y, z), B(y), C(z)")
	r, err := LinearRewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("query is satisfiable, rewrite returned nil")
	}
	if cq.Classify(r) != cq.Acyclic {
		t.Fatalf("result not acyclic: %s", r)
	}
	be := core.NewBacktrackEngine()
	tree.EnumerateAll(4, []string{"A", "B", "C"}, func(tr *tree.Tree) bool {
		if be.EvalBoolean(tr, q) != be.EvalBoolean(tr, r) {
			t.Fatalf("LinearRewrite differs on %s", tr)
		}
		return true
	})
}

func TestLinearRewriteUnsat(t *testing.T) {
	q := cq.MustParse("Q() <- Child(x, y), Child(y, x)")
	r, err := LinearRewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if r != nil {
		t.Fatalf("directed Child cycle should be unsatisfiable, got %s", r)
	}
}

func TestLinearRewriteRejectsOtherAxes(t *testing.T) {
	q := cq.MustParse("Q() <- Child+(x, y)")
	if _, err := LinearRewrite(q); err == nil {
		t.Errorf("expected signature error")
	}
}

func TestRewriteMergesDuplicateParents(t *testing.T) {
	// Child(x,z), Child(y,z) must merge x and y (unique parent).
	q := cq.MustParse("Q() <- A(x), B(y), Child(x, z), Child(y, z)")
	apq, err := RewriteToAPQ(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSmallTrees(t, q, apq, 4, []string{"A", "B"})
	// On trees where no node has both labels, the query must be false.
	tr := tree.MustParseTerm("A(B(C))")
	if apq.EvalBoolean(tr) {
		t.Errorf("merged query should require a node labeled both A and B")
	}
	multi := tree.MustParseTerm("A|B(C)")
	if !apq.EvalBoolean(multi) {
		t.Errorf("multi-labeled parent should satisfy the query")
	}
}

func TestDisjunctsContainedInOriginal(t *testing.T) {
	// Soundness of the rewriting, checked through the containment lens:
	// every APQ disjunct is contained in the original query, and the
	// original is contained in the union (verified by the equivalence
	// tests above); here we check the per-disjunct direction exhaustively
	// on small trees.
	q := cq.MustParse("Q(z) <- Child+(x, z), Child+(y, z), A(x), B(y)")
	apq, err := RewriteToAPQ(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range apq.Disjuncts {
		if ce := core.CheckContainment(d, q, 4, []string{"A", "B"}); ce != nil {
			t.Errorf("disjunct %d not contained in the original: %s\n%s", i, ce, d)
		}
	}
}

func TestAcyclicQueriesAreFixedPoints(t *testing.T) {
	// An already-acyclic query over the 6.6 family passes through the
	// algorithm with its semantics intact and exactly one disjunct.
	srcs := []string{
		"Q(y) <- A(x), Child(x, y)",
		"Q() <- Child+(x, y), NextSibling(y, z), B(z)",
		"Q(x) <- NextSibling*(x, y), Child(y, z)",
	}
	for _, src := range srcs {
		q := cq.MustParse(src)
		apq, err := RewriteToAPQ(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(apq.Disjuncts) != 1 {
			t.Errorf("%s: %d disjuncts, want 1", src, len(apq.Disjuncts))
		}
		l, r := core.CheckEquivalence(apq.Disjuncts[0], q, 4, []string{"A", "B"})
		if l != nil || r != nil {
			t.Errorf("%s: fixed point not equivalent (%v / %v)", src, l, r)
		}
	}
}

func TestAPQString(t *testing.T) {
	empty := &APQ{}
	if !strings.Contains(empty.String(), "unsatisfiable") {
		t.Errorf("empty APQ string: %s", empty.String())
	}
}

func TestRewriteBlowupBounded(t *testing.T) {
	opts := Options{MaxQueries: 10}
	// A query dense enough to exceed a tiny budget.
	q := cq.New()
	vars := make([]cq.Var, 4)
	for i := range vars {
		vars[i] = q.AddVar(string(rune('a' + i)))
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				q.AddAtom(axis.ChildStar, vars[i], vars[j])
			}
		}
	}
	if _, err := RewriteToAPQ(q, opts); err == nil {
		t.Skip("budget not exceeded; acceptable (query collapsed quickly)")
	}
}
