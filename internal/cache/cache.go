// Package cache is the serving tier's result cache: materialized
// evaluation results keyed by (query fingerprint, document name,
// document version, mode), bounded by bytes, invalidated by document
// lifecycle events.
//
// The paper's determinism makes this sound by construction: a prepared
// query's answer on a document is a pure function of (query, document),
// so a result cached under the document's version can be served verbatim
// until the corpus replaces that version. Production CQ serving is
// dominated by repeated (query, document) pairs against slowly-mutating
// documents, which is exactly the shape an LRU result cache converts
// from per-request evaluation cost into a map lookup.
//
// Design:
//
//   - Sharded by document name: invalidating a document on Swap/Remove/
//     evict touches exactly one shard, and concurrent lookups for
//     different documents never contend on one lock.
//   - Byte-bounded: each shard holds budget/shards bytes and evicts its
//     own LRU tail; a per-entry cap keeps million-answer relations from
//     monopolizing (or thrashing) the budget — oversized results simply
//     never cache.
//   - Singleflight: Do collapses concurrent misses on the same key into
//     one computation; followers wait (context-aware) and share the
//     leader's result without re-evaluating.
//
// Values are stored as given and returned to every subsequent caller, so
// they must be treated as immutable by all readers — the serving layer
// stores fully materialized bool/[]NodeID/[][]NodeID results and only
// ever reads them (prefix slicing for capped requests is fine).
package cache

import (
	"context"
	"sync"
	"sync/atomic"
)

// Key identifies one cached result: the query's injective fingerprint,
// the document's corpus name and version, and the evaluation mode
// ("bool", "nodes", "tuples"). Version makes staleness unservable — a
// swapped document gets a new version, so old entries can never match a
// post-swap lookup even before invalidation reclaims them.
type Key struct {
	Query   string
	Doc     string
	Version uint64
	Mode    string
}

// shardCount is the fixed shard fan-out. Shards are selected by document
// name, so invalidation scans one shard's per-document index only.
const shardCount = 16

// entry is one cached result in a shard's intrusive LRU list.
type entry struct {
	key        Key
	val        any
	bytes      int64
	prev, next *entry // LRU list; head = most recent
}

// flight is one in-progress computation under Do: followers block on
// done and read val/err afterwards.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// shard is one lock domain: an LRU-ordered entry map plus the in-flight
// computations for keys hashing here.
type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	byDoc   map[string]map[*entry]struct{}
	head    *entry // most recently used
	tail    *entry // least recently used
	bytes   int64
	flights map[Key]*flight
}

// Stats is a point-in-time snapshot of the cache's counters and
// occupancy; the counters are cumulative since construction.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Collapsed     int64 // Do followers served by a leader's computation
	TooLarge      int64 // results rejected by the per-entry byte cap
	Entries       int64
	Bytes         int64
}

// Cache is a sharded, byte-bounded, LRU result cache. All methods are
// safe for concurrent use. A nil *Cache is a valid always-miss cache —
// Get misses, Put and Invalidate are no-ops, Do computes without
// caching — so callers can thread one pointer through unconditionally.
type Cache struct {
	shards   [shardCount]shard
	perShard int64
	maxEntry int64

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	collapsed     atomic.Int64
	tooLarge      atomic.Int64
}

// New builds a cache with a total byte budget and a per-entry byte cap.
// maxBytes <= 0 returns nil (the always-miss cache). maxEntry <= 0
// defaults to maxBytes/shardCount — an entry may fill a whole shard but
// no more, so one giant result cannot claim the entire budget.
func New(maxBytes, maxEntry int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	perShard := maxBytes / shardCount
	if perShard < 1 {
		perShard = 1
	}
	if maxEntry <= 0 || maxEntry > perShard {
		maxEntry = perShard
	}
	c := &Cache{perShard: perShard, maxEntry: maxEntry}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*entry)
		c.shards[i].byDoc = make(map[string]map[*entry]struct{})
		c.shards[i].flights = make(map[Key]*flight)
	}
	return c
}

// MaxEntry returns the per-entry byte cap (0 for the nil cache). Callers
// producing results incrementally can use it to stop accumulating once a
// value can no longer cache.
func (c *Cache) MaxEntry() int64 {
	if c == nil {
		return 0
	}
	return c.maxEntry
}

// shardFor hashes the document name (FNV-1a) so all of one document's
// entries — every query, version, and mode — land in the same shard.
func (c *Cache) shardFor(doc string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(doc); i++ {
		h ^= uint64(doc[i])
		h *= prime64
	}
	return &c.shards[h%shardCount]
}

// Get returns the cached value for k, promoting it to most-recently-used.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k.Doc)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.moveToFront(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores v under k, charging size bytes. Results over the per-entry
// cap are rejected (counted in Stats.TooLarge): a result too big to be
// worth its residency never displaces many small hot entries. Storing an
// existing key replaces its value and recharges its size.
func (c *Cache) Put(k Key, v any, size int64) {
	if c == nil {
		return
	}
	if size > c.maxEntry {
		c.tooLarge.Add(1)
		return
	}
	if size < 1 {
		size = 1 // even a bool costs bookkeeping; never charge zero
	}
	s := c.shardFor(k.Doc)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.bytes += size - e.bytes
		e.val, e.bytes = v, size
		s.moveToFront(e)
	} else {
		e := &entry{key: k, val: v, bytes: size}
		s.entries[k] = e
		docSet, ok := s.byDoc[k.Doc]
		if !ok {
			docSet = make(map[*entry]struct{})
			s.byDoc[k.Doc] = docSet
		}
		docSet[e] = struct{}{}
		s.pushFront(e)
		s.bytes += size
	}
	// Evict this shard's LRU tail down to budget; the entry just written
	// is at the front and survives unless it alone exceeds the shard.
	evicted := 0
	for s.bytes > c.perShard && s.tail != nil && s.tail != s.head {
		s.removeLocked(s.tail)
		evicted++
	}
	if s.bytes > c.perShard && s.head != nil && s.head.bytes > c.perShard {
		// Degenerate: the fresh entry alone exceeds the shard budget
		// (possible only when maxEntry == perShard exactly).
		s.removeLocked(s.head)
		evicted++
	}
	s.mu.Unlock()
	c.evictions.Add(int64(evicted))
}

// InvalidateDoc drops every entry for the named document — all queries,
// versions, and modes — and returns how many were dropped. Called by the
// corpus invalidation hook on Swap, Remove, eviction, and dehydration.
func (c *Cache) InvalidateDoc(doc string) int {
	if c == nil {
		return 0
	}
	s := c.shardFor(doc)
	s.mu.Lock()
	set := s.byDoc[doc]
	n := len(set)
	for e := range set {
		s.removeLocked(e)
	}
	s.mu.Unlock()
	c.invalidations.Add(int64(n))
	return n
}

// Do returns the cached value for k, or computes it exactly once among
// concurrent callers: the first caller (the leader) runs compute and
// stores the result via Put's policy; followers arriving before the
// leader finishes block until it does — or until their own ctx dies —
// and share the leader's value and error without computing.
//
// compute returns (value, size, error). An error is returned to the
// leader and every follower, and nothing caches. On follower timeout the
// follower gets ctx.Err() while the leader's computation continues for
// the callers still waiting on it.
func (c *Cache) Do(ctx context.Context, k Key, compute func() (any, int64, error)) (any, error) {
	if c == nil {
		v, _, err := compute()
		return v, err
	}
	s := c.shardFor(k.Doc)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.moveToFront(e)
		v := e.val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, nil
	}
	if f, ok := s.flights[k]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil {
				c.collapsed.Add(1)
				return f.val, nil
			}
			return nil, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[k] = f
	s.mu.Unlock()
	c.misses.Add(1)

	v, size, err := compute()
	f.val, f.err = v, err

	s.mu.Lock()
	delete(s.flights, k)
	s.mu.Unlock()
	close(f.done)
	if err == nil {
		c.Put(k, v, size)
	}
	return v, err
}

// Stats snapshots the counters and sums shard occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Collapsed:     c.collapsed.Load(),
		TooLarge:      c.tooLarge.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.entries))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// ---- intrusive LRU list (caller holds s.mu) -------------------------------

func (s *shard) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// removeLocked unlinks e, deletes its map entries, and refunds its bytes.
func (s *shard) removeLocked(e *entry) {
	s.unlink(e)
	delete(s.entries, e.key)
	if set, ok := s.byDoc[e.key.Doc]; ok {
		delete(set, e)
		if len(set) == 0 {
			delete(s.byDoc, e.key.Doc)
		}
	}
	s.bytes -= e.bytes
}
