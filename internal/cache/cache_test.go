package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(q, doc string, ver uint64) Key {
	return Key{Query: q, Doc: doc, Version: ver, Mode: "tuples"}
}

// TestGetPut: basic hit/miss behavior, version sensitivity, and stat
// accounting.
func TestGetPut(t *testing.T) {
	c := New(1<<20, 0)
	k := key("q1", "doc", 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "result", 100)
	v, ok := c.Get(k)
	if !ok || v != "result" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	// A different version of the same document is a different key: the
	// post-swap lookup can never see the pre-swap result.
	if _, ok := c.Get(key("q1", "doc", 2)); ok {
		t.Fatal("version 2 lookup hit a version 1 entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestPerEntryCap: results over the cap never cache.
func TestPerEntryCap(t *testing.T) {
	c := New(1<<20, 512)
	c.Put(key("q", "d", 1), "big", 513)
	if _, ok := c.Get(key("q", "d", 1)); ok {
		t.Fatal("oversized entry cached")
	}
	if st := c.Stats(); st.TooLarge != 1 || st.Entries != 0 {
		t.Fatalf("stats: %+v", st)
	}
	c.Put(key("q", "d", 1), "fits", 512)
	if _, ok := c.Get(key("q", "d", 1)); !ok {
		t.Fatal("at-cap entry rejected")
	}
}

// TestLRUEviction: filling one shard past its budget evicts its
// least-recently-used entries, and a Get refreshes recency.
func TestLRUEviction(t *testing.T) {
	// One shard holds (1<<20)/shardCount = 64 KiB. All keys share one
	// document name, so they collide into a single shard deliberately.
	c := New(1<<20, 0)
	perShard := int64((1 << 20) / shardCount)
	entrySize := perShard / 4

	for i := 0; i < 4; i++ {
		c.Put(key(fmt.Sprintf("q%d", i), "doc", 1), i, entrySize)
	}
	// Touch q0 so q1 is now the LRU victim.
	if _, ok := c.Get(key("q0", "doc", 1)); !ok {
		t.Fatal("q0 missing before overflow")
	}
	c.Put(key("q4", "doc", 1), 4, entrySize)

	if _, ok := c.Get(key("q1", "doc", 1)); ok {
		t.Fatal("LRU victim q1 survived")
	}
	for _, q := range []string{"q0", "q2", "q3", "q4"} {
		if _, ok := c.Get(key(q, "doc", 1)); !ok {
			t.Fatalf("%s evicted out of LRU order", q)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Bytes > perShard {
		t.Fatalf("stats: %+v", st)
	}
}

// TestInvalidateDoc: dropping a document removes exactly its entries —
// every query, version, and mode — and leaves other documents alone.
func TestInvalidateDoc(t *testing.T) {
	c := New(1<<20, 0)
	c.Put(key("q1", "a", 1), 1, 10)
	c.Put(key("q2", "a", 1), 2, 10)
	c.Put(key("q1", "a", 2), 3, 10)
	c.Put(Key{Query: "q1", Doc: "a", Version: 1, Mode: "bool"}, 4, 10)
	c.Put(key("q1", "b", 1), 5, 10)

	if n := c.InvalidateDoc("a"); n != 4 {
		t.Fatalf("InvalidateDoc(a) = %d, want 4", n)
	}
	if _, ok := c.Get(key("q1", "a", 1)); ok {
		t.Fatal("entry for a survived invalidation")
	}
	if _, ok := c.Get(key("q1", "b", 1)); !ok {
		t.Fatal("entry for b was collateral damage")
	}
	if n := c.InvalidateDoc("a"); n != 0 {
		t.Fatalf("second invalidation dropped %d", n)
	}
	if st := c.Stats(); st.Invalidations != 4 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDoSingleflight: N concurrent Do calls on one key run compute once;
// followers share the value and count as collapsed.
func TestDoSingleflight(t *testing.T) {
	c := New(1<<20, 0)
	k := key("q", "d", 1)
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const followers = 8
	var wg sync.WaitGroup
	results := make([]any, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				<-started // ensure the leader owns the flight first
			}
			v, err := c.Do(context.Background(), k, func() (any, int64, error) {
				computes.Add(1)
				close(started)
				<-release
				return "answer", 6, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	<-started
	time.Sleep(10 * time.Millisecond) // let followers reach the flight wait
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times", n)
	}
	for i, v := range results {
		if v != "answer" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Collapsed != followers {
		t.Fatalf("collapsed = %d, want %d", st.Collapsed, followers)
	}
	// The result cached: one more Do is a pure hit, no compute.
	v, err := c.Do(context.Background(), k, func() (any, int64, error) {
		t.Error("compute ran on a cached key")
		return nil, 0, nil
	})
	if err != nil || v != "answer" {
		t.Fatalf("cached Do = %v, %v", v, err)
	}
}

// TestDoError: a failing compute propagates to leader and followers and
// caches nothing.
func TestDoError(t *testing.T) {
	c := New(1<<20, 0)
	k := key("q", "d", 1)
	boom := errors.New("boom")
	started := make(chan struct{})

	var followerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-started
		_, followerErr = c.Do(context.Background(), k, func() (any, int64, error) {
			return nil, 0, nil
		})
	}()
	_, err := c.Do(context.Background(), k, func() (any, int64, error) {
		close(started)
		time.Sleep(20 * time.Millisecond) // give the follower time to join
		return nil, 0, boom
	})
	wg.Wait()

	if !errors.Is(err, boom) {
		t.Fatalf("leader err = %v", err)
	}
	// The follower either joined the failing flight (sees boom) or ran
	// its own compute after the flight cleared (sees nil) — both are
	// correct; what must not happen is a cached error value.
	if followerErr != nil && !errors.Is(followerErr, boom) {
		t.Fatalf("follower err = %v", followerErr)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("error result was cached")
	}
}

// TestDoFollowerContext: a follower whose context dies while waiting
// gets its context error; the leader is unaffected.
func TestDoFollowerContext(t *testing.T) {
	c := New(1<<20, 0)
	k := key("q", "d", 1)
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), k, func() (any, int64, error) {
			close(started)
			<-release
			return "v", 1, nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, k, func() (any, int64, error) { return "v", 1, nil })
		followerDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-followerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
}

// TestNilCache: the nil cache is a valid always-miss cache.
func TestNilCache(t *testing.T) {
	var c *Cache
	if c != New(0, 0) {
		t.Fatal("New(0) is not nil")
	}
	if _, ok := c.Get(key("q", "d", 1)); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(key("q", "d", 1), 1, 1)
	c.InvalidateDoc("d")
	v, err := c.Do(context.Background(), key("q", "d", 1), func() (any, int64, error) {
		return 42, 8, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("nil Do = %v, %v", v, err)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats: %+v", st)
	}
}

// TestConcurrentMixed: hammering Get/Put/Do/InvalidateDoc across many
// documents stays race-free (run under -race) and the byte accounting
// never goes negative or over budget.
func TestConcurrentMixed(t *testing.T) {
	c := New(64<<10, 0)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				doc := fmt.Sprintf("d%d", i%7)
				k := key(fmt.Sprintf("q%d", i%5), doc, uint64(i%3))
				switch i % 4 {
				case 0:
					c.Put(k, i, int64(50+i%100))
				case 1:
					c.Get(k)
				case 2:
					_, _ = c.Do(context.Background(), k, func() (any, int64, error) {
						return i, 64, nil
					})
				case 3:
					if i%50 == 0 {
						c.InvalidateDoc(doc)
					} else {
						c.Get(k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 {
		t.Fatalf("negative byte accounting: %+v", st)
	}
	if st.Bytes > 64<<10 {
		t.Fatalf("over budget: %+v", st)
	}
}
