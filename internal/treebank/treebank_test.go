package treebank

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/rewrite"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Sentences: 10, MaxDepth: 5, Seed: 7})
	b := Generate(Config{Sentences: 10, MaxDepth: 5, Seed: 7})
	if !a.Combined.Equal(b.Combined) {
		t.Errorf("same seed should give the same corpus")
	}
	c := Generate(Config{Sentences: 10, MaxDepth: 5, Seed: 8})
	if a.Combined.Equal(c.Combined) {
		t.Errorf("different seeds should differ")
	}
}

func TestCorpusShape(t *testing.T) {
	corpus := Generate(DefaultConfig())
	if len(corpus.Sentences) != 64 {
		t.Fatalf("want 64 sentences")
	}
	for _, s := range corpus.Sentences {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid sentence tree: %v", err)
		}
		if !s.HasLabel(s.Root(), "S") {
			t.Errorf("sentence root should be S")
		}
	}
	st := corpus.Summarize()
	if st.Nodes < 64*4 {
		t.Errorf("suspiciously small corpus: %+v", st)
	}
	if st.NPCount == 0 || st.PPCount == 0 {
		t.Errorf("corpus lacks NPs or PPs: %+v", st)
	}
}

func TestFigure1QueryOnCorpus(t *testing.T) {
	// Fig. 1: prepositional phrases following noun phrases within the
	// same sentence. Evaluate on the combined corpus tree and sanity-
	// check every reported PP.
	corpus := Generate(Config{Sentences: 30, MaxDepth: 6, Seed: 3})
	q := rewrite.Figure1Query()
	engine := core.NewEngine()
	answers := engine.EvalMonadic(corpus.Combined, q)
	tr := corpus.Combined
	for _, z := range answers {
		if !tr.HasLabel(z, "PP") {
			t.Fatalf("answer %d is not a PP", z)
		}
	}
	// Cross-check against the brute-force oracle on a small sub-corpus.
	small := Generate(Config{Sentences: 1, MaxDepth: 4, Seed: 5})
	if small.Combined.Len() < 40 {
		want := core.ReferenceEvalAll(small.Combined, q)
		got := engine.EvalAll(small.Combined, q)
		if len(want) != len(got) {
			t.Fatalf("oracle %d answers, engine %d", len(want), len(got))
		}
	}
}

func TestFigure1PlanIsBacktrackOrRewrite(t *testing.T) {
	// The Fig. 1 query is cyclic over an NP-hard signature — the engine
	// must pick the general strategy.
	q := rewrite.Figure1Query()
	plan := core.NewEngine().PlanFor(q)
	if plan.Strategy != core.StrategyBacktrack {
		t.Errorf("plan = %v, want backtracking", plan.Strategy)
	}
	if plan.Classification.Complexity != core.NPComplete {
		t.Errorf("signature should classify NP-complete")
	}
}

func TestCorpusQueriesMatchOracle(t *testing.T) {
	corpus := Generate(Config{Sentences: 2, MaxDepth: 4, Seed: 11})
	tr := corpus.Combined
	if tr.Len() > 60 {
		t.Skip("corpus too large for the oracle")
	}
	engine := core.NewEngine()
	queries := []string{
		"Q(x) <- NP(x), Child+(s, x), S(s)",
		"Q(x) <- PP(x), Child(n, x), NP(n)",
		"Q() <- VP(v), Following(n, v), NP(n)",
	}
	for _, src := range queries {
		q := cq.MustParse(src)
		want := core.ReferenceEvalAll(tr, q)
		got := engine.EvalAll(tr, q)
		if len(want) != len(got) {
			t.Errorf("%s: oracle %d, engine %d", src, len(want), len(got))
		}
	}
}
