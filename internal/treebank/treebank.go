// Package treebank generates a synthetic corpus of phrase-structure parse
// trees, standing in for the Penn Treebank corpus the paper's linguistics
// examples query (§1: "corpora such as Penn Treebank are unranked trees
// labeled with the phrase structure of parsed text").
//
// Substitution note (DESIGN.md §4): the real Treebank is proprietary; any
// corpus of unranked parse trees over the same nonterminal inventory
// exercises the identical code paths (Descendant/Following joins over
// wide, shallow trees), so the Fig. 1 experiment's behaviour is preserved.
//
// Trees are produced by a small probabilistic CFG with the classic
// S → NP VP, PP-attachment, and coordination rules.
package treebank

import (
	"math/rand"

	"repro/internal/tree"
)

// Nonterminal and preterminal labels used by the grammar.
var (
	// Phrases.
	PhraseLabels = []string{"S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP"}
	// Preterminals (parts of speech).
	POSLabels = []string{"DT", "NN", "NNS", "VB", "VBD", "IN", "JJ", "RB", "CC", "PRP"}
)

// Config controls corpus generation.
type Config struct {
	// Sentences is the number of S-rooted trees in the corpus.
	Sentences int
	// MaxDepth bounds recursive expansion (>= 3).
	MaxDepth int
	// Seed makes the corpus deterministic.
	Seed int64
}

// DefaultConfig returns a moderate corpus configuration.
func DefaultConfig() Config { return Config{Sentences: 64, MaxDepth: 6, Seed: 1} }

// Corpus is a set of parse trees plus a combined tree whose root TOP
// holds every sentence (handy for whole-corpus queries).
type Corpus struct {
	Sentences []*tree.Tree
	Combined  *tree.Tree
}

// Generate builds a corpus.
func Generate(cfg Config) *Corpus {
	if cfg.Sentences <= 0 {
		cfg.Sentences = 1
	}
	if cfg.MaxDepth < 3 {
		cfg.MaxDepth = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{}
	for i := 0; i < cfg.Sentences; i++ {
		b := tree.NewBuilder(32)
		root := b.AddNode(tree.NilNode, "S")
		expandS(rng, b, root, cfg.MaxDepth-1)
		c.Sentences = append(c.Sentences, b.Build())
	}
	c.Combined = tree.Combine([]string{"TOP"}, c.Sentences...)
	return c
}

func expandS(rng *rand.Rand, b *tree.Builder, parent tree.NodeID, depth int) {
	np := b.AddNode(parent, "NP")
	expandNP(rng, b, np, depth-1)
	vp := b.AddNode(parent, "VP")
	expandVP(rng, b, vp, depth-1)
	if depth > 2 && rng.Float64() < 0.2 {
		// Coordination: S -> NP VP CC S'.
		b.AddNode(parent, "CC")
		s2 := b.AddNode(parent, "S")
		expandS(rng, b, s2, depth-1)
	}
}

func expandNP(rng *rand.Rand, b *tree.Builder, parent tree.NodeID, depth int) {
	b.AddNode(parent, "DT")
	if rng.Float64() < 0.4 {
		b.AddNode(parent, "JJ")
	}
	if rng.Float64() < 0.5 {
		b.AddNode(parent, "NN")
	} else {
		b.AddNode(parent, "NNS")
	}
	if depth > 0 && rng.Float64() < 0.35 {
		pp := b.AddNode(parent, "PP")
		expandPP(rng, b, pp, depth-1)
	}
	if depth > 0 && rng.Float64() < 0.1 {
		sbar := b.AddNode(parent, "SBAR")
		b.AddNode(sbar, "IN")
		s := b.AddNode(sbar, "S")
		expandS(rng, b, s, depth-1)
	}
}

func expandVP(rng *rand.Rand, b *tree.Builder, parent tree.NodeID, depth int) {
	if rng.Float64() < 0.5 {
		b.AddNode(parent, "VB")
	} else {
		b.AddNode(parent, "VBD")
	}
	if rng.Float64() < 0.3 {
		b.AddNode(parent, "RB")
	}
	if depth > 0 && rng.Float64() < 0.6 {
		np := b.AddNode(parent, "NP")
		expandNP(rng, b, np, depth-1)
	}
	if depth > 0 && rng.Float64() < 0.4 {
		pp := b.AddNode(parent, "PP")
		expandPP(rng, b, pp, depth-1)
	}
}

func expandPP(rng *rand.Rand, b *tree.Builder, parent tree.NodeID, depth int) {
	b.AddNode(parent, "IN")
	np := b.AddNode(parent, "NP")
	if depth > 0 {
		expandNP(rng, b, np, depth-1)
	} else {
		b.AddNode(np, "NN")
	}
}

// Stats summarizes a corpus for reporting.
type Stats struct {
	Sentences int
	Nodes     int
	MaxDepth  int
	NPCount   int
	PPCount   int
}

// Summarize computes corpus statistics.
func (c *Corpus) Summarize() Stats {
	st := Stats{Sentences: len(c.Sentences)}
	for _, t := range c.Sentences {
		st.Nodes += t.Len()
		if h := t.Height(); h > st.MaxDepth {
			st.MaxDepth = h
		}
		st.NPCount += len(t.NodesWithLabel("NP"))
		st.PPCount += len(t.NodesWithLabel("PP"))
	}
	return st
}
