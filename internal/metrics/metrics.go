// Package metrics is a dependency-free metrics registry with Prometheus
// text exposition — the observability half of the serving tier.
//
// The engine's robustness machinery (admission control, the result
// cache, corpus eviction) is only operable if its state is visible from
// the outside, and the de-facto wire format for that is the Prometheus
// text format. Pulling in a client library would break the module's
// zero-dependency contract, so this package implements the small subset
// the server needs:
//
//   - Counter / Gauge / Histogram, optionally labeled (the *Vec
//     constructors), all safe for concurrent use and allocation-free on
//     the hot path once a label combination has been interned.
//   - CounterFunc / GaugeFunc for values owned elsewhere (corpus bytes,
//     gate depth, cache stats): the callback runs at scrape time, so the
//     metric is always current without double bookkeeping.
//   - Registry.ServeHTTP / WriteTo rendering the text exposition format
//     (# HELP, # TYPE, histogram _bucket/_sum/_count with cumulative le
//     labels) with deterministic family and series ordering, so scrapes
//     diff cleanly and tests can assert on exact lines.
//
// Histograms use fixed upper bounds chosen at construction (see
// DefBuckets for the latency default); observation is a linear scan over
// a handful of buckets plus three atomic adds — no locks on the hot path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency buckets, in seconds: 100µs to 10s,
// roughly logarithmic. Evaluations span from microsecond cache-adjacent
// lookups to multi-second batch enumerations, so the range is wide.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// value is a float64 cell updated with compare-and-swap, so counters and
// gauges never lock.
type value struct{ bits atomic.Uint64 }

func (v *value) Add(delta float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (v *value) Set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *value) Load() float64 { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v value }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative (counters only go up).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("metrics: counter decrease")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v value }

// Set replaces the value.
func (g *Gauge) Set(x float64) { g.v.Set(x) }

// Add adds delta (negative deltas allowed).
func (g *Gauge) Add(delta float64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	upper  []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    value
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	for i, ub := range h.upper {
		if x <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(x)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// series is one label combination of a family: the interned label
// values plus the instrument holding its state.
type series struct {
	labels string // rendered {k="v",...} block, "" when unlabeled
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // CounterFunc / GaugeFunc callback
}

// family is one named metric: a type, a help line, and its series.
type family struct {
	name, help, typ string
	labelNames      []string
	buckets         []float64

	mu     sync.Mutex
	series map[string]*series
	order  []string // insertion-keyed; sorted at scrape
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs a family, panicking on duplicate names — metric
// registration is program structure, and a collision is a bug worth
// failing loudly on at startup rather than silently merging.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic("metrics: duplicate metric " + f.name)
	}
	f.series = make(map[string]*series)
	r.families[f.name] = f
	r.order = append(r.order, f.name)
	return f
}

// seriesFor interns one label combination.
func (f *family) seriesFor(labelValues []string, build func() *series) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := build()
	s.labels = renderLabels(f.labelNames, labelValues)
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// renderLabels builds the {k="v",...} block, escaping values.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// ---- constructors ---------------------------------------------------------

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: "counter"})
	return f.seriesFor(nil, func() *series { return &series{ctr: &Counter{}} }).ctr
}

// NewCounterVec registers a labeled counter family; With interns one
// label combination.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(&family{
		name: name, help: help, typ: "counter", labelNames: labelNames})}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (interned).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.seriesFor(labelValues, func() *series { return &series{ctr: &Counter{}} }).ctr
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: "gauge"})
	return f.seriesFor(nil, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(&family{
		name: name, help: help, typ: "gauge", labelNames: labelNames})}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (interned).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.seriesFor(labelValues, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(&family{name: name, help: help, typ: "gauge"})
	f.seriesFor(nil, func() *series { return &series{fn: fn} })
}

// NewCounterFunc registers a counter whose value is read at scrape time;
// fn must be monotonically non-decreasing (it typically reads an atomic
// counter owned by another subsystem).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	f := r.register(&family{name: name, help: help, typ: "counter"})
	f.seriesFor(nil, func() *series { return &series{fn: fn} })
}

// NewHistogram registers an unlabeled histogram with the given upper
// bounds (nil means DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: "histogram", buckets: normBuckets(buckets)})
	return f.seriesFor(nil, func() *series { return &series{hist: newHistogram(f.buckets)} }).hist
}

// NewHistogramVec registers a labeled histogram family with the given
// upper bounds (nil means DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(&family{
		name: name, help: help, typ: "histogram",
		buckets: normBuckets(buckets), labelNames: labelNames})}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (interned).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.seriesFor(labelValues, func() *series {
		return &series{hist: newHistogram(v.f.buckets)}
	}).hist
}

func normBuckets(b []float64) []float64 {
	if len(b) == 0 {
		b = DefBuckets
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	return out
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper))}
}

// ---- exposition -----------------------------------------------------------

// WriteTo renders the registry in the text exposition format, families
// in registration order and series in sorted-label order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		f.render(&sb)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// ServeHTTP renders the registry — mount it at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = r.WriteTo(w)
}

func (f *family) render(sb *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	rows := make([]*series, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		rows = append(rows, f.series[k])
	}
	f.mu.Unlock()
	if len(rows) == 0 {
		return
	}

	fmt.Fprintf(sb, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range rows {
		switch {
		case s.hist != nil:
			s.renderHistogram(sb, f.name)
		case s.fn != nil:
			fmt.Fprintf(sb, "%s%s %s\n", f.name, s.labels, fmtFloat(s.fn()))
		case s.ctr != nil:
			fmt.Fprintf(sb, "%s%s %s\n", f.name, s.labels, fmtFloat(s.ctr.Value()))
		default:
			fmt.Fprintf(sb, "%s%s %s\n", f.name, s.labels, fmtFloat(s.gauge.Value()))
		}
	}
}

// renderHistogram emits the cumulative _bucket series plus _sum/_count.
// The le label is appended to the series' own labels.
func (s *series) renderHistogram(sb *strings.Builder, name string) {
	h := s.hist
	open := "{"
	if s.labels != "" {
		open = s.labels[:len(s.labels)-1] + ","
	}
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket%sle=\"%s\"} %d\n", name, open, fmtFloat(ub), cum)
	}
	// The +Inf bucket equals the total count by construction.
	fmt.Fprintf(sb, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, h.count.Load())
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, s.labels, fmtFloat(h.sum.Load()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, s.labels, h.count.Load())
}

// fmtFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest form.
func fmtFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}
