package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return sb.String()
}

func wantLine(t *testing.T, text, line string) {
	t.Helper()
	for _, l := range strings.Split(text, "\n") {
		if l == line {
			return
		}
	}
	t.Fatalf("missing line %q in:\n%s", line, text)
}

// TestCounterGaugeExposition: HELP/TYPE headers, label rendering,
// integer formatting, and Vec interning.
func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.")
	c.Inc()
	c.Add(2)

	v := r.NewCounterVec("evals_total", "Evals by outcome.", "strategy", "outcome")
	v.With("acyclic", "ok").Add(5)
	v.With("acyclic", "error").Inc()
	if v.With("acyclic", "ok") != v.With("acyclic", "ok") {
		t.Fatal("With does not intern label combinations")
	}

	g := r.NewGauge("in_flight", "Current in-flight.")
	g.Set(3)
	g.Dec()

	r.NewGaugeFunc("corpus_bytes", "Corpus bytes.", func() float64 { return 4096 })

	out := scrape(t, r)
	wantLine(t, out, "# HELP requests_total Total requests.")
	wantLine(t, out, "# TYPE requests_total counter")
	wantLine(t, out, "requests_total 3")
	wantLine(t, out, `evals_total{strategy="acyclic",outcome="ok"} 5`)
	wantLine(t, out, `evals_total{strategy="acyclic",outcome="error"} 1`)
	wantLine(t, out, "in_flight 2")
	wantLine(t, out, "corpus_bytes 4096")
	wantLine(t, out, "# TYPE corpus_bytes gauge")
}

// TestHistogramExposition: cumulative buckets, the +Inf bucket equal to
// the count, sum and count lines, and the le label merged into existing
// label blocks.
func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, x := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}

	hv := r.NewHistogramVec("eval_seconds", "Eval latency.", []float64{1}, "mode")
	hv.With("bool").Observe(0.5)

	out := scrape(t, r)
	wantLine(t, out, `latency_seconds_bucket{le="0.01"} 1`)
	wantLine(t, out, `latency_seconds_bucket{le="0.1"} 3`)
	wantLine(t, out, `latency_seconds_bucket{le="1"} 4`)
	wantLine(t, out, `latency_seconds_bucket{le="+Inf"} 5`)
	wantLine(t, out, "latency_seconds_count 5")
	wantLine(t, out, `eval_seconds_bucket{mode="bool",le="1"} 1`)
	wantLine(t, out, `eval_seconds_bucket{mode="bool",le="+Inf"} 1`)
	wantLine(t, out, `eval_seconds_count{mode="bool"} 1`)
	wantLine(t, out, `eval_seconds_sum{mode="bool"} 0.5`)
}

// TestLabelEscaping: backslashes, quotes, and newlines in label values
// must render escaped, not break the line protocol.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("g", "Help.", "path")
	v.With("a\"b\\c\nd").Set(1)
	out := scrape(t, r)
	wantLine(t, out, `g{path="a\"b\\c\nd"} 1`)
}

// TestServeHTTP: the handler sets the exposition content type and the
// body parses line-by-line (every non-comment line is "name[{labels}]
// value").
func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "A.").Inc()
	r.NewHistogram("h_seconds", "H.", nil).Observe(0.2)

	rr := httptest.NewRecorder()
	r.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, line := range strings.Split(strings.TrimSpace(rr.Body.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// TestDuplicateRegistrationPanics: a metric name collision is a
// programming error, reported at registration.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("x_total", "X again.")
}

// TestConcurrentUpdates: counters, gauges, and histograms tolerate
// concurrent writers (run under -race) and land on exact totals.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "C.")
	h := r.NewHistogram("h_seconds", "H.", []float64{0.5})
	v := r.NewCounterVec("v_total", "V.", "w")

	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(0.1)
				v.With("a").Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %v, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
	if got := v.With("a").Value(); got != workers*each {
		t.Fatalf("vec counter = %v, want %d", got, workers*each)
	}
}
