package snapshot

import (
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// buildSnap writes a small snapshot with one section of each payload kind.
func buildSnap() []byte {
	w := NewWriter()
	w.WriteMeta(Meta{Nodes: 7, Labels: 3, Structure: 21})
	w.Bytes(TagTreeNames, []byte("abc"))
	w.Int32s(TagTreeParent, []int32{-1, 0, 0, 1, 2, 3, 4})
	w.Uint64s(TagIxInternal, []uint64{0x0102030405060708, 42})
	w.Int32s(TagTreePre, nil) // empty section: accessor returns nil, nil
	return w.Finish()
}

func TestRoundTrip(t *testing.T) {
	data := buildSnap()
	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Meta()
	if err != nil || m != (Meta{Nodes: 7, Labels: 3, Structure: 21}) {
		t.Fatalf("Meta = %+v, %v", m, err)
	}
	b, err := r.Bytes(TagTreeNames)
	if err != nil || string(b) != "abc" {
		t.Fatalf("Bytes = %q, %v", b, err)
	}
	ints, err := r.Int32s(TagTreeParent)
	if err != nil || len(ints) != 7 || ints[0] != -1 || ints[6] != 4 {
		t.Fatalf("Int32s = %v, %v", ints, err)
	}
	u, err := r.Uint64s(TagIxInternal)
	if err != nil || len(u) != 2 || u[0] != 0x0102030405060708 || u[1] != 42 {
		t.Fatalf("Uint64s = %v, %v", u, err)
	}
	if empty, err := r.Int32s(TagTreePre); err != nil || empty != nil {
		t.Fatalf("empty Int32s = %v, %v", empty, err)
	}
	if _, ok := r.Section(TagTreeNames); !ok {
		t.Fatal("Section(TagTreeNames) missing")
	}
	if _, ok := r.Section(0xdead); ok {
		t.Fatal("Section(0xdead) present")
	}
}

// TestCopyFallback forces the misaligned path: the same bytes at an odd
// offset must decode to identical values through element-wise copies.
func TestCopyFallback(t *testing.T) {
	data := buildSnap()
	shifted := make([]byte, len(data)+1)
	copy(shifted[1:], data)
	r, err := Open(shifted[1:])
	if err != nil {
		t.Fatal(err)
	}
	if r.ZeroCopy() {
		t.Skip("odd-offset slice still 8-aligned on this platform")
	}
	ints, err := r.Int32s(TagTreeParent)
	if err != nil || len(ints) != 7 || ints[0] != -1 {
		t.Fatalf("Int32s = %v, %v", ints, err)
	}
	u, err := r.Uint64s(TagIxInternal)
	if err != nil || u[0] != 0x0102030405060708 {
		t.Fatalf("Uint64s = %v, %v", u, err)
	}
}

func TestOpenRejectsDamage(t *testing.T) {
	valid := buildSnap()
	mangle := func(fn func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return fn(b)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"truncated", valid[:minSize-1], ErrTruncated},
		{"bad magic", mangle(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"bad version", mangle(func(b []byte) []byte {
			putLE32(b[4:], 99)
			putLE32(b[len(b)-trailerSize:], recrc(b))
			return b
		}), ErrVersion},
		{"checksum", mangle(func(b []byte) []byte { b[len(b)-trailerSize-1] ^= 0x40; return b }), ErrChecksum},
		{"impossible count", mangle(func(b []byte) []byte {
			putLE32(b[8:], 1<<30)
			putLE32(b[len(b)-trailerSize:], recrc(b))
			return b
		}), ErrCorrupt},
		{"section past end", mangle(func(b []byte) []byte {
			putLE32(b[8:], le32(b[8:])+1) // one more section than the body holds
			putLE32(b[len(b)-trailerSize:], recrc(b))
			return b
		}), ErrTruncated},
		{"payload past end", mangle(func(b []byte) []byte {
			putLE64(b[headerSize+8:], 1<<40) // first section claims absurd size
			putLE32(b[len(b)-trailerSize:], recrc(b))
			return b
		}), ErrTruncated},
		{"trailing bytes", mangle(func(b []byte) []byte {
			putLE32(b[8:], 0) // sections present but count says none
			putLE32(b[len(b)-trailerSize:], recrc(b))
			return b
		}), ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := Open(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Duplicate section tag.
	w := NewWriter()
	w.WriteMeta(Meta{Nodes: 1})
	w.Bytes(TagTreeNames, []byte("x"))
	w.Bytes(TagTreeNames, []byte("y"))
	if _, err := Open(w.Finish()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("duplicate section: err = %v, want ErrCorrupt", err)
	}
}

// recrc recomputes the trailer checksum after a deliberate header edit, so
// the test reaches the validation step after the checksum gate.
func recrc(b []byte) uint32 {
	return crc32.Checksum(b[:len(b)-trailerSize], castagnoli)
}

func TestAccessorErrors(t *testing.T) {
	r, err := Open(buildSnap())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Bytes(0xbeef); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing Bytes err = %v", err)
	}
	if _, err := r.Int32s(0xbeef); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing Int32s err = %v", err)
	}
	if _, err := r.Uint64s(0xbeef); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing Uint64s err = %v", err)
	}
	// Misshapen lengths: a 3-byte payload is neither []int32 nor []uint64.
	if _, err := r.Int32s(TagTreeNames); !errors.Is(err, ErrCorrupt) {
		t.Errorf("odd-length Int32s err = %v", err)
	}
	if _, err := r.Uint64s(TagTreeNames); !errors.Is(err, ErrCorrupt) {
		t.Errorf("odd-length Uint64s err = %v", err)
	}
	// Meta decoding guards: short and negative meta sections.
	if _, err := decodeMeta(make([]byte, metaSize-1)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short meta err = %v", err)
	}
	neg := make([]byte, metaSize)
	putLE32(neg, uint32(0x80000000)) // Nodes < 0
	if _, err := decodeMeta(neg); !errors.Is(err, ErrCorrupt) {
		t.Errorf("negative meta err = %v", err)
	}
	w := NewWriter()
	w.Bytes(TagTreeNames, []byte("no meta"))
	r2, err := Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Meta(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("absent meta err = %v", err)
	}
}

func TestReadFileAndPeekMeta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.cqs")
	data := buildSnap()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	buf, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ZeroCopy() {
		t.Error("ReadFile buffer did not take the zero-copy path")
	}
	nodes, err := PeekMeta(path)
	if err != nil || nodes != 7 {
		t.Fatalf("PeekMeta = %d, %v", nodes, err)
	}

	if _, err := ReadFile(filepath.Join(dir, "absent.cqs")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("ReadFile absent err = %v", err)
	}
	if _, err := PeekMeta(filepath.Join(dir, "absent.cqs")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("PeekMeta absent err = %v", err)
	}

	// Injected read failure surfaces through ReadFileFS.
	in := fault.NewInjector()
	boom := errors.New("io boom")
	in.FailAt(fault.OpRead, 1, boom)
	if _, err := ReadFileFS(in, path); !errors.Is(err, boom) {
		t.Errorf("ReadFileFS injected err = %v, want boom", err)
	}

	writeVariant := func(name string, mutate func(b []byte)) string {
		b := append([]byte(nil), data...)
		mutate(b)
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	short := filepath.Join(dir, "short.cqs")
	if err := os.WriteFile(short, data[:headerSize], 0o644); err != nil {
		t.Fatal(err)
	}
	peekCases := []struct {
		path string
		want error
	}{
		{short, ErrTruncated},
		{writeVariant("magic.cqs", func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{writeVariant("version.cqs", func(b []byte) { putLE32(b[4:], 9) }), ErrVersion},
		{writeVariant("firsttag.cqs", func(b []byte) { putLE32(b[headerSize:], TagTreeNames) }), ErrCorrupt},
		{writeVariant("metasize.cqs", func(b []byte) { putLE64(b[headerSize+8:], metaSize+8) }), ErrCorrupt},
		{writeVariant("negnodes.cqs", func(b []byte) {
			putLE32(b[headerSize+sectionHdrSize:], uint32(0x80000000))
		}), ErrCorrupt},
	}
	for _, tc := range peekCases {
		if _, err := PeekMeta(tc.path); !errors.Is(err, tc.want) {
			t.Errorf("PeekMeta(%s) err = %v, want %v", filepath.Base(tc.path), err, tc.want)
		}
	}
}
