// Package snapshot implements the versioned binary container behind
// persistent document indexes: a flat, checksummed, section-tagged format
// whose payloads are the raw little-endian bytes of the engine's []int32
// and []uint64 arrays, so loading a snapshot costs ~one read plus
// O(sections) pointer fixups instead of an XML parse and an index build.
//
// Layout (all integers little-endian):
//
//	header   16 bytes: magic "CQSN" | version u32 | section count u32 | reserved u32
//	sections each: tag u32 | reserved u32 | payload length u64 (bytes),
//	         then the payload, padded to an 8-byte boundary
//	trailer  8 bytes: CRC-32C (Castagnoli) of everything before it | reserved u32
//
// Every section payload therefore starts 8-byte aligned relative to the
// start of the file. When the input byte slice itself is 8-byte aligned
// and the host is little-endian, Int32s/Uint64s return views that alias
// the input — the zero-copy path. Otherwise they fall back to an
// element-wise copy, so the format is loadable (just not free) on any
// host. Callers that want the zero-copy path from a file should read it
// with ReadFile, which guarantees an aligned buffer.
//
// The decoder is defensive by contract: Open and the typed accessors
// return errors wrapping ErrTruncated, ErrBadMagic, ErrVersion,
// ErrChecksum or ErrCorrupt — never panic — and never allocate more than
// O(input length), because every section length is validated against the
// remaining input before use.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"repro/internal/fault"
)

// Version is the current snapshot format version. Any change to the
// section set, tags, or payload encodings must bump it (the golden
// fixture test pins the on-disk bytes of version 1).
const Version = 1

// magic identifies a snapshot file: "CQSN" (Conjunctive Queries SNapshot).
var magic = [4]byte{'C', 'Q', 'S', 'N'}

const (
	headerSize     = 16
	sectionHdrSize = 16
	trailerSize    = 8
	// minSize is the smallest well-formed snapshot: header + trailer.
	minSize = headerSize + trailerSize
)

// Typed decode failures. Every error returned by Open and the Reader
// accessors wraps exactly one of these; match with errors.Is.
var (
	// ErrTruncated: the input ends before the structure it announces.
	ErrTruncated = errors.New("snapshot: truncated input")
	// ErrBadMagic: the input does not start with the snapshot magic.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion: the format version is not supported by this build.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum: the trailer checksum does not match the content.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt: a section is missing, misshapen, or holds out-of-range
	// values.
	ErrCorrupt = errors.New("snapshot: corrupt data")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittle reports whether the host is little-endian; the zero-copy
// paths require it (the format is always little-endian on disk).
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// le64/le32 read little-endian integers without pulling in encoding/binary
// bounds panics on short input (callers validate lengths first).
func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putLE64(b []byte, v uint64) {
	putLE32(b, uint32(v))
	putLE32(b[4:], uint32(v>>32))
}

// pad8 returns n rounded up to a multiple of 8.
func pad8(n int) int { return (n + 7) &^ 7 }

// ---- writer ---------------------------------------------------------------

// Writer builds a snapshot by appending tagged sections. The zero value
// is not ready; use NewWriter. Writers are single-use: Finish seals the
// container and returns the bytes.
type Writer struct {
	buf      []byte
	sections int
}

// NewWriter returns a Writer with the header reserved.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, headerSize, 4096)}
	copy(w.buf, magic[:])
	putLE32(w.buf[4:], Version)
	return w
}

// section appends a section header for tag with a payload of size bytes
// and returns the zeroed, 8-aligned payload slice to fill in.
func (w *Writer) section(tag uint32, size int) []byte {
	hdr := len(w.buf)
	w.buf = append(w.buf, make([]byte, sectionHdrSize+pad8(size))...)
	putLE32(w.buf[hdr:], tag)
	putLE64(w.buf[hdr+8:], uint64(size))
	w.sections++
	return w.buf[hdr+sectionHdrSize : hdr+sectionHdrSize+size]
}

// Bytes appends a raw byte section.
func (w *Writer) Bytes(tag uint32, b []byte) {
	copy(w.section(tag, len(b)), b)
}

// Int32s appends a []int32 section (little-endian elements).
func (w *Writer) Int32s(tag uint32, v []int32) {
	dst := w.section(tag, len(v)*4)
	if hostLittle && len(v) > 0 {
		copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*4))
		return
	}
	for i, x := range v {
		putLE32(dst[i*4:], uint32(x))
	}
}

// Uint64s appends a []uint64 section (little-endian elements).
func (w *Writer) Uint64s(tag uint32, v []uint64) {
	dst := w.section(tag, len(v)*8)
	if hostLittle && len(v) > 0 {
		copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*8))
		return
	}
	for i, x := range v {
		putLE64(dst[i*8:], x)
	}
}

// Finish seals the container: section count and checksum are written and
// the complete snapshot returned. The Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	putLE32(w.buf[8:], uint32(w.sections))
	sum := crc32.Checksum(w.buf, castagnoli)
	trailer := len(w.buf)
	w.buf = append(w.buf, make([]byte, trailerSize)...)
	putLE32(w.buf[trailer:], sum)
	out := w.buf
	w.buf = nil
	return out
}

// ---- reader ---------------------------------------------------------------

// Reader is a parsed snapshot: a tag -> payload map over the validated
// input. Accessors return zero-copy views into the input when the host is
// little-endian and the input is 8-byte aligned, and element-wise copies
// otherwise; ZeroCopy reports which path is active.
type Reader struct {
	sections map[uint32][]byte
	zeroCopy bool
}

// Open validates data (magic, version, checksum, section bounds) and
// indexes its sections. The returned Reader aliases data; data must not
// be mutated while the Reader — or any zero-copy view from it — is live.
func Open(data []byte) (*Reader, error) {
	if len(data) < minSize {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(data), minSize)
	}
	if [4]byte(data[:4]) != magic {
		return nil, ErrBadMagic
	}
	if v := le32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, supported %d", ErrVersion, v, Version)
	}
	body := data[:len(data)-trailerSize]
	if got, want := crc32.Checksum(body, castagnoli), le32(data[len(data)-trailerSize:]); got != want {
		return nil, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, got, want)
	}
	count := int(le32(data[8:]))
	// Each section costs at least a header, so an absurd count cannot pass
	// the scan below; this bound just keeps the map allocation honest.
	if count < 0 || count > (len(body)-headerSize)/sectionHdrSize {
		return nil, fmt.Errorf("%w: section count %d impossible for %d bytes", ErrCorrupt, count, len(data))
	}
	r := &Reader{
		sections: make(map[uint32][]byte, count),
		zeroCopy: hostLittle && uintptr(unsafe.Pointer(unsafe.SliceData(data)))%8 == 0,
	}
	off := headerSize
	for i := 0; i < count; i++ {
		if off+sectionHdrSize > len(body) {
			return nil, fmt.Errorf("%w: section %d header past end", ErrTruncated, i)
		}
		tag := le32(body[off:])
		size := le64(body[off+8:])
		payload := off + sectionHdrSize
		if size > uint64(len(body)-payload) {
			return nil, fmt.Errorf("%w: section %#x claims %d bytes, %d remain", ErrTruncated, tag, size, len(body)-payload)
		}
		if _, dup := r.sections[tag]; dup {
			return nil, fmt.Errorf("%w: duplicate section %#x", ErrCorrupt, tag)
		}
		r.sections[tag] = body[payload : payload+int(size) : payload+int(size)]
		off = payload + pad8(int(size))
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, len(body)-off)
	}
	return r, nil
}

// ZeroCopy reports whether the typed accessors return views aliasing the
// input (little-endian host, 8-byte-aligned input) rather than copies.
func (r *Reader) ZeroCopy() bool { return r.zeroCopy }

// Section returns the raw payload of tag.
func (r *Reader) Section(tag uint32) ([]byte, bool) {
	b, ok := r.sections[tag]
	return b, ok
}

// missing is the uniform missing-section error.
func missing(tag uint32) error {
	return fmt.Errorf("%w: missing section %#x", ErrCorrupt, tag)
}

// Bytes returns the payload of tag, failing if the section is absent.
func (r *Reader) Bytes(tag uint32) ([]byte, error) {
	b, ok := r.sections[tag]
	if !ok {
		return nil, missing(tag)
	}
	return b, nil
}

// Int32s returns the payload of tag as []int32 — a zero-copy view when
// possible (see ZeroCopy), an element-wise copy otherwise.
func (r *Reader) Int32s(tag uint32) ([]int32, error) {
	b, ok := r.sections[tag]
	if !ok {
		return nil, missing(tag)
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: section %#x length %d not a multiple of 4", ErrCorrupt, tag, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if r.zeroCopy {
		return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(le32(b[i*4:]))
	}
	return out, nil
}

// Uint64s returns the payload of tag as []uint64 — zero-copy when
// possible, an element-wise copy otherwise.
func (r *Reader) Uint64s(tag uint32) ([]uint64, error) {
	b, ok := r.sections[tag]
	if !ok {
		return nil, missing(tag)
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: section %#x length %d not a multiple of 8", ErrCorrupt, tag, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if r.zeroCopy {
		return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = le64(b[i*8:])
	}
	return out, nil
}

// ---- files ----------------------------------------------------------------

// ReadFile reads path into an 8-byte-aligned buffer, so that Open on the
// result takes the zero-copy path on little-endian hosts. (os.ReadFile
// gives no alignment guarantee; the buffer here is backed by a []uint64.)
func ReadFile(path string) ([]byte, error) {
	return ReadFileFS(fault.OS{}, path)
}

// ReadFileFS is ReadFile through an explicit filesystem — the seam the
// fault-injection suite uses to exercise read-time I/O failures.
func ReadFileFS(fsys fault.FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("snapshot: %s: file too large", path)
	}
	words := make([]uint64, (int(size)+7)/8)
	var buf []byte
	if len(words) > 0 {
		buf = unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), int(size))
	}
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return buf, nil
}

// PeekMeta reads just enough of path to report the node count of the
// document snapshot stored there, validating magic, version, and that the
// first section is the document meta section. It is the cheap existence/
// shape check directory loading uses to register lazy stubs without
// reading (or checksumming) whole files.
func PeekMeta(path string) (nodes int, err error) {
	return PeekMetaFS(fault.OS{}, path)
}

// PeekMetaFS is PeekMeta through an explicit filesystem (see ReadFileFS).
func PeekMetaFS(fsys fault.FS, path string) (nodes int, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [headerSize + sectionHdrSize + metaSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: %s: %v", ErrTruncated, path, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return 0, fmt.Errorf("%w: %s", ErrBadMagic, path)
	}
	if v := le32(hdr[4:]); v != Version {
		return 0, fmt.Errorf("%w: %s: file version %d, supported %d", ErrVersion, path, v, Version)
	}
	if tag := le32(hdr[headerSize:]); tag != TagDocMeta {
		return 0, fmt.Errorf("%w: %s: first section %#x, want doc meta", ErrCorrupt, path, tag)
	}
	if size := le64(hdr[headerSize+8:]); size != metaSize {
		return 0, fmt.Errorf("%w: %s: meta section %d bytes, want %d", ErrCorrupt, path, size, metaSize)
	}
	m, err := decodeMeta(hdr[headerSize+sectionHdrSize:])
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return m.Nodes, nil
}

// ---- document meta --------------------------------------------------------

// Meta is the fixed-size leading section of every document snapshot: the
// node count, the distinct-label count, and the tree's StructureSize —
// everything a directory scan needs without loading the document.
type Meta struct {
	Nodes     int
	Labels    int
	Structure int
}

const metaSize = 16

// WriteMeta appends the document meta section. It must be the first
// section written (PeekMeta relies on its position).
func (w *Writer) WriteMeta(m Meta) {
	b := w.section(TagDocMeta, metaSize)
	putLE32(b, uint32(m.Nodes))
	putLE32(b[4:], uint32(m.Labels))
	putLE64(b[8:], uint64(m.Structure))
}

func decodeMeta(b []byte) (Meta, error) {
	if len(b) < metaSize {
		return Meta{}, fmt.Errorf("%w: meta section %d bytes, want %d", ErrCorrupt, len(b), metaSize)
	}
	m := Meta{
		Nodes:     int(int32(le32(b))),
		Labels:    int(int32(le32(b[4:]))),
		Structure: int(int64(le64(b[8:]))),
	}
	if m.Nodes < 0 || m.Labels < 0 || m.Structure < 0 {
		return Meta{}, fmt.Errorf("%w: negative meta fields", ErrCorrupt)
	}
	return m, nil
}

// Meta returns the document meta section.
func (r *Reader) Meta() (Meta, error) {
	b, ok := r.sections[TagDocMeta]
	if !ok {
		return Meta{}, missing(TagDocMeta)
	}
	return decodeMeta(b)
}

// ---- tag registry ---------------------------------------------------------

// Section tags. All tags of the format live here — one registry, no
// collisions. Tags are stable identifiers: never renumber, only append.
const (
	// TagDocMeta is the fixed-size leading meta section (see Meta).
	TagDocMeta uint32 = 0x0001

	// Tree sections (the substrate of internal/tree.Tree).
	TagTreeParent   uint32 = 0x0101 // parent[v], -1 at the root
	TagTreeKidsOff  uint32 = 0x0102 // n+1 offsets into kids-flat
	TagTreeKidsFlat uint32 = 0x0103 // children, parent-major, left-to-right
	TagTreeSibIndex uint32 = 0x0104
	TagTreePre      uint32 = 0x0105
	TagTreePost     uint32 = 0x0106
	TagTreeBFLR     uint32 = 0x0107
	TagTreeDepth    uint32 = 0x0108
	TagTreePreEnd   uint32 = 0x0109
	TagTreeByPre    uint32 = 0x010a
	TagTreeByPost   uint32 = 0x010b
	TagTreeByBFLR   uint32 = 0x010c
	TagTreeNames    uint32 = 0x010d // concatenated label-name bytes, alphabet order
	TagTreeNameOff  uint32 = 0x010e // L+1 offsets into the name bytes
	TagTreeLabelOff uint32 = 0x010f // n+1 offsets into the label-id list
	TagTreeLabelIDs uint32 = 0x0110 // per-node label ids, node-major, sorted

	// TreeIndex sections (internal/consistency.TreeIndex).
	TagIxSibRank    uint32 = 0x0201
	TagIxSibStart   uint32 = 0x0202
	TagIxPreEndNode uint32 = 0x0203
	TagIxPreEndPos  uint32 = 0x0204
	TagIxPreEndVal  uint32 = 0x0205
	TagIxParentPre  uint32 = 0x0206
	TagIxFirstChild uint32 = 0x0207
	TagIxNextSib    uint32 = 0x0208
	TagIxPrevSib    uint32 = 0x0209
	TagIxSubtreeEnd uint32 = 0x020a
	TagIxInternal   uint32 = 0x020b // bitset words over pre ranks
)
