package consistency

import (
	"math/rand"
	"testing"

	"repro/internal/axis"
	"repro/internal/bitset"
	"repro/internal/cq"
	"repro/internal/tree"
)

// randomPreDomain draws a pre-rank bitset over n nodes. kind cycles through
// the shapes the kernels must survive: empty, full, a singleton at a random
// rank, and random fills at several densities.
func randomPreDomain(rng *rand.Rand, n int, kind int) []uint64 {
	w := make([]uint64, bitset.Words(n))
	switch kind % 4 {
	case 0: // empty
	case 1: // full
		bitset.FillRange(w, 0, int32(n)-1)
	case 2: // singleton
		bitset.Set(w, int32(rng.Intn(n)))
	default: // random density in (0, 1)
		p := []float64{0.03, 0.2, 0.5, 0.9}[rng.Intn(4)]
		for r := 0; r < n; r++ {
			if rng.Float64() < p {
				bitset.Set(w, int32(r))
			}
		}
	}
	return w
}

// oracleImage computes {u : ∃w ∈ src, a(w, u)} by per-node successor
// enumeration — the axis.ForEachSuccessor brute force the kernels must
// match bit for bit.
func oracleImage(t *tree.Tree, a axis.Axis, src []uint64) []uint64 {
	dst := make([]uint64, len(src))
	bitset.ForEach(src, func(r int32) bool {
		axis.ForEachSuccessor(t, a, t.ByPre(r), func(v tree.NodeID) bool {
			bitset.Set(dst, t.Pre(v))
			return true
		})
		return true
	})
	return dst
}

// oraclePreimage computes {v : ∃w ∈ src, a(v, w)} by exhaustive axis.Holds
// tests.
func oraclePreimage(t *tree.Tree, a axis.Axis, src []uint64) []uint64 {
	dst := make([]uint64, len(src))
	for r := int32(0); r < int32(t.Len()); r++ {
		v := t.ByPre(r)
		bitset.ForEach(src, func(wr int32) bool {
			if axis.Holds(t, a, v, t.ByPre(wr)) {
				bitset.Set(dst, r)
				return false
			}
			return true
		})
	}
	return dst
}

func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKernelsMatchOracle: for every axis, random trees (up to ~500 nodes)
// and random domains including the empty/full/singleton shapes, the bulk
// Image and Preimage kernels must equal the per-node
// ForEachSuccessor/Holds brute force, bit for bit in both directions.
func TestKernelsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []string{"A", "B"}
	sizes := []int{1, 2, 3, 5, 9, 17, 40, 73, 150, 331, 500}
	for trial, n := range sizes {
		for _, maxKids := range []int{1, 3, 8} { // chains, bushy, wide
			tr := tree.Random(rng, tree.RandomConfig{Nodes: n, MaxChildren: maxKids, Alphabet: alphabet})
			ix := NewTreeIndex(tr)
			dst := make([]uint64, bitset.Words(n))
			for kind := 0; kind < 8; kind++ {
				src := randomPreDomain(rng, n, kind)
				for _, a := range axis.All() {
					Image(a, ix, src, dst)
					if want := oracleImage(tr, a, src); !wordsEqual(dst, want) {
						t.Fatalf("trial %d (n=%d kids<=%d kind=%d): Image(%v) mismatch\nsrc  %v\ngot  %v\nwant %v\ntree %s",
							trial, n, maxKids, kind, a, ranks(src), ranks(dst), ranks(want), tr)
					}
					Preimage(a, ix, src, dst)
					if want := oraclePreimage(tr, a, src); !wordsEqual(dst, want) {
						t.Fatalf("trial %d (n=%d kids<=%d kind=%d): Preimage(%v) mismatch\nsrc  %v\ngot  %v\nwant %v\ntree %s",
							trial, n, maxKids, kind, a, ranks(src), ranks(dst), ranks(want), tr)
					}
				}
			}
		}
	}
}

// ranks renders a pre-rank bitset as a rank list for failure messages.
func ranks(w []uint64) []int32 {
	var out []int32
	bitset.ForEach(w, func(i int32) bool { out = append(out, i); return true })
	return out
}

// TestFastACKernelPolicyParity: the kernel and probe revise paths must
// compute the identical maximal arc-consistent prevaluation — same
// verdict, same sets, same removal counters — across random trees and
// queries over the full axis vocabulary.
func TestFastACKernelPolicyParity(t *testing.T) {
	defer SetKernelPolicy(KernelAuto)
	rng := rand.New(rand.NewSource(123))
	alphabet := []string{"A", "B", "C"}
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(60)
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: n, MaxChildren: 4, Alphabet: alphabet,
			MultiLabelProb: 0.1, UnlabeledProb: 0.1,
		})
		q := randomQuery(rng, allTestAxes, alphabet, 1+rng.Intn(4), rng.Intn(6), rng.Intn(3))

		SetKernelPolicy(KernelNever)
		pProbe, sProbe, okProbe := FastACFromStats(tr, q, NewPrevaluation(tr, q))
		SetKernelPolicy(KernelAlways)
		pKernel, sKernel, okKernel := FastACFromStats(tr, q, NewPrevaluation(tr, q))
		SetKernelPolicy(KernelAuto)
		pAuto, okAuto := FastAC(tr, q)

		if okProbe != okKernel || okProbe != okAuto {
			t.Fatalf("trial %d: verdicts differ: probe %v kernel %v auto %v\nquery %s\ntree %s",
				trial, okProbe, okKernel, okAuto, q, tr)
		}
		if !okProbe {
			continue
		}
		if !pProbe.Equal(pKernel) || !pProbe.Equal(pAuto) {
			t.Fatalf("trial %d: prevaluations differ across kernel policies\nquery %s\ntree %s", trial, q, tr)
		}
		if sProbe.Removals != sKernel.Removals {
			t.Fatalf("trial %d: removal counters differ: probe %d kernel %d", trial, sProbe.Removals, sKernel.Removals)
		}
	}
}

// TestPinRunKernelPolicyParity: incremental pinned propagation must agree
// between the kernel and probe revise paths — verdicts and all resulting
// domains — for every single pin over random inputs.
func TestPinRunKernelPolicyParity(t *testing.T) {
	defer SetKernelPolicy(KernelAuto)
	rng := rand.New(rand.NewSource(321))
	alphabet := []string{"A", "B"}
	checked := 0
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(24)
		tr := tree.Random(rng, tree.RandomConfig{Nodes: n, MaxChildren: 3, Alphabet: alphabet})
		q := randomQuery(rng, allTestAxes, alphabet, 1+rng.Intn(3), rng.Intn(5), rng.Intn(2))
		p, ok := FastAC(tr, q)
		if !ok {
			continue
		}
		base := NewPinBase(tr, q, p)
		runProbe := NewPinRun(base)
		runKernel := NewPinRun(base)
		for x := 0; x < q.NumVars(); x++ {
			for v := 0; v < tr.Len(); v++ {
				SetKernelPolicy(KernelNever)
				okProbe := runProbe.Push(cq.Var(x), tree.NodeID(v))
				SetKernelPolicy(KernelAlways)
				okKernel := runKernel.Push(cq.Var(x), tree.NodeID(v))
				if okProbe != okKernel {
					t.Fatalf("trial %d: pin %d=%d: probe %v kernel %v\nquery %s\ntree %s",
						trial, x, v, okProbe, okKernel, q, tr)
				}
				checked++
				if !okProbe {
					continue
				}
				dProbe := runDomains(runProbe, q.NumVars(), tr.Len())
				dKernel := runDomains(runKernel, q.NumVars(), tr.Len())
				for y := 0; y < q.NumVars(); y++ {
					if !dProbe[y].Equal(dKernel[y]) {
						t.Fatalf("trial %d: pin %d=%d: var %d: probe %v kernel %v\nquery %s\ntree %s",
							trial, x, v, y, dProbe[y].Members(), dKernel[y].Members(), q, tr)
					}
				}
				runProbe.Pop()
				runKernel.Pop()
			}
		}
	}
	if checked < 300 {
		t.Fatalf("too few pins checked (%d) — generator drifted", checked)
	}
}
