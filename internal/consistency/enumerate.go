package consistency

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cq"
	"repro/internal/tree"
)

// This file implements the incremental pinned arc-consistency engine behind
// output-sensitive answer enumeration.
//
// The tuple-membership construction below Theorem 3.5 decides "is tuple
// 〈a1..ak〉 in the answer?" by adding singleton relations X_i = {a_i} and
// re-testing arc consistency. Running that from scratch per tuple costs a
// full O(‖A‖·|Q|) pass each time — the |A|^k · ‖A‖ · |Q| worst case the
// paper states. Two observations make enumeration output-sensitive
// instead:
//
//  1. The maximal arc-consistent prevaluation under pins is contained in
//     the unpinned one (arc consistency is monotone in the initial
//     domains), so every pinned run may start from the already-computed
//     maximal prevaluation rather than the label-filtered full sets.
//  2. Starting from an arc-consistent state, only atoms touching the
//     newly pinned variable can be violated, so the worklist seeds with
//     those atoms alone, and domains are shared copy-on-write: a pin
//     touches O(words) state for the pinned variable plus state
//     proportional to the propagation it actually causes.
//
// PinBase snapshots the maximal prevaluation (plus the tree orderings)
// once per enumeration; PinRun is a stack of pin levels over it, used to
// enumerate head tuples with prefix pruning: if pinning a tuple prefix
// already empties a domain, no extension of that prefix is an answer.

// The word-level bitset helpers formerly defined here (bitTest, anyBitIn,
// forEachBit, ...) moved to the shared internal/bitset package, which the
// pin domains below, NodeSet (prevaluation.go), and the bulk axis image
// kernels (kernels.go) all build on.

// --- PinBase --------------------------------------------------------------

// PinBase is an immutable snapshot of the subset-maximal arc-consistent
// prevaluation of a query on a tree, prepared for repeated pinned runs:
// each variable's candidate set is stored three ways — as a bitset over
// pre-order ranks, over sibling-order ranks, and over positions in the
// (preEnd, pre) order — so that a PinRun can restore any domain with a few
// word copies instead of rebuilding deletion-only index structures.
//
// A PinBase is read-only after construction and safe to share between
// concurrent PinRuns (the parallel enumeration path relies on this).
type PinBase struct {
	t  *tree.Tree
	q  *cq.Query
	n  int // number of tree nodes
	nw int // words per bitset
	nv int // number of query variables

	ix      *TreeIndex // borrowed document index (orderings, preEnd values)
	sctx    supportCtx
	atomsOf [][]int32 // variable -> indexes of atoms touching it

	sets       []*NodeSet // per variable: candidates, NodeID-indexed
	pre        [][]uint64 // per variable: alive bitset over pre ranks
	sib        [][]uint64 // per variable: alive bitset over sibling ranks
	preEnd     [][]uint64 // per variable: alive bitset over preEnd positions
	setStore   []NodeSet  // backing storage for sets (reused across rebinds)
	atomsStore [][]int32
}

// NewPinBase snapshots p — the maximal arc-consistent prevaluation of q on
// t, as returned by FastAC/HornAC — into a fresh PinBase (with its own
// freshly built tree index). p's sets are copied; the caller may keep
// using (or recycling) them afterwards.
func NewPinBase(t *tree.Tree, q *cq.Query, p *Prevaluation) *PinBase {
	b := &PinBase{}
	b.init(NewTreeIndex(t), q, p)
	return b
}

// PinBaseForIx is NewPinBase backed by Scratch-owned storage over a
// borrowed document index (already built; snapshotting copies no
// orderings). The result is valid until the next PinBaseFor(Ix) call on
// sc — and no longer than the borrowed index; while valid it is still
// safe for concurrent PinRuns.
func (sc *Scratch) PinBaseForIx(ix *TreeIndex, q *cq.Query, p *Prevaluation) *PinBase {
	sc.pinBase.init(ix, q, p)
	return &sc.pinBase
}

// PinBaseFor is PinBaseForIx over the Scratch's private index for t, which
// an arc-consistency run on the same scratch and tree has typically
// already built (legacy *Tree entry point). The result borrows that
// private index, which is rebuilt in place when the tree changes, so it
// is valid only until the next PinBaseFor(Ix) call or legacy *Tree
// arc-consistency run on sc.
func (sc *Scratch) PinBaseFor(t *tree.Tree, q *cq.Query, p *Prevaluation) *PinBase {
	return sc.PinBaseForIx(sc.indexFor(t), q, p)
}

func (b *PinBase) init(ix *TreeIndex, q *cq.Query, p *Prevaluation) {
	t := ix.t
	n := t.Len()
	nv := q.NumVars()
	if len(p.Sets) != nv {
		panic(fmt.Sprintf("consistency: PinBase of %d-set prevaluation for %d-var query", len(p.Sets), nv))
	}
	b.t, b.q, b.n, b.nv = t, q, n, nv
	b.nw = (n + 63) / 64
	b.ix = ix
	b.sctx = supportCtx{t: t, n: int32(n), sibRank: ix.sibRank, sibStart: ix.sibStart}

	for len(b.atomsStore) < nv {
		b.atomsStore = append(b.atomsStore, nil)
	}
	b.atomsOf = b.atomsStore[:nv]
	for x := range b.atomsOf {
		b.atomsOf[x] = b.atomsOf[x][:0]
	}
	for i, at := range q.Atoms {
		b.atomsOf[at.X] = append(b.atomsOf[at.X], int32(i))
		if at.Y != at.X {
			b.atomsOf[at.Y] = append(b.atomsOf[at.Y], int32(i))
		}
	}

	for len(b.setStore) < nv {
		b.setStore = append(b.setStore, NodeSet{})
	}
	b.sets = grow(b.sets, nv)
	b.pre = grow(b.pre, nv)
	b.sib = grow(b.sib, nv)
	b.preEnd = grow(b.preEnd, nv)
	for x := 0; x < nv; x++ {
		b.setStore[x].copyFrom(p.Sets[x])
		b.sets[x] = &b.setStore[x]
		b.pre[x] = bitset.Grow(b.pre[x], b.nw)
		b.sib[x] = bitset.Grow(b.sib[x], b.nw)
		b.preEnd[x] = bitset.Grow(b.preEnd[x], b.nw)
		b.sets[x].ForEach(func(v tree.NodeID) bool {
			bitset.Set(b.pre[x], t.Pre(v))
			bitset.Set(b.sib[x], b.ix.sibRank[v])
			bitset.Set(b.preEnd[x], b.ix.preEndPos[v])
			return true
		})
	}
}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Candidates returns x's snapshot candidate set (the maximal arc-consistent
// set), in NodeID indexing. Read-only; owned by the PinBase.
func (b *PinBase) Candidates(x cq.Var) *NodeSet { return b.sets[x] }

// --- pinDom: the bitset domainView ---------------------------------------

// pinDom adapts one variable's current bitsets to the domainView interface
// consumed by the shared axis support tests.
type pinDom struct {
	b      *PinBase
	pre    []uint64
	sib    []uint64
	preEnd []uint64
}

func (d *pinDom) hasNode(v tree.NodeID) bool { return bitset.Test(d.pre, d.b.t.Pre(v)) }

func (d *pinDom) anyPreIn(lo, hi int32) bool { return bitset.AnyIn(d.pre, lo, hi) }

func (d *pinDom) anySibIn(lo, hi int32) bool { return bitset.AnyIn(d.sib, lo, hi) }

func (d *pinDom) minPreEnd() int32 {
	pos := bitset.First(d.preEnd)
	if pos < 0 {
		return int32(d.b.n)
	}
	return d.b.ix.preEndVal[pos]
}

// --- PinRun ---------------------------------------------------------------

// pinLevel holds the domain state after one pin: per variable, pointers to
// the current bitsets (aliasing the level below until the variable is
// mutated — copy-on-write), plus alive counts.
type pinLevel struct {
	pre    [][]uint64
	sib    [][]uint64
	preEnd [][]uint64
	owned  []bool // whether this level owns (has copied) the variable's bitsets
	count  []int32

	ownPre    [][]uint64 // lazily allocated owned buffers, reused across pins
	ownSib    [][]uint64
	ownPreEnd [][]uint64
}

func (lv *pinLevel) ensure(nv int) {
	lv.pre = grow(lv.pre, nv)
	lv.sib = grow(lv.sib, nv)
	lv.preEnd = grow(lv.preEnd, nv)
	lv.owned = grow(lv.owned, nv)
	lv.count = grow(lv.count, nv)
	lv.ownPre = grow(lv.ownPre, nv)
	lv.ownSib = grow(lv.ownSib, nv)
	lv.ownPreEnd = grow(lv.ownPreEnd, nv)
}

// PinRun enumerates over a PinBase by pushing and popping pins. It is a
// stack: Push(x, v) restricts x's domain to {v} on top of the current
// state and propagates arc consistency incrementally; Pop undoes the most
// recent successful Push in O(1) (copy-on-write levels make undo free).
//
// A PinRun is NOT safe for concurrent use; create one per goroutine over a
// shared PinBase.
type PinRun struct {
	b         *PinBase
	depth     int
	levels    []pinLevel
	queue     []int32
	inQueue   []bool
	removeBuf []int32  // pre ranks pending removal in the current revision
	imgBuf    []uint64 // bulk-kernel support bitset of the current revision
	viewX     pinDom   // reusable support-test views (avoid per-revision
	viewY     pinDom   // heap allocation through the generic call)
}

// NewPinRun returns a PinRun positioned at the unpinned snapshot.
func NewPinRun(b *PinBase) *PinRun { return &PinRun{b: b} }

// PinRunFor is NewPinRun backed by Scratch-owned buffers: the result is
// valid until the next PinRunFor call on sc.
func (sc *Scratch) PinRunFor(b *PinBase) *PinRun {
	sc.pinRun.b = b
	sc.pinRun.depth = 0
	return &sc.pinRun
}

// Depth returns the number of pins currently pushed.
func (r *PinRun) Depth() int { return r.depth }

// Base returns the snapshot the run enumerates over.
func (r *PinRun) Base() *PinBase { return r.b }

// words returns the current bitsets of variable x at stack depth d (d pins
// applied).
func (r *PinRun) words(d int, x cq.Var) (pre, sib, preEnd []uint64) {
	if d == 0 {
		return r.b.pre[x], r.b.sib[x], r.b.preEnd[x]
	}
	lv := &r.levels[d-1]
	return lv.pre[x], lv.sib[x], lv.preEnd[x]
}

func (r *PinRun) countAt(d int, x cq.Var) int32 {
	if d == 0 {
		return int32(r.b.sets[x].Len())
	}
	return r.levels[d-1].count[x]
}

// setView points the reusable support-test view d at variable x's current
// bitsets in the level under construction.
func (lv *pinLevel) setView(b *PinBase, d *pinDom, x cq.Var) {
	d.b, d.pre, d.sib, d.preEnd = b, lv.pre[x], lv.sib[x], lv.preEnd[x]
}

// own makes the level's bitsets for x private by copying the aliased words
// into the level-owned buffers. No-op if already owned.
func (lv *pinLevel) own(b *PinBase, x cq.Var) {
	if lv.owned[x] {
		return
	}
	lv.ownPre[x] = grow(lv.ownPre[x], b.nw)
	lv.ownSib[x] = grow(lv.ownSib[x], b.nw)
	lv.ownPreEnd[x] = grow(lv.ownPreEnd[x], b.nw)
	copy(lv.ownPre[x], lv.pre[x])
	copy(lv.ownSib[x], lv.sib[x])
	copy(lv.ownPreEnd[x], lv.preEnd[x])
	lv.pre[x], lv.sib[x], lv.preEnd[x] = lv.ownPre[x], lv.ownSib[x], lv.ownPreEnd[x]
	lv.owned[x] = true
}

// remove deletes node v from x's (owned) bitsets at this level.
func (lv *pinLevel) remove(b *PinBase, x cq.Var, v tree.NodeID) {
	bitset.Clear(lv.pre[x], b.t.Pre(v))
	bitset.Clear(lv.sib[x], b.ix.sibRank[v])
	bitset.Clear(lv.preEnd[x], b.ix.preEndPos[v])
	lv.count[x]--
}

// Push restricts x's domain to {v} on top of the current state and
// propagates arc consistency. It returns true and commits one stack level
// if the pinned state remains arc-consistent (i.e. some answer extends the
// current pin prefix with x = v); otherwise it returns false and leaves
// the stack unchanged.
func (r *PinRun) Push(x cq.Var, v tree.NodeID) bool {
	b := r.b
	d := r.depth
	for len(r.levels) <= d {
		r.levels = append(r.levels, pinLevel{})
	}
	lv := &r.levels[d]
	lv.ensure(b.nv)
	for y := 0; y < b.nv; y++ {
		lv.pre[y], lv.sib[y], lv.preEnd[y] = r.words(d, cq.Var(y))
		lv.owned[y] = false
		lv.count[y] = r.countAt(d, cq.Var(y))
	}
	if !bitset.Test(lv.pre[x], b.t.Pre(v)) {
		return false // v already pruned from x's domain
	}
	// Pin: x's bitsets become the singleton {v}.
	lv.ownPre[x] = bitset.Grow(lv.ownPre[x], b.nw)
	lv.ownSib[x] = bitset.Grow(lv.ownSib[x], b.nw)
	lv.ownPreEnd[x] = bitset.Grow(lv.ownPreEnd[x], b.nw)
	lv.pre[x], lv.sib[x], lv.preEnd[x] = lv.ownPre[x], lv.ownSib[x], lv.ownPreEnd[x]
	lv.owned[x] = true
	bitset.Set(lv.pre[x], b.t.Pre(v))
	bitset.Set(lv.sib[x], b.ix.sibRank[v])
	bitset.Set(lv.preEnd[x], b.ix.preEndPos[v])
	lv.count[x] = 1
	if !r.propagate(lv, x) {
		return false
	}
	r.depth = d + 1
	return true
}

// Pop undoes the most recent successful Push.
func (r *PinRun) Pop() {
	if r.depth == 0 {
		panic("consistency: PinRun.Pop on empty pin stack")
	}
	r.depth--
}

// propagate runs the incremental worklist on the level under construction,
// seeded with the atoms touching the pinned variable. Reports false if
// some domain empties.
func (r *PinRun) propagate(lv *pinLevel, pinned cq.Var) bool {
	b := r.b
	na := len(b.q.Atoms)
	if cap(r.inQueue) < na {
		r.inQueue = make([]bool, na)
	}
	inQueue := r.inQueue[:na]
	for i := range inQueue {
		inQueue[i] = false
	}
	queue := r.queue[:0]
	for _, ai := range b.atomsOf[pinned] {
		queue = append(queue, ai)
		inQueue[ai] = true
	}
	// enqueueTouching re-queues the atoms of a pruned variable, except the
	// atom being revised: for a two-variable atom one forward+backward
	// pass leaves it fully arc-consistent (pruned values are unsupported,
	// so they support nothing on the opposite side), and re-revising it
	// immediately would find no work. Self-loop atoms R(x,x) MUST re-queue
	// themselves (except = -1): there the two sides share one domain, so a
	// removal can strip the remaining values' own supports. Keep this
	// revision rule in sync with Scratch.FastACFromStats (fastac.go),
	// which runs the same worklist over the deletion-only UF domains.
	enqueueTouching := func(x cq.Var, except int32) {
		for _, ai := range b.atomsOf[x] {
			if ai != except && !inQueue[ai] {
				inQueue[ai] = true
				queue = append(queue, ai)
			}
		}
	}
	consistent := true
	for pop := 0; consistent && pop < len(queue); pop++ {
		ai := queue[pop]
		inQueue[ai] = false
		at := b.q.Atoms[ai]
		except := ai
		if at.X == at.Y {
			except = -1 // self-loop: must re-revise itself to a fixpoint
		}

		// Forward: prune candidates of X lacking support in Y. Dense
		// domains revise through the bulk kernel (support = Preimage of
		// Y's alive set, one pass over the words); sparse ones probe per
		// alive candidate. Both paths compute the identical removal set.
		lv.setView(b, &r.viewX, at.X)
		lv.setView(b, &r.viewY, at.Y)
		r.removeBuf = r.removeBuf[:0]
		if ReviseWithKernel(int(lv.count[at.X]), b.n) {
			r.imgBuf = bitset.Resize(r.imgBuf, b.nw)
			Preimage(at.Axis, b.ix, r.viewY.pre, r.imgBuf)
			r.removeBuf = appendUnsupported(r.removeBuf, r.viewX.pre, r.imgBuf)
		} else {
			bitset.ForEach(r.viewX.pre, func(pr int32) bool {
				if !supportedFwd(&b.sctx, at.Axis, b.t.ByPre(pr), &r.viewY) {
					r.removeBuf = append(r.removeBuf, pr)
				}
				return true
			})
		}
		if len(r.removeBuf) > 0 {
			lv.own(b, at.X)
			for _, pr := range r.removeBuf {
				lv.remove(b, at.X, b.t.ByPre(pr))
			}
			if lv.count[at.X] == 0 {
				consistent = false
				break
			}
			enqueueTouching(at.X, except)
		}

		// Backward: prune candidates of Y lacking support in X. Views are
		// re-fetched: the forward removals may have copy-on-wrote X (and,
		// for self-loop atoms, X aliases Y).
		lv.setView(b, &r.viewX, at.X)
		lv.setView(b, &r.viewY, at.Y)
		r.removeBuf = r.removeBuf[:0]
		if ReviseWithKernel(int(lv.count[at.Y]), b.n) {
			r.imgBuf = bitset.Resize(r.imgBuf, b.nw)
			Image(at.Axis, b.ix, r.viewX.pre, r.imgBuf)
			r.removeBuf = appendUnsupported(r.removeBuf, r.viewY.pre, r.imgBuf)
		} else {
			bitset.ForEach(r.viewY.pre, func(pr int32) bool {
				if !supportedBwd(&b.sctx, at.Axis, b.t.ByPre(pr), &r.viewX) {
					r.removeBuf = append(r.removeBuf, pr)
				}
				return true
			})
		}
		if len(r.removeBuf) > 0 {
			lv.own(b, at.Y)
			for _, pr := range r.removeBuf {
				lv.remove(b, at.Y, b.t.ByPre(pr))
			}
			if lv.count[at.Y] == 0 {
				consistent = false
				break
			}
			enqueueTouching(at.Y, except)
		}
	}
	r.queue = queue[:0]
	return consistent
}

// ForEachCurrent calls fn for every node in x's current (post-pin) domain,
// in document (pre) order, stopping early if fn returns false. The domain
// reflects all pins currently pushed; with no pins it is x's maximal
// arc-consistent candidate set.
func (r *PinRun) ForEachCurrent(x cq.Var, fn func(v tree.NodeID) bool) {
	pre, _, _ := r.words(r.depth, x)
	bitset.ForEach(pre, func(pr int32) bool { return fn(r.b.t.ByPre(pr)) })
}

// ForEachCurrentDir is ForEachCurrent with an explicit direction and seek
// position, for ordered (and cursor-resumed) enumeration: it iterates x's
// current (post-pin) domain over pre-order ranks — ascending when desc is
// false, descending otherwise — passing each node together with its pre
// rank. A non-negative from seeks in O(1): ascending iteration starts at
// the smallest alive rank >= from, descending at the largest alive rank
// <= from; from < 0 iterates the whole domain from its extreme end. fn
// returns false to stop.
func (r *PinRun) ForEachCurrentDir(x cq.Var, desc bool, from int32, fn func(v tree.NodeID, pr int32) bool) {
	pre, _, _ := r.words(r.depth, x)
	emit := func(pr int32) bool { return fn(r.b.t.ByPre(pr), pr) }
	if desc {
		if from < 0 {
			from = int32(len(pre))*64 - 1
		}
		bitset.ForEachDescFrom(pre, from, emit)
		return
	}
	if from < 0 {
		from = 0
	}
	bitset.ForEachFrom(pre, from, emit)
}

// CurrentLen returns the size of x's current domain.
func (r *PinRun) CurrentLen(x cq.Var) int { return int(r.countAt(r.depth, x)) }
