package consistency

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/axis"
	"repro/internal/cq"
	"repro/internal/tree"
)

// refMaximalAC computes the subset-maximal arc-consistent prevaluation by
// naive fixpoint iteration directly from the §3 definition — the oracle
// both engines are checked against.
func refMaximalAC(t *tree.Tree, q *cq.Query) (*Prevaluation, bool) {
	p := NewPrevaluation(t, q)
	changed := true
	for changed {
		changed = false
		for _, at := range q.Atoms {
			sx, sy := p.Sets[at.X], p.Sets[at.Y]
			var del []tree.NodeID
			sx.ForEach(func(v tree.NodeID) bool {
				ok := false
				sy.ForEach(func(w tree.NodeID) bool {
					if axis.Holds(t, at.Axis, v, w) {
						ok = true
						return false
					}
					return true
				})
				if !ok {
					del = append(del, v)
				}
				return true
			})
			for _, v := range del {
				sx.Remove(v)
				changed = true
			}
			del = del[:0]
			sy.ForEach(func(w tree.NodeID) bool {
				ok := false
				sx.ForEach(func(v tree.NodeID) bool {
					if axis.Holds(t, at.Axis, v, w) {
						ok = true
						return false
					}
					return true
				})
				if !ok {
					del = append(del, w)
				}
				return true
			})
			for _, w := range del {
				sy.Remove(w)
				changed = true
			}
		}
	}
	if p.Empty() {
		return nil, false
	}
	return p, true
}

// randomQuery builds a random CQ over the given axes with nv variables and
// na binary atoms, labels drawn from alphabet.
func randomQuery(rng *rand.Rand, axes []axis.Axis, alphabet []string, nv, na, nl int) *cq.Query {
	q := cq.New()
	vars := make([]cq.Var, nv)
	for i := range vars {
		vars[i] = q.AddVar(string(rune('a' + i)))
	}
	for i := 0; i < na; i++ {
		a := axes[rng.Intn(len(axes))]
		x := vars[rng.Intn(nv)]
		y := vars[rng.Intn(nv)]
		q.AddAtom(a, x, y)
	}
	for i := 0; i < nl; i++ {
		q.AddLabel(alphabet[rng.Intn(len(alphabet))], vars[rng.Intn(nv)])
	}
	return q
}

var testAxes = []axis.Axis{
	axis.Child, axis.ChildPlus, axis.ChildStar,
	axis.NextSibling, axis.NextSiblingPlus, axis.NextSiblingStar,
	axis.Following,
}

var allTestAxes = append(append([]axis.Axis{}, testAxes...),
	axis.Parent, axis.AncestorPlus, axis.AncestorStar,
	axis.PrevSibling, axis.PrevSiblingPlus, axis.PrevSiblingStar,
	axis.Preceding, axis.Self, axis.DocOrder, axis.DocOrderSucc)

func TestEnginesAgreeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []string{"A", "B", "C"}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(18)
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: n, MaxChildren: 3, Alphabet: alphabet,
			MultiLabelProb: 0.1, UnlabeledProb: 0.1,
		})
		q := randomQuery(rng, allTestAxes, alphabet, 1+rng.Intn(4), rng.Intn(5), rng.Intn(3))

		want, wantOK := refMaximalAC(tr, q)
		gotF, okF := FastAC(tr, q)
		gotH, okH := HornAC(tr, q)
		if okF != wantOK || okH != wantOK {
			t.Fatalf("trial %d: ok mismatch: oracle %v fast %v horn %v\nquery %s\ntree %s",
				trial, wantOK, okF, okH, q, tr)
		}
		if !wantOK {
			continue
		}
		if !gotF.Equal(want) {
			t.Fatalf("trial %d: FastAC differs from oracle\nquery %s\ntree %s", trial, q, tr)
		}
		if !gotH.Equal(want) {
			t.Fatalf("trial %d: HornAC differs from oracle\nquery %s\ntree %s", trial, q, tr)
		}
	}
}

func TestACResultIsArcConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"A", "B"}
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(15), MaxChildren: 3, Alphabet: alphabet,
		})
		q := randomQuery(rng, testAxes, alphabet, 1+rng.Intn(3), rng.Intn(4), rng.Intn(2))
		p, ok := FastAC(tr, q)
		if !ok {
			return true
		}
		return p.IsArcConsistent(tr, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMinimumValuationConsistentOnXStructures(t *testing.T) {
	// Lemma 3.4: on structures with the X-property w.r.t. an order, the
	// minimum valuation of an arc-consistent prevaluation is consistent.
	// Exercise all three tractable signatures with their orders.
	type sigCase struct {
		axes  []axis.Axis
		order axis.Order
	}
	cases := []sigCase{
		{[]axis.Axis{axis.ChildPlus, axis.ChildStar}, axis.PreOrder},
		{[]axis.Axis{axis.Following}, axis.PostOrder},
		{[]axis.Axis{axis.Child, axis.NextSibling, axis.NextSiblingPlus, axis.NextSiblingStar}, axis.BFLROrder},
	}
	rng := rand.New(rand.NewSource(17))
	alphabet := []string{"A", "B", "C"}
	for _, sc := range cases {
		for trial := 0; trial < 150; trial++ {
			tr := tree.Random(rng, tree.RandomConfig{
				Nodes: 1 + rng.Intn(25), MaxChildren: 3, Alphabet: alphabet,
				UnlabeledProb: 0.1,
			})
			q := randomQuery(rng, sc.axes, alphabet, 1+rng.Intn(4), rng.Intn(6), rng.Intn(3))
			p, ok := FastAC(tr, q)
			if !ok {
				continue
			}
			theta := p.MinimumValuation(tr, sc.order)
			if !Consistent(tr, q, theta) {
				t.Fatalf("minimum valuation inconsistent for %v w.r.t. %v\nquery %s\ntree %s",
					sc.axes, sc.order, q, tr)
			}
		}
	}
}

func TestPinnedACMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alphabet := []string{"A", "B"}
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(12)
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: n, MaxChildren: 3, Alphabet: alphabet,
		})
		q := randomQuery(rng, testAxes, alphabet, 1+rng.Intn(3), rng.Intn(4), rng.Intn(2))
		x := cq.Var(rng.Intn(q.NumVars()))
		node := tree.NodeID(rng.Intn(n))
		pf, okF := PinnedAC(EngineFast, tr, q, []cq.Var{x}, []tree.NodeID{node})
		ph, okH := PinnedAC(EngineHorn, tr, q, []cq.Var{x}, []tree.NodeID{node})
		if okF != okH {
			t.Fatalf("trial %d: pinned engines disagree: fast %v horn %v", trial, okF, okH)
		}
		if okF && !pf.Equal(ph) {
			t.Fatalf("trial %d: pinned prevaluations differ", trial)
		}
		if okF {
			if pf.Sets[x].Len() != 1 || !pf.Sets[x].Has(node) {
				t.Fatalf("trial %d: pinned set not the singleton", trial)
			}
			if !pf.IsArcConsistent(tr, q) {
				t.Fatalf("trial %d: pinned result not arc-consistent", trial)
			}
		}
	}
}

func TestEmptyAndDegenerateCases(t *testing.T) {
	q := cq.MustParse("Q() <- true")
	empty := tree.NewBuilder(0).Build()
	if _, ok := FastAC(empty, q); !ok {
		t.Errorf("no-var query on empty tree should hold")
	}
	q2 := cq.MustParse("Q() <- A(x)")
	if _, ok := FastAC(empty, q2); ok {
		t.Errorf("query with vars on empty tree should fail")
	}
	one := tree.MustParseTerm("A")
	if _, ok := FastAC(one, q2); !ok {
		t.Errorf("A(x) on single-A tree should hold")
	}
	q3 := cq.MustParse("Q() <- B(x)")
	if _, ok := FastAC(one, q3); ok {
		t.Errorf("B(x) on single-A tree should fail")
	}
}

func TestUnsatisfiableLabelConjunction(t *testing.T) {
	tr := tree.MustParseTerm("A(B)")
	q := cq.MustParse("Q() <- A(x), B(x)")
	if _, ok := FastAC(tr, q); ok {
		t.Errorf("no node carries both A and B")
	}
	multi := tree.MustParseTerm("A|B(C)")
	if _, ok := FastAC(multi, q); !ok {
		t.Errorf("multi-labeled node should satisfy A(x), B(x)")
	}
}

func TestConsistentValuationCheck(t *testing.T) {
	tr := tree.MustParseTerm("A(B,C)")
	q := cq.MustParse("Q() <- A(x), Child(x, y), B(y)")
	x, _ := q.VarByName("x")
	y, _ := q.VarByName("y")
	theta := make(Valuation, q.NumVars())
	theta[x] = 0 // A
	theta[y] = 1 // B
	if !Consistent(tr, q, theta) {
		t.Errorf("valid valuation rejected")
	}
	theta[y] = 2 // C: label B fails
	if Consistent(tr, q, theta) {
		t.Errorf("invalid valuation accepted")
	}
}

func TestNodeSetOps(t *testing.T) {
	s := NewNodeSet(100)
	s.Add(3)
	s.Add(70)
	s.Add(3)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Has(3) || !s.Has(70) || s.Has(4) {
		t.Errorf("membership wrong")
	}
	s.Remove(3)
	s.Remove(3)
	if s.Len() != 1 || s.Has(3) {
		t.Errorf("remove wrong")
	}
	full := FullNodeSet(10)
	if full.Len() != 10 {
		t.Errorf("FullNodeSet Len = %d", full.Len())
	}
	o := NewNodeSet(10)
	o.Add(2)
	o.Add(5)
	full.IntersectWith(o)
	if !full.Equal(o) {
		t.Errorf("intersection wrong: %v", full.Members())
	}
	members := o.Members()
	if len(members) != 2 || members[0] != 2 || members[1] != 5 {
		t.Errorf("Members = %v", members)
	}
	c := o.Clone()
	c.Remove(2)
	if o.Len() != 2 {
		t.Errorf("clone aliases original")
	}
}

func TestSuccUF(t *testing.T) {
	n := 10
	var su succUF
	su.reset(n)
	if su.find(0) != 0 || su.find(9) != 9 {
		t.Fatalf("initial finds wrong")
	}
	for _, r := range []int32{3, 4, 5, 0, 9} {
		su.delete(r)
	}
	if got := su.find(3); got != 6 {
		t.Errorf("succ find(3) = %d, want 6", got)
	}
	if got := su.find(0); got != 1 {
		t.Errorf("succ find(0) = %d, want 1", got)
	}
	if got := su.find(9); got != 10 {
		t.Errorf("succ find(9) = %d, want 10 (none)", got)
	}
	// Reuse after reset restores the full universe.
	su.reset(n)
	for r := int32(0); r < int32(n); r++ {
		if su.find(r) != r {
			t.Fatalf("after reset, find(%d) = %d", r, su.find(r))
		}
	}
}

func TestFastACStats(t *testing.T) {
	tr := tree.MustParseTerm("A(B,C(B),D)")
	// y is unlabeled, so arc consistency itself must prune it down to
	// nodes between an A and a B.
	q := cq.MustParse("Q() <- A(x), Child+(x, y), Child+(y, z), B(z)")
	p, stats, ok := FastACFromStats(tr, q, NewPrevaluation(tr, q))
	if !ok {
		t.Fatal("query should be satisfiable")
	}
	if stats.Revisions == 0 {
		t.Errorf("expected at least one revision")
	}
	if stats.Removals == 0 {
		t.Errorf("expected removals, got %+v", stats)
	}
	y, _ := q.VarByName("y")
	if p.Sets[y].Len() != 1 { // only the C node lies strictly between A and a B
		t.Errorf("Π(y) = %v, want exactly the C node", p.Sets[y].Members())
	}
	// A trivially-true query does no pruning.
	q2 := cq.MustParse("Q() <- Child*(x, y)")
	_, stats2, ok := FastACFromStats(tr, q2, NewPrevaluation(tr, q2))
	if !ok {
		t.Fatal("Child* query should hold")
	}
	if stats2.Removals != 0 {
		t.Errorf("no pruning expected: %+v", stats2)
	}
}

func TestSortByKey(t *testing.T) {
	idx := []int32{0, 1, 2, 3, 4}
	key := []int64{50, 10, 40, 10, 0}
	sortByKey(idx, key, make([]int32, len(idx)))
	want := []int32{4, 1, 3, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("sortByKey = %v, want %v", idx, want)
		}
	}
}
