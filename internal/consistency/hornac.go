package consistency

import (
	"repro/internal/axis"
	"repro/internal/cq"
	"repro/internal/hornsat"
	"repro/internal/tree"
)

// HornAC computes the unique subset-maximal arc-consistent prevaluation of
// q on t using the paper-exact Horn-SAT reduction of Proposition 3.1, and
// reports (nil, false) if none exists (some variable's set would be empty).
//
// The propositional atoms are Remove(x, v); the clauses are
//
//	Remove(x,v) ← .                                    P(x) ∈ Q, ¬P^A(v)
//	Remove(x,v) ← ∧{Remove(y,w) | R^A(v,w)}            R(x,y) ∈ Q, v ∈ A
//	Remove(y,w) ← ∧{Remove(x,v) | R^A(v,w)}            R(x,y) ∈ Q, w ∈ A
//
// and Π(x) = {v | Remove(x,v) not derivable}. The program is solved by
// linear-time unit resolution (package hornsat), so the whole computation
// is O(‖A‖·|Q|) in the size of the program — note the program materializes
// each axis relation, which is Θ(n²) pairs for transitive axes.
func HornAC(t *tree.Tree, q *cq.Query) (*Prevaluation, bool) {
	return HornACPinned(t, q, nil, nil)
}

// HornACPinned is HornAC extended with the singleton relations of the
// tuple-membership construction below Theorem 3.5: for each pinned
// variable vars[i], facts Remove(vars[i], v) are added for every node
// v ≠ nodes[i].
func HornACPinned(t *tree.Tree, q *cq.Query, vars []cq.Var, nodes []tree.NodeID) (*Prevaluation, bool) {
	n := t.Len()
	nv := q.NumVars()
	prog := hornsat.NewProgram(nv*n, nv*n*2)
	prog.NewAtoms(nv * n) // Remove(x, v) = x*n + v
	atom := func(x cq.Var, v tree.NodeID) hornsat.AtomID {
		return hornsat.AtomID(int(x)*n + int(v))
	}

	// Pin facts: Remove(x,v) for every node other than the pinned one.
	for i, x := range vars {
		for v := 0; v < n; v++ {
			if tree.NodeID(v) != nodes[i] {
				prog.AddClause(atom(x, tree.NodeID(v)))
			}
		}
	}

	// Unary facts: Remove(x,v) for every v lacking a required label.
	for _, la := range q.Labels {
		for v := 0; v < n; v++ {
			if !t.HasLabel(tree.NodeID(v), la.Label) {
				prog.AddClause(atom(la.X, tree.NodeID(v)))
			}
		}
	}

	// Binary clauses. For each atom R(x,y) and node v, the forward clause
	// bodies enumerate successors of v under R; backward clauses enumerate
	// predecessors of w (successors under the inverse axis).
	var body []hornsat.AtomID
	for _, at := range q.Atoms {
		fwd, hasInv := at.Axis, true
		var bwd axis.Axis
		switch at.Axis {
		case axis.DocOrder, axis.DocOrderSucc:
			hasInv = false
		default:
			bwd = at.Axis.Inverse()
		}
		for v := 0; v < n; v++ {
			vid := tree.NodeID(v)
			body = body[:0]
			axis.ForEachSuccessor(t, fwd, vid, func(w tree.NodeID) bool {
				body = append(body, atom(at.Y, w))
				return true
			})
			prog.AddClause(atom(at.X, vid), body...)
		}
		for w := 0; w < n; w++ {
			wid := tree.NodeID(w)
			body = body[:0]
			if hasInv {
				axis.ForEachSuccessor(t, bwd, wid, func(v tree.NodeID) bool {
					body = append(body, atom(at.X, v))
					return true
				})
			} else {
				// Order extensions: enumerate predecessors directly.
				for v := 0; v < n; v++ {
					if axis.Holds(t, at.Axis, tree.NodeID(v), wid) {
						body = append(body, atom(at.X, tree.NodeID(v)))
					}
				}
			}
			prog.AddClause(atom(at.Y, wid), body...)
		}
	}

	removed := prog.Solve()
	p := &Prevaluation{Sets: make([]*NodeSet, nv)}
	for x := 0; x < nv; x++ {
		s := NewNodeSet(n)
		for v := 0; v < n; v++ {
			if !removed[int(x)*n+v] {
				s.Add(tree.NodeID(v))
			}
		}
		if s.Empty() {
			return nil, false
		}
		p.Sets[x] = s
	}
	return p, true
}
