package consistency

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/bitset"
	"repro/internal/cq"
	"repro/internal/tree"
)

// succUF is a deletion-only successor structure over ranks 0..n-1: find(r)
// returns the smallest alive rank >= r, or n if none. Deleting rank r is
// amortized near-constant (union-find with path halving).
type succUF struct {
	next []int32 // next[r] = r if alive, else a rank to the right
}

// reset re-initializes the structure for universe n, reusing the backing
// array when possible.
func (u *succUF) reset(n int) {
	u.next = growInt32(u.next, n+1)
	for i := range u.next {
		u.next[i] = int32(i)
	}
}

func (u *succUF) find(r int32) int32 {
	for u.next[r] != r {
		u.next[r] = u.next[u.next[r]] // path halving
		r = u.next[r]
	}
	return r
}

func (u *succUF) delete(r int32) { u.next[r] = u.find(r + 1) }

// domain bundles a variable's alive set with its deletion-only indexes and
// a word bitset over pre ranks. The index structures live inline so a
// Scratch can recycle their backing arrays across runs. (Maximum-alive
// queries need no mirrored predecessor structure: every support test below
// reduces to "does an alive rank exist in [lo, hi]", which the successor
// structures answer directly.) The pre-rank words mirror the alive set for
// the bulk image kernels (kernels.go): dense revisions intersect against a
// whole-domain axis image instead of probing per node, while the succUF
// structures keep serving the sparse probe path, chosen per revision by
// ReviseWithKernel.
type domain struct {
	set      *NodeSet
	st       *fastState // run context: tree, indexes (set by resetDomain)
	byPre    succUF     // over pre ranks
	bySib    succUF     // over sibling-order ranks
	byPreEnd succUF     // over preEnd-sorted positions (min alive preEnd)
	pre      []uint64   // alive bitset over pre ranks (kernel operand)
}

// fastState carries the shared tree indexes of a FastAC run, borrowed from
// a document TreeIndex (or the Scratch's private fallback index).
type fastState struct {
	t    *tree.Tree
	n    int
	ix   *TreeIndex
	sctx supportCtx
	doms []domain
}

// resetDomain re-initializes d over s: full indexes and pre-rank words,
// then deletion of every rank whose node is not in s.
func (st *fastState) resetDomain(d *domain, s *NodeSet) {
	n := st.n
	d.set = s
	d.st = st
	d.byPre.reset(n)
	d.bySib.reset(n)
	d.byPreEnd.reset(n)
	d.pre = bitset.Grow(d.pre, bitset.Words(n))
	if s.Len() == n {
		bitset.FillRange(d.pre, 0, int32(n)-1)
		return
	}
	for v := 0; v < n; v++ {
		if s.Has(tree.NodeID(v)) {
			bitset.Set(d.pre, st.t.Pre(tree.NodeID(v)))
		} else {
			d.deleteIndexes(st, tree.NodeID(v))
		}
	}
}

func (d *domain) deleteIndexes(st *fastState, v tree.NodeID) {
	d.byPre.delete(st.t.Pre(v))
	d.bySib.delete(st.ix.sibRank[v])
	d.byPreEnd.delete(st.ix.preEndPos[v])
}

func (d *domain) remove(st *fastState, v tree.NodeID) {
	d.set.Remove(v)
	bitset.Clear(d.pre, st.t.Pre(v))
	d.deleteIndexes(st, v)
}

// domain implements domainView (see below) on top of its deletion-only
// successor structures.

func (d *domain) hasNode(v tree.NodeID) bool { return d.set.Has(v) }

func (d *domain) anyPreIn(lo, hi int32) bool {
	if lo < 0 {
		lo = 0
	}
	if hi < lo || lo >= int32(d.st.n) {
		return false
	}
	return d.byPre.find(lo) <= hi
}

func (d *domain) anySibIn(lo, hi int32) bool {
	if lo < 0 {
		lo = 0
	}
	if hi < lo || lo >= int32(d.st.n) {
		return false
	}
	return d.bySib.find(lo) <= hi
}

func (d *domain) minPreEnd() int32 {
	pos := d.byPreEnd.find(0)
	if pos >= int32(d.st.n) {
		return int32(d.st.n)
	}
	return d.st.t.PreEnd(d.st.ix.preEndNode[pos])
}

// domainView abstracts the alive-set queries that axis support tests need.
// Two implementations exist: *domain (deletion-only successor structures,
// used by the full FastAC worklist) and *pinDom (copy-on-write bitsets,
// used by incremental pinned runs during enumeration; see enumerate.go).
// All ranges are inclusive; implementations tolerate empty or out-of-range
// intervals.
type domainView interface {
	// hasNode reports whether node v is alive.
	hasNode(v tree.NodeID) bool
	// anyPreIn reports whether an alive node has pre rank in [lo, hi].
	anyPreIn(lo, hi int32) bool
	// anySibIn reports whether an alive node has sibling-order rank in
	// [lo, hi].
	anySibIn(lo, hi int32) bool
	// minPreEnd returns the minimum preEnd among alive nodes, or >= n
	// when the domain is empty.
	minPreEnd() int32
}

// supportCtx bundles the read-only tree context the support tests consult.
type supportCtx struct {
	t        *tree.Tree
	n        int32
	sibRank  []int32 // node -> sibling-order rank
	sibStart []int32 // parent node -> first child rank
}

// supportedFwd reports whether node v (a candidate for x in atom R(x,y))
// has some support w in dy: ∃w ∈ dy: R(v,w). Generic over the domain
// representation so the full worklist and the incremental pinned runs share
// one implementation of the per-axis logic.
func supportedFwd[D domainView](c *supportCtx, a axis.Axis, v tree.NodeID, dy D) bool {
	t := c.t
	switch a {
	case axis.Child:
		for _, ch := range t.Children(v) {
			if dy.hasNode(ch) {
				return true
			}
		}
		return false
	case axis.ChildPlus:
		return dy.anyPreIn(t.Pre(v)+1, t.PreEnd(v))
	case axis.ChildStar:
		return dy.anyPreIn(t.Pre(v), t.PreEnd(v))
	case axis.NextSibling:
		w := t.NextSibling(v)
		return w != tree.NilNode && dy.hasNode(w)
	case axis.NextSiblingPlus:
		p := t.Parent(v)
		if p == tree.NilNode {
			return false
		}
		lo := c.sibRank[v] + 1
		hi := c.sibStart[p] + int32(t.NumChildren(p)) - 1
		return dy.anySibIn(lo, hi)
	case axis.NextSiblingStar:
		if dy.hasNode(v) {
			return true
		}
		return supportedFwd(c, axis.NextSiblingPlus, v, dy)
	case axis.Following:
		// ∃w alive: pre(w) > preEnd(v).
		return dy.anyPreIn(t.PreEnd(v)+1, c.n-1)
	case axis.Parent:
		p := t.Parent(v)
		return p != tree.NilNode && dy.hasNode(p)
	case axis.AncestorPlus:
		for p := t.Parent(v); p != tree.NilNode; p = t.Parent(p) {
			if dy.hasNode(p) {
				return true
			}
		}
		return false
	case axis.AncestorStar:
		for p := v; p != tree.NilNode; p = t.Parent(p) {
			if dy.hasNode(p) {
				return true
			}
		}
		return false
	case axis.PrevSibling:
		w := t.PrevSibling(v)
		return w != tree.NilNode && dy.hasNode(w)
	case axis.PrevSiblingPlus:
		p := t.Parent(v)
		if p == tree.NilNode {
			return false
		}
		return dy.anySibIn(c.sibStart[p], c.sibRank[v]-1)
	case axis.PrevSiblingStar:
		if dy.hasNode(v) {
			return true
		}
		return supportedFwd(c, axis.PrevSiblingPlus, v, dy)
	case axis.Preceding:
		// Preceding(v,w) ⇔ Following(w,v) ⇔ pre(v) > preEnd(w).
		return dy.minPreEnd() < t.Pre(v)
	case axis.Self:
		return dy.hasNode(v)
	case axis.DocOrder:
		return dy.anyPreIn(t.Pre(v)+1, c.n-1)
	case axis.DocOrderSucc:
		r := t.Pre(v) + 1
		return r < c.n && dy.hasNode(t.ByPre(r))
	default:
		panic(fmt.Sprintf("consistency: supportedFwd of invalid axis %d", int(a)))
	}
}

// supportedBwd reports whether node w (a candidate for y in atom R(x,y))
// has some support v in dx: ∃v ∈ dx: R(v,w).
func supportedBwd[D domainView](c *supportCtx, a axis.Axis, w tree.NodeID, dx D) bool {
	t := c.t
	switch a {
	case axis.Child:
		return supportedFwd(c, axis.Parent, w, dx)
	case axis.ChildPlus:
		return supportedFwd(c, axis.AncestorPlus, w, dx)
	case axis.ChildStar:
		return supportedFwd(c, axis.AncestorStar, w, dx)
	case axis.NextSibling:
		return supportedFwd(c, axis.PrevSibling, w, dx)
	case axis.NextSiblingPlus:
		return supportedFwd(c, axis.PrevSiblingPlus, w, dx)
	case axis.NextSiblingStar:
		return supportedFwd(c, axis.PrevSiblingStar, w, dx)
	case axis.Following:
		// ∃v: Following(v,w) ⇔ ∃v: preEnd(v) < pre(w).
		return dx.minPreEnd() < t.Pre(w)
	case axis.Parent:
		return supportedFwd(c, axis.Child, w, dx)
	case axis.AncestorPlus:
		return supportedFwd(c, axis.ChildPlus, w, dx)
	case axis.AncestorStar:
		return supportedFwd(c, axis.ChildStar, w, dx)
	case axis.PrevSibling:
		return supportedFwd(c, axis.NextSibling, w, dx)
	case axis.PrevSiblingPlus:
		return supportedFwd(c, axis.NextSiblingPlus, w, dx)
	case axis.PrevSiblingStar:
		return supportedFwd(c, axis.NextSiblingStar, w, dx)
	case axis.Preceding:
		// ∃v: Preceding(v,w) ⇔ ∃v: pre(v) > preEnd(w).
		return dx.anyPreIn(t.PreEnd(w)+1, c.n-1)
	case axis.Self:
		return dx.hasNode(w)
	case axis.DocOrder:
		// ∃v: pre(v) < pre(w).
		return dx.anyPreIn(0, t.Pre(w)-1)
	case axis.DocOrderSucc:
		r := t.Pre(w) - 1
		return r >= 0 && dx.hasNode(t.ByPre(r))
	default:
		panic(fmt.Sprintf("consistency: supportedBwd of invalid axis %d", int(a)))
	}
}

// FastAC computes the subset-maximal arc-consistent prevaluation of q on t
// with an AC-3-style worklist over the label-filtered initial
// prevaluation, reporting (nil, false) if some variable's set empties.
// Unlike HornAC it never materializes axis relations: every support test
// uses O(1)-ish order queries (plus O(children) for Child and O(depth) for
// ancestor walks).
func FastAC(t *tree.Tree, q *cq.Query) (*Prevaluation, bool) {
	if q.NumVars() == 0 {
		return &Prevaluation{}, true
	}
	if t.Len() == 0 {
		return nil, false
	}
	return FastACFrom(t, q, NewPrevaluation(t, q))
}

// Stats reports work counters of a FastAC run, used by the ablation
// benchmarks and the experiment harness.
type Stats struct {
	// Revisions counts atom revisions popped from the worklist.
	Revisions int
	// Removals counts candidate nodes pruned from domains.
	Removals int
	// Enqueues counts worklist (re-)insertions.
	Enqueues int
}

// FastACFrom runs the FastAC worklist from the given initial prevaluation
// (which it consumes and mutates). The result is the maximal
// arc-consistent prevaluation contained in init.
func FastACFrom(t *tree.Tree, q *cq.Query, init *Prevaluation) (*Prevaluation, bool) {
	p, _, ok := FastACFromStats(t, q, init)
	return p, ok
}

// FastACFromStats is FastACFrom with work counters.
func FastACFromStats(t *tree.Tree, q *cq.Query, init *Prevaluation) (*Prevaluation, Stats, bool) {
	return NewScratch().FastACFromStats(t, q, init)
}

// FastACFromStats is the worklist with sc's reusable buffers; see
// FastACFromStats (package level) for the contract. The returned
// prevaluation's sets are init's sets.
func (sc *Scratch) FastACFromStats(t *tree.Tree, q *cq.Query, init *Prevaluation) (*Prevaluation, Stats, bool) {
	if q.NumVars() == 0 {
		return &Prevaluation{}, Stats{}, true
	}
	if t.Len() == 0 {
		return nil, Stats{}, false
	}
	return sc.fastACFromStatsIx(sc.indexFor(t), q, init)
}

// fastACFromStatsIx is the worklist body against a borrowed document
// index. The returned prevaluation's sets are init's sets.
func (sc *Scratch) fastACFromStatsIx(ix *TreeIndex, q *cq.Query, init *Prevaluation) (*Prevaluation, Stats, bool) {
	var stats Stats
	t := ix.t
	n := t.Len()
	if q.NumVars() == 0 {
		return &Prevaluation{}, stats, true
	}
	if n == 0 {
		return nil, stats, false
	}
	nv := q.NumVars()
	for len(sc.doms) < nv {
		sc.doms = append(sc.doms, domain{})
	}
	st := &fastState{t: t, n: n, ix: ix, doms: sc.doms[:nv]}
	st.sctx = supportCtx{t: t, n: int32(n), sibRank: ix.sibRank, sibStart: ix.sibStart}
	sc.imgBuf = bitset.Resize(sc.imgBuf, bitset.Words(n))
	for x, s := range init.Sets {
		if s.Empty() {
			return nil, stats, false
		}
		st.resetDomain(&st.doms[x], s)
	}

	// Worklist of atom indexes to (re-)revise.
	na := len(q.Atoms)
	if cap(sc.inQueue) < na {
		sc.inQueue = make([]bool, na)
	}
	inQueue := sc.inQueue[:na]
	queue := sc.queue[:0]
	for i := range q.Atoms {
		queue = append(queue, i)
		inQueue[i] = true
	}
	// atomsOf[x] = atoms touching variable x.
	for len(sc.atomsOf) < nv {
		sc.atomsOf = append(sc.atomsOf, nil)
	}
	atomsOf := sc.atomsOf[:nv]
	for x := range atomsOf {
		atomsOf[x] = atomsOf[x][:0]
	}
	for i, at := range q.Atoms {
		atomsOf[at.X] = append(atomsOf[at.X], i)
		if at.Y != at.X {
			atomsOf[at.Y] = append(atomsOf[at.Y], i)
		}
	}
	// enqueueTouching re-queues the atoms of a pruned variable, except the
	// atom being revised: for a two-variable atom one forward+backward
	// pass leaves it fully arc-consistent (pruned values are unsupported,
	// so they support nothing on the opposite side), and re-revising it
	// immediately would find no work. Self-loop atoms R(x,x) MUST re-queue
	// themselves (callers pass except = -1): there the two sides share one
	// domain, so a removal can strip the remaining values' own supports.
	// Keep this revision rule in sync with PinRun.propagate (enumerate.go),
	// which runs the same worklist over copy-on-write bitset domains.
	enqueueTouching := func(x cq.Var, except int) {
		for _, i := range atomsOf[x] {
			if i != except && !inQueue[i] {
				inQueue[i] = true
				queue = append(queue, i)
				stats.Enqueues++
			}
		}
	}

	removeBuf := sc.removeBuf[:0]
	for len(queue) > 0 {
		ai := queue[0]
		queue = queue[1:]
		inQueue[ai] = false
		stats.Revisions++
		at := q.Atoms[ai]
		except := ai
		if at.X == at.Y {
			except = -1 // self-loop: must re-revise itself to a fixpoint
		}
		dx, dy := &st.doms[at.X], &st.doms[at.Y]

		// Forward: prune unsupported candidates of x. Dense domains revise
		// through the bulk kernel — one whole-domain support bitset
		// (Preimage of y's alive words) diffed against x's alive words —
		// sparse ones probe per alive candidate against the deletion-only
		// successor structures. Both paths compute the identical removal
		// set; ReviseWithKernel documents the break-even.
		removeBuf = removeBuf[:0]
		if ReviseWithKernel(dx.set.Len(), n) {
			Preimage(at.Axis, ix, dy.pre, sc.imgBuf)
			removeBuf = appendUnsupportedNodes(removeBuf, t, dx.pre, sc.imgBuf)
		} else {
			dx.set.ForEach(func(v tree.NodeID) bool {
				if !supportedFwd(&st.sctx, at.Axis, v, dy) {
					removeBuf = append(removeBuf, v)
				}
				return true
			})
		}
		if len(removeBuf) > 0 {
			stats.Removals += len(removeBuf)
			for _, v := range removeBuf {
				dx.remove(st, v)
			}
			if dx.set.Empty() {
				sc.removeBuf = removeBuf
				return nil, stats, false
			}
			enqueueTouching(at.X, except)
		}

		// Backward: prune unsupported candidates of y.
		removeBuf = removeBuf[:0]
		if ReviseWithKernel(dy.set.Len(), n) {
			Image(at.Axis, ix, dx.pre, sc.imgBuf)
			removeBuf = appendUnsupportedNodes(removeBuf, t, dy.pre, sc.imgBuf)
		} else {
			dy.set.ForEach(func(w tree.NodeID) bool {
				if !supportedBwd(&st.sctx, at.Axis, w, dx) {
					removeBuf = append(removeBuf, w)
				}
				return true
			})
		}
		if len(removeBuf) > 0 {
			stats.Removals += len(removeBuf)
			for _, w := range removeBuf {
				dy.remove(st, w)
			}
			if dy.set.Empty() {
				sc.removeBuf = removeBuf
				return nil, stats, false
			}
			enqueueTouching(at.Y, except)
		}
	}
	sc.removeBuf = removeBuf
	sc.queue = queue[:0]

	p := &Prevaluation{Sets: make([]*NodeSet, nv)}
	for x := range st.doms {
		p.Sets[x] = st.doms[x].set
	}
	return p, stats, true
}

// sortByKey sorts idx by ascending key[idx[i]] (bottom-up merge sort into
// the caller-provided buffer to stay allocation-free on reuse; n is a tree
// size).
func sortByKey(idx []int32, key []int64, buf []int32) {
	n := len(idx)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if key[idx[i]] <= key[idx[j]] {
					buf[k] = idx[i]
					i++
				} else {
					buf[k] = idx[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = idx[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = idx[j]
				j++
				k++
			}
		}
		copy(idx, buf)
	}
}
