package consistency

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/cq"
	"repro/internal/tree"
)

// succUF is a deletion-only successor structure over ranks 0..n-1: find(r)
// returns the smallest alive rank >= r, or n if none. Deleting rank r is
// amortized near-constant (union-find with path halving).
type succUF struct {
	next []int32 // next[r] = r if alive, else a rank to the right
}

// reset re-initializes the structure for universe n, reusing the backing
// array when possible.
func (u *succUF) reset(n int) {
	u.next = growInt32(u.next, n+1)
	for i := range u.next {
		u.next[i] = int32(i)
	}
}

func (u *succUF) find(r int32) int32 {
	for u.next[r] != r {
		u.next[r] = u.next[u.next[r]] // path halving
		r = u.next[r]
	}
	return r
}

func (u *succUF) delete(r int32) { u.next[r] = u.find(r + 1) }

// predUF is the mirror: find(r) returns the largest alive rank <= r, or -1.
type predUF struct {
	prev []int32 // index shifted by +1; prev[0] = 0 is the "none" sentinel
}

func (u *predUF) reset(n int) {
	u.prev = growInt32(u.prev, n+1)
	for i := range u.prev {
		u.prev[i] = int32(i)
	}
}

func (u *predUF) find(r int32) int32 {
	i := r + 1
	for u.prev[i] != i {
		u.prev[i] = u.prev[u.prev[i]]
		i = u.prev[i]
	}
	return i - 1
}

func (u *predUF) delete(r int32) { u.prev[r+1] = u.findIdx(r) }

func (u *predUF) findIdx(r int32) int32 {
	i := r
	for u.prev[i] != i {
		u.prev[i] = u.prev[u.prev[i]]
		i = u.prev[i]
	}
	return i
}

// domain bundles a variable's alive set with its deletion-only indexes. The
// index structures live inline so a Scratch can recycle their backing
// arrays across runs.
type domain struct {
	set      *NodeSet
	byPre    succUF // over pre ranks
	byPreMax predUF // over pre ranks (max alive <= r)
	bySib    succUF // over sibling-order ranks
	bySibMax predUF
	byPreEnd succUF // over preEnd-sorted positions (min alive preEnd)
}

// fastState carries the shared tree indexes of a FastAC run, borrowed from
// a Scratch.
type fastState struct {
	t    *tree.Tree
	n    int
	ix   *treeIndex
	doms []domain
}

// resetDomain re-initializes d over s: full indexes, then deletion of every
// rank whose node is not in s.
func (st *fastState) resetDomain(d *domain, s *NodeSet) {
	n := st.n
	d.set = s
	d.byPre.reset(n)
	d.byPreMax.reset(n)
	d.bySib.reset(n)
	d.bySibMax.reset(n)
	d.byPreEnd.reset(n)
	if s.Len() == n {
		return
	}
	for v := 0; v < n; v++ {
		if !s.Has(tree.NodeID(v)) {
			d.deleteIndexes(st, tree.NodeID(v))
		}
	}
}

func (d *domain) deleteIndexes(st *fastState, v tree.NodeID) {
	pr := st.t.Pre(v)
	d.byPre.delete(pr)
	d.byPreMax.delete(pr)
	sr := st.ix.sibRank[v]
	d.bySib.delete(sr)
	d.bySibMax.delete(sr)
	d.byPreEnd.delete(st.ix.preEndPos[v])
}

func (d *domain) remove(st *fastState, v tree.NodeID) {
	d.set.Remove(v)
	d.deleteIndexes(st, v)
}

// maxAlivePre returns the largest pre rank alive in d, or -1.
func (d *domain) maxAlivePre(st *fastState) int32 { return d.byPreMax.find(int32(st.n) - 1) }

// minAlivePreEnd returns the smallest preEnd value among alive nodes, or
// n (one past any valid rank) if the domain is empty.
func (d *domain) minAlivePreEnd(st *fastState) int32 {
	pos := d.byPreEnd.find(0)
	if pos >= int32(st.n) {
		return int32(st.n)
	}
	return st.t.PreEnd(st.ix.preEndNode[pos])
}

// hasAliveInPreRange reports whether some alive node has pre rank in
// [lo, hi].
func (d *domain) hasAliveInPreRange(lo, hi int32) bool {
	if lo < 0 {
		lo = 0
	}
	r := d.byPre.find(lo)
	return r <= hi
}

// hasAliveInSibRange reports whether some alive node has sibling-order
// rank in [lo, hi].
func (d *domain) hasAliveInSibRange(lo, hi int32) bool {
	if lo < 0 {
		lo = 0
	}
	r := d.bySib.find(lo)
	return r <= hi
}

// supportedFwd reports whether node v (a candidate for x in atom R(x,y))
// has some support w in dy: ∃w ∈ dy: R(v,w).
func (st *fastState) supportedFwd(a axis.Axis, v tree.NodeID, dy *domain) bool {
	t := st.t
	switch a {
	case axis.Child:
		for _, c := range t.Children(v) {
			if dy.set.Has(c) {
				return true
			}
		}
		return false
	case axis.ChildPlus:
		return dy.hasAliveInPreRange(t.Pre(v)+1, t.PreEnd(v))
	case axis.ChildStar:
		return dy.hasAliveInPreRange(t.Pre(v), t.PreEnd(v))
	case axis.NextSibling:
		w := t.NextSibling(v)
		return w != tree.NilNode && dy.set.Has(w)
	case axis.NextSiblingPlus:
		p := t.Parent(v)
		if p == tree.NilNode {
			return false
		}
		lo := st.ix.sibRank[v] + 1
		hi := st.ix.sibStart[p] + int32(t.NumChildren(p)) - 1
		return dy.hasAliveInSibRange(lo, hi)
	case axis.NextSiblingStar:
		if dy.set.Has(v) {
			return true
		}
		return st.supportedFwd(axis.NextSiblingPlus, v, dy)
	case axis.Following:
		return dy.maxAlivePre(st) > t.PreEnd(v)
	case axis.Parent:
		p := t.Parent(v)
		return p != tree.NilNode && dy.set.Has(p)
	case axis.AncestorPlus:
		for p := t.Parent(v); p != tree.NilNode; p = t.Parent(p) {
			if dy.set.Has(p) {
				return true
			}
		}
		return false
	case axis.AncestorStar:
		for p := v; p != tree.NilNode; p = t.Parent(p) {
			if dy.set.Has(p) {
				return true
			}
		}
		return false
	case axis.PrevSibling:
		w := t.PrevSibling(v)
		return w != tree.NilNode && dy.set.Has(w)
	case axis.PrevSiblingPlus:
		p := t.Parent(v)
		if p == tree.NilNode {
			return false
		}
		lo := st.ix.sibStart[p]
		hi := st.ix.sibRank[v] - 1
		return hi >= lo && dy.bySibMax.find(hi) >= lo
	case axis.PrevSiblingStar:
		if dy.set.Has(v) {
			return true
		}
		return st.supportedFwd(axis.PrevSiblingPlus, v, dy)
	case axis.Preceding:
		// Preceding(v,w) ⇔ Following(w,v) ⇔ pre(v) > preEnd(w).
		return dy.minAlivePreEnd(st) < t.Pre(v)
	case axis.Self:
		return dy.set.Has(v)
	case axis.DocOrder:
		return dy.maxAlivePre(st) > t.Pre(v)
	case axis.DocOrderSucc:
		r := t.Pre(v) + 1
		return r < int32(st.n) && dy.set.Has(t.ByPre(r))
	default:
		panic(fmt.Sprintf("consistency: supportedFwd of invalid axis %d", int(a)))
	}
}

// supportedBwd reports whether node w (a candidate for y in atom R(x,y))
// has some support v in dx: ∃v ∈ dx: R(v,w).
func (st *fastState) supportedBwd(a axis.Axis, w tree.NodeID, dx *domain) bool {
	t := st.t
	switch a {
	case axis.Child:
		return st.supportedFwd(axis.Parent, w, dx)
	case axis.ChildPlus:
		return st.supportedFwd(axis.AncestorPlus, w, dx)
	case axis.ChildStar:
		return st.supportedFwd(axis.AncestorStar, w, dx)
	case axis.NextSibling:
		return st.supportedFwd(axis.PrevSibling, w, dx)
	case axis.NextSiblingPlus:
		return st.supportedFwd(axis.PrevSiblingPlus, w, dx)
	case axis.NextSiblingStar:
		return st.supportedFwd(axis.PrevSiblingStar, w, dx)
	case axis.Following:
		// ∃v: Following(v,w) ⇔ ∃v: preEnd(v) < pre(w).
		return dx.minAlivePreEnd(st) < t.Pre(w)
	case axis.Parent:
		return st.supportedFwd(axis.Child, w, dx)
	case axis.AncestorPlus:
		return st.supportedFwd(axis.ChildPlus, w, dx)
	case axis.AncestorStar:
		return st.supportedFwd(axis.ChildStar, w, dx)
	case axis.PrevSibling:
		return st.supportedFwd(axis.NextSibling, w, dx)
	case axis.PrevSiblingPlus:
		return st.supportedFwd(axis.NextSiblingPlus, w, dx)
	case axis.PrevSiblingStar:
		return st.supportedFwd(axis.NextSiblingStar, w, dx)
	case axis.Preceding:
		// ∃v: Preceding(v,w) ⇔ ∃v: pre(v) > preEnd(w).
		return dx.maxAlivePre(st) > t.PreEnd(w)
	case axis.Self:
		return dx.set.Has(w)
	case axis.DocOrder:
		// ∃v: pre(v) < pre(w) ⇔ min alive pre < pre(w).
		return dx.byPre.find(0) < t.Pre(w)
	case axis.DocOrderSucc:
		r := t.Pre(w) - 1
		return r >= 0 && dx.set.Has(t.ByPre(r))
	default:
		panic(fmt.Sprintf("consistency: supportedBwd of invalid axis %d", int(a)))
	}
}

// FastAC computes the subset-maximal arc-consistent prevaluation of q on t
// with an AC-3-style worklist over the label-filtered initial
// prevaluation, reporting (nil, false) if some variable's set empties.
// Unlike HornAC it never materializes axis relations: every support test
// uses O(1)-ish order queries (plus O(children) for Child and O(depth) for
// ancestor walks).
func FastAC(t *tree.Tree, q *cq.Query) (*Prevaluation, bool) {
	if q.NumVars() == 0 {
		return &Prevaluation{}, true
	}
	if t.Len() == 0 {
		return nil, false
	}
	return FastACFrom(t, q, NewPrevaluation(t, q))
}

// Stats reports work counters of a FastAC run, used by the ablation
// benchmarks and the experiment harness.
type Stats struct {
	// Revisions counts atom revisions popped from the worklist.
	Revisions int
	// Removals counts candidate nodes pruned from domains.
	Removals int
	// Enqueues counts worklist (re-)insertions.
	Enqueues int
}

// FastACFrom runs the FastAC worklist from the given initial prevaluation
// (which it consumes and mutates). The result is the maximal
// arc-consistent prevaluation contained in init.
func FastACFrom(t *tree.Tree, q *cq.Query, init *Prevaluation) (*Prevaluation, bool) {
	p, _, ok := FastACFromStats(t, q, init)
	return p, ok
}

// FastACFromStats is FastACFrom with work counters.
func FastACFromStats(t *tree.Tree, q *cq.Query, init *Prevaluation) (*Prevaluation, Stats, bool) {
	return NewScratch().FastACFromStats(t, q, init)
}

// FastACFromStats is the worklist with sc's reusable buffers; see
// FastACFromStats (package level) for the contract. The returned
// prevaluation's sets are init's sets.
func (sc *Scratch) FastACFromStats(t *tree.Tree, q *cq.Query, init *Prevaluation) (*Prevaluation, Stats, bool) {
	var stats Stats
	n := t.Len()
	if q.NumVars() == 0 {
		return &Prevaluation{}, stats, true
	}
	if n == 0 {
		return nil, stats, false
	}
	sc.ix.build(t)
	nv := q.NumVars()
	for len(sc.doms) < nv {
		sc.doms = append(sc.doms, domain{})
	}
	st := &fastState{t: t, n: n, ix: &sc.ix, doms: sc.doms[:nv]}
	for x, s := range init.Sets {
		if s.Empty() {
			return nil, stats, false
		}
		st.resetDomain(&st.doms[x], s)
	}

	// Worklist of atom indexes to (re-)revise.
	na := len(q.Atoms)
	if cap(sc.inQueue) < na {
		sc.inQueue = make([]bool, na)
	}
	inQueue := sc.inQueue[:na]
	queue := sc.queue[:0]
	for i := range q.Atoms {
		queue = append(queue, i)
		inQueue[i] = true
	}
	// atomsOf[x] = atoms touching variable x.
	for len(sc.atomsOf) < nv {
		sc.atomsOf = append(sc.atomsOf, nil)
	}
	atomsOf := sc.atomsOf[:nv]
	for x := range atomsOf {
		atomsOf[x] = atomsOf[x][:0]
	}
	for i, at := range q.Atoms {
		atomsOf[at.X] = append(atomsOf[at.X], i)
		if at.Y != at.X {
			atomsOf[at.Y] = append(atomsOf[at.Y], i)
		}
	}
	enqueueTouching := func(x cq.Var) {
		for _, i := range atomsOf[x] {
			if !inQueue[i] {
				inQueue[i] = true
				queue = append(queue, i)
				stats.Enqueues++
			}
		}
	}

	removeBuf := sc.removeBuf[:0]
	for len(queue) > 0 {
		ai := queue[0]
		queue = queue[1:]
		inQueue[ai] = false
		stats.Revisions++
		at := q.Atoms[ai]
		dx, dy := &st.doms[at.X], &st.doms[at.Y]

		// Forward: prune unsupported candidates of x.
		removeBuf = removeBuf[:0]
		dx.set.ForEach(func(v tree.NodeID) bool {
			if !st.supportedFwd(at.Axis, v, dy) {
				removeBuf = append(removeBuf, v)
			}
			return true
		})
		if len(removeBuf) > 0 {
			stats.Removals += len(removeBuf)
			for _, v := range removeBuf {
				dx.remove(st, v)
			}
			if dx.set.Empty() {
				sc.removeBuf = removeBuf
				return nil, stats, false
			}
			enqueueTouching(at.X)
		}

		// Backward: prune unsupported candidates of y.
		removeBuf = removeBuf[:0]
		dy.set.ForEach(func(w tree.NodeID) bool {
			if !st.supportedBwd(at.Axis, w, dx) {
				removeBuf = append(removeBuf, w)
			}
			return true
		})
		if len(removeBuf) > 0 {
			stats.Removals += len(removeBuf)
			for _, w := range removeBuf {
				dy.remove(st, w)
			}
			if dy.set.Empty() {
				sc.removeBuf = removeBuf
				return nil, stats, false
			}
			enqueueTouching(at.Y)
		}
	}
	sc.removeBuf = removeBuf
	sc.queue = queue[:0]

	p := &Prevaluation{Sets: make([]*NodeSet, nv)}
	for x := range st.doms {
		p.Sets[x] = st.doms[x].set
	}
	return p, stats, true
}

// sortByKey sorts idx by ascending key[idx[i]] (bottom-up merge sort into
// the caller-provided buffer to stay allocation-free on reuse; n is a tree
// size).
func sortByKey(idx []int32, key []int64, buf []int32) {
	n := len(idx)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if key[idx[i]] <= key[idx[j]] {
					buf[k] = idx[i]
					i++
				} else {
					buf[k] = idx[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = idx[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = idx[j]
				j++
				k++
			}
		}
		copy(idx, buf)
	}
}
