package consistency

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/tree"
)

// runDomains collects the PinRun's current domain of every variable as
// NodeSets (NodeID-indexed), for comparison against a Prevaluation.
func runDomains(r *PinRun, nv, n int) []*NodeSet {
	out := make([]*NodeSet, nv)
	for x := 0; x < nv; x++ {
		s := NewNodeSet(n)
		r.ForEachCurrent(cq.Var(x), func(v tree.NodeID) bool {
			s.Add(v)
			return true
		})
		out[x] = s
	}
	return out
}

// TestPinRunMatchesPinnedAC: an incremental Push from the maximal
// arc-consistent snapshot must agree — consistency verdict AND resulting
// domains — with a from-scratch PinnedAC run, for every (variable, node)
// pin, across random trees and queries over the full axis set. This is the
// soundness core of output-sensitive enumeration (pinned maximal AC is
// contained in unpinned maximal AC).
func TestPinRunMatchesPinnedAC(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	alphabet := []string{"A", "B", "C"}
	trials, pinsChecked := 0, 0
	for trial := 0; trial < 160; trial++ {
		n := 1 + rng.Intn(14)
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: n, MaxChildren: 3, Alphabet: alphabet,
			MultiLabelProb: 0.1, UnlabeledProb: 0.1,
		})
		q := randomQuery(rng, allTestAxes, alphabet, 1+rng.Intn(4), rng.Intn(5), rng.Intn(3))
		p, ok := FastAC(tr, q)
		if !ok || q.NumVars() == 0 {
			continue
		}
		trials++
		base := NewPinBase(tr, q, p)
		run := NewPinRun(base)
		for x := 0; x < q.NumVars(); x++ {
			for v := 0; v < tr.Len(); v++ {
				want, wantOK := PinnedAC(EngineFast, tr, q, []cq.Var{cq.Var(x)}, []tree.NodeID{tree.NodeID(v)})
				gotOK := run.Push(cq.Var(x), tree.NodeID(v))
				if gotOK != wantOK {
					t.Fatalf("trial %d: pin %d=%d: incremental %v, from-scratch %v\nquery %s\ntree %s",
						trial, x, v, gotOK, wantOK, q, tr)
				}
				pinsChecked++
				if !gotOK {
					continue
				}
				doms := runDomains(run, q.NumVars(), tr.Len())
				for y := 0; y < q.NumVars(); y++ {
					if !doms[y].Equal(want.Sets[y]) {
						t.Fatalf("trial %d: pin %d=%d: domain of var %d: incremental %v, from-scratch %v\nquery %s\ntree %s",
							trial, x, v, y, doms[y].Members(), want.Sets[y].Members(), q, tr)
					}
				}
				run.Pop()
				if run.Depth() != 0 {
					t.Fatalf("depth %d after pop", run.Depth())
				}
			}
		}
	}
	if trials < 30 || pinsChecked < 500 {
		t.Fatalf("too few satisfiable trials (%d) / pins (%d) — generator drifted", trials, pinsChecked)
	}
}

// TestPinRunStackedPins: pushing two pins must agree with a from-scratch
// PinnedAC run with both pins, and popping must restore the one-pin state
// exactly (copy-on-write levels must not leak mutations downward).
func TestPinRunStackedPins(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{"A", "B"}
	checked := 0
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(10)
		tr := tree.Random(rng, tree.RandomConfig{Nodes: n, MaxChildren: 3, Alphabet: alphabet})
		q := randomQuery(rng, allTestAxes, alphabet, 2+rng.Intn(3), 1+rng.Intn(4), rng.Intn(2))
		p, ok := FastAC(tr, q)
		if !ok {
			continue
		}
		base := NewPinBase(tr, q, p)
		run := NewPinRun(base)
		nv := q.NumVars()
		x1 := cq.Var(rng.Intn(nv))
		x2 := cq.Var(rng.Intn(nv))
		for v1 := 0; v1 < tr.Len(); v1++ {
			if !run.Push(x1, tree.NodeID(v1)) {
				continue
			}
			oneDoms := runDomains(run, nv, tr.Len())
			for v2 := 0; v2 < tr.Len(); v2++ {
				want, wantOK := PinnedAC(EngineFast, tr, q,
					[]cq.Var{x1, x2}, []tree.NodeID{tree.NodeID(v1), tree.NodeID(v2)})
				gotOK := run.Push(x2, tree.NodeID(v2))
				if gotOK != wantOK {
					t.Fatalf("trial %d: pins %d=%d,%d=%d: incremental %v, from-scratch %v\nquery %s\ntree %s",
						trial, x1, v1, x2, v2, gotOK, wantOK, q, tr)
				}
				checked++
				if gotOK {
					doms := runDomains(run, nv, tr.Len())
					for y := 0; y < nv; y++ {
						if !doms[y].Equal(want.Sets[y]) {
							t.Fatalf("trial %d: pins %d=%d,%d=%d: var %d: incremental %v, from-scratch %v\nquery %s\ntree %s",
								trial, x1, v1, x2, v2, y, doms[y].Members(), want.Sets[y].Members(), q, tr)
						}
					}
					run.Pop()
				}
				// The one-pin state must be untouched by the deeper push.
				after := runDomains(run, nv, tr.Len())
				for y := 0; y < nv; y++ {
					if !after[y].Equal(oneDoms[y]) {
						t.Fatalf("trial %d: pop leaked: var %d: %v != %v", trial, y, after[y].Members(), oneDoms[y].Members())
					}
				}
			}
			run.Pop()
		}
	}
	if checked < 300 {
		t.Fatalf("too few stacked pins checked (%d)", checked)
	}
}

// TestPinBaseScratchReuse: rebinding a Scratch-owned PinBase/PinRun across
// different trees and queries must not leak state between enumerations.
func TestPinBaseScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	alphabet := []string{"A", "B", "C"}
	sc := NewScratch()
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(12)
		tr := tree.Random(rng, tree.RandomConfig{Nodes: n, MaxChildren: 4, Alphabet: alphabet})
		q := randomQuery(rng, allTestAxes, alphabet, 1+rng.Intn(4), rng.Intn(4), rng.Intn(3))
		p, ok := sc.FastAC(tr, q)
		if !ok || q.NumVars() == 0 {
			continue
		}
		base := sc.PinBaseFor(tr, q, p)
		run := sc.PinRunFor(base)
		x := cq.Var(rng.Intn(q.NumVars()))
		for v := 0; v < tr.Len(); v++ {
			want, wantOK := PinnedAC(EngineFast, tr, q, []cq.Var{x}, []tree.NodeID{tree.NodeID(v)})
			if got := run.Push(x, tree.NodeID(v)); got != wantOK {
				t.Fatalf("trial %d: pin %d=%d: scratch-backed incremental %v, from-scratch %v\nquery %s\ntree %s",
					trial, x, v, got, wantOK, q, tr)
			} else if got {
				doms := runDomains(run, q.NumVars(), tr.Len())
				for y := 0; y < q.NumVars(); y++ {
					if !doms[y].Equal(want.Sets[y]) {
						t.Fatalf("trial %d: pin %d=%d: var %d mismatch", trial, x, v, y)
					}
				}
				run.Pop()
			}
		}
	}
}

// The word-level helper tests formerly here (TestAnyBitIn) moved with the
// helpers to internal/bitset.
