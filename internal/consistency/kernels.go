package consistency

// Word-parallel axis image kernels: the bulk form of the semijoin revise.
//
// Every tractable case of the paper (acyclic queries via Yannakakis,
// X-property signatures via Theorem 3.5) reduces evaluation to repeated
// axis semijoins — "keep v ∈ dom(x) iff some w ∈ dom(y) with Axis(v, w)".
// The probe engines (supportedFwd/supportedBwd in fastac.go) answer that
// per element. The kernels below instead compute the axis image of a WHOLE
// domain as a bitset over pre-order ranks, 64 nodes per machine word,
// exploiting that every axis in the paper's vocabulary is an interval or
// shift relation in the (pre, preEnd, sibling) orderings a TreeIndex
// already materializes:
//
//   - Child+/Child* images are unions of subtree intervals — nested or
//     disjoint by the interval property of pre-order, so one ascending
//     merge sweep emits O(domain) word-parallel fills.
//   - Ancestor+/Ancestor* images come from a single descending sweep that
//     tracks the nearest alive rank to the right: u is an ancestor of an
//     alive node iff that rank lands inside u's subtree interval.
//   - Following/Preceding/DocOrder images are one suffix or prefix fill
//     from an extremal alive rank (min preEnd, max pre, min pre) —
//     Preceding additionally clears the O(depth) ancestors of the extremal
//     node.
//   - Child/Parent/NextSibling/PrevSibling images are rank-array gathers
//     and scatters over the parent/first-child/sibling tables of the
//     TreeIndex; NextSibling+/* and PrevSibling+/* are segment prefix-OR
//     sweeps over the sibling-consecutive numbering.
//
// A revise step then becomes "dom &= Image(...)": the per-axis work is a
// few linear passes instead of |dom| successor probes, which is the
// winning trade on dense domains (see ReviseWithKernel for the density
// heuristic and KernelPolicy for the test override).

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/axis"
	"repro/internal/bitset"
	"repro/internal/tree"
)

// Image computes the forward axis image of src under a:
//
//	dst = {u : ∃w ∈ src, a(w, u)}
//
// Both src and dst are bitsets over PRE-ORDER RANKS of ix's tree (use
// bitset.Words(n) words for an n-node tree; bits at or beyond n must be
// clear in src). dst is overwritten entirely and must not alias src.
//
// The backward revise of atom R(x, y) keeps w ∈ dom(y) iff w ∈
// Image(a, dom(x)); the forward revise keeps v ∈ dom(x) iff v ∈
// Preimage(a, dom(y)).
func Image(a axis.Axis, ix *TreeIndex, src, dst []uint64) {
	bitset.ZeroAll(dst)
	n := int32(len(ix.subtreeEnd))
	if n == 0 {
		return
	}
	switch a {
	case axis.Self:
		copy(dst, src)

	case axis.Child:
		// Children of the alive set: first-child/next-sibling chains.
		bitset.ForEach(src, func(r int32) bool {
			for c := ix.firstChildPre[r]; c >= 0; c = ix.nextSibPre[c] {
				bitset.Set(dst, c)
			}
			return true
		})

	case axis.Parent:
		bitset.ForEach(src, func(r int32) bool {
			if p := ix.parentPre[r]; p >= 0 {
				bitset.Set(dst, p)
			}
			return true
		})

	case axis.NextSibling:
		bitset.ForEach(src, func(r int32) bool {
			if s := ix.nextSibPre[r]; s >= 0 {
				bitset.Set(dst, s)
			}
			return true
		})

	case axis.PrevSibling:
		bitset.ForEach(src, func(r int32) bool {
			if s := ix.prevSibPre[r]; s >= 0 {
				bitset.Set(dst, s)
			}
			return true
		})

	case axis.ChildPlus:
		// Union of subtree intervals [r+1, preEnd(r)]. An alive rank inside
		// a filled interval is a descendant of the interval's node, so its
		// own interval is subsumed — after each fill, jump straight to the
		// first alive rank beyond it: O(maximal intervals), not O(|src|).
		for r := bitset.First(src); r >= 0; {
			hi := ix.subtreeEnd[r]
			if hi > r {
				bitset.FillRange(dst, r+1, hi)
			}
			r = bitset.NextAt(src, hi+1)
		}

	case axis.ChildStar:
		// As ChildPlus with the node itself included in its interval.
		for r := bitset.First(src); r >= 0; {
			hi := ix.subtreeEnd[r]
			bitset.FillRange(dst, r, hi)
			r = bitset.NextAt(src, hi+1)
		}

	case axis.AncestorPlus:
		// Union of the proper-ancestor chains of the alive set, marked
		// output-sensitively per "window": u qualifies in the window of
		// its minimal alive proper descendant m, and then pa <= pre(u) < m
		// for the previous alive rank pa — an ancestor strictly below pa
		// would contain pa, contradicting m's minimality, while u == pa
		// happens when the previous alive node is itself an ancestor of m.
		//
		// Word-parallel split: for an alive m whose predecessor m-1 is
		// also alive (the interior of an alive run), the window is the
		// single rank m-1, which qualifies iff it is m's parent — i.e.
		// iff m-1 is internal (a node's first child in pre-order is
		// always rank+1). Whole runs therefore mark ((run << 1-interior)
		// >> 1) & internal with three word ops; only each run's FIRST bit
		// pays a parent-chain walk down to pa (inclusive).
		pa := int32(-1) // last alive rank seen so far
		var carry uint64
		for wi, x := range src {
			if x == 0 {
				carry = 0
				continue
			}
			base := int32(wi) * 64
			shifted := x<<1 | carry
			both := x & shifted // alive bits with an alive predecessor
			dst[wi] |= (both >> 1) & ix.internalPre[wi]
			if both&1 != 0 { // predecessor sits in the previous word
				dst[wi-1] |= ix.internalPre[wi-1] & (1 << 63)
			}
			for s := x &^ shifted; s != 0; s &= s - 1 { // run starts
				m := base + int32(bits.TrailingZeros64(s))
				if low := x & (1<<uint(m-base) - 1); low != 0 {
					pa = base + int32(bits.Len64(low)) - 1
				}
				for r := ix.parentPre[m]; r >= 0 && r >= pa; r = ix.parentPre[r] {
					bitset.Set(dst, r)
				}
			}
			pa = base + int32(bits.Len64(x)) - 1
			carry = x >> 63
		}

	case axis.AncestorStar:
		// As AncestorPlus with each chain started at the alive node itself;
		// windows are then strictly (pa, m] — an ancestor-or-self at or
		// below pa would be ancestor-or-self of pa and is marked in an
		// earlier window — so a run-interior alive m contributes exactly
		// itself, and whole runs mark word-parallel.
		pa := int32(-1)
		var carry uint64
		for wi, x := range src {
			if x == 0 {
				carry = 0
				continue
			}
			base := int32(wi) * 64
			shifted := x<<1 | carry
			dst[wi] |= x & shifted                      // run interiors mark themselves
			for s := x &^ shifted; s != 0; s &= s - 1 { // run starts
				m := base + int32(bits.TrailingZeros64(s))
				if low := x & (1<<uint(m-base) - 1); low != 0 {
					pa = base + int32(bits.Len64(low)) - 1
				}
				for r := m; r > pa; r = ix.parentPre[r] {
					bitset.Set(dst, r)
				}
			}
			pa = base + int32(bits.Len64(x)) - 1
			carry = x >> 63
		}

	case axis.NextSiblingPlus, axis.NextSiblingStar:
		// Output-sensitive sibling-chain scatter: each alive node marks its
		// later siblings, stopping at the first already-marked one — a
		// marked sibling's suffix is covered by the chain that marked it
		// (for Star, by the owner of the pre-seeded alive bit continuing
		// from there), so every mark is made at most once: O(|src| + |dst|).
		if a == axis.NextSiblingStar {
			copy(dst, src) // reflexive: every alive node reaches itself
		}
		for wi, x := range src {
			for x != 0 {
				r := int32(wi*64 + bits.TrailingZeros64(x))
				x &= x - 1
				for c := ix.nextSibPre[r]; c >= 0; c = ix.nextSibPre[c] {
					w, b := c>>6, uint64(1)<<(uint(c)&63)
					if dst[w]&b != 0 {
						break
					}
					dst[w] |= b
				}
			}
		}

	case axis.PrevSiblingPlus, axis.PrevSiblingStar:
		// Mirror of the NextSibling chains, walking left.
		if a == axis.PrevSiblingStar {
			copy(dst, src)
		}
		for wi, x := range src {
			for x != 0 {
				r := int32(wi*64 + bits.TrailingZeros64(x))
				x &= x - 1
				for c := ix.prevSibPre[r]; c >= 0; c = ix.prevSibPre[c] {
					w, b := c>>6, uint64(1)<<(uint(c)&63)
					if dst[w]&b != 0 {
						break
					}
					dst[w] |= b
				}
			}
		}

	case axis.Following:
		// Following(w, u) ⇔ pre(u) > preEnd(w): one suffix fill from the
		// minimal alive preEnd.
		if m := minAlivePreEnd(ix, src, n); m < n {
			bitset.FillRange(dst, m+1, n-1)
		}

	case axis.Preceding:
		// Preceding(w, u) ⇔ pre(w) > preEnd(u): u qualifies iff
		// preEnd(u) < M for the maximal alive rank M. Those are exactly the
		// ranks below M minus the ancestors of ByPre(M) (the nodes whose
		// subtree interval still covers M): prefix fill, then clear the
		// O(depth) ancestor chain.
		if M := bitset.Last(src); M > 0 {
			bitset.FillRange(dst, 0, M-1)
			for p := ix.parentPre[M]; p >= 0; p = ix.parentPre[p] {
				bitset.Clear(dst, p)
			}
		}

	case axis.DocOrder:
		// pre(u) > min alive rank: suffix fill.
		if f := bitset.First(src); f >= 0 {
			bitset.FillRange(dst, f+1, n-1)
		}

	case axis.DocOrderSucc:
		bitset.ShiftUpOne(dst, src)
		clearTail(dst, n)

	default:
		panic(fmt.Sprintf("consistency: Image of invalid axis %d", int(a)))
	}
}

// Preimage computes the backward axis image of src under a:
//
//	dst = {v : ∃w ∈ src, a(v, w)}
//
// i.e. the support set of a forward revise. Same bitset contract as Image.
// For invertible axes this is Image under the inverse axis; the order
// extensions DocOrder and DocOrderSucc (no named inverse) are computed
// directly.
func Preimage(a axis.Axis, ix *TreeIndex, src, dst []uint64) {
	if inv, ok := a.TryInverse(); ok {
		Image(inv, ix, src, dst)
		return
	}
	bitset.ZeroAll(dst)
	n := int32(len(ix.subtreeEnd))
	if n == 0 {
		return
	}
	switch a {
	case axis.DocOrder:
		// pre(v) < max alive rank: prefix fill.
		if M := bitset.Last(src); M > 0 {
			bitset.FillRange(dst, 0, M-1)
		}
	case axis.DocOrderSucc:
		bitset.ShiftDownOne(dst, src)
	default:
		panic(fmt.Sprintf("consistency: Preimage of invalid axis %d", int(a)))
	}
}

// minAlivePreEnd returns the minimal preEnd over the alive ranks of src, or
// n when src is empty. Since preEnd(r) >= r, ranks beyond the running
// minimum cannot lower it — the scan stops within the first alive subtree.
func minAlivePreEnd(ix *TreeIndex, src []uint64, n int32) int32 {
	m := n
	bitset.ForEach(src, func(r int32) bool {
		if r >= m {
			return false
		}
		if e := ix.subtreeEnd[r]; e < m {
			m = e
		}
		return true
	})
	return m
}

// clearTail clears every bit at index >= n (the shift kernels can carry a
// bit past the universe inside the last word).
func clearTail(w []uint64, n int32) {
	if rem := uint(n) & 63; rem != 0 && len(w) > 0 {
		w[n>>6] &= (uint64(1) << rem) - 1
	}
}

// appendUnsupported appends to buf, ascending, every index set in cur but
// not in support (cur &^ support) — the removal set of a kernel revise.
func appendUnsupported(buf []int32, cur, support []uint64) []int32 {
	for wi, cw := range cur {
		rem := cw &^ support[wi]
		for rem != 0 {
			b := bits.TrailingZeros64(rem)
			buf = append(buf, int32(wi*64+b))
			rem &^= 1 << uint(b)
		}
	}
	return buf
}

// appendUnsupportedNodes is appendUnsupported with the pre ranks mapped
// back to node IDs (the FastAC removal buffer is node-addressed).
func appendUnsupportedNodes(buf []tree.NodeID, t *tree.Tree, cur, support []uint64) []tree.NodeID {
	for wi, cw := range cur {
		rem := cw &^ support[wi]
		for rem != 0 {
			b := bits.TrailingZeros64(rem)
			buf = append(buf, t.ByPre(int32(wi*64+b)))
			rem &^= 1 << uint(b)
		}
	}
	return buf
}

// KernelPolicy selects how revise steps choose between the per-node probe
// loop (deletion-only successor structures / bitset range probes) and the
// bulk image kernels.
type KernelPolicy int32

// Policies. KernelAuto is the production setting; KernelAlways and
// KernelNever pin one path — used by the parity tests to prove the two
// paths compute byte-identical results, and by the revise benchmarks to
// measure each in isolation.
const (
	KernelAuto KernelPolicy = iota
	KernelAlways
	KernelNever
)

// kernelPolicy is read on every revise; atomic so tests can flip it while
// pooled scratches from earlier (sequential) evaluations still exist.
var kernelPolicy atomic.Int32

// SetKernelPolicy overrides the revise-path choice process-wide
// (test/benchmark instrumentation). Not meant to be switched concurrently
// with evaluation: in-flight revises pick whichever policy they observe.
func SetKernelPolicy(p KernelPolicy) { kernelPolicy.Store(int32(p)) }

// CurrentKernelPolicy returns the active policy.
func CurrentKernelPolicy() KernelPolicy { return KernelPolicy(kernelPolicy.Load()) }

// ReviseWithKernel is the density heuristic of the revise step: use the
// bulk kernel when the domain being revised holds at least one alive
// candidate per machine word of the universe (alive*64 >= n). Below that,
// the kernel's fixed cost — touching every word of the universe, O(n/64)
// word ops plus the per-axis sweep — exceeds the probe loop's ~O(1)
// successor probes per alive candidate, and incremental deletion via the
// succUF structures still wins. Exported for the core strategies, which
// apply the same policy to their semijoin passes.
func ReviseWithKernel(alive, n int) bool {
	switch CurrentKernelPolicy() {
	case KernelAlways:
		return true
	case KernelNever:
		return false
	}
	return alive*64 >= n
}
