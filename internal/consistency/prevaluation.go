// Package consistency implements prevaluations, arc-consistency and
// minimum valuations (§3 of "Conjunctive Queries over Trees").
//
// A prevaluation Π assigns to each query variable a nonempty set of tree
// nodes; it is arc-consistent if every node in every set has a "support"
// in the set of each neighbouring variable along every binary atom, and
// satisfies all unary atoms (Definition in §3). Proposition 3.1 computes
// the unique subset-maximal arc-consistent prevaluation in O(‖A‖·|Q|) via
// Horn-SAT; Lemma 3.4 extracts a consistent valuation by taking minima
// with respect to an order for which the structure has the X-property.
//
// Two engines are provided and cross-checked by tests:
//
//   - HornAC: the paper-exact reduction to Horn-SAT (Prop. 3.1), solved by
//     linear-time unit resolution. It materializes axis relations and is
//     linear in ‖A‖ — but ‖A‖ itself is Θ(n²) for transitive axes.
//   - FastAC: an AC-3-style worklist that never materializes relations;
//     support tests are O(1)-ish per node using deletion-only successor
//     structures over the pre-order / sibling-order numbering.
package consistency

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/bitset"
	"repro/internal/cq"
	"repro/internal/tree"
)

// Valuation maps each query variable (by index) to a tree node.
type Valuation []tree.NodeID

// Consistent reports whether θ satisfies every atom of q on t (i.e. θ is a
// satisfaction, §3).
func Consistent(t *tree.Tree, q *cq.Query, theta Valuation) bool {
	for _, la := range q.Labels {
		if !t.HasLabel(theta[la.X], la.Label) {
			return false
		}
	}
	for _, at := range q.Atoms {
		if !axis.Holds(t, at.Axis, theta[at.X], theta[at.Y]) {
			return false
		}
	}
	return true
}

// NodeSet is a fixed-universe bitset over tree nodes with a cardinality
// counter, built on the shared word helpers of internal/bitset.
type NodeSet struct {
	words []uint64
	n     int // universe size
	count int
}

// NewNodeSet returns an empty set over a universe of n nodes.
func NewNodeSet(n int) *NodeSet {
	return &NodeSet{words: make([]uint64, bitset.Words(n)), n: n}
}

// FullNodeSet returns the set of all n nodes.
func FullNodeSet(n int) *NodeSet {
	s := &NodeSet{}
	s.ResetFull(n)
	return s
}

// Has reports membership.
func (s *NodeSet) Has(v tree.NodeID) bool { return bitset.Test(s.words, int32(v)) }

// Add inserts v.
func (s *NodeSet) Add(v tree.NodeID) {
	if !bitset.Test(s.words, int32(v)) {
		bitset.Set(s.words, int32(v))
		s.count++
	}
}

// Remove deletes v.
func (s *NodeSet) Remove(v tree.NodeID) {
	if bitset.Test(s.words, int32(v)) {
		bitset.Clear(s.words, int32(v))
		s.count--
	}
}

// Reset re-initializes s to the empty set over a universe of n nodes,
// reusing the backing storage when it is large enough.
func (s *NodeSet) Reset(n int) {
	s.words = bitset.Grow(s.words, bitset.Words(n))
	s.n = n
	s.count = 0
}

// ResetFull re-initializes s to the full set of n nodes, reusing the
// backing storage when it is large enough.
func (s *NodeSet) ResetFull(n int) {
	s.Reset(n)
	bitset.FillRange(s.words, 0, int32(n)-1)
	s.count = n
}

// Len returns the cardinality.
func (s *NodeSet) Len() int { return s.count }

// Empty reports whether the set is empty.
func (s *NodeSet) Empty() bool { return s.count == 0 }

// SizeBytes returns the approximate heap footprint of the set in bytes
// (the word array plus the fixed header).
func (s *NodeSet) SizeBytes() int64 { return int64(len(s.words))*8 + 16 }

// Clone returns a copy.
func (s *NodeSet) Clone() *NodeSet {
	return &NodeSet{words: append([]uint64(nil), s.words...), n: s.n, count: s.count}
}

// copyFrom makes s an element-wise copy of o, reusing s's storage.
func (s *NodeSet) copyFrom(o *NodeSet) {
	w := bitset.Words(o.n)
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	}
	s.words = s.words[:w]
	copy(s.words, o.words)
	s.n = o.n
	s.count = o.count
}

// IntersectWith removes every element not in o.
func (s *NodeSet) IntersectWith(o *NodeSet) {
	s.count = bitset.AndInto(s.words, o.words)
}

// ForEach calls fn on every member in increasing NodeID order; stops early
// if fn returns false. fn may Remove the element it was called with (the
// iteration advances on a copied word), but must not otherwise mutate s.
func (s *NodeSet) ForEach(fn func(v tree.NodeID) bool) {
	bitset.ForEach(s.words, func(i int32) bool { return fn(tree.NodeID(i)) })
}

// Members returns the members in increasing NodeID order.
func (s *NodeSet) Members() []tree.NodeID {
	out := make([]tree.NodeID, 0, s.count)
	s.ForEach(func(v tree.NodeID) bool { out = append(out, v); return true })
	return out
}

// Equal reports set equality.
func (s *NodeSet) Equal(o *NodeSet) bool {
	if s.count != o.count || s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Prevaluation assigns a NodeSet to each variable of a query.
type Prevaluation struct {
	Sets []*NodeSet // indexed by cq.Var
}

// NewPrevaluation returns the label-filtered initial prevaluation: each
// variable's set is the set of nodes carrying all labels required by the
// query's unary atoms for that variable (all nodes when unconstrained).
func NewPrevaluation(t *tree.Tree, q *cq.Query) *Prevaluation {
	n := t.Len()
	p := &Prevaluation{Sets: make([]*NodeSet, q.NumVars())}
	// Labeled variables build their set from the label index (first label)
	// and filter in place (subsequent labels); unlabeled variables get the
	// full set, word-filled. No per-atom throwaway sets.
	for _, la := range q.Labels {
		if s := p.Sets[la.X]; s == nil {
			s = NewNodeSet(n)
			for _, v := range t.NodesWithLabel(la.Label) {
				s.Add(v)
			}
			p.Sets[la.X] = s
		} else {
			filterByLabel(t, s, la.Label)
		}
	}
	for x, s := range p.Sets {
		if s == nil {
			p.Sets[x] = FullNodeSet(n)
		}
	}
	return p
}

// NewPrevaluationIx is NewPrevaluation built from a document index's
// cached label bitsets and full-node-set words: word copies and word-level
// intersections replace the per-node label scans. The sets are freshly
// allocated and caller-owned (unlike Scratch.InitialPrevaluationIx).
func NewPrevaluationIx(ix *TreeIndex, q *cq.Query) *Prevaluation {
	p := &Prevaluation{Sets: make([]*NodeSet, q.NumVars())}
	for _, la := range q.Labels {
		if s := p.Sets[la.X]; s == nil {
			p.Sets[la.X] = ix.labelSet(la.Label).Clone()
		} else {
			s.IntersectWith(ix.labelSet(la.Label))
		}
	}
	for x, s := range p.Sets {
		if s == nil {
			p.Sets[x] = ix.full.Clone()
		}
	}
	return p
}

// Empty reports whether some variable's set is empty (no arc-consistent
// prevaluation exists below this one).
func (p *Prevaluation) Empty() bool {
	for _, s := range p.Sets {
		if s.Empty() {
			return true
		}
	}
	return false
}

// Equal reports element-wise equality (used to cross-check engines).
func (p *Prevaluation) Equal(o *Prevaluation) bool {
	if len(p.Sets) != len(o.Sets) {
		return false
	}
	for i := range p.Sets {
		if !p.Sets[i].Equal(o.Sets[i]) {
			return false
		}
	}
	return true
}

// IsArcConsistent verifies the arc-consistency conditions of §3 directly
// (quadratic; used by tests and as an executable definition).
func (p *Prevaluation) IsArcConsistent(t *tree.Tree, q *cq.Query) bool {
	for _, la := range q.Labels {
		ok := true
		p.Sets[la.X].ForEach(func(v tree.NodeID) bool {
			if !t.HasLabel(v, la.Label) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	for _, at := range q.Atoms {
		sx, sy := p.Sets[at.X], p.Sets[at.Y]
		ok := true
		sx.ForEach(func(v tree.NodeID) bool {
			found := false
			sy.ForEach(func(w tree.NodeID) bool {
				if axis.Holds(t, at.Axis, v, w) {
					found = true
					return false
				}
				return true
			})
			if !found {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
		sy.ForEach(func(w tree.NodeID) bool {
			found := false
			sx.ForEach(func(v tree.NodeID) bool {
				if axis.Holds(t, at.Axis, v, w) {
					found = true
					return false
				}
				return true
			})
			if !found {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

// MinimumValuation returns the minimum valuation in p with respect to the
// order (Lemma 3.4): θ(x) is the <o-smallest node of Π(x). Panics if some
// set is empty.
func (p *Prevaluation) MinimumValuation(t *tree.Tree, o axis.Order) Valuation {
	theta := make(Valuation, len(p.Sets))
	for x, s := range p.Sets {
		if s.Empty() {
			panic(fmt.Sprintf("consistency: MinimumValuation with empty set for variable %d", x))
		}
		best := tree.NilNode
		var bestRank int32
		s.ForEach(func(v tree.NodeID) bool {
			r := o.Rank(t, v)
			if best == tree.NilNode || r < bestRank {
				best, bestRank = v, r
			}
			return true
		})
		theta[x] = best
	}
	return theta
}
