package consistency

// BenchmarkRevise measures one revise step — "keep v ∈ dom(x) iff some
// w ∈ dom(y) with Axis(v, w)" — through the per-node probe loop (succUF
// successor structures, as the pre-kernel engine ran it) versus the bulk
// image kernel (Preimage + word diff), across tree sizes and support-side
// domain densities. Before any timing, every configuration cross-checks
// the two paths' support counts and fails the benchmark on mismatch — so
// the CI `-benchtime=1x` smoke run doubles as a kernel-vs-oracle check.
//
// scripts/bench.sh runs this family and records the results as
// BENCH_pr4.json, the perf trajectory baseline for later PRs.

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/axis"
	"repro/internal/bitset"
	"repro/internal/cq"
	"repro/internal/tree"
)

var benchSink int

// reviseAxes samples every kernel shape: gather/scatter (Child), interval
// merge sweep (Child+), descending interval sweep (Ancestor*), sibling
// segment sweep (NextSibling+), and extremal-rank fill (Following).
var reviseAxes = []axis.Axis{
	axis.Child, axis.ChildPlus, axis.AncestorStar, axis.NextSiblingPlus, axis.Following,
}

func BenchmarkRevise(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		rng := rand.New(rand.NewSource(int64(n)))
		tr := tree.Random(rng, tree.DefaultRandomConfig(n))
		ix := NewTreeIndex(tr)
		for _, pct := range []int{5, 50, 95} {
			// Support side dom(y): pct% of the nodes alive. The revised side
			// dom(x) is the full node set — the dense case the kernels are
			// for (the probe loop pays one supportedFwd per alive candidate
			// of x either way).
			dySet := NewNodeSet(n)
			for v := 0; v < n; v++ {
				if rng.Intn(100) < pct {
					dySet.Add(tree.NodeID(v))
				}
			}
			if dySet.Empty() {
				dySet.Add(tree.NodeID(rng.Intn(n)))
			}
			st := &fastState{t: tr, n: n, ix: ix, doms: make([]domain, 2)}
			st.sctx = supportCtx{t: tr, n: int32(n), sibRank: ix.sibRank, sibStart: ix.sibStart}
			st.resetDomain(&st.doms[0], FullNodeSet(n))
			st.resetDomain(&st.doms[1], dySet)
			dx, dy := &st.doms[0], &st.doms[1]
			img := make([]uint64, bitset.Words(n))

			for _, a := range reviseAxes {
				// Self-check: the kernel support set must match the probe
				// loop node for node.
				Preimage(a, ix, dy.pre, img)
				probeSupported := 0
				for v := 0; v < n; v++ {
					if supportedFwd(&st.sctx, a, tree.NodeID(v), dy) {
						probeSupported++
					}
				}
				if kernelSupported := bitset.Count(img); kernelSupported != probeSupported {
					b.Fatalf("axis=%v n=%d density=%d%%: kernel supports %d nodes, probe loop %d",
						a, n, pct, kernelSupported, probeSupported)
				}

				name := fmt.Sprintf("axis=%s/n=%d/density=%d", a, n, pct)
				b.Run(name+"/probe", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						removals := 0
						dx.set.ForEach(func(v tree.NodeID) bool {
							if !supportedFwd(&st.sctx, a, v, dy) {
								removals++
							}
							return true
						})
						benchSink = removals
					}
				})
				b.Run(name+"/kernel", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						Preimage(a, ix, dy.pre, img)
						removals := 0
						for wi := range img {
							removals += bits.OnesCount64(dx.pre[wi] &^ img[wi])
						}
						benchSink = removals
					}
				})
			}
		}
	}
}

// BenchmarkFastACKernels measures the full arc-consistency worklist with
// the revise path pinned to each side of the density heuristic, on the
// ablation query of BenchmarkACEngines — the end-to-end effect of the
// kernels on Bool-style evaluation.
func BenchmarkFastACKernels(b *testing.B) {
	defer SetKernelPolicy(KernelAuto)
	q := cq.MustParse("Q() <- A(x), Child+(x, y), B(y), Child*(y, z), Child+(x, z)")
	for _, n := range []int{2000, 8000} {
		rng := rand.New(rand.NewSource(3))
		tr := tree.Random(rng, tree.DefaultRandomConfig(n))
		ix := NewTreeIndex(tr)
		sc := NewScratch()
		for _, mode := range []struct {
			name string
			p    KernelPolicy
		}{{"probe", KernelNever}, {"kernel", KernelAlways}, {"auto", KernelAuto}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				SetKernelPolicy(mode.p)
				defer SetKernelPolicy(KernelAuto)
				for i := 0; i < b.N; i++ {
					if _, ok := sc.FastACIx(ix, q); !ok {
						b.Fatal("benchmark query must be satisfiable")
					}
				}
			})
		}
	}
}
