package consistency

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/tree"
)

// Engine selects an arc-consistency implementation.
type Engine int

// The two implementations (see package doc).
const (
	EngineFast Engine = iota
	EngineHorn
)

// Run dispatches to the selected engine.
func Run(e Engine, t *tree.Tree, q *cq.Query) (*Prevaluation, bool) {
	switch e {
	case EngineFast:
		return FastAC(t, q)
	case EngineHorn:
		return HornAC(t, q)
	default:
		panic(fmt.Sprintf("consistency: invalid engine %d", int(e)))
	}
}

// PinnedAC computes the maximal arc-consistent prevaluation of q on t
// subject to pinning vars[i] to the singleton {nodes[i]}. This realizes
// the tuple-membership construction below Theorem 3.5: adding singleton
// unary relations X_i = {a_i} for the pinned variables. The pins are
// applied as initial-domain restrictions (for FastAC) or as extra Remove
// facts (for HornAC) — both equivalent to the paper's added relations.
func PinnedAC(e Engine, t *tree.Tree, q *cq.Query, vars []cq.Var, nodes []tree.NodeID) (*Prevaluation, bool) {
	if len(vars) != len(nodes) {
		panic(fmt.Sprintf("consistency: PinnedAC with %d vars, %d nodes", len(vars), len(nodes)))
	}
	switch e {
	case EngineFast:
		init := NewPrevaluation(t, q)
		for i, x := range vars {
			pin := NewNodeSet(t.Len())
			pin.Add(nodes[i])
			init.Sets[x].IntersectWith(pin)
		}
		return FastACFrom(t, q, init)
	case EngineHorn:
		return HornACPinned(t, q, vars, nodes)
	default:
		panic(fmt.Sprintf("consistency: invalid engine %d", int(e)))
	}
}
