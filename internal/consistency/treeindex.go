package consistency

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/tree"
)

// TreeIndex is the immutable bundle of tree-derived structures every
// evaluation strategy queries against: the sibling-consecutive numbering,
// the (preEnd, pre) order with its value table, the full-node-set words,
// and the per-label candidate bitsets. It depends only on the tree, so it
// is the data-side counterpart of a compiled query: build it once per
// document (see core.Document / the public Index) and share it between any
// number of prepared queries and goroutines.
//
// All ordering fields are fixed at construction. Label bitsets are
// materialized lazily, once per distinct label, behind a mutex — callers
// observe a logically immutable object that is safe for concurrent use.
type TreeIndex struct {
	t          *tree.Tree
	sibRank    []int32 // node -> sibling-order rank
	sibStart   []int32 // parent node -> first child rank
	preEndNode []tree.NodeID
	preEndPos  []int32 // node -> position in (preEnd, pre) order
	preEndVal  []int32 // position in (preEnd, pre) order -> preEnd value
	full       NodeSet // the set of all nodes, word-filled

	// Rank tables for the bulk axis image kernels (kernels.go), all
	// indexed by pre rank so the kernels never touch node IDs — a whole
	// domain's axis image is computed as gathers, chain scatters and
	// interval fills over these arrays. Built once per document alongside
	// the orderings; the document benchmarks assert the build count stays
	// one per Document.
	parentPre     []int32  // pre rank -> parent's pre rank, or -1 at the root
	firstChildPre []int32  // pre rank -> first child's pre rank, or -1 (leaf)
	nextSibPre    []int32  // pre rank -> next sibling's pre rank, or -1
	prevSibPre    []int32  // pre rank -> previous sibling's pre rank, or -1
	subtreeEnd    []int32  // pre rank -> max pre rank in the subtree (preEnd)
	internalPre   []uint64 // bitset over pre ranks: node has children

	// labelSets is a copy-on-write map (label -> bitset of nodes carrying
	// it): readers take one atomic load, so concurrent evaluation against
	// a shared Document never contends once a label's set exists; labelMu
	// only serializes first-use builders. Labels that occur nowhere in the
	// tree share the single emptySet and are never cached in the map, so
	// unbounded streams of unknown labels cannot grow the index.
	labelMu   sync.Mutex
	labelSets atomic.Pointer[map[string]*NodeSet]
	emptySet  atomic.Pointer[NodeSet]
}

// indexBuilds counts TreeIndex constructions process-wide; the document
// benchmarks assert on it to prove tree indexes are built once per
// Document rather than once per prepared query.
var indexBuilds atomic.Int64

// IndexBuildCount returns the number of TreeIndex constructions so far in
// this process (test/benchmark instrumentation).
func IndexBuildCount() int64 { return indexBuilds.Load() }

// NewTreeIndex builds the index for t. The orderings and full-set words
// are computed eagerly; label bitsets on first use per label.
func NewTreeIndex(t *tree.Tree) *TreeIndex {
	ix := &TreeIndex{}
	ix.build(t)
	return ix
}

// Tree returns the tree the index was built for.
func (ix *TreeIndex) Tree() *tree.Tree { return ix.t }

// build computes the orderings for t, reusing backing arrays when the
// receiver has been built before (the Scratch fallback path rebinds its
// private index when the tree changes between legacy *Tree calls).
func (ix *TreeIndex) build(t *tree.Tree) {
	indexBuilds.Add(1)
	n := t.Len()
	ix.sibRank = growInt32(ix.sibRank, n)
	ix.sibStart = growInt32(ix.sibStart, n)
	var r int32
	if n > 0 {
		ix.sibRank[t.Root()] = r
		r++
	}
	for pr := int32(0); pr < int32(n); pr++ {
		p := t.ByPre(pr)
		kids := t.Children(p)
		if len(kids) == 0 {
			continue
		}
		ix.sibStart[p] = r
		for _, c := range kids {
			ix.sibRank[c] = r
			r++
		}
	}

	ix.preEndNode = growNodeIDs(ix.preEndNode, n)
	ix.preEndPos = growInt32(ix.preEndPos, n)
	ix.preEndVal = growInt32(ix.preEndVal, n)
	sortKey := make([]int64, n)
	sortIdx := make([]int32, n)
	sortBuf := make([]int32, n)
	for v := 0; v < n; v++ {
		sortKey[v] = int64(t.PreEnd(tree.NodeID(v)))<<32 | int64(t.Pre(tree.NodeID(v)))
		sortIdx[v] = int32(v)
	}
	sortByKey(sortIdx, sortKey, sortBuf)
	for pos, v := range sortIdx {
		ix.preEndNode[pos] = tree.NodeID(v)
		ix.preEndPos[v] = int32(pos)
		ix.preEndVal[pos] = t.PreEnd(tree.NodeID(v))
	}
	ix.parentPre = growInt32(ix.parentPre, n)
	ix.firstChildPre = growInt32(ix.firstChildPre, n)
	ix.nextSibPre = growInt32(ix.nextSibPre, n)
	ix.prevSibPre = growInt32(ix.prevSibPre, n)
	ix.subtreeEnd = growInt32(ix.subtreeEnd, n)
	for pr := int32(0); pr < int32(n); pr++ {
		v := t.ByPre(pr)
		ix.subtreeEnd[pr] = t.PreEnd(v)
		if p := t.Parent(v); p != tree.NilNode {
			ix.parentPre[pr] = t.Pre(p)
		} else {
			ix.parentPre[pr] = -1
		}
		if kids := t.Children(v); len(kids) > 0 {
			ix.firstChildPre[pr] = t.Pre(kids[0])
		} else {
			ix.firstChildPre[pr] = -1
		}
		if s := t.NextSibling(v); s != tree.NilNode {
			ix.nextSibPre[pr] = t.Pre(s)
		} else {
			ix.nextSibPre[pr] = -1
		}
		if s := t.PrevSibling(v); s != tree.NilNode {
			ix.prevSibPre[pr] = t.Pre(s)
		} else {
			ix.prevSibPre[pr] = -1
		}
	}
	ix.internalPre = bitset.Grow(ix.internalPre, bitset.Words(n))
	for pr := int32(0); pr < int32(n); pr++ {
		if ix.subtreeEnd[pr] > pr {
			bitset.Set(ix.internalPre, pr)
		}
	}

	ix.full.ResetFull(n)
	ix.labelSets.Store(nil)
	ix.emptySet.Store(nil)
	ix.t = t
}

// MaterializeLabels eagerly builds the bitset of every label occurring in
// the tree (plus the shared empty set unknown labels resolve to), so that
// SizeBytes is final: after this call no query mix — known labels,
// unknown labels, any order — changes the index's footprint. Corpus
// insertion and snapshot hydration call it before charging a document to
// the byte budget, pinning accounted bytes == actual bytes.
func (ix *TreeIndex) MaterializeLabels() {
	ix.labelMu.Lock()
	defer ix.labelMu.Unlock()
	if ix.emptySet.Load() == nil {
		ix.emptySet.Store(NewNodeSet(ix.t.Len()))
	}
	labels := ix.t.Alphabet()
	old := ix.labelSets.Load()
	if old != nil && len(*old) == len(labels) {
		return // every label already cached
	}
	next := make(map[string]*NodeSet, len(labels))
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	for _, a := range labels {
		if _, ok := next[a]; ok {
			continue
		}
		s := NewNodeSet(ix.t.Len())
		for _, v := range ix.t.NodesWithLabel(a) {
			s.Add(v)
		}
		next[a] = s
	}
	ix.labelSets.Store(&next)
}

// SizeBytes returns the approximate heap footprint of the index in bytes:
// the ordering and rank tables, the internal-node and full-node-set words,
// and every label bitset materialized so far. The figure backs corpus-level
// memory accounting; it can grow as evaluation touches new labels (label
// bitsets are lazy), so treat it as a floor that converges after the
// query mix has been seen once.
func (ix *TreeIndex) SizeBytes() int64 {
	b := int64(len(ix.sibRank)+len(ix.sibStart)+len(ix.preEndPos)+len(ix.preEndVal)) * 4
	b += int64(len(ix.preEndNode)) * 4
	b += int64(len(ix.parentPre)+len(ix.firstChildPre)+len(ix.nextSibPre)+
		len(ix.prevSibPre)+len(ix.subtreeEnd)) * 4
	b += int64(len(ix.internalPre)) * 8
	b += ix.full.SizeBytes()
	if m := ix.labelSets.Load(); m != nil {
		for l, s := range *m {
			b += int64(len(l)) + 48 + s.SizeBytes()
		}
	}
	if e := ix.emptySet.Load(); e != nil {
		b += e.SizeBytes()
	}
	return b
}

// labelSet returns the bitset of nodes carrying the label, materializing
// and caching it on first use. The returned set is shared and read-only.
// The hot path is lock-free: one atomic load plus a map lookup. Labels
// absent from the tree all resolve to one shared empty set (full word
// length, so word-level intersections stay in bounds) and are not cached
// per-label — otherwise every distinct unknown label in the query stream
// would grow the index past its accounted size.
func (ix *TreeIndex) labelSet(label string) *NodeSet {
	if m := ix.labelSets.Load(); m != nil {
		if s, ok := (*m)[label]; ok {
			return s
		}
	}
	nodes := ix.t.NodesWithLabel(label)
	if len(nodes) == 0 {
		if e := ix.emptySet.Load(); e != nil {
			return e
		}
		ix.labelMu.Lock()
		defer ix.labelMu.Unlock()
		if e := ix.emptySet.Load(); e == nil {
			ix.emptySet.Store(NewNodeSet(ix.t.Len()))
		}
		return ix.emptySet.Load()
	}
	ix.labelMu.Lock()
	defer ix.labelMu.Unlock()
	old := ix.labelSets.Load()
	if old != nil {
		if s, ok := (*old)[label]; ok {
			return s
		}
	}
	s := NewNodeSet(ix.t.Len())
	for _, v := range nodes {
		s.Add(v)
	}
	next := make(map[string]*NodeSet, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[label] = s
	ix.labelSets.Store(&next)
	return s
}
