package consistency

import (
	"repro/internal/cq"
	"repro/internal/tree"
)

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growNodeIDs(s []tree.NodeID, n int) []tree.NodeID {
	if cap(s) < n {
		return make([]tree.NodeID, n)
	}
	return s[:n]
}

// Scratch holds the per-call mutable buffers of arc-consistency runs: the
// per-variable domains with their deletion-only successor structures, the
// worklist, the NodeSets of the initial prevaluation, and the pin
// base/run storage of incremental enumeration. A Scratch amortizes all
// per-call allocations of repeated evaluation; it is NOT safe for
// concurrent use — pool Scratches (one per goroutine) instead.
//
// Tree-derived structures are no longer owned here: the *Ix entry points
// borrow an immutable TreeIndex (shared document-wide; see core.Document),
// and only the legacy *Tree entry points fall back to a private index
// rebuilt when the tree pointer changes between calls.
//
// Prevaluations returned by Scratch methods that take no caller-supplied
// initial prevaluation alias Scratch-owned sets: they are valid only until
// the next call on the same Scratch.
type Scratch struct {
	ownIx      *TreeIndex // fallback index for legacy *Tree entry points
	doms       []domain
	inQueue    []bool
	queue      []int
	atomsOf    [][]int
	removeBuf  []tree.NodeID
	imgBuf     []uint64 // bulk-kernel support bitset of the current revision
	initSets   []*NodeSet
	labeledBuf []int32
	pinBase    PinBase
	pinRun     PinRun
}

// NewScratch returns an empty Scratch; buffers are sized lazily on first
// use.
func NewScratch() *Scratch { return &Scratch{} }

// indexFor returns the Scratch's private index for t, rebuilding it only
// when the tree changed since the previous legacy call.
func (sc *Scratch) indexFor(t *tree.Tree) *TreeIndex {
	if sc.ownIx == nil {
		sc.ownIx = NewTreeIndex(t)
	} else if sc.ownIx.t != t {
		sc.ownIx.build(t)
	}
	return sc.ownIx
}

// InitialPrevaluationIx is the label-filtered initial prevaluation built
// from the index's cached label bitsets and full-node-set words (word
// copies and word-level intersections — no per-node scans). The result is
// backed by Scratch-owned NodeSets, valid until the next call on sc.
func (sc *Scratch) InitialPrevaluationIx(ix *TreeIndex, q *cq.Query) *Prevaluation {
	nv := q.NumVars()
	for len(sc.initSets) < nv {
		sc.initSets = append(sc.initSets, &NodeSet{})
	}
	sets := sc.initSets[:nv]
	// labeledBuf counts the label atoms seen per variable so far: the first
	// label copies the cached bitset, subsequent labels intersect in place.
	for len(sc.labeledBuf) < nv {
		sc.labeledBuf = append(sc.labeledBuf, 0)
	}
	labeled := sc.labeledBuf[:nv]
	for i := range labeled {
		labeled[i] = 0
	}
	for _, la := range q.Labels {
		s := sets[la.X]
		if labeled[la.X] == 0 {
			s.copyFrom(ix.labelSet(la.Label))
		} else {
			s.IntersectWith(ix.labelSet(la.Label))
		}
		labeled[la.X]++
	}
	for x, s := range sets {
		if labeled[x] == 0 {
			s.copyFrom(&ix.full)
		}
	}
	return &Prevaluation{Sets: sets}
}

// InitialPrevaluation is InitialPrevaluationIx over the Scratch's private
// index for t (legacy *Tree entry point).
func (sc *Scratch) InitialPrevaluation(t *tree.Tree, q *cq.Query) *Prevaluation {
	return sc.InitialPrevaluationIx(sc.indexFor(t), q)
}

// filterByLabel removes from s every node not carrying the label. The
// in-place removal during iteration is safe: ForEach advances on a copied
// word, so clearing the current bit cannot derail it.
func filterByLabel(t *tree.Tree, s *NodeSet, label string) {
	s.ForEach(func(v tree.NodeID) bool {
		if !t.HasLabel(v, label) {
			s.Remove(v)
		}
		return true
	})
}

// FastACIx is the FastAC worklist against a borrowed document index. The
// result aliases Scratch-owned sets (see type doc). Degenerate inputs
// (no variables, empty tree) are handled by the worklist itself.
func (sc *Scratch) FastACIx(ix *TreeIndex, q *cq.Query) (*Prevaluation, bool) {
	return sc.FastACFromIx(ix, q, sc.InitialPrevaluationIx(ix, q))
}

// FastAC is FastACIx over the Scratch's private index for t. The result
// aliases Scratch-owned sets (see type doc). The guards exist to skip
// building the fallback index for degenerate inputs; the worklist
// re-checks them.
func (sc *Scratch) FastAC(t *tree.Tree, q *cq.Query) (*Prevaluation, bool) {
	if q.NumVars() == 0 {
		return &Prevaluation{}, true
	}
	if t.Len() == 0 {
		return nil, false
	}
	return sc.FastACIx(sc.indexFor(t), q)
}

// PinnedFastACIx is PinnedAC(EngineFast, ...) with sc's buffers against a
// borrowed document index: arc consistency with vars[i] pinned to
// {nodes[i]}. The result aliases Scratch-owned sets (see type doc).
func (sc *Scratch) PinnedFastACIx(ix *TreeIndex, q *cq.Query, vars []cq.Var, nodes []tree.NodeID) (*Prevaluation, bool) {
	n := ix.t.Len()
	if n == 0 && q.NumVars() > 0 {
		return nil, false // no sets to pin against
	}
	init := sc.InitialPrevaluationIx(ix, q)
	for i, x := range vars {
		s := init.Sets[x]
		had := s.Has(nodes[i])
		s.Reset(n)
		if had {
			s.Add(nodes[i])
		}
	}
	return sc.FastACFromIx(ix, q, init)
}

// PinnedFastAC is PinnedFastACIx over the Scratch's private index for t
// (guards as in FastAC: skip the fallback index for degenerate inputs).
func (sc *Scratch) PinnedFastAC(t *tree.Tree, q *cq.Query, vars []cq.Var, nodes []tree.NodeID) (*Prevaluation, bool) {
	if q.NumVars() == 0 {
		return &Prevaluation{}, true
	}
	if t.Len() == 0 {
		return nil, false
	}
	return sc.PinnedFastACIx(sc.indexFor(t), q, vars, nodes)
}

// FastACFrom runs the worklist from init (consumed and mutated) with sc's
// buffers; the result's sets are init's sets.
func (sc *Scratch) FastACFrom(t *tree.Tree, q *cq.Query, init *Prevaluation) (*Prevaluation, bool) {
	p, _, ok := sc.FastACFromStats(t, q, init)
	return p, ok
}

// FastACFromIx is FastACFrom against a borrowed document index.
func (sc *Scratch) FastACFromIx(ix *TreeIndex, q *cq.Query, init *Prevaluation) (*Prevaluation, bool) {
	p, _, ok := sc.fastACFromStatsIx(ix, q, init)
	return p, ok
}
