package consistency

import (
	"repro/internal/cq"
	"repro/internal/tree"
)

// treeIndex holds the tree-derived orderings FastAC queries against: the
// sibling-consecutive numbering and the (preEnd, pre) order. Both depend
// only on the tree, so a Scratch rebuilds them only when the tree changes
// between runs — repeated evaluation against the same tree (the server hot
// path) pays for them once.
type treeIndex struct {
	t          *tree.Tree // tree the indexes were built for
	sibRank    []int32    // node -> sibling-order rank
	sibStart   []int32    // parent node -> first child rank
	preEndNode []tree.NodeID
	preEndPos  []int32 // node -> position in (preEnd, pre) order
	sortKey    []int64
	sortIdx    []int32
	sortBuf    []int32
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growNodeIDs(s []tree.NodeID, n int) []tree.NodeID {
	if cap(s) < n {
		return make([]tree.NodeID, n)
	}
	return s[:n]
}

// build (re)computes the indexes for t; a no-op when t is the tree of the
// previous run.
func (ix *treeIndex) build(t *tree.Tree) {
	if ix.t == t {
		return
	}
	n := t.Len()
	ix.sibRank = growInt32(ix.sibRank, n)
	ix.sibStart = growInt32(ix.sibStart, n)
	var r int32
	if n > 0 {
		ix.sibRank[t.Root()] = r
		r++
	}
	for pr := int32(0); pr < int32(n); pr++ {
		p := t.ByPre(pr)
		kids := t.Children(p)
		if len(kids) == 0 {
			continue
		}
		ix.sibStart[p] = r
		for _, c := range kids {
			ix.sibRank[c] = r
			r++
		}
	}

	ix.preEndNode = growNodeIDs(ix.preEndNode, n)
	ix.preEndPos = growInt32(ix.preEndPos, n)
	ix.sortKey = growInt64(ix.sortKey, n)
	ix.sortIdx = growInt32(ix.sortIdx, n)
	ix.sortBuf = growInt32(ix.sortBuf, n)
	for v := 0; v < n; v++ {
		ix.sortKey[v] = int64(t.PreEnd(tree.NodeID(v)))<<32 | int64(t.Pre(tree.NodeID(v)))
		ix.sortIdx[v] = int32(v)
	}
	sortByKey(ix.sortIdx, ix.sortKey, ix.sortBuf)
	for pos, v := range ix.sortIdx {
		ix.preEndNode[pos] = tree.NodeID(v)
		ix.preEndPos[v] = int32(pos)
	}
	ix.t = t
}

// Scratch holds every reusable buffer of a FastAC run: the tree indexes,
// the per-variable domains with their deletion-only successor structures,
// the worklist, and the NodeSets of the initial prevaluation. A Scratch
// amortizes all per-call allocations of repeated evaluation; it is NOT safe
// for concurrent use — pool Scratches (one per goroutine) instead.
//
// Prevaluations returned by Scratch methods that take no caller-supplied
// initial prevaluation alias Scratch-owned sets: they are valid only until
// the next call on the same Scratch.
type Scratch struct {
	ix         treeIndex
	doms       []domain
	inQueue    []bool
	queue      []int
	atomsOf    [][]int
	removeBuf  []tree.NodeID
	initSets   []*NodeSet
	labeledBuf []int32
	pinBase    PinBase
	pinRun     PinRun
}

// NewScratch returns an empty Scratch; buffers are sized lazily on first
// use.
func NewScratch() *Scratch { return &Scratch{} }

// InitialPrevaluation is NewPrevaluation backed by Scratch-owned NodeSets:
// the label-filtered initial prevaluation, valid until the next call on sc.
func (sc *Scratch) InitialPrevaluation(t *tree.Tree, q *cq.Query) *Prevaluation {
	n := t.Len()
	nv := q.NumVars()
	for len(sc.initSets) < nv {
		sc.initSets = append(sc.initSets, &NodeSet{})
	}
	sets := sc.initSets[:nv]
	// Labeled variables build their set from the label index directly (the
	// first label) and then filter in place (subsequent labels) — no
	// intermediate set, no full-universe scan. labeledBuf counts the label
	// atoms seen per variable so far.
	for len(sc.labeledBuf) < nv {
		sc.labeledBuf = append(sc.labeledBuf, 0)
	}
	labeled := sc.labeledBuf[:nv]
	for i := range labeled {
		labeled[i] = 0
	}
	for _, la := range q.Labels {
		s := sets[la.X]
		if labeled[la.X] == 0 {
			s.Reset(n)
			for _, v := range t.NodesWithLabel(la.Label) {
				s.Add(v)
			}
		} else {
			filterByLabel(t, s, la.Label)
		}
		labeled[la.X]++
	}
	for x, s := range sets {
		if labeled[x] == 0 {
			s.ResetFull(n)
		}
	}
	return &Prevaluation{Sets: sets}
}

// filterByLabel removes from s every node not carrying the label. The
// in-place removal during iteration is safe: ForEach advances on a copied
// word, so clearing the current bit cannot derail it.
func filterByLabel(t *tree.Tree, s *NodeSet, label string) {
	s.ForEach(func(v tree.NodeID) bool {
		if !t.HasLabel(v, label) {
			s.Remove(v)
		}
		return true
	})
}

// FastAC is the package-level FastAC with sc's buffers. The result aliases
// Scratch-owned sets (see type doc).
func (sc *Scratch) FastAC(t *tree.Tree, q *cq.Query) (*Prevaluation, bool) {
	if q.NumVars() == 0 {
		return &Prevaluation{}, true
	}
	if t.Len() == 0 {
		return nil, false
	}
	return sc.FastACFrom(t, q, sc.InitialPrevaluation(t, q))
}

// PinnedFastAC is PinnedAC(EngineFast, ...) with sc's buffers: arc
// consistency with vars[i] pinned to {nodes[i]}. The result aliases
// Scratch-owned sets (see type doc).
func (sc *Scratch) PinnedFastAC(t *tree.Tree, q *cq.Query, vars []cq.Var, nodes []tree.NodeID) (*Prevaluation, bool) {
	if q.NumVars() == 0 {
		return &Prevaluation{}, true
	}
	if t.Len() == 0 {
		return nil, false
	}
	init := sc.InitialPrevaluation(t, q)
	for i, x := range vars {
		s := init.Sets[x]
		had := s.Has(nodes[i])
		s.Reset(t.Len())
		if had {
			s.Add(nodes[i])
		}
	}
	return sc.FastACFrom(t, q, init)
}

// FastACFrom runs the worklist from init (consumed and mutated) with sc's
// buffers; the result's sets are init's sets.
func (sc *Scratch) FastACFrom(t *tree.Tree, q *cq.Query, init *Prevaluation) (*Prevaluation, bool) {
	p, _, ok := sc.FastACFromStats(t, q, init)
	return p, ok
}
