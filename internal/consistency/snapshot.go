package consistency

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"repro/internal/bitset"
	"repro/internal/snapshot"
	"repro/internal/tree"
)

// This file is the TreeIndex half of the document snapshot format: the
// pre-rank tables, sibling orderings and internal-node words are written
// as flat sections and adopted back without re-running build(), so a
// snapshot load never counts as an index build (IndexBuildCount stays
// put; IndexLoadCount counts loads instead).

// indexLoads counts snapshot-loaded TreeIndex constructions process-wide;
// tests assert on it (together with IndexBuildCount) to prove cold starts
// go through the zero-copy path rather than a hidden rebuild.
var indexLoads atomic.Int64

// IndexLoadCount returns the number of TreeIndex snapshot loads so far in
// this process (test/benchmark instrumentation).
func IndexLoadCount() int64 { return indexLoads.Load() }

// nodeIDsView reinterprets []int32 as []tree.NodeID (identical layout)
// so the preEndNode table can adopt a zero-copy snapshot view.
func nodeIDsView(v []int32) []tree.NodeID {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*tree.NodeID)(unsafe.Pointer(unsafe.SliceData(v))), len(v))
}

// int32sView is the inverse reinterpretation, for encoding.
func int32sView(v []tree.NodeID) []int32 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(v))), len(v))
}

// AppendBinary writes the index's sections into w. Label bitsets are not
// serialized — they are rebuilt (lazily, or eagerly via
// MaterializeLabels) from the tree's label index after loading.
func (ix *TreeIndex) AppendBinary(w *snapshot.Writer) {
	w.Int32s(snapshot.TagIxSibRank, ix.sibRank)
	w.Int32s(snapshot.TagIxSibStart, ix.sibStart)
	w.Int32s(snapshot.TagIxPreEndNode, int32sView(ix.preEndNode))
	w.Int32s(snapshot.TagIxPreEndPos, ix.preEndPos)
	w.Int32s(snapshot.TagIxPreEndVal, ix.preEndVal)
	w.Int32s(snapshot.TagIxParentPre, ix.parentPre)
	w.Int32s(snapshot.TagIxFirstChild, ix.firstChildPre)
	w.Int32s(snapshot.TagIxNextSib, ix.nextSibPre)
	w.Int32s(snapshot.TagIxPrevSib, ix.prevSibPre)
	w.Int32s(snapshot.TagIxSubtreeEnd, ix.subtreeEnd)
	w.Uint64s(snapshot.TagIxInternal, ix.internalPre)
}

// ixSection reads tag enforcing the element count and value range.
func ixSection(r *snapshot.Reader, tag uint32, n int, lo, hi int32) ([]int32, error) {
	v, err := r.Int32s(tag)
	if err != nil {
		return nil, err
	}
	if len(v) != n {
		return nil, fmt.Errorf("%w: section %#x has %d elements, want %d", snapshot.ErrCorrupt, tag, len(v), n)
	}
	for _, x := range v {
		if x < lo || x > hi {
			return nil, fmt.Errorf("%w: section %#x value %d outside [%d, %d]", snapshot.ErrCorrupt, tag, x, lo, hi)
		}
	}
	return v, nil
}

// LoadBinary reconstructs the TreeIndex for t from r, bypassing build():
// every table is adopted from the snapshot (zero-copy when the reader
// allows), the full-node-set words are refilled, and label bitsets start
// empty exactly as after a fresh build. Validation is bounds-level, so a
// corrupt file yields an error, never a panic.
func LoadBinary(r *snapshot.Reader, t *tree.Tree) (*TreeIndex, error) {
	n := t.Len()
	hi := int32(n) - 1
	ix := &TreeIndex{}
	var err error
	load := func(dst *[]int32, tag uint32, lo int32) {
		if err != nil {
			return
		}
		var v []int32
		if v, err = ixSection(r, tag, n, lo, hi); err == nil {
			*dst = v
		}
	}
	load(&ix.sibRank, snapshot.TagIxSibRank, 0)
	load(&ix.sibStart, snapshot.TagIxSibStart, 0)
	load(&ix.preEndPos, snapshot.TagIxPreEndPos, 0)
	load(&ix.preEndVal, snapshot.TagIxPreEndVal, 0)
	load(&ix.parentPre, snapshot.TagIxParentPre, -1)
	load(&ix.firstChildPre, snapshot.TagIxFirstChild, -1)
	load(&ix.nextSibPre, snapshot.TagIxNextSib, -1)
	load(&ix.prevSibPre, snapshot.TagIxPrevSib, -1)
	load(&ix.subtreeEnd, snapshot.TagIxSubtreeEnd, 0)
	if err != nil {
		return nil, err
	}
	preEndNode, err := ixSection(r, snapshot.TagIxPreEndNode, n, 0, hi)
	if err != nil {
		return nil, err
	}
	ix.preEndNode = nodeIDsView(preEndNode)
	internal, err := r.Uint64s(snapshot.TagIxInternal)
	if err != nil {
		return nil, err
	}
	if len(internal) != bitset.Words(n) {
		return nil, fmt.Errorf("%w: internal-node bitset has %d words, want %d",
			snapshot.ErrCorrupt, len(internal), bitset.Words(n))
	}
	ix.internalPre = internal
	ix.full.ResetFull(n)
	ix.t = t
	indexLoads.Add(1)
	return ix, nil
}
