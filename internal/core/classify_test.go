package core

import (
	"strings"
	"testing"

	"repro/internal/axis"
)

// wantTableI transcribes Table I of the paper: complexity and theorem for
// each one- or two-axis signature, keyed by (row, col) in TableIAxes order.
var wantTableI = map[[2]axis.Axis]struct {
	c  Complexity
	th string
}{
	{axis.Child, axis.Child}:                     {PTime, "Cor 4.4"},
	{axis.Child, axis.ChildPlus}:                 {NPComplete, "Thm 5.1"},
	{axis.Child, axis.ChildStar}:                 {NPComplete, "Thm 5.1"},
	{axis.Child, axis.NextSibling}:               {PTime, "Cor 4.4"},
	{axis.Child, axis.NextSiblingPlus}:           {PTime, "Cor 4.4"},
	{axis.Child, axis.NextSiblingStar}:           {PTime, "Cor 4.4"},
	{axis.Child, axis.Following}:                 {NPComplete, "Thm 5.2"},
	{axis.ChildPlus, axis.ChildPlus}:             {PTime, "Cor 4.2"},
	{axis.ChildPlus, axis.ChildStar}:             {PTime, "Cor 4.2"},
	{axis.ChildPlus, axis.NextSibling}:           {NPComplete, "Thm 5.7"},
	{axis.ChildPlus, axis.NextSiblingPlus}:       {NPComplete, "Thm 5.7"},
	{axis.ChildPlus, axis.NextSiblingStar}:       {NPComplete, "Thm 5.7"},
	{axis.ChildPlus, axis.Following}:             {NPComplete, "Thm 5.3"},
	{axis.ChildStar, axis.ChildStar}:             {PTime, "Cor 4.2"},
	{axis.ChildStar, axis.NextSibling}:           {NPComplete, "Thm 5.5"},
	{axis.ChildStar, axis.NextSiblingPlus}:       {NPComplete, "Cor 5.4"},
	{axis.ChildStar, axis.NextSiblingStar}:       {NPComplete, "Thm 5.6"},
	{axis.ChildStar, axis.Following}:             {NPComplete, "Thm 5.3"},
	{axis.NextSibling, axis.NextSibling}:         {PTime, "Cor 4.4"},
	{axis.NextSibling, axis.NextSiblingPlus}:     {PTime, "Cor 4.4"},
	{axis.NextSibling, axis.NextSiblingStar}:     {PTime, "Cor 4.4"},
	{axis.NextSibling, axis.Following}:           {NPComplete, "Thm 5.8"},
	{axis.NextSiblingPlus, axis.NextSiblingPlus}: {PTime, "Cor 4.4"},
	{axis.NextSiblingPlus, axis.NextSiblingStar}: {PTime, "Cor 4.4"},
	{axis.NextSiblingPlus, axis.Following}:       {NPComplete, "Thm 5.8"},
	{axis.NextSiblingStar, axis.NextSiblingStar}: {PTime, "Cor 4.4"},
	{axis.NextSiblingStar, axis.Following}:       {NPComplete, "Thm 5.8"},
	{axis.Following, axis.Following}:             {PTime, "Cor 4.3"},
}

func TestTableIMatchesPaper(t *testing.T) {
	axes := axis.TableIAxes
	count := 0
	for i, row := range axes {
		for j := i; j < len(axes); j++ {
			col := axes[j]
			want, ok := wantTableI[[2]axis.Axis{row, col}]
			if !ok {
				t.Fatalf("missing expectation for (%v, %v)", row, col)
			}
			got := TableICell(row, col)
			if got.Complexity != want.c {
				t.Errorf("Table I (%v, %v): %v, want %v", row, col, got.Complexity, want.c)
			}
			if got.Theorem != want.th {
				t.Errorf("Table I (%v, %v): theorem %q, want %q", row, col, got.Theorem, want.th)
			}
			count++
		}
	}
	if count != 28 {
		t.Errorf("checked %d cells, want 28", count)
	}
}

func TestTableIDichotomyCounts(t *testing.T) {
	// 14 tractable and 14 NP-complete cells, per the paper.
	var p, np int
	for _, cell := range flattenTableI() {
		switch cell.Complexity {
		case PTime:
			p++
		case NPComplete:
			np++
		}
	}
	if p != 14 || np != 14 {
		t.Errorf("P cells %d, NP cells %d; want 14 and 14", p, np)
	}
}

func flattenTableI() []Classification {
	var out []Classification
	table := TableI()
	for i := range table {
		for j := i; j < len(table[i]); j++ {
			out = append(out, table[i][j])
		}
	}
	return out
}

func TestClassifyLargerSignatures(t *testing.T) {
	cases := []struct {
		axes []axis.Axis
		want Complexity
	}{
		{[]axis.Axis{axis.Child, axis.NextSibling, axis.NextSiblingPlus, axis.NextSiblingStar}, PTime},
		{[]axis.Axis{axis.ChildPlus, axis.ChildStar, axis.Child}, NPComplete},
		{axis.PaperAxes, NPComplete},
		{[]axis.Axis{}, PTime},
		{[]axis.Axis{axis.ChildPlus, axis.ChildStar, axis.Self, axis.DocOrder, axis.DocOrderSucc}, PTime}, // Example 4.5 extension of τ1
	}
	for _, tc := range cases {
		got := Classify(tc.axes)
		if got.Complexity != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.axes, got.Complexity, tc.want)
		}
	}
}

func TestClassificationString(t *testing.T) {
	c := Classify([]axis.Axis{axis.Child, axis.Following})
	s := c.String()
	if !strings.Contains(s, "NP-hard") || !strings.Contains(s, "5.2") {
		t.Errorf("Classification string %q", s)
	}
	p := Classify([]axis.Axis{axis.Following})
	if !strings.Contains(p.String(), "in P") || !strings.Contains(p.String(), "<post") {
		t.Errorf("Classification string %q", p.String())
	}
}

func TestFormatTableI(t *testing.T) {
	s := FormatTableI()
	if !strings.Contains(s, "Following") {
		t.Errorf("FormatTableI missing axis names:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 8 { // header + 7 rows
		t.Errorf("FormatTableI has %d lines, want 8:\n%s", len(lines), s)
	}
}

func TestClassifyTheorem11Consistency(t *testing.T) {
	// Theorem 1.1: PTime iff a common X order exists — Classify must be
	// exactly the CommonXOrder predicate over all subsets of paper axes.
	n := len(axis.PaperAxes)
	for mask := 0; mask < (1 << n); mask++ {
		var axes []axis.Axis
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				axes = append(axes, axis.PaperAxes[i])
			}
		}
		_, hasOrder := axis.CommonXOrder(axes)
		got := Classify(axes)
		if (got.Complexity == PTime) != hasOrder {
			t.Errorf("Classify(%v) = %v but hasOrder = %v", axes, got.Complexity, hasOrder)
		}
		if got.Complexity == NPComplete && got.Theorem == "" {
			t.Errorf("NP signature %v lacks a theorem citation", axes)
		}
	}
}
