// Package core implements the primary contribution of "Conjunctive Queries
// over Trees": the tractability dichotomy (Theorem 1.1 / Table I) together
// with the evaluation engines it selects between —
//
//   - the X-property polynomial-time engine of Theorem 3.5 (arc-consistency
//     plus minimum valuation, O(‖A‖·|Q|) for Boolean queries);
//   - a Yannakakis-style engine for acyclic queries (two semijoin passes,
//     backtrack-free enumeration);
//   - a general MAC backtracking engine, complete for every signature but
//     exponential in the worst case (the problem is NP-complete outside
//     the tractable signatures, §5).
//
// Classify decides, for any signature F ⊆ Ax, whether CQ evaluation is in
// polynomial time (iff some total order gives every axis in F the
// X-property, Theorem 1.1) and records the relevant paper theorem.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/axis"
	"repro/internal/cq"
)

// Complexity is the dichotomy outcome for a signature.
type Complexity int

// The two sides of the dichotomy (Theorem 1.1).
const (
	PTime Complexity = iota
	NPComplete
)

// String names the complexity class as in Table I.
func (c Complexity) String() string {
	switch c {
	case PTime:
		return "in P"
	case NPComplete:
		return "NP-hard"
	default:
		return "invalid"
	}
}

// Classification is the result of classifying a signature.
type Classification struct {
	Axes       []axis.Axis
	Complexity Complexity
	// Order is the witnessing total order for PTime signatures (every
	// axis has the X-property with respect to it).
	Order axis.Order
	// Theorem cites the paper result justifying the classification
	// (e.g. "Cor 4.2", "Thm 5.1").
	Theorem string
}

// String renders e.g. "{Child, Following}: NP-hard (Thm 5.2)".
func (c Classification) String() string {
	names := make([]string, len(c.Axes))
	for i, a := range c.Axes {
		names[i] = a.String()
	}
	s := fmt.Sprintf("{%s}: %s", strings.Join(names, ", "), c.Complexity)
	if c.Complexity == PTime {
		s += fmt.Sprintf(" via X-property w.r.t. %s", c.Order)
	}
	if c.Theorem != "" {
		s += fmt.Sprintf(" (%s)", c.Theorem)
	}
	return s
}

// Classify determines the complexity of conjunctive query evaluation over
// structures with unary label relations plus the given axes, per
// Theorem 1.1: PTime iff all axes share an order with the X-property,
// otherwise NP-complete.
func Classify(axes []axis.Axis) Classification {
	sorted := append([]axis.Axis(nil), axes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	c := Classification{Axes: sorted}
	if o, ok := axis.CommonXOrder(sorted); ok {
		c.Complexity = PTime
		c.Order = o
		c.Theorem = ptimeTheorem(sorted)
		return c
	}
	c.Complexity = NPComplete
	c.Theorem = npTheorem(sorted)
	return c
}

// ClassifyQuery classifies the signature actually used by q.
func ClassifyQuery(q *cq.Query) Classification { return Classify(q.Signature()) }

// ptimeTheorem returns the paper citation for a tractable signature.
func ptimeTheorem(axes []axis.Axis) string {
	o, _ := axis.CommonXOrder(axes)
	switch o {
	case axis.PreOrder:
		return "Cor 4.2"
	case axis.PostOrder:
		return "Cor 4.3"
	case axis.BFLROrder:
		return "Cor 4.4"
	default:
		return "Thm 3.5"
	}
}

// pairKey builds an order-independent lookup key for axis pairs.
func pairKey(a, b axis.Axis) [2]axis.Axis {
	if a > b {
		a, b = b, a
	}
	return [2]axis.Axis{a, b}
}

// npPairTheorems cites the hardness theorem for each intractable pair of
// paper axes, exactly as printed in Table I.
var npPairTheorems = map[[2]axis.Axis]string{
	pairKey(axis.Child, axis.ChildPlus):           "Thm 5.1",
	pairKey(axis.Child, axis.ChildStar):           "Thm 5.1",
	pairKey(axis.Child, axis.Following):           "Thm 5.2",
	pairKey(axis.ChildPlus, axis.Following):       "Thm 5.3",
	pairKey(axis.ChildStar, axis.Following):       "Thm 5.3",
	pairKey(axis.ChildStar, axis.NextSiblingPlus): "Cor 5.4",
	pairKey(axis.ChildStar, axis.NextSibling):     "Thm 5.5",
	pairKey(axis.ChildStar, axis.NextSiblingStar): "Thm 5.6",
	pairKey(axis.ChildPlus, axis.NextSibling):     "Thm 5.7",
	pairKey(axis.ChildPlus, axis.NextSiblingPlus): "Thm 5.7",
	pairKey(axis.ChildPlus, axis.NextSiblingStar): "Thm 5.7",
	pairKey(axis.Following, axis.NextSibling):     "Thm 5.8",
	pairKey(axis.Following, axis.NextSiblingPlus): "Thm 5.8",
	pairKey(axis.Following, axis.NextSiblingStar): "Thm 5.8",
}

// npTheorem returns the citation for an intractable signature: the
// hardness theorem of some intractable pair contained in it.
func npTheorem(axes []axis.Axis) string {
	for i := 0; i < len(axes); i++ {
		for j := i; j < len(axes); j++ {
			if th, ok := npPairTheorems[pairKey(axes[i], axes[j])]; ok {
				return th
			}
		}
	}
	// Signatures beyond the paper axes (inverses, order extensions): the
	// X-property route does not apply, but Theorem 1.1's hardness half is
	// only proved for F ⊆ Ax — flag the verdict as a conjecture.
	return "no common X order; hardness not claimed beyond Ax"
}

// TableICell reproduces one cell of Table I: the classification of the
// one- or two-axis signature {rowAxis, colAxis}.
func TableICell(row, col axis.Axis) Classification {
	if row == col {
		return Classify([]axis.Axis{row})
	}
	return Classify([]axis.Axis{row, col})
}

// TableI regenerates the full upper-triangular Table I in the paper's
// axis order. The result is indexed [row][col] with col >= row; entries
// below the diagonal are zero-valued.
func TableI() [][]Classification {
	axes := axis.TableIAxes
	out := make([][]Classification, len(axes))
	for i := range axes {
		out[i] = make([]Classification, len(axes))
		for j := i; j < len(axes); j++ {
			out[i][j] = TableICell(axes[i], axes[j])
		}
	}
	return out
}

// FormatTableI renders Table I as aligned text with complexity and
// theorem citation per cell, matching the shape of the paper's table.
func FormatTableI() string {
	axes := axis.TableIAxes
	table := TableI()
	colW := 14
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-14s", ""))
	for _, a := range axes {
		sb.WriteString(fmt.Sprintf("%-*s", colW, a))
	}
	sb.WriteByte('\n')
	for i, row := range axes {
		sb.WriteString(fmt.Sprintf("%-14s", row))
		for j := range axes {
			if j < i {
				sb.WriteString(fmt.Sprintf("%-*s", colW, ""))
				continue
			}
			cell := table[i][j]
			sb.WriteString(fmt.Sprintf("%-*s", colW, fmt.Sprintf("%s (%s)", cell.Complexity, shortRef(cell.Theorem))))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func shortRef(theorem string) string {
	fields := strings.Fields(theorem)
	return fields[len(fields)-1]
}
