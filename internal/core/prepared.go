package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// ErrNotMonadic is returned by the error-returning monadic entry points
// (MonadicDoc and the public NodesErr/NodeSeq tier) when the compiled
// query's head is not unary. It replaces the legacy "panics if not
// monadic" contract; match it with errors.Is.
var ErrNotMonadic = errors.New("query is not monadic")

// evalScratch bundles the per-call mutable state of one evaluation: the
// arc-consistency buffers, the semijoin doom-list of the acyclic engine,
// and a private backtracking engine (which carries search counters). One
// evalScratch serves one evaluation at a time; Prepared pools them so
// concurrent calls each borrow their own.
type evalScratch struct {
	ac     *consistency.Scratch
	doomed []tree.NodeID
	// srcWords/imgWords are the pre-rank word buffers of the kernel-based
	// semijoin passes (acyclic.go): the candidate set scattered to pre
	// ranks, and its whole-set axis image.
	srcWords []uint64
	imgWords []uint64
	bt       *BacktrackEngine
}

func newEvalScratch() *evalScratch {
	return &evalScratch{ac: consistency.NewScratch()}
}

// backtracker returns the scratch's private MAC engine, sharing the
// scratch's arc-consistency buffers.
func (s *evalScratch) backtracker() *BacktrackEngine {
	if s.bt == nil {
		s.bt = &BacktrackEngine{Propagate: true, sc: s.ac}
	}
	return s.bt
}

// Prepared is a compiled conjunctive query: parsed, classified per the
// Theorem 1.1 dichotomy, and planned exactly once. The expensive query-only
// work (acyclicity analysis, the shadow-forest decomposition, the common
// X-property order search) happens in Prepare; evaluating the Prepared
// against a Document only pays the per-call cost, reusing pooled scratch
// buffers so repeated evaluation stops re-allocating domain tables and
// semijoin buffers.
//
// Evaluation is Document-centric: the *Doc methods take a shared
// *Document (tree indexes built once, by NewDocument). The *Tree methods
// are thin compatibility wrappers resolving the tree through a weak
// per-engine document cache.
//
// A Prepared is immutable after Prepare and safe for concurrent use: each
// evaluation borrows a private scratch from an internal pool.
type Prepared struct {
	q    *cq.Query // private clone; never mutated
	plan Plan

	forest *shadowForest // StrategyAcyclic
	order  axis.Order    // StrategyXProperty
	alg    ACAlgorithm

	docs *docCache // resolves legacy *Tree calls to Documents
	pool sync.Pool // of *evalScratch
}

// Prepare compiles q: it classifies the signature (Theorem 1.1), analyzes
// acyclicity, picks the evaluation strategy, and precomputes the
// strategy's query-only structures. The query is cloned, so later mutation
// of q does not affect the Prepared.
func Prepare(q *cq.Query) (*Prepared, error) {
	return prepareWith(q, &docCache{})
}

// prepareWith is Prepare with a caller-supplied document cache (an Engine
// shares one cache across every query it compiles).
func prepareWith(q *cq.Query, docs *docCache) (*Prepared, error) {
	if q == nil {
		return nil, fmt.Errorf("core: Prepare of nil query")
	}
	c := q.Clone()
	p := &Prepared{q: c, plan: planFor(c), docs: docs}
	switch p.plan.Strategy {
	case StrategyAcyclic:
		f, err := buildShadowForest(c)
		if err != nil {
			return nil, err
		}
		p.forest = f
	case StrategyXProperty:
		p.order = p.plan.Classification.Order
		p.alg = FastAC
	}
	return p, nil
}

// MustPrepare is Prepare that panics on error (the only error source is a
// malformed query).
func MustPrepare(q *cq.Query) *Prepared {
	p, err := Prepare(q)
	if err != nil {
		panic(err)
	}
	return p
}

// Plan reports the compiled evaluation strategy and classification.
func (p *Prepared) Plan() Plan { return p.plan }

// Query returns the compiled query (a private clone; treat as read-only).
func (p *Prepared) Query() *cq.Query { return p.q }

func (p *Prepared) scratch() *evalScratch {
	if s, ok := p.pool.Get().(*evalScratch); ok {
		return s
	}
	return newEvalScratch()
}

func (p *Prepared) release(s *evalScratch) { p.pool.Put(s) }

// document resolves the legacy *Tree entry points through the weak
// per-engine document cache: the first call for a tree builds its indexes,
// subsequent calls (from any Prepared sharing the cache) reuse them.
func (p *Prepared) document(t *tree.Tree) *Document { return p.docs.get(t) }

// OrderDir is one head position's enumeration direction over pre-order
// ranks (document order); see EnumOptions.Order.
type OrderDir int8

const (
	// OrderAsc enumerates the position in increasing document order.
	OrderAsc OrderDir = iota
	// OrderDesc enumerates the position in decreasing document order.
	OrderDesc
)

// EnumOptions tunes answer evaluation and enumeration.
type EnumOptions struct {
	// Parallel is the number of worker goroutines sharding the outer
	// candidate loop of AllDoc/MonadicDoc; 0 and 1 are equivalent (both
	// mean sequential), and negative values are treated as 0. Only the
	// acyclic and X-property strategies parallelize (the backtracking
	// search is inherently stateful and falls back to sequential).
	// Streaming (ForEachTupleDoc/ForEachNodeDoc) is always sequential: the
	// callback contract is single-goroutine.
	Parallel int
	// Ctx, when non-nil, cancels evaluation: cancellation is checked once
	// per outer-candidate-loop iteration (in both sequential and sharded
	// parallel enumeration) and once per search-node expansion under the
	// backtracking strategy, so enumeration stops within one outer
	// iteration of the cancel. The error-returning entry points report
	// ctx.Err(); streaming entry points just stop.
	Ctx context.Context
	// Order, when non-nil, requests ordered enumeration: answer tuples
	// stream in lexicographic document order — head position i ascending
	// or descending over pre-order ranks per Order[i]. It must hold
	// exactly one direction per head variable (callers validate arity; a
	// mismatch panics). Ordered enumeration is sequential (Parallel is
	// ignored), streams with no sort or buffering under the acyclic and
	// X-property strategies, and materializes + sorts under backtracking.
	// AllDoc returns the requested order instead of lexicographic NodeID
	// order. Ignored for queries with an empty head.
	Order []OrderDir
	// Limit > 0 stops enumeration after that many answers have been
	// delivered to fn (after Offset skipping); the engine does no further
	// descent work past the limit.
	Limit int
	// Offset > 0 skips the first n answers of the stream before any are
	// delivered. The skipped answers are still enumerated (cost O(Offset));
	// cursor resume (After) is the O(depth) restart.
	Offset int
	// After, when non-nil, resumes ordered enumeration strictly after the
	// answer whose head nodes have these pre-order ranks (one per head
	// position, under the same Order). The engine re-descends directly to
	// the recorded pin prefix — an O(depth) restart, no re-enumeration of
	// skipped answers. Requires Order to be set; under the backtracking
	// strategy the restart is by replay (O(answers)).
	After []int32
}

// ordered reports whether the options request the ordered enumeration
// path for a query with the given head arity.
func (o EnumOptions) ordered(arity int) bool {
	return o.Order != nil && arity > 0
}

// validateOrdered panics on internal misuse: the public tiers validate
// order/cursor shapes and return typed errors before reaching core.
func (o EnumOptions) validateOrdered(arity int) {
	if len(o.Order) != arity {
		panic(fmt.Sprintf("core: %d order directions for %d-ary query", len(o.Order), arity))
	}
	if o.After != nil && len(o.After) != arity {
		panic(fmt.Sprintf("core: %d resume ranks for %d-ary query", len(o.After), arity))
	}
}

// limitWrap applies Offset/Limit to a tuple stream by wrapping its sink:
// the first Offset answers are dropped, delivery stops the moment the
// Limit-th answer has been passed to fn.
func (o EnumOptions) limitWrap(fn func([]tree.NodeID) bool) func([]tree.NodeID) bool {
	if o.Limit <= 0 && o.Offset <= 0 {
		return fn
	}
	skip, taken := o.Offset, 0
	return func(tuple []tree.NodeID) bool {
		if skip > 0 {
			skip--
			return true
		}
		taken++
		if !fn(tuple) {
			return false
		}
		return o.Limit <= 0 || taken < o.Limit
	}
}

// stop returns the cancellation probe for the options: nil when no
// context is set (so hot loops pay a single nil check), otherwise a
// closure over Ctx.Err.
func (o EnumOptions) stop() func() bool {
	if o.Ctx == nil {
		return nil
	}
	ctx := o.Ctx
	return func() bool { return ctx.Err() != nil }
}

// err returns the options' cancellation error, if any.
func (o EnumOptions) err() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// BoolDoc decides Boolean satisfaction of the compiled query on d. A
// non-nil error is only ever the context's cancellation error.
func (p *Prepared) BoolDoc(d *Document, o EnumOptions) (bool, error) {
	if err := o.err(); err != nil {
		return false, err
	}
	s := p.scratch()
	defer p.release(s)
	var sat bool
	switch p.plan.Strategy {
	case StrategyAcyclic:
		sat = acyclicBool(d, p.q, p.forest, s)
	case StrategyXProperty:
		sat = polyBool(d, p.q, p.alg, s.ac)
	case StrategyBacktrack:
		sat = s.backtracker().evalBoolean(d, p.q, o.stop())
	default:
		panic("core: invalid strategy")
	}
	if err := o.err(); err != nil {
		return false, err
	}
	return sat, nil
}

// SatisfactionDoc returns a full consistent valuation on d, or nil if none
// exists (or evaluation was cancelled).
func (p *Prepared) SatisfactionDoc(d *Document, o EnumOptions) consistency.Valuation {
	if o.err() != nil {
		return nil
	}
	s := p.scratch()
	defer p.release(s)
	switch p.plan.Strategy {
	case StrategyAcyclic:
		return acyclicSatisfaction(d, p.q, p.forest, s)
	case StrategyXProperty:
		return polySatisfaction(d, p.q, p.order, p.alg, s.ac)
	case StrategyBacktrack:
		return s.backtracker().satisfaction(d, p.q, o.stop())
	default:
		panic("core: invalid strategy")
	}
}

// ForEachTupleDoc streams the distinct answer tuples of the compiled query
// on d: fn is called once per tuple and enumeration stops as soon as fn
// returns false, so prefix-limited and existence queries cost only the
// answers actually consumed. Nothing is materialized; the tuple slice is
// reused between calls — copy it to retain. Tuples arrive in a
// strategy-dependent order (not necessarily lexicographic); AllDoc sorts.
// For Boolean queries fn is called once with an empty tuple if the query
// is satisfiable. The returned error is the context's cancellation error,
// if any (the stream just stops at the cancel point).
func (p *Prepared) ForEachTupleDoc(d *Document, o EnumOptions, fn func(tuple []tree.NodeID) bool) error {
	if err := o.err(); err != nil {
		return err
	}
	s := p.scratch()
	defer p.release(s)
	stop := o.stop()
	fn = o.limitWrap(fn)
	if o.ordered(len(p.q.Head)) {
		o.validateOrdered(len(p.q.Head))
		p.orderedForEachTuple(d, s, o, stop, fn)
		return o.err()
	}
	switch p.plan.Strategy {
	case StrategyAcyclic:
		acyclicForEachTuple(d, p.q, p.forest, s, stop, fn)
	case StrategyXProperty:
		polyForEachTuple(d, p.q, p.alg, s.ac, stop, fn)
	case StrategyBacktrack:
		s.backtracker().forEachTuple(d, p.q, stop, fn)
	default:
		panic("core: invalid strategy")
	}
	return o.err()
}

// ForEachNodeDoc streams the answer nodes of a monadic compiled query
// without building per-node tuple wrappers; it returns ErrNotMonadic if
// the query is not monadic. Under the acyclic and X-property strategies
// nodes arrive in increasing NodeID order; under backtracking in discovery
// order. fn returns false to stop early. A non-nil error is ErrNotMonadic
// or the context's cancellation error.
func (p *Prepared) ForEachNodeDoc(d *Document, o EnumOptions, fn func(v tree.NodeID) bool) error {
	if len(p.q.Head) != 1 {
		return fmt.Errorf("core: ForEachNode on %d-ary query: %w", len(p.q.Head), ErrNotMonadic)
	}
	if err := o.err(); err != nil {
		return err
	}
	s := p.scratch()
	defer p.release(s)
	stop := o.stop()
	if o.ordered(1) {
		o.validateOrdered(1)
		p.orderedForEachTuple(d, s, o, stop,
			o.limitWrap(func(tuple []tree.NodeID) bool { return fn(tuple[0]) }))
		return o.err()
	}
	if o.Limit > 0 || o.Offset > 0 {
		inner := fn
		skip, taken := o.Offset, 0
		fn = func(v tree.NodeID) bool {
			if skip > 0 {
				skip--
				return true
			}
			taken++
			if !inner(v) {
				return false
			}
			return o.Limit <= 0 || taken < o.Limit
		}
	}
	switch p.plan.Strategy {
	case StrategyAcyclic:
		acyclicForEachNode(d, p.q, p.forest, s, stop, fn)
	case StrategyXProperty:
		polyForEachNode(d, p.q, p.alg, s.ac, stop, fn)
	case StrategyBacktrack:
		tuple1 := func(tuple []tree.NodeID) bool { return fn(tuple[0]) }
		s.backtracker().forEachTuple(d, p.q, stop, tuple1)
	default:
		panic("core: invalid strategy")
	}
	return o.err()
}

// AllDoc enumerates the distinct answer tuples of the compiled query on d
// in lexicographic NodeID order (for Boolean queries: one empty tuple if
// satisfiable). On cancellation the partial result is discarded and the
// context's error returned.
func (p *Prepared) AllDoc(d *Document, o EnumOptions) ([][]tree.NodeID, error) {
	if err := o.err(); err != nil {
		return nil, err
	}
	// Ordered, limited, or offset enumeration is inherently sequential and
	// must keep the stream's own order (ordered) or the stream-prefix
	// semantics (limit/offset), so it bypasses the parallel sharding.
	if ordered := o.ordered(len(p.q.Head)); ordered || o.Limit > 0 || o.Offset > 0 {
		var out [][]tree.NodeID
		p.ForEachTupleDoc(d, o, func(tuple []tree.NodeID) bool {
			out = append(out, copyTuple(tuple))
			return true
		})
		if !ordered {
			// An unordered limit prefix keeps the sorted-relation shape
			// (sorted among themselves, like the batch tuple cap).
			sortTupleSlice(out)
		}
		if err := o.err(); err != nil {
			return nil, err
		}
		return out, nil
	}
	out, parallel := p.allParallel(d, o)
	if !parallel {
		out = collectSortedTuples(func(fn func([]tree.NodeID) bool) {
			p.ForEachTupleDoc(d, o, fn)
		})
	}
	if err := o.err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MonadicDoc returns the sorted node set answering a unary compiled query
// on d; it returns ErrNotMonadic if the query is not monadic, and the
// context's error on cancellation (discarding the partial result).
func (p *Prepared) MonadicDoc(d *Document, o EnumOptions) ([]tree.NodeID, error) {
	if len(p.q.Head) != 1 {
		return nil, fmt.Errorf("core: Monadic on %d-ary query: %w", len(p.q.Head), ErrNotMonadic)
	}
	if err := o.err(); err != nil {
		return nil, err
	}
	ordered := o.ordered(1)
	out, parallel := []tree.NodeID(nil), false
	if !ordered && o.Limit <= 0 && o.Offset <= 0 {
		out, parallel = p.monadicParallel(d, o)
	}
	if !parallel {
		out = []tree.NodeID{}
		p.ForEachNodeDoc(d, o, func(v tree.NodeID) bool {
			out = append(out, v)
			return true
		})
		if !ordered {
			// Acyclic and X-property emission is already sorted; backtracking
			// is discovery-ordered. Sorting unconditionally keeps the contract
			// simple and costs O(answer log answer). Ordered enumeration keeps
			// the requested document order instead.
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		}
	}
	if err := o.err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---- legacy *Tree compatibility tier ------------------------------------
//
// These wrappers resolve the tree through the weak per-engine document
// cache and preserve the original contracts exactly (including the panic
// on non-monadic Nodes/ForEachNode); results are byte-identical to the
// Document tier with a background context.

// Bool decides Boolean satisfaction of the compiled query on t.
func (p *Prepared) Bool(t *tree.Tree) bool {
	sat, _ := p.BoolDoc(p.document(t), EnumOptions{})
	return sat
}

// Satisfaction returns a full consistent valuation, or nil if none exists.
func (p *Prepared) Satisfaction(t *tree.Tree) consistency.Valuation {
	return p.SatisfactionDoc(p.document(t), EnumOptions{})
}

// ForEachTuple streams the distinct answer tuples of the compiled query on
// t; see ForEachTupleDoc for the contract.
func (p *Prepared) ForEachTuple(t *tree.Tree, fn func(tuple []tree.NodeID) bool) {
	p.ForEachTupleDoc(p.document(t), EnumOptions{}, fn)
}

// ForEachNode streams the answer nodes of a monadic compiled query; it
// panics if the query is not monadic. See ForEachNodeDoc for the contract.
func (p *Prepared) ForEachNode(t *tree.Tree, fn func(v tree.NodeID) bool) {
	if len(p.q.Head) != 1 {
		panic(fmt.Sprintf("core: ForEachNode on %d-ary query", len(p.q.Head)))
	}
	p.ForEachNodeDoc(p.document(t), EnumOptions{}, fn)
}

// All enumerates the distinct answer tuples of the compiled query on t in
// lexicographic NodeID order (for Boolean queries: one empty tuple if
// satisfiable).
func (p *Prepared) All(t *tree.Tree) [][]tree.NodeID {
	return p.AllOpt(t, EnumOptions{})
}

// AllOpt is All with enumeration options.
func (p *Prepared) AllOpt(t *tree.Tree, o EnumOptions) [][]tree.NodeID {
	out, _ := p.AllDoc(p.document(t), o)
	return out
}

// Monadic returns the sorted node set answering a unary compiled query; it
// panics if the query is not monadic.
func (p *Prepared) Monadic(t *tree.Tree) []tree.NodeID {
	return p.MonadicOpt(t, EnumOptions{})
}

// MonadicOpt is Monadic with enumeration options.
func (p *Prepared) MonadicOpt(t *tree.Tree, o EnumOptions) []tree.NodeID {
	if len(p.q.Head) != 1 {
		panic(fmt.Sprintf("core: Monadic on %d-ary query", len(p.q.Head)))
	}
	out, _ := p.MonadicDoc(p.document(t), o)
	return out
}
