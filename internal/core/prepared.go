package core

import (
	"fmt"
	"sync"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// evalScratch bundles the per-call mutable state of one evaluation: the
// arc-consistency buffers, the semijoin doom-list of the acyclic engine,
// and a private backtracking engine (which carries search counters). One
// evalScratch serves one evaluation at a time; Prepared pools them so
// concurrent calls each borrow their own.
type evalScratch struct {
	ac     *consistency.Scratch
	doomed []tree.NodeID
	bt     *BacktrackEngine
}

func newEvalScratch() *evalScratch {
	return &evalScratch{ac: consistency.NewScratch()}
}

// backtracker returns the scratch's private MAC engine, sharing the
// scratch's arc-consistency buffers.
func (s *evalScratch) backtracker() *BacktrackEngine {
	if s.bt == nil {
		s.bt = &BacktrackEngine{Propagate: true, sc: s.ac}
	}
	return s.bt
}

// Prepared is a compiled conjunctive query: parsed, classified per the
// Theorem 1.1 dichotomy, and planned exactly once. The expensive query-only
// work (acyclicity analysis, the shadow-forest decomposition, the common
// X-property order search) happens in Prepare; evaluating the Prepared
// against a tree only pays the per-tree cost, reusing pooled scratch
// buffers so repeated evaluation stops re-allocating domain tables and
// semijoin buffers.
//
// A Prepared is immutable after Prepare and safe for concurrent use: each
// evaluation borrows a private scratch from an internal pool.
type Prepared struct {
	q    *cq.Query // private clone; never mutated
	plan Plan

	forest *shadowForest // StrategyAcyclic
	order  axis.Order    // StrategyXProperty
	alg    ACAlgorithm

	pool sync.Pool // of *evalScratch
}

// Prepare compiles q: it classifies the signature (Theorem 1.1), analyzes
// acyclicity, picks the evaluation strategy, and precomputes the
// strategy's query-only structures. The query is cloned, so later mutation
// of q does not affect the Prepared.
func Prepare(q *cq.Query) (*Prepared, error) {
	if q == nil {
		return nil, fmt.Errorf("core: Prepare of nil query")
	}
	c := q.Clone()
	p := &Prepared{q: c, plan: planFor(c)}
	switch p.plan.Strategy {
	case StrategyAcyclic:
		f, err := buildShadowForest(c)
		if err != nil {
			return nil, err
		}
		p.forest = f
	case StrategyXProperty:
		p.order = p.plan.Classification.Order
		p.alg = FastAC
	}
	return p, nil
}

// MustPrepare is Prepare that panics on error (the only error source is a
// malformed query).
func MustPrepare(q *cq.Query) *Prepared {
	p, err := Prepare(q)
	if err != nil {
		panic(err)
	}
	return p
}

// Plan reports the compiled evaluation strategy and classification.
func (p *Prepared) Plan() Plan { return p.plan }

// Query returns the compiled query (a private clone; treat as read-only).
func (p *Prepared) Query() *cq.Query { return p.q }

func (p *Prepared) scratch() *evalScratch {
	if s, ok := p.pool.Get().(*evalScratch); ok {
		return s
	}
	return newEvalScratch()
}

func (p *Prepared) release(s *evalScratch) { p.pool.Put(s) }

// Bool decides Boolean satisfaction of the compiled query on t.
func (p *Prepared) Bool(t *tree.Tree) bool {
	s := p.scratch()
	defer p.release(s)
	switch p.plan.Strategy {
	case StrategyAcyclic:
		return acyclicBool(t, p.q, p.forest, s)
	case StrategyXProperty:
		return polyBool(t, p.q, p.alg, s.ac)
	case StrategyBacktrack:
		return s.backtracker().EvalBoolean(t, p.q)
	default:
		panic("core: invalid strategy")
	}
}

// Satisfaction returns a full consistent valuation, or nil if none exists.
func (p *Prepared) Satisfaction(t *tree.Tree) consistency.Valuation {
	s := p.scratch()
	defer p.release(s)
	switch p.plan.Strategy {
	case StrategyAcyclic:
		return acyclicSatisfaction(t, p.q, p.forest, s)
	case StrategyXProperty:
		return polySatisfaction(t, p.q, p.order, p.alg, s.ac)
	case StrategyBacktrack:
		return s.backtracker().Satisfaction(t, p.q)
	default:
		panic("core: invalid strategy")
	}
}

// All enumerates the distinct answer tuples of the compiled query on t
// (for Boolean queries: one empty tuple if satisfiable).
func (p *Prepared) All(t *tree.Tree) [][]tree.NodeID {
	s := p.scratch()
	defer p.release(s)
	switch p.plan.Strategy {
	case StrategyAcyclic:
		return acyclicAll(t, p.q, p.forest, s)
	case StrategyXProperty:
		return polyAll(t, p.q, p.alg, s.ac)
	case StrategyBacktrack:
		return s.backtracker().EvalAll(t, p.q)
	default:
		panic("core: invalid strategy")
	}
}

// Monadic returns the sorted node set answering a unary compiled query; it
// panics if the query is not monadic.
func (p *Prepared) Monadic(t *tree.Tree) []tree.NodeID {
	if len(p.q.Head) != 1 {
		panic(fmt.Sprintf("core: Monadic on %d-ary query", len(p.q.Head)))
	}
	tuples := p.All(t)
	out := make([]tree.NodeID, len(tuples))
	for i, tp := range tuples {
		out[i] = tp[0]
	}
	return out
}
