package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// evalScratch bundles the per-call mutable state of one evaluation: the
// arc-consistency buffers, the semijoin doom-list of the acyclic engine,
// and a private backtracking engine (which carries search counters). One
// evalScratch serves one evaluation at a time; Prepared pools them so
// concurrent calls each borrow their own.
type evalScratch struct {
	ac     *consistency.Scratch
	doomed []tree.NodeID
	bt     *BacktrackEngine
}

func newEvalScratch() *evalScratch {
	return &evalScratch{ac: consistency.NewScratch()}
}

// backtracker returns the scratch's private MAC engine, sharing the
// scratch's arc-consistency buffers.
func (s *evalScratch) backtracker() *BacktrackEngine {
	if s.bt == nil {
		s.bt = &BacktrackEngine{Propagate: true, sc: s.ac}
	}
	return s.bt
}

// Prepared is a compiled conjunctive query: parsed, classified per the
// Theorem 1.1 dichotomy, and planned exactly once. The expensive query-only
// work (acyclicity analysis, the shadow-forest decomposition, the common
// X-property order search) happens in Prepare; evaluating the Prepared
// against a tree only pays the per-tree cost, reusing pooled scratch
// buffers so repeated evaluation stops re-allocating domain tables and
// semijoin buffers.
//
// A Prepared is immutable after Prepare and safe for concurrent use: each
// evaluation borrows a private scratch from an internal pool.
type Prepared struct {
	q    *cq.Query // private clone; never mutated
	plan Plan

	forest *shadowForest // StrategyAcyclic
	order  axis.Order    // StrategyXProperty
	alg    ACAlgorithm

	pool sync.Pool // of *evalScratch
}

// Prepare compiles q: it classifies the signature (Theorem 1.1), analyzes
// acyclicity, picks the evaluation strategy, and precomputes the
// strategy's query-only structures. The query is cloned, so later mutation
// of q does not affect the Prepared.
func Prepare(q *cq.Query) (*Prepared, error) {
	if q == nil {
		return nil, fmt.Errorf("core: Prepare of nil query")
	}
	c := q.Clone()
	p := &Prepared{q: c, plan: planFor(c)}
	switch p.plan.Strategy {
	case StrategyAcyclic:
		f, err := buildShadowForest(c)
		if err != nil {
			return nil, err
		}
		p.forest = f
	case StrategyXProperty:
		p.order = p.plan.Classification.Order
		p.alg = FastAC
	}
	return p, nil
}

// MustPrepare is Prepare that panics on error (the only error source is a
// malformed query).
func MustPrepare(q *cq.Query) *Prepared {
	p, err := Prepare(q)
	if err != nil {
		panic(err)
	}
	return p
}

// Plan reports the compiled evaluation strategy and classification.
func (p *Prepared) Plan() Plan { return p.plan }

// Query returns the compiled query (a private clone; treat as read-only).
func (p *Prepared) Query() *cq.Query { return p.q }

func (p *Prepared) scratch() *evalScratch {
	if s, ok := p.pool.Get().(*evalScratch); ok {
		return s
	}
	return newEvalScratch()
}

func (p *Prepared) release(s *evalScratch) { p.pool.Put(s) }

// Bool decides Boolean satisfaction of the compiled query on t.
func (p *Prepared) Bool(t *tree.Tree) bool {
	s := p.scratch()
	defer p.release(s)
	switch p.plan.Strategy {
	case StrategyAcyclic:
		return acyclicBool(t, p.q, p.forest, s)
	case StrategyXProperty:
		return polyBool(t, p.q, p.alg, s.ac)
	case StrategyBacktrack:
		return s.backtracker().EvalBoolean(t, p.q)
	default:
		panic("core: invalid strategy")
	}
}

// Satisfaction returns a full consistent valuation, or nil if none exists.
func (p *Prepared) Satisfaction(t *tree.Tree) consistency.Valuation {
	s := p.scratch()
	defer p.release(s)
	switch p.plan.Strategy {
	case StrategyAcyclic:
		return acyclicSatisfaction(t, p.q, p.forest, s)
	case StrategyXProperty:
		return polySatisfaction(t, p.q, p.order, p.alg, s.ac)
	case StrategyBacktrack:
		return s.backtracker().Satisfaction(t, p.q)
	default:
		panic("core: invalid strategy")
	}
}

// EnumOptions tunes answer enumeration (All/Monadic).
type EnumOptions struct {
	// Parallel is the number of worker goroutines sharding the outer
	// candidate loop of All/Monadic; values <= 1 mean sequential. Only the
	// acyclic and X-property strategies parallelize (the backtracking
	// search is inherently stateful and falls back to sequential).
	// Streaming (ForEachTuple/ForEachNode) is always sequential: the
	// callback contract is single-goroutine.
	Parallel int
}

// ForEachTuple streams the distinct answer tuples of the compiled query on
// t: fn is called once per tuple and enumeration stops as soon as fn
// returns false, so prefix-limited and existence queries cost only the
// answers actually consumed. Nothing is materialized; the tuple slice is
// reused between calls — copy it to retain. Tuples arrive in a
// strategy-dependent order (not necessarily lexicographic); All sorts.
// For Boolean queries fn is called once with an empty tuple if the query
// is satisfiable.
func (p *Prepared) ForEachTuple(t *tree.Tree, fn func(tuple []tree.NodeID) bool) {
	s := p.scratch()
	defer p.release(s)
	switch p.plan.Strategy {
	case StrategyAcyclic:
		acyclicForEachTuple(t, p.q, p.forest, s, fn)
	case StrategyXProperty:
		polyForEachTuple(t, p.q, p.alg, s.ac, fn)
	case StrategyBacktrack:
		s.backtracker().ForEachTuple(t, p.q, fn)
	default:
		panic("core: invalid strategy")
	}
}

// ForEachNode streams the answer nodes of a monadic compiled query without
// building per-node tuple wrappers; it panics if the query is not monadic.
// Under the acyclic and X-property strategies nodes arrive in increasing
// NodeID order; under backtracking in discovery order. fn returns false to
// stop early.
func (p *Prepared) ForEachNode(t *tree.Tree, fn func(v tree.NodeID) bool) {
	if len(p.q.Head) != 1 {
		panic(fmt.Sprintf("core: ForEachNode on %d-ary query", len(p.q.Head)))
	}
	s := p.scratch()
	defer p.release(s)
	switch p.plan.Strategy {
	case StrategyAcyclic:
		acyclicForEachNode(t, p.q, p.forest, s, fn)
	case StrategyXProperty:
		polyForEachNode(t, p.q, p.alg, s.ac, fn)
	case StrategyBacktrack:
		tuple1 := func(tuple []tree.NodeID) bool { return fn(tuple[0]) }
		s.backtracker().ForEachTuple(t, p.q, tuple1)
	default:
		panic("core: invalid strategy")
	}
}

// All enumerates the distinct answer tuples of the compiled query on t in
// lexicographic NodeID order (for Boolean queries: one empty tuple if
// satisfiable).
func (p *Prepared) All(t *tree.Tree) [][]tree.NodeID {
	return p.AllOpt(t, EnumOptions{})
}

// AllOpt is All with enumeration options.
func (p *Prepared) AllOpt(t *tree.Tree, o EnumOptions) [][]tree.NodeID {
	if out, ok := p.allParallel(t, o); ok {
		return out
	}
	return collectSortedTuples(func(fn func([]tree.NodeID) bool) {
		p.ForEachTuple(t, fn)
	})
}

// Monadic returns the sorted node set answering a unary compiled query; it
// panics if the query is not monadic.
func (p *Prepared) Monadic(t *tree.Tree) []tree.NodeID {
	return p.MonadicOpt(t, EnumOptions{})
}

// MonadicOpt is Monadic with enumeration options.
func (p *Prepared) MonadicOpt(t *tree.Tree, o EnumOptions) []tree.NodeID {
	if len(p.q.Head) != 1 {
		panic(fmt.Sprintf("core: Monadic on %d-ary query", len(p.q.Head)))
	}
	if out, ok := p.monadicParallel(t, o); ok {
		return out
	}
	out := []tree.NodeID{}
	p.ForEachNode(t, func(v tree.NodeID) bool {
		out = append(out, v)
		return true
	})
	// Acyclic and X-property emission is already sorted; backtracking is
	// discovery-ordered. Sorting unconditionally keeps the contract simple
	// and costs O(answer log answer).
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
