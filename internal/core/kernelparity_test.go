package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// TestStrategiesKernelPathParity: all three strategies (Yannakakis/acyclic,
// X-property, backtracking) must produce byte-identical answer sets whether
// their revise/semijoin steps run through the per-node probe loops
// (KernelNever), the bulk image kernels (KernelAlways), or the production
// density heuristic (KernelAuto) — and, on small inputs, match the
// brute-force reference enumeration.
func TestStrategiesKernelPathParity(t *testing.T) {
	defer consistency.SetKernelPolicy(consistency.KernelAuto)
	policies := []struct {
		name string
		p    consistency.KernelPolicy
	}{
		{"probe", consistency.KernelNever},
		{"kernel", consistency.KernelAlways},
		{"auto", consistency.KernelAuto},
	}
	rng := rand.New(rand.NewSource(2024))
	alphabet := []string{"A", "B", "C"}
	cases := 0
	for trial := 0; trial < 70; trial++ {
		n := 1 + rng.Intn(40)
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: n, MaxChildren: 3, Alphabet: alphabet,
			MultiLabelProb: 0.1, UnlabeledProb: 0.1,
		})
		q := randomQuery(rng, allAxes, alphabet, 1+rng.Intn(3), rng.Intn(4), rng.Intn(3))
		// Give the query a head so All exercises enumeration, not just Bool.
		switch {
		case q.NumVars() >= 2 && trial%2 == 0:
			q.SetHead(cq.Var(0), cq.Var(1))
		default:
			q.SetHead(cq.Var(0))
		}
		want := ReferenceEvalAll(tr, q)

		pq, err := Prepare(q)
		if err != nil {
			t.Fatalf("trial %d: Prepare: %v", trial, err)
		}
		strategy := pq.Plan().Strategy
		var results [][][]tree.NodeID
		for _, pol := range policies {
			consistency.SetKernelPolicy(pol.p)
			// A fresh Prepared per policy: pooled scratches never carry
			// state from a differently-policied run.
			fresh := MustPrepare(q)
			results = append(results, fresh.All(tr))
		}
		consistency.SetKernelPolicy(consistency.KernelAuto)
		for i, pol := range policies {
			if !reflect.DeepEqual(results[i], want) {
				t.Fatalf("trial %d (%v, policy %s): All = %v, want %v\nquery %s\ntree %s",
					trial, strategy, pol.name, results[i], want, q, tr)
			}
		}
		cases++
	}
	if cases < 50 {
		t.Fatalf("too few cases (%d)", cases)
	}
}

// TestEachStrategyKernelParity pins one query per strategy and checks
// probe-vs-kernel parity on a larger tree, where the density heuristic
// genuinely mixes paths: the acyclic semijoins, the X-property pinned
// enumeration, and the MAC backtracking search must each return identical
// answers under every kernel policy.
func TestEachStrategyKernelParity(t *testing.T) {
	defer consistency.SetKernelPolicy(consistency.KernelAuto)
	rng := rand.New(rand.NewSource(9))
	tr := tree.Random(rng, tree.RandomConfig{Nodes: 600, MaxChildren: 4, Alphabet: []string{"A", "B", "C"}})
	queries := []struct {
		src  string
		want Strategy
	}{
		{"Q(y) <- A(x), Child+(x, y), B(y), Child(y, z), C(z)", StrategyAcyclic},
		{"Q(y) <- A(x), Child+(x, y), B(y), Child*(y, z), C(z), Child+(x, z)", StrategyXProperty},
		{"Q(y) <- A(x), Child(x, y), B(y), Child+(x, z), C(z), Following(y, z)", StrategyBacktrack},
	}
	for _, qc := range queries {
		q := cq.MustParse(qc.src)
		pq := MustPrepare(q)
		if got := pq.Plan().Strategy; got != qc.want {
			t.Fatalf("%s: planned %v, want %v", qc.src, got, qc.want)
		}
		var base [][]tree.NodeID
		for _, pol := range []consistency.KernelPolicy{consistency.KernelNever, consistency.KernelAlways, consistency.KernelAuto} {
			consistency.SetKernelPolicy(pol)
			got := MustPrepare(q).All(tr)
			if base == nil {
				base = got
				if len(base) == 0 {
					t.Fatalf("%s: no answers — tree too sparse for a meaningful parity check", qc.src)
				}
				continue
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("%s: policy %d answers differ (%d vs %d tuples)", qc.src, pol, len(got), len(base))
			}
		}
		consistency.SetKernelPolicy(consistency.KernelAuto)
	}
}

// allAxes is the full axis vocabulary including inverses and the order
// extensions (the signature generator for the parity trials).
var allAxes = axis.All()
