package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/consistency"
	"repro/internal/tree"
)

// Parallel answer enumeration: the outer candidate loop — the first head
// dimension (X-property) or the first enumeration variable (acyclic) — is
// sharded across workers pulling candidate indexes from an atomic counter.
// Each worker borrows its own pooled evalScratch, so workers share only
// read-only state: the PinBase snapshot or the cloned semijoin-reduced
// sets. Results land in per-candidate slots (no locking), then merge.
//
// The backtracking strategy does not parallelize (its search is stateful
// through a single engine) and falls back to sequential enumeration.

// allParallel runs the parallel k-ary enumeration if the options and
// strategy allow it; ok=false means "use the sequential path".
func (p *Prepared) allParallel(d *Document, o EnumOptions) (out [][]tree.NodeID, ok bool) {
	if o.Parallel <= 1 || len(p.q.Head) == 0 || d.t.Len() == 0 {
		return nil, false
	}
	switch p.plan.Strategy {
	case StrategyXProperty:
		return p.polyAllParallel(d, o.Parallel, o.stop()), true
	case StrategyAcyclic:
		return p.acyclicAllParallel(d, o.Parallel, o.stop()), true
	default:
		return nil, false
	}
}

// monadicParallel runs the parallel monadic enumeration if worthwhile;
// ok=false means "use the sequential path". Only the X-property strategy
// benefits: its per-candidate pinned checks shard perfectly, whereas the
// acyclic monadic fast path is already O(answer) with no outer loop.
func (p *Prepared) monadicParallel(d *Document, o EnumOptions) (out []tree.NodeID, ok bool) {
	if o.Parallel <= 1 || d.t.Len() == 0 || p.plan.Strategy != StrategyXProperty {
		return nil, false
	}
	return p.polyMonadicParallel(d, o.Parallel, o.stop()), true
}

// shard processes every candidate index in [0, n) across the given number
// of workers. Each worker borrows a private evalScratch and calls the
// newWorker factory once, so per-worker state (pin runs, valuations, dedup
// maps) is allocated once per worker, not once per candidate. stop
// (optional) is the cancellation probe: each worker checks it before
// pulling the next candidate and drains without processing once it fires,
// so the shard returns — and every worker goroutine exits — within one
// outer iteration per worker of the cancel.
func (p *Prepared) shard(workers, n int, stop func() bool, newWorker func(s *evalScratch) func(i int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := p.scratch()
			defer p.release(s)
			fn := newWorker(s)
			for {
				if stop != nil && stop() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func (p *Prepared) polyAllParallel(d *Document, workers int, stop func() bool) [][]tree.NodeID {
	// The scratch-pooled PinBase is shared read-only by the workers; the
	// owning scratch is held (not released) until the shard completes, so
	// no concurrent evaluation can rebind it.
	s := p.scratch()
	defer p.release(s)
	pre, ok := runAC(p.alg, d, p.q, s.ac)
	if !ok {
		return nil
	}
	base := s.ac.PinBaseForIx(d.ix, p.q, pre)
	head := p.q.Head
	cands := base.Candidates(head[0]).Members()
	if len(cands) == 0 {
		return nil
	}
	results := make([][][]tree.NodeID, len(cands))
	p.shard(workers, len(cands), stop, func(s *evalScratch) func(i int) {
		run := s.ac.PinRunFor(base)
		tuple := make([]tree.NodeID, len(head))
		return func(i int) {
			tuple[0] = cands[i]
			if !run.Push(head[0], cands[i]) {
				return
			}
			var local [][]tree.NodeID
			polyEnumRec(run, head, 1, tuple, nil, func(tp []tree.NodeID) bool {
				local = append(local, copyTuple(tp))
				return true
			})
			run.Pop()
			results[i] = local
		}
	})
	var out [][]tree.NodeID
	for _, r := range results {
		out = append(out, r...)
	}
	sortTupleSlice(out)
	return out
}

func (p *Prepared) polyMonadicParallel(d *Document, workers int, stop func() bool) []tree.NodeID {
	out := []tree.NodeID{}
	s := p.scratch()
	defer p.release(s) // held across the shard; see polyAllParallel
	pre, ok := runAC(p.alg, d, p.q, s.ac)
	if !ok {
		return out
	}
	base := s.ac.PinBaseForIx(d.ix, p.q, pre)
	x := p.q.Head[0]
	cands := base.Candidates(x).Members()
	if len(cands) == 0 {
		return out
	}
	keep := make([]bool, len(cands))
	p.shard(workers, len(cands), stop, func(s *evalScratch) func(i int) {
		run := s.ac.PinRunFor(base)
		return func(i int) {
			if run.Push(x, cands[i]) {
				run.Pop()
				keep[i] = true
			}
		}
	})
	// cands is in increasing NodeID order, so the filtered copy is sorted.
	for i, v := range cands {
		if keep[i] {
			out = append(out, v)
		}
	}
	return out
}

func (p *Prepared) acyclicAllParallel(d *Document, workers int, stop func() bool) [][]tree.NodeID {
	t := d.t
	// Reduce once, then clone the scratch-owned sets so workers (and the
	// merge below) read them without holding the scratch.
	s := p.scratch()
	sets0, ok := acyclicReduce(d, p.q, p.forest, s)
	if !ok {
		p.release(s)
		return nil
	}
	sets := make([]*consistency.NodeSet, len(sets0))
	for i, s0 := range sets0 {
		sets[i] = s0.Clone()
	}
	p.release(s)

	order := p.forest.headOrder
	x0 := order[0] // a component root: no parent constraint on its values
	cands := sets[x0].Members()
	if len(cands) == 0 {
		return nil
	}
	results := make([][][]tree.NodeID, len(cands))
	p.shard(workers, len(cands), stop, func(*evalScratch) func(i int) {
		theta := make(consistency.Valuation, p.q.NumVars())
		tuple := make([]tree.NodeID, len(p.q.Head))
		// The dedup map persists across the worker's candidates: a tuple is
		// collected once per worker, and cross-worker repeats merge below.
		var local [][]tree.NodeID
		emit := dedupEmit(map[string]bool{}, func(tp []tree.NodeID) bool {
			local = append(local, copyTuple(tp))
			return true
		})
		return func(i int) {
			theta[x0] = cands[i]
			local = nil
			acyclicEnumFrom(t, p.q, p.forest, sets, order, theta, 1, tuple, nil, emit)
			results[i] = local
		}
	})
	// Distinct head tuples can recur across shards when x0 is not a head
	// variable; dedup while merging, then sort.
	seen := map[string]bool{}
	var out [][]tree.NodeID
	key := make([]byte, 0, len(p.q.Head)*4)
	for _, r := range results {
		for _, tp := range r {
			key = appendTupleKey(key[:0], tp)
			if seen[string(key)] {
				continue
			}
			seen[string(key)] = true
			out = append(out, tp)
		}
	}
	sortTupleSlice(out)
	return out
}
