package core

import (
	"fmt"
	"sync"

	"repro/internal/axis"
	"repro/internal/bitset"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// AcyclicEngine evaluates acyclic conjunctive queries (queries whose query
// graph's undirected shadow is a forest) in the style of Yannakakis'
// algorithm [Yannakakis 1981], cited in §1.1 as the reason APQs evaluate
// particularly well: a bottom-up semijoin pass then a top-down pass make
// the candidate sets globally consistent, after which answers enumerate
// backtrack-free.
//
// Works on every tree structure and every acyclic query regardless of
// signature — acyclicity, not the X-property, supplies tractability here.
//
// The engine is safe for concurrent use: per-call state lives in pooled
// scratches. (The one-shot methods re-derive the shadow forest per call
// and resolve the tree through a weak document cache; Prepare compiles
// the forest once instead.)
type AcyclicEngine struct {
	docs docCache
	pool sync.Pool // of *evalScratch
}

// NewAcyclicEngine returns the engine.
func NewAcyclicEngine() *AcyclicEngine { return &AcyclicEngine{} }

func (e *AcyclicEngine) scratch() *evalScratch {
	if s, ok := e.pool.Get().(*evalScratch); ok {
		return s
	}
	return newEvalScratch()
}

// shadowForest is a rooted-forest view of an acyclic query graph.
type shadowForest struct {
	q     *cq.Query
	roots []cq.Var
	// For each variable: the atom linking it to its forest parent, and
	// whether the atom points parent -> child (down) or child -> parent.
	parent    []cq.Var
	linkAtom  []int
	linkDown  []bool // atom is R(parent, child)
	children  [][]cq.Var
	postorder []cq.Var
	// headOrder lists the variables of components containing head
	// variables in parent-before-child order — the variables enumeration
	// assigns. Derived once at build time; see computeHeadOrder.
	headOrder []cq.Var
}

// buildShadowForest roots each component of the shadow; returns an error
// if the query is not acyclic.
func buildShadowForest(q *cq.Query) (*shadowForest, error) {
	g := cq.NewGraph(q)
	if !g.IsForest() {
		return nil, fmt.Errorf("core: query is not acyclic: %s", q)
	}
	n := q.NumVars()
	f := &shadowForest{
		q:        q,
		parent:   make([]cq.Var, n),
		linkAtom: make([]int, n),
		linkDown: make([]bool, n),
		children: make([][]cq.Var, n),
	}
	for i := range f.parent {
		f.parent[i] = cq.NilVar
		f.linkAtom[i] = -1
	}
	visited := make([]bool, n)
	for root := cq.Var(0); int(root) < n; root++ {
		if visited[root] {
			continue
		}
		f.roots = append(f.roots, root)
		// BFS over the shadow.
		queue := []cq.Var{root}
		visited[root] = true
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, e := range g.Out(x) {
				if !visited[e.To] {
					visited[e.To] = true
					f.parent[e.To] = x
					f.linkAtom[e.To] = e.AtomIndex
					f.linkDown[e.To] = true
					f.children[x] = append(f.children[x], e.To)
					queue = append(queue, e.To)
				}
			}
			for _, e := range g.In(x) {
				if !visited[e.From] {
					visited[e.From] = true
					f.parent[e.From] = x
					f.linkAtom[e.From] = e.AtomIndex
					f.linkDown[e.From] = false
					f.children[x] = append(f.children[x], e.From)
					queue = append(queue, e.From)
				}
			}
		}
	}
	// Postorder: children before parents.
	state := make([]byte, n)
	var dfs func(x cq.Var)
	dfs = func(x cq.Var) {
		state[x] = 1
		for _, c := range f.children[x] {
			if state[c] == 0 {
				dfs(c)
			}
		}
		f.postorder = append(f.postorder, x)
	}
	for _, r := range f.roots {
		dfs(r)
	}
	f.headOrder = computeHeadOrder(q, f)
	return f, nil
}

// computeHeadOrder returns the variables of forest components containing
// head variables, in parent-before-child order. (Non-head components only
// contribute their nonemptiness, established by acyclicReduce.)
func computeHeadOrder(q *cq.Query, f *shadowForest) []cq.Var {
	comp := make([]int, q.NumVars())
	for i := range comp {
		comp[i] = -1
	}
	var mark func(x cq.Var, c int)
	mark = func(x cq.Var, c int) {
		comp[x] = c
		for _, ch := range f.children[x] {
			mark(ch, c)
		}
	}
	for ci, r := range f.roots {
		mark(r, ci)
	}
	headComps := map[int]bool{}
	for _, h := range q.Head {
		headComps[comp[h]] = true
	}
	var order []cq.Var
	for i := len(f.postorder) - 1; i >= 0; i-- {
		x := f.postorder[i]
		if headComps[comp[x]] {
			order = append(order, x)
		}
	}
	return order
}

// atomHolds evaluates the linking atom between child c and its parent for
// concrete nodes: vc at the child, vp at the parent.
func (f *shadowForest) atomHolds(t *tree.Tree, c cq.Var, vp, vc tree.NodeID) bool {
	at := f.q.Atoms[f.linkAtom[c]]
	if f.linkDown[c] {
		return axis.Holds(t, at.Axis, vp, vc)
	}
	return axis.Holds(t, at.Axis, vc, vp)
}

// semijoinPrune removes from keep every node without an atom-support in
// against: with forward=true it keeps v iff ∃w ∈ against: a(v, w) (v on
// the atom's left-hand side), with forward=false it keeps w iff ∃v ∈
// against: a(v, w). Large semijoins run through the bulk axis image
// kernels — scatter `against` to pre-rank words, one whole-set kernel
// pass, then an O(|keep|) membership filter — turning the nested
// O(|keep|·|against|) probe loop into a few linear sweeps; small ones keep
// the nested loop (the kernel's fixed O(n) cost would dominate). The two
// paths compute the identical surviving set.
func semijoinPrune(d *Document, s *evalScratch, a axis.Axis, keep, against *consistency.NodeSet, forward bool) {
	t := d.t
	doomed := s.doomed[:0]
	defer func() { s.doomed = doomed[:0] }()
	if useSemijoinKernel(keep.Len(), against.Len(), t.Len()) {
		nw := bitset.Words(t.Len())
		s.srcWords = bitset.Grow(s.srcWords, nw)
		s.imgWords = bitset.Resize(s.imgWords, nw)
		against.ForEach(func(w tree.NodeID) bool {
			bitset.Set(s.srcWords, t.Pre(w))
			return true
		})
		if forward {
			consistency.Preimage(a, d.ix, s.srcWords, s.imgWords)
		} else {
			consistency.Image(a, d.ix, s.srcWords, s.imgWords)
		}
		keep.ForEach(func(v tree.NodeID) bool {
			if !bitset.Test(s.imgWords, t.Pre(v)) {
				doomed = append(doomed, v)
			}
			return true
		})
		for _, v := range doomed {
			keep.Remove(v)
		}
		return
	}
	keep.ForEach(func(v tree.NodeID) bool {
		found := false
		against.ForEach(func(w tree.NodeID) bool {
			u1, u2 := v, w
			if !forward {
				u1, u2 = w, v
			}
			if axis.Holds(t, a, u1, u2) {
				found = true
				return false
			}
			return true
		})
		if !found {
			doomed = append(doomed, v)
		}
		return true
	})
	for _, v := range doomed {
		keep.Remove(v)
	}
}

// useSemijoinKernel is the acyclic engine's density heuristic: the nested
// probe loop costs ~|keep|·|against| axis tests, the kernel path
// O(|against| + n + |keep|) — break-even near |keep|·|against| = n. The
// consistency package's KernelPolicy override applies here too, so the
// parity tests can pin either path.
func useSemijoinKernel(keep, against, n int) bool {
	switch consistency.CurrentKernelPolicy() {
	case consistency.KernelAlways:
		return true
	case consistency.KernelNever:
		return false
	}
	return keep*against >= n
}

// acyclicReduce runs the two semijoin passes and returns the globally
// consistent candidate sets, or ok=false if some set empties. The returned
// sets are scratch-owned: valid until the scratch's next use.
func acyclicReduce(d *Document, q *cq.Query, f *shadowForest, s *evalScratch) ([]*consistency.NodeSet, bool) {
	init := s.ac.InitialPrevaluationIx(d.ix, q)
	sets := init.Sets
	// Bottom-up: prune parent candidates lacking a consistent child value.
	// The linking atom is R(parent, child) when linkDown — the parent is
	// then the atom's left-hand side (forward semijoin) — and
	// R(child, parent) otherwise.
	for _, x := range f.postorder {
		p := f.parent[x]
		if p == cq.NilVar {
			continue
		}
		if sets[x].Empty() {
			return nil, false
		}
		at := q.Atoms[f.linkAtom[x]]
		semijoinPrune(d, s, at.Axis, sets[p], sets[x], f.linkDown[x])
	}
	// Top-down: prune child candidates lacking a consistent parent value
	// (the child is the atom's right-hand side when linkDown).
	for i := len(f.postorder) - 1; i >= 0; i-- {
		x := f.postorder[i]
		p := f.parent[x]
		if p == cq.NilVar {
			if sets[x].Empty() {
				return nil, false
			}
			continue
		}
		at := q.Atoms[f.linkAtom[x]]
		semijoinPrune(d, s, at.Axis, sets[x], sets[p], !f.linkDown[x])
		if sets[x].Empty() {
			return nil, false
		}
	}
	return sets, true
}

// acyclicBool decides an acyclic query against a prebuilt shadow forest:
// satisfiable iff the semijoin reduction leaves every candidate set
// nonempty.
func acyclicBool(d *Document, q *cq.Query, f *shadowForest, s *evalScratch) bool {
	if q.NumVars() == 0 {
		return true // empty conjunction
	}
	if d.t.Len() == 0 {
		return false
	}
	_, ok := acyclicReduce(d, q, f, s)
	return ok
}

// EvalBoolean decides an acyclic query: satisfiable iff the semijoin
// reduction leaves every candidate set nonempty.
func (e *AcyclicEngine) EvalBoolean(t *tree.Tree, q *cq.Query) bool {
	f, err := buildShadowForest(q)
	if err != nil {
		panic(err)
	}
	s := e.scratch()
	defer e.pool.Put(s)
	return acyclicBool(e.docs.get(t), q, f, s)
}

// acyclicSatisfaction returns one consistent valuation, or nil.
func acyclicSatisfaction(d *Document, q *cq.Query, f *shadowForest, s *evalScratch) consistency.Valuation {
	if q.NumVars() == 0 {
		return consistency.Valuation{}
	}
	t := d.t
	if t.Len() == 0 {
		return nil
	}
	sets, ok := acyclicReduce(d, q, f, s)
	if !ok {
		return nil
	}
	theta := make(consistency.Valuation, q.NumVars())
	for i := range theta {
		theta[i] = tree.NilNode
	}
	// Assign top-down; after reduction every parent choice extends.
	for i := len(f.postorder) - 1; i >= 0; i-- {
		x := f.postorder[i]
		p := f.parent[x]
		if p == cq.NilVar {
			sets[x].ForEach(func(v tree.NodeID) bool { theta[x] = v; return false })
			continue
		}
		vp := theta[p]
		sets[x].ForEach(func(vc tree.NodeID) bool {
			if f.atomHolds(t, x, vp, vc) {
				theta[x] = vc
				return false
			}
			return true
		})
		if theta[x] == tree.NilNode {
			panic("core: acyclic reduction left a parent value without child support")
		}
	}
	return theta
}

// Satisfaction returns one consistent valuation, or nil.
func (e *AcyclicEngine) Satisfaction(t *tree.Tree, q *cq.Query) consistency.Valuation {
	f, err := buildShadowForest(q)
	if err != nil {
		panic(err)
	}
	s := e.scratch()
	defer e.pool.Put(s)
	return acyclicSatisfaction(e.docs.get(t), q, f, s)
}

// acyclicEnumFrom runs the backtrack-free enumeration recursion from
// dimension i of order, assigning into theta and passing each complete
// head tuple (reused buffer) to emit — callers wrap emit with dedupEmit,
// since distinct assignments can project to the same head tuple. Returns
// false when enumeration should stop. stop (optional) is the context
// cancellation probe, checked once per outer (i == 0) candidate.
func acyclicEnumFrom(t *tree.Tree, q *cq.Query, f *shadowForest, sets []*consistency.NodeSet,
	order []cq.Var, theta consistency.Valuation, i int,
	tuple []tree.NodeID, stop func() bool, emit func([]tree.NodeID) bool) bool {
	if i == len(order) {
		for j, h := range q.Head {
			tuple[j] = theta[h]
		}
		return emit(tuple)
	}
	x := order[i]
	p := f.parent[x]
	cont := true
	sets[x].ForEach(func(v tree.NodeID) bool {
		if i == 0 && stop != nil && stop() {
			cont = false
			return false
		}
		if p != cq.NilVar && !f.atomHolds(t, x, theta[p], v) {
			return true
		}
		theta[x] = v
		cont = acyclicEnumFrom(t, q, f, sets, order, theta, i+1, tuple, stop, emit)
		return cont
	})
	return cont
}

// acyclicForEachTuple streams the distinct head tuples of the query
// answer. Enumeration is backtrack-free per component after reduction;
// the tuple passed to fn is reused (copy to retain); fn returns false to
// stop early.
func acyclicForEachTuple(d *Document, q *cq.Query, f *shadowForest, s *evalScratch, stop func() bool, fn func(tuple []tree.NodeID) bool) {
	if len(q.Head) == 0 {
		if acyclicBool(d, q, f, s) {
			fn(nil)
		}
		return
	}
	t := d.t
	if t.Len() == 0 {
		return
	}
	sets, ok := acyclicReduce(d, q, f, s)
	if !ok {
		return
	}
	theta := make(consistency.Valuation, q.NumVars())
	tuple := make([]tree.NodeID, len(q.Head))
	// headOrder always contains every head variable (head components are
	// enumerated whole), so when it holds nothing else, distinct
	// assignments project to distinct tuples and the O(answers) dedup set
	// can be skipped — streaming a projection-free relation is then
	// memory-flat however many answers it has.
	emit := fn
	if enumNeedsDedup(q.Head, f.headOrder) {
		emit = dedupEmit(map[string]bool{}, fn)
	}
	acyclicEnumFrom(t, q, f, sets, f.headOrder, theta, 0, tuple, stop, emit)
}

// acyclicForEachNode streams the answer of a monadic acyclic query in
// increasing NodeID order — without any enumeration recursion: after the
// two semijoin passes the candidate sets are globally consistent
// (Yannakakis), so every surviving candidate of the head variable extends
// to a full solution and the reduced set IS the answer.
func acyclicForEachNode(d *Document, q *cq.Query, f *shadowForest, s *evalScratch, stop func() bool, fn func(v tree.NodeID) bool) {
	if d.t.Len() == 0 {
		return
	}
	sets, ok := acyclicReduce(d, q, f, s)
	if !ok {
		return
	}
	if stop == nil {
		sets[q.Head[0]].ForEach(fn)
		return
	}
	sets[q.Head[0]].ForEach(func(v tree.NodeID) bool {
		if stop() {
			return false
		}
		return fn(v)
	})
}

// acyclicAll materializes acyclicForEachTuple, sorted lexicographically.
func acyclicAll(d *Document, q *cq.Query, f *shadowForest, s *evalScratch) [][]tree.NodeID {
	return collectSortedTuples(func(fn func([]tree.NodeID) bool) {
		acyclicForEachTuple(d, q, f, s, nil, fn)
	})
}

// EvalAll enumerates the distinct head tuples of the query answer, in
// lexicographic NodeID order.
func (e *AcyclicEngine) EvalAll(t *tree.Tree, q *cq.Query) [][]tree.NodeID {
	f, err := buildShadowForest(q)
	if err != nil {
		panic(err)
	}
	s := e.scratch()
	defer e.pool.Put(s)
	return acyclicAll(e.docs.get(t), q, f, s)
}
