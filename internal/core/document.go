package core

import (
	"runtime"
	"sync"
	"weak"

	"repro/internal/consistency"
	"repro/internal/tree"
)

// Document is a tree paired with every tree-derived structure evaluation
// needs — the sibling and (preEnd, pre) orderings, the full-node-set
// words, and the per-label candidate bitsets — built exactly once and
// shared by all strategies. It is the data-side counterpart of a compiled
// query: where Prepare pays the query-only cost once, NewDocument pays the
// per-tree cost once, and any number of Prepared queries evaluate against
// the same *Document from any number of goroutines.
//
// A Document is immutable after construction and safe for concurrent use.
type Document struct {
	t  *tree.Tree
	ix *consistency.TreeIndex
}

// NewDocument indexes t for repeated evaluation. The tree must not be
// mutated afterwards (Tree is immutable by contract after construction).
func NewDocument(t *tree.Tree) *Document {
	if t == nil {
		panic("core: NewDocument of nil tree")
	}
	return &Document{t: t, ix: consistency.NewTreeIndex(t)}
}

// Tree returns the underlying tree.
func (d *Document) Tree() *tree.Tree { return d.t }

// Len returns the number of tree nodes.
func (d *Document) Len() int { return d.t.Len() }

// SizeBytes returns the approximate heap footprint of the document in
// bytes: the tree's backing arrays plus the tree index (orderings, rank
// tables, node-set words, and the label bitsets materialized so far).
// Corpus memory accounting and eviction use this figure; label bitsets
// are built lazily, so it converges once the query mix has been seen.
func (d *Document) SizeBytes() int64 { return d.t.SizeBytes() + d.ix.SizeBytes() }

// docCache backs the legacy *Tree entry points: a weak map from tree
// pointer to its Document, so repeated evaluation against the same tree
// reuses one set of tree indexes without keeping dead trees (or their
// documents) alive. Each Engine owns one cache shared by every Prepared it
// compiles; a standalone Prepare gets a private cache.
type docCache struct {
	mu sync.Mutex
	m  map[*tree.Tree]weak.Pointer[Document]
}

// get returns the cached Document for t, building and caching it if
// missing (or if the previous one was garbage-collected).
func (c *docCache) get(t *tree.Tree) *Document {
	c.mu.Lock()
	if wp, ok := c.m[t]; ok {
		if d := wp.Value(); d != nil {
			c.mu.Unlock()
			return d
		}
	}
	c.mu.Unlock()
	// Build outside the lock: indexing is the expensive part. A concurrent
	// racer may build too; the first to publish wins and the loser's
	// document is dropped before anyone evaluates against it.
	d := NewDocument(t)
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[*tree.Tree]weak.Pointer[Document])
	}
	if wp, ok := c.m[t]; ok {
		if existing := wp.Value(); existing != nil {
			c.mu.Unlock()
			return existing
		}
	}
	c.m[t] = weak.Make(d)
	c.mu.Unlock()
	// When the document dies, drop its cache entry (unless the slot was
	// already re-populated with a live document for the same tree).
	runtime.AddCleanup(d, c.evict, t)
	return d
}

func (c *docCache) evict(key *tree.Tree) {
	c.mu.Lock()
	if wp, ok := c.m[key]; ok && wp.Value() == nil {
		delete(c.m, key)
	}
	c.mu.Unlock()
}
