package core

import (
	"math/rand"
	"testing"

	"repro/internal/axis"
	"repro/internal/cq"
	"repro/internal/tree"
)

// Example 4.5: the relations <pre (DocOrder), Succ<pre (DocOrderSucc) and
// Self may be added to τ1 = {Child+, Child*} while retaining tractability.

func TestExample45ExtendedSignatureTractable(t *testing.T) {
	sig := []axis.Axis{
		axis.ChildPlus, axis.ChildStar, axis.Self,
		axis.DocOrder, axis.DocOrderSucc,
	}
	c := Classify(sig)
	if c.Complexity != PTime {
		t.Fatalf("extended τ1 should be tractable: %v", c)
	}
	if c.Order != axis.PreOrder {
		t.Errorf("witnessing order should be <pre, got %v", c.Order)
	}
}

func TestExample45QueriesMatchOracle(t *testing.T) {
	sig := []axis.Axis{
		axis.ChildPlus, axis.ChildStar, axis.Self,
		axis.DocOrder, axis.DocOrderSucc,
	}
	pe, err := NewPolyEngine(sig)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(45))
	alphabet := []string{"A", "B"}
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(9)
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: n, MaxChildren: 3, Alphabet: alphabet,
		})
		q := randomQuery(rng, sig, alphabet, 1+rng.Intn(3), rng.Intn(4), rng.Intn(2))
		want := ReferenceEvalBoolean(tr, q)
		if got := pe.EvalBoolean(tr, q); got != want {
			t.Fatalf("trial %d: poly %v oracle %v\nquery %s\ntree %s", trial, got, want, q, tr)
		}
		// Both AC engines must agree on the extended axes too.
		pe.SetAlgorithm(HornAC)
		if got := pe.EvalBoolean(tr, q); got != want {
			t.Fatalf("trial %d: horn %v oracle %v\nquery %s\ntree %s", trial, got, want, q, tr)
		}
		pe.SetAlgorithm(FastAC)
	}
}

func TestDocOrderQuerySemantics(t *testing.T) {
	// "A before B in document order" — a relation XPath cannot state.
	tr := tree.MustParseTerm("R(A(B),B,A)")
	q := cq.New()
	x := q.AddVar("x")
	y := q.AddVar("y")
	q.AddLabel("A", x)
	q.AddLabel("B", y)
	q.AddAtom(axis.DocOrder, x, y)
	q.SetHead(x, y)
	// A nodes at pre 1 and 5; B at pre 2 and 4. Pairs with pre(A) < pre(B):
	// (1,2), (1,4) — the late A (pre 5) precedes nothing.
	got := NewEngine().EvalAll(tr, q)
	if len(got) != 2 {
		t.Fatalf("want 2 pairs, got %v", got)
	}
	for _, tup := range got {
		if !(tr.Pre(tup[0]) < tr.Pre(tup[1])) {
			t.Errorf("pair %v violates document order", tup)
		}
	}
}

func TestDocOrderSuccChainPinsTraversal(t *testing.T) {
	// Succ<pre chains walk the document order node by node.
	tr := tree.MustParseTerm("A(B(C),D)")
	q := cq.MustParse("Q(x) <- A(w), DocOrderSucc(w, x)")
	got := NewEngine().EvalMonadic(tr, q)
	if len(got) != 1 || !tr.HasLabel(got[0], "B") {
		t.Fatalf("successor of the root in document order should be B: %v", got)
	}
}

func TestInverseAxesInQueries(t *testing.T) {
	// Inverse axes are redundant (§1.1) but supported: Parent/Ancestor
	// queries must agree with their forward formulations.
	rng := rand.New(rand.NewSource(77))
	e := NewEngine()
	for trial := 0; trial < 60; trial++ {
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(12), MaxChildren: 3, Alphabet: []string{"A", "B"},
		})
		fwd := cq.MustParse("Q(y) <- A(x), Child+(x, y), B(y)")
		bwd := cq.MustParse("Q(y) <- B(y), Ancestor+(y, x), A(x)")
		a := e.EvalMonadic(tr, fwd)
		b := e.EvalMonadic(tr, bwd)
		if len(a) != len(b) {
			t.Fatalf("forward/backward disagree on %s: %v vs %v", tr, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("forward/backward disagree on %s", tr)
			}
		}
	}
}

func TestSelfAxisCollapsesVariables(t *testing.T) {
	tr := tree.MustParseTerm("A|B(C)")
	q := cq.MustParse("Q() <- A(x), Self(x, y), B(y)")
	if !NewEngine().EvalBoolean(tr, q) {
		t.Errorf("Self should allow x = y on a multi-labeled node")
	}
	tr2 := tree.MustParseTerm("A(B)")
	if NewEngine().EvalBoolean(tr2, q) {
		t.Errorf("no node carries both labels")
	}
}

func TestBeyondAxSignatureNotOverclaimed(t *testing.T) {
	// {Child, DocOrder} has no common X order, but hardness is not
	// proved by the paper — the classification must say so.
	c := Classify([]axis.Axis{axis.Child, axis.DocOrder})
	if c.Complexity != NPComplete {
		t.Fatalf("no common order exists; expected the NP side, got %v", c)
	}
	if c.Theorem == "" || c.Theorem == "Thm 1.1" {
		t.Errorf("extension signatures must carry the not-claimed caveat, got %q", c.Theorem)
	}
}
