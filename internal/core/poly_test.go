package core

import (
	"math/rand"
	"testing"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

func TestPolyEngineBinaryAnswers(t *testing.T) {
	// Binary (2-ary) answer enumeration on a tractable signature against
	// the brute-force oracle.
	rng := rand.New(rand.NewSource(88))
	pe, err := NewPolyEngine([]axis.Axis{axis.ChildPlus, axis.ChildStar})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(8), MaxChildren: 3, Alphabet: []string{"A", "B"},
		})
		q := cq.MustParse("Q(x, y) <- A(x), Child+(x, y), B(y)")
		want := ReferenceEvalAll(tr, q)
		got := pe.EvalAll(tr, q)
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d answers, want %d on %s", trial, len(got), len(want), tr)
		}
		for i := range want {
			if want[i][0] != got[i][0] || want[i][1] != got[i][1] {
				t.Fatalf("trial %d: answers differ on %s", trial, tr)
			}
		}
	}
}

func TestPolyEngineBooleanAnswerShape(t *testing.T) {
	tr := tree.MustParseTerm("A(B)")
	pe, err := NewPolyEngine([]axis.Axis{axis.ChildPlus})
	if err != nil {
		t.Fatal(err)
	}
	sat := cq.MustParse("Q() <- A(x), Child+(x, y), B(y)")
	if got := pe.EvalAll(tr, sat); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("satisfiable Boolean query should yield one empty tuple: %v", got)
	}
	unsat := cq.MustParse("Q() <- B(x), Child+(x, y), A(y)")
	if got := pe.EvalAll(tr, unsat); got != nil {
		t.Errorf("unsatisfiable Boolean query should yield nil: %v", got)
	}
}

func TestPolyEngineSatisfactionUsesWitnessOrder(t *testing.T) {
	// Theorem 3.5 / Lemma 3.4: the satisfaction is the minimum valuation
	// with respect to the witnessing order. For {Following} with <post,
	// the returned nodes are the <post-minimal arc-consistent choices.
	tr := tree.MustParseTerm("R(A,B,A,B)")
	pe, err := NewPolyEngine([]axis.Axis{axis.Following})
	if err != nil {
		t.Fatal(err)
	}
	if pe.Order() != axis.PostOrder {
		t.Fatalf("order = %v, want <post", pe.Order())
	}
	q := cq.MustParse("Q() <- A(x), Following(x, y), B(y)")
	theta := pe.Satisfaction(tr, q)
	if theta == nil {
		t.Fatal("satisfiable")
	}
	if !consistency.Consistent(tr, q, theta) {
		t.Fatal("inconsistent satisfaction")
	}
	x, _ := q.VarByName("x")
	// The <post-minimal arc-consistent A is the first A leaf.
	if !tr.HasLabel(theta[x], "A") || tr.Pre(theta[x]) != 1 {
		t.Errorf("expected the first A (pre 1), got node %d", theta[x])
	}
}

func TestPolyEngineEmptyTree(t *testing.T) {
	empty := tree.NewBuilder(0).Build()
	pe, err := NewPolyEngine([]axis.Axis{axis.ChildPlus})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse("Q() <- A(x)")
	if pe.EvalBoolean(empty, q) {
		t.Errorf("query with variables cannot hold on the empty tree")
	}
	trivial := cq.MustParse("Q() <- true")
	if !pe.EvalBoolean(empty, trivial) {
		t.Errorf("the empty conjunction holds vacuously")
	}
}

func TestCheckTupleArityPanics(t *testing.T) {
	pe, _ := NewPolyEngine([]axis.Axis{axis.ChildPlus})
	q := cq.MustParse("Q(x) <- A(x)")
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on arity mismatch")
		}
	}()
	pe.CheckTuple(tree.MustParseTerm("A"), q, []tree.NodeID{0, 0})
}

func TestEngineStepsMetricMonotone(t *testing.T) {
	// The Steps metric must reflect work done (used by the hardness
	// benches): a forced search reports more steps than a trivial one.
	tr := tree.MustParseTerm("A(B,B,B)")
	easy := cq.MustParse("Q() <- A(x)")
	e := NewBacktrackEngine()
	e.EvalBoolean(tr, easy)
	easySteps := e.Steps()
	hard := cq.MustParse("Q() <- B(x), B(y), B(z), Following(x, y), Following(y, z)")
	e.EvalBoolean(tr, hard)
	if e.Steps() < easySteps {
		t.Errorf("steps not monotone with work: easy %d, hard %d", easySteps, e.Steps())
	}
}
