package core

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/tree"
)

// Containment of conjunctive queries over trees (§2: Q ⊆ Q' iff Q'
// returns at least the tuples of Q on every tree). Exact containment over
// the infinite class of trees is beyond this package's scope; what the
// paper's proofs use — and what the test suite needs — is refutation and
// bounded verification: find a counterexample tree, or verify containment
// exhaustively up to a size bound.

// Counterexample describes a tree on which containment fails.
type Counterexample struct {
	Tree  *tree.Tree
	Tuple []tree.NodeID // a tuple answered by Q but not by Q'
}

// String renders the counterexample.
func (c *Counterexample) String() string {
	return fmt.Sprintf("tree %s, tuple %v", c.Tree, c.Tuple)
}

// CheckContainment exhaustively checks Q ⊆ Q' on all trees with up to
// maxNodes nodes over the alphabet (single-labeled). It returns nil if no
// counterexample exists within the bound — evidence, not proof, of
// containment; a non-nil result refutes containment outright.
//
// Q and Q' must have equal head arity.
func CheckContainment(q, qPrime *cq.Query, maxNodes int, alphabet []string) *Counterexample {
	if len(q.Head) != len(qPrime.Head) {
		panic(fmt.Sprintf("core: CheckContainment arities %d vs %d", len(q.Head), len(qPrime.Head)))
	}
	e := NewEngine()
	var ce *Counterexample
	tree.EnumerateAll(maxNodes, alphabet, func(t *tree.Tree) bool {
		left := e.EvalAll(t, q)
		if len(left) == 0 {
			return true
		}
		right := map[string]bool{}
		for _, tup := range e.EvalAll(t, qPrime) {
			right[fmt.Sprint(tup)] = true
		}
		for _, tup := range left {
			if !right[fmt.Sprint(tup)] {
				ce = &Counterexample{Tree: t, Tuple: tup}
				return false
			}
		}
		return true
	})
	return ce
}

// CheckEquivalence checks both containment directions within the bound,
// returning the first counterexample found (direction reported by which
// query produced the extra tuple: probe with CheckContainment twice).
func CheckEquivalence(q, qPrime *cq.Query, maxNodes int, alphabet []string) (qNotContained, qPrimeNotContained *Counterexample) {
	return CheckContainment(q, qPrime, maxNodes, alphabet),
		CheckContainment(qPrime, q, maxNodes, alphabet)
}
