package core

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// ACAlgorithm selects the arc-consistency implementation used by the
// polynomial-time engine.
type ACAlgorithm int

// Available arc-consistency engines (cross-checked in tests; compared in
// the ablation benchmarks).
const (
	// FastAC is the optimized deletion-only worklist engine (default).
	FastAC ACAlgorithm = iota
	// HornAC is the paper-exact Horn-SAT reduction of Proposition 3.1.
	HornAC
)

func runAC(alg ACAlgorithm, t *tree.Tree, q *cq.Query) (*consistency.Prevaluation, bool) {
	switch alg {
	case FastAC:
		return consistency.FastAC(t, q)
	case HornAC:
		return consistency.HornAC(t, q)
	default:
		panic(fmt.Sprintf("core: invalid ACAlgorithm %d", int(alg)))
	}
}

// PolyEngine evaluates conjunctive queries over a tractable signature via
// Theorem 3.5: compute the subset-maximal arc-consistent prevaluation; the
// query is satisfiable iff it exists, and the minimum valuation with
// respect to the witnessing X-property order is then a satisfaction
// (Lemma 3.4).
//
// PolyEngine is only sound for queries whose signature admits a common
// X-property order; New*-constructors verify this.
type PolyEngine struct {
	order axis.Order
	alg   ACAlgorithm
}

// NewPolyEngine returns a PolyEngine for queries over the given signature,
// or an error if the signature is intractable (no common X-property order
// exists — use the backtracking engine or rewrite to an APQ instead).
func NewPolyEngine(axes []axis.Axis) (*PolyEngine, error) {
	o, ok := axis.CommonXOrder(axes)
	if !ok {
		return nil, fmt.Errorf("core: no common X-property order for signature %v (NP-complete per Theorem 1.1)", axes)
	}
	return &PolyEngine{order: o, alg: FastAC}, nil
}

// NewPolyEngineFor returns a PolyEngine suitable for q's signature.
func NewPolyEngineFor(q *cq.Query) (*PolyEngine, error) {
	return NewPolyEngine(q.Signature())
}

// SetAlgorithm switches the arc-consistency implementation.
func (e *PolyEngine) SetAlgorithm(alg ACAlgorithm) { e.alg = alg }

// Order returns the X-property witnessing order used for minimum
// valuations.
func (e *PolyEngine) Order() axis.Order { return e.order }

// EvalBoolean decides a Boolean query in time O(‖A‖·|Q|): true iff an
// arc-consistent prevaluation exists (Theorem 3.5). Head variables, if
// any, are ignored (the query is treated as its Boolean projection).
func (e *PolyEngine) EvalBoolean(t *tree.Tree, q *cq.Query) bool {
	_, ok := runAC(e.alg, t, q)
	return ok
}

// Satisfaction returns a consistent valuation of all query variables (the
// minimum valuation of the maximal arc-consistent prevaluation, Lemma
// 3.4), or nil if the query is unsatisfiable on t.
func (e *PolyEngine) Satisfaction(t *tree.Tree, q *cq.Query) consistency.Valuation {
	p, ok := runAC(e.alg, t, q)
	if !ok {
		return nil
	}
	if q.NumVars() == 0 {
		return consistency.Valuation{}
	}
	theta := p.MinimumValuation(t, e.order)
	return theta
}

// CheckTuple decides whether the tuple (one node per head variable) is in
// the query answer, by the singleton-restriction argument below Theorem
// 3.5: restrict each head variable's candidates to the given node and test
// Boolean satisfiability.
func (e *PolyEngine) CheckTuple(t *tree.Tree, q *cq.Query, tuple []tree.NodeID) bool {
	if len(tuple) != len(q.Head) {
		panic(fmt.Sprintf("core: CheckTuple arity %d, query arity %d", len(tuple), len(q.Head)))
	}
	_, ok := consistency.PinnedAC(e.consistencyEngine(), t, q, q.Head, tuple)
	return ok
}

func (e *PolyEngine) consistencyEngine() consistency.Engine {
	switch e.alg {
	case FastAC:
		return consistency.EngineFast
	case HornAC:
		return consistency.EngineHorn
	default:
		panic(fmt.Sprintf("core: invalid ACAlgorithm %d", int(e.alg)))
	}
}

// EvalAll enumerates the full answer relation of a k-ary query: all
// tuples 〈a1..ak〉 such that the query holds. Per the paper this costs
// O(|A|^k · ‖A‖ · |Q|); the implementation prunes candidates to the
// arc-consistent sets of the head variables before tuple checking.
func (e *PolyEngine) EvalAll(t *tree.Tree, q *cq.Query) [][]tree.NodeID {
	if len(q.Head) == 0 {
		if e.EvalBoolean(t, q) {
			return [][]tree.NodeID{{}}
		}
		return nil
	}
	p, ok := runAC(e.alg, t, q)
	if !ok {
		return nil
	}
	candidates := make([][]tree.NodeID, len(q.Head))
	for i, x := range q.Head {
		candidates[i] = p.Sets[x].Members()
	}
	var out [][]tree.NodeID
	tuple := make([]tree.NodeID, len(q.Head))
	var rec func(i int)
	rec = func(i int) {
		if i == len(tuple) {
			if e.CheckTuple(t, q, tuple) {
				out = append(out, append([]tree.NodeID(nil), tuple...))
			}
			return
		}
		for _, v := range candidates[i] {
			tuple[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
