package core

import (
	"fmt"
	"sync"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// ACAlgorithm selects the arc-consistency implementation used by the
// polynomial-time engine.
type ACAlgorithm int

// Available arc-consistency engines (cross-checked in tests; compared in
// the ablation benchmarks).
const (
	// FastAC is the optimized deletion-only worklist engine (default).
	FastAC ACAlgorithm = iota
	// HornAC is the paper-exact Horn-SAT reduction of Proposition 3.1.
	HornAC
)

// runAC dispatches one arc-consistency run against the document's shared
// tree index. sc is used by FastAC for buffer reuse (nil = allocate
// fresh); the paper-exact HornAC materializes relations and ignores both.
func runAC(alg ACAlgorithm, d *Document, q *cq.Query, sc *consistency.Scratch) (*consistency.Prevaluation, bool) {
	switch alg {
	case FastAC:
		if sc == nil {
			sc = consistency.NewScratch()
		}
		return sc.FastACIx(d.ix, q)
	case HornAC:
		return consistency.HornAC(d.t, q)
	default:
		panic(fmt.Sprintf("core: invalid ACAlgorithm %d", int(alg)))
	}
}

// PolyEngine evaluates conjunctive queries over a tractable signature via
// Theorem 3.5: compute the subset-maximal arc-consistent prevaluation; the
// query is satisfiable iff it exists, and the minimum valuation with
// respect to the witnessing X-property order is then a satisfaction
// (Lemma 3.4).
//
// PolyEngine is only sound for queries whose signature admits a common
// X-property order; New*-constructors verify this. Evaluation methods are
// safe for concurrent use (per-call buffers are pooled); SetAlgorithm is
// not safe to call concurrently with evaluation.
type PolyEngine struct {
	order axis.Order
	alg   ACAlgorithm
	docs  docCache
	pool  sync.Pool // of *consistency.Scratch
}

// NewPolyEngine returns a PolyEngine for queries over the given signature,
// or an error if the signature is intractable (no common X-property order
// exists — use the backtracking engine or rewrite to an APQ instead).
func NewPolyEngine(axes []axis.Axis) (*PolyEngine, error) {
	o, ok := axis.CommonXOrder(axes)
	if !ok {
		return nil, fmt.Errorf("core: no common X-property order for signature %v (NP-complete per Theorem 1.1)", axes)
	}
	return &PolyEngine{order: o, alg: FastAC}, nil
}

// NewPolyEngineFor returns a PolyEngine suitable for q's signature.
func NewPolyEngineFor(q *cq.Query) (*PolyEngine, error) {
	return NewPolyEngine(q.Signature())
}

// SetAlgorithm switches the arc-consistency implementation.
func (e *PolyEngine) SetAlgorithm(alg ACAlgorithm) { e.alg = alg }

// Order returns the X-property witnessing order used for minimum
// valuations.
func (e *PolyEngine) Order() axis.Order { return e.order }

func (e *PolyEngine) scratch() *consistency.Scratch {
	if s, ok := e.pool.Get().(*consistency.Scratch); ok {
		return s
	}
	return consistency.NewScratch()
}

// polyBool decides a Boolean query: true iff an arc-consistent
// prevaluation exists (Theorem 3.5).
func polyBool(d *Document, q *cq.Query, alg ACAlgorithm, sc *consistency.Scratch) bool {
	_, ok := runAC(alg, d, q, sc)
	return ok
}

// EvalBoolean decides a Boolean query in time O(‖A‖·|Q|): true iff an
// arc-consistent prevaluation exists (Theorem 3.5). Head variables, if
// any, are ignored (the query is treated as its Boolean projection).
func (e *PolyEngine) EvalBoolean(t *tree.Tree, q *cq.Query) bool {
	sc := e.scratch()
	defer e.pool.Put(sc)
	return polyBool(e.docs.get(t), q, e.alg, sc)
}

// polySatisfaction returns the minimum valuation of the maximal
// arc-consistent prevaluation (Lemma 3.4), or nil.
func polySatisfaction(d *Document, q *cq.Query, order axis.Order, alg ACAlgorithm, sc *consistency.Scratch) consistency.Valuation {
	p, ok := runAC(alg, d, q, sc)
	if !ok {
		return nil
	}
	if q.NumVars() == 0 {
		return consistency.Valuation{}
	}
	return p.MinimumValuation(d.t, order)
}

// Satisfaction returns a consistent valuation of all query variables (the
// minimum valuation of the maximal arc-consistent prevaluation, Lemma
// 3.4), or nil if the query is unsatisfiable on t.
func (e *PolyEngine) Satisfaction(t *tree.Tree, q *cq.Query) consistency.Valuation {
	sc := e.scratch()
	defer e.pool.Put(sc)
	return polySatisfaction(e.docs.get(t), q, e.order, e.alg, sc)
}

// polyCheckTuple decides tuple membership by the singleton-restriction
// argument below Theorem 3.5: restrict each head variable's candidates to
// the given node and test Boolean satisfiability.
func polyCheckTuple(d *Document, q *cq.Query, alg ACAlgorithm, sc *consistency.Scratch, tuple []tree.NodeID) bool {
	if len(tuple) != len(q.Head) {
		panic(fmt.Sprintf("core: CheckTuple arity %d, query arity %d", len(tuple), len(q.Head)))
	}
	if alg == FastAC && sc != nil {
		_, ok := sc.PinnedFastACIx(d.ix, q, q.Head, tuple)
		return ok
	}
	eng := consistency.EngineFast
	if alg == HornAC {
		eng = consistency.EngineHorn
	}
	_, ok := consistency.PinnedAC(eng, d.t, q, q.Head, tuple)
	return ok
}

// CheckTuple decides whether the tuple (one node per head variable) is in
// the query answer.
func (e *PolyEngine) CheckTuple(t *tree.Tree, q *cq.Query, tuple []tree.NodeID) bool {
	sc := e.scratch()
	defer e.pool.Put(sc)
	return polyCheckTuple(e.docs.get(t), q, e.alg, sc, tuple)
}

// polyForEachTuple streams the distinct answer tuples of a k-ary query via
// incremental pinned arc consistency: one full AC run seeds a PinBase, and
// head variables are pinned one at a time with prefix pruning — if pinning
// a tuple prefix empties a domain, no extension of that prefix is
// enumerated. For X-property signatures pinned arc consistency decides
// satisfiability exactly (Theorem 3.5), so a fully pinned consistent state
// IS an answer: the cost is proportional to the consistent prefixes
// explored, not to the |A|^k candidate space. The tuple passed to fn is
// reused between calls (copy to retain); fn returns false to stop.
func polyForEachTuple(d *Document, q *cq.Query, alg ACAlgorithm, sc *consistency.Scratch, stop func() bool, fn func(tuple []tree.NodeID) bool) {
	if sc == nil {
		sc = consistency.NewScratch()
	}
	if len(q.Head) == 0 {
		if polyBool(d, q, alg, sc) {
			fn(nil)
		}
		return
	}
	p, ok := runAC(alg, d, q, sc)
	if !ok {
		return
	}
	run := sc.PinRunFor(sc.PinBaseForIx(d.ix, q, p))
	tuple := make([]tree.NodeID, len(q.Head))
	polyEnumRec(run, q.Head, 0, tuple, stop, fn)
}

// polyEnumRec enumerates dimension d of the head tuple from the current
// pin state; returns false when enumeration should stop. The first
// dimension iterates the NodeID-ordered snapshot set (so monadic emission
// is sorted); deeper dimensions iterate the pin-pruned current domain.
// stop (optional) is the context cancellation probe, checked once per
// outer (d == 0) candidate.
func polyEnumRec(run *consistency.PinRun, head []cq.Var, d int, tuple []tree.NodeID, stop func() bool, fn func([]tree.NodeID) bool) bool {
	if d == len(head) {
		return fn(tuple)
	}
	cont := true
	try := func(v tree.NodeID) bool {
		if d == 0 && stop != nil && stop() {
			cont = false
			return false
		}
		tuple[d] = v
		if run.Push(head[d], v) {
			cont = polyEnumRec(run, head, d+1, tuple, stop, fn)
			run.Pop()
		}
		return cont
	}
	if d == 0 {
		run.Base().Candidates(head[0]).ForEach(try)
	} else {
		run.ForEachCurrent(head[d], try)
	}
	return cont
}

// polyForEachNode streams the answer of a monadic query in increasing
// NodeID order: the shared maximal arc-consistent prevaluation prunes the
// candidates once, then each survivor costs one incremental pinned check.
func polyForEachNode(d *Document, q *cq.Query, alg ACAlgorithm, sc *consistency.Scratch, stop func() bool, fn func(v tree.NodeID) bool) {
	if sc == nil {
		sc = consistency.NewScratch()
	}
	p, ok := runAC(alg, d, q, sc)
	if !ok {
		return
	}
	x := q.Head[0]
	base := sc.PinBaseForIx(d.ix, q, p)
	run := sc.PinRunFor(base)
	base.Candidates(x).ForEach(func(v tree.NodeID) bool {
		if stop != nil && stop() {
			return false
		}
		if run.Push(x, v) {
			run.Pop()
			return fn(v)
		}
		return true
	})
}

// polyAll materializes polyForEachTuple, sorted lexicographically.
func polyAll(d *Document, q *cq.Query, alg ACAlgorithm, sc *consistency.Scratch) [][]tree.NodeID {
	return collectSortedTuples(func(fn func([]tree.NodeID) bool) {
		polyForEachTuple(d, q, alg, sc, nil, fn)
	})
}

// EvalAll enumerates the full answer relation of a k-ary query, in
// lexicographic NodeID order.
func (e *PolyEngine) EvalAll(t *tree.Tree, q *cq.Query) [][]tree.NodeID {
	sc := e.scratch()
	defer e.pool.Put(sc)
	return polyAll(e.docs.get(t), q, e.alg, sc)
}

// ForEachTuple streams the distinct answer tuples; see Prepared.ForEachTuple
// for the contract.
func (e *PolyEngine) ForEachTuple(t *tree.Tree, q *cq.Query, fn func(tuple []tree.NodeID) bool) {
	sc := e.scratch()
	defer e.pool.Put(sc)
	polyForEachTuple(e.docs.get(t), q, e.alg, sc, nil, fn)
}
