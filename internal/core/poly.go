package core

import (
	"fmt"
	"sync"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// ACAlgorithm selects the arc-consistency implementation used by the
// polynomial-time engine.
type ACAlgorithm int

// Available arc-consistency engines (cross-checked in tests; compared in
// the ablation benchmarks).
const (
	// FastAC is the optimized deletion-only worklist engine (default).
	FastAC ACAlgorithm = iota
	// HornAC is the paper-exact Horn-SAT reduction of Proposition 3.1.
	HornAC
)

// runAC dispatches one arc-consistency run. sc is used by FastAC for
// buffer reuse (nil = allocate fresh); the paper-exact HornAC ignores it.
func runAC(alg ACAlgorithm, t *tree.Tree, q *cq.Query, sc *consistency.Scratch) (*consistency.Prevaluation, bool) {
	switch alg {
	case FastAC:
		if sc != nil {
			return sc.FastAC(t, q)
		}
		return consistency.FastAC(t, q)
	case HornAC:
		return consistency.HornAC(t, q)
	default:
		panic(fmt.Sprintf("core: invalid ACAlgorithm %d", int(alg)))
	}
}

// PolyEngine evaluates conjunctive queries over a tractable signature via
// Theorem 3.5: compute the subset-maximal arc-consistent prevaluation; the
// query is satisfiable iff it exists, and the minimum valuation with
// respect to the witnessing X-property order is then a satisfaction
// (Lemma 3.4).
//
// PolyEngine is only sound for queries whose signature admits a common
// X-property order; New*-constructors verify this. Evaluation methods are
// safe for concurrent use (per-call buffers are pooled); SetAlgorithm is
// not safe to call concurrently with evaluation.
type PolyEngine struct {
	order axis.Order
	alg   ACAlgorithm
	pool  sync.Pool // of *consistency.Scratch
}

// NewPolyEngine returns a PolyEngine for queries over the given signature,
// or an error if the signature is intractable (no common X-property order
// exists — use the backtracking engine or rewrite to an APQ instead).
func NewPolyEngine(axes []axis.Axis) (*PolyEngine, error) {
	o, ok := axis.CommonXOrder(axes)
	if !ok {
		return nil, fmt.Errorf("core: no common X-property order for signature %v (NP-complete per Theorem 1.1)", axes)
	}
	return &PolyEngine{order: o, alg: FastAC}, nil
}

// NewPolyEngineFor returns a PolyEngine suitable for q's signature.
func NewPolyEngineFor(q *cq.Query) (*PolyEngine, error) {
	return NewPolyEngine(q.Signature())
}

// SetAlgorithm switches the arc-consistency implementation.
func (e *PolyEngine) SetAlgorithm(alg ACAlgorithm) { e.alg = alg }

// Order returns the X-property witnessing order used for minimum
// valuations.
func (e *PolyEngine) Order() axis.Order { return e.order }

func (e *PolyEngine) scratch() *consistency.Scratch {
	if s, ok := e.pool.Get().(*consistency.Scratch); ok {
		return s
	}
	return consistency.NewScratch()
}

// polyBool decides a Boolean query: true iff an arc-consistent
// prevaluation exists (Theorem 3.5).
func polyBool(t *tree.Tree, q *cq.Query, alg ACAlgorithm, sc *consistency.Scratch) bool {
	_, ok := runAC(alg, t, q, sc)
	return ok
}

// EvalBoolean decides a Boolean query in time O(‖A‖·|Q|): true iff an
// arc-consistent prevaluation exists (Theorem 3.5). Head variables, if
// any, are ignored (the query is treated as its Boolean projection).
func (e *PolyEngine) EvalBoolean(t *tree.Tree, q *cq.Query) bool {
	sc := e.scratch()
	defer e.pool.Put(sc)
	return polyBool(t, q, e.alg, sc)
}

// polySatisfaction returns the minimum valuation of the maximal
// arc-consistent prevaluation (Lemma 3.4), or nil.
func polySatisfaction(t *tree.Tree, q *cq.Query, order axis.Order, alg ACAlgorithm, sc *consistency.Scratch) consistency.Valuation {
	p, ok := runAC(alg, t, q, sc)
	if !ok {
		return nil
	}
	if q.NumVars() == 0 {
		return consistency.Valuation{}
	}
	return p.MinimumValuation(t, order)
}

// Satisfaction returns a consistent valuation of all query variables (the
// minimum valuation of the maximal arc-consistent prevaluation, Lemma
// 3.4), or nil if the query is unsatisfiable on t.
func (e *PolyEngine) Satisfaction(t *tree.Tree, q *cq.Query) consistency.Valuation {
	sc := e.scratch()
	defer e.pool.Put(sc)
	return polySatisfaction(t, q, e.order, e.alg, sc)
}

// polyCheckTuple decides tuple membership by the singleton-restriction
// argument below Theorem 3.5: restrict each head variable's candidates to
// the given node and test Boolean satisfiability.
func polyCheckTuple(t *tree.Tree, q *cq.Query, alg ACAlgorithm, sc *consistency.Scratch, tuple []tree.NodeID) bool {
	if len(tuple) != len(q.Head) {
		panic(fmt.Sprintf("core: CheckTuple arity %d, query arity %d", len(tuple), len(q.Head)))
	}
	if alg == FastAC && sc != nil {
		_, ok := sc.PinnedFastAC(t, q, q.Head, tuple)
		return ok
	}
	eng := consistency.EngineFast
	if alg == HornAC {
		eng = consistency.EngineHorn
	}
	_, ok := consistency.PinnedAC(eng, t, q, q.Head, tuple)
	return ok
}

// CheckTuple decides whether the tuple (one node per head variable) is in
// the query answer.
func (e *PolyEngine) CheckTuple(t *tree.Tree, q *cq.Query, tuple []tree.NodeID) bool {
	sc := e.scratch()
	defer e.pool.Put(sc)
	return polyCheckTuple(t, q, e.alg, sc, tuple)
}

// polyAll enumerates the full answer relation of a k-ary query: all tuples
// 〈a1..ak〉 such that the query holds. Per the paper this costs
// O(|A|^k · ‖A‖ · |Q|); the implementation prunes candidates to the
// arc-consistent sets of the head variables before tuple checking.
func polyAll(t *tree.Tree, q *cq.Query, alg ACAlgorithm, sc *consistency.Scratch) [][]tree.NodeID {
	if len(q.Head) == 0 {
		if polyBool(t, q, alg, sc) {
			return [][]tree.NodeID{{}}
		}
		return nil
	}
	p, ok := runAC(alg, t, q, sc)
	if !ok {
		return nil
	}
	// Copy the candidates out: p's sets are scratch-owned and the
	// per-tuple pinned AC runs below reuse the same scratch.
	candidates := make([][]tree.NodeID, len(q.Head))
	for i, x := range q.Head {
		candidates[i] = p.Sets[x].Members()
	}
	var out [][]tree.NodeID
	tuple := make([]tree.NodeID, len(q.Head))
	var rec func(i int)
	rec = func(i int) {
		if i == len(tuple) {
			if polyCheckTuple(t, q, alg, sc, tuple) {
				out = append(out, append([]tree.NodeID(nil), tuple...))
			}
			return
		}
		for _, v := range candidates[i] {
			tuple[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// EvalAll enumerates the full answer relation of a k-ary query.
func (e *PolyEngine) EvalAll(t *tree.Tree, q *cq.Query) [][]tree.NodeID {
	sc := e.scratch()
	defer e.pool.Put(sc)
	return polyAll(t, q, e.alg, sc)
}
