package core

import (
	"testing"

	"repro/internal/cq"
)

func TestContainmentAxisHierarchy(t *testing.T) {
	// Child ⊆ Child+ ⊆ Child*; NextSibling ⊆ NS+ ⊆ NS*.
	chains := [][]string{
		{
			"Q(x, y) <- Child(x, y)",
			"Q(x, y) <- Child+(x, y)",
			"Q(x, y) <- Child*(x, y)",
		},
		{
			"Q(x, y) <- NextSibling(x, y)",
			"Q(x, y) <- NextSibling+(x, y)",
			"Q(x, y) <- NextSibling*(x, y)",
		},
	}
	for _, chain := range chains {
		for i := 0; i+1 < len(chain); i++ {
			sub := cq.MustParse(chain[i])
			super := cq.MustParse(chain[i+1])
			if ce := CheckContainment(sub, super, 4, []string{"A"}); ce != nil {
				t.Errorf("%s should be contained in %s; counterexample %s", chain[i], chain[i+1], ce)
			}
			if ce := CheckContainment(super, sub, 4, []string{"A"}); ce == nil {
				t.Errorf("%s should NOT be contained in %s", chain[i+1], chain[i])
			}
		}
	}
}

func TestContainmentFollowingVsNextSiblingPlus(t *testing.T) {
	// NextSibling+ ⊆ Following but not conversely.
	ns := cq.MustParse("Q(x, y) <- NextSibling+(x, y)")
	f := cq.MustParse("Q(x, y) <- Following(x, y)")
	if ce := CheckContainment(ns, f, 4, []string{"A"}); ce != nil {
		t.Errorf("NS+ ⊆ Following violated: %s", ce)
	}
	ce := CheckContainment(f, ns, 4, []string{"A"})
	if ce == nil {
		t.Errorf("Following ⊄ NS+ needs a counterexample")
	}
}

func TestContainmentWithLabels(t *testing.T) {
	// Adding atoms only shrinks the answer set.
	big := cq.MustParse("Q(y) <- Child+(x, y)")
	small := cq.MustParse("Q(y) <- A(x), Child+(x, y), B(y)")
	if ce := CheckContainment(small, big, 4, []string{"A", "B"}); ce != nil {
		t.Errorf("more-constrained query must be contained: %s", ce)
	}
	if ce := CheckContainment(big, small, 4, []string{"A", "B"}); ce == nil {
		t.Errorf("less-constrained query must not be contained")
	}
}

func TestEquivalenceBothWays(t *testing.T) {
	a := cq.MustParse("Q(y) <- Child(x, y), Child(x', y)")
	// Converging Child atoms force x = x': equivalent to a single atom
	// modulo the duplicated variable.
	b := cq.MustParse("Q(y) <- Child(x, y)")
	l, r := CheckEquivalence(a, b, 4, []string{"A"})
	if l != nil || r != nil {
		t.Errorf("queries should be equivalent: %v / %v", l, r)
	}
}

func TestContainmentArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	CheckContainment(cq.MustParse("Q(x) <- A(x)"), cq.MustParse("Q() <- A(x)"), 3, []string{"A"})
}
