package core

import (
	"math/rand"
	"testing"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

func randomQuery(rng *rand.Rand, axes []axis.Axis, alphabet []string, nv, na, nl int) *cq.Query {
	q := cq.New()
	vars := make([]cq.Var, nv)
	for i := range vars {
		vars[i] = q.AddVar(string(rune('a' + i)))
	}
	for i := 0; i < na; i++ {
		q.AddAtom(axes[rng.Intn(len(axes))], vars[rng.Intn(nv)], vars[rng.Intn(nv)])
	}
	for i := 0; i < nl; i++ {
		q.AddLabel(alphabet[rng.Intn(len(alphabet))], vars[rng.Intn(nv)])
	}
	return q
}

func TestEngineMatchesOracleBoolean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	alphabet := []string{"A", "B"}
	e := NewEngine()
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(9)
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: n, MaxChildren: 3, Alphabet: alphabet, UnlabeledProb: 0.1,
		})
		q := randomQuery(rng, axis.PaperAxes, alphabet, 1+rng.Intn(3), rng.Intn(4), rng.Intn(3))
		want := ReferenceEvalBoolean(tr, q)
		if got := e.EvalBoolean(tr, q); got != want {
			t.Fatalf("trial %d (%v): EvalBoolean = %v, want %v\nquery %s\ntree %s",
				trial, e.PlanFor(q), got, want, q, tr)
		}
		// A returned satisfaction must actually satisfy the query.
		if want {
			theta := e.Satisfaction(tr, q)
			if theta == nil {
				t.Fatalf("trial %d: satisfiable but Satisfaction nil\nquery %s\ntree %s", trial, q, tr)
			}
			if !consistency.Consistent(tr, q, theta) {
				t.Fatalf("trial %d: Satisfaction inconsistent\nquery %s\ntree %s", trial, q, tr)
			}
		}
	}
}

func TestEngineMatchesOracleAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	alphabet := []string{"A", "B"}
	e := NewEngine()
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(8)
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: n, MaxChildren: 3, Alphabet: alphabet,
		})
		nv := 1 + rng.Intn(3)
		q := randomQuery(rng, axis.PaperAxes, alphabet, nv, rng.Intn(4), rng.Intn(2))
		// Random head of arity 1..2.
		arity := 1 + rng.Intn(2)
		for i := 0; i < arity; i++ {
			q.Head = append(q.Head, cq.Var(rng.Intn(nv)))
		}
		want := ReferenceEvalAll(tr, q)
		got := e.EvalAll(tr, q)
		if len(got) != len(want) {
			t.Fatalf("trial %d (%v): %d answers, want %d\nquery %s\ntree %s\ngot %v want %v",
				trial, e.PlanFor(q), len(got), len(want), q, tr, got, want)
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d: answer %d = %v, want %v\nquery %s\ntree %s",
						trial, i, got[i], want[i], q, tr)
				}
			}
		}
	}
}

func TestPolyEngineExhaustiveSmallTrees(t *testing.T) {
	// Exhaustive check of the X-property engine on every tree with <= 4
	// nodes over {A, B} for a fixed battery of tractable queries.
	queries := []string{
		"Q() <- A(x), Child+(x, y), B(y)",
		"Q() <- Child*(x, y), Child+(y, z)",
		"Q() <- A(x), Child+(x, y), Child+(x, z), B(y), B(z)",
		"Q() <- Following(x, y), A(x), B(y)",
		"Q() <- Following(x, y), Following(y, z)",
		"Q() <- Child(x, y), NextSibling(y, z)",
		"Q() <- NextSibling+(x, y), NextSibling*(y, z), Child(w, x)",
		"Q() <- Child+(x, y), Child+(x, y)", // duplicate atom
		"Q() <- Child*(x, x)",               // reflexive self-loop, always true
	}
	for _, src := range queries {
		q := cq.MustParse(src)
		pe, err := NewPolyEngineFor(q)
		if err != nil {
			t.Fatalf("query %s should be tractable: %v", src, err)
		}
		tree.EnumerateAll(4, []string{"A", "B"}, func(tr *tree.Tree) bool {
			want := ReferenceEvalBoolean(tr, q)
			if got := pe.EvalBoolean(tr, q); got != want {
				t.Fatalf("%s on %s: poly %v, want %v", src, tr, got, want)
			}
			// Horn engine must agree too.
			pe.SetAlgorithm(HornAC)
			if got := pe.EvalBoolean(tr, q); got != want {
				t.Fatalf("%s on %s: horn %v, want %v", src, tr, got, want)
			}
			pe.SetAlgorithm(FastAC)
			return true
		})
	}
}

func TestPolyEngineRejectsIntractableSignature(t *testing.T) {
	q := cq.MustParse("Q() <- Child(x, y), Following(y, z)")
	if _, err := NewPolyEngineFor(q); err == nil {
		t.Errorf("expected error for {Child, Following}")
	}
}

func TestPolyEngineCheckTuple(t *testing.T) {
	tr := tree.MustParseTerm("A(B,C(B))")
	q := cq.MustParse("Q(y) <- A(x), Child+(x, y), B(y)")
	pe, err := NewPolyEngineFor(q)
	if err != nil {
		t.Fatal(err)
	}
	bs := tr.NodesWithLabel("B")
	if len(bs) != 2 {
		t.Fatal("expected 2 B nodes")
	}
	for _, b := range bs {
		if !pe.CheckTuple(tr, q, []tree.NodeID{b}) {
			t.Errorf("CheckTuple(%d) should hold", b)
		}
	}
	c := tr.NodesWithLabel("C")[0]
	if pe.CheckTuple(tr, q, []tree.NodeID{c}) {
		t.Errorf("CheckTuple(C) should fail (label)")
	}
	root := tr.Root()
	if pe.CheckTuple(tr, q, []tree.NodeID{root}) {
		t.Errorf("CheckTuple(root) should fail")
	}
}

func TestAcyclicEngineAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []string{"A", "B"}
	ae := NewAcyclicEngine()
	queries := []string{
		"Q(x) <- A(x)",
		"Q(y) <- A(x), Child(x, y)",
		"Q(z) <- A(x), Child(x, y), B(y), Following(x, z)",
		"Q(x, z) <- Child+(x, y), NextSibling(y, z)",
		"Q() <- A(x), B(y)", // two components
		"Q(x) <- A(x), B(y), Child(y, z)",
	}
	for _, src := range queries {
		q := cq.MustParse(src)
		for trial := 0; trial < 40; trial++ {
			tr := tree.Random(rng, tree.RandomConfig{
				Nodes: 1 + rng.Intn(10), MaxChildren: 3, Alphabet: alphabet,
			})
			want := ReferenceEvalAll(tr, q)
			got := ae.EvalAll(tr, q)
			if len(got) != len(want) {
				t.Fatalf("%s on %s: %d answers, want %d (%v vs %v)", src, tr, len(got), len(want), got, want)
			}
			for i := range got {
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("%s on %s: answers differ", src, tr)
					}
				}
			}
		}
	}
}

func TestAcyclicEnginePanicsOnCyclicQuery(t *testing.T) {
	q := cq.MustParse("Q() <- Child+(x, y), Child+(x, y)")
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for non-acyclic query")
		}
	}()
	NewAcyclicEngine().EvalBoolean(tree.MustParseTerm("A"), q)
}

func TestBacktrackBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := tree.Random(rng, tree.DefaultRandomConfig(60))
	q := randomQuery(rng, axis.PaperAxes, []string{"A", "B", "C", "D", "E"}, 6, 9, 2)
	be := NewBacktrackEngine()
	be.MaxSteps = 5
	defer func() {
		if r := recover(); r != ErrSearchBudget {
			// The query may be decided within budget; only a non-budget
			// panic is a failure.
			if r != nil {
				t.Errorf("unexpected panic %v", r)
			}
		}
	}()
	be.EvalBoolean(tr, q)
}

func TestPlanSelection(t *testing.T) {
	e := NewEngine()
	cases := []struct {
		src  string
		want Strategy
	}{
		{"Q() <- A(x), Child(x, y)", StrategyAcyclic},
		{"Q() <- Child+(x, y), Child*(x, z), Child+(y, z)", StrategyXProperty},
		{"Q() <- Child(x, y), Child+(x, z), Child(y, z)", StrategyBacktrack},
	}
	for _, tc := range cases {
		plan := e.PlanFor(cq.MustParse(tc.src))
		if plan.Strategy != tc.want {
			t.Errorf("PlanFor(%s) = %v, want %v", tc.src, plan.Strategy, tc.want)
		}
		if plan.String() == "" {
			t.Errorf("empty plan string")
		}
	}
}

func TestEvalMonadic(t *testing.T) {
	tr := tree.MustParseTerm("A(B,C(B),B)")
	q := cq.MustParse("Q(y) <- Child+(x, y), B(y), A(x)")
	got := NewEngine().EvalMonadic(tr, q)
	want := tr.NodesWithLabel("B")
	if len(got) != len(want) {
		t.Fatalf("EvalMonadic = %v, want %v", got, want)
	}
}

func TestMaximalSetsTractable(t *testing.T) {
	if !maximalSetsAreTractable() {
		t.Errorf("the §1.1 maximal sets must classify tractable")
	}
}
