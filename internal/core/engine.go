package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// Strategy names the algorithm an Engine selected for a query.
type Strategy int

// Strategies, in preference order.
const (
	// StrategyAcyclic: the query graph's shadow is a forest; Yannakakis
	// semijoin evaluation (polynomial regardless of signature).
	StrategyAcyclic Strategy = iota
	// StrategyXProperty: the signature admits a common X-property order;
	// arc-consistency + minimum valuation (Theorem 3.5).
	StrategyXProperty
	// StrategyBacktrack: general search (the signature side of the
	// dichotomy is NP-complete; §5).
	StrategyBacktrack
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAcyclic:
		return "acyclic(Yannakakis)"
	case StrategyXProperty:
		return "x-property(Thm 3.5)"
	case StrategyBacktrack:
		return "backtracking"
	default:
		return "invalid"
	}
}

// Plan explains how an Engine will evaluate a query.
type Plan struct {
	Strategy       Strategy
	Classification Classification
	QueryClass     cq.Class
}

// String renders a one-line plan description.
func (p Plan) String() string {
	return fmt.Sprintf("%s query over %s -> %s", p.QueryClass, p.Classification, p.Strategy)
}

// planFor computes the strategy for q: acyclicity first (Yannakakis works
// for every signature), then the Theorem 1.1 dichotomy.
func planFor(q *cq.Query) Plan {
	cls := ClassifyQuery(q)
	qc := cq.Classify(q)
	p := Plan{Classification: cls, QueryClass: qc}
	switch {
	case qc == cq.Acyclic:
		p.Strategy = StrategyAcyclic
	case cls.Complexity == PTime:
		p.Strategy = StrategyXProperty
	default:
		p.Strategy = StrategyBacktrack
	}
	return p
}

// planCacheLimit bounds the Engine's compiled-plan cache. When full, an
// arbitrary entry is evicted — the cache is an amortizer, not an index, so
// any victim works.
const planCacheLimit = 512

// Engine is the top-level evaluator: it classifies each query (acyclicity
// and signature tractability per Theorem 1.1) and dispatches to the best
// applicable algorithm. Compiled plans are cached by query fingerprint, so
// evaluating the same query repeatedly classifies and plans it only once.
//
// An Engine is safe for concurrent use and meant to be long-lived and
// shared; per-call state lives in scratch pools inside the cached
// Prepared queries. All Prepared queries compiled by one Engine share its
// weak document cache, so one-shot evaluation of different queries
// against the same tree builds that tree's indexes only once.
type Engine struct {
	mu    sync.Mutex
	cache map[string]*Prepared
	docs  docCache
}

// NewEngine returns an Engine with an empty plan cache.
func NewEngine() *Engine {
	return &Engine{cache: make(map[string]*Prepared)}
}

// Prepare returns the compiled form of q, reusing a cached compilation of
// any previously seen query with the same fingerprint.
func (e *Engine) Prepare(q *cq.Query) (*Prepared, error) {
	key := q.Fingerprint()
	e.mu.Lock()
	p, ok := e.cache[key]
	e.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := prepareWith(q, &e.docs)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if existing, ok := e.cache[key]; ok {
		p = existing // lost the race; share the winner's scratch pool
	} else {
		if len(e.cache) >= planCacheLimit {
			for k := range e.cache {
				delete(e.cache, k)
				break
			}
		}
		e.cache[key] = p
	}
	e.mu.Unlock()
	return p, nil
}

// prepared is Prepare for queries that cannot fail compilation (every
// dispatch path below: Prepare only errors on nil queries).
func (e *Engine) prepared(q *cq.Query) *Prepared {
	p, err := e.Prepare(q)
	if err != nil {
		panic(err)
	}
	return p
}

// PlanFor explains the strategy chosen for q.
func (e *Engine) PlanFor(q *cq.Query) Plan { return e.prepared(q).Plan() }

// EvalBoolean decides whether q (viewed as Boolean) is satisfiable on t.
func (e *Engine) EvalBoolean(t *tree.Tree, q *cq.Query) bool {
	return e.prepared(q).Bool(t)
}

// Satisfaction returns a full consistent valuation, or nil if none exists.
func (e *Engine) Satisfaction(t *tree.Tree, q *cq.Query) consistency.Valuation {
	return e.prepared(q).Satisfaction(t)
}

// EvalAll enumerates the distinct answer tuples of q on t (for Boolean
// queries: one empty tuple if satisfiable).
func (e *Engine) EvalAll(t *tree.Tree, q *cq.Query) [][]tree.NodeID {
	return e.prepared(q).All(t)
}

// EvalMonadic returns the sorted node set answering a unary query; it
// panics if q is not monadic. It runs through the monadic fast path: no
// per-node tuple wrappers, and under the acyclic strategy the semijoin-
// reduced head set is returned directly without enumeration.
func (e *Engine) EvalMonadic(t *tree.Tree, q *cq.Query) []tree.NodeID {
	if len(q.Head) != 1 {
		panic(fmt.Sprintf("core: EvalMonadic on %d-ary query", len(q.Head)))
	}
	return e.prepared(q).Monadic(t)
}

// ReferenceEvalBoolean is a brute-force oracle used by the test suite: it
// tries every valuation (|A|^|vars| of them). Only usable for tiny inputs.
func ReferenceEvalBoolean(t *tree.Tree, q *cq.Query) bool {
	nv := q.NumVars()
	if nv == 0 {
		return true
	}
	if t.Len() == 0 {
		return false
	}
	theta := make(consistency.Valuation, nv)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == nv {
			return consistency.Consistent(t, q, theta)
		}
		for v := 0; v < t.Len(); v++ {
			theta[i] = tree.NodeID(v)
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// ReferenceEvalAll is the brute-force answer enumeration oracle.
func ReferenceEvalAll(t *tree.Tree, q *cq.Query) [][]tree.NodeID {
	nv := q.NumVars()
	if len(q.Head) == 0 {
		if ReferenceEvalBoolean(t, q) {
			return [][]tree.NodeID{{}}
		}
		return nil
	}
	seen := map[string]bool{}
	var out [][]tree.NodeID
	theta := make(consistency.Valuation, nv)
	var rec func(i int)
	rec = func(i int) {
		if i == nv {
			if consistency.Consistent(t, q, theta) {
				tuple := make([]tree.NodeID, len(q.Head))
				key := ""
				for j, h := range q.Head {
					tuple[j] = theta[h]
					key += fmt.Sprintf("%d,", theta[h])
				}
				if !seen[key] {
					seen[key] = true
					out = append(out, tuple)
				}
			}
			return
		}
		for v := 0; v < t.Len(); v++ {
			theta[i] = tree.NodeID(v)
			rec(i + 1)
		}
	}
	rec(0)
	sortTupleSlice(out)
	return out
}

// sortTupleSlice sorts answer tuples lexicographically — the materialized
// (All) output order of every engine.
func sortTupleSlice(out [][]tree.NodeID) {
	sort.Slice(out, func(i, j int) bool { return lessTuple(out[i], out[j]) })
}

func copyTuple(tuple []tree.NodeID) []tree.NodeID {
	cp := make([]tree.NodeID, len(tuple))
	copy(cp, tuple)
	return cp
}

// collectSortedTuples materializes a tuple stream into an owned, sorted
// slice (the stream's tuple buffer is reused, so each tuple is copied).
func collectSortedTuples(stream func(fn func([]tree.NodeID) bool)) [][]tree.NodeID {
	var out [][]tree.NodeID
	stream(func(tuple []tree.NodeID) bool {
		out = append(out, copyTuple(tuple))
		return true
	})
	sortTupleSlice(out)
	return out
}

// appendTupleKey appends tuple's dedup-key encoding to key. Every dedup
// site (streaming and parallel-merge) must use this one encoding: the
// parallel path relies on per-worker and merge-time keys agreeing.
func appendTupleKey(key []byte, tuple []tree.NodeID) []byte {
	for _, v := range tuple {
		key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return key
}

// enumNeedsDedup reports whether an enumeration that assigns the
// variables of order exactly once per distinct assignment can reach the
// same head tuple twice — i.e. whether order contains a non-head
// variable (projecting it away merges assignments). When it returns
// false the dedup set is pure overhead, and skipping it is what keeps
// streaming enumeration memory-flat: the seen-set is the only
// O(answers) allocation on the streaming path.
func enumNeedsDedup(head, order []cq.Var) bool {
	for _, x := range order {
		inHead := false
		for _, h := range head {
			if h == x {
				inHead = true
				break
			}
		}
		if !inHead {
			return true
		}
	}
	return false
}

// projectionFree reports whether every query variable appears in the
// head: distinct full valuations then project to distinct head tuples.
func projectionFree(q *cq.Query) bool {
	seen := make([]bool, q.NumVars())
	n := 0
	for _, h := range q.Head {
		if !seen[h] {
			seen[h] = true
			n++
		}
	}
	return n == q.NumVars()
}

// dedupEmit wraps emit to drop tuples already recorded in seen, reusing
// one key buffer across calls (map lookups through string(key) do not
// allocate; only the insert of a genuinely new answer does).
func dedupEmit(seen map[string]bool, emit func([]tree.NodeID) bool) func([]tree.NodeID) bool {
	var key []byte
	return func(tuple []tree.NodeID) bool {
		key = appendTupleKey(key[:0], tuple)
		if seen[string(key)] {
			return true
		}
		seen[string(key)] = true
		return emit(tuple)
	}
}

func lessTuple(a, b []tree.NodeID) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// Verify that the classification facts agree with the proved maximal
// tractable sets (§1.1) — executable documentation used by tests.
func maximalSetsAreTractable() bool {
	for _, set := range axis.MaximalTractableSets() {
		if Classify(set).Complexity != PTime {
			return false
		}
	}
	return true
}
