package core

import (
	"io"

	"repro/internal/consistency"
	"repro/internal/snapshot"
	"repro/internal/tree"
)

// Snapshot encodes the document — tree orders plus the prebuilt index
// tables — into the versioned binary snapshot format. The encoding is
// deterministic: the same document always yields the same bytes (the
// golden-fixture compatibility test pins this).
func (d *Document) Snapshot() []byte {
	w := snapshot.NewWriter()
	w.WriteMeta(d.t.SnapshotMeta())
	d.t.AppendSections(w)
	d.ix.AppendBinary(w)
	return w.Finish()
}

// WriteTo writes the document's snapshot encoding to w, implementing
// io.WriterTo.
func (d *Document) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(d.Snapshot())
	return int64(n), err
}

// LoadDocument reconstructs a Document from snapshot bytes without
// re-parsing or re-indexing: the tree's order arrays and the index's rank
// tables are adopted straight from data (zero-copy views when data is
// 8-byte aligned — see snapshot.ReadFile — an element-wise copy
// otherwise). The document aliases data afterwards; the caller must not
// modify it. Corrupt, truncated, or version-skewed input returns a typed
// error from internal/snapshot (ErrBadMagic, ErrVersion, ErrChecksum,
// ErrTruncated, ErrCorrupt), never a panic.
//
// A load bumps consistency.IndexLoadCount, not IndexBuildCount: tests
// assert on the pair to prove cold starts skip build() entirely.
func LoadDocument(data []byte) (*Document, error) {
	r, err := snapshot.Open(data)
	if err != nil {
		return nil, err
	}
	t, err := tree.FromSnapshot(r)
	if err != nil {
		return nil, err
	}
	ix, err := consistency.LoadBinary(r, t)
	if err != nil {
		return nil, err
	}
	return &Document{t: t, ix: ix}, nil
}

// Materialize eagerly builds every lazy structure of the document (the
// per-label bitsets and the shared empty set), fixing SizeBytes: after
// this call no query mix changes the document's footprint. The corpus
// calls it before charging a document to the byte budget so accounted
// bytes equal actual bytes for the document's whole residency.
func (d *Document) Materialize() { d.ix.MaterializeLabels() }
