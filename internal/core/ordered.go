package core

import (
	"sort"

	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// Ordered enumeration: answers stream in lexicographic document order
// over the head tuple — position i ascending or descending over pre-order
// ranks per EnumOptions.Order[i] — with no sort and no buffering, and a
// resume point (EnumOptions.After) re-descends directly to the recorded
// pin prefix instead of re-enumerating skipped answers.
//
// The engine is the pinned-AC descent of enumerate.go with each level's
// candidate bitset iterated in the requested direction. That descent is
// sound and complete for BOTH tractable strategies:
//
//   - X-property signatures: pinned arc consistency decides satisfiability
//     exactly (Theorem 3.5), so a fully pinned consistent state IS an
//     answer and every answer survives pinning.
//   - Acyclic queries: the query graph's shadow is a forest, and arc
//     consistency with nonempty domains is decision-complete on
//     forest-structured constraint graphs (Freuder) — pinning head
//     variables keeps the graph a forest, so the same invariant holds.
//
// Head tuples are enumerated directly (one pin path per distinct tuple),
// so no dedup set is needed and the stream is memory-flat. Only the
// backtracking strategy lacks an order-aware search; it materializes,
// sorts by the requested key, and replays — order and limit are honored,
// but a cursor restart there costs O(answers), not O(depth).

// orderedForEachTuple streams the distinct answer tuples of p on d in the
// requested document order, resuming strictly after o.After when set.
// o.Order must have exactly one direction per head variable (callers
// validate); the head must be non-empty. The tuple passed to fn is reused.
func (p *Prepared) orderedForEachTuple(d *Document, s *evalScratch, o EnumOptions, stop func() bool, fn func(tuple []tree.NodeID) bool) {
	q := p.q
	if p.plan.Strategy == StrategyBacktrack {
		p.orderedBacktrack(d, s, o, stop, fn)
		return
	}
	pre, ok := runAC(p.alg, d, q, s.ac)
	if !ok {
		return
	}
	e := orderedEnum{
		run:   s.ac.PinRunFor(s.ac.PinBaseForIx(d.ix, q, pre)),
		head:  q.Head,
		dirs:  o.Order,
		after: o.After,
		stop:  stop,
		fn:    fn,
		tuple: make([]tree.NodeID, len(q.Head)),
	}
	e.rec(0, e.after != nil)
}

// orderedEnum is the state of one ordered pinned-AC descent.
type orderedEnum struct {
	run   *consistency.PinRun
	head  []cq.Var
	dirs  []OrderDir
	after []int32 // resume point (pre ranks per head position), or nil
	stop  func() bool
	fn    func([]tree.NodeID) bool
	tuple []tree.NodeID
}

// rec enumerates dimension d of the head tuple from the current pin state
// in the requested direction. onPrefix tracks whether every pin so far
// equals the resume point's — only then does level d seek to after[d]
// (O(1) into the bitset) instead of starting from the extreme end, and
// only the exact resume tuple itself is skipped, giving strictly-after
// resume semantics. Returns false when enumeration should stop.
func (e *orderedEnum) rec(d int, onPrefix bool) bool {
	if d == len(e.head) {
		return e.fn(e.tuple)
	}
	desc := e.dirs[d] == OrderDesc
	from := int32(-1)
	if onPrefix {
		from = e.after[d]
	}
	last := d == len(e.head)-1
	cont := true
	e.run.ForEachCurrentDir(e.head[d], desc, from, func(v tree.NodeID, pr int32) bool {
		if d == 0 && e.stop != nil && e.stop() {
			cont = false
			return false
		}
		childOnPrefix := onPrefix && pr == e.after[d]
		if childOnPrefix && last {
			return true // the resume tuple itself: already delivered
		}
		e.tuple[d] = v
		if e.run.Push(e.head[d], v) {
			cont = e.rec(d+1, childOnPrefix)
			e.run.Pop()
		}
		return cont
	})
	return cont
}

// orderedBacktrack is the ordered fallback for the NP-hard strategy:
// materialize the distinct answer tuples (discovery order, deduped),
// sort them by the requested document-order key, and replay from the
// resume point. Document-order-optimal only — a resume costs O(answers).
func (p *Prepared) orderedBacktrack(d *Document, s *evalScratch, o EnumOptions, stop func() bool, fn func(tuple []tree.NodeID) bool) {
	var out [][]tree.NodeID
	s.backtracker().forEachTuple(d, p.q, stop, func(tuple []tree.NodeID) bool {
		out = append(out, copyTuple(tuple))
		return true
	})
	t := d.t
	sort.Slice(out, func(i, j int) bool {
		return orderedKeyLess(t, o.Order, out[i], out[j])
	})
	for _, tuple := range out {
		if o.After != nil && !afterResume(t, o.Order, o.After, tuple) {
			continue
		}
		if !fn(tuple) {
			return
		}
	}
}

// orderedKeyLess compares two tuples under the per-position document-order
// key: position k orders by pre rank, ascending or descending per dirs[k].
func orderedKeyLess(t *tree.Tree, dirs []OrderDir, a, b []tree.NodeID) bool {
	for k := range a {
		ra, rb := t.Pre(a[k]), t.Pre(b[k])
		if ra == rb {
			continue
		}
		if dirs[k] == OrderDesc {
			return ra > rb
		}
		return ra < rb
	}
	return false
}

// afterResume reports whether tuple sorts strictly after the resume
// point's pre ranks under the per-position key — i.e. belongs to the
// resumed stream.
func afterResume(t *tree.Tree, dirs []OrderDir, after []int32, tuple []tree.NodeID) bool {
	for k := range tuple {
		r := t.Pre(tuple[k])
		if r == after[k] {
			continue
		}
		if dirs[k] == OrderDesc {
			return r < after[k]
		}
		return r > after[k]
	}
	return false // the resume tuple itself: already delivered
}
