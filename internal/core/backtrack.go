package core

import (
	"sort"

	"repro/internal/axis"
	"repro/internal/consistency"
	"repro/internal/cq"
	"repro/internal/tree"
)

// BacktrackEngine is the general-purpose evaluator, complete for every
// signature and every (cyclic) query. It performs depth-first search over
// valuations, by default maintaining arc consistency (MAC) at every
// assignment; with Propagate disabled it falls back to plain forward
// checking. Worst-case exponential — unavoidable for the NP-complete
// signatures of §5 unless P = NP; the benchmark harness uses this engine
// to demonstrate the hardness side of the dichotomy empirically.
type BacktrackEngine struct {
	// MaxSteps bounds the number of search-node expansions (0 = no
	// bound). When exceeded, evaluation panics with ErrSearchBudget —
	// used by benchmarks to cap runaway cases.
	MaxSteps int
	// Propagate disables MAC when false (ablation benchmarks compare
	// both modes).
	Propagate bool

	steps int
	// sc holds the reusable arc-consistency buffers; lazily created. The
	// engine is stateful (steps, scratch) and therefore NOT safe for
	// concurrent use — the Prepared evaluation path pools one engine per
	// in-flight call instead.
	sc *consistency.Scratch
	// docs resolves the legacy *Tree entry points to Documents.
	docs docCache
}

// NewBacktrackEngine returns an engine with MAC enabled and no step bound.
func NewBacktrackEngine() *BacktrackEngine { return &BacktrackEngine{Propagate: true} }

func (e *BacktrackEngine) scratch() *consistency.Scratch {
	if e.sc == nil {
		e.sc = consistency.NewScratch()
	}
	return e.sc
}

// Steps reports the number of search-node expansions of the last call —
// the empirical hardness measure reported by the Table I benchmarks.
func (e *BacktrackEngine) Steps() int { return e.steps }

// searchOrder picks a static variable order: most-constrained (smallest
// initial domain) first, tie-broken by degree in the query graph.
func searchOrder(q *cq.Query, sets []*consistency.NodeSet) []cq.Var {
	g := cq.NewGraph(q)
	deg := make([]int, q.NumVars())
	for x := 0; x < q.NumVars(); x++ {
		deg[x] = g.OutDegree(cq.Var(x)) + g.InDegree(cq.Var(x))
	}
	order := make([]cq.Var, q.NumVars())
	for i := range order {
		order[i] = cq.Var(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if sets[a].Len() != sets[b].Len() {
			return sets[a].Len() < sets[b].Len()
		}
		return deg[a] > deg[b]
	})
	return order
}

// run performs the search. emit is called with each full consistent
// valuation found; returning false stops the search. stop (optional) is
// the context cancellation probe, checked at every search-node expansion
// (the same sites as the MaxSteps budget).
func (e *BacktrackEngine) run(d *Document, q *cq.Query, stop func() bool, emit func(consistency.Valuation) bool) {
	t := d.t
	e.steps = 0
	if q.NumVars() == 0 {
		emit(consistency.Valuation{})
		return
	}
	if t.Len() == 0 {
		return
	}
	// The initial prevaluation must survive the search below (which runs
	// further scratch-based AC passes), so it uses caller-owned sets; the
	// scratch still supplies the worklist and per-domain buffers.
	p, ok := e.scratch().FastACFromIx(d.ix, q, consistency.NewPrevaluationIx(d.ix, q))
	if !ok {
		return
	}
	if e.Propagate {
		e.runMAC(d, q, p, stop, emit)
		return
	}
	order := searchOrder(q, p.Sets)
	// adjacency: atoms fully decided once both endpoints assigned; check
	// each atom at the moment its later endpoint gets assigned.
	pos := make([]int, q.NumVars()) // variable -> position in order
	for i, x := range order {
		pos[x] = i
	}
	type check struct {
		at    cq.AxisAtom
		other cq.Var
	}
	checksAt := make([][]check, q.NumVars())
	for _, at := range q.Atoms {
		later := at.X
		if pos[at.Y] > pos[at.X] {
			later = at.Y
		}
		other := at.X
		if other == later {
			other = at.Y
		}
		checksAt[later] = append(checksAt[later], check{at: at, other: other})
	}
	theta := make(consistency.Valuation, q.NumVars())
	for i := range theta {
		theta[i] = tree.NilNode
	}
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == len(order) {
			return emit(append(consistency.Valuation(nil), theta...))
		}
		x := order[i]
		cont := true
		p.Sets[x].ForEach(func(v tree.NodeID) bool {
			e.steps++
			if e.MaxSteps > 0 && e.steps > e.MaxSteps {
				panic(ErrSearchBudget)
			}
			if stop != nil && stop() {
				cont = false
				return false
			}
			okHere := true
			for _, c := range checksAt[x] {
				if theta[c.other] == tree.NilNode && c.other != x {
					continue // other endpoint not yet assigned (can happen for self loops only)
				}
				u, w := theta[c.at.X], theta[c.at.Y]
				if c.at.X == x {
					u = v
				}
				if c.at.Y == x {
					w = v
				}
				if !axis.Holds(t, c.at.Axis, u, w) {
					okHere = false
					break
				}
			}
			if !okHere {
				return true
			}
			theta[x] = v
			if !dfs(i + 1) {
				cont = false
				theta[x] = tree.NilNode
				return false
			}
			theta[x] = tree.NilNode
			return true
		})
		return cont
	}
	dfs(0)
}

// runMAC searches with full arc-consistency maintenance: at each depth it
// picks the unassigned variable with the smallest domain, and for each
// candidate value re-runs arc consistency on a copy of the domains. When
// every variable is a singleton, the minimum valuation of the (globally
// arc-consistent, all-singleton) prevaluation is the satisfaction.
func (e *BacktrackEngine) runMAC(d *Document, q *cq.Query, p *consistency.Prevaluation, stop func() bool, emit func(consistency.Valuation) bool) {
	t := d.t
	var dfs func(cur *consistency.Prevaluation) bool
	dfs = func(cur *consistency.Prevaluation) bool {
		// Pick the smallest non-singleton domain.
		pick := -1
		for x, s := range cur.Sets {
			if s.Len() > 1 && (pick == -1 || s.Len() < cur.Sets[pick].Len()) {
				pick = x
			}
		}
		if pick == -1 {
			theta := make(consistency.Valuation, len(cur.Sets))
			for x, s := range cur.Sets {
				s.ForEach(func(v tree.NodeID) bool { theta[x] = v; return false })
			}
			// All-singleton arc-consistent prevaluations are consistent
			// valuations by definition; verify defensively.
			if !consistency.Consistent(t, q, theta) {
				return true // spurious, keep searching siblings
			}
			return emit(theta)
		}
		cont := true
		cur.Sets[pick].ForEach(func(v tree.NodeID) bool {
			e.steps++
			if e.MaxSteps > 0 && e.steps > e.MaxSteps {
				panic(ErrSearchBudget)
			}
			if stop != nil && stop() {
				cont = false
				return false
			}
			next := &consistency.Prevaluation{Sets: make([]*consistency.NodeSet, len(cur.Sets))}
			for x, s := range cur.Sets {
				next.Sets[x] = s.Clone()
			}
			pin := consistency.NewNodeSet(t.Len())
			pin.Add(v)
			next.Sets[pick].IntersectWith(pin)
			reduced, ok := e.scratch().FastACFromIx(d.ix, q, next)
			if ok {
				if !dfs(reduced) {
					cont = false
					return false
				}
			}
			return true
		})
		return cont
	}
	dfs(p)
}

// ErrSearchBudget is panicked (and recovered by callers that set MaxSteps)
// when the search exceeds its step budget.
var ErrSearchBudget = searchBudgetError{}

type searchBudgetError struct{}

func (searchBudgetError) Error() string { return "core: backtracking search budget exceeded" }

// evalBoolean decides satisfiability of q on d; stop cancels the search.
func (e *BacktrackEngine) evalBoolean(d *Document, q *cq.Query, stop func() bool) bool {
	found := false
	e.run(d, q, stop, func(consistency.Valuation) bool {
		found = true
		return false
	})
	return found
}

// satisfaction returns one satisfaction of all query variables, or nil.
func (e *BacktrackEngine) satisfaction(d *Document, q *cq.Query, stop func() bool) consistency.Valuation {
	var out consistency.Valuation
	e.run(d, q, stop, func(v consistency.Valuation) bool {
		out = v
		return false
	})
	return out
}

// forEachTuple streams the distinct head tuples of the answer in search
// discovery order; see ForEachTuple.
func (e *BacktrackEngine) forEachTuple(d *Document, q *cq.Query, stop func() bool, fn func(tuple []tree.NodeID) bool) {
	if len(q.Head) == 0 {
		if e.evalBoolean(d, q, stop) {
			fn(nil)
		}
		return
	}
	// The search reaches each full valuation exactly once (branches pin
	// distinct values), so a projection-free query needs no dedup set —
	// the one O(answers) allocation on this streaming path.
	emit := fn
	if !projectionFree(q) {
		emit = dedupEmit(map[string]bool{}, fn)
	}
	tuple := make([]tree.NodeID, len(q.Head))
	e.run(d, q, stop, func(theta consistency.Valuation) bool {
		for j, h := range q.Head {
			tuple[j] = theta[h]
		}
		return emit(tuple)
	})
}

// EvalBoolean decides satisfiability of q on t.
func (e *BacktrackEngine) EvalBoolean(t *tree.Tree, q *cq.Query) bool {
	return e.evalBoolean(e.docs.get(t), q, nil)
}

// Satisfaction returns one satisfaction of all query variables, or nil.
func (e *BacktrackEngine) Satisfaction(t *tree.Tree, q *cq.Query) consistency.Valuation {
	return e.satisfaction(e.docs.get(t), q, nil)
}

// ForEachTuple streams the distinct head tuples of the answer in search
// discovery order: each tuple is emitted the first time the search reaches
// a satisfaction projecting to it. The tuple passed to fn is reused (copy
// to retain); fn returns false to stop the search early.
func (e *BacktrackEngine) ForEachTuple(t *tree.Tree, q *cq.Query, fn func(tuple []tree.NodeID) bool) {
	e.forEachTuple(e.docs.get(t), q, nil, fn)
}

// EvalAll enumerates the distinct head tuples of the answer, in
// lexicographic NodeID order.
func (e *BacktrackEngine) EvalAll(t *tree.Tree, q *cq.Query) [][]tree.NodeID {
	d := e.docs.get(t)
	return collectSortedTuples(func(fn func([]tree.NodeID) bool) {
		e.forEachTuple(d, q, nil, fn)
	})
}
