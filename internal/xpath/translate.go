package xpath

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/cq"
	"repro/internal/rewrite"
)

// ToCQ translates an XPath expression into an equivalent monadic
// conjunctive query (the query's head variable selects the same node set
// as the expression from the root). The translation is linear and always
// produces an acyclic query — XPath queries are acyclic (§1.1).
func ToCQ(e Expr) (*cq.Query, error) {
	// Conjunctive queries have no "is the root" predicate. For absolute
	// expressions the translation is exact only when the first step's
	// axis makes the anchoring immaterial: descendant-or-self (all
	// nodes), or descendant (all non-root nodes) — which covers the //
	// abbreviation used by the paper's examples.
	if e.Absolute && len(e.Steps) > 0 {
		switch e.Steps[0].Axis {
		case axis.ChildStar, axis.ChildPlus:
		default:
			return nil, fmt.Errorf("xpath: absolute expression with leading %v step is not CQ-expressible without a root predicate", e.Steps[0].Axis)
		}
	}
	q := cq.New()
	root := q.AddVar("r")
	last, err := stepsToCQ(q, root, e)
	if err != nil {
		return nil, err
	}
	q.SetHead(last)
	return q, nil
}

// stepsToCQ adds the atoms of e starting at variable from, returning the
// variable holding the final step's result.
func stepsToCQ(q *cq.Query, from cq.Var, e Expr) (cq.Var, error) {
	cur := from
	for _, st := range e.Steps {
		next := q.FreshVar("s")
		q.AddAtom(st.Axis, cur, next)
		if st.Test != "*" {
			q.AddLabel(st.Test, next)
		}
		for _, p := range st.Preds {
			start := next
			if p.Absolute {
				return cq.NilVar, fmt.Errorf("xpath: absolute predicate not supported in ToCQ")
			}
			if _, err := stepsToCQ(q, start, p); err != nil {
				return cq.NilVar, err
			}
		}
		cur = next
	}
	return cur, nil
}

// FromAPQ translates a monadic APQ over single-labeled trees into a set
// of XPath expressions whose union of results equals the APQ's answers
// (Remark 6.1: positive Core XPath with inverse axes captures the unary
// APQs). Each acyclic disjunct becomes one expression anchored at the
// head variable: tree edges toward the head become steps of the inverse
// axis; edges away become predicates.
func FromAPQ(a *rewrite.APQ) ([]Expr, error) {
	var out []Expr
	for _, q := range a.Disjuncts {
		e, err := FromAcyclicCQ(q)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// FromAcyclicCQ translates one monadic acyclic conjunctive query into an
// XPath expression selecting the head variable's answers.
func FromAcyclicCQ(q *cq.Query) (Expr, error) {
	if len(q.Head) != 1 {
		return Expr{}, fmt.Errorf("xpath: FromAcyclicCQ needs a monadic query, arity %d", len(q.Head))
	}
	if cq.Classify(q) != cq.Acyclic {
		return Expr{}, fmt.Errorf("xpath: query is not acyclic: %s", q)
	}
	h := q.Head[0]
	g := cq.NewGraph(q)

	// The head's step: descendant-or-self from the root with the head's
	// label constraints (first label as node test, the rest as self
	// predicates) and one predicate per neighbor subtree.
	visitedAtoms := map[int]bool{}
	st, err := varToStep(q, g, h, axis.ChildStar, visitedAtoms)
	if err != nil {
		return Expr{}, err
	}
	expr := Expr{Absolute: true, Steps: []Step{st}}

	// Components not connected to the head become absolute existential
	// predicates on the head's step — supported by our dialect's Eval via
	// absolute predicate expressions.
	for i := range q.Atoms {
		if !visitedAtoms[i] {
			sub, err := componentExpr(q, g, q.Atoms[i].X, visitedAtoms)
			if err != nil {
				return Expr{}, err
			}
			expr.Steps[0].Preds = append(expr.Steps[0].Preds, sub)
		}
	}
	// Label-only variables unreachable from the head also need coverage.
	inAtoms := make([]bool, q.NumVars())
	for _, at := range q.Atoms {
		inAtoms[at.X], inAtoms[at.Y] = true, true
	}
	for _, la := range q.Labels {
		if la.X != h && !inAtoms[la.X] {
			expr.Steps[0].Preds = append(expr.Steps[0].Preds, Expr{
				Absolute: true,
				Steps:    []Step{{Axis: axis.ChildStar, Test: la.Label}},
			})
		}
	}
	return expr, nil
}

// varToStep builds the Step for variable v entered via the given axis,
// with predicates for all incident atoms except alreadyVisited ones.
func varToStep(q *cq.Query, g *cq.Graph, v cq.Var, via axis.Axis, visited map[int]bool) (Step, error) {
	st := Step{Axis: via, Test: "*"}
	labels := q.LabelsOf(v)
	if len(labels) > 0 {
		st.Test = labels[0]
		for _, extra := range labels[1:] {
			st.Preds = append(st.Preds, Expr{Steps: []Step{{Axis: axis.Self, Test: extra}}})
		}
	}
	for _, e := range g.Out(v) {
		if visited[e.AtomIndex] {
			continue
		}
		visited[e.AtomIndex] = true
		inner, err := varToStep(q, g, e.To, e.Axis, visited)
		if err != nil {
			return st, err
		}
		st.Preds = append(st.Preds, Expr{Steps: []Step{inner}})
	}
	for _, e := range g.In(v) {
		if visited[e.AtomIndex] {
			continue
		}
		visited[e.AtomIndex] = true
		inner, err := varToStep(q, g, e.From, e.Axis.Inverse(), visited)
		if err != nil {
			return st, err
		}
		st.Preds = append(st.Preds, Expr{Steps: []Step{inner}})
	}
	return st, nil
}

// componentExpr renders a head-free component as an absolute expression.
func componentExpr(q *cq.Query, g *cq.Graph, start cq.Var, visited map[int]bool) (Expr, error) {
	st, err := varToStep(q, g, start, axis.ChildStar, visited)
	if err != nil {
		return Expr{}, err
	}
	return Expr{Absolute: true, Steps: []Step{st}}, nil
}
