// Package xpath implements a navigational Core-XPath dialect over the
// trees of package tree: location paths with the thirteen navigational
// axes, name tests, and existential predicates (positive, no negation) —
// the "positive Core XPath" of Remark 6.1, which captures exactly the
// unary acyclic positive queries over single-labeled trees. The package
// provides a parser, a set-at-a-time evaluator, translations APQ → XPath
// and XPath → CQ, and is used by the XML example application.
package xpath

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/axis"
	"repro/internal/tree"
)

// Expr is a parsed XPath expression: a location path.
type Expr struct {
	// Absolute paths start at the root; relative paths at the context
	// node set.
	Absolute bool
	Steps    []Step
}

// Step is one location step: axis::test[pred]...[pred].
type Step struct {
	Axis  axis.Axis
	Test  string // label name, or "*" for any node
	Preds []Expr // existential predicates (relative or absolute)
}

// String renders the expression in XPath syntax.
func (e Expr) String() string {
	var sb strings.Builder
	if e.Absolute {
		sb.WriteString("/")
	}
	for i, s := range e.Steps {
		if i > 0 {
			sb.WriteString("/")
		}
		sb.WriteString(axisName(s.Axis))
		sb.WriteString("::")
		sb.WriteString(s.Test)
		for _, p := range s.Preds {
			sb.WriteString("[")
			sb.WriteString(p.String())
			sb.WriteString("]")
		}
	}
	return sb.String()
}

// axisName maps axes to XPath axis names.
func axisName(a axis.Axis) string {
	switch a {
	case axis.Child:
		return "child"
	case axis.ChildPlus:
		return "descendant"
	case axis.ChildStar:
		return "descendant-or-self"
	case axis.NextSiblingPlus:
		return "following-sibling"
	case axis.Following:
		return "following"
	case axis.Parent:
		return "parent"
	case axis.AncestorPlus:
		return "ancestor"
	case axis.AncestorStar:
		return "ancestor-or-self"
	case axis.PrevSiblingPlus:
		return "preceding-sibling"
	case axis.Preceding:
		return "preceding"
	case axis.Self:
		return "self"
	case axis.NextSibling:
		return "next-sibling" // extension beyond W3C XPath (§1.1)
	case axis.NextSiblingStar:
		return "next-sibling-or-self"
	case axis.PrevSibling:
		return "prev-sibling"
	case axis.PrevSiblingStar:
		return "prev-sibling-or-self"
	default:
		panic(fmt.Sprintf("xpath: axis %v has no XPath name", a))
	}
}

var axisByName = map[string]axis.Axis{
	"child": axis.Child, "descendant": axis.ChildPlus,
	"descendant-or-self": axis.ChildStar,
	"following-sibling":  axis.NextSiblingPlus, "following": axis.Following,
	"parent": axis.Parent, "ancestor": axis.AncestorPlus,
	"ancestor-or-self":  axis.AncestorStar,
	"preceding-sibling": axis.PrevSiblingPlus, "preceding": axis.Preceding,
	"self":         axis.Self,
	"next-sibling": axis.NextSibling, "next-sibling-or-self": axis.NextSiblingStar,
	"prev-sibling": axis.PrevSibling, "prev-sibling-or-self": axis.PrevSiblingStar,
}

// Eval returns the nodes selected by e from the given context set (for
// absolute expressions the context is replaced by the root), sorted in
// document order. Set-at-a-time evaluation: O(steps · n²) worst case,
// sufficient for the example applications.
func Eval(t *tree.Tree, e Expr, context []tree.NodeID) []tree.NodeID {
	if t.Len() == 0 {
		return nil
	}
	cur := map[tree.NodeID]bool{}
	if e.Absolute {
		cur[t.Root()] = true
	} else {
		for _, v := range context {
			cur[v] = true
		}
	}
	for _, s := range e.Steps {
		next := map[tree.NodeID]bool{}
		for v := range cur {
			axis.ForEachSuccessor(t, s.Axis, v, func(w tree.NodeID) bool {
				if s.Test != "*" && !t.HasLabel(w, s.Test) {
					return true
				}
				next[w] = true
				return true
			})
		}
		// Predicates filter.
		for w := range next {
			for _, p := range s.Preds {
				if len(Eval(t, p, []tree.NodeID{w})) == 0 {
					delete(next, w)
					break
				}
			}
		}
		cur = next
	}
	out := make([]tree.NodeID, 0, len(cur))
	for v := range cur {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return t.Pre(out[i]) < t.Pre(out[j]) })
	return out
}

// EvalFromRoot evaluates an absolute or root-contexted expression.
func EvalFromRoot(t *tree.Tree, e Expr) []tree.NodeID {
	if t.Len() == 0 {
		return nil
	}
	return Eval(t, e, []tree.NodeID{t.Root()})
}

// Parse reads an XPath expression in the dialect:
//
//	expr     := "/"? step ("/" step)*   |  "//" name-or-* rest
//	step     := (axis "::")? test pred*
//	test     := NAME | "*"
//	pred     := "[" expr "]"
//
// The abbreviation //X desugars to descendant-or-self::*/child::X at the
// start and within paths; a leading / makes the path absolute.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return Expr{}, fmt.Errorf("xpath: %w", err)
	}
	p.skip()
	if p.pos < len(p.src) {
		return Expr{}, fmt.Errorf("xpath: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	return e, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peekStr(s string) bool {
	p.skip()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *parser) eat(s string) bool {
	if p.peekStr(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func isNameByte(c byte) bool {
	return c == '-' || c == '_' || c == '@' || c == '\'' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *parser) name() (string, error) {
	p.skip()
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected name at %d (%q)", p.pos, p.src[p.pos:])
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseExpr() (Expr, error) {
	var e Expr
	if p.eat("//") {
		e.Absolute = true
		st, err := p.parseStep()
		if err != nil {
			return e, err
		}
		st = descendantize(st, true)
		e.Steps = append(e.Steps, st)
	} else if p.eat("/") {
		e.Absolute = true
		st, err := p.parseStep()
		if err != nil {
			return e, err
		}
		e.Steps = append(e.Steps, st)
	} else {
		st, err := p.parseStep()
		if err != nil {
			return e, err
		}
		e.Steps = append(e.Steps, st)
	}
	for {
		if p.eat("//") {
			st, err := p.parseStep()
			if err != nil {
				return e, err
			}
			e.Steps = append(e.Steps, descendantize(st, false))
			continue
		}
		if p.eat("/") {
			st, err := p.parseStep()
			if err != nil {
				return e, err
			}
			e.Steps = append(e.Steps, st)
			continue
		}
		return e, nil
	}
}

// descendantize rewrites the child:: step of a // abbreviation: a leading
// //A becomes descendant-or-self::A from the root (so //A selects every
// A node including the root, matching the conjunctive-query reading of
// the introduction); a mid-path x//A becomes descendant::A (W3C
// semantics, excluding x itself).
func descendantize(st Step, leading bool) Step {
	if st.Axis == axis.Child {
		if leading {
			st.Axis = axis.ChildStar
		} else {
			st.Axis = axis.ChildPlus
		}
	}
	return st
}

func (p *parser) parseStep() (Step, error) {
	var st Step
	st.Axis = axis.Child
	p.skip()
	// Optional axis prefix.
	save := p.pos
	if nm, err := p.name(); err == nil {
		if p.eat("::") {
			a, ok := axisByName[nm]
			if !ok {
				return st, fmt.Errorf("unknown axis %q", nm)
			}
			st.Axis = a
		} else {
			p.pos = save
		}
	} else {
		p.pos = save
	}
	// Node test.
	if p.eat("*") {
		st.Test = "*"
	} else {
		nm, err := p.name()
		if err != nil {
			return st, err
		}
		st.Test = nm
	}
	// Predicates.
	for p.eat("[") {
		inner, err := p.parseExpr()
		if err != nil {
			return st, err
		}
		if !p.eat("]") {
			return st, fmt.Errorf("missing ] at %d", p.pos)
		}
		st.Preds = append(st.Preds, inner)
	}
	return st, nil
}
