package xpath

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/rewrite"
	"repro/internal/tree"
)

// sameNodeSet compares two node lists as sets.
func sameNodeSet(a, b []tree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[tree.NodeID]bool{}
	for _, v := range a {
		m[v] = true
	}
	for _, v := range b {
		if !m[v] {
			return false
		}
	}
	return true
}

func sel(t *testing.T, tr *tree.Tree, src string) []tree.NodeID {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return EvalFromRoot(tr, e)
}

func TestEvalBasics(t *testing.T) {
	tr := tree.MustParseTerm("A(B(D,E),C(B))")
	cases := []struct {
		src  string
		want int
	}{
		{"//B", 2},
		{"//A", 1},
		{"//Z", 0},
		{"//*", 6},
		{"/child::B", 1},     // absolute: children of root
		{"//B/child::D", 1},  //
		{"//B[child::D]", 1}, // predicate filters
		{"//B[child::D][child::E]", 1},
		{"//B[child::Z]", 0},
		{"//C/descendant::B", 1},
		{"//D/following::C", 1},
		{"//D/following::*", 3}, // E, C, B
		{"//E/parent::B", 1},
		{"//B/ancestor::A", 1},
		{"//D/following-sibling::E", 1},
		{"//E/preceding-sibling::D", 1},
		{"self::A", 1}, // relative from root
	}
	for _, tc := range cases {
		got := sel(t, tr, tc.src)
		if len(got) != tc.want {
			t.Errorf("%q selected %d nodes (%v), want %d", tc.src, len(got), got, tc.want)
		}
	}
}

func TestEvalIntroQueryEquivalence(t *testing.T) {
	// //A[B]/following::C  ==  Q(z) ← A(x), Child(x,y), B(y),
	// Following(x,z), C(z)  (the introduction's claim).
	e := MustParse("//A[child::B]/following::C")
	q := cq.MustParse("Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z)")
	engine := core.NewEngine()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(20), MaxChildren: 3,
			Alphabet: []string{"A", "B", "C"},
		})
		want := engine.EvalMonadic(tr, q)
		got := EvalFromRoot(tr, e)
		if !sameNodeSet(want, got) {
			t.Fatalf("trial %d: XPath %v vs CQ %v on %s", trial, got, want, tr)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "//", "//A[", "//A]", "foo::A", "//A//"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"//A[child::B]/following::C",
		"/child::A/descendant::B",
		"self::A[descendant::B][following::C]",
	}
	for _, src := range srcs {
		e := MustParse(src)
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e.String(), err)
		}
		if back.String() != e.String() {
			t.Errorf("round trip %q -> %q", e.String(), back.String())
		}
	}
}

func TestToCQEquivalence(t *testing.T) {
	exprs := []string{
		"//A",
		"//A[child::B]/following::C",
		"//A/descendant::B[following-sibling::C]",
		"//A[ancestor::B]",
	}
	engine := core.NewEngine()
	rng := rand.New(rand.NewSource(9))
	for _, src := range exprs {
		e := MustParse(src)
		q, err := ToCQ(e)
		if err != nil {
			t.Fatalf("ToCQ(%q): %v", src, err)
		}
		if cq.Classify(q) != cq.Acyclic {
			t.Errorf("ToCQ(%q) not acyclic", src)
		}
		for trial := 0; trial < 25; trial++ {
			tr := tree.Random(rng, tree.RandomConfig{
				Nodes: 1 + rng.Intn(15), MaxChildren: 3,
				Alphabet: []string{"A", "B", "C"},
			})
			want := EvalFromRoot(tr, e)
			got := engine.EvalMonadic(tr, q)
			if !sameNodeSet(want, got) {
				t.Fatalf("%q: XPath %v vs CQ %v on %s", src, want, got, tr)
			}
		}
	}
}

func TestToCQRejectsRootAnchored(t *testing.T) {
	e := MustParse("/child::A")
	if _, err := ToCQ(e); err == nil {
		t.Errorf("root-anchored /child::A should be rejected")
	}
}

func TestFromAcyclicCQ(t *testing.T) {
	// Remark 6.1 direction: monadic acyclic CQ -> XPath, equivalent on
	// single-labeled trees.
	queries := []string{
		"Q(y) <- A(x), Child(x, y)",
		"Q(y) <- A(x), Child+(x, y), B(y)",
		"Q(x) <- A(x), Child(x, y), B(y), NextSibling+(y, z), C(z)",
		"Q(z) <- A(x), Following(x, z), B(y), Child(y, z)",
		"Q(x) <- A(x), B(y)", // disconnected component
	}
	engine := core.NewEngine()
	rng := rand.New(rand.NewSource(13))
	for _, src := range queries {
		q := cq.MustParse(src)
		e, err := FromAcyclicCQ(q)
		if err != nil {
			t.Fatalf("FromAcyclicCQ(%s): %v", src, err)
		}
		for trial := 0; trial < 25; trial++ {
			tr := tree.Random(rng, tree.RandomConfig{
				Nodes: 1 + rng.Intn(15), MaxChildren: 3,
				Alphabet:      []string{"A", "B", "C"},
				UnlabeledProb: 0.1,
			})
			want := engine.EvalMonadic(tr, q)
			got := EvalFromRoot(tr, e)
			if !sameNodeSet(want, got) {
				t.Fatalf("%s -> %s: CQ %v vs XPath %v on %s", src, e, want, got, tr)
			}
		}
	}
}

func TestFromAPQEndToEnd(t *testing.T) {
	// Full pipeline of the paper's expressiveness story: cyclic CQ ->
	// APQ (Thm 6.10) -> XPath (Remark 6.1); union of XPath results equals
	// the original query's answers.
	q := rewrite.IntroQuery() // //A[B]/following::C as a CQ — acyclic? It is!
	// Use a genuinely cyclic query instead: Fig. 1.
	q = rewrite.Figure1Query()
	apq, err := rewrite.TranslateCQ(q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exprs, err := FromAPQ(apq)
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		tr := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(12), MaxChildren: 3,
			Alphabet: []string{"S", "NP", "PP"},
		})
		want := engine.EvalMonadic(tr, q)
		got := map[tree.NodeID]bool{}
		for _, e := range exprs {
			for _, v := range EvalFromRoot(tr, e) {
				got[v] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: XPath union %d nodes, CQ %d on %s", trial, len(got), len(want), tr)
		}
		for _, v := range want {
			if !got[v] {
				t.Fatalf("trial %d: missing node %d", trial, v)
			}
		}
	}
}

func TestFromAcyclicCQRejectsCyclic(t *testing.T) {
	q := cq.MustParse("Q(x) <- Child+(x, y), Child*(x, y)")
	if _, err := FromAcyclicCQ(q); err == nil {
		t.Errorf("cyclic query should be rejected")
	}
}
