package bitset

import (
	"math/rand"
	"testing"
)

// refSet mirrors a word vector as a bool slice — the oracle for the
// randomized checks below.
type refSet []bool

func (r refSet) anyIn(lo, hi int32) bool {
	if lo < 0 {
		lo = 0
	}
	if hi >= int32(len(r)) {
		hi = int32(len(r)) - 1
	}
	for i := lo; i <= hi; i++ {
		if r[i] {
			return true
		}
	}
	return false
}

func TestPointOpsAndScans(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(1))
	w := make([]uint64, Words(n))
	ref := make(refSet, n)
	for step := 0; step < 2000; step++ {
		i := int32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			Set(w, i)
			ref[i] = true
		} else {
			Clear(w, i)
			ref[i] = false
		}
		if got := Test(w, i); got != ref[i] {
			t.Fatalf("Test(%d) = %v, want %v", i, got, ref[i])
		}
	}
	count := 0
	first, last := int32(-1), int32(-1)
	for i, b := range ref {
		if b {
			count++
			if first < 0 {
				first = int32(i)
			}
			last = int32(i)
		}
	}
	if got := Count(w); got != count {
		t.Fatalf("Count = %d, want %d", got, count)
	}
	if got := First(w); got != first {
		t.Fatalf("First = %d, want %d", got, first)
	}
	if got := Last(w); got != last {
		t.Fatalf("Last = %d, want %d", got, last)
	}
	for probe := int32(-3); probe < n+5; probe++ {
		want := int32(-1)
		for i := probe; i < n; i++ {
			if i >= 0 && ref[i] {
				want = i
				break
			}
		}
		if got := NextAt(w, probe); got != want {
			t.Fatalf("NextAt(%d) = %d, want %d", probe, got, want)
		}
	}
	var seen []int32
	ForEach(w, func(i int32) bool { seen = append(seen, i); return true })
	if len(seen) != count {
		t.Fatalf("ForEach visited %d bits, want %d", len(seen), count)
	}
	for k := 1; k < len(seen); k++ {
		if seen[k-1] >= seen[k] {
			t.Fatalf("ForEach out of order at %d: %v", k, seen[k-1:k+1])
		}
	}
	// Early stop.
	visits := 0
	ForEach(w, func(int32) bool { visits++; return visits < 3 })
	if count >= 3 && visits != 3 {
		t.Fatalf("ForEach early stop visited %d", visits)
	}
}

func TestAnyInAndFillRange(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		w := make([]uint64, Words(n))
		ref := make(refSet, n)
		for k := 0; k < 15; k++ {
			i := int32(rng.Intn(n))
			Set(w, i)
			ref[i] = true
		}
		lo := int32(rng.Intn(n+20)) - 10
		hi := int32(rng.Intn(n+20)) - 10
		if got, want := AnyIn(w, lo, hi), ref.anyIn(lo, hi); got != want {
			t.Fatalf("AnyIn(%d, %d) = %v, want %v", lo, hi, got, want)
		}
		FillRange(w, lo, hi)
		for i := int32(0); i < n; i++ {
			want := ref[i] || (i >= lo && i <= hi)
			if Test(w, i) != want {
				t.Fatalf("after FillRange(%d, %d): bit %d = %v, want %v", lo, hi, i, Test(w, i), want)
			}
		}
	}
}

func TestAndIntoZeroGrow(t *testing.T) {
	a := make([]uint64, Words(100))
	b := make([]uint64, Words(100))
	FillRange(a, 0, 99)
	Set(b, 3)
	Set(b, 64)
	if got := AndInto(a, b); got != 2 {
		t.Fatalf("AndInto count = %d, want 2", got)
	}
	if !Test(a, 3) || !Test(a, 64) || Test(a, 4) {
		t.Fatalf("AndInto produced wrong bits")
	}
	ZeroAll(a)
	if Count(a) != 0 {
		t.Fatalf("ZeroAll left bits")
	}
	g := Grow(a[:1], Words(100))
	if len(g) != Words(100) || Count(g) != 0 {
		t.Fatalf("Grow: len %d count %d", len(g), Count(g))
	}
	// Grow reusing capacity must zero the slice.
	Set(g, 99)
	g = Grow(g, Words(100))
	if Count(g) != 0 {
		t.Fatalf("Grow reuse did not zero")
	}
}

func TestShifts(t *testing.T) {
	const n = 190
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		src := make([]uint64, Words(n))
		for k := 0; k < 20; k++ {
			Set(src, int32(rng.Intn(n)))
		}
		up := make([]uint64, Words(n))
		down := make([]uint64, Words(n))
		ShiftUpOne(up, src)
		ShiftDownOne(down, src)
		for i := int32(0); i < int32(Words(n))*64; i++ {
			wantUp := i > 0 && Test(src, i-1)
			if Test(up, i) != wantUp {
				t.Fatalf("ShiftUpOne bit %d = %v, want %v", i, Test(up, i), wantUp)
			}
			wantDown := i+1 < int32(Words(n))*64 && Test(src, i+1)
			if Test(down, i) != wantDown {
				t.Fatalf("ShiftDownOne bit %d = %v, want %v", i, Test(down, i), wantDown)
			}
		}
	}
}

// TestForEachFromDirections: the seekable scans agree with a bool-slice
// oracle for every start point, in both directions, including starts
// before, inside, and past the populated range — and early exit stops
// exactly where the callback says.
func TestForEachFromDirections(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(8))
	w := make([]uint64, Words(n))
	ref := make(refSet, n)
	for i := int32(0); i < n; i++ {
		if rng.Intn(3) == 0 {
			Set(w, i)
			ref[i] = true
		}
	}
	collectAsc := func(from int32) []int32 {
		var got []int32
		ForEachFrom(w, from, func(i int32) bool { got = append(got, i); return true })
		return got
	}
	collectDesc := func(from int32) []int32 {
		var got []int32
		ForEachDescFrom(w, from, func(i int32) bool { got = append(got, i); return true })
		return got
	}
	for _, from := range []int32{-5, -1, 0, 1, 63, 64, 65, 127, 128, n / 2, n - 1, n, n + 100} {
		var wantAsc, wantDesc []int32
		for i := int32(0); i < n; i++ {
			if ref[i] && i >= from {
				wantAsc = append(wantAsc, i)
			}
		}
		hi := from
		if hi >= n {
			hi = n - 1
		}
		if from < 0 {
			hi = -1 // ForEachDescFrom with negative from visits nothing
		}
		for i := hi; i >= 0; i-- {
			if ref[i] && i <= hi {
				wantDesc = append(wantDesc, i)
			}
		}
		gotAsc := collectAsc(from)
		if len(gotAsc) != len(wantAsc) {
			t.Fatalf("ForEachFrom(%d): %v want %v", from, gotAsc, wantAsc)
		}
		for k := range gotAsc {
			if gotAsc[k] != wantAsc[k] {
				t.Fatalf("ForEachFrom(%d): %v want %v", from, gotAsc, wantAsc)
			}
		}
		gotDesc := collectDesc(from)
		if len(gotDesc) != len(wantDesc) {
			t.Fatalf("ForEachDescFrom(%d): %v want %v", from, gotDesc, wantDesc)
		}
		for k := range gotDesc {
			if gotDesc[k] != wantDesc[k] {
				t.Fatalf("ForEachDescFrom(%d): %v want %v", from, gotDesc, wantDesc)
			}
		}
	}
	// Early exit: stop after 3 visits, confirm both the count and the
	// false return.
	calls := 0
	if ForEachFrom(w, 0, func(int32) bool { calls++; return calls < 3 }) {
		t.Fatal("ForEachFrom: early exit reported full scan")
	}
	if calls != 3 {
		t.Fatalf("ForEachFrom early exit ran %d callbacks", calls)
	}
	calls = 0
	if ForEachDescFrom(w, n-1, func(int32) bool { calls++; return calls < 3 }) {
		t.Fatal("ForEachDescFrom: early exit reported full scan")
	}
	if calls != 3 {
		t.Fatalf("ForEachDescFrom early exit ran %d callbacks", calls)
	}
}
