// Package bitset provides the word-level helpers shared by every bit-vector
// in the evaluation engines: NodeSets (consistency.NodeSet), the
// copy-on-write pin domains of incremental enumeration, and the bulk axis
// image kernels of the revise step. A bit vector is a plain []uint64 whose
// bit i (i>>6 word, i&63 bit) represents element i of a dense universe; the
// universe size is owned by the caller, and every helper treats bits beyond
// the last addressed index as absent.
//
// The helpers come in two families: point operations (Test/Set/Clear) and
// word-parallel sweeps (AnyIn, FillRange, AndInto, the shifts) that touch 64
// elements per machine word. The sweeps are what make the bulk semijoin
// revise of consistency.Image profitable: a whole domain's axis image is a
// handful of fills and gathers instead of a per-node probe loop.
package bitset

import "math/bits"

// Words returns the number of 64-bit words needed to address n bits.
func Words(n int) int { return (n + 63) / 64 }

// Test reports whether bit i is set.
func Test(w []uint64, i int32) bool { return w[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func Set(w []uint64, i int32) { w[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func Clear(w []uint64, i int32) { w[i>>6] &^= 1 << (uint(i) & 63) }

// AnyIn reports whether some bit with index in [lo, hi] is set. Tolerates
// empty and out-of-range intervals.
func AnyIn(w []uint64, lo, hi int32) bool {
	if lo < 0 {
		lo = 0
	}
	if max := int32(len(w)) * 64; hi >= max {
		hi = max - 1
	}
	if hi < lo {
		return false
	}
	loW, hiW := lo>>6, hi>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi) & 63))
	if loW == hiW {
		return w[loW]&loMask&hiMask != 0
	}
	if w[loW]&loMask != 0 {
		return true
	}
	for i := loW + 1; i < hiW; i++ {
		if w[i] != 0 {
			return true
		}
	}
	return w[hiW]&hiMask != 0
}

// First returns the index of the lowest set bit, or -1.
func First(w []uint64) int32 {
	for wi, x := range w {
		if x != 0 {
			return int32(wi*64 + bits.TrailingZeros64(x))
		}
	}
	return -1
}

// NextAt returns the smallest set bit index >= i, or -1. Negative i is
// treated as 0.
func NextAt(w []uint64, i int32) int32 {
	if i < 0 {
		i = 0
	}
	wi := int(i >> 6)
	if wi >= len(w) {
		return -1
	}
	x := w[wi] &^ ((1 << (uint(i) & 63)) - 1)
	for {
		if x != 0 {
			return int32(wi*64 + bits.TrailingZeros64(x))
		}
		wi++
		if wi >= len(w) {
			return -1
		}
		x = w[wi]
	}
}

// Last returns the index of the highest set bit, or -1.
func Last(w []uint64) int32 {
	for wi := len(w) - 1; wi >= 0; wi-- {
		if x := w[wi]; x != 0 {
			return int32(wi*64 + 63 - bits.LeadingZeros64(x))
		}
	}
	return -1
}

// ForEach calls fn on every set bit in ascending index order; stops early
// (returning false) if fn returns false.
func ForEach(w []uint64, fn func(i int32) bool) bool {
	for wi, x := range w {
		for x != 0 {
			b := bits.TrailingZeros64(x)
			if !fn(int32(wi*64 + b)) {
				return false
			}
			x &^= 1 << uint(b)
		}
	}
	return true
}

// ForEachFrom calls fn on every set bit with index >= from, in ascending
// index order; stops early (returning false) if fn returns false. from <= 0
// is equivalent to ForEach.
func ForEachFrom(w []uint64, from int32, fn func(i int32) bool) bool {
	if from < 0 {
		from = 0
	}
	wi := int(from >> 6)
	if wi >= len(w) {
		return true
	}
	x := w[wi] &^ ((1 << (uint(from) & 63)) - 1)
	for {
		for x != 0 {
			b := bits.TrailingZeros64(x)
			if !fn(int32(wi*64 + b)) {
				return false
			}
			x &^= 1 << uint(b)
		}
		wi++
		if wi >= len(w) {
			return true
		}
		x = w[wi]
	}
}

// ForEachDescFrom calls fn on every set bit with index <= from, in
// descending index order; stops early (returning false) if fn returns
// false. from beyond the addressable range clamps to the last bit, so
// passing the universe size (or larger) iterates the whole set backwards;
// from < 0 visits nothing.
func ForEachDescFrom(w []uint64, from int32, fn func(i int32) bool) bool {
	if from < 0 {
		return true
	}
	if max := int32(len(w))*64 - 1; from > max {
		from = max
	}
	if from < 0 { // empty word slice
		return true
	}
	wi := int(from >> 6)
	x := w[wi]
	if shift := 63 - (uint(from) & 63); shift > 0 {
		x &= ^uint64(0) >> shift
	}
	for {
		for x != 0 {
			b := 63 - bits.LeadingZeros64(x)
			if !fn(int32(wi*64 + b)) {
				return false
			}
			x &^= 1 << uint(b)
		}
		wi--
		if wi < 0 {
			return true
		}
		x = w[wi]
	}
}

// Count returns the number of set bits.
func Count(w []uint64) int {
	c := 0
	for _, x := range w {
		c += bits.OnesCount64(x)
	}
	return c
}

// AndInto intersects src into dst (dst &= src, element-wise over equal
// lengths) and returns the resulting set-bit count.
func AndInto(dst, src []uint64) int {
	c := 0
	for i := range dst {
		dst[i] &= src[i]
		c += bits.OnesCount64(dst[i])
	}
	return c
}

// ZeroAll clears every word.
func ZeroAll(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// FillRange sets every bit with index in [lo, hi]. Tolerates empty and
// out-of-range intervals (they are clamped to the addressable words).
func FillRange(w []uint64, lo, hi int32) {
	if lo < 0 {
		lo = 0
	}
	if max := int32(len(w)) * 64; hi >= max {
		hi = max - 1
	}
	if hi < lo {
		return
	}
	loW, hiW := lo>>6, hi>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi) & 63))
	if loW == hiW {
		w[loW] |= loMask & hiMask
		return
	}
	w[loW] |= loMask
	for i := loW + 1; i < hiW; i++ {
		w[i] = ^uint64(0)
	}
	w[hiW] |= hiMask
}

// ShiftUpOne writes src shifted up by one position into dst (bit i of src
// becomes bit i+1 of dst; bit 0 clears; the carry out of the last word is
// dropped). dst and src must have equal length and must not alias.
func ShiftUpOne(dst, src []uint64) {
	var carry uint64
	for i := range src {
		dst[i] = src[i]<<1 | carry
		carry = src[i] >> 63
	}
}

// ShiftDownOne writes src shifted down by one position into dst (bit i+1 of
// src becomes bit i of dst; the highest bit of the last word clears). dst
// and src must have equal length and must not alias.
func ShiftDownOne(dst, src []uint64) {
	for i := range src {
		dst[i] = src[i] >> 1
		if i+1 < len(src) {
			dst[i] |= src[i+1] << 63
		}
	}
}

// Grow returns s resized to nw words, zeroed, reusing the backing array
// when it is large enough.
func Grow(s []uint64, nw int) []uint64 {
	if cap(s) < nw {
		return make([]uint64, nw)
	}
	s = s[:nw]
	ZeroAll(s)
	return s
}

// Resize returns s resized to nw words, reusing the backing array when it
// is large enough. Unlike Grow the word contents are unspecified — for
// buffers whose next use overwrites them entirely (e.g. kernel image
// destinations, which zero themselves).
func Resize(s []uint64, nw int) []uint64 {
	if cap(s) < nw {
		return make([]uint64, nw)
	}
	return s[:nw]
}
