package dominance

import (
	"testing"

	"repro/internal/tree"
)

func TestSatisfiedBy(t *testing.T) {
	// Tree: S(NP(DT,NN), VP(VB,NP(NN))).
	tr := tree.MustParseTerm("S(NP(DT,NN),VP(VB,NP(NN)))")
	p := (&Problem{}).Add(
		Lab("x", "S"),
		Dom("x", "y"),
		Lab("y", "NP"),
		Prec("y", "z"),
		Lab("z", "VP"),
	)
	if !p.SatisfiedBy(tr) {
		t.Errorf("constraints should be realized by the tree")
	}
	bad := (&Problem{}).Add(
		Lab("x", "VP"),
		Prec("x", "y"),
		Lab("y", "NP"),
		Imm("z", "y"),
		Lab("z", "VP"),
	)
	// No NP after the VP.
	if bad.SatisfiedBy(tr) {
		t.Errorf("constraints should not be realized")
	}
}

func TestConstraintString(t *testing.T) {
	cs := []Constraint{Dom("a", "b"), Imm("a", "b"), Prec("a", "b"), Lab("a", "X")}
	for _, c := range cs {
		if c.String() == "" || c.String() == "invalid" {
			t.Errorf("bad String for %#v", c)
		}
	}
}

func TestSolvedForms(t *testing.T) {
	// A cyclic dominance problem: x and y dominate a common segment z,
	// with x preceding w inside y — solved forms disambiguate the
	// relative position of x and y.
	p := (&Problem{}).Add(
		Dom("x", "z"),
		Dom("y", "z"),
		Lab("x", "A"),
		Lab("y", "B"),
	)
	apq, err := p.SolvedForms()
	if err != nil {
		t.Fatal(err)
	}
	if len(apq.Disjuncts) == 0 {
		t.Fatalf("satisfiable problem must have solved forms")
	}
	if !apq.IsAcyclic() {
		t.Errorf("solved forms must be acyclic")
	}
	// Two common trees: A above B, B above A.
	if !apq.EvalBoolean(tree.MustParseTerm("A(B(C))")) {
		t.Errorf("A-above-B should realize the constraints")
	}
	if !apq.EvalBoolean(tree.MustParseTerm("B(A(C))")) {
		t.Errorf("B-above-A should realize the constraints")
	}
	if apq.EvalBoolean(tree.MustParseTerm("R(A,B)")) {
		t.Errorf("disjoint A and B cannot dominate a common node")
	}
}

func TestSatisfiable(t *testing.T) {
	ok := (&Problem{}).Add(Dom("x", "y"), Lab("x", "A"), Lab("y", "B"))
	sat, err := ok.Satisfiable()
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Errorf("problem should be satisfiable")
	}
	// Unsatisfiable: x strictly precedes y and y dominates x — Following
	// and Child* compose to a directed cycle through irreflexive axes.
	bad := (&Problem{}).Add(Prec("x", "y"), Dom("y", "x"))
	sat, err = bad.Satisfiable()
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Errorf("precedence + converse dominance should be unsatisfiable")
	}
}

func TestMultiSegmentPuzzle(t *testing.T) {
	// A classic underspecification diamond: root dominates two scopes,
	// both dominating the same hole.
	p := (&Problem{}).Add(
		Lab("root", "S"),
		Dom("root", "sc1"), Lab("sc1", "Q1"),
		Dom("root", "sc2"), Lab("sc2", "Q2"),
		Dom("sc1", "hole"), Dom("sc2", "hole"), Lab("hole", "P"),
	)
	apq, err := p.SolvedForms()
	if err != nil {
		t.Fatal(err)
	}
	// Both scope orders are solved forms: Q1 over Q2 and Q2 over Q1.
	q1OverQ2 := tree.MustParseTerm("S(Q1(Q2(P)))")
	q2OverQ1 := tree.MustParseTerm("S(Q2(Q1(P)))")
	if !apq.EvalBoolean(q1OverQ2) || !apq.EvalBoolean(q2OverQ1) {
		t.Errorf("both scope readings must realize the constraints")
	}
	sat, err := p.Satisfiable()
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Errorf("scope diamond should be satisfiable")
	}
}
