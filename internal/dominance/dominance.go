// Package dominance implements the computational-linguistics application
// of §1: conjunctions of dominance constraints [Marcus et al. 1983],
// which "turn out to be equivalent to (Boolean) conjunctive queries over
// trees". A constraint set speaks about named segments of an
// underspecified parse tree; deciding whether some tree realizes all
// constraints is Boolean CQ evaluation, and rewriting a constraint set
// into solved forms (acyclic queries, cf. Bodirsky et al. 2004)
// corresponds to the CQ → APQ translation of §6.
package dominance

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/rewrite"
	"repro/internal/tree"
)

// Kind is the constraint sort.
type Kind int

// Constraint kinds: X ◁* Y (dominance), X ◁ Y (immediate dominance),
// X ≺ Y (precedence, i.e. Following), and Label(X) = a.
const (
	Dominates            Kind = iota // reflexive-transitive: Child*
	ImmediatelyDominates             // Child
	Precedes                         // Following
	HasLabel
)

// Constraint is one dominance-logic literal over segment variables.
type Constraint struct {
	Kind  Kind
	X, Y  string // variable names; Y unused for HasLabel
	Label string // only for HasLabel
}

// String renders the constraint in dominance-logic notation.
func (c Constraint) String() string {
	switch c.Kind {
	case Dominates:
		return fmt.Sprintf("%s ◁* %s", c.X, c.Y)
	case ImmediatelyDominates:
		return fmt.Sprintf("%s ◁ %s", c.X, c.Y)
	case Precedes:
		return fmt.Sprintf("%s ≺ %s", c.X, c.Y)
	case HasLabel:
		return fmt.Sprintf("Label(%s)=%s", c.X, c.Label)
	default:
		return "invalid"
	}
}

// Problem is a conjunction of dominance constraints.
type Problem struct {
	Constraints []Constraint
}

// Add appends constraints fluently.
func (p *Problem) Add(cs ...Constraint) *Problem {
	p.Constraints = append(p.Constraints, cs...)
	return p
}

// Dom, Imm, Prec and Lab are constraint constructors.
func Dom(x, y string) Constraint  { return Constraint{Kind: Dominates, X: x, Y: y} }
func Imm(x, y string) Constraint  { return Constraint{Kind: ImmediatelyDominates, X: x, Y: y} }
func Prec(x, y string) Constraint { return Constraint{Kind: Precedes, X: x, Y: y} }
func Lab(x, a string) Constraint  { return Constraint{Kind: HasLabel, X: x, Label: a} }

// ToCQ translates the problem into the equivalent Boolean conjunctive
// query over (Child, Child*, Following).
func (p *Problem) ToCQ() *cq.Query {
	q := cq.New()
	for _, c := range p.Constraints {
		x := q.AddVar(c.X)
		switch c.Kind {
		case Dominates:
			q.AddAtom(axis.ChildStar, x, q.AddVar(c.Y))
		case ImmediatelyDominates:
			q.AddAtom(axis.Child, x, q.AddVar(c.Y))
		case Precedes:
			q.AddAtom(axis.Following, x, q.AddVar(c.Y))
		case HasLabel:
			q.AddLabel(c.Label, x)
		default:
			panic(fmt.Sprintf("dominance: invalid constraint kind %d", c.Kind))
		}
	}
	return q
}

// SatisfiedBy reports whether the parse tree t realizes all constraints.
func (p *Problem) SatisfiedBy(t *tree.Tree) bool {
	return core.NewEngine().EvalBoolean(t, p.ToCQ())
}

// SolvedForms computes a set of acyclic conjunctive queries (solved
// forms) whose union is equivalent to the constraint problem — the §6
// translation applied to the dominance query. An empty result means the
// constraints are unsatisfiable on every tree.
func (p *Problem) SolvedForms() (*rewrite.APQ, error) {
	return rewrite.TranslateCQ(p.ToCQ(), rewrite.Options{})
}

// Satisfiable reports whether some tree realizes the constraints, by
// checking that a satisfiable solved form exists. Solved forms are
// acyclic queries; an acyclic query over the (negation-free) axes is
// satisfiable iff evaluating it on its own "canonical" tree succeeds —
// we check satisfiability on a generic tree grown from the solved form's
// size (a complete binary tree with all labels on every node would be
// ideal; multi-labels make this legal).
func (p *Problem) Satisfiable() (bool, error) {
	apq, err := p.SolvedForms()
	if err != nil {
		return false, err
	}
	if len(apq.Disjuncts) == 0 {
		return false, nil
	}
	// Build a universal tree: a path of depth d where every node carries
	// every label used, plus sibling fans — Following constraints need
	// siblings. Size grows with the query, so every satisfiable acyclic
	// disjunct embeds.
	labels := map[string]bool{}
	maxSize := 0
	for _, d := range apq.Disjuncts {
		if d.Size() > maxSize {
			maxSize = d.Size()
		}
		for _, la := range d.Labels {
			labels[la.Label] = true
		}
	}
	var all []string
	for l := range labels {
		all = append(all, l)
	}
	depth := maxSize + 2
	width := maxSize + 2
	b := tree.NewBuilder(depth * width)
	spine := b.AddNode(tree.NilNode, all...)
	for i := 0; i < depth; i++ {
		next := tree.NilNode
		for j := 0; j < width; j++ {
			id := b.AddNode(spine, all...)
			if j == 0 {
				next = id
			}
		}
		spine = next
	}
	universal := b.Build()
	return apq.EvalBoolean(universal), nil
}
