package axis

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func TestSubsetOfOrderFacts(t *testing.T) {
	// Verify the §4 inclusion facts on random trees: whenever
	// SubsetOfOrder(a, o) holds, R(u,v) implies rank(u) <= rank(v)
	// (strict for irreflexive axes).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		tr := tree.Random(rng, tree.DefaultRandomConfig(1+rng.Intn(40)))
		for _, a := range All() {
			for _, o := range Orders {
				if !SubsetOfOrder(a, o) {
					continue
				}
				for _, p := range Pairs(tr, a) {
					ru, rv := o.Rank(tr, p[0]), o.Rank(tr, p[1])
					if ru > rv {
						t.Fatalf("%v claimed ⊆ %v but (%d,%d) has ranks %d > %d on %s",
							a, o, p[0], p[1], ru, rv, tr)
					}
					if a.Irreflexive() && ru == rv && p[0] != p[1] {
						t.Fatalf("%v ⊆ %v: distinct pair with equal rank", a, o)
					}
				}
			}
		}
	}
}

func TestSubsetOfOrderNegativesHaveWitnesses(t *testing.T) {
	// For paper axes where SubsetOfOrder is false, exhibit a tree where
	// the inclusion fails — ensures the fact table is not over-cautious.
	type neg struct {
		a Axis
		o Order
	}
	negs := []neg{
		{Child, PostOrder},        // parent before child fails in post
		{ChildPlus, PostOrder},    //
		{ChildStar, PostOrder},    //
		{Following, BFLROrder},    // following can be above in the tree
		{Parent, PreOrder},        //
		{AncestorPlus, BFLROrder}, //
		{Preceding, PreOrder},     //
		{PrevSibling, PreOrder},   //
		{DocOrder, PostOrder},
		{DocOrderSucc, BFLROrder},
		{PrevSiblingPlus, PreOrder},
	}
	// A tree where Following goes "up": F(A(B),C): B's following
	// includes C; bflr(C) > bflr(B)? C is at depth 1, B at depth 2:
	// bflr(C) < bflr(B). So Following(B, C) violates bflr.
	wit := tree.MustParseTerm("F(A(B),C)")
	for _, ng := range negs {
		if SubsetOfOrder(ng.a, ng.o) {
			t.Errorf("fact table claims %v ⊆ %v", ng.a, ng.o)
			continue
		}
		found := false
		for _, p := range Pairs(wit, ng.a) {
			if ng.o.Rank(wit, p[0]) > ng.o.Rank(wit, p[1]) {
				found = true
				break
			}
		}
		if !found {
			// Not all negatives have a witness on this one tree; try a
			// deeper one.
			wit2 := tree.MustParseTerm("R(A(B(C),D),E)")
			for _, p := range Pairs(wit2, ng.a) {
				if ng.o.Rank(wit2, p[0]) > ng.o.Rank(wit2, p[1]) {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("no witness that %v ⊄ %v on sample trees", ng.a, ng.o)
		}
	}
}

func TestOrderRankAndNodeAt(t *testing.T) {
	tr := tree.MustParseTerm("A(B(D,E),C)")
	for _, o := range Orders {
		for r := int32(0); r < int32(tr.Len()); r++ {
			v := o.NodeAt(tr, r)
			if o.Rank(tr, v) != r {
				t.Errorf("%v: NodeAt/Rank mismatch at %d", o, r)
			}
		}
	}
	if !PreOrder.Less(tr, 0, 1) {
		t.Errorf("root should be pre-first")
	}
}

func TestOrderString(t *testing.T) {
	if PreOrder.String() != "<pre" || PostOrder.String() != "<post" || BFLROrder.String() != "<bflr" {
		t.Errorf("order names wrong")
	}
}

func TestCommonXOrder(t *testing.T) {
	cases := []struct {
		axes []Axis
		want Order
		ok   bool
	}{
		{[]Axis{Child}, BFLROrder, true},
		{[]Axis{ChildPlus, ChildStar}, PreOrder, true},
		{[]Axis{Following}, PostOrder, true},
		{[]Axis{Child, NextSibling, NextSiblingPlus, NextSiblingStar}, BFLROrder, true},
		{[]Axis{Child, ChildPlus}, 0, false},
		{[]Axis{Child, Following}, 0, false},
		{[]Axis{ChildStar, NextSibling}, 0, false},
		{[]Axis{Following, NextSiblingStar}, 0, false},
		{[]Axis{}, PreOrder, true}, // empty signature: any order
	}
	for _, tc := range cases {
		o, ok := CommonXOrder(tc.axes)
		if ok != tc.ok {
			t.Errorf("CommonXOrder(%v) ok = %v, want %v", tc.axes, ok, tc.ok)
			continue
		}
		if ok && o != tc.want {
			t.Errorf("CommonXOrder(%v) = %v, want %v", tc.axes, o, tc.want)
		}
	}
}

func TestMaximalTractableSets(t *testing.T) {
	sets := MaximalTractableSets()
	if len(sets) != 3 {
		t.Fatalf("want 3 maximal sets, got %d", len(sets))
	}
	// Each set must admit a common order...
	for _, s := range sets {
		if _, ok := CommonXOrder(s); !ok {
			t.Errorf("maximal set %v has no common X order", s)
		}
	}
	// ...and be maximal: adding any other paper axis breaks it.
	for _, s := range sets {
		in := map[Axis]bool{}
		for _, a := range s {
			in[a] = true
		}
		for _, extra := range PaperAxes {
			if in[extra] {
				continue
			}
			if _, ok := CommonXOrder(append(append([]Axis{}, s...), extra)); ok {
				t.Errorf("set %v + %v still tractable; set not maximal", s, extra)
			}
		}
	}
	// The three sets are pairwise disjoint (§1.1).
	seen := map[Axis]int{}
	for _, s := range sets {
		for _, a := range s {
			seen[a]++
		}
	}
	for a, c := range seen {
		if c > 1 {
			t.Errorf("axis %v appears in %d maximal sets", a, c)
		}
	}
}
