package axis

import (
	"fmt"

	"repro/internal/tree"
)

// Order identifies one of the three total orders on tree nodes studied in
// §2 of the paper.
type Order int

const (
	// PreOrder (≤pre) is depth-first left-to-right traversal order; for
	// XML it coincides with document order (sequence of opening tags).
	PreOrder Order = iota
	// PostOrder (≤post) is bottom-up left-to-right traversal order
	// (sequence of closing tags).
	PostOrder
	// BFLROrder (≤bflr) is breadth-first left-to-right traversal order.
	BFLROrder

	numOrders
)

// Orders lists all three total orders.
var Orders = []Order{PreOrder, PostOrder, BFLROrder}

// String returns the paper's name for the order.
func (o Order) String() string {
	switch o {
	case PreOrder:
		return "<pre"
	case PostOrder:
		return "<post"
	case BFLROrder:
		return "<bflr"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Rank returns the rank of v under the order in t.
func (o Order) Rank(t *tree.Tree, v tree.NodeID) int32 {
	switch o {
	case PreOrder:
		return t.Pre(v)
	case PostOrder:
		return t.Post(v)
	case BFLROrder:
		return t.BFLR(v)
	default:
		panic(fmt.Sprintf("axis: Rank of invalid order %d", int(o)))
	}
}

// Less reports u < v under the order in t.
func (o Order) Less(t *tree.Tree, u, v tree.NodeID) bool {
	return o.Rank(t, u) < o.Rank(t, v)
}

// NodeAt returns the node with the given rank under the order.
func (o Order) NodeAt(t *tree.Tree, rank int32) tree.NodeID {
	switch o {
	case PreOrder:
		return t.ByPre(rank)
	case PostOrder:
		return t.ByPost(rank)
	case BFLROrder:
		return t.ByBFLR(rank)
	default:
		panic(fmt.Sprintf("axis: NodeAt of invalid order %d", int(o)))
	}
}

// SubsetOfOrder reports the order-inclusion facts listed at the start of
// §4 of the paper: whether R(u,v) ⇒ u < v under the order, for every tree.
//
//  1. every axis in Ax (and the order extensions) is a subset of ≤pre;
//  2. Parent, Ancestor+, Ancestor*, Following, NextSibling, NextSibling+
//     and NextSibling* are subsets of ≤post;
//  3. Child, Child+, Child*, NextSibling, NextSibling+ and NextSibling*
//     are subsets of ≤bflr.
//
// (For reflexive axes the inclusion is in the reflexive closure ≤.)
func SubsetOfOrder(a Axis, o Order) bool {
	switch o {
	case PreOrder:
		switch a {
		case Child, ChildPlus, ChildStar, NextSibling, NextSiblingPlus,
			NextSiblingStar, Following, Self, DocOrder, DocOrderSucc:
			return true
		case Parent, AncestorPlus, AncestorStar, PrevSibling,
			PrevSiblingPlus, PrevSiblingStar, Preceding:
			return false
		}
	case PostOrder:
		switch a {
		case Parent, AncestorPlus, AncestorStar, Following, NextSibling,
			NextSiblingPlus, NextSiblingStar, Self:
			return true
		case Child, ChildPlus, ChildStar, PrevSibling, PrevSiblingPlus,
			PrevSiblingStar, Preceding, DocOrder, DocOrderSucc:
			return false
		}
	case BFLROrder:
		switch a {
		case Child, ChildPlus, ChildStar, NextSibling, NextSiblingPlus,
			NextSiblingStar, Self:
			return true
		case Parent, AncestorPlus, AncestorStar, PrevSibling,
			PrevSiblingPlus, PrevSiblingStar, Following, Preceding,
			DocOrder, DocOrderSucc:
			return false
		}
	}
	panic(fmt.Sprintf("axis: SubsetOfOrder(%v, %v) out of range", a, o))
}

// HasXProperty reports the facts of Theorem 4.1 (plus Example 4.5 for the
// order extensions): whether the axis has the X-property with respect to
// the order on every tree. These are the *proved* facts; package xprop can
// verify them on concrete trees.
//
//	(1) Child+ and Child* have the X-property w.r.t. <pre;
//	(2) Following has the X-property w.r.t. <post;
//	(3) Child, NextSibling, NextSibling* and NextSibling+ have the
//	    X-property w.r.t. <bflr;
//	(+) Self, DocOrder (<pre itself) and DocOrderSucc have the X-property
//	    w.r.t. <pre (Example 4.5).
func HasXProperty(a Axis, o Order) bool {
	switch o {
	case PreOrder:
		switch a {
		case ChildPlus, ChildStar, Self, DocOrder, DocOrderSucc:
			return true
		}
		return false
	case PostOrder:
		switch a {
		case Following, Self:
			return true
		}
		return false
	case BFLROrder:
		switch a {
		case Child, NextSibling, NextSiblingPlus, NextSiblingStar, Self:
			return true
		}
		return false
	default:
		panic(fmt.Sprintf("axis: HasXProperty of invalid order %d", int(o)))
	}
}

// CommonXOrder returns an order with respect to which every axis in axes
// has the X-property, if one exists. This is the tractability condition of
// Theorem 1.1: the conjunctive queries over the signature are in P iff
// such an order exists.
func CommonXOrder(axes []Axis) (Order, bool) {
	for _, o := range Orders {
		all := true
		for _, a := range axes {
			if !HasXProperty(a, o) {
				all = false
				break
			}
		}
		if all {
			return o, true
		}
	}
	return 0, false
}

// MaximalTractableSets returns the subset-maximal sets of paper axes whose
// conjunctive queries are tractable (§1.1): exactly
//
//	{Child, NextSibling, NextSibling*, NextSibling+},
//	{Child*, Child+}, and {Following}.
func MaximalTractableSets() [][]Axis {
	return [][]Axis{
		{Child, NextSibling, NextSiblingStar, NextSiblingPlus},
		{ChildStar, ChildPlus},
		{Following},
	}
}
