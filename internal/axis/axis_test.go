package axis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

// refHolds is an independent, definition-level implementation of each axis
// used to cross-check the O(1) implementations.
func refHolds(t *tree.Tree, a Axis, u, v tree.NodeID) bool {
	parentChain := func(x tree.NodeID) []tree.NodeID {
		var out []tree.NodeID
		for p := t.Parent(x); p != tree.NilNode; p = t.Parent(p) {
			out = append(out, p)
		}
		return out
	}
	isAnc := func(x, y tree.NodeID) bool {
		for _, p := range parentChain(y) {
			if p == x {
				return true
			}
		}
		return false
	}
	sameParent := func() bool {
		return t.Parent(u) != tree.NilNode && t.Parent(u) == t.Parent(v)
	}
	switch a {
	case Child:
		return t.Parent(v) == u
	case ChildPlus:
		return isAnc(u, v)
	case ChildStar:
		return u == v || isAnc(u, v)
	case NextSibling:
		return sameParent() && t.SiblingIndex(v) == t.SiblingIndex(u)+1
	case NextSiblingPlus:
		return sameParent() && t.SiblingIndex(v) > t.SiblingIndex(u)
	case NextSiblingStar:
		return u == v || (sameParent() && t.SiblingIndex(v) > t.SiblingIndex(u))
	case Following:
		// Eq. (1): ∃z1 ∃z2: Child*(z1,u) ∧ NextSibling+(z1,z2) ∧ Child*(z2,v).
		for z1 := tree.NodeID(0); int(z1) < t.Len(); z1++ {
			if !refHolds(t, ChildStar, z1, u) {
				continue
			}
			for z2 := tree.NodeID(0); int(z2) < t.Len(); z2++ {
				if refHolds(t, NextSiblingPlus, z1, z2) && refHolds(t, ChildStar, z2, v) {
					return true
				}
			}
		}
		return false
	case Parent, AncestorPlus, AncestorStar, PrevSibling, PrevSiblingPlus,
		PrevSiblingStar, Preceding:
		return refHolds(t, a.Inverse(), v, u)
	case Self:
		return u == v
	case DocOrder:
		return t.Pre(u) < t.Pre(v)
	case DocOrderSucc:
		return t.Pre(v) == t.Pre(u)+1
	default:
		panic("unknown axis in refHolds")
	}
}

func TestHoldsAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		tr := tree.Random(rng, tree.DefaultRandomConfig(1+rng.Intn(30)))
		for _, a := range All() {
			for u := tree.NodeID(0); int(u) < tr.Len(); u++ {
				for v := tree.NodeID(0); int(v) < tr.Len(); v++ {
					got := Holds(tr, a, u, v)
					want := refHolds(tr, a, u, v)
					if got != want {
						t.Fatalf("%v(%d,%d) on %s = %v, want %v", a, u, v, tr, got, want)
					}
				}
			}
		}
	}
}

func TestFollowingDecomposition(t *testing.T) {
	// Property test of Eq. (1): the O(1) Following test equals the
	// existential decomposition through Child* and NextSibling+.
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%25 + 1
		rng := rand.New(rand.NewSource(seed))
		tr := tree.Random(rng, tree.DefaultRandomConfig(n))
		for u := tree.NodeID(0); int(u) < n; u++ {
			for v := tree.NodeID(0); int(v) < n; v++ {
				if Holds(tr, Following, u, v) != refHolds(tr, Following, u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestForEachSuccessorAgreesWithHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := tree.Random(rng, tree.DefaultRandomConfig(40))
	for _, a := range All() {
		for u := tree.NodeID(0); int(u) < tr.Len(); u++ {
			got := map[tree.NodeID]bool{}
			prevPre := int32(-1)
			ForEachSuccessor(tr, a, u, func(v tree.NodeID) bool {
				if got[v] {
					t.Fatalf("%v successors of %d: duplicate %d", a, u, v)
				}
				got[v] = true
				if tr.Pre(v) <= prevPre && a != AncestorPlus && a != AncestorStar &&
					a != PrevSibling && a != PrevSiblingPlus && a != PrevSiblingStar {
					t.Fatalf("%v successors of %d not in pre-order", a, u)
				}
				prevPre = tr.Pre(v)
				return true
			})
			for v := tree.NodeID(0); int(v) < tr.Len(); v++ {
				if got[v] != Holds(tr, a, u, v) {
					t.Fatalf("%v(%d,%d): enumeration %v, Holds %v", a, u, v, got[v], Holds(tr, a, u, v))
				}
			}
		}
	}
}

func TestForEachSuccessorEarlyStop(t *testing.T) {
	tr := tree.MustParseTerm("A(B,C,D,E)")
	count := 0
	ForEachSuccessor(tr, Child, tr.Root(), func(tree.NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d, want 2", count)
	}
}

// TestSuccessorOrderContract pins the documented enumeration order of
// ForEachSuccessor and Pairs: pairs grouped by increasing pre(u); within a
// group, increasing pre(v) for forward axes and decreasing pre(v) for the
// upward/leftward walks (Ancestor+, Ancestor*, PrevSibling+, PrevSibling*).
func TestSuccessorOrderContract(t *testing.T) {
	decreasing := map[Axis]bool{
		AncestorPlus: true, AncestorStar: true,
		PrevSiblingPlus: true, PrevSiblingStar: true,
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		tr := tree.Random(rng, tree.DefaultRandomConfig(30+10*trial))
		for _, a := range All() {
			// Per-u successor monotonicity in the documented direction.
			for u := tree.NodeID(0); int(u) < tr.Len(); u++ {
				prevPre := int32(-1)
				ForEachSuccessor(tr, a, u, func(v tree.NodeID) bool {
					if prevPre >= 0 {
						inc := tr.Pre(v) > prevPre
						if inc == decreasing[a] {
							t.Fatalf("%v successors of node %d: pre ranks not %s (saw %d then %d)",
								a, u, map[bool]string{false: "increasing", true: "decreasing"}[decreasing[a]],
								prevPre, tr.Pre(v))
						}
					}
					prevPre = tr.Pre(v)
					return true
				})
			}
			// Pairs groups by increasing pre(u).
			prevU := int32(-1)
			for _, p := range Pairs(tr, a) {
				if pu := tr.Pre(p[0]); pu < prevU {
					t.Fatalf("%v Pairs not grouped by increasing pre(u): %d after %d", a, pu, prevU)
				} else {
					prevU = pu
				}
			}
		}
	}
}

func TestPairsAndCount(t *testing.T) {
	tr := tree.MustParseTerm("A(B(D),C)")
	// Child pairs: (A,B),(A,C),(B,D) = 3.
	if got := Count(tr, Child); got != 3 {
		t.Errorf("Count(Child) = %d, want 3", got)
	}
	if got := len(Pairs(tr, Child)); got != 3 {
		t.Errorf("len(Pairs(Child)) = %d, want 3", got)
	}
	// Child* pairs: 4 self + 3 child + (A,D) = 8.
	if got := Count(tr, ChildStar); got != 8 {
		t.Errorf("Count(Child*) = %d, want 8", got)
	}
	// Following: B's subtree {B,D} precedes C: (B,C),(D,C) = 2.
	if got := Count(tr, Following); got != 2 {
		t.Errorf("Count(Following) = %d, want 2", got)
	}
}

func TestInverseInvolution(t *testing.T) {
	for _, a := range All() {
		if a == DocOrder || a == DocOrderSucc {
			continue
		}
		if got := a.Inverse().Inverse(); got != a {
			t.Errorf("Inverse(Inverse(%v)) = %v", a, got)
		}
	}
}

func TestInversePanicsForOrderExtensions(t *testing.T) {
	for _, a := range []Axis{DocOrder, DocOrderSucc} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Inverse(%v) should panic", a)
				}
			}()
			a.Inverse()
		}()
	}
}

func TestParseNames(t *testing.T) {
	cases := map[string]Axis{
		"Child":              Child,
		"child":              Child,
		"Child+":             ChildPlus,
		"Descendant":         ChildPlus,
		"descendant-or-self": ChildStar,
		"Child*":             ChildStar,
		"NextSibling":        NextSibling,
		"following-sibling":  NextSiblingPlus,
		"NextSibling*":       NextSiblingStar,
		"Following":          Following,
		"Parent":             Parent,
		"ancestor":           AncestorPlus,
		"Self":               Self,
	}
	for name, want := range cases {
		got, err := Parse(name)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := Parse("sideways"); err == nil {
		t.Errorf("Parse(sideways) should fail")
	}
}

func TestStringNames(t *testing.T) {
	if Child.String() != "Child" || ChildPlus.String() != "Child+" ||
		NextSiblingStar.String() != "NextSibling*" || Following.String() != "Following" {
		t.Errorf("axis names wrong: %v %v %v %v", Child, ChildPlus, NextSiblingStar, Following)
	}
	if Axis(99).String() == "" {
		t.Errorf("out-of-range axis should still format")
	}
}

func TestReflexivity(t *testing.T) {
	reflexive := map[Axis]bool{
		ChildStar: true, NextSiblingStar: true, AncestorStar: true,
		PrevSiblingStar: true, Self: true,
	}
	for _, a := range All() {
		if got := a.Reflexive(); got != reflexive[a] {
			t.Errorf("Reflexive(%v) = %v", a, got)
		}
	}
}

func TestAxisSwitchExhaustive(t *testing.T) {
	// Every axis must be handled by Holds, ForEachSuccessor, Reflexive and
	// String without panicking — guards the enum-as-sum-type encoding.
	tr := tree.MustParseTerm("A(B,C)")
	for _, a := range All() {
		_ = a.String()
		_ = a.Reflexive()
		_ = Holds(tr, a, 0, 1)
		ForEachSuccessor(tr, a, 1, func(tree.NodeID) bool { return true })
	}
}

func TestPaperAxesList(t *testing.T) {
	if len(PaperAxes) != 7 {
		t.Fatalf("PaperAxes has %d axes, want 7", len(PaperAxes))
	}
}
