// Package axis implements the binary structure relations ("axes") of
// "Conjunctive Queries over Trees" (§2): Child, Child+, Child*,
// NextSibling, NextSibling+, NextSibling*, and Following, plus their
// inverses, Self, and the order-extension relations of Example 4.5
// (document order <pre and its successor relation Succ<pre).
//
// Every axis test is O(1) on top of the precomputed pre/post/BFLR
// numbering of package tree. The package also records the order-inclusion
// facts of §4 (which axes are subsets of which total order) and the
// X-property facts of Theorem 4.1, which drive the dichotomy classifier in
// package core.
package axis

import (
	"fmt"

	"repro/internal/tree"
)

// Axis identifies one of the binary tree relations.
//
// Go note: this is the enum-with-exhaustive-switch encoding of what would
// be a sum type elsewhere; every switch over Axis must carry a default
// panic, and TestAxisSwitchExhaustive keeps the tables in sync.
type Axis int

// The paper's axis set Ax (§2) followed by extensions.
const (
	Child           Axis = iota // parent-to-child edge
	ChildPlus                   // Descendant: transitive closure of Child
	ChildStar                   // Descendant-or-self: refl.-trans. closure
	NextSibling                 // immediate right sibling
	NextSiblingPlus             // Following-sibling: transitive closure
	NextSiblingStar             // refl.-trans. closure of NextSibling
	Following                   // Eq. (1): after the subtree, in doc order

	// Inverse axes (redundant per §1.1, provided for applications).
	Parent
	AncestorPlus // inverse of ChildPlus (XPath ancestor)
	AncestorStar // inverse of ChildStar (XPath ancestor-or-self)
	PrevSibling
	PrevSiblingPlus // XPath preceding-sibling
	PrevSiblingStar
	Preceding // inverse of Following

	// Extensions of Example 4.5: relations trivially X with respect to
	// <pre that may be added to τ1 while retaining tractability.
	Self
	DocOrder     // <pre, strict document order
	DocOrderSucc // Succ<pre: next node in document order

	numAxes
)

// PaperAxes is the set Ax studied by the paper, in its canonical order.
var PaperAxes = []Axis{
	Child, ChildPlus, ChildStar,
	NextSibling, NextSiblingPlus, NextSiblingStar,
	Following,
}

// TableIAxes is the axis ordering of Table I of the paper.
var TableIAxes = []Axis{
	Child, ChildPlus, ChildStar,
	NextSibling, NextSiblingPlus, NextSiblingStar,
	Following,
}

var axisNames = [numAxes]string{
	Child:           "Child",
	ChildPlus:       "Child+",
	ChildStar:       "Child*",
	NextSibling:     "NextSibling",
	NextSiblingPlus: "NextSibling+",
	NextSiblingStar: "NextSibling*",
	Following:       "Following",
	Parent:          "Parent",
	AncestorPlus:    "Ancestor+",
	AncestorStar:    "Ancestor*",
	PrevSibling:     "PrevSibling",
	PrevSiblingPlus: "PrevSibling+",
	PrevSiblingStar: "PrevSibling*",
	Preceding:       "Preceding",
	Self:            "Self",
	DocOrder:        "DocOrder",
	DocOrderSucc:    "DocOrderSucc",
}

// String returns the paper's name for the axis (e.g. "Child+").
func (a Axis) String() string {
	if a < 0 || a >= numAxes {
		return fmt.Sprintf("Axis(%d)", int(a))
	}
	return axisNames[a]
}

// Valid reports whether a is a defined axis.
func (a Axis) Valid() bool { return a >= 0 && a < numAxes }

// All returns every defined axis.
func All() []Axis {
	out := make([]Axis, numAxes)
	for i := range out {
		out[i] = Axis(i)
	}
	return out
}

// byName maps every printable name (plus XPath aliases) to the axis.
var byName = map[string]Axis{
	"child": Child, "child+": ChildPlus, "child*": ChildStar,
	"descendant": ChildPlus, "descendant-or-self": ChildStar,
	"nextsibling": NextSibling, "nextsibling+": NextSiblingPlus,
	"nextsibling*":      NextSiblingStar,
	"following-sibling": NextSiblingPlus,
	"following":         Following,
	"parent":            Parent,
	"ancestor+":         AncestorPlus, "ancestor": AncestorPlus,
	"ancestor*": AncestorStar, "ancestor-or-self": AncestorStar,
	"prevsibling": PrevSibling, "prevsibling+": PrevSiblingPlus,
	"prevsibling*":      PrevSiblingStar,
	"preceding-sibling": PrevSiblingPlus,
	"preceding":         Preceding,
	"self":              Self,
	"docorder":          DocOrder, "docordersucc": DocOrderSucc,
}

// Parse resolves an axis name (the paper's names, case-insensitive, or the
// XPath aliases descendant, following-sibling, ...).
func Parse(name string) (Axis, error) {
	a, ok := byName[lower(name)]
	if !ok {
		return 0, fmt.Errorf("axis: unknown axis %q", name)
	}
	return a, nil
}

// MustParse is Parse that panics on error.
func MustParse(name string) Axis {
	a, err := Parse(name)
	if err != nil {
		panic(err)
	}
	return a
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// TryInverse returns the axis b with b(u,v) ⇔ a(v,u), and whether such a
// named axis exists. The order extensions DocOrder and DocOrderSucc are
// only used in forward form and have no named inverse (ok = false) —
// callers that must handle every axis (e.g. the bulk image kernels of
// package consistency) special-case them instead of panicking.
func (a Axis) TryInverse() (Axis, bool) {
	if a == DocOrder || a == DocOrderSucc {
		return 0, false
	}
	return a.Inverse(), true
}

// Inverse returns the axis b with b(u,v) ⇔ a(v,u).
func (a Axis) Inverse() Axis {
	switch a {
	case Child:
		return Parent
	case ChildPlus:
		return AncestorPlus
	case ChildStar:
		return AncestorStar
	case NextSibling:
		return PrevSibling
	case NextSiblingPlus:
		return PrevSiblingPlus
	case NextSiblingStar:
		return PrevSiblingStar
	case Following:
		return Preceding
	case Parent:
		return Child
	case AncestorPlus:
		return ChildPlus
	case AncestorStar:
		return ChildStar
	case PrevSibling:
		return NextSibling
	case PrevSiblingPlus:
		return NextSiblingPlus
	case PrevSiblingStar:
		return NextSiblingStar
	case Preceding:
		return Following
	case Self:
		return Self
	case DocOrder, DocOrderSucc:
		// The order extensions are only used in forward form; their
		// inverses are not part of the studied signatures.
		panic(fmt.Sprintf("axis: %v has no named inverse", a))
	default:
		panic(fmt.Sprintf("axis: Inverse of invalid axis %d", int(a)))
	}
}

// Reflexive reports whether the axis relation contains all (v, v) pairs.
func (a Axis) Reflexive() bool {
	switch a {
	case ChildStar, NextSiblingStar, AncestorStar, PrevSiblingStar, Self:
		return true
	case Child, ChildPlus, NextSibling, NextSiblingPlus, Following,
		Parent, AncestorPlus, PrevSibling, PrevSiblingPlus, Preceding,
		DocOrder, DocOrderSucc:
		return false
	default:
		panic(fmt.Sprintf("axis: Reflexive of invalid axis %d", int(a)))
	}
}

// Irreflexive reports whether the relation excludes every (v, v) pair.
// (Non-reflexive axes here are all irreflexive.)
func (a Axis) Irreflexive() bool { return !a.Reflexive() && a != Self }

// Holds reports whether the axis relation contains (u, v) in t. O(1).
func Holds(t *tree.Tree, a Axis, u, v tree.NodeID) bool {
	switch a {
	case Child:
		return t.Parent(v) == u
	case ChildPlus:
		return t.IsAncestor(u, v)
	case ChildStar:
		return t.IsAncestorOrSelf(u, v)
	case NextSibling:
		return u != v && t.Parent(u) == t.Parent(v) && t.Parent(u) != tree.NilNode &&
			t.SiblingIndex(v) == t.SiblingIndex(u)+1
	case NextSiblingPlus:
		return u != v && t.Parent(u) == t.Parent(v) && t.Parent(u) != tree.NilNode &&
			t.SiblingIndex(v) > t.SiblingIndex(u)
	case NextSiblingStar:
		return u == v || (t.Parent(u) == t.Parent(v) && t.Parent(u) != tree.NilNode &&
			t.SiblingIndex(v) > t.SiblingIndex(u))
	case Following:
		return t.Pre(v) > t.PreEnd(u)
	case Parent, AncestorPlus, AncestorStar, PrevSibling, PrevSiblingPlus,
		PrevSiblingStar, Preceding:
		return Holds(t, a.Inverse(), v, u)
	case Self:
		return u == v
	case DocOrder:
		return t.Pre(u) < t.Pre(v)
	case DocOrderSucc:
		return t.Pre(v) == t.Pre(u)+1
	default:
		panic(fmt.Sprintf("axis: Holds of invalid axis %d", int(a)))
	}
}

// ForEachSuccessor calls fn for every v with a(u, v), stopping early if fn
// returns false. Successors of the forward axes (Child, Child+, Child*,
// NextSibling+, NextSibling*, Following, Preceding, DocOrder, ...) arrive
// in increasing pre-order; the upward/leftward axes (Ancestor+, Ancestor*,
// PrevSibling+, PrevSibling*) walk outward from u and therefore arrive in
// DECREASING pre-order. Enumeration costs O(#successors) (plus O(depth)
// for Preceding's ancestor skips) via the pre-order index.
func ForEachSuccessor(t *tree.Tree, a Axis, u tree.NodeID, fn func(v tree.NodeID) bool) {
	switch a {
	case Child:
		for _, c := range t.Children(u) {
			if !fn(c) {
				return
			}
		}
	case ChildPlus:
		for r := t.Pre(u) + 1; r <= t.PreEnd(u); r++ {
			if !fn(t.ByPre(r)) {
				return
			}
		}
	case ChildStar:
		for r := t.Pre(u); r <= t.PreEnd(u); r++ {
			if !fn(t.ByPre(r)) {
				return
			}
		}
	case NextSibling:
		if v := t.NextSibling(u); v != tree.NilNode {
			fn(v)
		}
	case NextSiblingPlus:
		for v := t.NextSibling(u); v != tree.NilNode; v = t.NextSibling(v) {
			if !fn(v) {
				return
			}
		}
	case NextSiblingStar:
		if !fn(u) {
			return
		}
		for v := t.NextSibling(u); v != tree.NilNode; v = t.NextSibling(v) {
			if !fn(v) {
				return
			}
		}
	case Following:
		for r := t.PreEnd(u) + 1; r < int32(t.Len()); r++ {
			if !fn(t.ByPre(r)) {
				return
			}
		}
	case Parent:
		if p := t.Parent(u); p != tree.NilNode {
			fn(p)
		}
	case AncestorPlus:
		for p := t.Parent(u); p != tree.NilNode; p = t.Parent(p) {
			if !fn(p) {
				return
			}
		}
	case AncestorStar:
		for p := u; p != tree.NilNode; p = t.Parent(p) {
			if !fn(p) {
				return
			}
		}
	case PrevSibling:
		if v := t.PrevSibling(u); v != tree.NilNode {
			fn(v)
		}
	case PrevSiblingPlus:
		for v := t.PrevSibling(u); v != tree.NilNode; v = t.PrevSibling(v) {
			if !fn(v) {
				return
			}
		}
	case PrevSiblingStar:
		if !fn(u) {
			return
		}
		for v := t.PrevSibling(u); v != tree.NilNode; v = t.PrevSibling(v) {
			if !fn(v) {
				return
			}
		}
	case Preceding:
		// Preceding(u,v) ⇔ preEnd(v) < pre(u): the nodes strictly before
		// u in document order that are not ancestors of u. Walking only
		// the pre ranks below pre(u) and skipping ancestors (the nodes
		// whose interval still covers u) keeps the cost at
		// O(#successors + depth) instead of a full O(n) scan.
		for r, lim := int32(0), t.Pre(u); r < lim; r++ {
			v := t.ByPre(r)
			if t.PreEnd(v) >= lim {
				continue // ancestor of u
			}
			if !fn(v) {
				return
			}
		}
	case Self:
		fn(u)
	case DocOrder:
		for r := t.Pre(u) + 1; r < int32(t.Len()); r++ {
			if !fn(t.ByPre(r)) {
				return
			}
		}
	case DocOrderSucc:
		if r := t.Pre(u) + 1; r < int32(t.Len()) {
			fn(t.ByPre(r))
		}
	default:
		panic(fmt.Sprintf("axis: ForEachSuccessor of invalid axis %d", int(a)))
	}
}

// Pairs materializes the full relation {(u,v) | a(u,v)} of t. Pairs are
// grouped by increasing pre(u); within a group the v's follow
// ForEachSuccessor order — increasing pre(v) for forward axes, decreasing
// pre(v) for the upward/leftward axes (Ancestor+, Ancestor*, PrevSibling+,
// PrevSibling*); callers needing a total (pre(u), pre(v)) order must sort.
// Beware: transitive axes are Θ(n²) in the worst case; this is meant for
// the paper-exact Horn-SAT encoding (Prop. 3.1), for X-property
// brute-force checks and for tests.
func Pairs(t *tree.Tree, a Axis) [][2]tree.NodeID {
	var out [][2]tree.NodeID
	for r := int32(0); r < int32(t.Len()); r++ {
		u := t.ByPre(r)
		ForEachSuccessor(t, a, u, func(v tree.NodeID) bool {
			out = append(out, [2]tree.NodeID{u, v})
			return true
		})
	}
	return out
}

// Count returns |{(u,v) | a(u,v)}| without materializing pairs.
func Count(t *tree.Tree, a Axis) int {
	total := 0
	for r := int32(0); r < int32(t.Len()); r++ {
		ForEachSuccessor(t, a, t.ByPre(r), func(tree.NodeID) bool {
			total++
			return true
		})
	}
	return total
}
