// Package xprop implements the X-property ("X-underbar", Definition 3.2 of
// "Conjunctive Queries over Trees"; called hemichordality in the PODS 2004
// version): a binary relation R has the X-property with respect to a total
// order < iff for all n0 < n1 and n2 < n3,
//
//	R(n1, n2) ∧ R(n0, n3) ⇒ R(n0, n2)
//
// — whenever two "arcs" cross in the two-bar diagram of Fig. 2, the
// "underbar" arc between the two minima is present as well.
//
// The package provides brute-force and Lemma 3.6/3.7 checkers on concrete
// trees, witness extraction (used to reproduce the counterexamples of
// Fig. 3), and verification of the Theorem 4.1 facts recorded in package
// axis. The dichotomy classifier lives in package core.
package xprop

import (
	"fmt"

	"repro/internal/axis"
	"repro/internal/tree"
)

// Witness is a violation of the X-property: four nodes with n0 < n1,
// n2 < n3 (under the order) such that R(n1,n2) and R(n0,n3) hold but
// R(n0,n2) does not.
type Witness struct {
	N0, N1, N2, N3 tree.NodeID
}

// String formats the witness.
func (w Witness) String() string {
	return fmt.Sprintf("n0=%d n1=%d n2=%d n3=%d: R(n1,n2)∧R(n0,n3) but ¬R(n0,n2)",
		w.N0, w.N1, w.N2, w.N3)
}

// Check reports whether axis a has the X-property with respect to order o
// on tree t, returning a violating witness otherwise. It runs the
// Definition 3.2 condition by brute force over ordered quadruples, pruned
// by scanning the materialized relation: O(|R|²). Use for small trees
// (tests, counterexample mining); the general facts are in
// axis.HasXProperty.
func Check(t *tree.Tree, a axis.Axis, o axis.Order) (Witness, bool) {
	pairs := axis.Pairs(t, a)
	// For arcs (n1,n2) and (n0,n3): need n0 < n1 and n2 < n3 and
	// not R(n0, n2).
	for _, p := range pairs {
		n1, n2 := p[0], p[1]
		for _, q := range pairs {
			n0, n3 := q[0], q[1]
			if o.Less(t, n0, n1) && o.Less(t, n2, n3) && !axis.Holds(t, a, n0, n2) {
				return Witness{N0: n0, N1: n1, N2: n2, N3: n3}, false
			}
		}
	}
	return Witness{}, true
}

// CheckStructure reports whether every axis in axes has the X-property
// with respect to o on t (the structure-level notion above Lemma 3.4).
func CheckStructure(t *tree.Tree, axes []axis.Axis, o axis.Order) bool {
	for _, a := range axes {
		if _, ok := Check(t, a, o); !ok {
			return false
		}
	}
	return true
}

// CheckViaLemma36 checks the X-property for a relation R ⊆ ≤ (the order's
// reflexive closure) using the strengthened condition of Lemma 3.6:
// only quadruples n0 < n1 ≤ n2 < n3 need examining. Panics if R is not a
// subset of ≤ on t (callers consult axis.SubsetOfOrder first).
func CheckViaLemma36(t *tree.Tree, a axis.Axis, o axis.Order) (Witness, bool) {
	pairs := axis.Pairs(t, a)
	for _, p := range pairs {
		if o.Less(t, p[1], p[0]) {
			panic(fmt.Sprintf("xprop: axis %v is not a subset of %v on this tree", a, o))
		}
	}
	for _, p := range pairs {
		n1, n2 := p[0], p[1]
		for _, q := range pairs {
			n0, n3 := q[0], q[1]
			if o.Less(t, n0, n1) && !o.Less(t, n2, n1) && o.Less(t, n2, n3) &&
				!axis.Holds(t, a, n0, n2) {
				return Witness{N0: n0, N1: n1, N2: n2, N3: n3}, false
			}
		}
	}
	return Witness{}, true
}

// CheckViaLemma37 checks the X-property for a relation R ⊆ ≥ (the
// reversed order) using the symmetric condition of Lemma 3.7: for all
// n0 < n1 ≤ n2 < n3, R(n2, n1) ∧ R(n3, n0) ⇒ R(n2, n0). Panics if R is
// not a subset of ≥ on t.
func CheckViaLemma37(t *tree.Tree, a axis.Axis, o axis.Order) (Witness, bool) {
	pairs := axis.Pairs(t, a)
	for _, p := range pairs {
		if o.Less(t, p[0], p[1]) {
			panic(fmt.Sprintf("xprop: axis %v is not a subset of the reversed %v on this tree", a, o))
		}
	}
	// R(n2,n1) and R(n3,n0) with n0 < n1 <= n2 < n3; require R(n2,n0).
	for _, p := range pairs {
		n2, n1 := p[0], p[1]
		for _, q := range pairs {
			n3, n0 := q[0], q[1]
			if o.Less(t, n0, n1) && !o.Less(t, n2, n1) && o.Less(t, n2, n3) &&
				!axis.Holds(t, a, n2, n0) {
				return Witness{N0: n0, N1: n1, N2: n2, N3: n3}, false
			}
		}
	}
	return Witness{}, true
}

// CheckRelation checks the X-property for an arbitrary materialized
// relation over ranks 0..n-1 under the natural order; used by
// property-based tests with random relations.
func CheckRelation(n int, rel func(u, v int) bool) (n0, n1, n2, n3 int, ok bool) {
	for n1 = 0; n1 < n; n1++ {
		for n2 = 0; n2 < n; n2++ {
			if !rel(n1, n2) {
				continue
			}
			for n0 = 0; n0 < n1; n0++ {
				for n3 = n2 + 1; n3 < n; n3++ {
					if rel(n0, n3) && !rel(n0, n2) {
						return n0, n1, n2, n3, false
					}
				}
			}
		}
	}
	return 0, 0, 0, 0, true
}

// VerifyTheorem41 checks, on a concrete tree, that every (axis, order)
// pair in the paper's axis set agrees with the proved facts of Theorem 4.1
// (axis.HasXProperty): claimed-X pairs must verify; it does NOT require
// non-claimed pairs to fail on t (small trees may lack a witness).
// Returns an error naming the first claimed pair that fails.
func VerifyTheorem41(t *tree.Tree) error {
	for _, a := range axis.PaperAxes {
		for _, o := range axis.Orders {
			if !axis.HasXProperty(a, o) {
				continue
			}
			if w, ok := Check(t, a, o); !ok {
				return fmt.Errorf("xprop: axis %v claimed X w.r.t. %v but violated: %v", a, o, w)
			}
		}
	}
	return nil
}

// Figure3aTree returns the 7-node tree of Fig. 3(a) of the paper, on which
// Following does not have the X-property with respect to <pre: nodes are
// numbered 1..7 in pre-order (ids 0..6), with 2 <pre 3 <pre 4 <pre 6,
// Following(2,6) and Following(3,4) holding but Following(2,4) failing.
//
// Shape:    1
//
//	   /  \
//	  2    6
//	 / \    \
//	3   4    7
//	     \
//	      5
func Figure3aTree() *tree.Tree {
	b := tree.NewBuilder(7)
	n1 := b.AddNode(tree.NilNode, "n1")
	n2 := b.AddNode(n1, "n2")
	b.AddNode(n2, "n3")
	n4 := b.AddNode(n2, "n4")
	b.AddNode(n4, "n5")
	n6 := b.AddNode(n1, "n6")
	b.AddNode(n6, "n7")
	return b.Build()
}

// Figure3bTree returns the 5-node tree of Fig. 3(b): a root with a leaf
// child and a child subtree, on which Descendant⁻¹ (and Descendant-or-
// self⁻¹) fail the X-property with respect to <post. With post-order
// positions 1..5: 1 <post 3 <post 4 <post 5, Descendant⁻¹(1,5) and
// Descendant⁻¹(3,4) hold but Descendant⁻¹(1,4) does not.
//
// Shape:     5
//
//	 / \
//	1   4
//	   / \
//	  2   3
func Figure3bTree() *tree.Tree {
	b := tree.NewBuilder(5)
	root := b.AddNode(tree.NilNode, "p5")
	b.AddNode(root, "p1")
	n4 := b.AddNode(root, "p4")
	b.AddNode(n4, "p2")
	b.AddNode(n4, "p3")
	return b.Build()
}
