package xprop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/axis"
	"repro/internal/tree"
)

func TestTheorem41OnRandomTrees(t *testing.T) {
	// Every (axis, order) pair claimed X by Theorem 4.1 must verify on
	// every concrete tree.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		tr := tree.Random(rng, tree.DefaultRandomConfig(1+rng.Intn(25)))
		if err := VerifyTheorem41(tr); err != nil {
			t.Fatalf("trial %d on %s: %v", trial, tr, err)
		}
	}
}

func TestTheorem41OnAdversarialShapes(t *testing.T) {
	shapes := []string{
		"A",
		"A(B)",
		"A(B,C,D,E,F)",
		"A(B(C(D(E))))",
		"A(B(C,D),E(F,G),H)",
		"A(B(C(D),E),F(G(H,I),J),K)",
	}
	for _, s := range shapes {
		if err := VerifyTheorem41(tree.MustParseTerm(s)); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

func TestFigure3aFollowingNotXWrtPre(t *testing.T) {
	tr := Figure3aTree()
	w, ok := Check(tr, axis.Following, axis.PreOrder)
	if ok {
		t.Fatalf("Following should NOT have the X-property w.r.t. <pre on Fig. 3(a)")
	}
	// The paper's witness: nodes with pre positions 2,3,4,6 (1-based):
	// Following(2,6) and Following(3,4) hold, Following(2,4) does not.
	n2 := tr.ByPre(1)
	n3 := tr.ByPre(2)
	n4 := tr.ByPre(3)
	n6 := tr.ByPre(5)
	if !axis.Holds(tr, axis.Following, n2, n6) {
		t.Errorf("Following(2,6) should hold")
	}
	if !axis.Holds(tr, axis.Following, n3, n4) {
		t.Errorf("Following(3,4) should hold")
	}
	if axis.Holds(tr, axis.Following, n2, n4) {
		t.Errorf("Following(2,4) should NOT hold")
	}
	_ = w
}

func TestFigure3bDescendantInverseNotXWrtPost(t *testing.T) {
	tr := Figure3bTree()
	if _, ok := Check(tr, axis.AncestorPlus, axis.PostOrder); ok {
		t.Errorf("Descendant⁻¹ should NOT have the X-property w.r.t. <post on Fig. 3(b)")
	}
	if _, ok := Check(tr, axis.AncestorStar, axis.PostOrder); ok {
		t.Errorf("Descendant-or-self⁻¹ should NOT have the X-property w.r.t. <post on Fig. 3(b)")
	}
	// Paper's witness with post positions 1..5: Descendant⁻¹(1,5),
	// Descendant⁻¹(3,4) hold; Descendant⁻¹(1,4) does not.
	p1 := tr.ByPost(0)
	p3 := tr.ByPost(2)
	p4 := tr.ByPost(3)
	p5 := tr.ByPost(4)
	if !axis.Holds(tr, axis.AncestorPlus, p1, p5) {
		t.Errorf("Descendant⁻¹(1,5) should hold")
	}
	if !axis.Holds(tr, axis.AncestorPlus, p3, p4) {
		t.Errorf("Descendant⁻¹(3,4) should hold")
	}
	if axis.Holds(tr, axis.AncestorPlus, p1, p4) {
		t.Errorf("Descendant⁻¹(1,4) should NOT hold")
	}
}

func TestNonClaimedPairsHaveCounterexamples(t *testing.T) {
	// For each paper axis and order where HasXProperty is false, find a
	// small tree witnessing the violation — so the fact table claims
	// neither too much nor too little.
	for _, a := range axis.PaperAxes {
		for _, o := range axis.Orders {
			if axis.HasXProperty(a, o) {
				continue
			}
			found := false
			tree.EnumerateAll(6, []string{"A"}, func(tr *tree.Tree) bool {
				if _, ok := Check(tr, a, o); !ok {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Errorf("no counterexample with <=6 nodes for %v w.r.t. %v; fact table may be too pessimistic", a, o)
			}
		}
	}
}

func TestLemma36AgreesWithDefinition(t *testing.T) {
	// For axes that are subsets of an order, the Lemma 3.6 check must
	// agree with the brute-force Definition 3.2 check.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		tr := tree.Random(rng, tree.DefaultRandomConfig(1+rng.Intn(15)))
		for _, a := range axis.PaperAxes {
			for _, o := range axis.Orders {
				if !axis.SubsetOfOrder(a, o) {
					continue
				}
				_, ok1 := Check(tr, a, o)
				_, ok2 := CheckViaLemma36(tr, a, o)
				if ok1 != ok2 {
					t.Fatalf("%v wrt %v: Check=%v Lemma36=%v on %s", a, o, ok1, ok2, tr)
				}
			}
		}
	}
}

func TestLemma37AgreesWithDefinition(t *testing.T) {
	// For axes that are subsets of the REVERSED order (R ⊆ ≥), the
	// Lemma 3.7 check must agree with the brute-force check. Such axes:
	// Parent/Ancestor± w.r.t. <pre; Child/Child± w.r.t. <post; Preceding
	// w.r.t. <pre.
	type pair struct {
		a axis.Axis
		o axis.Order
	}
	pairs := []pair{
		{axis.Parent, axis.PreOrder},
		{axis.AncestorPlus, axis.PreOrder},
		{axis.AncestorStar, axis.PreOrder},
		{axis.Preceding, axis.PreOrder},
		{axis.Child, axis.PostOrder},
		{axis.ChildPlus, axis.PostOrder},
		{axis.ChildStar, axis.PostOrder},
	}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 15; trial++ {
		tr := tree.Random(rng, tree.DefaultRandomConfig(1+rng.Intn(12)))
		for _, pr := range pairs {
			_, ok1 := Check(tr, pr.a, pr.o)
			_, ok2 := CheckViaLemma37(tr, pr.a, pr.o)
			if ok1 != ok2 {
				t.Fatalf("%v wrt %v: Check=%v Lemma37=%v on %s", pr.a, pr.o, ok1, ok2, tr)
			}
		}
	}
}

func TestLemma37PanicsOnNonSubset(t *testing.T) {
	tr := tree.MustParseTerm("A(B)")
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: Child is not a subset of the reversed <pre")
		}
	}()
	CheckViaLemma37(tr, axis.Child, axis.PreOrder)
}

func TestLemma36PanicsOnNonSubset(t *testing.T) {
	tr := tree.MustParseTerm("A(B)")
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: Parent is not a subset of <pre")
		}
	}()
	CheckViaLemma36(tr, axis.Parent, axis.PreOrder)
}

func TestCheckRelationProperty(t *testing.T) {
	// The total and empty relations trivially have the X-property; a
	// planted crossing without its underbar must be detected.
	n := 6
	total := func(u, v int) bool { return true }
	if _, _, _, _, ok := CheckRelation(n, total); !ok {
		t.Errorf("total relation must have the X-property")
	}
	empty := func(u, v int) bool { return false }
	if _, _, _, _, ok := CheckRelation(n, empty); !ok {
		t.Errorf("empty relation must have the X-property")
	}
	planted := func(u, v int) bool {
		// arcs (1,0) and (0,3) cross (0<1, 0<3); underbar (0,0) absent.
		return (u == 1 && v == 0) || (u == 0 && v == 3)
	}
	n0, n1, n2, n3, ok := CheckRelation(n, planted)
	if ok {
		t.Fatalf("planted violation not found")
	}
	if n0 != 0 || n1 != 1 || n2 != 0 || n3 != 3 {
		t.Errorf("witness = (%d,%d,%d,%d)", n0, n1, n2, n3)
	}
}

func TestXPropertyClosedUnderUnderbarCompletion(t *testing.T) {
	// Property (testing/quick): completing a random relation by repeatedly
	// adding the underbar arcs yields a relation with the X-property.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		rel := make([][]bool, n)
		for i := range rel {
			rel[i] = make([]bool, n)
			for j := range rel[i] {
				rel[i][j] = rng.Float64() < 0.3
			}
		}
		for changed := true; changed; {
			changed = false
			for n1 := 0; n1 < n; n1++ {
				for n2 := 0; n2 < n; n2++ {
					if !rel[n1][n2] {
						continue
					}
					for n0 := 0; n0 < n1; n0++ {
						for n3 := n2 + 1; n3 < n; n3++ {
							if rel[n0][n3] && !rel[n0][n2] {
								rel[n0][n2] = true
								changed = true
							}
						}
					}
				}
			}
		}
		_, _, _, _, ok := CheckRelation(n, func(u, v int) bool { return rel[u][v] })
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCheckStructure(t *testing.T) {
	tr := tree.MustParseTerm("A(B(C),D)")
	if !CheckStructure(tr, []axis.Axis{axis.ChildPlus, axis.ChildStar}, axis.PreOrder) {
		t.Errorf("τ1 axes should be X w.r.t. <pre")
	}
	if CheckStructure(Figure3aTree(), []axis.Axis{axis.Following}, axis.PreOrder) {
		t.Errorf("Following w.r.t. <pre should fail on Fig. 3(a)")
	}
}

func TestWitnessString(t *testing.T) {
	w := Witness{N0: 1, N1: 2, N2: 3, N3: 4}
	if w.String() == "" {
		t.Errorf("empty witness string")
	}
}
