// Package hornsat implements propositional Horn-SAT with a linear-time
// unit-resolution solver in the style of Minoux's LTUR algorithm
// [Minoux 1988], the engine behind the arc-consistency computation of
// Proposition 3.1 in "Conjunctive Queries over Trees".
//
// A Horn program is a set of definite clauses head ← body (body a possibly
// empty conjunction of propositional atoms). Solve computes the unique
// minimal model: the set of atoms derivable by unit resolution. Time is
// linear in the total size of the program.
package hornsat

import "fmt"

// AtomID identifies a propositional atom (dense index).
type AtomID int32

// Program is a set of definite Horn clauses over dense atom IDs.
// Add atoms with NewAtom and clauses with AddClause, then call Solve.
type Program struct {
	numAtoms int
	// clause storage
	heads     []AtomID  // head of clause i
	bodyLen   []int32   // remaining unsatisfied body atoms of clause i
	bodyOf    [][]int32 // atom -> clauses in whose body it appears
	facts     []AtomID  // clauses with empty bodies (as their heads)
	numBodies int       // total body literal count (for SizeHint)
}

// NewProgram returns an empty program with capacity hints.
func NewProgram(atomHint, clauseHint int) *Program {
	return &Program{
		heads:   make([]AtomID, 0, clauseHint),
		bodyLen: make([]int32, 0, clauseHint),
	}
}

// NewAtom allocates a fresh atom.
func (p *Program) NewAtom() AtomID {
	id := AtomID(p.numAtoms)
	p.numAtoms++
	return id
}

// NewAtoms allocates n fresh consecutive atoms and returns the first.
func (p *Program) NewAtoms(n int) AtomID {
	id := AtomID(p.numAtoms)
	p.numAtoms += n
	return id
}

// NumAtoms returns the number of allocated atoms.
func (p *Program) NumAtoms() int { return p.numAtoms }

// NumClauses returns the number of clauses added.
func (p *Program) NumClauses() int { return len(p.heads) }

// Size returns the total program size (clauses plus body literals), the
// measure in which Solve is linear.
func (p *Program) Size() int { return len(p.heads) + p.numBodies }

// AddClause adds head ← body. An empty body makes head a fact.
func (p *Program) AddClause(head AtomID, body ...AtomID) {
	p.checkAtom(head)
	ci := int32(len(p.heads))
	p.heads = append(p.heads, head)
	p.bodyLen = append(p.bodyLen, int32(len(body)))
	if len(body) == 0 {
		p.facts = append(p.facts, head)
		return
	}
	if p.bodyOf == nil {
		p.bodyOf = make([][]int32, p.numAtoms)
	} else if len(p.bodyOf) < p.numAtoms {
		grown := make([][]int32, p.numAtoms)
		copy(grown, p.bodyOf)
		p.bodyOf = grown
	}
	for _, b := range body {
		p.checkAtom(b)
		p.bodyOf[b] = append(p.bodyOf[b], ci)
	}
	p.numBodies += len(body)
}

func (p *Program) checkAtom(a AtomID) {
	if a < 0 || int(a) >= p.numAtoms {
		panic(fmt.Sprintf("hornsat: atom %d out of range (have %d)", a, p.numAtoms))
	}
}

// Solve computes the minimal model by unit propagation and returns it as a
// membership slice indexed by AtomID. The program may be solved only once
// (Solve mutates clause counters); call Reset between solves if reusing.
func (p *Program) Solve() []bool {
	truth := make([]bool, p.numAtoms)
	queue := make([]AtomID, 0, len(p.facts))
	for _, a := range p.facts {
		if !truth[a] {
			truth[a] = true
			queue = append(queue, a)
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if int(a) >= len(p.bodyOf) {
			continue
		}
		for _, ci := range p.bodyOf[a] {
			p.bodyLen[ci]--
			if p.bodyLen[ci] == 0 {
				h := p.heads[ci]
				if !truth[h] {
					truth[h] = true
					queue = append(queue, h)
				}
			}
		}
	}
	return truth
}

// Duplicate atoms in a body are handled correctly: bodyLen counts
// occurrences and each firing decrements once per occurrence.
