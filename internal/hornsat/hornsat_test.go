package hornsat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyProgram(t *testing.T) {
	p := NewProgram(0, 0)
	truth := p.Solve()
	if len(truth) != 0 {
		t.Errorf("empty program should have empty model")
	}
}

func TestFactsPropagate(t *testing.T) {
	p := NewProgram(4, 4)
	a := p.NewAtom()
	b := p.NewAtom()
	c := p.NewAtom()
	d := p.NewAtom()
	p.AddClause(a)       // a.
	p.AddClause(b, a)    // b <- a.
	p.AddClause(c, a, b) // c <- a, b.
	_ = d                // d underivable
	truth := p.Solve()
	if !truth[a] || !truth[b] || !truth[c] {
		t.Errorf("a, b, c should be derived: %v", truth)
	}
	if truth[d] {
		t.Errorf("d should not be derived")
	}
}

func TestCycleWithoutFactsDerivesNothing(t *testing.T) {
	p := NewProgram(2, 2)
	a := p.NewAtom()
	b := p.NewAtom()
	p.AddClause(a, b)
	p.AddClause(b, a)
	truth := p.Solve()
	if truth[a] || truth[b] {
		t.Errorf("cyclic support without facts must derive nothing")
	}
}

func TestDuplicateBodyAtoms(t *testing.T) {
	p := NewProgram(2, 2)
	a := p.NewAtom()
	b := p.NewAtom()
	p.AddClause(a)
	p.AddClause(b, a, a) // duplicate literal: still fires once a holds
	truth := p.Solve()
	if !truth[b] {
		t.Errorf("duplicate body literals mishandled")
	}
}

func TestNewAtoms(t *testing.T) {
	p := NewProgram(0, 0)
	first := p.NewAtoms(5)
	if first != 0 || p.NumAtoms() != 5 {
		t.Errorf("NewAtoms: first %d, count %d", first, p.NumAtoms())
	}
}

func TestSizeAccounting(t *testing.T) {
	p := NewProgram(3, 3)
	a := p.NewAtom()
	b := p.NewAtom()
	p.AddClause(a)
	p.AddClause(b, a)
	if p.NumClauses() != 2 {
		t.Errorf("NumClauses = %d", p.NumClauses())
	}
	if p.Size() != 3 { // 2 clauses + 1 body literal
		t.Errorf("Size = %d, want 3", p.Size())
	}
}

func TestOutOfRangeAtomPanics(t *testing.T) {
	p := NewProgram(1, 1)
	a := p.NewAtom()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for out-of-range atom")
		}
	}()
	p.AddClause(a, AtomID(7))
}

// refMinimalModel computes the minimal model by naive iteration.
func refMinimalModel(numAtoms int, clauses [][]AtomID) []bool {
	truth := make([]bool, numAtoms)
	for changed := true; changed; {
		changed = false
		for _, cl := range clauses {
			head, body := cl[0], cl[1:]
			if truth[head] {
				continue
			}
			all := true
			for _, b := range body {
				if !truth[b] {
					all = false
					break
				}
			}
			if all {
				truth[head] = true
				changed = true
			}
		}
	}
	return truth
}

func TestQuickAgainstNaiveFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		numClauses := rng.Intn(25)
		p := NewProgram(n, numClauses)
		p.NewAtoms(n)
		var clauses [][]AtomID
		for i := 0; i < numClauses; i++ {
			head := AtomID(rng.Intn(n))
			bodyLen := rng.Intn(4)
			cl := []AtomID{head}
			body := make([]AtomID, bodyLen)
			for j := range body {
				body[j] = AtomID(rng.Intn(n))
			}
			cl = append(cl, body...)
			clauses = append(clauses, cl)
			p.AddClause(head, body...)
		}
		got := p.Solve()
		want := refMinimalModel(n, clauses)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
