package succinct

import (
	"repro/internal/axis"
	"repro/internal/cq"
)

// This file implements the faithful-simplification machinery of the
// Theorem 7.1 proof: transformations that preserve truth on (scattered)
// path structures while shrinking or normalizing ABCQs.
//
// A query Q' is a faithful simplification of Q with respect to a class of
// structures if |Q'| <= |Q|, Q' ⊆ Q, and Q' is true wherever Q is true on
// the class (proof of Lemma 7.2).

// SimplifyForPaths implements Lemma 7.4: given an ABCQ over Ax that is
// true on at least one path structure, produce a faithful simplification
// over {Child, Child*, Child+} whose Child-components are paths:
//
//   - NextSibling/NextSibling+/Following atoms make the query false on
//     every path structure: reported via ok=false;
//   - NextSibling*(x, y) collapses to x = y;
//   - converging and diverging Child atoms merge their endpoints
//     (every path-structure node has at most one child and one parent).
func SimplifyForPaths(q *cq.Query) (*cq.Query, bool) {
	out := q.Clone()
	for _, at := range out.Atoms {
		switch at.Axis {
		case axis.NextSibling, axis.NextSiblingPlus, axis.Following:
			return nil, false
		case axis.Child, axis.ChildPlus, axis.ChildStar, axis.NextSiblingStar:
			// handled below
		default:
			return nil, false // other axes out of scope for §7
		}
	}
	changed := true
	for changed {
		changed = false
		// NextSibling*(x, y): on a path structure only reflexive pairs.
		for i := 0; i < len(out.Atoms); i++ {
			at := out.Atoms[i]
			if at.Axis == axis.NextSiblingStar {
				out.RemoveAtom(i)
				out.SubstituteVar(at.Y, at.X)
				changed = true
				break
			}
		}
		if changed {
			continue
		}
		// Child(x,z), Child(y,z) with x != y: merge x, y.
		// Child(x,y), Child(x,z) with y != z: merge y, z.
		for i := 0; i < len(out.Atoms) && !changed; i++ {
			a := out.Atoms[i]
			if a.Axis != axis.Child {
				continue
			}
			for j := 0; j < len(out.Atoms); j++ {
				if i == j {
					continue
				}
				b := out.Atoms[j]
				if b.Axis != axis.Child {
					continue
				}
				if a.Y == b.Y && a.X != b.X {
					out.RemoveAtom(j)
					out.SubstituteVar(b.X, a.X)
					changed = true
					break
				}
				if a.X == b.X && a.Y != b.Y {
					out.RemoveAtom(j)
					out.SubstituteVar(b.Y, a.Y)
					changed = true
					break
				}
			}
		}
		if !changed {
			// Drop exact duplicates created by substitutions.
			before := len(out.Atoms) + len(out.Labels)
			out.Dedup()
			changed = len(out.Atoms)+len(out.Labels) != before
		}
	}
	return out, true
}

// ChildComponents returns the connected components of G_Q, the graph of
// Child atoms only (proof of Lemma 7.2), each as a variable list. After
// SimplifyForPaths each component is a path.
func ChildComponents(q *cq.Query) [][]cq.Var {
	n := q.NumVars()
	adj := make([][]cq.Var, n)
	for _, at := range q.Atoms {
		if at.Axis == axis.Child {
			adj[at.X] = append(adj[at.X], at.Y)
			adj[at.Y] = append(adj[at.Y], at.X)
		}
	}
	used := q.UsedVars()
	visited := make([]bool, n)
	var comps [][]cq.Var
	for v := cq.Var(0); int(v) < n; v++ {
		if visited[v] || !used[v] {
			continue
		}
		var comp []cq.Var
		stack := []cq.Var{v}
		visited[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, w := range adj[u] {
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsSuccessorRepellent reports the Lemma 7.6 property: no two atoms share
// an endpoint where either atom is a Child atom (i.e. Child atoms do not
// meet other atoms at shared variables except along their own chain).
// Precisely, per the paper: for any two atoms R(x,y), R'(x',y') with
// x = x', y ≠ y' or x ≠ x', y = y', neither R nor R' is Child.
func IsSuccessorRepellent(q *cq.Query) bool {
	for i, a := range q.Atoms {
		for j, b := range q.Atoms {
			if i == j {
				continue
			}
			sharedDiverge := a.X == b.X && a.Y != b.Y
			sharedConverge := a.X != b.X && a.Y == b.Y
			if (sharedDiverge || sharedConverge) &&
				(a.Axis == axis.Child || b.Axis == axis.Child) {
				return false
			}
		}
	}
	return true
}

// RelaxChildToChildPlus implements Lemma 7.7: on a successor-repellent
// ABCQ over {Child, Child*, Child+} whose components each carry at most
// one label atom, replacing every Child atom by Child+ yields an
// equivalent query. The transformation itself is unconditional; the
// equivalence holds under the lemma's hypotheses (tests verify it there).
func RelaxChildToChildPlus(q *cq.Query) *cq.Query {
	out := q.Clone()
	for i := range out.Atoms {
		if out.Atoms[i].Axis == axis.Child {
			out.Atoms[i].Axis = axis.ChildPlus
		}
	}
	return out
}

// ComponentLabelCounts returns, per Child-component, the number of label
// atoms on its variables (Lemma 7.5(a) bounds this by one on scattered
// structures).
func ComponentLabelCounts(q *cq.Query) []int {
	comps := ChildComponents(q)
	where := map[cq.Var]int{}
	for ci, comp := range comps {
		for _, v := range comp {
			where[v] = ci
		}
	}
	counts := make([]int, len(comps))
	for _, la := range q.Labels {
		if ci, ok := where[la.X]; ok {
			counts[ci]++
		}
	}
	return counts
}
