package succinct

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/rewrite"
	"repro/internal/tree"
)

func TestDiamondShape(t *testing.T) {
	for n := 1; n <= 4; n++ {
		d := Diamond(n)
		if d.Size() != 7*n+1 {
			t.Errorf("|D%d| = %d, want %d", n, d.Size(), 7*n+1)
		}
		if cq.Classify(d) != cq.DirectedAcyclic {
			t.Errorf("D%d should be directed-acyclic, got %v", n, cq.Classify(d))
		}
		if !d.IsBoolean() {
			t.Errorf("D%d should be Boolean", n)
		}
	}
}

func TestPathStructureShape(t *testing.T) {
	ps := PathStructure(2, 3, 0)
	if !IsPathStructure(ps) {
		t.Fatal("not a path structure")
	}
	// Layout: s Y1 s X1 s X'1 s Y2 s X2 s X'2 s Y3 s with |s| = 3:
	// 7 labeled nodes + 8 spacers of 3 = 31 nodes.
	if ps.Len() != 31 {
		t.Errorf("Len = %d, want 31", ps.Len())
	}
	if !IsKScattered(ps, 3) {
		t.Errorf("PS(2,3) member should be 3-scattered")
	}
	if IsKScattered(ps, 4) {
		t.Errorf("should not be 4-scattered")
	}
}

func TestPathStructureChoices(t *testing.T) {
	// Bit i flips the order of Xi and X'i.
	a := PathStructure(1, 2, 0)
	b := PathStructure(1, 2, 1)
	posOf := func(tr *tree.Tree, label string) int32 {
		nodes := tr.NodesWithLabel(label)
		if len(nodes) != 1 {
			t.Fatalf("label %s occurs %d times", label, len(nodes))
		}
		return tr.Depth(nodes[0])
	}
	if posOf(a, "X1") > posOf(a, "X'1") {
		t.Errorf("choices=0 should put X1 first")
	}
	if posOf(b, "X1") < posOf(b, "X'1") {
		t.Errorf("choices=1 should put X'1 first")
	}
}

func TestDiamondTrueOnAllPathStructures(t *testing.T) {
	// Dn is true on each of the 2^n structures of PS(n, p) (proof of
	// Theorem 7.1).
	engine := core.NewBacktrackEngine()
	for n := 1; n <= 3; n++ {
		d := Diamond(n)
		PathStructures(n, 2, func(c uint, tr *tree.Tree) bool {
			if !engine.EvalBoolean(tr, d) {
				t.Fatalf("D%d false on PS member %b", n, c)
			}
			return true
		})
	}
}

func TestDiamondFalseOnShuffledStructure(t *testing.T) {
	// A path missing one diamond label breaks Dn.
	d := Diamond(2)
	broken := tree.PathOfLabels("Y1", "X1", "Y2", "X2", "Y3") // no X'1, X'2
	engine := core.NewBacktrackEngine()
	if engine.EvalBoolean(broken, d) {
		t.Errorf("D2 should be false without X' labels")
	}
}

func TestSeparatingModelExample78(t *testing.T) {
	// Fig. 12 / Example 7.8: M = LC(¬X'1).LC(X'1 ∧ ¬X'2) separates the
	// tree-shaped Q from D2: Q true on M, D2 false on M.
	q := Example78Query()
	if cq.Classify(q) != cq.Acyclic {
		t.Fatalf("Example 7.8 query should be acyclic")
	}
	lps := VariableLabelPaths(q)
	if len(lps) != 3 {
		t.Fatalf("want 3 label paths, got %d: %v", len(lps), lps)
	}
	m := SeparatingModel(lps, []string{"X'1", "X'2"})
	if !IsPathStructure(m) {
		t.Fatal("M not a path structure")
	}
	// M is the concatenation of all three 5-node label paths.
	if m.Len() != 15 {
		t.Errorf("len(M) = %d, want 15", m.Len())
	}
	engine := core.NewBacktrackEngine()
	if !engine.EvalBoolean(m, q) {
		t.Errorf("Q should be true on M")
	}
	if engine.EvalBoolean(m, Diamond(2)) {
		t.Errorf("D2 should be false on M (unique X'1 below unique X'2)")
	}
	// The paper's witness detail: the unique X'1 occurrence in M is a
	// descendant of the unique X'2 occurrence.
	x1 := m.NodesWithLabel("X'1")
	x2 := m.NodesWithLabel("X'2")
	if len(x1) != 1 || len(x2) != 1 {
		t.Fatalf("X'1 × %d, X'2 × %d; want 1 each", len(x1), len(x2))
	}
	if !m.IsAncestor(x2[0], x1[0]) {
		t.Errorf("X'1 should be below X'2 in M")
	}
}

func TestSeparatingModelGeneral(t *testing.T) {
	// Lemma 7.3 general property on the diamond family: for every n and
	// choice set Λ = {E1..En} with Ei ∈ {Xi, X'i}, the separating model
	// built from an APQ disjunct lacking a Λ-covering path kills Dn.
	engine := core.NewBacktrackEngine()
	q := Example78Query()
	lps := VariableLabelPaths(q)
	for _, es := range [][]string{{"X'1", "X'2"}, {"X1", "X'2"}} {
		hasCover := false
		for _, lp := range lps {
			if pathContainsAll(lp, es) {
				hasCover = true
			}
		}
		m := SeparatingModel(lps, es)
		if hasCover {
			continue // construction only meaningful without a covering path
		}
		if !engine.EvalBoolean(m, q) {
			t.Errorf("Q false on its own separating model for %v", es)
		}
	}
}

func TestDiamondAPQBlowup(t *testing.T) {
	// Measurable consequence of Theorem 7.1: rewriting Dn with the
	// Theorem 6.6 lifters produces APQs whose size grows exponentially.
	sizes := make([]int, 0, 3)
	for n := 1; n <= 3; n++ {
		apq, err := rewrite.RewriteToAPQ(Diamond(n), rewrite.Options{})
		if err != nil {
			t.Fatalf("D%d: %v", n, err)
		}
		if !apq.IsAcyclic() {
			t.Fatalf("D%d APQ not acyclic", n)
		}
		sizes = append(sizes, apq.Size())
	}
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Fatalf("APQ sizes not growing: %v", sizes)
	}
	// Growth factor at least 2 per extra diamond.
	if sizes[2] < 2*sizes[1] || sizes[1] < 2*sizes[0] {
		t.Errorf("expected ≥2x growth per diamond: %v", sizes)
	}
}

func TestDiamondAPQEquivalence(t *testing.T) {
	// The rewritten APQ for D1, D2 agrees with the diamond on the path
	// structures and on random trees.
	engine := core.NewBacktrackEngine()
	for n := 1; n <= 2; n++ {
		d := Diamond(n)
		apq, err := rewrite.RewriteToAPQ(d, rewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		PathStructures(n, 1, func(c uint, tr *tree.Tree) bool {
			if !apq.EvalBoolean(tr) {
				t.Fatalf("APQ(D%d) false on PS member %b", n, c)
			}
			return true
		})
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 10; trial++ {
			tr := tree.Random(rng, tree.RandomConfig{
				Nodes: 1 + rng.Intn(10), MaxChildren: 2,
				Alphabet: DiamondAlphabet(n),
			})
			if engine.EvalBoolean(tr, d) != apq.EvalBoolean(tr) {
				t.Fatalf("APQ(D%d) differs on %s", n, tr)
			}
		}
	}
}

func TestCoverageProfile(t *testing.T) {
	// The counting argument of Theorem 7.1 in measurable form: the APQ
	// obtained from Dn covers all 2^n structures as a union, and single
	// acyclic disjuncts cover strictly fewer than all once n ≥ 2.
	engine := core.NewBacktrackEngine()
	eval := func(tr *tree.Tree, q *cq.Query) bool { return engine.EvalBoolean(tr, q) }
	for n := 1; n <= 3; n++ {
		apq, err := rewrite.RewriteToAPQ(Diamond(n), rewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prof := MeasureCoverage(n, 2, apq.Disjuncts, eval)
		if prof.UnionCovered != prof.Structures {
			t.Fatalf("D%d: union covers %d of %d", n, prof.UnionCovered, prof.Structures)
		}
		if n >= 2 && prof.MaxSingleCoverage() == prof.Structures {
			t.Errorf("D%d: a single acyclic disjunct covers all structures — contradicts the counting argument", n)
		}
	}
}

func TestSimplifyForPaths(t *testing.T) {
	// NextSibling* collapses; converging Child merges.
	q := cq.MustParse("Q() <- Child(x, z), Child(y, z), NextSibling*(z, w), A(w)")
	s, ok := SimplifyForPaths(q)
	if !ok {
		t.Fatal("should simplify")
	}
	engine := core.NewBacktrackEngine()
	// Faithful on path structures: same truth value.
	paths := []*tree.Tree{
		tree.PathOfLabels("B", "A", "C"),
		tree.PathOfLabels("A"),
		tree.PathOfLabels("B", "B", "A"),
	}
	for _, p := range paths {
		if engine.EvalBoolean(p, q) != engine.EvalBoolean(p, s) {
			t.Errorf("simplification not faithful on %s", p)
		}
	}
	// Queries with sibling axes are false on paths.
	q2 := cq.MustParse("Q() <- NextSibling(x, y)")
	if _, ok := SimplifyForPaths(q2); ok {
		t.Errorf("NextSibling query should be rejected")
	}
	for _, p := range paths {
		if engine.EvalBoolean(p, q2) {
			t.Errorf("NextSibling query true on path %s", p)
		}
	}
}

func TestChildComponents(t *testing.T) {
	q := cq.MustParse("Q() <- Child(x, y), Child(y, z), Child+(z, w), Child(w, v)")
	comps := ChildComponents(q)
	if len(comps) != 2 {
		t.Fatalf("want 2 Child-components, got %d", len(comps))
	}
}

func TestSuccessorRepellent(t *testing.T) {
	ok := cq.MustParse("Q() <- Child(x, y), Child+(y, z)")
	if !IsSuccessorRepellent(ok) {
		t.Errorf("chain should be successor-repellent")
	}
	bad := cq.MustParse("Q() <- Child(x, y), Child+(x, z)")
	if IsSuccessorRepellent(bad) {
		t.Errorf("diverging Child should not be successor-repellent")
	}
}

func TestRelaxChildToChildPlusLemma77(t *testing.T) {
	// Under the Lemma 7.7 hypotheses (successor-repellent, ≤1 label per
	// component), Child -> Child+ preserves truth on path structures.
	engine := core.NewBacktrackEngine()
	queries := []string{
		"Q() <- A(x), Child(x, y), Child(y, z)",
		"Q() <- Child(x, y), B(y)",
		"Q() <- A(x), Child+(x, y), Child(y, z), Child(z, w)",
	}
	paths := []*tree.Tree{
		tree.PathOfLabels("A", "", "", "B"),
		tree.PathOfLabels("", "A", "B", "", ""),
		tree.PathOfLabels("A"),
		tree.PathOfLabels("", "", "B"),
	}
	for _, src := range queries {
		q := cq.MustParse(src)
		if !IsSuccessorRepellent(q) {
			t.Fatalf("test query %s not successor-repellent", src)
		}
		for _, c := range ComponentLabelCounts(q) {
			if c > 1 {
				t.Fatalf("test query %s violates one-label-per-component", src)
			}
		}
		r := RelaxChildToChildPlus(q)
		for _, p := range paths {
			if engine.EvalBoolean(p, q) != engine.EvalBoolean(p, r) {
				t.Errorf("Lemma 7.7 relaxation differs for %s on %s", src, p)
			}
		}
	}
}

func TestLemma75OneLabelPerComponentOnScattered(t *testing.T) {
	// Lemma 7.5(a): a query with two labels in one Child-component cannot
	// hold on a |Q|-scattered path structure.
	q := cq.MustParse("Q() <- A(x), Child(x, y), B(y)")
	// |Q| = 3; build a 3-scattered path: labels ≥3 apart, ends ≥3 away.
	p := tree.PathOfLabels("", "", "", "A", "", "", "B", "", "", "")
	if !IsKScattered(p, 3) {
		t.Fatal("test structure should be 3-scattered")
	}
	engine := core.NewBacktrackEngine()
	if engine.EvalBoolean(p, q) {
		t.Errorf("adjacent-label query should fail on a scattered structure")
	}
}

func TestVariableLabelPathsOfDiamond(t *testing.T) {
	// Dn has 2^n source-to-sink variable paths.
	for n := 1; n <= 3; n++ {
		lps := VariableLabelPaths(Diamond(n))
		if len(lps) != 1<<n {
			t.Errorf("D%d has %d label paths, want %d", n, len(lps), 1<<n)
		}
	}
}
