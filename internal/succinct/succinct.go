// Package succinct implements the succinctness study of §7 of
// "Conjunctive Queries over Trees": the n-diamond queries Dn (Fig. 9a),
// the scattered path-structure families PS(n, p) (Fig. 9b), the
// label-path machinery and separating-model construction of Lemma 7.3
// (Fig. 12 / Example 7.8), and the faithful-simplification transformations
// of Lemmas 7.4 and 7.7.
//
// Theorem 7.1 (no polynomial-size APQ family is equivalent to (Dn)) is a
// nonexistence statement; the experiment harness reproduces its measurable
// consequences: Dn holds on all 2ⁿ structures of PS(n, p), each ABCQ
// disjunct covers only a fraction of them, and the Theorem 6.6 translation
// of Dn blows up exponentially.
package succinct

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/axis"
	"repro/internal/cq"
	"repro/internal/tree"
)

// Diamond returns the n-diamond Boolean query Dn (Fig. 9a):
//
//	Dn ← Y1(y1) ∧ ⋀_{i=1..n} ( Child+(y_i, x_i) ∧ X_i(x_i) ∧
//	     Child+(x_i, y_{i+1}) ∧ Child+(y_i, x'_i) ∧ X'_i(x'_i) ∧
//	     Child+(x'_i, y_{i+1}) ∧ Y_{i+1}(y_{i+1}) )
//
// Its size is 7n+1 atoms; its query graph is a chain of n diamonds
// (directed-acyclic but not acyclic).
func Diamond(n int) *cq.Query {
	if n < 1 {
		panic("succinct: Diamond needs n >= 1")
	}
	q := cq.New()
	ys := make([]cq.Var, n+1)
	for i := 0; i <= n; i++ {
		ys[i] = q.AddVar(fmt.Sprintf("y%d", i+1))
	}
	q.AddLabel("Y1", ys[0])
	for i := 1; i <= n; i++ {
		x := q.AddVar(fmt.Sprintf("x%d", i))
		xp := q.AddVar(fmt.Sprintf("x'%d", i))
		q.AddAtom(axis.ChildPlus, ys[i-1], x)
		q.AddLabel(fmt.Sprintf("X%d", i), x)
		q.AddAtom(axis.ChildPlus, x, ys[i])
		q.AddAtom(axis.ChildPlus, ys[i-1], xp)
		q.AddLabel(fmt.Sprintf("X'%d", i), xp)
		q.AddAtom(axis.ChildPlus, xp, ys[i])
		q.AddLabel(fmt.Sprintf("Y%d", i+1), ys[i])
	}
	return q
}

// DiamondAlphabet returns Σ = {X1..Xn, X'1..X'n, Y1..Yn+1}.
func DiamondAlphabet(n int) []string {
	var out []string
	for i := 1; i <= n; i++ {
		out = append(out, fmt.Sprintf("X%d", i), fmt.Sprintf("X'%d", i))
	}
	for i := 1; i <= n+1; i++ {
		out = append(out, fmt.Sprintf("Y%d", i))
	}
	return out
}

// PathStructure builds one member of PS(n, p): the path structure
//
//	s.Y1.s.(A_1).s.Y2.s.(A_2). … .s.Yn.s.(A_n).s.Yn+1.s
//
// where s is a run of p unlabeled nodes and block A_i is X_i.s.X'_i if
// choices has bit i-1 clear and X'_i.s.X_i if set. The result is a
// p-scattered path structure (for p at least the query size of interest).
func PathStructure(n int, p int, choices uint) *tree.Tree {
	var labels []string
	spacer := func() {
		for i := 0; i < p; i++ {
			labels = append(labels, "")
		}
	}
	spacer()
	for i := 1; i <= n; i++ {
		labels = append(labels, fmt.Sprintf("Y%d", i))
		spacer()
		a, b := fmt.Sprintf("X%d", i), fmt.Sprintf("X'%d", i)
		if choices&(1<<(i-1)) != 0 {
			a, b = b, a
		}
		labels = append(labels, a)
		spacer()
		labels = append(labels, b)
		spacer()
	}
	labels = append(labels, fmt.Sprintf("Y%d", n+1))
	spacer()
	return tree.PathOfLabels(labels...)
}

// PathStructures enumerates all 2^n members of PS(n, p), calling fn on
// each with its choice bitmask; stops early if fn returns false.
func PathStructures(n, p int, fn func(choices uint, t *tree.Tree) bool) {
	for c := uint(0); c < 1<<uint(n); c++ {
		if !fn(c, PathStructure(n, p, c)) {
			return
		}
	}
}

// IsPathStructure reports whether t is a path structure (§7): the Child
// graph is a single downward path.
func IsPathStructure(t *tree.Tree) bool {
	if t.Len() == 0 {
		return false
	}
	for v := tree.NodeID(0); int(v) < t.Len(); v++ {
		if t.NumChildren(v) > 1 {
			return false
		}
	}
	return true
}

// IsKScattered reports whether the path structure t is k-scattered:
// at least k nodes, at most one label per node, no label repeated, and
// every labeled node at distance >= k from every other labeled node and
// from both endpoints.
func IsKScattered(t *tree.Tree, k int) bool {
	if !IsPathStructure(t) || t.Len() < k {
		return false
	}
	seen := map[string]bool{}
	var labeledDepths []int
	for v := tree.NodeID(0); int(v) < t.Len(); v++ {
		ls := t.Labels(v)
		if len(ls) > 1 {
			return false
		}
		if len(ls) == 1 {
			if seen[ls[0]] {
				return false
			}
			seen[ls[0]] = true
			labeledDepths = append(labeledDepths, int(t.Depth(v)))
		}
	}
	sort.Ints(labeledDepths)
	last := t.Len() - 1
	for i, d := range labeledDepths {
		if d < k || last-d < k {
			return false
		}
		if i > 0 && d-labeledDepths[i-1] < k {
			return false
		}
	}
	return true
}

// LabelPath is the label sequence along a variable path (one entry per
// variable; entries may be empty or hold several labels).
type LabelPath [][]string

// String renders e.g. "Y1.X1.Y2".
func (lp LabelPath) String() string {
	parts := make([]string, len(lp))
	for i, ls := range lp {
		if len(ls) == 0 {
			parts[i] = "_"
		} else {
			parts[i] = strings.Join(ls, "|")
		}
	}
	return strings.Join(parts, ".")
}

// VariableLabelPaths returns LP(Π_Q): the label paths of all variable
// paths of the (directed-acyclic) query graph of q.
func VariableLabelPaths(q *cq.Query) []LabelPath {
	g := cq.NewGraph(q)
	paths := g.VariablePaths()
	out := make([]LabelPath, len(paths))
	for i, p := range paths {
		lp := make(LabelPath, len(p))
		for j, v := range p {
			lp[j] = q.LabelsOf(v)
		}
		out[i] = lp
	}
	return out
}

// pathContainsAll reports whether every label of want occurs somewhere in
// the label path.
func pathContainsAll(lp LabelPath, want []string) bool {
	for _, w := range want {
		found := false
		for _, ls := range lp {
			for _, l := range ls {
				if l == w {
					found = true
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// pathContainsAny reports whether some label of set occurs in the path.
func pathContainsAny(lp LabelPath, set []string) bool {
	for _, ls := range lp {
		for _, l := range ls {
			for _, s := range set {
				if l == s {
					return true
				}
			}
		}
	}
	return false
}

// SeparatingModel implements the construction in the proof of Lemma 7.3:
// given the label paths of a query Q and the label sequence E1, ..., Em,
// it builds the path structure
//
//	M = LC(¬E1) . LC(E1 ∧ ¬E2) . … . LC(E1 ∧ … ∧ E_{m-1} ∧ ¬E_m)
//
// where LC(cond) concatenates (in lexicographic order) the label paths of
// Q that satisfy cond. Q is true on M; any DABCQ with a variable path
// containing all of E1..Em is false on M (Lemma 7.3).
func SeparatingModel(labelPaths []LabelPath, es []string) *tree.Tree {
	var segments []LabelPath
	for i := range es {
		need := es[:i]
		var group []LabelPath
		for _, lp := range labelPaths {
			if pathContainsAll(lp, need) && !pathContainsAny(lp, es[i:i+1]) {
				group = append(group, lp)
			}
		}
		sort.Slice(group, func(a, b int) bool { return group[a].String() < group[b].String() })
		segments = append(segments, group...)
	}
	// Concatenate into a single path structure.
	var nodeLabels [][]string
	for _, lp := range segments {
		for _, ls := range lp {
			nodeLabels = append(nodeLabels, ls)
		}
	}
	if len(nodeLabels) == 0 {
		nodeLabels = [][]string{nil}
	}
	return tree.Path(nodeLabels...)
}

// CoverageProfile reports, for each disjunct of an APQ claimed equivalent
// to Dn, how many of the 2^n structures of PS(n, p) it satisfies — the
// quantity at the heart of the Theorem 7.1 counting argument: a
// polynomial-size APQ would need some single ABCQ true on at least
// 2^(n - log p(n)) structures, which Lemmas 7.2/7.3 rule out.
type CoverageProfile struct {
	N            int
	Structures   int   // 2^n
	PerDisjunct  []int // structures satisfied by each disjunct
	UnionCovered int   // structures satisfied by at least one disjunct
}

// MaxSingleCoverage returns the largest per-disjunct coverage.
func (c CoverageProfile) MaxSingleCoverage() int {
	best := 0
	for _, v := range c.PerDisjunct {
		if v > best {
			best = v
		}
	}
	return best
}

// MeasureCoverage evaluates each disjunct on every PS(n, p) member.
// eval must decide a Boolean conjunctive query on a tree (injected to
// avoid an import cycle with the engines).
func MeasureCoverage(n, p int, disjuncts []*cq.Query, eval func(*tree.Tree, *cq.Query) bool) CoverageProfile {
	prof := CoverageProfile{
		N:           n,
		Structures:  1 << uint(n),
		PerDisjunct: make([]int, len(disjuncts)),
	}
	PathStructures(n, p, func(c uint, t *tree.Tree) bool {
		covered := false
		for i, d := range disjuncts {
			if eval(t, d) {
				prof.PerDisjunct[i]++
				covered = true
			}
		}
		if covered {
			prof.UnionCovered++
		}
		return true
	})
	return prof
}

// Example78Query returns the ABCQ Q of Fig. 12(b): a tree-shaped query
// over Child+ whose variable paths have label paths
//
//	Y1.X1.Y2.X2.Y3,  Y1.X1.Y2.X'2.Y3,  Y1.X'1.Y2.X2.Y3
//
// — no path contains both X'1 and X'2, while D2 has such a path.
func Example78Query() *cq.Query {
	q := cq.New()
	add := func(name, label string) cq.Var {
		v := q.AddVar(name)
		q.AddLabel(label, v)
		return v
	}
	a := add("a", "Y1")
	b := add("b", "X1")
	c := add("c", "Y2")
	d := add("d", "X2")
	e := add("e", "Y3")
	f := add("f", "X'2")
	g := add("g", "Y3")
	h := add("h", "X'1")
	i := add("i", "Y2")
	j := add("j", "X2")
	k := add("k", "Y3")
	q.AddAtom(axis.ChildPlus, a, b)
	q.AddAtom(axis.ChildPlus, b, c)
	q.AddAtom(axis.ChildPlus, c, d)
	q.AddAtom(axis.ChildPlus, d, e)
	q.AddAtom(axis.ChildPlus, c, f)
	q.AddAtom(axis.ChildPlus, f, g)
	q.AddAtom(axis.ChildPlus, a, h)
	q.AddAtom(axis.ChildPlus, h, i)
	q.AddAtom(axis.ChildPlus, i, j)
	q.AddAtom(axis.ChildPlus, j, k)
	return q
}
