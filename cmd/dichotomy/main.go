// Command dichotomy prints Table I of the paper — the complete
// tractability frontier of conjunctive queries over trees (Theorem 1.1) —
// and optionally verifies the X-property facts of Theorem 4.1 on random
// trees and classifies a user-supplied signature.
//
// Usage:
//
//	dichotomy                 # print Table I
//	dichotomy -verify         # also machine-verify Theorem 4.1
//	dichotomy -axes 'Child,Following'
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/axis"
	"repro/internal/core"
	"repro/internal/tree"
	"repro/internal/xprop"
)

func main() {
	verify := flag.Bool("verify", false, "verify Theorem 4.1 X-property facts on random trees")
	axesFlag := flag.String("axes", "", "comma-separated axes to classify, e.g. 'Child,Following'")
	flag.Parse()

	fmt.Println("Table I — complexity of conjunctive queries per signature")
	fmt.Println("(upper triangle; each cell: dichotomy side and paper theorem)")
	fmt.Println()
	fmt.Print(core.FormatTableI())

	fmt.Println("\nSubset-maximal tractable axis sets (§1.1):")
	for _, set := range axis.MaximalTractableSets() {
		names := make([]string, len(set))
		for i, a := range set {
			names[i] = a.String()
		}
		order, _ := axis.CommonXOrder(set)
		fmt.Printf("  {%s}  — X-property w.r.t. %s\n", strings.Join(names, ", "), order)
	}

	if *axesFlag != "" {
		var axes []axis.Axis
		for _, name := range strings.Split(*axesFlag, ",") {
			a, err := axis.Parse(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			axes = append(axes, a)
		}
		fmt.Println("\nRequested signature:")
		fmt.Println("  ", core.Classify(axes))
	}

	if *verify {
		fmt.Println("\nVerifying Theorem 4.1 on random trees...")
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 20; trial++ {
			t := tree.Random(rng, tree.DefaultRandomConfig(1+rng.Intn(30)))
			if err := xprop.VerifyTheorem41(t); err != nil {
				log.Fatalf("FAILED: %v", err)
			}
		}
		fmt.Println("  all claimed (axis, order) pairs verified on 20 random trees ✓")
		fmt.Println("\nFig. 3 counterexamples:")
		if _, ok := xprop.Check(xprop.Figure3aTree(), axis.Following, axis.PreOrder); !ok {
			fmt.Println("  Following is NOT X w.r.t. <pre   (witness tree of Fig. 3a) ✓")
		}
		if _, ok := xprop.Check(xprop.Figure3bTree(), axis.AncestorPlus, axis.PostOrder); !ok {
			fmt.Println("  Descendant⁻¹ is NOT X w.r.t. <post (witness tree of Fig. 3b) ✓")
		}
	}
}
