// Command cqload is a closed-loop load generator for cqserve: it drives a
// query mix against the /eval endpoint with a fixed worker pool for a
// fixed duration and reports throughput, latency percentiles, and
// per-status-class counts as JSON — the measurement half of the serving
// hardening work (admission control and graceful degradation live in
// internal/serve; this command tells you whether they hold up).
//
// Usage:
//
//	cqload -self -duration 10s -workers 16            # in-process server
//	cqload -addr http://host:8080 -duration 30s ...   # external server
//
// Closed loop means each worker issues its next request only after the
// previous one completes: offered load adapts to the server instead of
// piling up unboundedly, which is the right shape for measuring an
// admission-controlled server (an open loop would just measure its own
// queue). Overload responses (429/503) are retried with jittered backoff
// honoring Retry-After, up to -retries attempts; what cannot be retried
// is counted by status class, never silently dropped.
//
// With -self, cqload builds the server in-process (internal/serve) on a
// loopback listener, seeds -docs documents of -depth B-chain depth,
// registers the query mix, runs the load, then drains the server and
// checks two robustness invariants from the inside:
//
//   - goroutine hygiene: after shutdown the goroutine count returns to
//     the pre-server baseline (leak => "goroutine_leak": true);
//   - streaming memory flatness: one NDJSON tuples query with a ~depth²/2
//     answer relation is streamed while a sampler polls the heap; the
//     report carries peak-over-idle ("stream") so a regression that
//     buffers the relation shows up as a ratio jump.
//
// With -repeat R (0..1), a fraction R of requests replays a recently
// issued (query, document) pair from a bounded pool instead of a fresh
// one; every request then targets a single document, so a cache-enabled
// server (-cache-bytes here for -self, or cqserve's flag) answers the
// replays from its result cache. The run scrapes /metrics before shutdown
// and reports cache hits, misses, and the hit rate in the JSON summary —
// the knob that turns cqload into a cache-effectiveness harness.
//
// With -data DIR (-self only), the in-process server persists every
// seeded document to DIR through the crash-durable snapshot path; the
// same /metrics scrape then fills the report's "persistence" section
// (hydration errors, quarantines, persist errors), which the load gate
// asserts is all zeros — no snapshot may corrupt or fail while the
// server is under pressure.
//
// The JSON report (stdout, or -o FILE) is consumed by scripts/bench.sh -l
// and gated by scripts/perfgate.sh -l in CI's load-smoke job.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

var errFlagParse = errors.New("flag parse error")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		switch {
		case errors.Is(err, flag.ErrHelp):
			return
		case errors.Is(err, errFlagParse):
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// loadConfig is the resolved run configuration, echoed into the report.
type loadConfig struct {
	Addr     string `json:"addr"`
	Self     bool   `json:"self"`
	Docs     int    `json:"docs"`
	Depth    int    `json:"depth"`
	Workers  int    `json:"workers"`
	Duration string `json:"duration"`
	Mix      string `json:"mix"`
	Timeout  string `json:"timeout"`
	Retries  int    `json:"retries"`

	MaxInFlight int     `json:"max_inflight,omitempty"`
	MaxQueue    int     `json:"max_queue,omitempty"`
	MaxAnswers  int     `json:"max_answers,omitempty"`
	Repeat      float64 `json:"repeat,omitempty"`
	CacheBytes  int64   `json:"cache_bytes,omitempty"`
	Data        string  `json:"data,omitempty"`
	NoFsync     bool    `json:"no_fsync,omitempty"`
	Paginate    int     `json:"paginate,omitempty"`
}

// latencyStats are the sorted-percentile summaries, in milliseconds.
type latencyStats struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// streamStats reports the NDJSON heap-flatness probe.
type streamStats struct {
	Tuples       int     `json:"tuples"`
	IdleHeap     uint64  `json:"idle_heap_bytes"`
	PeakHeap     uint64  `json:"peak_heap_bytes"`
	PeakOverIdle float64 `json:"peak_over_idle"`
}

// cacheStats is the result-cache section of the report, scraped from the
// server's /metrics endpoint after the load completes. HitRate is
// hits/(hits+misses) — the fraction of /eval documents answered without
// re-running the engine.
type cacheStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// paginateStats is the -paginate self-check section of the report: a
// full cursor walk over a dedicated >= 100k-answer document, page by
// page, with the reassembled union compared byte-for-byte against a
// second walk at jumbo page size. ParityOK false or any 5xx along the
// walk means resumable pagination is broken, whatever the latencies say.
type paginateStats struct {
	PageSize int  `json:"page_size"`
	Pages    int  `json:"pages"`
	Answers  int  `json:"answers"`
	ParityOK bool `json:"parity_ok"`
	HTTP5xx  int  `json:"http_5xx"`
}

// persistenceStats is the persistence-health section of the report,
// scraped from /metrics after the load. A clean run reads all zeros —
// the load gate asserts no snapshot corrupted, no quarantine fired, and
// no persist failed while the server was under pressure.
type persistenceStats struct {
	HydrationErrors int64 `json:"hydration_errors"`
	Quarantines     int64 `json:"quarantines"`
	PersistErrors   int64 `json:"persist_errors"`
	QuarantinedDocs int64 `json:"quarantined_docs"`
}

// report is the full JSON output.
type report struct {
	Config        loadConfig        `json:"config"`
	DurationS     float64           `json:"duration_s"`
	Requests      int64             `json:"requests"`
	ThroughputRPS float64           `json:"throughput_rps"`
	Latency       latencyStats      `json:"latency"`
	Status        map[string]int    `json:"status"`
	Retries       int64             `json:"retries"`
	ClientErrors  int64             `json:"client_errors"`
	Server5xx     int64             `json:"server_5xx"`
	GoroutineLeak *bool             `json:"goroutine_leak,omitempty"`
	Stream        *streamStats      `json:"stream,omitempty"`
	Cache         *cacheStats       `json:"cache,omitempty"`
	Persistence   *persistenceStats `json:"persistence,omitempty"`
	Paginate      *paginateStats    `json:"paginate,omitempty"`
}

// op is one entry of the query mix rotation. eval is the request template
// (kept as a map so -repeat can derive single-document variants of it).
type op struct {
	name string
	mode string
	body string
	eval map[string]any
}

// keyPool is the bounded pool of recently issued request bodies that
// -repeat replays from. A ring: fresh keys overwrite the oldest, so
// replays always come from the recent past — the working set a result
// cache can actually hold — rather than from the whole run's history.
type keyPool struct {
	mu   sync.Mutex
	keys []string
	size int
	next int
}

func newKeyPool(size int) *keyPool {
	return &keyPool{keys: make([]string, 0, size), size: size}
}

func (p *keyPool) add(k string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.keys) < p.size {
		p.keys = append(p.keys, k)
		return
	}
	p.keys[p.next] = k
	p.next = (p.next + 1) % p.size
}

// pick returns a uniformly random pooled key. The caller's rng is used
// under the pool lock; each worker owns its rng, so this is race-free.
func (p *keyPool) pick(rng *rand.Rand) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.keys) == 0 {
		return "", false
	}
	return p.keys[rng.Intn(len(p.keys))], true
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cqload", flag.ContinueOnError)
	addr := fs.String("addr", "", "base URL of a running cqserve (e.g. http://localhost:8080)")
	self := fs.Bool("self", false, "spin up an in-process server on loopback instead of -addr")
	docs := fs.Int("docs", 8, "corpus size: documents seeded before the run")
	depth := fs.Int("depth", 200, "B-chain depth of each seeded document (answer relation ~ depth^2/2)")
	workers := fs.Int("workers", 8, "closed-loop client goroutines")
	duration := fs.Duration("duration", 10*time.Second, "load run length")
	mix := fs.String("mix", "bool,nodes,tuples", "comma-separated /eval mode rotation")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request client timeout")
	retries := fs.Int("retries", 3, "max retries per request on 429/503 (honoring Retry-After)")
	maxAnswers := fs.Int("max-answers", 1000, "max_answers sent with tuples requests (0 = uncapped)")
	maxInFlight := fs.Int("max-inflight", 0, "-self server: max concurrent evals (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "-self server: admission queue length")
	queueWait := fs.Duration("queue-wait", time.Second, "-self server: max queued wait")
	repeat := fs.Float64("repeat", 0, "fraction of requests replaying a recent (query, doc) pair from a bounded pool (0..1; >0 makes every request target one document)")
	poolSize := fs.Int("repeat-pool", 64, "recent-key pool size -repeat replays from")
	cacheBytes := fs.Int64("cache-bytes", 0, "-self server: result cache byte budget (0 = disabled)")
	cacheMaxEntry := fs.Int64("cache-max-entry", 0, "-self server: per-result cache size cap")
	dataDir := fs.String("data", "", "-self server: snapshot directory (every seeded PUT persists; exercises the crash-durable write path under load)")
	noFsync := fs.Bool("no-fsync", false, "-self server: skip fsync in the persist path")
	streamCheck := fs.Bool("stream-check", false, "after the run, probe NDJSON streaming heap flatness (-self only)")
	paginate := fs.Int("paginate", 0, "after the run, cursor-walk a >= 100k-answer document at this page size and parity-check the union against a one-shot walk (0 = off)")
	out := fs.String("o", "", "write the JSON report to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errFlagParse
	}
	if (*addr == "") == !*self {
		return fmt.Errorf("give exactly one of -addr or -self")
	}
	if *streamCheck && !*self {
		return fmt.Errorf("-stream-check needs -self (the heap is sampled in-process)")
	}
	if *repeat < 0 || *repeat > 1 {
		return fmt.Errorf("-repeat %v out of range [0, 1]", *repeat)
	}
	if *paginate < 0 {
		return fmt.Errorf("-paginate must be >= 0")
	}
	if *poolSize <= 0 {
		return fmt.Errorf("-repeat-pool must be positive")
	}
	if *cacheBytes > 0 && !*self {
		return fmt.Errorf("-cache-bytes configures the -self server; pass it to cqserve for -addr runs")
	}
	if (*dataDir != "" || *noFsync) && !*self {
		return fmt.Errorf("-data and -no-fsync configure the -self server; pass them to cqserve for -addr runs")
	}

	rep := report{
		Config: loadConfig{
			Addr: *addr, Self: *self, Docs: *docs, Depth: *depth, Workers: *workers,
			Duration: duration.String(), Mix: *mix, Timeout: timeout.String(),
			Retries: *retries, MaxInFlight: *maxInFlight, MaxQueue: *maxQueue,
			MaxAnswers: *maxAnswers, Repeat: *repeat, CacheBytes: *cacheBytes,
			Data: *dataDir, NoFsync: *noFsync, Paginate: *paginate,
		},
		Status: map[string]int{},
	}

	// -self: build the server, note the goroutine baseline first so the
	// post-shutdown leak check covers everything the server spawned.
	var srv *serve.Server
	var httpSrv *http.Server
	baseline := runtime.NumGoroutine()
	if *self {
		var err error
		srv, err = serve.New(serve.Config{
			MaxInFlight: *maxInFlight, MaxQueue: *maxQueue, QueueWait: *queueWait,
			CacheBytes: *cacheBytes, CacheMaxEntry: *cacheMaxEntry,
			DataDir: *dataDir, NoFsync: *noFsync,
		})
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("listen: %w", err)
		}
		httpSrv = &http.Server{Handler: srv.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		*addr = "http://" + ln.Addr().String()
		rep.Config.Addr = *addr
	}

	client := &http.Client{Timeout: *timeout}
	if err := seed(client, *addr, *docs, *depth); err != nil {
		return fmt.Errorf("seed corpus: %w", err)
	}
	ops, err := buildMix(client, *addr, *mix, *maxAnswers)
	if err != nil {
		return fmt.Errorf("register mix: %w", err)
	}

	// -repeat targets every request at a single document so that repeated
	// (query, doc) pairs are whole-request cache hits on a cache-enabled
	// server. The op × doc bodies are precomputed; the pool replays them.
	var targeted [][]string
	var pool *keyPool
	if *repeat > 0 {
		pool = newKeyPool(*poolSize)
		targeted = make([][]string, len(ops))
		for i, o := range ops {
			targeted[i] = make([]string, *docs)
			for j := 0; j < *docs; j++ {
				eval := make(map[string]any, len(o.eval)+1)
				for k, v := range o.eval {
					eval[k] = v
				}
				eval["docs"] = []string{fmt.Sprintf("load%03d", j)}
				blob, err := json.Marshal(eval)
				if err != nil {
					return err
				}
				targeted[i][j] = string(blob)
			}
		}
	}

	// The closed loop: each worker cycles through the mix, one request in
	// flight per worker, retrying shed requests with jittered backoff.
	var (
		mu        sync.Mutex
		latencies []float64
		requests  atomic.Int64
		retried   atomic.Int64
		clientErr atomic.Int64
	)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	next := atomic.Int64{}
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for ctx.Err() == nil {
				i := int(next.Add(1)) % len(ops)
				body := ops[i].body
				if pool != nil {
					// Replay a recent pair with probability -repeat; fresh
					// requests pick a random document and enter the pool.
					if b, ok := pool.pick(rng); ok && rng.Float64() < *repeat {
						body = b
					} else {
						body = targeted[i][rng.Intn(*docs)]
						pool.add(body)
					}
				}
				start := time.Now()
				status, nRetries, err := doEval(ctx, client, *addr, body, *retries, rng)
				elapsed := time.Since(start)
				retried.Add(nRetries)
				if err != nil {
					// Timeouts and run-end cancellations; the run's own end
					// is not an error of the server's.
					if ctx.Err() == nil {
						clientErr.Add(1)
						requests.Add(1)
					}
					continue
				}
				requests.Add(1)
				mu.Lock()
				latencies = append(latencies, float64(elapsed.Microseconds())/1000)
				rep.Status[strconv.Itoa(status)]++
				if status >= 500 {
					rep.Server5xx++
				}
				mu.Unlock()
			}
		}(int64(w) + 1)
	}
	runStart := time.Now()
	wg.Wait()
	elapsed := time.Since(runStart)

	rep.DurationS = elapsed.Seconds()
	rep.Requests = requests.Load()
	rep.Retries = retried.Load()
	rep.ClientErrors = clientErr.Load()
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	rep.Latency = percentiles(latencies)

	// Cache effectiveness comes from the server's own accounting — a
	// /metrics scrape after the load, before shutdown — not from guessing
	// client-side. Servers without the endpoint just omit the section.
	if cs, ps, err := scrapeMetrics(client, *addr); err == nil {
		rep.Cache = cs
		rep.Persistence = ps
	}

	// The streaming probe runs after the load so the heap is quiet: idle
	// baseline after GC, then one huge NDJSON answer relation streamed
	// while a sampler records the peak. A flat stream keeps the ratio
	// small however many tuples pass through.
	if *streamCheck {
		st, err := streamProbe(client, *addr, *depth)
		if err != nil {
			return fmt.Errorf("stream probe: %w", err)
		}
		rep.Stream = &st
	}

	// The pagination probe also runs after the load: a full cursor walk
	// over a dedicated large document, self-checked against a jumbo-page
	// walk of the same relation.
	if *paginate > 0 {
		ps, err := paginateProbe(client, *addr, *depth, *paginate)
		if err != nil {
			return fmt.Errorf("paginate probe: %w", err)
		}
		rep.Paginate = &ps
	}

	// Drain the self server and verify goroutine hygiene.
	if *self {
		srv.BeginShutdown()
		shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer shCancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		leak := !goroutinesSettle(baseline, 5*time.Second)
		rep.GoroutineLeak = &leak
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		return os.WriteFile(*out, blob, 0o644)
	}
	_, err = stdout.Write(blob)
	return err
}

// seed loads the corpus: -docs documents, each a root A over a B-chain of
// -depth nodes, so "Q(x, y) <- B(x), Child+(x, y), B(y)" has ~depth^2/2
// answers per document and monadic descendant queries have depth answers.
func seed(client *http.Client, addr string, docs, depth int) error {
	for i := 0; i < docs; i++ {
		if err := seedOne(client, addr, fmt.Sprintf("load%03d", i), depth); err != nil {
			return err
		}
	}
	return nil
}

// buildMix registers one query per mode and returns the request rotation.
func buildMix(client *http.Client, addr, mix string, maxAnswers int) ([]op, error) {
	queries := map[string]string{
		"bool":   "Q() <- A(x), Child+(x, y), B(y)",
		"nodes":  "Q(y) <- A(x), Child+(x, y), B(y)",
		"tuples": "Q(x, y) <- B(x), Child+(x, y), B(y)",
	}
	var ops []op
	for _, mode := range strings.Split(mix, ",") {
		mode = strings.TrimSpace(mode)
		src, ok := queries[mode]
		if !ok {
			return nil, fmt.Errorf("unknown mode %q in -mix", mode)
		}
		name := "load_" + mode
		body, _ := json.Marshal(map[string]string{"query": src})
		req, err := http.NewRequest("PUT", addr+"/queries/"+name, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("PUT query %s: status %d", name, resp.StatusCode)
		}
		evalBody := map[string]any{"query": name, "mode": mode}
		if mode == "tuples" && maxAnswers > 0 {
			evalBody["max_answers"] = maxAnswers
		}
		blob, _ := json.Marshal(evalBody)
		ops = append(ops, op{name: name, mode: mode, body: string(blob), eval: evalBody})
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("-mix selected no modes")
	}
	return ops, nil
}

// doEval issues one POST /eval, retrying overload responses (429/503)
// with jittered exponential backoff that honors Retry-After. It returns
// the final status and how many retries were spent.
func doEval(ctx context.Context, client *http.Client, addr, body string, retries int, rng *rand.Rand) (int, int64, error) {
	backoff := 10 * time.Millisecond
	var nRetries int64
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, "POST", addr+"/eval", strings.NewReader(body))
		if err != nil {
			return 0, nRetries, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return 0, nRetries, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status := resp.StatusCode
		if (status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable) ||
			attempt >= retries {
			return status, nRetries, nil
		}
		// Shed: back off and retry. Retry-After (whole seconds) takes
		// precedence over the local schedule; jitter desynchronizes the
		// retrying herd.
		wait := backoff
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				wait = time.Duration(secs) * time.Second
			}
		}
		wait += time.Duration(rng.Int63n(int64(backoff)/2 + 1))
		backoff = min(2*backoff, time.Second)
		nRetries++
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return status, nRetries, ctx.Err()
		}
	}
}

// scrapeMetrics reads the server's result-cache and persistence counters
// from /metrics (Prometheus text exposition: "name value" lines).
func scrapeMetrics(client *http.Client, addr string) (*cacheStats, *persistenceStats, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	cs := &cacheStats{}
	ps := &persistenceStats{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "cqtrees_cache_hits_total":
			cs.Hits = int64(v)
		case "cqtrees_cache_misses_total":
			cs.Misses = int64(v)
		case "cqtrees_corpus_hydration_errors_total":
			ps.HydrationErrors = int64(v)
		case "cqtrees_corpus_quarantines_total":
			ps.Quarantines = int64(v)
		case "cqtrees_corpus_persist_errors_total":
			ps.PersistErrors = int64(v)
		case "cqtrees_corpus_quarantined_docs":
			ps.QuarantinedDocs = int64(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if total := cs.Hits + cs.Misses; total > 0 {
		cs.HitRate = float64(cs.Hits) / float64(total)
	}
	return cs, ps, nil
}

// percentiles summarizes latencies (ms) by sorted rank.
func percentiles(ms []float64) latencyStats {
	if len(ms) == 0 {
		return latencyStats{}
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return latencyStats{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: ms[len(ms)-1]}
}

// streamProbe runs one uncapped NDJSON tuples query against the deepest
// relation in the corpus while sampling the process heap, and reports
// peak-over-idle: a streaming regression that materializes the relation
// shows up as a multiple of the tuple count, a flat stream stays near 1.
func streamProbe(client *http.Client, addr string, depth int) (streamStats, error) {
	runtime.GC()
	var idle runtime.MemStats
	runtime.ReadMemStats(&idle)

	stop := make(chan struct{})
	peakCh := make(chan uint64)
	go func() {
		peak := idle.HeapAlloc
		var m runtime.MemStats
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				peakCh <- peak
				return
			case <-ticker.C:
				runtime.ReadMemStats(&m)
				peak = max(peak, m.HeapAlloc)
			}
		}
	}()

	// Inline source, independent of the -mix rotation's registrations.
	body := `{"source": "Q(x, y) <- B(x), Child+(x, y), B(y)", "docs": ["load000"]}`
	req, err := http.NewRequest("POST", addr+"/eval", strings.NewReader(body))
	if err != nil {
		return streamStats{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	// No client timeout here: a million-tuple stream takes as long as it
	// takes, and progress (not latency) is what the probe measures.
	streamClient := &http.Client{}
	resp, err := streamClient.Do(req)
	if err != nil {
		return streamStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return streamStats{}, fmt.Errorf("stream eval: status %d", resp.StatusCode)
	}
	tuples := 0
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"tuple"`)) {
			tuples++
		} else if bytes.Contains(line, []byte(`"summary"`)) {
			sawSummary = true
		}
	}
	if err := sc.Err(); err != nil {
		return streamStats{}, err
	}
	if !sawSummary {
		return streamStats{}, fmt.Errorf("stream cut: no summary line after %d tuples", tuples)
	}

	close(stop)
	peak := <-peakCh
	st := streamStats{Tuples: tuples, IdleHeap: idle.HeapAlloc, PeakHeap: peak}
	if idle.HeapAlloc > 0 {
		st.PeakOverIdle = float64(peak) / float64(idle.HeapAlloc)
	}
	return st, nil
}

// paginateMinDepth makes the probe's dedicated document carry >= 100k
// answers (~depth²/2 for the B-chain relation) regardless of the load
// run's -depth, so the walk exercises genuinely deep pagination.
const paginateMinDepth = 450

// paginateProbe seeds one dedicated deep document and cursor-walks its
// whole ~depth²/2-tuple answer relation twice — once at the requested
// page size, once at jumbo pages — checking that both unions are
// byte-identical and that no page request ever 5xx'd. Cursor resume cost
// is O(depth + page), so the paged walk's total work stays linear in the
// answer count; a quadratic blowup here surfaces as a hung probe.
func paginateProbe(client *http.Client, addr string, depth, pageSize int) (paginateStats, error) {
	if depth < paginateMinDepth {
		depth = paginateMinDepth
	}
	if err := seedOne(client, addr, "paginate0", depth); err != nil {
		return paginateStats{}, err
	}
	st := paginateStats{PageSize: pageSize, ParityOK: true}
	// walk follows next_cursor to exhaustion, returning the union as raw
	// tuple JSON (byte-level comparison needs no decoding).
	walk := func(limit int) ([]string, int, error) {
		var union []string
		cursor := ""
		pages := 0
		for {
			req := map[string]any{
				"source": "Q(x, y) <- B(x), Child+(x, y), B(y)",
				"mode":   "tuples",
				"docs":   []string{"paginate0"},
				"order":  []string{"asc", "asc"},
				"limit":  limit,
			}
			if cursor != "" {
				req["cursor"] = cursor
			}
			blob, _ := json.Marshal(req)
			resp, err := client.Post(addr+"/eval", "application/json", bytes.NewReader(blob))
			if err != nil {
				return nil, pages, err
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, pages, err
			}
			if resp.StatusCode >= 500 {
				st.HTTP5xx++
			}
			if resp.StatusCode != http.StatusOK {
				return nil, pages, fmt.Errorf("page %d: status %d: %s", pages, resp.StatusCode, body)
			}
			var page struct {
				Results []struct {
					Tuples []json.RawMessage `json:"tuples"`
					Error  string            `json:"error"`
				} `json:"results"`
				NextCursor string `json:"next_cursor"`
			}
			if err := json.Unmarshal(body, &page); err != nil {
				return nil, pages, err
			}
			if len(page.Results) != 1 || page.Results[0].Error != "" {
				return nil, pages, fmt.Errorf("page %d: bad result rows: %s", pages, body)
			}
			for _, t := range page.Results[0].Tuples {
				union = append(union, string(t))
			}
			pages++
			if page.NextCursor == "" {
				return union, pages, nil
			}
			cursor = page.NextCursor
		}
	}
	paged, pages, err := walk(pageSize)
	if err != nil {
		return st, err
	}
	oneShot, _, err := walk(1 << 30)
	if err != nil {
		return st, err
	}
	st.Pages = pages
	st.Answers = len(paged)
	if len(paged) != len(oneShot) {
		st.ParityOK = false
	} else {
		for i := range paged {
			if paged[i] != oneShot[i] {
				st.ParityOK = false
				break
			}
		}
	}
	return st, nil
}

// seedOne PUTs a single named B-chain document of the given depth.
func seedOne(client *http.Client, addr, name string, depth int) error {
	var b strings.Builder
	b.Grow(depth*2 + 16)
	for i := 0; i < depth; i++ {
		b.WriteString("B(")
	}
	b.WriteString("B")
	for i := 0; i < depth; i++ {
		b.WriteString(")")
	}
	body, _ := json.Marshal(map[string]string{"term": "A(" + b.String() + ")"})
	req, err := http.NewRequest("PUT", addr+"/docs/"+name, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("PUT %s: status %d", name, resp.StatusCode)
	}
	return nil
}

// goroutinesSettle polls until the goroutine count returns to (near) the
// baseline or the deadline passes. The +2 slack covers runtime helpers
// and the sampler teardown.
func goroutinesSettle(baseline int, within time.Duration) bool {
	deadline := time.Now().Add(within)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}
