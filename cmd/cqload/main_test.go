package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestLoadRunSelf: a short self-hosted run produces a well-formed report
// with traffic, no server errors, clean shutdown, and a flat stream
// probe. This is the same invariant set CI's load-smoke job gates on.
func TestLoadRunSelf(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-self", "-duration", "300ms", "-docs", "4", "-depth", "60",
		"-workers", "4", "-max-inflight", "2", "-max-queue", "2",
		"-queue-wait", "100ms", "-retries", "2", "-stream-check",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}

	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Status["200"] == 0 {
		t.Fatalf("no successful evals: %v", rep.Status)
	}
	if rep.Server5xx != 0 {
		t.Fatalf("server 5xx under load: %v", rep.Status)
	}
	// Overload sheds as 429 at most — anything else in the map is a bug.
	for code := range rep.Status {
		if code != "200" && code != "429" {
			t.Fatalf("unexpected status class %s: %v", code, rep.Status)
		}
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("implausible latency stats: %+v", rep.Latency)
	}
	if rep.GoroutineLeak == nil {
		t.Fatal("self run did not report the leak check")
	}
	if *rep.GoroutineLeak {
		t.Fatal("goroutines leaked across server shutdown")
	}
	if rep.Stream == nil || rep.Stream.Tuples == 0 {
		t.Fatalf("stream probe missing or empty: %+v", rep.Stream)
	}
	// Flatness: the probe streams ~depth^2/2 tuples; a regression that
	// materializes the relation (or reintroduces an O(answers) dedup set)
	// blows the peak heap up by the relation size. 64 MiB is a loose
	// absolute tripwire far above the flat path's buffers.
	if rep.Stream.PeakHeap > 64<<20 {
		t.Fatalf("stream peak heap %d bytes: not flat", rep.Stream.PeakHeap)
	}
}

// TestLoadRepeatCache: a -repeat run against a cache-enabled self server
// replays recent (query, doc) pairs, and the report's cache section —
// scraped from the server's own /metrics — shows real hits.
func TestLoadRepeatCache(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-self", "-duration", "300ms", "-docs", "4", "-depth", "60",
		"-workers", "4", "-retries", "2",
		"-repeat", "0.8", "-cache-bytes", "16777216",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}
	if rep.Requests == 0 || rep.Status["200"] == 0 {
		t.Fatalf("no successful evals: %+v", rep.Status)
	}
	if rep.Config.Repeat != 0.8 || rep.Config.CacheBytes != 16777216 {
		t.Fatalf("config not echoed: %+v", rep.Config)
	}
	if rep.Cache == nil {
		t.Fatal("no cache section in the report")
	}
	if rep.Cache.Hits == 0 {
		t.Fatalf("repeat run produced no cache hits: %+v", rep.Cache)
	}
	if rep.Cache.HitRate <= 0 || rep.Cache.HitRate > 1 {
		t.Fatalf("implausible hit rate: %+v", rep.Cache)
	}
}

// TestLoadFlagValidation: -addr and -self are mutually exclusive and one
// is required; -stream-check needs the in-process server.
func TestLoadFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no -addr and no -self accepted")
	}
	if err := run([]string{"-self", "-addr", "http://x"}, &buf); err == nil {
		t.Fatal("-self with -addr accepted")
	}
	if err := run([]string{"-addr", "http://x", "-stream-check"}, &buf); err == nil {
		t.Fatal("-stream-check without -self accepted")
	}
	if err := run([]string{"-self", "-mix", "teleport", "-duration", "10ms"}, &buf); err == nil {
		t.Fatal("unknown mix mode accepted")
	}
	if err := run([]string{"-self", "-repeat", "1.5"}, &buf); err == nil {
		t.Fatal("-repeat out of range accepted")
	}
	if err := run([]string{"-self", "-repeat-pool", "0"}, &buf); err == nil {
		t.Fatal("zero -repeat-pool accepted")
	}
	if err := run([]string{"-addr", "http://x", "-cache-bytes", "1024"}, &buf); err == nil {
		t.Fatal("-cache-bytes without -self accepted")
	}
}
