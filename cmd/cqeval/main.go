// Command cqeval evaluates a conjunctive query against a tree.
//
// Usage:
//
//	cqeval -tree 'A(B,C(B))' -query 'Q(y) <- A(x), Child+(x, y), B(y)'
//	cqeval -treefile doc.xml -query '...' [-explain] [-apq] [-xpath]
//
// Trees are given inline in term syntax (-tree) or loaded from a file
// (-treefile; .xml files are parsed as XML, everything else as terms).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	cqtrees "repro"
)

func main() {
	treeSrc := flag.String("tree", "", "tree in term syntax, e.g. A(B,C)")
	treeFile := flag.String("treefile", "", "file holding the tree (.xml or term syntax)")
	querySrc := flag.String("query", "", "conjunctive query, e.g. Q(y) <- A(x), Child(x, y)")
	explain := flag.Bool("explain", false, "print the evaluation plan and classification")
	apq := flag.Bool("apq", false, "also print the equivalent acyclic positive query (Thm 6.10)")
	asXPath := flag.Bool("xpath", false, "also print equivalent XPath expressions (monadic queries)")
	flag.Parse()

	t, err := loadTree(*treeSrc, *treeFile)
	if err != nil {
		log.Fatal(err)
	}
	if *querySrc == "" {
		log.Fatal("cqeval: -query is required")
	}
	q, err := cqtrees.ParseQuery(*querySrc)
	if err != nil {
		log.Fatal(err)
	}
	// Compile once; the prepared query carries the plan and evaluates
	// without re-classifying.
	pq, err := cqtrees.Prepare(q)
	if err != nil {
		log.Fatal(err)
	}

	if *explain {
		fmt.Println("plan:", pq.Plan())
	}
	answers := pq.All(t)
	if len(q.Head) == 0 {
		fmt.Println("satisfiable:", len(answers) > 0)
	} else {
		fmt.Printf("%d answer(s):\n", len(answers))
		for _, tup := range answers {
			parts := make([]string, len(tup))
			for i, v := range tup {
				parts[i] = describe(t, v)
			}
			fmt.Println("  ", strings.Join(parts, ", "))
		}
	}
	if *apq {
		a, err := cqtrees.ToAPQ(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nAPQ (%d disjuncts):\n%s\n", len(a.Disjuncts), a)
	}
	if *asXPath {
		exprs, err := cqtrees.ToXPath(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nXPath:")
		for _, e := range exprs {
			fmt.Println("  ", e)
		}
	}
}

func loadTree(src, file string) (*cqtrees.Tree, error) {
	switch {
	case src != "" && file != "":
		return nil, fmt.Errorf("cqeval: use -tree or -treefile, not both")
	case src != "":
		return cqtrees.ParseTree(src)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(file, ".xml") {
			return cqtrees.ParseXML(f)
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return cqtrees.ParseTree(string(data))
	default:
		return nil, fmt.Errorf("cqeval: -tree or -treefile is required")
	}
}

func describe(t *cqtrees.Tree, v cqtrees.NodeID) string {
	labels := t.Labels(v)
	name := "_"
	if len(labels) > 0 {
		name = strings.Join(labels, "|")
	}
	return fmt.Sprintf("%s#%d(depth %d)", name, v, t.Depth(v))
}
