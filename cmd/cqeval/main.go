// Command cqeval evaluates conjunctive queries against a tree.
//
// Usage:
//
//	cqeval -tree 'A(B,C(B))' -query 'Q(y) <- A(x), Child+(x, y), B(y)'
//	cqeval -treefile doc.xml -query '...' -query '...' [-parallel 4] [-explain] [-apq] [-xpath]
//	cqeval -treefile doc.xml -save-index doc.cqs            # dump a snapshot
//	cqeval -load-index doc.cqs -query '...'                 # reuse it: no parse, no index build
//
// Trees are given inline in term syntax (-tree), loaded from a file
// (-treefile; .xml files are parsed as XML, everything else as terms), or
// adopted from a binary index snapshot (-load-index; write one with
// -save-index).
// -query may repeat: the document is indexed once (cqtrees.Index) and every
// query evaluates against the shared Document through the iterator API;
// -parallel shards the outer candidate loop of each enumeration across the
// given number of workers. Per-phase timings (index / prepare / execute)
// are reported at the end.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"slices"
	"strings"
	"time"

	cqtrees "repro"
)

// multiFlag collects repeated occurrences of a string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// errFlagParse marks flag-parse failures the FlagSet already reported to
// stderr (with usage); main exits nonzero without printing them twice.
var errFlagParse = errors.New("flag parse error")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		switch {
		case errors.Is(err, flag.ErrHelp):
			// -h/-help: usage already printed; exit clean.
			return
		case errors.Is(err, errFlagParse):
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the whole command, separated from main for tests: args are the
// command-line arguments (without the program name), output goes to
// stdout, and every failure comes back as an error instead of exiting.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cqeval", flag.ContinueOnError)
	treeSrc := fs.String("tree", "", "tree in term syntax, e.g. A(B,C)")
	treeFile := fs.String("treefile", "", "file holding the tree (.xml or term syntax)")
	var querySrcs multiFlag
	fs.Var(&querySrcs, "query", "conjunctive query, e.g. Q(y) <- A(x), Child(x, y); may repeat")
	parallel := fs.Int("parallel", 0, "worker count for enumeration (<= 1 means sequential)")
	explain := fs.Bool("explain", false, "print each query's evaluation plan and classification")
	apq := fs.Bool("apq", false, "also print the equivalent acyclic positive queries (Thm 6.10)")
	asXPath := fs.Bool("xpath", false, "also print equivalent XPath expressions (monadic queries)")
	saveIndex := fs.String("save-index", "", "write the indexed document to this snapshot file")
	loadIndex := fs.String("load-index", "", "load the document from a snapshot file instead of parsing (-tree/-treefile)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("cqeval: unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	// Phase 1: obtain the indexed document — parse + index once, or adopt
	// a snapshot (no parse, no index build; IndexLoadCount ticks instead).
	var (
		doc        *cqtrees.Document
		indexStart = time.Now()
	)
	if *loadIndex != "" {
		if *treeSrc != "" || *treeFile != "" {
			return fmt.Errorf("cqeval: -load-index replaces -tree/-treefile; use one")
		}
		var err error
		if doc, err = cqtrees.LoadDocumentFile(*loadIndex); err != nil {
			return fmt.Errorf("cqeval: load %s: %v", *loadIndex, err)
		}
	} else {
		t, err := loadTree(*treeSrc, *treeFile)
		if err != nil {
			return err
		}
		doc = cqtrees.Index(t)
	}
	indexDur := time.Since(indexStart)
	t := doc.Tree()

	if *saveIndex != "" {
		if err := cqtrees.SaveDocumentFile(*saveIndex, doc); err != nil {
			return fmt.Errorf("cqeval: save %s: %v", *saveIndex, err)
		}
		fmt.Fprintf(stdout, "saved index snapshot: %s (%d nodes)\n", *saveIndex, doc.Len())
		if len(querySrcs) == 0 {
			return nil // pure conversion run
		}
	}
	if len(querySrcs) == 0 {
		return fmt.Errorf("cqeval: at least one -query is required")
	}

	// Phase 2: compile each query once.
	prepareStart := time.Now()
	pqs := make([]*cqtrees.PreparedQuery, len(querySrcs))
	for i, src := range querySrcs {
		pq, err := cqtrees.Compile(src)
		if err != nil {
			return fmt.Errorf("cqeval: query %d: %v", i+1, err)
		}
		pqs[i] = pq
	}
	prepareDur := time.Since(prepareStart)

	// Phase 3: execute against the shared document.
	var executeDur time.Duration
	for i, pq := range pqs {
		if len(pqs) > 1 {
			fmt.Fprintf(stdout, "-- query %d: %s\n", i+1, querySrcs[i])
		}
		if *explain {
			fmt.Fprintln(stdout, "plan:", pq.Plan())
		}
		// Sequential runs stream through the range-over-func iterator;
		// -parallel > 1 uses the sharded materializing path instead
		// (streaming is single-goroutine by contract). Both are sorted
		// below for deterministic output.
		execStart := time.Now()
		var answers [][]cqtrees.NodeID
		if *parallel > 1 {
			var err error
			answers, err = pq.AllErr(doc, cqtrees.WithWorkers(*parallel))
			if err != nil {
				return fmt.Errorf("cqeval: query %d: %v", i+1, err)
			}
		} else {
			for tuple := range pq.Tuples(doc) {
				answers = append(answers, tuple)
			}
			slices.SortFunc(answers, slices.Compare)
		}
		executeDur += time.Since(execStart)
		if len(pq.Query().Head) == 0 {
			fmt.Fprintln(stdout, "satisfiable:", len(answers) > 0)
		} else {
			fmt.Fprintf(stdout, "%d answer(s):\n", len(answers))
			for _, tup := range answers {
				parts := make([]string, len(tup))
				for j, v := range tup {
					parts[j] = describe(t, v)
				}
				fmt.Fprintln(stdout, "  ", strings.Join(parts, ", "))
			}
		}
		if *apq {
			a, err := cqtrees.ToAPQ(pq.Query())
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\nAPQ (%d disjuncts):\n%s\n", len(a.Disjuncts), a)
		}
		if *asXPath {
			exprs, err := cqtrees.ToXPath(pq.Query())
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "\nXPath:")
			for _, e := range exprs {
				fmt.Fprintln(stdout, "  ", e)
			}
		}
	}
	fmt.Fprintf(stdout, "timings: index=%v prepare=%v execute=%v (%d nodes, %d queries)\n",
		indexDur.Round(time.Microsecond), prepareDur.Round(time.Microsecond),
		executeDur.Round(time.Microsecond), doc.Len(), len(pqs))
	return nil
}

func loadTree(src, file string) (*cqtrees.Tree, error) {
	switch {
	case src != "" && file != "":
		return nil, fmt.Errorf("cqeval: use -tree or -treefile, not both")
	case src != "":
		return cqtrees.ParseTree(src)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(file, ".xml") {
			return cqtrees.ParseXML(f)
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return cqtrees.ParseTree(string(data))
	default:
		return nil, fmt.Errorf("cqeval: -tree or -treefile is required")
	}
}

func describe(t *cqtrees.Tree, v cqtrees.NodeID) string {
	labels := t.Labels(v)
	name := "_"
	if len(labels) > 0 {
		name = strings.Join(labels, "|")
	}
	return fmt.Sprintf("%s#%d(depth %d)", name, v, t.Depth(v))
}
