package main

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd runs the CLI with args, returning its stdout.
func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

// TestFlagAndInputErrors: every misuse comes back as an error, not an
// exit or panic.
func TestFlagAndInputErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no tree", []string{"-query", "Q() <- A(x)"}},
		{"no query", []string{"-tree", "A(B)"}},
		{"tree and treefile", []string{"-tree", "A", "-treefile", "x.xml", "-query", "Q() <- A(x)"}},
		{"bad tree syntax", []string{"-tree", "A(", "-query", "Q() <- A(x)"}},
		{"bad query syntax", []string{"-tree", "A(B)", "-query", "nonsense"}},
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"positional args", []string{"-tree", "A(B)", "-query", "Q() <- A(x)", "stray"}},
		{"missing treefile", []string{"-treefile", "does-not-exist.term", "-query", "Q() <- A(x)"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := runCmd(t, tc.args...); err == nil {
				t.Fatalf("args %v: no error", tc.args)
			}
		})
	}
}

// TestHelpFlag: -h surfaces flag.ErrHelp (main exits 0 on it, not 1).
func TestHelpFlag(t *testing.T) {
	if _, err := runCmd(t, "-h"); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: err = %v, want flag.ErrHelp", err)
	}
}

// TestSingleQuery: the basic answer listing plus timings line.
func TestSingleQuery(t *testing.T) {
	out, err := runCmd(t,
		"-tree", "A(B,C(B))",
		"-query", "Q(y) <- A(x), Child+(x, y), B(y)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 answer(s):") {
		t.Errorf("missing answer count:\n%s", out)
	}
	if !strings.Contains(out, "B#1(depth 1)") || !strings.Contains(out, "B#3(depth 2)") {
		t.Errorf("missing node descriptions:\n%s", out)
	}
	if !strings.Contains(out, "timings: index=") || !strings.Contains(out, "(4 nodes, 1 queries)") {
		t.Errorf("missing timings line:\n%s", out)
	}
	// Single-query output has no per-query headers.
	if strings.Contains(out, "-- query") {
		t.Errorf("unexpected query header:\n%s", out)
	}
}

// TestMultiQueryOutput: repeated -query evaluates every query against the
// one shared document, with per-query headers in order.
func TestMultiQueryOutput(t *testing.T) {
	out, err := runCmd(t,
		"-tree", "A(B,C(B))",
		"-query", "Q(y) <- A(x), Child+(x, y), B(y)",
		"-query", "Q() <- A(x), Child(x, y), C(y)",
		"-query", "Q(y) <- C(x), Child(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"-- query 1: Q(y) <- A(x), Child+(x, y), B(y)",
		"-- query 2: Q() <- A(x), Child(x, y), C(y)",
		"-- query 3: Q(y) <- C(x), Child(x, y)",
		"satisfiable: true", // the Boolean query
		"(4 nodes, 3 queries)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if i1, i2 := strings.Index(out, "-- query 1"), strings.Index(out, "-- query 2"); i1 > i2 {
		t.Errorf("query sections out of order:\n%s", out)
	}
}

// TestParallelMatchesSequential: -parallel output equals sequential
// output line for line (both paths sort).
func TestParallelMatchesSequential(t *testing.T) {
	args := []string{
		"-tree", "A(B,C(B),B(C(B)))",
		"-query", "Q(x, y) <- A(x), Child+(x, y), B(y)",
	}
	seq, err := runCmd(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	par, err := runCmd(t, append(args, "-parallel", "4")...)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings := func(s string) string {
		lines := strings.Split(strings.TrimSpace(s), "\n")
		return strings.Join(lines[:len(lines)-1], "\n")
	}
	if stripTimings(seq) != stripTimings(par) {
		t.Errorf("parallel output differs:\nseq:\n%s\npar:\n%s", seq, par)
	}
}

// TestExplainAndTreefile: -explain prints the plan; -treefile loads term
// and XML files by extension.
func TestExplainAndTreefile(t *testing.T) {
	dir := t.TempDir()
	termFile := filepath.Join(dir, "doc.term")
	if err := os.WriteFile(termFile, []byte("A(B,C(B))"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t,
		"-treefile", termFile,
		"-explain",
		"-query", "Q(y) <- A(x), Child+(x, y), B(y)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan:") {
		t.Errorf("missing plan line:\n%s", out)
	}
	if !strings.Contains(out, "2 answer(s):") {
		t.Errorf("missing answers:\n%s", out)
	}

	xmlFile := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(xmlFile, []byte("<a><b/><c><b/></c></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCmd(t,
		"-treefile", xmlFile,
		"-query", "Q(y) <- a(x), Child+(x, y), b(y)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 answer(s):") {
		t.Errorf("xml treefile answers:\n%s", out)
	}
}

// TestXPathAndAPQ: the rewriting flags render extra sections.
func TestXPathAndAPQ(t *testing.T) {
	out, err := runCmd(t,
		"-tree", "A(B,C(B))",
		"-apq", "-xpath",
		"-query", "Q(y) <- A(x), Child(x, y), B(y)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "APQ (") {
		t.Errorf("missing APQ section:\n%s", out)
	}
	if !strings.Contains(out, "XPath:") {
		t.Errorf("missing XPath section:\n%s", out)
	}
}

// TestSaveLoadIndex: -save-index dumps a snapshot, -load-index reuses it
// with identical answers; the flag conflicts and error paths hold.
func TestSaveLoadIndex(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "doc.cqs")
	query := "Q(y) <- A(x), Child+(x, y), B(y)"

	direct, err := runCmd(t, "-tree", "A(B,C(B))", "-query", query, "-save-index", snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(direct, "saved index snapshot: "+snap) {
		t.Fatalf("no save confirmation in output:\n%s", direct)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatal(err)
	}

	loaded, err := runCmd(t, "-load-index", snap, "-query", query)
	if err != nil {
		t.Fatal(err)
	}
	// Same answer block; only the save line and timings may differ.
	wantAnswers := section(direct, "answer(s):")
	if got := section(loaded, "answer(s):"); got != wantAnswers || wantAnswers == "" {
		t.Fatalf("answers differ:\nsaved run:\n%s\nloaded run:\n%s", direct, loaded)
	}

	// A conversion-only run (no query) is valid with -save-index…
	if _, err := runCmd(t, "-tree", "A(B)", "-save-index", snap+"2"); err != nil {
		t.Fatal(err)
	}
	// …but -load-index still requires a query, conflicts with tree
	// sources, and rejects non-snapshot files.
	if _, err := runCmd(t, "-load-index", snap); err == nil {
		t.Fatal("load without query: no error")
	}
	if _, err := runCmd(t, "-load-index", snap, "-tree", "A(B)", "-query", "Q() <- A(x)"); err == nil {
		t.Fatal("load+tree conflict: no error")
	}
	notSnap := filepath.Join(t.TempDir(), "not.cqs")
	if err := os.WriteFile(notSnap, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "-load-index", notSnap, "-query", "Q() <- A(x)"); err == nil {
		t.Fatal("bogus snapshot: no error")
	}
}

// section returns out from the first line containing marker up to (not
// including) the timings line.
func section(out, marker string) string {
	lines := strings.Split(out, "\n")
	start := -1
	for i, l := range lines {
		if strings.Contains(l, marker) {
			start = i
			break
		}
	}
	if start < 0 {
		return ""
	}
	end := len(lines)
	for i := start; i < len(lines); i++ {
		if strings.HasPrefix(lines[i], "timings:") {
			end = i
			break
		}
	}
	return strings.Join(lines[start:end], "\n")
}
