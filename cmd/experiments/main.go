// Command experiments regenerates every table and figure artifact of the
// paper (the E-* index of DESIGN.md), printing paper-expected versus
// measured results. EXPERIMENTS.md is written from this command's output.
//
// Usage:
//
//	experiments            # run everything
//	experiments -exp fig9  # one experiment (table1, table2, fig1, fig2,
//	                       # fig3, fig4, fig5, fig8, fig9, fig12, errata)
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/axis"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/onethree"
	"repro/internal/rewrite"
	"repro/internal/succinct"
	"repro/internal/tree"
	"repro/internal/treebank"
	"repro/internal/xprop"
)

func main() {
	exp := flag.String("exp", "all", "experiment id")
	flag.Parse()
	run := func(id string, fn func()) {
		if *exp == "all" || *exp == id {
			fmt.Printf("\n================ %s ================\n", id)
			fn()
		}
	}
	run("table1", table1)
	run("table2", table2)
	run("fig1", fig1)
	run("fig2", fig2)
	run("fig3", fig3)
	run("fig4", fig4)
	run("fig5", fig5)
	run("fig8", fig8)
	run("fig9", fig9)
	run("fig12", fig12)
	run("errata", errata)
}

// table1: the dichotomy of Table I plus empirical scaling on both sides.
func table1() {
	fmt.Println("E-T1 — Table I: classification (paper theorem per cell):")
	fmt.Print(core.FormatTableI())

	fmt.Println("\nEmpirical P-side scaling (Theorem 3.5 engine, Boolean query, ms):")
	sigs := map[string][]axis.Axis{
		"{Child+,Child*}":    {axis.ChildPlus, axis.ChildStar},
		"{Following}":        {axis.Following},
		"{Child,NS,NS+,NS*}": {axis.Child, axis.NextSibling, axis.NextSiblingPlus, axis.NextSiblingStar},
	}
	for name, sig := range sigs {
		engine, err := core.NewPolyEngine(sig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s", name)
		rng := rand.New(rand.NewSource(1))
		q := benchQuery(rng, sig, 6, 8)
		for _, n := range []int{500, 1000, 2000, 4000} {
			t := tree.Random(rng, tree.DefaultRandomConfig(n))
			start := time.Now()
			engine.EvalBoolean(t, q)
			fmt.Printf("  n=%d: %6.2f", n, float64(time.Since(start).Microseconds())/1000)
		}
		fmt.Println()
	}

	fmt.Println("\nPrepare/execute split (the dichotomy as engineering): per-call")
	fmt.Println("microseconds on n=2000, one-shot (re-plan per call) vs prepared:")
	{
		rng := rand.New(rand.NewSource(9))
		t := tree.Random(rng, tree.DefaultRandomConfig(2000))
		q := cq.MustParse("Q() <- A(x), Child+(x, y), B(y), Child*(y, z), Child+(x, z)")
		const reps = 50
		start := time.Now()
		for i := 0; i < reps; i++ {
			core.MustPrepare(q).Bool(t) // worst case: recompile every call
		}
		oneShot := time.Since(start)
		prep := core.MustPrepare(q)
		start = time.Now()
		for i := 0; i < reps; i++ {
			prep.Bool(t)
		}
		prepared := time.Since(start)
		fmt.Printf("  one-shot %6.1f µs/call   prepared %6.1f µs/call\n",
			float64(oneShot.Microseconds())/reps, float64(prepared.Microseconds())/reps)
	}

	fmt.Println("\nEmpirical NP-side (Thm 5.1 reduction, unsat all-triples family,")
	fmt.Println("search steps: MAC vs plain forward checking, FC capped at 1e6):")
	t := onethree.Theorem51Tree()
	for _, k := range []int{4, 5} {
		ins := &onethree.Instance{NumVars: k}
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				for c := b + 1; c < k; c++ {
					ins.Clauses = append(ins.Clauses, onethree.Clause{a, b, c})
				}
			}
		}
		q := onethree.Theorem51Query(ins, false)
		mac := core.NewBacktrackEngine()
		mac.EvalBoolean(t, q)
		fc := core.NewBacktrackEngine()
		fc.Propagate = false
		fc.MaxSteps = 1_000_000
		capped := false
		func() {
			defer func() {
				if recover() != nil {
					capped = true
				}
			}()
			fc.EvalBoolean(t, q)
		}()
		note := ""
		if capped {
			note = " (budget hit)"
		}
		fmt.Printf("  vars=%d clauses=%d |Q|=%d: MAC %d steps, FC %d steps%s\n",
			k, len(ins.Clauses), q.Size(), mac.Steps(), fc.Steps(), note)
	}
}

// table2: the NAND function of Table II versus our machine-computed one.
func table2() {
	fmt.Println("E-T2 — Table II: Following^NAND(k,l) wiring distances.")
	fmt.Println("paper's table (their Fig. 5 gadget):")
	for _, row := range onethree.PaperNANDTable {
		fmt.Printf("   %3d %3d %3d\n", row[0], row[1], row[2])
	}
	g := onethree.MustBuildTheorem52()
	fmt.Println("machine-computed table (our gadget tree, same mechanism):")
	for _, row := range g.NANDTable() {
		fmt.Printf("   %3d %3d %3d\n", row[0], row[1], row[2])
	}
	fmt.Println("both decompose as base + rowOffset(k) + colOffset(l) —")
	fmt.Println("the structural signature of fuel-based NAND wiring.")
}

// fig1: the treebank query on the synthetic corpus.
func fig1() {
	fmt.Println("E-F1 — Fig. 1 query on a synthetic treebank corpus:")
	corpus := treebank.Generate(treebank.Config{Sentences: 96, MaxDepth: 6, Seed: 1})
	st := corpus.Summarize()
	fmt.Printf("corpus: %d sentences, %d nodes, %d NPs, %d PPs\n",
		st.Sentences, st.Nodes, st.NPCount, st.PPCount)
	q := rewrite.Figure1Query()
	prep := core.MustPrepare(q) // classify + plan once, off the hot path
	start := time.Now()
	direct := prep.Monadic(corpus.Combined)
	dt := time.Since(start)
	apq, err := rewrite.TranslateCQ(q, rewrite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	via := apq.EvalAll(corpus.Combined)
	at := time.Since(start)
	fmt.Printf("direct (backtracking): %d answers in %v\n", len(direct), dt)
	fmt.Printf("via APQ (%d disjuncts): %d answers in %v\n", len(apq.Disjuncts), len(via), at)
	fmt.Println("who wins: the §1.1 translate-then-acyclic strategy.")
}

// fig2: X-property verification (Theorem 4.1).
func fig2() {
	fmt.Println("E-F2 — Fig. 2 / Theorem 4.1: X-property facts, machine-verified:")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		t := tree.Random(rng, tree.DefaultRandomConfig(1+rng.Intn(30)))
		if err := xprop.VerifyTheorem41(t); err != nil {
			log.Fatalf("FAILED: %v", err)
		}
	}
	fmt.Println("all Theorem 4.1 (axis, order) pairs hold on 25 random trees ✓")
	for _, a := range axis.PaperAxes {
		for _, o := range axis.Orders {
			mark := " "
			if axis.HasXProperty(a, o) {
				mark = "X"
			}
			fmt.Printf("  %-14s wrt %-6s: %s\n", a, o, mark)
		}
	}
}

// fig3: the exact counterexamples of Fig. 3.
func fig3() {
	fmt.Println("E-F3 — Fig. 3 counterexamples:")
	ta := xprop.Figure3aTree()
	if w, ok := xprop.Check(ta, axis.Following, axis.PreOrder); !ok {
		fmt.Printf("(a) Following vs <pre on %s:\n    violation %s ✓\n", ta, w)
	} else {
		log.Fatal("expected a violation on Fig. 3(a)")
	}
	tb := xprop.Figure3bTree()
	if w, ok := xprop.Check(tb, axis.AncestorPlus, axis.PostOrder); !ok {
		fmt.Printf("(b) Descendant⁻¹ vs <post on %s:\n    violation %s ✓\n", tb, w)
	} else {
		log.Fatal("expected a violation on Fig. 3(b)")
	}
}

// fig4: the Theorem 5.1 reduction end to end.
func fig4() {
	fmt.Println("E-F4 — Fig. 4 / Theorem 5.1 reduction (τ4, τ5):")
	t := onethree.Theorem51Tree()
	fmt.Printf("fixed data tree: %d nodes\n", t.Len())
	rng := rand.New(rand.NewSource(2))
	engine := core.NewBacktrackEngine()
	agree := 0
	for trial := 0; trial < 12; trial++ {
		ins := onethree.Random(rng, 4, 1+rng.Intn(3))
		want := ins.Satisfiable()
		for _, star := range []bool{false, true} {
			q := onethree.Theorem51Query(ins, star)
			if engine.EvalBoolean(t, q) != want {
				log.Fatalf("reduction disagrees with brute force on %s", ins)
			}
		}
		agree++
	}
	fmt.Printf("query satisfiable ⟺ 1-in-3 instance satisfiable on %d random instances ✓\n", agree)
}

// fig5: the Theorem 5.2 gadget.
func fig5() {
	fmt.Println("E-F5 — Fig. 5 / Theorem 5.2 gadget (τ6 = Child + Following):")
	g := onethree.MustBuildTheorem52()
	fmt.Printf("fixed data tree: %d nodes; NAND thresholds machine-computed and\n", g.Tree.Len())
	fmt.Println("margin-validated (every threshold forbids exactly one room pair).")
	engine := core.NewBacktrackEngine()
	instances := []*onethree.Instance{
		{NumVars: 3, Clauses: []onethree.Clause{{0, 1, 2}}},
		onethree.InstanceSatisfiable(),
		onethree.InstanceUnsatisfiable(),
	}
	for _, ins := range instances {
		q := g.Theorem52Query(ins)
		got := engine.EvalBoolean(g.Tree, q)
		want := ins.Satisfiable()
		status := "✓"
		if got != want {
			status = "✗"
		}
		fmt.Printf("  %-40s sat=%v query=%v %s\n", ins, want, got, status)
	}
}

// fig8: the rewriting walkthrough.
func fig8() {
	fmt.Println("E-F8 — Fig. 8: CQ → APQ translation of the intro query:")
	q := rewrite.IntroQuery()
	fmt.Println("input:", q)
	apq, err := rewrite.TranslateCQ(q, rewrite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %d acyclic disjunct(s), %d atoms\n%s\n", len(apq.Disjuncts), apq.Size(), apq)
	engine := core.NewBacktrackEngine()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		t := tree.Random(rng, tree.RandomConfig{
			Nodes: 1 + rng.Intn(12), MaxChildren: 3, Alphabet: []string{"A", "B", "C"},
		})
		if engine.EvalBoolean(t, q) != apq.EvalBoolean(t) {
			log.Fatalf("not equivalent on %s", t)
		}
	}
	fmt.Println("equivalence verified on 100 random trees ✓")
}

// fig9: the succinctness blowup.
func fig9() {
	fmt.Println("E-F9 — Fig. 9 / Theorem 7.1: diamond family blowup:")
	fmt.Println("  n  |Dn|  PS members  Dn true on all?  APQ disjuncts  APQ atoms")
	engine := core.NewBacktrackEngine()
	for n := 1; n <= 4; n++ {
		d := succinct.Diamond(n)
		all := true
		if n <= 3 {
			succinct.PathStructures(n, 2, func(c uint, t *tree.Tree) bool {
				if !engine.EvalBoolean(t, d) {
					all = false
					return false
				}
				return true
			})
		}
		apq, err := rewrite.RewriteToAPQ(d, rewrite.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d  %4d  %10d  %15v  %13d  %9d\n",
			n, d.Size(), 1<<n, all, len(apq.Disjuncts), apq.Size())
	}
	fmt.Println("APQ size grows ~4^n while |Dn| grows linearly — the exponential")
	fmt.Println("separation Theorem 7.1 proves unavoidable.")

	fmt.Println("\nCoverage profile (the counting argument): per-disjunct coverage")
	fmt.Println("of the 2^n structures vs the union:")
	eval := func(tr *tree.Tree, q *cq.Query) bool { return engine.EvalBoolean(tr, q) }
	for n := 1; n <= 3; n++ {
		apq, err := rewrite.RewriteToAPQ(succinct.Diamond(n), rewrite.Options{})
		if err != nil {
			log.Fatal(err)
		}
		prof := succinct.MeasureCoverage(n, 2, apq.Disjuncts, eval)
		fmt.Printf("  n=%d: union %d/%d; max single disjunct %d/%d\n",
			n, prof.UnionCovered, prof.Structures, prof.MaxSingleCoverage(), prof.Structures)
	}
}

// fig12: the separating-model construction.
func fig12() {
	fmt.Println("E-F12 — Fig. 12 / Example 7.8: Lemma 7.3 separating model:")
	q := succinct.Example78Query()
	lps := succinct.VariableLabelPaths(q)
	fmt.Println("label paths of Q:")
	for _, lp := range lps {
		fmt.Println("  ", lp)
	}
	m := succinct.SeparatingModel(lps, []string{"X'1", "X'2"})
	fmt.Printf("M = LC(¬X'1).LC(X'1∧¬X'2): path of %d nodes\n", m.Len())
	engine := core.NewBacktrackEngine()
	fmt.Printf("Q true on M:  %v (want true)\n", engine.EvalBoolean(m, q))
	fmt.Printf("D2 true on M: %v (want false)\n", engine.EvalBoolean(m, succinct.Diamond(2)))
}

// errata: the Theorem 6.9 lifter finding.
func errata() {
	fmt.Println("E-ERRATUM — Theorem 6.9 join lifters, machine-verified:")
	fmt.Println("Definition 6.2 requires ψ ≡ φ where φ(x,y,z) = R(x,z) ∧ S(y,z).")
	for pair, l := range rewrite.Theorem69Lifters() {
		msg := l.Verify(4)
		if msg == "" {
			fmt.Printf("  (%v, %v): verified ✓\n", pair[0], pair[1])
		} else {
			fmt.Printf("  (%v, %v): COUNTEREXAMPLE\n    %s\n", pair[0], pair[1], msg)
		}
	}
	fmt.Println("\nThe Theorem 6.6 table, by contrast, verifies exhaustively:")
	bad := 0
	for _, l := range rewrite.Theorem66Lifters() {
		if l.Verify(5) != "" {
			bad++
		}
	}
	fmt.Printf("  %d of 36 entries fail (want 0) — all verified ✓\n", bad)
	fmt.Println("\nConsequence: for queries with Following we translate via the")
	fmt.Println("(independently verified) Theorem 6.10 pipeline instead.")
}

func benchQuery(rng *rand.Rand, axes []axis.Axis, nv, na int) *cq.Query {
	q := cq.New()
	vars := make([]cq.Var, nv)
	for i := range vars {
		vars[i] = q.AddVar(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < na; i++ {
		x := rng.Intn(nv)
		y := rng.Intn(nv)
		if x == y {
			y = (y + 1) % nv
		}
		q.AddAtom(axes[rng.Intn(len(axes))], vars[x], vars[y])
	}
	q.AddLabel("A", vars[0])
	return q
}
