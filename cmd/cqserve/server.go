package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	cqtrees "repro"
)

// server is the HTTP face of the corpus engine: a Corpus of named indexed
// documents plus a registry of named prepared queries, exposed as a small
// JSON API (net/http only). All state is in memory; handlers are safe for
// concurrent use (the corpus is concurrency-safe, the query registry has
// its own lock).
type server struct {
	corpus *cqtrees.Corpus

	mu      sync.Mutex
	queries map[string]*storedQuery

	// maxBody bounds request bodies (documents arrive inline).
	maxBody int64
	// evalTimeout is the hard cap on one /eval batch; zero means no cap.
	// A request's timeout_ms may tighten the bound but never extend it.
	evalTimeout time.Duration
	// dataDir, when non-empty, is the snapshot directory: PUTs persist,
	// DELETEs unpersist, and startup recovers the corpus from it without
	// re-parsing any XML (documents hydrate lazily from their snapshots).
	dataDir string
}

// storedQuery is a registered prepared query plus its source text.
type storedQuery struct {
	src string
	pq  *cqtrees.PreparedQuery
}

type serverConfig struct {
	maxCorpusBytes int64
	maxBody        int64
	evalTimeout    time.Duration
	dataDir        string
}

func newServer(cfg serverConfig) (*server, error) {
	var opts []cqtrees.CorpusOption
	if cfg.maxCorpusBytes > 0 {
		opts = append(opts, cqtrees.WithMaxBytes(cfg.maxCorpusBytes))
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = 16 << 20
	}
	s := &server{
		corpus:      cqtrees.NewCorpus(opts...),
		queries:     make(map[string]*storedQuery),
		maxBody:     cfg.maxBody,
		evalTimeout: cfg.evalTimeout,
		dataDir:     cfg.dataDir,
	}
	if s.dataDir != "" {
		if err := os.MkdirAll(s.dataDir, 0o755); err != nil {
			return nil, err
		}
		// Restart recovery: every snapshot in the directory registers as a
		// dehydrated entry (header read only) and hydrates on first use —
		// no XML parse, no index build, cold start at read speed.
		if _, err := s.corpus.LoadDir(s.dataDir); err != nil {
			return nil, fmt.Errorf("load %s: %w", s.dataDir, err)
		}
	}
	return s, nil
}

// handler builds the route table. Method+path patterns need Go 1.22+.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /docs", s.handleListDocs)
	mux.HandleFunc("GET /docs/{name}", s.handleGetDoc)
	mux.HandleFunc("PUT /docs/{name}", s.handlePutDoc)
	mux.HandleFunc("DELETE /docs/{name}", s.handleDeleteDoc)
	mux.HandleFunc("GET /queries", s.handleListQueries)
	mux.HandleFunc("GET /queries/{name}", s.handleGetQuery)
	mux.HandleFunc("PUT /queries/{name}", s.handlePutQuery)
	mux.HandleFunc("DELETE /queries/{name}", s.handleDeleteQuery)
	mux.HandleFunc("POST /eval", s.handleEval)
	return mux
}

// ---- JSON plumbing --------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// apiError is the uniform error body: {"error": "..."}.
type apiError struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes the request body as strict JSON into v, enforcing
// the body limit. Oversized bodies are 413 (shrink the payload);
// malformed ones 400 (fix the payload).
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// ---- documents ------------------------------------------------------------

// docInfo describes one corpus document. Bytes is the accounted resident
// footprint (0 while the document is dehydrated to its snapshot file);
// Hydrated reports residency.
type docInfo struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Bytes    int64  `json:"bytes"`
	Hydrated bool   `json:"hydrated"`
}

// docRow builds a listing row from Stat's accounted figures, so the rows
// of one /docs payload always sum to its top-level (and /healthz's)
// bytes, and dehydrated documents list without being pulled back into
// memory.
func docRow(name string, st cqtrees.CorpusStat) docInfo {
	return docInfo{Name: name, Nodes: st.Nodes, Bytes: st.Bytes, Hydrated: st.Hydrated}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	nq := len(s.queries)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"docs":    s.corpus.Len(),
		"queries": nq,
		"bytes":   s.corpus.Bytes(),
	})
}

// The metadata endpoints use Stat, not Get: a monitoring poll of /docs
// must not promote every document in the LRU eviction order (only
// evaluation counts as use) and must not hydrate dehydrated documents.
func (s *server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	infos := make([]docInfo, 0)
	for _, name := range s.corpus.Names() {
		if st, ok := s.corpus.Stat(name); ok {
			infos = append(infos, docRow(name, st))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"docs": infos, "bytes": s.corpus.Bytes()})
}

func (s *server) handleGetDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.corpus.Stat(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown document %q", name)
		return
	}
	writeJSON(w, http.StatusOK, docRow(name, st))
}

// putDocRequest loads one document: exactly one of Term (the term syntax,
// e.g. "A(B,C(B))") or XML (an XML document; element names become labels).
type putDocRequest struct {
	Term string `json:"term,omitempty"`
	XML  string `json:"xml,omitempty"`
}

func (s *server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req putDocRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	var (
		t   *cqtrees.Tree
		err error
	)
	switch {
	case req.Term != "" && req.XML != "":
		httpError(w, http.StatusBadRequest, "give term or xml, not both")
		return
	case req.Term != "":
		t, err = cqtrees.ParseTree(req.Term)
	case req.XML != "":
		t, err = cqtrees.ParseXML(strings.NewReader(req.XML))
	default:
		httpError(w, http.StatusBadRequest, "term or xml is required")
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	doc := cqtrees.Index(t)
	prev, err := s.corpus.Swap(name, doc)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.dataDir != "" {
		// Persist before answering: a 2xx PUT must survive a restart. A
		// failed write leaves the document resident but unpersisted — the
		// client sees the 500 and can retry the PUT.
		if err := s.corpus.PersistDoc(s.dataDir, name); err != nil {
			httpError(w, http.StatusInternalServerError, "persist: %v", err)
			return
		}
	}
	status := http.StatusCreated
	if prev != nil {
		status = http.StatusOK
	}
	// Stat surfaces the accounted insertion charge, keeping this response
	// consistent with the listing and with what eviction budgets.
	st, _ := s.corpus.Stat(name)
	writeJSON(w, status, docRow(name, st))
}

func (s *server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Stat-then-act: Remove alone cannot tell a dehydrated document (nil
	// doc, name known) from an unknown name.
	if _, ok := s.corpus.Stat(name); !ok {
		httpError(w, http.StatusNotFound, "unknown document %q", name)
		return
	}
	s.corpus.Remove(name)
	if s.dataDir != "" {
		if err := s.corpus.Unpersist(s.dataDir, name); err != nil {
			httpError(w, http.StatusInternalServerError, "unpersist: %v", err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- queries --------------------------------------------------------------

// queryInfo describes one registered query.
type queryInfo struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Arity  int    `json:"arity"`
	Plan   string `json:"plan"`
}

func info(name string, sq *storedQuery) queryInfo {
	return queryInfo{
		Name:   name,
		Source: sq.src,
		Arity:  len(sq.pq.Query().Head),
		Plan:   sq.pq.Plan().String(),
	}
}

func (s *server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]queryInfo, 0, len(s.queries))
	for name, sq := range s.queries {
		infos = append(infos, info(name, sq))
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"queries": infos})
}

func (s *server) handleGetQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	sq, ok := s.queries[name]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	writeJSON(w, http.StatusOK, info(name, sq))
}

type putQueryRequest struct {
	Query string `json:"query"`
}

func (s *server) handlePutQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req putQueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "query is required")
		return
	}
	pq, err := cqtrees.Compile(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, "compile: %v", err)
		return
	}
	sq := &storedQuery{src: req.Query, pq: pq}
	s.mu.Lock()
	_, replaced := s.queries[name]
	s.queries[name] = sq
	s.mu.Unlock()
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, info(name, sq))
}

func (s *server) handleDeleteQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.queries[name]
	delete(s.queries, name)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- batch evaluation -----------------------------------------------------

// evalRequest runs one prepared query — a registered one by name (query)
// or an ad-hoc source (source) — across the corpus (docs restricts the
// fleet; empty means every document), in one of three modes:
//
//	"bool"   per-document Boolean satisfaction
//	"nodes"  per-document sorted answer node set (monadic queries only)
//	"tuples" per-document sorted distinct answer relation
//
// workers bounds the fan-out pool (0 = GOMAXPROCS); timeout_ms caps the
// whole batch.
type evalRequest struct {
	Query     string   `json:"query,omitempty"`
	Source    string   `json:"source,omitempty"`
	Docs      []string `json:"docs,omitempty"`
	Mode      string   `json:"mode"`
	Workers   int      `json:"workers,omitempty"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

// evalResult is one per-document result row. The mode's field (Sat,
// Nodes or Tuples) is set unless Error is non-empty; empty node and
// tuple sets are omitted from the JSON (a row with neither field nor
// error is a successful empty result).
type evalResult struct {
	Doc    string             `json:"doc"`
	Sat    *bool              `json:"sat,omitempty"`
	Nodes  []cqtrees.NodeID   `json:"nodes,omitempty"`
	Tuples [][]cqtrees.NodeID `json:"tuples,omitempty"`
	Error  string             `json:"error,omitempty"`
}

type evalResponse struct {
	Mode    string       `json:"mode"`
	Plan    string       `json:"plan"`
	Docs    int          `json:"docs"`
	Errors  int          `json:"errors"`
	Results []evalResult `json:"results"`
	// TimedOut marks a batch cut short by timeout_ms (status 504; the
	// rows completed before the deadline are included).
	TimedOut bool `json:"timed_out,omitempty"`
}

func (s *server) handleEval(w http.ResponseWriter, r *http.Request) {
	var req evalRequest
	if !s.decodeBody(w, r, &req) {
		return
	}

	// Resolve the query: registered name xor inline source.
	var pq *cqtrees.PreparedQuery
	switch {
	case req.Query != "" && req.Source != "":
		httpError(w, http.StatusBadRequest, "give query or source, not both")
		return
	case req.Query != "":
		s.mu.Lock()
		sq, ok := s.queries[req.Query]
		s.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, "unknown query %q", req.Query)
			return
		}
		pq = sq.pq
	case req.Source != "":
		var err error
		if pq, err = cqtrees.Compile(req.Source); err != nil {
			httpError(w, http.StatusBadRequest, "compile: %v", err)
			return
		}
	default:
		httpError(w, http.StatusBadRequest, "query or source is required")
		return
	}

	mode := req.Mode
	if mode == "" {
		mode = "tuples"
	}
	if mode == "nodes" && len(pq.Query().Head) != 1 {
		// The arity violation is a property of the request, not of any
		// document: report it once, as 422, instead of per-document rows.
		httpError(w, http.StatusUnprocessableEntity,
			"mode nodes needs a monadic query; %q has arity %d", pq.Query().String(), len(pq.Query().Head))
		return
	}

	// The operator's -eval-timeout is a hard cap: a client timeout_ms may
	// only tighten it, never extend it past the server bound.
	ctx := r.Context()
	timeout := s.evalTimeout
	if reqTimeout := time.Duration(req.TimeoutMS) * time.Millisecond; req.TimeoutMS > 0 &&
		(timeout <= 0 || reqTimeout < timeout) {
		timeout = reqTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// The document list is frozen up front (an unrestricted request takes
	// the current fleet): batch completeness is then decidable — a timed
	// out batch may never dispatch some documents, and those produce no
	// result rows at all.
	explicit := len(req.Docs) > 0
	docs := req.Docs
	if !explicit {
		docs = s.corpus.Names()
	}
	expected := len(docs)
	opts := []cqtrees.BatchOption{
		cqtrees.WithBatchContext(ctx),
		cqtrees.WithBatchWorkers(req.Workers),
		cqtrees.WithDocs(docs...),
	}

	resp := evalResponse{Mode: mode, Plan: pq.Plan().String(), Results: make([]evalResult, 0, len(docs))}
	cancelledRows := 0
	add := func(doc string, err error, fill func(*evalResult)) {
		// An implicit fleet selection can race a concurrent Remove or
		// LRU eviction between Names() and the batch snapshot; the
		// client never asked for that document by name, so its
		// disappearance is not an error row.
		if err != nil && !explicit && errors.Is(err, cqtrees.ErrUnknownDocument) {
			expected--
			return
		}
		row := evalResult{Doc: doc}
		if err != nil {
			row.Error = err.Error()
			resp.Errors++
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				cancelledRows++
			}
		} else {
			fill(&row)
		}
		resp.Results = append(resp.Results, row)
	}
	// Empty node/tuple sets need no normalization: omitempty drops the
	// field for nil and empty alike, so a successful empty result is a
	// row with neither payload nor error.
	switch mode {
	case "bool":
		for r := range s.corpus.Bool(pq, opts...) {
			sat := r.Sat
			add(r.Doc, r.Err, func(row *evalResult) { row.Sat = &sat })
		}
	case "nodes":
		for r := range s.corpus.Nodes(pq, opts...) {
			nodes := r.Nodes
			add(r.Doc, r.Err, func(row *evalResult) { row.Nodes = nodes })
		}
	case "tuples":
		for r := range s.corpus.Tuples(pq, opts...) {
			tuples := r.Tuples
			add(r.Doc, r.Err, func(row *evalResult) { row.Tuples = tuples })
		}
	default:
		httpError(w, http.StatusBadRequest, "unknown mode %q (bool, nodes, tuples)", req.Mode)
		return
	}
	resp.Docs = len(resp.Results)
	sort.Slice(resp.Results, func(i, j int) bool { return resp.Results[i].Doc < resp.Results[j].Doc })

	// 504 only when the deadline actually cut work short: some row carried
	// a cancellation error, or some frozen-list document never produced a
	// row. A batch that completed just before the deadline fired is a 200.
	if errors.Is(ctx.Err(), context.DeadlineExceeded) &&
		(cancelledRows > 0 || resp.Docs < expected) {
		resp.TimedOut = true
		writeJSON(w, http.StatusGatewayTimeout, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
