// Command cqserve serves the corpus engine over HTTP: load documents,
// register prepared queries, and fan batch evaluations across the fleet —
// the traffic-shaped entry point to the paper's evaluation algorithms.
//
// Usage:
//
//	cqserve [-addr :8080] [-max-corpus-bytes N] [-eval-timeout 30s] [-data DIR]
//
// With -data, every PUT document is also written to DIR as a binary
// snapshot (one .cqs file per document) and a restart recovers the whole
// corpus from DIR without re-parsing any XML: entries register from the
// snapshot headers and hydrate lazily — one aligned read plus zero-copy
// pointer fixups — on first use, under the -max-corpus-bytes budget
// (budget pressure dehydrates snapshot-backed documents back to disk
// instead of dropping them).
//
// The API is JSON over net/http (no dependencies):
//
//	GET    /healthz              engine status (docs, queries, bytes)
//	GET    /docs                 list documents (name, nodes, bytes)
//	PUT    /docs/{name}          load a document: {"term": "A(B,C(B))"}
//	                             or {"xml": "<a><b/></a>"} (201 new, 200 replaced)
//	GET    /docs/{name}          one document's info (404 if absent)
//	DELETE /docs/{name}          drop a document (204, 404 if absent)
//	PUT    /queries/{name}       register a query: {"query": "Q(y) <- A(x), Child+(x, y), B(y)"}
//	                             — compiled once; response carries the plan
//	GET    /queries, /queries/{name}, DELETE /queries/{name}
//	POST   /eval                 batch evaluation:
//	                             {"query": "name" | "source": "...", "mode": "bool|nodes|tuples",
//	                              "docs": ["a", ...], "workers": 4, "timeout_ms": 100}
//
// Error tiers: 400 malformed requests and parse/compile failures, 404
// unknown document or query names, 422 mode "nodes" on a non-monadic
// query, 504 a batch cut short by its timeout (completed rows included,
// "timed_out": true). Unknown names inside an /eval docs list come back
// as per-document error rows, not a request failure — a batch over a
// mutating fleet is not all-or-nothing.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxCorpusBytes := flag.Int64("max-corpus-bytes", 0, "corpus byte budget; LRU-evicts documents beyond it (0 = unlimited)")
	maxBody := flag.Int64("max-body-bytes", 16<<20, "request body size limit")
	evalTimeout := flag.Duration("eval-timeout", 0, "hard cap on one /eval batch (0 = none; a request's timeout_ms may tighten it, not extend it)")
	dataDir := flag.String("data", "", "snapshot directory: PUTs persist, restarts recover the corpus from it without re-parsing (empty = in-memory only)")
	flag.Parse()

	s, err := newServer(serverConfig{
		maxCorpusBytes: *maxCorpusBytes,
		maxBody:        *maxBody,
		evalTimeout:    *evalTimeout,
		dataDir:        *dataDir,
	})
	if err != nil {
		log.Fatalf("cqserve: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("cqserve: listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
