// Command cqserve serves the corpus engine over HTTP: load documents,
// register prepared queries, and fan batch evaluations across the fleet —
// the traffic-shaped entry point to the paper's evaluation algorithms,
// hardened for overload (the handlers live in internal/serve).
//
// Usage:
//
//	cqserve [-addr :8080] [-max-corpus-bytes N] [-eval-timeout 30s] [-data DIR]
//	        [-no-fsync] [-max-inflight 64] [-max-queue 128] [-queue-wait 5s]
//	        [-max-answers N] [-drain-timeout 15s]
//	        [-cache-bytes N] [-cache-max-entry N]
//
// With -cache-bytes, materialized /eval results are cached per (query
// fingerprint, document, document version) and repeated evaluations are
// answered from the cache — without re-running the engine and without
// taking an admission slot — until the document is swapped, removed, or
// evicted. -cache-max-entry keeps oversized relations from monopolizing
// the budget (they simply never cache; use NDJSON streaming for those).
//
// With -data, every PUT document is also written to DIR as a binary
// snapshot (one .cqs file per document) and a restart recovers the whole
// corpus from DIR without re-parsing any XML: entries register from the
// snapshot headers and hydrate lazily — one aligned read plus zero-copy
// pointer fixups — on first use, under the -max-corpus-bytes budget
// (budget pressure dehydrates snapshot-backed documents back to disk
// instead of dropping them).
//
// Persistence is crash-durable by default: snapshots are written to a
// temp file, fsynced, renamed into place, and the directory fsynced, so
// a crash at any instant leaves either the old or the new snapshot —
// never a torn file. -no-fsync trades that durability for write speed
// (bulk imports, benchmarks). Snapshot files that fail validation are
// quarantined — renamed to <file>.corrupt, skipped, and counted on
// /healthz ("persistence") and /metrics — while healthy documents keep
// serving; transient read failures retry with exponential backoff.
// /eval surfaces these states per row ("reason": "quarantined" |
// "unavailable"), escalating to 404 or 503 + Retry-After when nothing
// the request named can be served.
//
// The API is JSON over net/http (no dependencies):
//
//	GET    /healthz              engine status (docs, queries, bytes,
//	                             in_flight, queued, cache; 503 while draining)
//	GET    /metrics              Prometheus text exposition: eval latency
//	                             histograms, admission gate, result cache,
//	                             corpus occupancy

//	GET    /docs                 list documents (name, nodes, bytes)
//	PUT    /docs/{name}          load a document: {"term": "A(B,C(B))"}
//	                             or {"xml": "<a><b/></a>"} (201 new, 200 replaced)
//	GET    /docs/{name}          one document's info (404 if absent)
//	DELETE /docs/{name}          drop a document (204, 404 if absent)
//	PUT    /queries/{name}       register a query: {"query": "Q(y) <- A(x), Child+(x, y), B(y)"}
//	                             — compiled once; response carries the plan
//	GET    /queries, /queries/{name}, DELETE /queries/{name}
//	POST   /eval                 batch evaluation:
//	                             {"query": "name" | "source": "...", "mode": "bool|nodes|tuples",
//	                              "docs": ["a", ...], "workers": 4, "timeout_ms": 100,
//	                              "max_answers": 10000}
//	                             Accept: application/x-ndjson streams results
//	                             line-by-line (memory-flat for huge relations).
//
// Error tiers: 400 malformed requests and parse/compile failures, 404
// unknown document or query names, 413 oversized request bodies, 422 mode
// "nodes" on a non-monadic query, 429 + Retry-After when the admission
// queue is full or the queue wait deadline expires, 503 + Retry-After
// while shutting down, 504 a batch cut short by its timeout (completed
// rows included, "timed_out": true). Unknown names inside an /eval docs
// list come back as per-document error rows, not a request failure — a
// batch over a mutating fleet is not all-or-nothing.
//
// Shutdown: SIGINT/SIGTERM flips the server into draining mode (new and
// queued evaluations answer 503 + Retry-After, /healthz fails readiness)
// and then drains in-flight requests via http.Server.Shutdown under
// -drain-timeout, so every admitted evaluation gets its response before
// the process exits.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxCorpusBytes := flag.Int64("max-corpus-bytes", 0, "corpus byte budget; LRU-evicts documents beyond it (0 = unlimited)")
	maxBody := flag.Int64("max-body-bytes", 16<<20, "request body size limit (oversized bodies are 413)")
	evalTimeout := flag.Duration("eval-timeout", 0, "hard cap on one /eval batch (0 = none; a request's timeout_ms may tighten it, not extend it)")
	dataDir := flag.String("data", "", "snapshot directory: PUTs persist, restarts recover the corpus from it without re-parsing (empty = in-memory only)")
	noFsync := flag.Bool("no-fsync", false, "skip fsync in the snapshot persist path: faster writes, but a crash may lose or tear the latest snapshots")
	maxInFlight := flag.Int("max-inflight", 64, "max concurrent /eval evaluations (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 128, "max /eval requests waiting for a slot; beyond it 429 + Retry-After (0 = reject at saturation)")
	queueWait := flag.Duration("queue-wait", 5*time.Second, "max time one /eval may wait queued, on top of its own deadline (0 = deadline only)")
	maxAnswers := flag.Int("max-answers", 0, "per-document tuples answer cap; capped rows carry \"truncated\": true (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache byte budget: /eval results are cached per (query, doc, doc version) and served without re-evaluating until the document changes (0 = disabled)")
	cacheMaxEntry := flag.Int64("cache-max-entry", 0, "per-result cache size cap; larger results never cache (0 = one cache shard)")
	flag.Parse()

	s, err := serve.New(serve.Config{
		MaxCorpusBytes: *maxCorpusBytes,
		MaxBody:        *maxBody,
		EvalTimeout:    *evalTimeout,
		DataDir:        *dataDir,
		NoFsync:        *noFsync,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		MaxAnswers:     *maxAnswers,
		CacheBytes:     *cacheBytes,
		CacheMaxEntry:  *cacheMaxEntry,
	})
	if err != nil {
		log.Fatalf("cqserve: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("cqserve: listening on %s", *addr)

	select {
	case err := <-errCh:
		// Bind failure or some other listener death: nothing to drain.
		log.Fatalf("cqserve: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
	}

	// Drain: stop admitting evaluations first (queued requests get their
	// 503s immediately), then let http.Server.Shutdown wait for in-flight
	// requests — admitted evaluations run to completion under the grace
	// period, so no accepted request is dropped without a response.
	log.Printf("cqserve: shutting down (draining up to %s, %d evals in flight)", *drainTimeout, s.InFlight())
	s.BeginShutdown()
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		// The grace period expired with requests still running; cut them.
		log.Printf("cqserve: drain timeout: %v", err)
		_ = srv.Close()
		os.Exit(1)
	}
	log.Printf("cqserve: drained cleanly")
}
