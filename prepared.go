package cqtrees

import (
	"repro/internal/core"
)

// PreparedQuery is a conjunctive query compiled for repeated evaluation:
// parsing, acyclicity analysis, signature classification (Theorem 1.1) and
// strategy planning happen once, in Prepare; the resulting object
// evaluates against any number of trees paying only the per-tree cost.
//
// This operationalizes the paper's cost split: classification and planning
// depend only on the query, evaluation is the per-tree hot path. A server
// answering many requests should Prepare each distinct query once (or rely
// on the shared plan cache behind Evaluate) and reuse the PreparedQuery
// from as many goroutines as it likes — all methods are safe for
// concurrent use, and per-call scratch state (domain tables, semijoin
// buffers, valuation maps) is pooled internally rather than re-allocated.
type PreparedQuery struct {
	p *core.Prepared
	// parallel is the worker count for materialized enumeration (All and
	// Nodes); 0 or 1 means sequential. Set via WithParallelism.
	parallel int
}

// Prepare compiles q for repeated evaluation. The query is cloned
// internally, so the caller may keep mutating q afterwards without
// affecting the PreparedQuery.
func Prepare(q *Query) (*PreparedQuery, error) {
	p, err := core.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{p: p}, nil
}

// MustPrepare is Prepare that panics on error; for tests and examples.
func MustPrepare(q *Query) *PreparedQuery {
	pq, err := Prepare(q)
	if err != nil {
		panic(err)
	}
	return pq
}

// Compile parses the rule notation and prepares the query in one step,
// in the spirit of regexp.Compile:
//
//	pq, err := cqtrees.Compile("Q(y) <- A(x), Child+(x, y), B(y)")
//	for _, t := range trees {
//		fmt.Println(pq.Nodes(t))
//	}
func Compile(src string) (*PreparedQuery, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Prepare(q)
}

// MustCompile is Compile that panics on error.
func MustCompile(src string) *PreparedQuery {
	pq, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return pq
}

// WithParallelism returns a handle on the same compiled query whose All
// and Nodes calls shard the outer candidate loop across the given number
// of worker goroutines (each worker borrows its own pooled evaluation
// scratch). The receiver is not modified; both handles share the compiled
// plan and scratch pool and remain safe for concurrent use.
//
// workers <= 1 restores sequential evaluation. Parallelism applies to All
// under the acyclic and X-property strategies and to Nodes under the
// X-property strategy; backtracking evaluation is inherently sequential
// and ignores it, and Nodes on an acyclic query is always sequential (its
// fast path returns the semijoin-reduced head set directly, already
// O(answer) — there is no outer loop to shard). Streaming
// (ForEachTuple/ForEachNode) is always sequential — the callback contract
// is single-goroutine.
func (pq *PreparedQuery) WithParallelism(workers int) *PreparedQuery {
	return &PreparedQuery{p: pq.p, parallel: workers}
}

func (pq *PreparedQuery) opts() core.EnumOptions {
	return core.EnumOptions{Parallel: pq.parallel}
}

// Bool decides Boolean satisfaction of the compiled query on t.
func (pq *PreparedQuery) Bool(t *Tree) bool { return pq.p.Bool(t) }

// All enumerates the distinct answer tuples of the compiled query on t in
// lexicographic NodeID order (for Boolean queries: one empty tuple if
// satisfiable). The work is output-sensitive: candidates are pruned to one
// shared arc-consistent (resp. semijoin-reduced) prevaluation, and tuple
// membership checks are incremental rather than from-scratch.
func (pq *PreparedQuery) All(t *Tree) [][]NodeID { return pq.p.AllOpt(t, pq.opts()) }

// Nodes answers a monadic (unary) compiled query with the sorted answer
// node set; it panics if the query is not monadic.
func (pq *PreparedQuery) Nodes(t *Tree) []NodeID { return pq.p.MonadicOpt(t, pq.opts()) }

// ForEachTuple streams the distinct answer tuples of the compiled query on
// t without materializing the answer relation: fn is called once per tuple
// and enumeration stops as soon as fn returns false, so existence checks
// and prefix-limited scans cost only the answers actually consumed. The
// tuple slice is reused between calls — copy it to retain. Tuples arrive
// in a strategy-dependent order (All sorts; this does not). For Boolean
// queries fn is called once with an empty tuple if the query is
// satisfiable.
func (pq *PreparedQuery) ForEachTuple(t *Tree, fn func(tuple []NodeID) bool) {
	pq.p.ForEachTuple(t, fn)
}

// ForEachNode streams the answer nodes of a monadic compiled query (in
// increasing NodeID order under the acyclic and X-property strategies);
// it panics if the query is not monadic. fn returns false to stop early.
func (pq *PreparedQuery) ForEachNode(t *Tree, fn func(v NodeID) bool) {
	pq.p.ForEachNode(t, fn)
}

// Plan reports the evaluation strategy and Theorem 1.1 classification
// compiled into the query.
func (pq *PreparedQuery) Plan() Plan { return pq.p.Plan() }

// Query returns the compiled query (a private clone; treat as read-only).
func (pq *PreparedQuery) Query() *Query { return pq.p.Query() }

// String renders the compiled query with its plan.
func (pq *PreparedQuery) String() string {
	return pq.p.Query().String() + " [" + pq.p.Plan().String() + "]"
}
