package cqtrees

import (
	"repro/internal/core"
)

// PreparedQuery is a conjunctive query compiled for repeated evaluation:
// parsing, acyclicity analysis, signature classification (Theorem 1.1) and
// strategy planning happen once, in Prepare; the resulting object
// evaluates against any number of trees paying only the per-tree cost.
//
// This operationalizes the paper's cost split: classification and planning
// depend only on the query, evaluation is the per-tree hot path. A server
// answering many requests should Prepare each distinct query once (or rely
// on the shared plan cache behind Evaluate) and reuse the PreparedQuery
// from as many goroutines as it likes — all methods are safe for
// concurrent use, and per-call scratch state (domain tables, semijoin
// buffers, valuation maps) is pooled internally rather than re-allocated.
type PreparedQuery struct {
	p *core.Prepared
}

// Prepare compiles q for repeated evaluation. The query is cloned
// internally, so the caller may keep mutating q afterwards without
// affecting the PreparedQuery.
func Prepare(q *Query) (*PreparedQuery, error) {
	p, err := core.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{p: p}, nil
}

// MustPrepare is Prepare that panics on error; for tests and examples.
func MustPrepare(q *Query) *PreparedQuery {
	pq, err := Prepare(q)
	if err != nil {
		panic(err)
	}
	return pq
}

// Compile parses the rule notation and prepares the query in one step,
// in the spirit of regexp.Compile:
//
//	pq, err := cqtrees.Compile("Q(y) <- A(x), Child+(x, y), B(y)")
//	for _, t := range trees {
//		fmt.Println(pq.Nodes(t))
//	}
func Compile(src string) (*PreparedQuery, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Prepare(q)
}

// MustCompile is Compile that panics on error.
func MustCompile(src string) *PreparedQuery {
	pq, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return pq
}

// Bool decides Boolean satisfaction of the compiled query on t.
func (pq *PreparedQuery) Bool(t *Tree) bool { return pq.p.Bool(t) }

// All enumerates the distinct answer tuples of the compiled query on t
// (for Boolean queries: one empty tuple if satisfiable).
func (pq *PreparedQuery) All(t *Tree) [][]NodeID { return pq.p.All(t) }

// Nodes answers a monadic (unary) compiled query; it panics if the query
// is not monadic.
func (pq *PreparedQuery) Nodes(t *Tree) []NodeID { return pq.p.Monadic(t) }

// Plan reports the evaluation strategy and Theorem 1.1 classification
// compiled into the query.
func (pq *PreparedQuery) Plan() Plan { return pq.p.Plan() }

// Query returns the compiled query (a private clone; treat as read-only).
func (pq *PreparedQuery) Query() *Query { return pq.p.Query() }

// String renders the compiled query with its plan.
func (pq *PreparedQuery) String() string {
	return pq.p.Query().String() + " [" + pq.p.Plan().String() + "]"
}
